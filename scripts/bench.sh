#!/usr/bin/env bash
# Runs the decode-fast-path benchmark suite and emits BENCH_5.json with
# ns/op, B/op, and allocs/op per benchmark. Usage:
#
#   scripts/bench.sh [output.json]
#
# The benchtime is pinned to a fixed iteration count so runs are comparable
# across machines of similar class; override with BENCHTIME=200x.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_5.json}"
BENCHTIME="${BENCHTIME:-50x}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# Root-level end-to-end benches plus the decoder/kernels micro benches.
go test -run '^$' -bench 'BenchmarkFig4ReconstructionVsM|BenchmarkEndToEndCampaign|BenchmarkFig5AdaptiveZones|BenchmarkFig6CHSAlgorithm|BenchmarkC2MeasurementBound|BenchmarkA4DecoderComparison' \
    -benchmem -benchtime "$BENCHTIME" . | tee -a "$TMP"
# 2-D grid decode: dense reference vs matrix-free operator at 64×64, plus
# the 1024×1024 decode that only exists on the operator path. One decode of
# the 1024² grid is the datum — it runs ~0.5 s, so iterations are pinned low.
go test -run '^$' -bench 'BenchmarkDecode64GridDense|BenchmarkDecode64GridOperator' \
    -benchmem -benchtime "${GRID_BENCHTIME:-20x}" . | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkDecode1024Grid' \
    -benchmem -benchtime "${GRID1024_BENCHTIME:-1x}" . | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkOMP256M30|BenchmarkIHT256|BenchmarkCoSaMP256' \
    -benchmem -benchtime "$BENCHTIME" ./internal/cs/ | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkMul64|BenchmarkQR128x32' \
    -benchmem -benchtime "$BENCHTIME" ./internal/mat/ | tee -a "$TMP"
# Fast-transform kernels: operator vs dense synthesize/analyze pairs.
go test -run '^$' -bench 'BenchmarkOperatorDCT64|BenchmarkOperatorDCT1024|BenchmarkDenseDCT64|BenchmarkDenseDCT1024' \
    -benchmem -benchtime "${KERNEL_BENCHTIME:-2000x}" ./internal/basis/ | tee -a "$TMP"
# Observability overhead: the disabled path must stay ~free, the enabled
# path cheap; a fixed large iteration count keeps sub-ns timings stable.
go test -run '^$' -bench 'BenchmarkObsDisabledCounter|BenchmarkObsEnabledCounter' \
    -benchmem -benchtime "${OBS_BENCHTIME:-2000000x}" ./internal/obs/ | tee -a "$TMP"
# Continuous-service mode: warm vs cold window decode (the warm-start win
# on a slowly-varying field), snapshot publish + lock-free read path, and
# the mixed query-serving path under a live publisher.
go test -run '^$' -bench 'BenchmarkWarmStartWindow|BenchmarkColdStartWindow' \
    -benchmem -benchtime "${SERVICE_BENCHTIME:-20x}" ./internal/stream/ | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkSnapshotSwap|BenchmarkSnapshotLatestParallel' \
    -benchmem -benchtime "${SWAP_BENCHTIME:-20000x}" ./internal/snapshot/ | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkQueryServe' \
    -benchmem -benchtime "${QUERY_BENCHTIME:-20000x}" ./internal/serve/ | tee -a "$TMP"
# Fleet backend: the struct-of-arrays population. The 100k campaign is the
# repeatable datum; the 10^6-node campaign is env-gated (it skips unless
# FLEET_BENCH_FULL=1) and pinned to one iteration — a single full campaign
# is the headline number. The shard step micro-bench rides along.
go test -run '^$' -bench 'BenchmarkFleetCampaign100k' \
    -benchmem -benchtime "${FLEET_BENCHTIME:-5x}" . | tee -a "$TMP"
FLEET_BENCH_FULL=1 go test -run '^$' -bench 'BenchmarkMillionNodeCampaign' \
    -benchmem -benchtime 1x -timeout 30m . | tee -a "$TMP"
go test -run '^$' -bench 'BenchmarkStepWaypoints4096' \
    -benchmem -benchtime "$BENCHTIME" ./internal/mobility/ | tee -a "$TMP"

awk -v go_version="$(go version | awk '{print $3}')" '
BEGIN { n = 0 }
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    # Walk value/unit pairs instead of assuming column positions: benches
    # that emit custom metrics (e.g. the fleet campaigns report "nmse")
    # would otherwise shift B/op and allocs/op into the wrong columns.
    ns_v = 0; b_v = 0; a_v = 0
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns_v = $i
        else if ($(i+1) == "B/op") b_v = $i
        else if ($(i+1) == "allocs/op") a_v = $i
    }
    ns[n] = ns_v; bytes[n] = b_v; allocs[n] = a_v; names[n] = name
    n++
}
END {
    printf "{\n  \"go\": \"%s\",\n  \"benchtime\": \"'"$BENCHTIME"'\",\n  \"benchmarks\": [\n", go_version
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            names[i], ns[i], bytes[i], allocs[i], (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$TMP" > "$OUT"

echo "wrote $OUT"
