#!/usr/bin/env bash
# Static checks plus the race-enabled test suite. The parallel trial/zone
# fan-out must stay race-clean; run this before every commit that touches
# internal/cs, internal/mat, internal/cloud, or internal/experiments.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go test -race =="
GOMAXPROCS="${GOMAXPROCS:-4}" go test -race ./...

echo "all checks passed"
