#!/usr/bin/env bash
# Static checks plus the race-enabled test suite. The parallel trial/zone
# fan-out must stay race-clean; run this before every commit that touches
# internal/cs, internal/mat, internal/cloud, or internal/experiments.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== sdlint =="
# Project-invariant static analysis (internal/lint). The summary line on
# stderr doubles as a self-check: a refactor that breaks package loading
# would report zero packages analyzed and "pass" vacuously, so gate on
# the package count AND the analyzer count (a suite wiring regression
# that silently dropped the interprocedural analyzers would also pass
# vacuously). The wall-clock budget keeps the call-graph/lock-order
# layer honest: whole-tree analysis must stay interactive.
SDLINT_START=$SECONDS
SDLINT_OUT="$(go run ./cmd/sdlint ./... 2>&1)" || {
    echo "$SDLINT_OUT"
    echo "FAIL: sdlint reported findings (or could not load the tree)"
    exit 1
}
SDLINT_SECS=$((SECONDS - SDLINT_START))
echo "$SDLINT_OUT"
if ! echo "$SDLINT_OUT" | grep -Eq 'analyzed [1-9][0-9]* packages'; then
    echo "FAIL: sdlint analyzed zero packages — loader or pattern expansion is broken"
    exit 1
fi
if ! echo "$SDLINT_OUT" | grep -Eq 'with 13 analyzers'; then
    echo "FAIL: sdlint ran without the full 13-analyzer suite — check ProjectAnalyzers wiring"
    exit 1
fi
if [ "$SDLINT_SECS" -gt 35 ]; then
    echo "FAIL: sdlint took ${SDLINT_SECS}s (> 35s budget) — the interprocedural layer regressed"
    echo "per-analyzer wall time (sdlint -json .timings):"
    go run ./cmd/sdlint -json ./... 2>/dev/null | sed -n '/"timings"/,/\]/p' || true
    exit 1
fi
echo "sdlint wall clock: ${SDLINT_SECS}s (budget 35s)"
# The machine-readable report must stay parseable and agree with the
# human run: a clean tree is an empty findings list with all 13
# analyzers present.
SDLINT_JSON="$(go run ./cmd/sdlint -json ./... 2>/dev/null)" || {
    echo "FAIL: sdlint -json exited non-zero on a tree the plain run passed"
    exit 1
}
if ! echo "$SDLINT_JSON" | grep -q '"version": 2'; then
    echo "FAIL: sdlint -json output missing the version marker"
    exit 1
fi
if ! echo "$SDLINT_JSON" | grep -q '"findings": \[\]'; then
    echo "FAIL: sdlint -json reports findings the plain run did not"
    exit 1
fi

echo "== topic graph freshness =="
# docs/topicgraph.txt is the committed protocol map; a bus call site
# added without regenerating it means the review never saw the protocol
# change. Mirrors the lockgraph freshness gate in CI.
if ! go run ./cmd/sdlint -topicgraph ./... | diff -u docs/topicgraph.txt - >/dev/null; then
    echo "FAIL: docs/topicgraph.txt is stale — regenerate with:"
    echo "  go run ./cmd/sdlint -topicgraph ./... > docs/topicgraph.txt"
    exit 1
fi

echo "== fuzz smoke =="
# A few seconds per target: enough to catch a decoder that started
# panicking on NaN/Inf or a frame parser that accepts garbage, without
# turning the pre-commit gate into a fuzzing campaign. One -fuzz flag
# per invocation (the go tool fuzzes exactly one target at a time).
go test -run '^$' -fuzz '^FuzzDecodeOMP$' -fuzztime 3s ./internal/cs
go test -run '^$' -fuzz '^FuzzDecodeIHT$' -fuzztime 3s ./internal/cs
go test -run '^$' -fuzz '^FuzzOperatorRoundTrip$' -fuzztime 3s ./internal/basis
go test -run '^$' -fuzz '^FuzzParseFrame$' -fuzztime 3s ./internal/bus
go test -run '^$' -fuzz '^FuzzTopicMatch$' -fuzztime 3s ./internal/bus
go test -run '^$' -fuzz '^FuzzIgnoreDirective$' -fuzztime 3s ./internal/lint
go test -run '^$' -fuzz '^FuzzCompile$' -fuzztime 3s ./internal/query

echo "== go test -race =="
GOMAXPROCS="${GOMAXPROCS:-4}" go test -race ./...

echo "== chaos (fault injection) =="
# The end-to-end resilience gate: a full hierarchy campaign under a
# scripted partition + infra outage, burst loss, and crash/restart must
# complete, degrade within bounds, and replay identically across
# schedules. -count=1 defeats test caching so the run above never
# satisfies this gate by cache hit.
GOMAXPROCS="${GOMAXPROCS:-4}" go test -race -count=1 -run Chaos ./internal/testutil/chaos/

echo "== obs overhead guard =="
# The disabled instrumentation path must stay free: if a counter op on a
# disabled registry ever allocates, or drifts past 10 ns/op, the whole
# "permanently instrumented hot paths" contract of DESIGN.md §6 is broken.
OBS_BENCH="$(go test -run '^$' -bench 'BenchmarkObsDisabledCounter|BenchmarkObsEnabledCounter' \
    -benchmem -benchtime 2000000x ./internal/obs/)"
echo "$OBS_BENCH"
echo "$OBS_BENCH" | awk '
/^BenchmarkObsDisabledCounter/ {
    if ($7 != 0) { printf "FAIL: disabled counter path allocates (%s allocs/op)\n", $7; bad = 1 }
    if ($3 + 0 > 10) { printf "FAIL: disabled counter path too slow (%s ns/op > 10)\n", $3; bad = 1 }
    seen = 1
}
END {
    if (!seen) { print "FAIL: BenchmarkObsDisabledCounter did not run"; bad = 1 }
    exit bad
}'

echo "all checks passed"
