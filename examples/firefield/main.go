// Firefield: the paper's disaster-and-emergency-response use case.
//
// A fire front (two merging hotspots) burns across a 32×32 area covered by
// a 4×4-zone hierarchy. Each round the fire advances, the middleware runs
// an adaptive campaign that concentrates measurements on the zones where
// the action is (local sparsity) and on the incident zone flagged critical
// by the operator, and the program reports perimeter assessment quality
// and hotspot localization — the paper's "incident perimeter assessment
// and rapid localization of regions with high impact".
//
//	go run ./examples/firefield
package main

import (
	"fmt"
	"log"

	sensedroid "repro"
	"repro/internal/field"
)

// fireAt synthesizes the fire field at time step t: the front advances
// diagonally and intensifies.
func fireAt(t int) *sensedroid.Field {
	adv := float64(t) * 1.5
	return sensedroid.GenPlumes(32, 32, 15, []sensedroid.Plume{
		{Row: 6 + adv, Col: 6 + adv, Sigma: 2.5 + 0.3*float64(t), Amplitude: 40 + 5*float64(t)},
		{Row: 9 + adv, Col: 4 + adv, Sigma: 2.0, Amplitude: 25},
	})
}

// perimeterCells counts cells above the danger threshold.
func perimeterCells(f *sensedroid.Field, threshold float64) int {
	n := 0
	for _, v := range f.Data {
		if v >= threshold {
			n++
		}
	}
	return n
}

func main() {
	sd, err := sensedroid.New(sensedroid.Options{
		FieldW: 32, FieldH: 32,
		ZoneRows: 4, ZoneCols: 4,
		NCsPerZone: 1, NodesPerNC: 4,
		Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sd.Close()

	const danger = 35.0
	var prior *sensedroid.Field
	fmt.Println("step  zone-budget-max  NMSE    hotspot(truth)   hotspot(est)  perim(truth)  perim(est)")
	for t := 0; t < 5; t++ {
		truth := fireAt(t)
		if err := sd.SetTruth(truth); err != nil {
			log.Fatal(err)
		}
		sd.Tick(30) // responders move for 30 s between rounds

		cfg := sensedroid.CampaignConfig{TotalM: 200}
		if prior != nil {
			// Adaptive from the previous reconstruction — the middleware's
			// prior data about each region.
			cfg.Adaptive, cfg.Prior = true, prior
			// Flag the zone holding the last-seen hotspot as critical.
			r, c, _ := prior.MaxLoc()
			zoneID := (r/8)*4 + c/8
			if err := sd.SetCriticality(zoneID, 3); err != nil {
				log.Fatal(err)
			}
		}
		res, err := sd.RunCampaign(cfg)
		if err != nil {
			log.Fatal(err)
		}
		prior = res.Reconstructed

		maxBudget := 0
		for _, m := range res.Plan {
			if m > maxBudget {
				maxBudget = m
			}
		}
		tr, tc, _ := truth.MaxLoc()
		er, ec, _ := res.Reconstructed.MaxLoc()
		fmt.Printf("%4d  %15d  %.4f  (%2d,%2d)          (%2d,%2d)        %12d  %10d\n",
			t, maxBudget, res.GlobalNMSE, tr, tc, er, ec,
			perimeterCells(truth, danger), perimeterCells(res.Reconstructed, danger))
	}

	// Zone detail for the final round: where did the budget go?
	fmt.Println("\nfinal-round zone budgets (4x4, row-major):")
	zones, err := field.Partition(sd.Truth, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sd.RunCampaign(sensedroid.CampaignConfig{TotalM: 200, Adaptive: true, Prior: prior})
	if err != nil {
		log.Fatal(err)
	}
	for zr := 0; zr < 4; zr++ {
		for zc := 0; zc < 4; zc++ {
			fmt.Printf("%4d", res.Plan[zones[zr*4+zc].ID])
		}
		fmt.Println()
	}
}
