// Smartspace: the paper's smart-buildings use case — monitor environmental
// conditions across a facility, deliver only the relevant information to
// subscribers via query filters, respect occupant privacy policies, and
// log everything for later retrieval.
//
// A 16×16 office floor's temperature field is reconstructed from sparse
// occupant-phone measurements; facility subscribers register filter
// expressions ("temp > 26 && zone == 3") against the per-zone summaries;
// one occupant opts out entirely and one shares only coarse (quantized)
// readings; the log store answers an end-of-run range query.
//
//	go run ./examples/smartspace
package main

import (
	"fmt"
	"log"

	sensedroid "repro"
	"repro/internal/field"
	"repro/internal/query"
	"repro/internal/sensor"
	"repro/internal/store"
)

func main() {
	sd, err := sensedroid.New(sensedroid.Options{
		FieldW: 16, FieldH: 16,
		ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 1, NodesPerNC: 4,
		Seed: 2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sd.Close()

	// Occupant privacy: node 0 opts out; node 1 shares temperature only at
	// 0.5 °C granularity.
	sd.Nodes[0].Policy.SetOptOut(true)
	sd.Nodes[1].Policy.SetQuantize(sensor.Temperature, 0.5)

	// Facility subscriptions: filter expressions over zone summaries.
	subs := map[string]string{
		"hvac":     "mean > 24.5",
		"comfort":  "max > 27 || min < 18",
		"security": "zone == 3 && max > 26",
	}
	filters := map[string]*query.Filter{}
	for name, src := range subs {
		f, err := query.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		filters[name] = f
	}

	db := store.New(0)

	// A warm meeting room in the south-east + afternoon sun on the west.
	truth := sensedroid.GenPlumes(16, 16, 21, []sensedroid.Plume{
		{Row: 12, Col: 12, Sigma: 2, Amplitude: 7}, // crowded meeting room
		{Row: 8, Col: 1, Sigma: 3, Amplitude: 4},   // sun-load
	})
	if err := sd.SetTruth(truth); err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  NMSE    denied  alerts")
	for round := 0; round < 3; round++ {
		sd.Tick(60)
		res, err := sd.RunCampaign(sensedroid.CampaignConfig{TotalM: 96})
		if err != nil {
			log.Fatal(err)
		}
		// Per-zone summaries → store + subscriber filters.
		zones, err := field.Partition(res.Reconstructed, 2, 2)
		if err != nil {
			log.Fatal(err)
		}
		var alerts []string
		for _, z := range zones {
			sub := field.Extract(res.Reconstructed, z)
			minV, maxV, sum := sub.Data[0], sub.Data[0], 0.0
			for _, v := range sub.Data {
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
				sum += v
			}
			mean := sum / float64(len(sub.Data))
			if err := db.Append(fmt.Sprintf("zone%d/temp", z.ID), store.Record{
				T: float64(round * 60), Values: []float64{mean, minV, maxV},
			}); err != nil {
				log.Fatal(err)
			}
			env := query.Env{"zone": z.ID, "mean": mean, "min": minV, "max": maxV}
			for name, f := range filters {
				ok, err := f.Eval(env)
				if err != nil {
					log.Fatal(err)
				}
				if ok {
					alerts = append(alerts, fmt.Sprintf("%s@z%d", name, z.ID))
				}
			}
		}
		fmt.Printf("%5d  %.4f  %6d  %v\n", round, res.GlobalNMSE, res.Denied, alerts)
	}

	// End-of-run retrieval: the warm zone's logged history.
	stats, err := db.Aggregate("zone3/temp", 0, 1e9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzone3 temperature log: %d records, mean %.2f °C, max %.2f °C\n",
		stats.Count, stats.Mean, stats.Max)
	fmt.Printf("series in store: %v\n", db.Series())
}
