// Quickstart: the smallest useful SenseDroid program.
//
// It deploys a 2×2-zone hierarchy over a 16×16 field with a handful of
// mobile nodes, installs a synthetic hotspot as ground truth, runs one
// collaborative compressive sensing campaign, and prints how well the
// middleware recovered the field — followed by the temporal-compressive
// IsDriving context on a single node (the paper's Fig. 4 setting).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	sensedroid "repro"
	"repro/internal/basis"
	"repro/internal/contextproc"
	"repro/internal/sensor"
)

func main() {
	// 1. Deploy the hierarchy: public cloud → 4 local clouds → 1 NanoCloud
	//    each → 3 mobile nodes per NanoCloud.
	sd, err := sensedroid.New(sensedroid.Options{
		FieldW: 16, FieldH: 16,
		ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 1, NodesPerNC: 3,
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sd.Close()

	// 2. The "physical world": a warm spot on an ambient background.
	truth := sensedroid.GenPlumes(16, 16, 20, []sensedroid.Plume{
		{Row: 5, Col: 11, Sigma: 2.5, Amplitude: 15},
	})
	if err := sd.SetTruth(truth); err != nil {
		log.Fatal(err)
	}

	// 3. One campaign: 90 measurements for 256 grid cells (2.8x compression).
	res, err := sd.RunCampaign(sensedroid.CampaignConfig{TotalM: 90})
	if err != nil {
		log.Fatal(err)
	}
	r, c, v := res.Reconstructed.MaxLoc()
	fmt.Printf("campaign: %d measurements (%d mobile, %d infrastructure)\n",
		res.Measurements, res.NodesUsed, res.InfraUsed)
	fmt.Printf("  global NMSE        %.4f\n", res.GlobalNMSE)
	fmt.Printf("  hotspot recovered  (%d,%d) = %.1f (truth: (5,11) = %.1f)\n",
		r, c, v, truth.At(5, 11))
	fmt.Printf("  bus traffic        %d bytes, node energy %.1f mJ\n",
		sd.BusBytes(), sd.TotalEnergyMJ())

	// 4. Temporal compressive context: IsDriving from 30 of 256 samples.
	model, err := sensor.AccelModel(sensor.MotionDriving)
	if err != nil {
		log.Fatal(err)
	}
	probe, err := sensor.NewProbe("demo/accel", sensor.Accelerometer, 3,
		sensor.Config{RateHz: 64, NoiseSigma: 0.02, Seed: 7}, model)
	if err != nil {
		log.Fatal(err)
	}
	window, err := probe.CollectAxis(256, 2)
	if err != nil {
		log.Fatal(err)
	}
	dft, err := basis.CachedOperator(basis.KindDFT, 256)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := contextproc.NewPipeline(dft, 30, 8)
	if err != nil {
		log.Fatal(err)
	}
	comp, full, nmse, err := pipe.ClassifyCompressive(window, 64, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("context: full-window=%s compressive(30/256)=%s reconstruction NMSE %.4f\n",
		full, comp, nmse)
}
