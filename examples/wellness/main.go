// Wellness: the paper's personal-health use case — "a family or a group of
// related people … jointly infer their moods and exercise routines … to
// find combined stress quotient … a family health indicator".
//
// Four family members' handsets run on-device context sensing (activity,
// stress, indoor/outdoor). Each member's accelerometer window is sampled
// compressively (30 of 256 instants) to save energy, then the per-member
// contexts are fused into the family health indicator. Per-member energy
// is compared against always-on sampling.
//
//	go run ./examples/wellness
package main

import (
	"fmt"
	"log"

	"repro/internal/basis"
	"repro/internal/contextproc"
	"repro/internal/energy"
	"repro/internal/mobility"
	"repro/internal/node"
	"repro/internal/sensor"
)

// homeEnv is a trivial environment: the family home.
type homeEnv struct{}

func (homeEnv) FieldValue(kind sensor.Kind, gridIdx int) float64 { return 21.0 }
func (homeEnv) GridDims() (int, int)                             { return 4, 4 }
func (homeEnv) AreaDims() (float64, float64)                     { return 40, 40 }

type member struct {
	name   string
	motion sensor.MotionScenario
	indoor sensor.Schedule
}

func main() {
	family := []member{
		{"alice", sensor.MotionDriving, sensor.AlternatingSchedule(0)},        // commuting
		{"bob", sensor.MotionWalking, func(t float64) bool { return false }},  // on a walk
		{"carol", sensor.MotionIdle, sensor.AlternatingSchedule(0)},           // at a desk
		{"dave", sensor.MotionWalking, func(t float64) bool { return false }}, // walking too
	}
	dft, err := basis.CachedOperator(basis.KindDFT, 256)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := contextproc.NewPipeline(dft, 30, 8)
	if err != nil {
		log.Fatal(err)
	}

	var contexts []contextproc.MemberContext
	fmt.Println("member  activity  indoor  stress  cadence  accel-energy(mJ)  vs-full-sampling")
	for i, m := range family {
		nd, err := node.New(node.Config{
			ID: m.name, Seed: int64(1000 + i*7), Motion: m.motion, Indoor: m.indoor,
			Profile: sensor.ProfileMidrange,
		}, homeEnv{}, mobility.Static{})
		if err != nil {
			log.Fatal(err)
		}
		// Compressive on-device context (30/256 duty cycle).
		rep, err := nd.SenseContext(256, 64, pipe)
		if err != nil {
			log.Fatal(err)
		}
		compEnergy := nd.Meter.Breakdown()["sense/accelerometer"]

		// Pedometer virtual sensor on a fresh full window (exercise log).
		accel := nd.Probes.ByKind(sensor.Accelerometer)[0]
		stepWin, err := accel.CollectAxis(256, 2)
		if err != nil {
			log.Fatal(err)
		}
		cadence, err := contextproc.Cadence(stepWin, 64)
		if err != nil {
			log.Fatal(err)
		}

		// Reference: the same context with always-on sampling.
		full, err := node.New(node.Config{
			ID: m.name + "-full", Seed: int64(1000 + i*7), Motion: m.motion, Indoor: m.indoor,
			Profile: sensor.ProfileMidrange,
		}, homeEnv{}, mobility.Static{})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := full.SenseContext(256, 64, nil); err != nil {
			log.Fatal(err)
		}
		fullEnergy := full.Meter.Breakdown()["sense/accelerometer"]

		fmt.Printf("%-7s %-9s %-7v %.2f    %.1f/s    %12.3f  %.0f%% saved\n",
			rep.NodeID, rep.Activity, rep.Indoor, rep.Stress, cadence, compEnergy,
			energy.SavingsPercent(fullEnergy, compEnergy))
		contexts = append(contexts, contextproc.MemberContext{
			Member: rep.NodeID, Activity: rep.Activity, Stress: rep.Stress, Indoor: rep.Indoor,
		})
	}

	group, err := contextproc.FuseGroup(contexts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfamily health indicator (%d members):\n", group.Size)
	fmt.Printf("  majority activity     %s\n", group.MajorityAct)
	fmt.Printf("  combined stress       %.2f\n", group.StressQuotient)
	fmt.Printf("  indoor fraction       %.0f%%\n", 100*group.IndoorFraction)
	switch {
	case group.StressQuotient > 0.6:
		fmt.Println("  assessment            elevated — suggest a shared break")
	case group.MajorityAct == contextproc.ActivityWalking:
		fmt.Println("  assessment            active and healthy")
	default:
		fmt.Println("  assessment            normal")
	}
}
