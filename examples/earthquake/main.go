// Earthquake: the paper's §3 motivating scenario for the IsIndoor virtual
// sensor — "this 'IsIndoor' flag spatial field can be used, for instance,
// during an earthquake to assess the potential dangers to human life."
//
// Phones across a 24×24-cell city derive IsIndoor locally from
// compressively-sampled GPS/WiFi, report their flags, and the cloud builds
// an indoor-occupancy density field. Overlaid with the shaking-intensity
// field, zones are ranked by danger = occupancy-indoors × intensity — the
// rescue priority list.
//
//	go run ./examples/earthquake
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	sensedroid "repro"
	"repro/internal/contextproc"
	"repro/internal/field"
	"repro/internal/mobility"
)

const (
	gridW, gridH = 24, 24
	zoneRows     = 3
	zoneCols     = 3
	people       = 160
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Shaking intensity: epicenter in the north-west.
	intensity := sensedroid.GenPlumes(gridW, gridH, 1, []sensedroid.Plume{
		{Row: 5, Col: 6, Sigma: 6, Amplitude: 8},
	})

	// Population: people roam the city; those in "buildings" (a downtown
	// cluster plus scattered blocks) read as indoor.
	downtown := func(r, c int) bool {
		return (r >= 3 && r <= 9 && c >= 3 && c <= 10) || // downtown near the epicenter
			(r >= 14 && r <= 18 && c >= 14 && c <= 20) // a second district
	}
	indoorCount := sensedroid.NewField(gridW, gridH)
	totalCount := sensedroid.NewField(gridW, gridH)
	indoorFlags := 0
	for p := 0; p < people; p++ {
		mob, err := mobility.NewRandomWaypoint(
			rand.New(rand.NewSource(rng.Int63())), gridW*10, gridH*10, 1, 3, 5)
		if err != nil {
			log.Fatal(err)
		}
		// Walk each person for a while so positions decorrelate.
		for s := 0; s < 30; s++ {
			mob.Step(10)
		}
		idx := mobility.GridIndex(mob.Pos(), gridW*10, gridH*10, gridW, gridH)
		proto := sensedroid.NewField(gridW, gridH)
		r, c := proto.Loc(idx)
		inside := downtown(r, c) && rng.Float64() < 0.8

		// The phone decides IsIndoor from its own (noisy) GPS/WiFi scan —
		// the same fusion rule the context engine uses middleware-wide.
		reading := contextproc.EnvReading{
			GPSSatellites: 9 - 7*b2f(inside) + rng.NormFloat64()*0.5,
			GPSAccuracyM:  4 + 44*b2f(inside) + rng.NormFloat64()*2,
			WiFiRSSIdBm:   -86 + 42*b2f(inside) + rng.NormFloat64()*2,
			WiFiAPCount:   1 + 7*b2f(inside) + rng.NormFloat64()*0.5,
		}
		flag := contextproc.IsIndoor(reading)
		totalCount.Data[idx]++
		if flag {
			indoorCount.Data[idx]++
			indoorFlags++
		}
	}
	fmt.Printf("population: %d phones reporting, %d flagged indoors\n\n", people, indoorFlags)

	// Danger field: indoor occupancy × shaking intensity, per zone.
	zones, err := field.Partition(intensity, zoneRows, zoneCols)
	if err != nil {
		log.Fatal(err)
	}
	type zoneDanger struct {
		id             int
		indoor, people int
		meanIntensity  float64
		danger         float64
	}
	var ranking []zoneDanger
	for _, z := range zones {
		zi := field.Extract(indoorCount, z)
		zt := field.Extract(totalCount, z)
		zq := field.Extract(intensity, z)
		ind, tot, qsum := 0.0, 0.0, 0.0
		for i := range zi.Data {
			ind += zi.Data[i]
			tot += zt.Data[i]
			qsum += zq.Data[i]
		}
		meanQ := qsum / float64(len(zq.Data))
		ranking = append(ranking, zoneDanger{
			id: z.ID, indoor: int(ind), people: int(tot),
			meanIntensity: meanQ, danger: ind * meanQ,
		})
	}
	sort.Slice(ranking, func(i, j int) bool { return ranking[i].danger > ranking[j].danger })

	fmt.Println("rescue priority (danger = indoor-occupancy x mean shaking intensity):")
	fmt.Println("rank  zone  people  indoors  intensity  danger")
	for rank, z := range ranking {
		fmt.Printf("%4d  %4d  %6d  %7d  %9.2f  %6.1f\n",
			rank+1, z.id, z.people, z.indoor, z.meanIntensity, z.danger)
		if rank == 4 {
			break
		}
	}
	top := ranking[0]
	fmt.Printf("\ndispatch: zone %d first — %d people indoors under intensity %.1f shaking\n",
		top.id, top.indoor, top.meanIntensity)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
