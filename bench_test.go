package sensedroid

// One benchmark per evaluation artifact (figures F1–F6, claims C1–C6,
// ablations A1–A3 — see DESIGN.md §3). Each bench regenerates its
// figure/claim through the same code path as `cmd/experiments`, at a
// configuration scaled so a single iteration is bench-friendly; the
// full-scale series are produced by `go run ./cmd/experiments all`.

import (
	"math/rand"
	"os"
	"testing"

	"repro/internal/basis"
	"repro/internal/cs"
	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/fleet"
)

func benchTable(b *testing.B, run func() (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkFig1HierarchyScalability(b *testing.B) {
	cfg := experiments.Fig1Config{NodeCounts: []int{256}, LCs: 4, NCsPerLC: 4, Seed: 1}
	benchTable(b, func() (*experiments.Table, error) { return experiments.Fig1(cfg) })
}

func BenchmarkFig2NanoCloudRoundTrip(b *testing.B) {
	cfg := experiments.Fig2Config{Nodes: 16, M: 32, Seed: 2}
	benchTable(b, func() (*experiments.Table, error) { return experiments.Fig2(cfg) })
}

func BenchmarkFig3VirtualSensorFusion(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.Fig3(3) })
}

func BenchmarkFig4ReconstructionVsM(b *testing.B) {
	cfg := experiments.Fig4Config{N: 256, Ms: []int{16, 30, 64}, K: 8, Trials: 2, Seed: 4}
	benchTable(b, func() (*experiments.Table, error) { return experiments.Fig4(cfg) })
}

func BenchmarkFig5AdaptiveZones(b *testing.B) {
	cfg := experiments.Fig5Config{FieldW: 32, FieldH: 32, ZoneRows: 4, ZoneCols: 4,
		NodesPerNC: 3, TotalM: 160, Trials: 1, Seed: 5}
	benchTable(b, func() (*experiments.Table, error) { return experiments.Fig5(cfg) })
}

func BenchmarkFig6CHSAlgorithm(b *testing.B) {
	cfg := experiments.Fig6Config{N: 128, M: 40, K: 6, Trials: 2, Seed: 6}
	benchTable(b, func() (*experiments.Table, error) { return experiments.Fig6(cfg) })
}

func BenchmarkC1TransmissionScaling(b *testing.B) {
	cfg := experiments.C1Config{NodeCounts: []int{128, 256}, K: 8, Seed: 11}
	benchTable(b, func() (*experiments.Table, error) { return experiments.C1(cfg) })
}

func BenchmarkC2MeasurementBound(b *testing.B) {
	cfg := experiments.C2Config{Ns: []int{128, 256}, Ks: []int{5}, Trials: 3, Seed: 12}
	benchTable(b, func() (*experiments.Table, error) { return experiments.C2(cfg) })
}

func BenchmarkC3EnergySavings(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.C3(experiments.DefaultC3()) })
}

func BenchmarkC4IsIndoor(b *testing.B) {
	cfg := experiments.C4Config{Windows: 4, WindowLen: 64, M: 16, Seed: 14}
	benchTable(b, func() (*experiments.Table, error) { return experiments.C4(cfg) })
}

func BenchmarkC5IsDriving(b *testing.B) {
	cfg := experiments.C5Config{Ms: []int{30}, Trials: 3, Seed: 15}
	benchTable(b, func() (*experiments.Table, error) { return experiments.C5(cfg) })
}

func BenchmarkC6Incentives(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.C6(experiments.DefaultC6()) })
}

func BenchmarkA1BasisChoice(b *testing.B) {
	cfg := experiments.A1Config{W: 16, H: 16, M: 48, K: 10, PriorT: 30, Trials: 2, Seed: 21}
	benchTable(b, func() (*experiments.Table, error) { return experiments.A1(cfg) })
}

func BenchmarkA2OptimalK(b *testing.B) {
	cfg := experiments.A2Config{N: 128, M: 36, Ks: []int{2, 4, 16}, Noise: 0.05, Trials: 5, Seed: 22}
	benchTable(b, func() (*experiments.Table, error) { return experiments.A2(cfg) })
}

func BenchmarkA3Criticality(b *testing.B) {
	cfg := experiments.A3Config{TotalM: 120, Crit: 4, Trials: 1, Seed: 23}
	benchTable(b, func() (*experiments.Table, error) { return experiments.A3(cfg) })
}

// BenchmarkEndToEndCampaign times one full hierarchical sensing round
// through the public API — the middleware's steady-state unit of work.
func BenchmarkEndToEndCampaign(b *testing.B) {
	sd, err := New(Options{
		FieldW: 32, FieldH: 32, ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 1, NodesPerNC: 4, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sd.Close()
	truth := GenPlumes(32, 32, 12, []Plume{{Row: 10, Col: 20, Sigma: 3, Amplitude: 30}})
	if err := sd.SetTruth(truth); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sd.RunCampaign(CampaignConfig{TotalM: 120}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA4DecoderComparison(b *testing.B) {
	cfg := experiments.A4Config{N: 64, M: 28, K: 4, Noise: 0.02, Trials: 2, Seed: 24}
	benchTable(b, func() (*experiments.Table, error) { return experiments.A4(cfg) })
}

func BenchmarkA5SpatioTemporal(b *testing.B) {
	cfg := experiments.A5Config{W: 10, H: 10, Steps: 6, Ms: []int{16}, Drift: 0.15, Seed: 25}
	benchTable(b, func() (*experiments.Table, error) { return experiments.A5(cfg) })
}

func BenchmarkA6AdaptiveSampling(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.A6(experiments.DefaultA6()) })
}

func BenchmarkC7RadioSelection(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return experiments.C7(experiments.DefaultC7()) })
}

func BenchmarkC8Coverage(b *testing.B) {
	cfg := experiments.C8Config{GridW: 8, GridH: 8, Nodes: 4, DurationS: 600, StepS: 5, Seed: 28}
	benchTable(b, func() (*experiments.Table, error) { return experiments.C8(cfg) })
}

func BenchmarkC9Opportunistic(b *testing.B) {
	cfg := experiments.C9Config{AreaM: 200, Radius: 20, Rounds: 5, Crowds: []int{60}, Seed: 29}
	benchTable(b, func() (*experiments.Table, error) { return experiments.C9(cfg) })
}

// --- 2-D field decode: dense reference vs matrix-free operators -------------

// gridProblem builds one deterministic w×h plume-field decode problem.
func gridProblem(b *testing.B, w, h, m int) (*field.Field, []int, []float64) {
	b.Helper()
	truth := field.GenPlumes(w, h, 10, []field.Plume{
		{Row: 0.3 * float64(h), Col: 0.6 * float64(w), Sigma: float64(w) / 12, Amplitude: 30},
		{Row: 0.7 * float64(h), Col: 0.2 * float64(w), Sigma: float64(w) / 16, Amplitude: 18},
	})
	rng := rand.New(rand.NewSource(77))
	locs, err := cs.RandomLocations(rng, truth.N(), m)
	if err != nil {
		b.Fatal(err)
	}
	y, err := cs.Measure(truth.Vector(), locs, rng, nil)
	if err != nil {
		b.Fatal(err)
	}
	return truth, locs, y
}

// BenchmarkDecode64GridDense decodes a 64×64 field through the dense
// 4096×4096 Kronecker DCT matrix — the pre-operator reference path.
func BenchmarkDecode64GridDense(b *testing.B) {
	truth, locs, y := gridProblem(b, 64, 64, 400)
	phi, err := truth.Basis2D(basis.KindDCT)
	if err != nil {
		b.Fatal(err)
	}
	opts := cs.CHSOptions{MaxSupport: 32, PerIter: 2, Tol: 1e-6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.CHS(phi, locs, y, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode64GridOperator decodes the identical 64×64 problem
// through the separable fast-DCT operator (DESIGN.md §9).
func BenchmarkDecode64GridOperator(b *testing.B) {
	truth, locs, y := gridProblem(b, 64, 64, 400)
	op, err := truth.Operator2D(basis.KindDCT)
	if err != nil {
		b.Fatal(err)
	}
	opts := cs.CHSOptions{MaxSupport: 32, PerIter: 2, Tol: 1e-6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.CHSOp(op, locs, y, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fleet backend: struct-of-arrays population at scale ---------------------

// fleetBench runs one full fleet campaign per iteration: population
// construction, Rounds duty rounds of tick/report/batched-netsim
// traffic, and the per-zone decode. Construction is inside the timed
// loop deliberately — a campaign mutates the population (energy,
// mobility), so each iteration must start from the same seeded state,
// and standing up the shards is part of the unit of work being claimed.
func fleetBench(b *testing.B, nodes, shardSize, fieldDim, zoneRC, budget, maxSupport int) {
	b.Helper()
	truth := field.GenPlumes(fieldDim, fieldDim, 10, []field.Plume{
		{Row: 0.3 * float64(fieldDim), Col: 0.6 * float64(fieldDim), Sigma: float64(fieldDim) / 12, Amplitude: 30},
		{Row: 0.7 * float64(fieldDim), Col: 0.2 * float64(fieldDim), Sigma: float64(fieldDim) / 16, Amplitude: 18},
	})
	b.ReportAllocs()
	b.ResetTimer()
	var nmse float64
	for i := 0; i < b.N; i++ {
		p, err := fleet.NewPopulation(fleet.Config{
			Nodes: nodes, ShardSize: shardSize,
			FieldW: fieldDim, FieldH: fieldDim,
			ZoneRows: zoneRC, ZoneCols: zoneRC, Seed: 61,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.SetTruth(truth); err != nil {
			b.Fatal(err)
		}
		r, err := fleet.NewRunner(p, 62, budget)
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run(fleet.CampaignConfig{MaxSupport: maxSupport})
		if err != nil {
			b.Fatal(err)
		}
		if res.GlobalNMSE > 1 {
			b.Fatalf("reconstruction collapsed: NMSE %v", res.GlobalNMSE)
		}
		nmse = res.GlobalNMSE
	}
	b.ReportMetric(nmse, "nmse")
}

// BenchmarkFleetCampaign100k is the always-on fleet datum: 10^5 nodes,
// 128×128 field, 4 zones. CI's bench smoke runs it at -benchtime=1x.
func BenchmarkFleetCampaign100k(b *testing.B) {
	fleetBench(b, 100_000, 8192, 128, 2, 256, 32)
}

// BenchmarkMillionNodeCampaign is the headline scale point: 10^6 nodes
// across 16 zones of a 256×256 field, a full duty cycle of batched
// measurement traffic, and 16 parallel zone decodes. It runs only when
// FLEET_BENCH_FULL=1 (scripts/bench.sh sets it) so the CI bench smoke,
// which executes every benchmark once, stays fast.
func BenchmarkMillionNodeCampaign(b *testing.B) {
	if os.Getenv("FLEET_BENCH_FULL") == "" {
		b.Skip("set FLEET_BENCH_FULL=1 to run the 10^6-node campaign")
	}
	fleetBench(b, 1_000_000, 8192, 256, 4, 1024, 64)
}

// BenchmarkDecode1024Grid decodes a 1024×1024 field (n = 2^20). The dense
// sensing matrix for this grid would need ~8 TB; it exists only on the
// operator path. Run with -benchtime=1x — one decode is the datum.
func BenchmarkDecode1024Grid(b *testing.B) {
	truth, locs, y := gridProblem(b, 1024, 1024, 3000)
	op, err := truth.Operator2D(basis.KindDCT)
	if err != nil {
		b.Fatal(err)
	}
	opts := cs.CHSOptions{MaxSupport: 16, PerIter: 4, Tol: 1e-6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.CHSOp(op, locs, y, opts); err != nil {
			b.Fatal(err)
		}
	}
}
