package sensedroid

import "testing"

// TestPublicAPIEndToEnd drives the full middleware through the public
// façade only: deploy, install truth, campaign, inspect.
func TestPublicAPIEndToEnd(t *testing.T) {
	sd, err := New(Options{
		FieldW: 16, FieldH: 16, ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 1, NodesPerNC: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()

	truth := GenPlumes(16, 16, 10, []Plume{{Row: 5, Col: 11, Sigma: 2.5, Amplitude: 25}})
	if err := sd.SetTruth(truth); err != nil {
		t.Fatal(err)
	}
	res, err := sd.RunCampaign(CampaignConfig{TotalM: 90})
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalNMSE > 0.05 {
		t.Fatalf("NMSE %v", res.GlobalNMSE)
	}
	r, c, _ := res.Reconstructed.MaxLoc()
	if (r-5)*(r-5)+(c-11)*(c-11) > 4 {
		t.Fatalf("hotspot at (%d,%d), truth (5,11)", r, c)
	}
	// Adaptive follow-up reusing the first reconstruction as the prior —
	// the intended steady-state usage pattern.
	res2, err := sd.RunCampaign(CampaignConfig{
		TotalM: 90, Adaptive: true, Prior: res.Reconstructed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.GlobalNMSE > 0.1 {
		t.Fatalf("adaptive follow-up NMSE %v", res2.GlobalNMSE)
	}
}

func TestNewFieldHelper(t *testing.T) {
	f := NewField(4, 6)
	if f.W != 4 || f.H != 6 || f.N() != 24 {
		t.Fatalf("field %dx%d", f.H, f.W)
	}
}

// TestDayInTheLife exercises the whole middleware in one scenario: deploy,
// publish contexts, query them, run a spatial campaign, log zone summaries,
// run a temporal campaign over an evolving field, and check the books
// (energy, traffic, directory) at the end.
func TestDayInTheLife(t *testing.T) {
	sd, err := New(Options{
		FieldW: 16, FieldH: 16, ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 1, NodesPerNC: 3, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()

	// Morning: everyone shares context; the wellness dashboard queries it.
	if _, err := sd.PublishContexts(256, 64); err != nil {
		t.Fatal(err)
	}
	active, err := sd.QueryContexts("activity == 'walking' && stress < 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(active) == 0 {
		t.Fatal("no active members found")
	}

	// Midday: a hotspot appears; spatial campaign maps it.
	truth := GenPlumes(16, 16, 18, []Plume{{Row: 9, Col: 4, Sigma: 2.2, Amplitude: 22}})
	if err := sd.SetTruth(truth); err != nil {
		t.Fatal(err)
	}
	res, err := sd.RunCampaign(CampaignConfig{TotalM: 90})
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalNMSE > 0.05 {
		t.Fatalf("midday campaign NMSE %v", res.GlobalNMSE)
	}

	// Afternoon: the hotspot drifts; temporal campaign tracks it jointly.
	evolve := func(step int) *Field {
		return GenPlumes(16, 16, 18, []Plume{{
			Row: 9 + 0.5*float64(step), Col: 4 + 0.4*float64(step),
			Sigma: 2.2, Amplitude: 22,
		}})
	}
	tres, err := sd.RunTemporalCampaign(TemporalCampaignConfig{
		Steps: 4, TotalM: 48, Evolve: evolve,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tres.MeanNMSE > 0.1 {
		t.Fatalf("temporal campaign NMSE %v", tres.MeanNMSE)
	}

	// Evening audit: the middleware kept its books.
	if sd.BusBytes() == 0 {
		t.Fatal("no bus traffic recorded")
	}
	if sd.TotalEnergyMJ() == 0 {
		t.Fatal("no energy recorded")
	}
	if got := len(sd.Directory.ByKind("node")); got != len(sd.Nodes) {
		t.Fatalf("directory lists %d nodes, want %d", got, len(sd.Nodes))
	}
	for _, n := range sd.Nodes {
		if n.Battery.FractionRemaining() >= 1 {
			t.Fatalf("node %s battery untouched after a full day", n.ID)
		}
	}
}
