// Command sensedroid-broker runs a NanoCloud broker as a standalone
// process serving the middleware bus over TCP, so sensedroid-node
// processes can join from other terminals/machines.
//
// Both sides simulate the same physical world from a shared seed (there
// is no real atmosphere to measure), so start nodes with the identical
// -world-seed:
//
//	sensedroid-broker -addr :7070 -nc nc0 -world-seed 9
//	sensedroid-node   -addr localhost:7070 -nc nc0 -id n1 -world-seed 9
//
// The broker waits for registrations on <nc>/register, then runs a gather
// + reconstruct round every -interval and prints a field summary.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/bus"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/sensor"
)

// worldEnv exposes the shared synthetic world to the broker (used for the
// infrastructure-sensor fallback).
type worldEnv struct {
	f     *field.Field
	scale float64
}

func (e worldEnv) FieldValue(kind sensor.Kind, gridIdx int) float64 { return e.f.Data[gridIdx] }
func (e worldEnv) GridDims() (int, int)                             { return e.f.W, e.f.H }
func (e worldEnv) AreaDims() (float64, float64) {
	return float64(e.f.W) * e.scale, float64(e.f.H) * e.scale
}

func main() {
	var (
		addr      = flag.String("addr", ":7070", "TCP listen address")
		ncID      = flag.String("nc", "nc0", "NanoCloud ID")
		w         = flag.Int("w", 16, "field width")
		h         = flag.Int("h", 16, "field height")
		m         = flag.Int("m", 48, "measurements per round")
		interval  = flag.Duration("interval", 5*time.Second, "round interval")
		rounds    = flag.Int("rounds", 0, "rounds to run (0 = forever)")
		worldSeed = flag.Int64("world-seed", 9, "shared synthetic-world seed")
		seed      = flag.Int64("seed", 1, "broker RNG seed")
		debugAddr = flag.String("debug-addr", "", "serve /metrics.json, /spans and /debug/pprof on this address (enables metrics)")
	)
	flag.Parse()

	if *debugAddr != "" {
		dbg, bound, err := obs.StartDebugServer(*debugAddr, obs.Default)
		if err != nil {
			log.Fatalf("sensedroid-broker: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug endpoints on http://%s (/metrics.json /spans /debug/pprof/)", bound)
	}

	rng := rand.New(rand.NewSource(*worldSeed))
	world, _ := field.GenRandomPlumes(rng, *w, *h, 3, 10, 30)
	env := worldEnv{f: world, scale: 10}

	b := bus.New()
	b.AddHook(bus.ObsHook())
	srv, err := bus.NewServer(b, *addr)
	if err != nil {
		log.Fatalf("sensedroid-broker: %v", err)
	}
	defer srv.Close()
	log.Printf("broker %s listening on %s (world %dx%d, M=%d)", *ncID, srv.Addr(), *h, *w, *m)

	br, err := broker.New(broker.Config{ID: *ncID, Seed: *seed, Timeout: 3 * time.Second}, b, env)
	if err != nil {
		log.Fatalf("sensedroid-broker: %v", err)
	}

	// Accept node registrations.
	var mu sync.Mutex
	reg, err := b.Subscribe(bus.RegisterTopic(*ncID), 64)
	if err != nil {
		log.Fatalf("sensedroid-broker: %v", err)
	}
	go func() {
		for msg := range reg.C {
			id := string(msg.Payload)
			mu.Lock()
			if err := br.Register(id); err != nil {
				log.Printf("register %s: %v", id, err)
			} else {
				log.Printf("node %s joined", id)
			}
			mu.Unlock()
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	round := 0
	for {
		select {
		case <-stop:
			log.Printf("broker shutting down after %d rounds", round)
			return
		case <-ticker.C:
			round++
			rec, err := br.Reconstruct(sensor.Temperature, *m, broker.ReconstructOptions{UseGLS: true})
			if err != nil {
				log.Printf("round %d: %v", round, err)
				continue
			}
			r, c, v := rec.Field.MaxLoc()
			fmt.Printf("round %3d: nodes=%d infra=%d denied=%d support=%d residual=%.4f hotspot=(%d,%d)=%.2f\n",
				round, rec.Gather.NodesUsed, rec.Gather.InfraUsed, rec.Gather.Denied,
				len(rec.Result.Support), rec.Result.Residual, r, c, v)
			if *rounds > 0 && round >= *rounds {
				return
			}
		}
	}
}
