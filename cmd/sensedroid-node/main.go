// Command sensedroid-node runs one simulated mobile node as a standalone
// process: it dials a sensedroid-broker's TCP bus, registers, and serves
// the broker's measure/position commands while roaming the shared
// synthetic world (use the same -world-seed as the broker).
//
//	sensedroid-node -addr localhost:7070 -nc nc0 -id n1 -world-seed 9
package main

import (
	"encoding/json"
	"flag"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"time"

	"repro/internal/bus"
	"repro/internal/field"
	"repro/internal/mobility"
	"repro/internal/node"
	"repro/internal/obs"
)

// Standalone-node observability handles (no-ops unless -debug-addr).
var (
	obsCommands = obs.GetCounter("nodeproc.commands")
	obsReplies  = obs.GetCounter("nodeproc.replies")
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:7070", "broker bus address")
		ncID      = flag.String("nc", "nc0", "NanoCloud ID")
		id        = flag.String("id", "n1", "node ID")
		w         = flag.Int("w", 16, "field width (must match broker)")
		h         = flag.Int("h", 16, "field height (must match broker)")
		worldSeed = flag.Int64("world-seed", 9, "shared synthetic-world seed")
		seed      = flag.Int64("seed", 0, "node RNG seed (0 = derive from id)")
		noise     = flag.Float64("noise", 0.2, "sensor noise sigma")
		debugAddr = flag.String("debug-addr", "", "serve /metrics.json, /spans and /debug/pprof on this address (enables metrics)")
	)
	flag.Parse()
	if *debugAddr != "" {
		dbg, bound, err := obs.StartDebugServer(*debugAddr, obs.Default)
		if err != nil {
			log.Fatalf("sensedroid-node: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug endpoints on http://%s (/metrics.json /spans /debug/pprof/)", bound)
	}
	if *seed == 0 {
		for _, ch := range *id {
			*seed = *seed*131 + int64(ch)
		}
	}

	// Rebuild the shared world.
	wrng := rand.New(rand.NewSource(*worldSeed))
	world, _ := field.GenRandomPlumes(wrng, *w, *h, 3, 10, 30)
	areaW, areaH := float64(*w)*10, float64(*h)*10

	cli, err := bus.Dial(*addr)
	if err != nil {
		log.Fatalf("sensedroid-node: %v", err)
	}
	defer cli.Close()

	// Subscribe to this node's command topics before registering so no
	// command can race past us.
	cmds, err := cli.Subscribe(bus.NodeCommandPattern(*ncID, *id))
	if err != nil {
		log.Fatalf("sensedroid-node: %v", err)
	}
	if err := cli.Publish(bus.RegisterTopic(*ncID), []byte(*id)); err != nil {
		log.Fatalf("sensedroid-node: %v", err)
	}
	log.Printf("node %s joined %s at %s", *id, *ncID, *addr)

	rng := rand.New(rand.NewSource(*seed))
	mob, err := mobility.NewRandomWaypoint(rng, areaW, areaH, 0.8, 2.2, 2)
	if err != nil {
		log.Fatalf("sensedroid-node: %v", err)
	}
	var mu sync.Mutex
	roamDone := make(chan struct{})
	defer close(roamDone)
	go func() { // roam until main returns
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-roamDone:
				return
			case <-tick.C:
				mu.Lock()
				mob.Step(0.5)
				mu.Unlock()
			}
		}
	}()
	gridIdx := func() int {
		mu.Lock()
		defer mu.Unlock()
		return mobility.GridIndex(mob.Pos(), areaW, areaH, *w, *h)
	}

	measureTopic := node.MeasureTopic(*ncID, *id)
	positionTopic := node.PositionTopic(*ncID, *id)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	for {
		select {
		case <-stop:
			log.Printf("node %s leaving", *id)
			return
		case msg, ok := <-cmds:
			if !ok {
				log.Printf("node %s: bus closed", *id)
				return
			}
			var env struct {
				ReplyTo string          `json:"replyTo"`
				Body    json.RawMessage `json:"body"`
			}
			if err := json.Unmarshal(msg.Payload, &env); err != nil || env.ReplyTo == "" {
				continue
			}
			obsCommands.Inc()
			var reply any
			switch msg.Topic {
			case measureTopic:
				idx := gridIdx()
				reply = node.FieldReading{
					NodeID: *id, GridIdx: idx,
					Value: world.Data[idx] + rng.NormFloat64()*(*noise),
					Sigma: *noise,
				}
			case positionTopic:
				reply = node.PositionReply{NodeID: *id, GridIdx: gridIdx()}
			default:
				continue
			}
			raw, err := json.Marshal(reply)
			if err != nil {
				continue
			}
			if err := cli.Publish(env.ReplyTo, raw); err != nil {
				log.Printf("node %s: publish reply: %v", *id, err)
			} else {
				obsReplies.Inc()
			}
		}
	}
}
