// Command sdlint runs SenseDroid's project-invariant static-analysis
// suite (internal/lint) over the module.
//
// Usage:
//
//	go run ./cmd/sdlint ./...
//	go run ./cmd/sdlint ./internal/cs ./internal/bus
//
// Diagnostics print one per line as path:line:col: message (check) and
// are sorted by position. Exit status: 0 clean, 1 findings (or no
// packages matched — a silent no-op gate is worse than a loud one),
// 2 load/usage errors. The final "sdlint: analyzed N packages" summary
// on stderr is parsed by scripts/check.sh as a zero-package guard and
// an analyzer-count gate.
//
// With -json the stdout report is instead one deterministic JSON
// document (version, packages, sorted analyzer names, position-sorted
// findings, suppressed count); exit codes and the stderr summary are
// unchanged, so machine consumers get both the artifact and the gate.
//
// Debug dumps (both deterministic, sorted, to stdout, exit 0):
//
//	sdlint -lockgraph ./...        inferred lock-acquisition hierarchy
//	sdlint -topicgraph ./...       publisher/subscriber/responder topic
//	                               graph (committed as docs/topicgraph.txt)
//	sdlint -callgraph <pkg> ./...  call graph of one package (import
//	                               path or suffix, e.g. internal/bus)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod at or above the working directory)")
	lockgraph := flag.Bool("lockgraph", false, "dump the inferred lock-acquisition hierarchy instead of linting")
	topicgraph := flag.Bool("topicgraph", false, "dump the message-protocol topic graph instead of linting")
	callgraph := flag.String("callgraph", "", "dump the call graph of the named package (import path or suffix) instead of linting")
	jsonOut := flag.Bool("json", false, "emit the run result as one deterministic JSON document on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdlint [-root dir] [-json] [-lockgraph] [-topicgraph] [-callgraph pkg] <packages>\n  e.g.: sdlint ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(run(*root, flag.Args(), *lockgraph, *topicgraph, *callgraph, *jsonOut))
}

func run(root string, patterns []string, lockgraph, topicgraph bool, callgraph string, jsonOut bool) int {
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdlint:", err)
			return 2
		}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdlint:", err)
		return 2
	}
	if lockgraph || topicgraph || callgraph != "" {
		return dump(pkgs, lockgraph, topicgraph, callgraph)
	}
	analyzers := lint.ProjectAnalyzers()
	res := lint.Run(pkgs, analyzers)
	relativize(res)
	if jsonOut {
		err = lint.WriteJSON(os.Stdout, res, analyzers)
	} else {
		err = lint.WriteDiagnostics(os.Stdout, res.Diagnostics)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdlint:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "sdlint: analyzed %d packages with %d analyzers, %d findings, %d suppressed\n",
		res.Packages, len(analyzers), len(res.Diagnostics), res.Suppressed)
	if res.Packages == 0 {
		fmt.Fprintln(os.Stderr, "sdlint: no packages matched the given patterns")
		return 1
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// dump prints the requested debug view. Both views are deterministic:
// sorted nodes/edges, byte-identical run to run.
func dump(pkgs []*lint.Package, lockgraph, topicgraph bool, callgraph string) int {
	prog := &lint.Program{Pkgs: pkgs}
	if lockgraph {
		fmt.Print(lint.FormatLockGraph(prog))
	}
	if topicgraph {
		fmt.Print(lint.FormatTopicGraph(prog, lint.ProjectTopicConfig()))
	}
	if callgraph != "" {
		match := func(p string) bool {
			return p == callgraph || strings.HasSuffix(p, "/"+callgraph)
		}
		found := false
		for _, p := range pkgs {
			if match(p.Path) {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "sdlint: -callgraph %s matches none of the loaded packages\n", callgraph)
			return 2
		}
		fmt.Print(lint.FormatCallGraph(prog.CallGraph(), pkgs[0].Fset, match))
	}
	return 0
}

// relativize rewrites absolute file names relative to the working
// directory when possible, for clickable compiler-style output.
func relativize(res *lint.Result) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range res.Diagnostics {
		if rel, err := filepath.Rel(wd, res.Diagnostics[i].Pos.Filename); err == nil && len(rel) < len(res.Diagnostics[i].Pos.Filename) {
			res.Diagnostics[i].Pos.Filename = rel
		}
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found at or above the working directory")
		}
		dir = parent
	}
}
