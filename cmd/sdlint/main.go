// Command sdlint runs SenseDroid's project-invariant static-analysis
// suite (internal/lint) over the module.
//
// Usage:
//
//	go run ./cmd/sdlint ./...
//	go run ./cmd/sdlint ./internal/cs ./internal/bus
//
// Diagnostics print one per line as path:line:col: message (check) and
// are sorted by position. Exit status: 0 clean, 1 findings (or no
// packages matched — a silent no-op gate is worse than a loud one),
// 2 load/usage errors. The final "sdlint: analyzed N packages" summary
// on stderr is parsed by scripts/check.sh as a zero-package guard.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod at or above the working directory)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sdlint [-root dir] <packages>\n  e.g.: sdlint ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(run(*root, flag.Args()))
}

func run(root string, patterns []string) int {
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdlint:", err)
			return 2
		}
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdlint:", err)
		return 2
	}
	res := lint.Run(pkgs, lint.ProjectAnalyzers())
	relativize(res)
	if err := lint.WriteDiagnostics(os.Stdout, res.Diagnostics); err != nil {
		fmt.Fprintln(os.Stderr, "sdlint:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "sdlint: analyzed %d packages, %d findings, %d suppressed\n",
		res.Packages, len(res.Diagnostics), res.Suppressed)
	if res.Packages == 0 {
		fmt.Fprintln(os.Stderr, "sdlint: no packages matched the given patterns")
		return 1
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// relativize rewrites absolute file names relative to the working
// directory when possible, for clickable compiler-style output.
func relativize(res *lint.Result) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range res.Diagnostics {
		if rel, err := filepath.Rel(wd, res.Diagnostics[i].Pos.Filename); err == nil && len(rel) < len(res.Diagnostics[i].Pos.Filename) {
			res.Diagnostics[i].Pos.Filename = rel
		}
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found at or above the working directory")
		}
		dir = parent
	}
}
