// Command fieldgen generates synthetic spatial fields for inspection and
// for feeding external tooling.
//
// Usage:
//
//	fieldgen -kind plumes -w 32 -h 32 -seed 7 -plumes 3 > field.csv
//	fieldgen -kind sparse -w 16 -h 16 -sparsity 6
//	fieldgen -kind smooth -w 64 -h 64
//
// Output is CSV, one row per grid row, plus a trailing comment line with
// the generator parameters.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/basis"
	"repro/internal/field"
)

func main() {
	var (
		kind     = flag.String("kind", "plumes", "generator: plumes | sparse | smooth")
		w        = flag.Int("w", 32, "field width (columns)")
		h        = flag.Int("h", 32, "field height (rows)")
		seed     = flag.Int64("seed", 1, "random seed")
		plumes   = flag.Int("plumes", 3, "plume count (kind=plumes)")
		ambient  = flag.Float64("ambient", 10, "ambient level (kind=plumes)")
		maxAmp   = flag.Float64("amp", 30, "max plume amplitude (kind=plumes)")
		sparsity = flag.Int("sparsity", 6, "DCT-domain sparsity (kind=sparse)")
		noise    = flag.Float64("noise", 0, "additive Gaussian noise sigma")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	var f *field.Field
	var desc string
	switch *kind {
	case "plumes":
		var ps []field.Plume
		f, ps = field.GenRandomPlumes(rng, *w, *h, *plumes, *ambient, *maxAmp)
		desc = fmt.Sprintf("plumes=%d ambient=%g amp=%g", len(ps), *ambient, *maxAmp)
	case "sparse":
		var support []int
		var err error
		f, support, err = field.GenSparseInBasis(rng, *w, *h, *sparsity, basis.KindDCT, 1, 3)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fieldgen: %v\n", err)
			os.Exit(1)
		}
		desc = fmt.Sprintf("sparse k=%d support=%v", *sparsity, support)
	case "smooth":
		f = field.GenSmoothGradient(*w, *h, *ambient, 8, 3)
		desc = "smooth gradient"
	default:
		fmt.Fprintf(os.Stderr, "fieldgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *noise > 0 {
		f.AddNoise(rng, *noise)
		desc += fmt.Sprintf(" noise=%g", *noise)
	}

	for r := 0; r < f.H; r++ {
		cells := make([]string, f.W)
		for c := 0; c < f.W; c++ {
			cells[c] = fmt.Sprintf("%.4f", f.At(r, c))
		}
		fmt.Println(strings.Join(cells, ","))
	}
	fmt.Printf("# fieldgen kind=%s %dx%d seed=%d %s\n", *kind, *h, *w, *seed, desc)
}
