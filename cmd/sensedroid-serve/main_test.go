package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/field"
	"repro/internal/sensor"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

// testMux builds the query API over a fresh registry; publish says
// whether one snapshot should land first.
func testMux(t *testing.T, publish bool) *http.ServeMux {
	t.Helper()
	reg := snapshot.NewRegistry(4)
	srv, err := serve.New(reg, 8, 8, 2, 2)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	if publish {
		f := field.New(8, 8)
		for i := range f.Data {
			f.Data[i] = float64(i)
		}
		if _, err := reg.Publish(&snapshot.Snapshot{Step: 1, Kind: sensor.Temperature, Field: f}); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	return newMux(reg, srv)
}

func get(t *testing.T, mux *http.ServeMux, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

// TestHandlersNoSnapshot pins the empty-registry behavior: every data
// endpoint answers 503, not 500 and not a zero-value field.
func TestHandlersNoSnapshot(t *testing.T) {
	mux := testMux(t, false)
	for _, url := range []string{
		"/healthz",
		"/snapshot",
		"/field/point?row=1&col=1",
		"/field/range?row0=0&col0=0&row1=2&col1=2",
		"/field/agg?op=mean",
	} {
		if rec := get(t, mux, url); rec.Code != http.StatusServiceUnavailable {
			t.Errorf("GET %s with empty registry = %d, want 503 (body %q)", url, rec.Code, rec.Body.String())
		}
	}
}

// TestHandlersBadParams pins the 400 paths: missing or non-integer
// query parameters never reach the query layer.
func TestHandlersBadParams(t *testing.T) {
	mux := testMux(t, true)
	for _, url := range []string{
		"/field/point",                   // both params missing
		"/field/point?row=1",             // col missing
		"/field/point?row=x&col=2",       // non-integer
		"/field/range?row0=0&col0=0",     // row1/col1 missing
		"/field/range?row0=a&col0=0&row1=2&col1=2",
		"/field/agg?zone=abc",
	} {
		if rec := get(t, mux, url); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400 (body %q)", url, rec.Code, rec.Body.String())
		}
	}
}

// TestHandlersMalformedQuery pins the query-layer 400 paths: an
// inverted rectangle, an out-of-bounds point, a filter that does not
// parse, and an unknown aggregate op.
func TestHandlersMalformedQuery(t *testing.T) {
	mux := testMux(t, true)
	for _, url := range []string{
		"/field/point?row=99&col=0",
		"/field/point?row=-1&col=0",
		"/field/range?row0=5&col0=5&row1=1&col1=1",
		"/field/range?row0=0&col0=0&row1=2&col1=2&filter=value%20%3E%3E%203",
		"/field/agg?op=median",
	} {
		if rec := get(t, mux, url); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400 (body %q)", url, rec.Code, rec.Body.String())
		}
	}
}

// TestHandlersHappyPath sanity-checks that the extracted mux still
// serves real answers once a snapshot exists.
func TestHandlersHappyPath(t *testing.T) {
	mux := testMux(t, true)
	if rec := get(t, mux, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", rec.Code)
	}
	rec := get(t, mux, "/snapshot")
	if rec.Code != http.StatusOK {
		t.Fatalf("/snapshot = %d, want 200 (body %q)", rec.Code, rec.Body.String())
	}
	var snap map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/snapshot body does not parse: %v", err)
	}
	if v, ok := snap["version"].(float64); !ok || v != 1 {
		t.Errorf("/snapshot version = %v, want 1", snap["version"])
	}
	rec = get(t, mux, "/field/point?row=1&col=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("/field/point = %d, want 200 (body %q)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/field/point Content-Type = %q, want application/json", ct)
	}
	var pt struct {
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &pt); err != nil {
		t.Fatalf("/field/point body does not parse: %v", err)
	}
	if want := 17.0; pt.Value != want { // row 1, col 2 of the ramp (column-major: 2*8+1)
		t.Errorf("/field/point value = %v, want %v", pt.Value, want)
	}
}
