// Command sensedroid-serve runs the middleware in continuous-service
// mode: a full in-process hierarchy senses an evolving synthetic world
// on a sliding window, each window's reconstruction is published as a
// versioned snapshot, and an HTTP API answers point/range/aggregate
// field queries against the latest snapshot while windows keep landing.
//
//	sensedroid-serve -addr :8080 -interval 250ms
//	curl 'localhost:8080/field/point?row=3&col=5'
//	curl 'localhost:8080/field/range?row0=0&col0=0&row1=8&col1=8&filter=value>20'
//	curl 'localhost:8080/field/agg?zone=1&op=mean'
//	curl 'localhost:8080/snapshot'
//
// With -load it instead drives a sustained mixed ingest+query workload
// against the in-process server for -load-duration and prints
// throughput plus p50/p95/p99 latencies.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "query API listen address")
		w         = flag.Int("w", 32, "field width")
		h         = flag.Int("h", 32, "field height")
		zones     = flag.Int("zones", 2, "zone grid edge (zones×zones local clouds)")
		nodes     = flag.Int("nodes", 8, "mobile nodes per NanoCloud")
		budget    = flag.Int("budget", 240, "measurements per window")
		interval  = flag.Duration("interval", 250*time.Millisecond, "window cadence")
		retain    = flag.Int("retain", 8, "snapshots retained for history")
		seed      = flag.Int64("seed", 9, "deployment + world seed")
		warm      = flag.Bool("warm", true, "warm-start decodes from the previous window")
		loadMode  = flag.Bool("load", false, "run the load generator instead of serving HTTP")
		loadFor   = flag.Duration("load-duration", 10*time.Second, "load generator run time")
		loadW     = flag.Int("load-workers", 8, "load generator client goroutines")
		debugAddr = flag.String("debug-addr", "", "serve /metrics.json and /debug/pprof on this address")
	)
	flag.Parse()
	obs.Enable()
	if *debugAddr != "" {
		dbg, bound, err := obs.StartDebugServer(*debugAddr, obs.Default)
		if err != nil {
			log.Fatalf("sensedroid-serve: %v", err)
		}
		defer dbg.Close()
		log.Printf("debug endpoints on http://%s", bound)
	}

	sd, err := core.New(core.Options{
		FieldW: *w, FieldH: *h,
		ZoneRows: *zones, ZoneCols: *zones,
		NCsPerZone: 1, NodesPerNC: *nodes,
		Seed:    *seed,
		Timeout: 2 * time.Second,
	})
	if err != nil {
		log.Fatalf("sensedroid-serve: %v", err)
	}
	defer sd.Close()

	// The simulated physical world: plumes drifting a fraction of a cell
	// per window.
	evolve := func(step int, t float64) *field.Field {
		return field.GenPlumes(*w, *h, 10, []field.Plume{
			{Row: float64(*h)/4 + 0.05*t, Col: float64(*w) / 4, Sigma: float64(min(*w, *h)) / 8, Amplitude: 25},
			{Row: float64(*h) * 3 / 4, Col: float64(*w)*3/4 - 0.04*t, Sigma: float64(min(*w, *h)) / 6, Amplitude: 18},
		})
	}
	if err := sd.SetTruth(evolve(0, 0)); err != nil {
		log.Fatalf("sensedroid-serve: %v", err)
	}

	reg := snapshot.NewRegistry(*retain)
	pipe, err := stream.New(sd, reg, stream.Config{
		Budget: *budget, Interval: *interval,
		WarmStart: *warm, SeedRelTol: 0.5,
		Evolve: evolve,
	})
	if err != nil {
		log.Fatalf("sensedroid-serve: %v", err)
	}
	srv, err := serve.New(reg, *w, *h, *zones, *zones)
	if err != nil {
		log.Fatalf("sensedroid-serve: %v", err)
	}
	if err := pipe.Start(); err != nil {
		log.Fatalf("sensedroid-serve: %v", err)
	}
	defer pipe.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if _, err := reg.WaitContext(ctx, 1); err != nil {
		cancel()
		log.Fatalf("sensedroid-serve: first window never landed: %v", err)
	}
	cancel()
	log.Printf("pipeline live: %dx%d field, %dx%d zones, budget %d/window, warm-start %v",
		*h, *w, *zones, *zones, *budget, *warm)

	if *loadMode {
		rep, err := serve.RunLoad(context.Background(), srv, serve.LoadConfig{
			Workers: *loadW, Duration: *loadFor, Seed: *seed,
			Filters: []string{"value > 15", "zone == 0 && value < 30"},
		})
		if err != nil {
			log.Fatalf("sensedroid-serve: load: %v", err)
		}
		fmt.Printf("windows=%d latest_version=%d\n%s\n", pipe.Windows(), reg.Latest().Version, rep)
		return
	}

	mux := newMux(reg, srv)

	hs := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }() // exits on Shutdown/Close
	log.Printf("query API on %s (/field/point /field/range /field/agg /snapshot /healthz)", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	select {
	case <-stop:
		log.Printf("shutting down after %d windows (latest version %d)", pipe.Windows(), reg.Latest().Version)
	case err := <-errCh:
		log.Printf("sensedroid-serve: http: %v", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("sensedroid-serve: shutdown: %v", err)
	}
}

// newMux builds the query API routes. Factored out of main so the
// handler error paths are testable with httptest against a registry in
// any state.
func newMux(reg *snapshot.Registry, srv *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		if reg.Latest() == nil {
			http.Error(rw, "no snapshot", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("/snapshot", func(rw http.ResponseWriter, _ *http.Request) {
		s := reg.Latest()
		if s == nil {
			http.Error(rw, "no snapshot", http.StatusServiceUnavailable)
			return
		}
		writeJSON(rw, map[string]any{
			"version": s.Version, "step": s.Step, "t": s.T,
			"nmse": s.NMSE, "measurements": s.Measurements,
			"brokers_failed": s.BrokersFailed, "shortfall": s.Shortfall,
			"retained": reg.Len(),
		})
	})
	mux.HandleFunc("/field/point", func(rw http.ResponseWriter, r *http.Request) {
		row, err1 := qInt(r, "row")
		col, err2 := qInt(r, "col")
		if err1 != nil || err2 != nil {
			http.Error(rw, "need integer row= and col=", http.StatusBadRequest)
			return
		}
		res, err := srv.Point(row, col)
		if err != nil {
			http.Error(rw, err.Error(), queryStatus(err))
			return
		}
		writeJSON(rw, res)
	})
	mux.HandleFunc("/field/range", func(rw http.ResponseWriter, r *http.Request) {
		r0, e1 := qInt(r, "row0")
		c0, e2 := qInt(r, "col0")
		r1, e3 := qInt(r, "row1")
		c1, e4 := qInt(r, "col1")
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			http.Error(rw, "need integer row0= col0= row1= col1=", http.StatusBadRequest)
			return
		}
		res, err := srv.Range(serve.Rect{Row0: r0, Col0: c0, Row1: r1, Col1: c1}, r.URL.Query().Get("filter"))
		if err != nil {
			http.Error(rw, err.Error(), queryStatus(err))
			return
		}
		writeJSON(rw, res)
	})
	mux.HandleFunc("/field/agg", func(rw http.ResponseWriter, r *http.Request) {
		zone := -1
		if r.URL.Query().Get("zone") != "" {
			var err error
			if zone, err = qInt(r, "zone"); err != nil {
				http.Error(rw, "bad zone=", http.StatusBadRequest)
				return
			}
		}
		op := serve.AggOp(r.URL.Query().Get("op"))
		if op == "" {
			op = serve.AggMean
		}
		res, err := srv.Aggregate(zone, op, r.URL.Query().Get("filter"))
		if err != nil {
			http.Error(rw, err.Error(), queryStatus(err))
			return
		}
		writeJSON(rw, res)
	})
	return mux
}

// qInt parses one required integer query parameter.
func qInt(r *http.Request, name string) (int, error) {
	return strconv.Atoi(r.URL.Query().Get(name))
}

// queryStatus maps query-layer errors onto HTTP statuses.
func queryStatus(err error) int {
	if err == snapshot.ErrNoSnapshot {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// writeJSON renders one response object.
func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(rw).Encode(v); err != nil {
		log.Printf("sensedroid-serve: encode: %v", err)
	}
}
