// Command experiments regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	experiments list          # show available experiment IDs
//	experiments all           # run everything (F1–F6, C1–C6, A1–A3)
//	experiments fig4 c3 a2    # run specific experiments
//
// Each experiment prints the table/series corresponding to one figure or
// prose claim of the paper; EXPERIMENTS.md records the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	obsOut := flag.String("obs-out", "", "enable metrics and write a final obs registry snapshot (JSON) to this path")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [list|all|<id>...]\n\nexperiments:\n")
		for _, r := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-6s %s\n", r.ID, r.Desc)
		}
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *obsOut != "" {
		obs.Enable()
		defer func() {
			f, err := os.Create(*obsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: obs-out: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := obs.Default.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: obs-out: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote obs snapshot to %s\n", *obsOut)
		}()
	}
	var runners []experiments.Runner
	switch args[0] {
	case "list":
		for _, r := range experiments.All() {
			fmt.Printf("%-6s %s\n", r.ID, r.Desc)
		}
		return
	case "all":
		runners = experiments.All()
	default:
		for _, id := range args {
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try 'list')\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}
	for _, r := range runners {
		start := time.Now()
		table, err := r.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
