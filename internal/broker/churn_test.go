package broker

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/field"
	"repro/internal/mobility"
	"repro/internal/node"
	"repro/internal/sensor"
	"repro/internal/testutil"
)

// TestRosterChurnRecycledIDs drives the broker's register/unregister
// path the way the fleet layer does: node IDs leave and rejoin across
// generations. Register must refuse a live duplicate, Unregister must
// make the ID reusable, and after heavy churn the roster must hold
// exactly the final generation — with its nodes still reachable.
func TestRosterChurnRecycledIDs(t *testing.T) {
	testutil.CheckGoroutines(t)
	truth := fieldEnvForChurn()
	b := bus.New()
	defer b.Close()
	br, err := New(Config{ID: "nc0", Seed: 7, Timeout: 2 * time.Second}, b, truth)
	if err != nil {
		t.Fatal(err)
	}

	if br.Unregister("ghost") {
		t.Fatal("unregistering an unknown ID reported success")
	}

	const cohort = 100
	const generations = 30
	for g := 0; g < generations; g++ {
		nodes := make([]*node.Node, cohort)
		for i := range nodes {
			id := fmt.Sprintf("n%d", i)
			nd, err := node.New(node.Config{ID: id, Seed: int64(g*cohort + i)},
				truth, mobility.Static{P: mobility.Point{X: 40, Y: 40}})
			if err != nil {
				t.Fatal(err)
			}
			if err := nd.AttachBus(b, "nc0"); err != nil {
				t.Fatal(err)
			}
			if err := br.Register(id); err != nil {
				t.Fatalf("generation %d: recycled ID %q rejected: %v", g, id, err)
			}
			if err := br.Register(id); err == nil {
				t.Fatalf("generation %d: live duplicate %q accepted", g, id)
			}
			nodes[i] = nd
		}
		if got := len(br.Nodes()); got != cohort {
			t.Fatalf("generation %d: roster %d, want %d", g, got, cohort)
		}
		if g == generations-1 {
			// Final generation: the roster must still drive real traffic.
			res, err := br.Gather(sensor.Temperature, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Values) == 0 || res.NodesUsed == 0 {
				t.Fatalf("gather after churn produced nothing: %+v", res)
			}
		}
		for i, nd := range nodes {
			nd.Detach()
			if !br.Unregister(nd.ID) {
				t.Fatalf("generation %d: node %d missing from roster", g, i)
			}
		}
		if got := len(br.Nodes()); got != 0 {
			t.Fatalf("generation %d: roster not empty after churn: %d", g, got)
		}
	}
}

// fieldEnvForChurn builds a small plume environment without pulling in
// the full testNC fixture (which registers its own cleanup).
func fieldEnvForChurn() node.Environment {
	return fieldEnv{f: field.GenPlumes(8, 8, 10, []field.Plume{
		{Row: 4, Col: 4, Sigma: 2, Amplitude: 25},
	})}
}
