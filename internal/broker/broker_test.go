package broker

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/bus"
	"repro/internal/cs"
	"repro/internal/field"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/sensor"
	"repro/internal/testutil"
)

// fieldEnv exposes a whole field as a single-zone node.Environment
// (avoiding a test-only dependency on the cloud package, which imports
// this one).
type fieldEnv struct{ f *field.Field }

func (e fieldEnv) FieldValue(kind sensor.Kind, gridIdx int) float64 { return e.f.Data[gridIdx] }
func (e fieldEnv) GridDims() (int, int)                             { return e.f.W, e.f.H }
func (e fieldEnv) AreaDims() (float64, float64) {
	return float64(e.f.W) * 10, float64(e.f.H) * 10
}

// testNC builds a broker over a plume field with n attached nodes. Every
// broker test it serves runs under the goroutine-leak guard: the cleanup
// below detaches all nodes and closes the bus, and the guard fails the
// test if any handler goroutine outlives that teardown.
func testNC(t *testing.T, nNodes int, seed int64) (*Broker, *field.Field, []*node.Node) {
	t.Helper()
	testutil.CheckGoroutines(t)
	truth := field.GenPlumes(8, 8, 10, []field.Plume{{Row: 3, Col: 5, Sigma: 2.2, Amplitude: 30}})
	env := fieldEnv{f: truth}
	b := bus.New()
	br, err := New(Config{ID: "nc0", Seed: seed, Timeout: 2 * time.Second}, b, env)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var nodes []*node.Node
	for i := 0; i < nNodes; i++ {
		mob, err := mobility.NewRandomWaypoint(rand.New(rand.NewSource(rng.Int63())), 80, 80, 1, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := node.New(node.Config{
			ID: fmt.Sprintf("n%d", i), Seed: rng.Int63(), Profile: sensor.ProfileMidrange,
		}, env, mob)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.AttachBus(b, "nc0"); err != nil {
			t.Fatal(err)
		}
		if err := br.Register(nd.ID); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Detach()
		}
		b.Close()
	})
	return br, truth, nodes
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, bus.New(), nil); err == nil {
		t.Fatal("want error")
	}
	if _, err := New(Config{ID: "x"}, nil, nil); err == nil {
		t.Fatal("want error")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	br, _, _ := testNC(t, 1, 1)
	if err := br.Register("n0"); err == nil {
		t.Fatal("want duplicate error")
	}
	if err := br.Register(""); err == nil {
		t.Fatal("want empty-ID error")
	}
}

func TestPositionsQueriesAllNodes(t *testing.T) {
	br, _, _ := testNC(t, 4, 2)
	pos := br.Positions()
	if len(pos) != 4 {
		t.Fatalf("positions for %d nodes, want 4", len(pos))
	}
	for id, idx := range pos {
		if idx < 0 || idx >= 64 {
			t.Fatalf("node %s at invalid cell %d", id, idx)
		}
	}
}

func TestGatherUsesNodesAndInfraFallback(t *testing.T) {
	br, _, _ := testNC(t, 5, 3)
	g, err := br.Gather(sensor.Temperature, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Locs) != 20 {
		t.Fatalf("gathered %d, want 20", len(g.Locs))
	}
	if g.NodesUsed == 0 {
		t.Fatal("no mobile nodes used")
	}
	if g.InfraUsed == 0 {
		t.Fatal("infrastructure fallback not engaged (5 nodes < 20 cells)")
	}
	if g.NodesUsed+g.InfraUsed != 20 {
		t.Fatalf("nodes %d + infra %d != 20", g.NodesUsed, g.InfraUsed)
	}
	// Locations distinct.
	seen := map[int]bool{}
	for _, l := range g.Locs {
		if seen[l] {
			t.Fatalf("duplicate cell %d", l)
		}
		seen[l] = true
	}
	if len(g.Values) != 20 || len(g.Sigmas) != 20 {
		t.Fatal("values/sigmas length mismatch")
	}
}

func TestGatherCountsPrivacyDenials(t *testing.T) {
	br, _, nodes := testNC(t, 3, 4)
	for _, nd := range nodes {
		nd.Policy.SetOptOut(true)
	}
	g, err := br.Gather(sensor.Temperature, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Denied != 3 {
		t.Fatalf("denied %d, want 3", g.Denied)
	}
	if g.NodesUsed != 0 || g.InfraUsed != 10 {
		t.Fatalf("nodes %d infra %d", g.NodesUsed, g.InfraUsed)
	}
}

func TestGatherValidation(t *testing.T) {
	br, _, _ := testNC(t, 1, 5)
	if _, err := br.Gather(sensor.Temperature, 0); err == nil {
		t.Fatal("want budget error")
	}
	// Budget above the cell count clamps.
	g, err := br.Gather(sensor.Temperature, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Locs) != 64 {
		t.Fatalf("clamped gather %d, want 64", len(g.Locs))
	}
}

func TestReconstructRecoversPlume(t *testing.T) {
	br, truth, _ := testNC(t, 6, 6)
	rec, err := br.Reconstruct(sensor.Temperature, 28, ReconstructOptions{Basis: basis.KindDCT, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	nmse := cs.NMSE(truth.Data, rec.Field.Data)
	if nmse > 0.01 {
		t.Fatalf("plume reconstruction NMSE %v, want < 1%%", nmse)
	}
	// The hotspot localizes to within one cell.
	r, c, _ := rec.Field.MaxLoc()
	if (r-3)*(r-3)+(c-5)*(c-5) > 2 {
		t.Fatalf("hotspot found at (%d,%d), truth (3,5)", r, c)
	}
}

func TestReconstructGLSOption(t *testing.T) {
	br, truth, _ := testNC(t, 6, 7)
	rec, err := br.Reconstruct(sensor.Temperature, 28, ReconstructOptions{UseGLS: true, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if nmse := cs.NMSE(truth.Data, rec.Field.Data); nmse > 0.05 {
		t.Fatalf("GLS reconstruction NMSE %v", nmse)
	}
}

func TestReconstructDefaultsKHeuristic(t *testing.T) {
	br, _, _ := testNC(t, 4, 8)
	rec, err := br.Reconstruct(sensor.Temperature, 24, ReconstructOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Result.Support) > 24/3 {
		t.Fatalf("support %d exceeds K heuristic", len(rec.Result.Support))
	}
}

func TestBatterySelectionPrefersFullNodes(t *testing.T) {
	// Build an NC with the battery policy; drain half the fleet and check
	// the drained nodes are not solicited while full ones remain.
	truth := field.GenSmoothGradient(8, 8, 20, 5, 2)
	env := fieldEnv{f: truth}
	b := bus.New()
	defer b.Close()
	br, err := New(Config{ID: "nc0", Seed: 9, Timeout: 2 * time.Second, Selection: SelectBattery}, b, env)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var nodes []*node.Node
	for i := 0; i < 6; i++ {
		mob, err := mobility.NewRandomWaypoint(rand.New(rand.NewSource(rng.Int63())), 80, 80, 1, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := node.New(node.Config{
			ID: fmt.Sprintf("n%d", i), Seed: rng.Int63(), Battery: 1000,
		}, env, mob)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.AttachBus(b, "nc0"); err != nil {
			t.Fatal(err)
		}
		if err := br.Register(nd.ID); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		defer nd.Detach()
	}
	// Drain nodes 0-2 to ~10%.
	for i := 0; i < 3; i++ {
		nodes[i].Battery.Drain(900)
	}
	g, err := br.Gather(sensor.Temperature, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodesUsed == 0 {
		t.Fatal("no mobile nodes used")
	}
	// Full nodes are solicited strictly before drained ones: once a
	// drained node appears in the contribution order, no full node may
	// follow. (A full node can be skipped for duplicate coverage, letting
	// the walk reach a drained node — that ordering is still correct.)
	drained := map[string]bool{"n0": true, "n1": true, "n2": true}
	seenDrained := false
	for _, id := range g.NodeIDs {
		if id == "" {
			continue
		}
		if drained[id] {
			seenDrained = true
		} else if seenDrained {
			t.Fatalf("full node %s solicited after a drained node (ids=%v)", id, g.NodeIDs)
		}
	}
	if d := g.NodeIDs[0]; drained[d] {
		t.Fatalf("first solicited node %s is drained (ids=%v)", d, g.NodeIDs)
	}
}

func TestGatherRecordsNodeIDs(t *testing.T) {
	br, _, _ := testNC(t, 3, 10)
	g, err := br.Gather(sensor.Temperature, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.NodeIDs) != len(g.Locs) {
		t.Fatalf("NodeIDs length %d, want %d", len(g.NodeIDs), len(g.Locs))
	}
	mobile, infra := 0, 0
	for _, id := range g.NodeIDs {
		if id == "" {
			infra++
		} else {
			mobile++
		}
	}
	if mobile != g.NodesUsed || infra != g.InfraUsed {
		t.Fatalf("NodeIDs inconsistent: mobile=%d infra=%d vs %d/%d", mobile, infra, g.NodesUsed, g.InfraUsed)
	}
}

func TestGatherSurvivesUnreachableNodes(t *testing.T) {
	// Register ghosts that never attached to the bus: requests time out
	// and the infra fallback still fills the budget.
	truth := field.GenSmoothGradient(8, 8, 20, 5, 2)
	env := fieldEnv{f: truth}
	b := bus.New()
	defer b.Close()
	br, err := New(Config{ID: "nc0", Seed: 11, Timeout: 50 * time.Millisecond}, b, env)
	if err != nil {
		t.Fatal(err)
	}
	br.Register("ghost1")
	br.Register("ghost2")
	g, err := br.Gather(sensor.Temperature, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodesUsed != 0 || g.InfraUsed != 6 {
		t.Fatalf("gather %+v, want all-infra", g)
	}
}

// measureRequest reports whether a bus topic is a broker→node measure
// command (and not the reply leg of one).
func measureRequest(topic string) bool {
	return strings.Contains(topic, "/measure") && !strings.Contains(topic, "/reply/")
}

// TestGatherRetriesTransientNodeFailures injects a one-shot crash per
// node at the transport (every first measure command fails with netsim's
// typed down error) and asserts the broker's retry layer recovers the
// full round instead of writing the nodes off.
func TestGatherRetriesTransientNodeFailures(t *testing.T) {
	br, _, _ := testNC(t, 3, 21)
	var mu sync.Mutex
	attempts := map[string]int{}
	br.Bus.SetInterceptor(func(m bus.Message) (bool, error) {
		if !measureRequest(m.Topic) {
			return true, nil
		}
		mu.Lock()
		attempts[m.Topic]++
		first := attempts[m.Topic] == 1
		mu.Unlock()
		if first {
			return false, &netsim.NodeDownError{ID: m.Topic}
		}
		return true, nil
	})
	g, err := br.Gather(sensor.Temperature, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodesUsed == 0 {
		t.Fatal("no node recovered: retry layer not engaged")
	}
	if len(g.Locs) != 6 {
		t.Fatalf("gathered %d, want 6", len(g.Locs))
	}
	mu.Lock()
	defer mu.Unlock()
	for topic, n := range attempts {
		if n < 2 {
			t.Fatalf("node %s solicited %d time(s); the transient failure was never retried", topic, n)
		}
	}
}

// TestGatherInfraTopUpForPermanentlyDownNode pins the other side of the
// retry budget: a node that stays down exhausts its attempts, is
// skipped, and the infra fallback still fills the round.
func TestGatherInfraTopUpForPermanentlyDownNode(t *testing.T) {
	br, _, _ := testNC(t, 3, 22)
	var mu sync.Mutex
	attempts := map[string]int{}
	br.Bus.SetInterceptor(func(m bus.Message) (bool, error) {
		if measureRequest(m.Topic) && strings.Contains(m.Topic, "/n0/") {
			mu.Lock()
			attempts[m.Topic]++
			mu.Unlock()
			return false, &netsim.NodeDownError{ID: "n0"}
		}
		return true, nil
	})
	g, err := br.Gather(sensor.Temperature, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Locs) != 8 {
		t.Fatalf("gathered %d, want 8 (infra must absorb the down node)", len(g.Locs))
	}
	if g.InfraUsed == 0 {
		t.Fatal("infra top-up not engaged despite a down node")
	}
	mu.Lock()
	defer mu.Unlock()
	for topic, n := range attempts {
		if n != 3 {
			t.Fatalf("down node %s got %d attempts, want 3 (default retry budget)", topic, n)
		}
	}
	// Distinct cells even under faults.
	seen := map[int]bool{}
	for _, l := range g.Locs {
		if seen[l] {
			t.Fatalf("duplicate cell %d in faulted gather", l)
		}
		seen[l] = true
	}
}

// TestGatherContextCancelledMidRoster cancels while the roster walk is in
// flight (at the second node's solicitation) and asserts the round
// returns the wrapped context error instead of a partial result.
func TestGatherContextCancelledMidRoster(t *testing.T) {
	br, _, _ := testNC(t, 4, 23)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int32
	br.Bus.SetInterceptor(func(m bus.Message) (bool, error) {
		if measureRequest(m.Topic) && n.Add(1) == 2 {
			cancel()
		}
		return true, nil
	})
	_, err := br.GatherContext(ctx, sensor.Temperature, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-roster cancel = %v, want wrapped context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "abandoned") {
		t.Fatalf("error %q does not identify the abandoned round", err)
	}
}

// TestGatherDeduplicatesCoLocatedNodes crowds six nodes onto a 2×2 grid
// so cell collisions are unavoidable and pins the duplicate path:
// co-located readings are dropped, the result has distinct cells, and
// the per-source counts stay consistent.
func TestGatherDeduplicatesCoLocatedNodes(t *testing.T) {
	truth := field.GenSmoothGradient(2, 2, 20, 5, 2)
	env := fieldEnv{f: truth}
	b := bus.New()
	defer b.Close()
	br, err := New(Config{ID: "nc0", Seed: 24, Timeout: 2 * time.Second}, b, env)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 6; i++ {
		mob, err := mobility.NewRandomWaypoint(rand.New(rand.NewSource(rng.Int63())), 20, 20, 1, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := node.New(node.Config{ID: fmt.Sprintf("n%d", i), Seed: rng.Int63()}, env, mob)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.AttachBus(b, "nc0"); err != nil {
			t.Fatal(err)
		}
		if err := br.Register(nd.ID); err != nil {
			t.Fatal(err)
		}
		ndRef := nd
		defer ndRef.Detach()
	}
	g, err := br.Gather(sensor.Temperature, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range g.Locs {
		if seen[l] {
			t.Fatalf("duplicate cell %d survived dedup", l)
		}
		seen[l] = true
	}
	if g.NodesUsed+g.InfraUsed != len(g.Locs) {
		t.Fatalf("source counts %d+%d inconsistent with %d cells", g.NodesUsed, g.InfraUsed, len(g.Locs))
	}
	if len(g.Locs) != 4 {
		t.Fatalf("gathered %d cells on a 4-cell grid with budget 4", len(g.Locs))
	}
}

// TestGatherShortfallWithInfraDisabled pins the partial-result contract
// under a regional infra outage: the round reports how far under budget
// it landed instead of failing or silently shrinking.
func TestGatherShortfallWithInfraDisabled(t *testing.T) {
	br, _, _ := testNC(t, 2, 25)
	br.SetInfraEnabled(false)
	g, err := br.Gather(sensor.Temperature, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.InfraUsed != 0 {
		t.Fatal("infra used despite outage")
	}
	if g.NodesUsed == 0 || g.NodesUsed > 2 {
		t.Fatalf("NodesUsed = %d with a 2-node roster", g.NodesUsed)
	}
	if g.Shortfall != 10-len(g.Locs) || g.Shortfall == 0 {
		t.Fatalf("shortfall %d inconsistent with %d/10 gathered", g.Shortfall, len(g.Locs))
	}
}

// TestGatherContextCancelled pins the new cancellation path: a cancelled
// context aborts the round promptly with the context error instead of
// draining the roster at one timeout per node.
func TestGatherContextCancelled(t *testing.T) {
	br, _, _ := testNC(t, 3, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := br.GatherContext(ctx, sensor.Temperature, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("GatherContext with cancelled ctx = %v, want context.Canceled", err)
	}
	// The context-less wrapper still works after a cancelled round.
	if _, err := br.Gather(sensor.Temperature, 5); err != nil {
		t.Fatalf("Gather after cancelled round: %v", err)
	}
}
