package broker

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/basis"
	"repro/internal/bus"
	"repro/internal/cs"
	"repro/internal/field"
	"repro/internal/mobility"
	"repro/internal/node"
	"repro/internal/sensor"
	"repro/internal/testutil"
)

// fieldEnv exposes a whole field as a single-zone node.Environment
// (avoiding a test-only dependency on the cloud package, which imports
// this one).
type fieldEnv struct{ f *field.Field }

func (e fieldEnv) FieldValue(kind sensor.Kind, gridIdx int) float64 { return e.f.Data[gridIdx] }
func (e fieldEnv) GridDims() (int, int)                             { return e.f.W, e.f.H }
func (e fieldEnv) AreaDims() (float64, float64) {
	return float64(e.f.W) * 10, float64(e.f.H) * 10
}

// testNC builds a broker over a plume field with n attached nodes. Every
// broker test it serves runs under the goroutine-leak guard: the cleanup
// below detaches all nodes and closes the bus, and the guard fails the
// test if any handler goroutine outlives that teardown.
func testNC(t *testing.T, nNodes int, seed int64) (*Broker, *field.Field, []*node.Node) {
	t.Helper()
	testutil.CheckGoroutines(t)
	truth := field.GenPlumes(8, 8, 10, []field.Plume{{Row: 3, Col: 5, Sigma: 2.2, Amplitude: 30}})
	env := fieldEnv{f: truth}
	b := bus.New()
	br, err := New(Config{ID: "nc0", Seed: seed, Timeout: 2 * time.Second}, b, env)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var nodes []*node.Node
	for i := 0; i < nNodes; i++ {
		mob, err := mobility.NewRandomWaypoint(rand.New(rand.NewSource(rng.Int63())), 80, 80, 1, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := node.New(node.Config{
			ID: fmt.Sprintf("n%d", i), Seed: rng.Int63(), Profile: sensor.ProfileMidrange,
		}, env, mob)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.AttachBus(b, "nc0"); err != nil {
			t.Fatal(err)
		}
		if err := br.Register(nd.ID); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Detach()
		}
		b.Close()
	})
	return br, truth, nodes
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, bus.New(), nil); err == nil {
		t.Fatal("want error")
	}
	if _, err := New(Config{ID: "x"}, nil, nil); err == nil {
		t.Fatal("want error")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	br, _, _ := testNC(t, 1, 1)
	if err := br.Register("n0"); err == nil {
		t.Fatal("want duplicate error")
	}
	if err := br.Register(""); err == nil {
		t.Fatal("want empty-ID error")
	}
}

func TestPositionsQueriesAllNodes(t *testing.T) {
	br, _, _ := testNC(t, 4, 2)
	pos := br.Positions()
	if len(pos) != 4 {
		t.Fatalf("positions for %d nodes, want 4", len(pos))
	}
	for id, idx := range pos {
		if idx < 0 || idx >= 64 {
			t.Fatalf("node %s at invalid cell %d", id, idx)
		}
	}
}

func TestGatherUsesNodesAndInfraFallback(t *testing.T) {
	br, _, _ := testNC(t, 5, 3)
	g, err := br.Gather(sensor.Temperature, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Locs) != 20 {
		t.Fatalf("gathered %d, want 20", len(g.Locs))
	}
	if g.NodesUsed == 0 {
		t.Fatal("no mobile nodes used")
	}
	if g.InfraUsed == 0 {
		t.Fatal("infrastructure fallback not engaged (5 nodes < 20 cells)")
	}
	if g.NodesUsed+g.InfraUsed != 20 {
		t.Fatalf("nodes %d + infra %d != 20", g.NodesUsed, g.InfraUsed)
	}
	// Locations distinct.
	seen := map[int]bool{}
	for _, l := range g.Locs {
		if seen[l] {
			t.Fatalf("duplicate cell %d", l)
		}
		seen[l] = true
	}
	if len(g.Values) != 20 || len(g.Sigmas) != 20 {
		t.Fatal("values/sigmas length mismatch")
	}
}

func TestGatherCountsPrivacyDenials(t *testing.T) {
	br, _, nodes := testNC(t, 3, 4)
	for _, nd := range nodes {
		nd.Policy.SetOptOut(true)
	}
	g, err := br.Gather(sensor.Temperature, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Denied != 3 {
		t.Fatalf("denied %d, want 3", g.Denied)
	}
	if g.NodesUsed != 0 || g.InfraUsed != 10 {
		t.Fatalf("nodes %d infra %d", g.NodesUsed, g.InfraUsed)
	}
}

func TestGatherValidation(t *testing.T) {
	br, _, _ := testNC(t, 1, 5)
	if _, err := br.Gather(sensor.Temperature, 0); err == nil {
		t.Fatal("want budget error")
	}
	// Budget above the cell count clamps.
	g, err := br.Gather(sensor.Temperature, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Locs) != 64 {
		t.Fatalf("clamped gather %d, want 64", len(g.Locs))
	}
}

func TestReconstructRecoversPlume(t *testing.T) {
	br, truth, _ := testNC(t, 6, 6)
	rec, err := br.Reconstruct(sensor.Temperature, 28, ReconstructOptions{Basis: basis.KindDCT, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	nmse := cs.NMSE(truth.Data, rec.Field.Data)
	if nmse > 0.01 {
		t.Fatalf("plume reconstruction NMSE %v, want < 1%%", nmse)
	}
	// The hotspot localizes to within one cell.
	r, c, _ := rec.Field.MaxLoc()
	if (r-3)*(r-3)+(c-5)*(c-5) > 2 {
		t.Fatalf("hotspot found at (%d,%d), truth (3,5)", r, c)
	}
}

func TestReconstructGLSOption(t *testing.T) {
	br, truth, _ := testNC(t, 6, 7)
	rec, err := br.Reconstruct(sensor.Temperature, 28, ReconstructOptions{UseGLS: true, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if nmse := cs.NMSE(truth.Data, rec.Field.Data); nmse > 0.05 {
		t.Fatalf("GLS reconstruction NMSE %v", nmse)
	}
}

func TestReconstructDefaultsKHeuristic(t *testing.T) {
	br, _, _ := testNC(t, 4, 8)
	rec, err := br.Reconstruct(sensor.Temperature, 24, ReconstructOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Result.Support) > 24/3 {
		t.Fatalf("support %d exceeds K heuristic", len(rec.Result.Support))
	}
}

func TestBatterySelectionPrefersFullNodes(t *testing.T) {
	// Build an NC with the battery policy; drain half the fleet and check
	// the drained nodes are not solicited while full ones remain.
	truth := field.GenSmoothGradient(8, 8, 20, 5, 2)
	env := fieldEnv{f: truth}
	b := bus.New()
	defer b.Close()
	br, err := New(Config{ID: "nc0", Seed: 9, Timeout: 2 * time.Second, Selection: SelectBattery}, b, env)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var nodes []*node.Node
	for i := 0; i < 6; i++ {
		mob, err := mobility.NewRandomWaypoint(rand.New(rand.NewSource(rng.Int63())), 80, 80, 1, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := node.New(node.Config{
			ID: fmt.Sprintf("n%d", i), Seed: rng.Int63(), Battery: 1000,
		}, env, mob)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.AttachBus(b, "nc0"); err != nil {
			t.Fatal(err)
		}
		if err := br.Register(nd.ID); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		defer nd.Detach()
	}
	// Drain nodes 0-2 to ~10%.
	for i := 0; i < 3; i++ {
		nodes[i].Battery.Drain(900)
	}
	g, err := br.Gather(sensor.Temperature, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodesUsed == 0 {
		t.Fatal("no mobile nodes used")
	}
	// Full nodes are solicited strictly before drained ones: once a
	// drained node appears in the contribution order, no full node may
	// follow. (A full node can be skipped for duplicate coverage, letting
	// the walk reach a drained node — that ordering is still correct.)
	drained := map[string]bool{"n0": true, "n1": true, "n2": true}
	seenDrained := false
	for _, id := range g.NodeIDs {
		if id == "" {
			continue
		}
		if drained[id] {
			seenDrained = true
		} else if seenDrained {
			t.Fatalf("full node %s solicited after a drained node (ids=%v)", id, g.NodeIDs)
		}
	}
	if d := g.NodeIDs[0]; drained[d] {
		t.Fatalf("first solicited node %s is drained (ids=%v)", d, g.NodeIDs)
	}
}

func TestGatherRecordsNodeIDs(t *testing.T) {
	br, _, _ := testNC(t, 3, 10)
	g, err := br.Gather(sensor.Temperature, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.NodeIDs) != len(g.Locs) {
		t.Fatalf("NodeIDs length %d, want %d", len(g.NodeIDs), len(g.Locs))
	}
	mobile, infra := 0, 0
	for _, id := range g.NodeIDs {
		if id == "" {
			infra++
		} else {
			mobile++
		}
	}
	if mobile != g.NodesUsed || infra != g.InfraUsed {
		t.Fatalf("NodeIDs inconsistent: mobile=%d infra=%d vs %d/%d", mobile, infra, g.NodesUsed, g.InfraUsed)
	}
}

func TestGatherSurvivesUnreachableNodes(t *testing.T) {
	// Register ghosts that never attached to the bus: requests time out
	// and the infra fallback still fills the budget.
	truth := field.GenSmoothGradient(8, 8, 20, 5, 2)
	env := fieldEnv{f: truth}
	b := bus.New()
	defer b.Close()
	br, err := New(Config{ID: "nc0", Seed: 11, Timeout: 50 * time.Millisecond}, b, env)
	if err != nil {
		t.Fatal(err)
	}
	br.Register("ghost1")
	br.Register("ghost2")
	g, err := br.Gather(sensor.Temperature, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodesUsed != 0 || g.InfraUsed != 6 {
		t.Fatalf("gather %+v, want all-infra", g)
	}
}

// TestGatherContextCancelled pins the new cancellation path: a cancelled
// context aborts the round promptly with the context error instead of
// draining the roster at one timeout per node.
func TestGatherContextCancelled(t *testing.T) {
	br, _, _ := testNC(t, 3, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := br.GatherContext(ctx, sensor.Temperature, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("GatherContext with cancelled ctx = %v, want context.Canceled", err)
	}
	// The context-less wrapper still works after a cancelled round.
	if _, err := br.Gather(sensor.Temperature, 5); err != nil {
		t.Fatalf("Gather after cancelled round: %v", err)
	}
}
