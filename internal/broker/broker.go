// Package broker implements the NanoCloud broker of the paper's Fig. 2:
// the head node that registers mobile nodes, performs stochastic (random)
// spatial sampling by commanding and telemetering a selected subset of
// them, falls back to infrastructure sensors when mobile coverage is
// short, and reconstructs its region's spatial field with the
// compressive-sensing core.
package broker

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/basis"
	"repro/internal/bus"
	"repro/internal/cs"
	"repro/internal/field"
	"repro/internal/mat"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sensor"
)

// Broker observability handles (no-ops until obs.Enable). Gather latency
// comes from the span auto-histogram "span.broker.gather.ms".
var (
	obsGatherRounds  = obs.GetCounter("broker.gather.rounds")
	obsGatherMobile  = obs.GetCounter("broker.gather.mobile")
	obsGatherInfra   = obs.GetCounter("broker.gather.infra")
	obsGatherDenied  = obs.GetCounter("broker.gather.denied")
	obsReconRounds   = obs.GetCounter("broker.reconstruct.rounds")
	obsReconIters    = obs.GetHistogram("broker.reconstruct.iterations", obs.CountBuckets)
	obsReconSupport  = obs.GetHistogram("broker.reconstruct.support", obs.CountBuckets)
	obsReconResidual = obs.GetGauge("broker.reconstruct.residual.last")
)

// SelectionPolicy chooses which nodes a gather round solicits.
type SelectionPolicy string

// Selection policies.
const (
	// SelectRandom is the paper's stochastic spatial sampling: a uniform
	// random subset of registered nodes.
	SelectRandom SelectionPolicy = "random"
	// SelectBattery solicits the fullest batteries first (the §5
	// "sensor scheduling" energy-balancing direction): the broker queries
	// node status and walks nodes in decreasing battery order.
	SelectBattery SelectionPolicy = "battery"
)

// Config configures a broker.
type Config struct {
	ID           string
	Seed         int64
	InfraSigma   float64         // noise of infrastructure sensors (default 0.05)
	Timeout      time.Duration   // per-node request timeout (default 2 s)
	Selection    SelectionPolicy // node selection policy (default SelectRandom)
	Retries      int             // extra per-node attempts after the first (0 = default 2, negative = none)
	RetryBackoff time.Duration   // base backoff between attempts (default 5 ms)
}

// Broker orchestrates one NanoCloud.
type Broker struct {
	ID  string
	Bus *bus.Bus

	env       node.Environment
	rng       *rand.Rand
	timeout   time.Duration
	infraSD   float64
	selection SelectionPolicy
	attempts  int
	backoff   time.Duration
	retrySeed int64

	mu      sync.Mutex
	nodes   []string // guarded by mu
	infraOK bool     // guarded by mu; infrastructure fallback available
}

// New creates a broker for a NanoCloud whose nodes observe env.
func New(cfg Config, b *bus.Bus, env node.Environment) (*Broker, error) {
	if cfg.ID == "" {
		return nil, errors.New("broker: empty ID")
	}
	if b == nil || env == nil {
		return nil, errors.New("broker: nil bus or environment")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.InfraSigma <= 0 {
		cfg.InfraSigma = 0.05
	}
	if cfg.Selection == "" {
		cfg.Selection = SelectRandom
	}
	attempts := 1 + cfg.Retries
	if cfg.Retries == 0 {
		attempts = 3 // default: the first try plus two retries
	}
	if attempts < 1 {
		attempts = 1
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	return &Broker{
		ID: cfg.ID, Bus: b, env: env,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		timeout: cfg.Timeout, infraSD: cfg.InfraSigma,
		selection: cfg.Selection,
		attempts:  attempts, backoff: cfg.RetryBackoff, retrySeed: cfg.Seed,
		infraOK: true,
	}, nil
}

// SetInfraEnabled toggles the infrastructure-sensor fallback (default
// on). Modelling a regional infra outage: with it off, a gather round
// that cannot fill its budget from mobile nodes returns a partial result
// with Shortfall set — or an error if nothing at all was gathered.
func (br *Broker) SetInfraEnabled(on bool) {
	br.mu.Lock()
	br.infraOK = on
	br.mu.Unlock()
}

func (br *Broker) infraEnabled() bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.infraOK
}

// Register adds a node to the broker's roster. The node must have
// AttachBus'd to the same bus under this broker's ID.
func (br *Broker) Register(nodeID string) error {
	if nodeID == "" {
		return errors.New("broker: empty node ID")
	}
	br.mu.Lock()
	defer br.mu.Unlock()
	for _, id := range br.nodes {
		if id == nodeID {
			return fmt.Errorf("broker: node %q already registered", nodeID)
		}
	}
	br.nodes = append(br.nodes, nodeID)
	return nil
}

// Unregister removes a node from the roster, returning whether it was
// registered. This is the churn path: a node that leaves the NanoCloud
// (battery death, mobility handoff, simulated crash) must be
// unregistered before its ID can be recycled, because Register refuses
// duplicate IDs. Callers should Detach the node's bus handlers as well;
// the broker itself holds no other per-node state, so an
// Unregister+Detach leaves nothing for a future node with the same ID
// to inherit.
func (br *Broker) Unregister(nodeID string) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	for i, id := range br.nodes {
		if id == nodeID {
			br.nodes = append(br.nodes[:i], br.nodes[i+1:]...)
			return true
		}
	}
	return false
}

// Nodes returns the registered node IDs, sorted.
func (br *Broker) Nodes() []string {
	br.mu.Lock()
	defer br.mu.Unlock()
	out := append([]string(nil), br.nodes...)
	sort.Strings(out)
	return out
}

// Positions queries every registered node for its current grid cell.
// Unreachable nodes are skipped.
func (br *Broker) Positions() map[string]int {
	return br.PositionsContext(context.Background())
}

// PositionsContext is Positions under a caller-supplied context: each
// per-node request still gets the broker's timeout, but cancelling ctx
// abandons the sweep early (the partial map is returned).
func (br *Broker) PositionsContext(ctx context.Context) map[string]int {
	out := make(map[string]int)
	for _, id := range br.Nodes() {
		if ctx.Err() != nil {
			return out
		}
		var rep node.PositionReply
		if err := br.request(ctx, node.PositionTopic(br.ID, id), struct{}{}, &rep); err != nil {
			continue
		}
		out[id] = rep.GridIdx
	}
	return out
}

// request is one per-node round trip under the broker's retry policy:
// each attempt is bounded by the broker's per-request timeout, transient
// failures (node down, attempt timeout) are retried with seeded-jitter
// backoff, and the whole exchange stays inside the caller's context.
func (br *Broker) request(ctx context.Context, topic string, body, out any) error {
	return bus.RequestRetryContext(ctx, br.Bus, topic, body, out, bus.RetryPolicy{
		Attempts:       br.attempts,
		AttemptTimeout: br.timeout,
		BaseBackoff:    br.backoff,
		Seed:           br.retrySeed,
	})
}

// Gather is one telemetry round: the broker randomly selects up to m
// registered nodes (stochastic spatial sampling), commands each to measure
// kind, and collects the readings. If fewer than m distinct grid cells
// respond — nodes may be unreachable, privacy-denied, or co-located — the
// broker tops up with infrastructure-sensor measurements at random
// uncovered cells, per the paper's fallback.
type GatherResult struct {
	Locs      []int     // grid indices (one per measurement)
	Values    []float64 // measured values
	Sigmas    []float64 // per-measurement noise std-devs (GLS weights)
	NodeIDs   []string  // contributing node per mobile measurement ("" for infra)
	NodesUsed int
	InfraUsed int
	Denied    int

	// Degradation accounting. BrokersFailed counts constituent brokers
	// whose round failed outright (populated by zone-level merges; always
	// 0 for a single broker's round). Shortfall is how far the round came
	// in under the requested budget after every fallback was exhausted —
	// non-zero only when the round was degraded, e.g. by an infra outage.
	BrokersFailed int
	Shortfall     int
}

// Gather runs one measurement round for the given sensor kind.
func (br *Broker) Gather(kind sensor.Kind, m int) (*GatherResult, error) {
	return br.GatherContext(context.Background(), kind, m)
}

// GatherContext is Gather under a caller-supplied context. Cancellation
// is checked between nodes and bounds every in-flight request, so a
// cancelled round returns promptly instead of draining the full roster
// at one timeout per unreachable node.
func (br *Broker) GatherContext(ctx context.Context, kind sensor.Kind, m int) (*GatherResult, error) {
	return br.GatherExcludingContext(ctx, kind, m, nil)
}

// GatherExcludingContext is GatherContext with a set of grid cells the
// round must not measure — cells another broker in the same zone already
// covered. The zone merge uses it to redistribute a failed or short
// broker's budget to survivors without re-buying duplicate coverage. The
// budget clamps to the cells actually available once exclusions are
// removed.
func (br *Broker) GatherExcludingContext(ctx context.Context, kind sensor.Kind, m int, exclude map[int]bool) (*GatherResult, error) {
	if m <= 0 {
		return nil, errors.New("broker: measurement count must be positive")
	}
	sp := obs.StartSpan("broker.gather")
	sp.Label("broker", br.ID)
	defer sp.Finish()
	gw, gh := br.env.GridDims()
	n := gw * gh
	avail := n
	for cell := range exclude {
		if cell >= 0 && cell < n {
			avail--
		}
	}
	if m > avail {
		m = avail
	}
	if m == 0 {
		return nil, errors.New("broker: no cells available after exclusions")
	}
	ids := br.orderNodes(ctx)
	res := &GatherResult{}
	seen := make(map[int]bool)
	for _, id := range ids {
		if len(res.Locs) >= m {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("broker: gather round abandoned: %w", err)
		}
		var reading node.FieldReading
		err := br.request(ctx, node.MeasureTopic(br.ID, id),
			node.MeasureRequest{Kind: string(kind)}, &reading)
		if err != nil {
			continue
		}
		if reading.Denied {
			res.Denied++
			continue
		}
		if seen[reading.GridIdx] || exclude[reading.GridIdx] {
			continue // duplicate cell adds no spatial information
		}
		seen[reading.GridIdx] = true
		res.Locs = append(res.Locs, reading.GridIdx)
		res.Values = append(res.Values, reading.Value)
		res.Sigmas = append(res.Sigmas, reading.Sigma)
		res.NodeIDs = append(res.NodeIDs, reading.NodeID)
		res.NodesUsed++
	}
	// Infrastructure fallback for the shortfall (unless the outage model
	// has taken the region's infra sensors offline).
	if len(res.Locs) < m && br.infraEnabled() {
		free := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if !seen[i] && !exclude[i] {
				free = append(free, i)
			}
		}
		br.mu.Lock()
		br.rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		need := m - len(res.Locs)
		if need > len(free) {
			need = len(free)
		}
		for _, cell := range free[:need] {
			v := br.env.FieldValue(kind, cell) + br.rng.NormFloat64()*br.infraSD
			res.Locs = append(res.Locs, cell)
			res.Values = append(res.Values, v)
			res.Sigmas = append(res.Sigmas, br.infraSD)
			res.NodeIDs = append(res.NodeIDs, "")
			res.InfraUsed++
		}
		br.mu.Unlock()
	}
	if len(res.Locs) == 0 {
		return nil, errors.New("broker: no measurements gathered")
	}
	res.Shortfall = m - len(res.Locs)
	obsGatherRounds.Inc()
	obsGatherMobile.Add(int64(res.NodesUsed))
	obsGatherInfra.Add(int64(res.InfraUsed))
	obsGatherDenied.Add(int64(res.Denied))
	return res, nil
}

// orderNodes returns the registered nodes in solicitation order per the
// selection policy: uniform shuffle (stochastic spatial sampling) or
// fullest-battery-first (energy-balancing duty rotation). The battery
// policy's status sweep honours ctx like the gather loop does.
func (br *Broker) orderNodes(ctx context.Context) []string {
	ids := br.Nodes()
	switch br.selection {
	case SelectBattery:
		type nb struct {
			id   string
			frac float64
		}
		stats := make([]nb, 0, len(ids))
		for _, id := range ids {
			if ctx.Err() != nil {
				break
			}
			var st node.StatusReply
			if err := br.request(ctx, node.StatusTopic(br.ID, id), struct{}{}, &st); err != nil {
				continue // unreachable nodes sort last by omission
			}
			stats = append(stats, nb{id: id, frac: st.BatteryFrac})
		}
		sort.SliceStable(stats, func(i, j int) bool { return stats[i].frac > stats[j].frac })
		out := make([]string, len(stats))
		for i, s := range stats {
			out[i] = s.id
		}
		return out
	default:
		br.mu.Lock()
		br.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		br.mu.Unlock()
		return ids
	}
}

// ReconstructOptions tunes the broker-side recovery.
type ReconstructOptions struct {
	Basis    basis.Kind  // default DCT
	K        int         // sparsity budget; 0 = len(locs)/3 heuristic
	UseGLS   bool        // weight by per-sensor noise (heterogeneous phones)
	LearnPhi *mat.Matrix // optional prior basis overriding Basis

	// SeedSupport warm-starts the CHS decode from a previous round's
	// recovered support (Reconstruction.Result.Support): on a
	// slowly-varying field the solver skips the greedy search and pays
	// one residual check plus the final solve. Invalid or rank-deficient
	// seeds fall back to a cold decode, so a stale seed can never corrupt
	// a reconstruction.
	SeedSupport []int
	// SeedRelTol rejects the seed when the post-seed residual exceeds
	// SeedRelTol·‖y‖ — the guard against warm-starting across a field
	// that changed too much. 0 keeps any independent seed.
	SeedRelTol float64
}

// Reconstruction is a completed regional field estimate.
type Reconstruction struct {
	Field  *field.Field
	Result *cs.Result
	Gather *GatherResult
}

// Reconstruct runs a Gather round and recovers the region's field with the
// Fig. 6 CHS algorithm (OLS or GLS per options).
func (br *Broker) Reconstruct(kind sensor.Kind, m int, opts ReconstructOptions) (*Reconstruction, error) {
	return br.ReconstructContext(context.Background(), kind, m, opts)
}

// ReconstructContext is Reconstruct with the gather round bounded by ctx.
func (br *Broker) ReconstructContext(ctx context.Context, kind sensor.Kind, m int, opts ReconstructOptions) (*Reconstruction, error) {
	g, err := br.GatherContext(ctx, kind, m)
	if err != nil {
		return nil, err
	}
	return br.ReconstructFrom(g, opts)
}

// ReconstructFrom recovers the field from an existing gather round. The
// default bases decode matrix-free (basis.Operator fast path); a LearnPhi
// prior is matrix-backed and runs the dense reference kernels.
func (br *Broker) ReconstructFrom(g *GatherResult, opts ReconstructOptions) (*Reconstruction, error) {
	gw, gh := br.env.GridDims()
	var op basis.Operator
	if opts.LearnPhi != nil {
		var err error
		op, err = basis.FromMatrix(opts.LearnPhi)
		if err != nil {
			return nil, err
		}
	} else {
		kind := opts.Basis
		if kind == "" {
			kind = basis.KindDCT
		}
		f := field.New(gw, gh)
		var err error
		op, err = f.Operator2D(kind)
		if err != nil {
			return nil, err
		}
	}
	k := opts.K
	if k <= 0 {
		k = len(g.Locs) / 3
		if k < 1 {
			k = 1
		}
	}
	chsOpts := cs.CHSOptions{
		MaxSupport: k, Tol: 1e-8, PerIter: 1,
		SeedSupport: opts.SeedSupport, SeedRelTol: opts.SeedRelTol,
	}
	if opts.UseGLS {
		chsOpts.V = cs.NoiseCovariance(g.Sigmas, 1e-4)
	}
	sp := obs.StartSpan("broker.reconstruct")
	res, err := cs.CHSOp(op, g.Locs, g.Values, chsOpts)
	sp.Finish()
	if err != nil {
		return nil, err
	}
	obsReconRounds.Inc()
	obsReconIters.Observe(float64(res.Iterations))
	obsReconSupport.Observe(float64(len(res.Support)))
	obsReconResidual.Set(res.Residual)
	f, err := field.FromVector(gw, gh, res.Xhat)
	if err != nil {
		return nil, err
	}
	return &Reconstruction{Field: f, Result: res, Gather: g}, nil
}
