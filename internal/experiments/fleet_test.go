package experiments

import "testing"

// smallCFleet keeps the sweep test-sized: 2048 simulated nodes instead
// of 65k, same zone geometry class.
func smallCFleet() CFleetConfig {
	return CFleetConfig{
		Nodes: 2048, ShardSize: 256,
		FieldW: 24, FieldH: 24, ZoneRows: 2, ZoneCols: 2,
		Budget: 24, Seed: 11,
		NodeBackendNodes: 6, TotalM: 96,
	}
}

func TestCFleetBackendsAndFaults(t *testing.T) {
	tb, err := CFleet(smallCFleet())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows %d, want node backend + 4 fleet scenarios", len(tb.Rows))
	}
	nodeNMSE := cell(t, tb.Rows[0][2])
	cleanNMSE := cell(t, tb.Rows[1][2])
	if nodeNMSE > 0.2 || cleanNMSE > 0.2 {
		t.Fatalf("backends out of accuracy class: node %v, fleet %v", nodeNMSE, cleanNMSE)
	}
	for _, row := range tb.Rows {
		if cell(t, row[3]) == 0 {
			t.Fatalf("scenario %s measured nothing", row[0])
		}
	}
	// The faults must actually bite: burst loses traffic, dup+reorder
	// still completes, the crash window downs deliveries.
	if lost := cell(t, tb.Rows[2][5]); lost == 0 {
		t.Fatal("burst scenario lost no traffic")
	}
	if down := cell(t, tb.Rows[3][6]); down == 0 {
		t.Fatal("zone-crash scenario downed no deliveries")
	}
	for i, row := range tb.Rows[1:] {
		if nmse := cell(t, row[2]); nmse > 1.0 {
			t.Fatalf("fleet scenario %d (%s) NMSE %v: reconstruction collapsed", i, row[0], nmse)
		}
	}
}

func TestCFleetDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := smallCFleet()
	assertTableStable(t, "CFleet", func() (*Table, error) { return CFleet(cfg) })
}
