package experiments

import (
	"testing"

	"repro/internal/obs"
)

func TestRecordNMSECanonicalName(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	recordNMSE("F9", "unit", 0.25)
	if got := obs.GetGauge("experiments.f9.nmse.unit").Value(); got != 0.25 {
		t.Fatalf("experiments.f9.nmse.unit = %g, want 0.25", got)
	}
}

func TestRecordNMSEDisabledIsNoop(t *testing.T) {
	recordNMSE("f9", "quiet", 0.5)
	if got := obs.GetGauge("experiments.f9.nmse.quiet").Value(); got != 0 {
		t.Fatalf("disabled recordNMSE wrote %g", got)
	}
}
