package experiments

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/cs"
	"repro/internal/field"
)

// --- A1: basis choice with prior data ---------------------------------------------------

// A1Config sizes the basis-choice ablation.
type A1Config struct {
	W, H   int // zone grid (H must be a power of two for Haar)
	M      int
	K      int
	PriorT int // historical traces to learn from
	Trials int
	Seed   int64
}

// DefaultA1 returns the paper-scale configuration.
func DefaultA1() A1Config {
	return A1Config{W: 16, H: 16, M: 56, K: 12, PriorT: 60, Trials: 5, Seed: 21}
}

// A1 tests the paper's "ability to use different basis and sensing matrix
// by exploiting prior available data of different regions": on a field
// process with history, a PCA basis learned from prior traces should beat
// the generic DCT and Haar bases at equal measurement budget.
func A1(cfg A1Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := func(rng *rand.Rand) *field.Field {
		f := field.GenPlumes(cfg.W, cfg.H, 5, []field.Plume{
			{Row: 4 + 2*rng.NormFloat64(), Col: 10 + 2*rng.NormFloat64(),
				Sigma: 2.5 + 0.3*rng.NormFloat64(), Amplitude: 25 + 5*rng.NormFloat64()},
			{Row: 12 + rng.NormFloat64(), Col: 4 + rng.NormFloat64(),
				Sigma: 2 + 0.2*rng.NormFloat64(), Amplitude: 15 + 3*rng.NormFloat64()},
		})
		return f
	}
	traces, err := field.CollectTraces(cfg.W, cfg.H, cfg.PriorT, func(int) *field.Field { return gen(rng) })
	if err != nil {
		return nil, err
	}
	learned, _, err := traces.LearnBasis()
	if err != nil {
		return nil, err
	}
	mu := traces.Mean()
	proto := field.New(cfg.W, cfg.H)
	dct, err := proto.Operator2D(basis.KindDCT)
	if err != nil {
		return nil, err
	}
	haar, err := proto.Operator2D(basis.KindHaar)
	if err != nil {
		return nil, err
	}
	// The learned PCA basis has no fast transform; FromMatrix keeps it on
	// the dense reference path behind the same Operator interface.
	learnedOp, err := basis.FromMatrix(learned)
	if err != nil {
		return nil, err
	}
	bases := []struct {
		name string
		phi  basis.Operator
	}{{"dct", dct}, {"haar", haar}, {"learned-pca", learnedOp}}

	t := &Table{
		ID:     "A1",
		Title:  "Basis choice at equal budget: generic vs learned from prior traces",
		Header: []string{"basis", "mean-NMSE", "mean-accuracy"},
	}
	nmse := make([][]float64, cfg.Trials)
	acc := make([][]float64, cfg.Trials)
	err = forEachTrial(cfg.Trials, subSeed(cfg.Seed, 1), func(trial int, rng *rand.Rand) error {
		nmse[trial] = make([]float64, len(bases))
		acc[trial] = make([]float64, len(bases))
		truth := gen(rng)
		locs, err := cs.RandomLocations(rng, truth.N(), cfg.M)
		if err != nil {
			return err
		}
		y, err := cs.Measure(truth.Vector(), locs, rng, []float64{0.1})
		if err != nil {
			return err
		}
		for i, bs := range bases {
			var res *cs.Result
			var err error
			if bs.name == "learned-pca" {
				// PCA eigenvectors span variation around the trace mean, so
				// decode mean-centered (the broker knows μ from its prior).
				res, err = cs.OMPCenteredOp(bs.phi, locs, y, mu, cfg.K, 1e-9)
			} else {
				res, err = cs.OMPOp(bs.phi, locs, y, cfg.K, 1e-9)
			}
			if err != nil {
				return err
			}
			nmse[trial][i] = cs.NMSE(truth.Vector(), res.Xhat)
			acc[trial][i] = cs.Accuracy(truth.Vector(), res.Xhat)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	nmseSums := make([]float64, len(bases))
	accSums := make([]float64, len(bases))
	for trial := 0; trial < cfg.Trials; trial++ {
		for i := range bases {
			nmseSums[i] += nmse[trial][i]
			accSums[i] += acc[trial][i]
		}
	}
	for i, bs := range bases {
		recordNMSE("a1", bs.name, nmseSums[i]/float64(cfg.Trials))
		t.AddRow(bs.name, f(nmseSums[i]/float64(cfg.Trials)), f(accSums[i]/float64(cfg.Trials)))
	}
	t.AddNote("field process: two wandering plumes; PCA basis learned from %d prior traces; M=%d, K=%d", cfg.PriorT, cfg.M, cfg.K)
	return t, nil
}

// --- A2: optimal K (ε_a vs ε_c) -----------------------------------------------------------

// A2Config sizes the K-sweep ablation.
type A2Config struct {
	N, M   int
	Ks     []int
	Noise  float64
	Trials int
	Seed   int64
}

// DefaultA2 returns the paper-scale configuration.
func DefaultA2() A2Config {
	return A2Config{N: 256, M: 40, Ks: []int{2, 4, 8, 12, 16, 24, 32, 38}, Noise: 0.05, Trials: 25, Seed: 22}
}

// A2 reproduces the paper's §4 argument that total error is U-shaped in
// K: "increasing K will in general increase the reconstruction error ε_c
// (worse conditioning) and decrease the approximation error ε_a (better
// approximation). Therefore, we should pick an optimal K such that the sum
// ε is minimal." The workload is compressible (not exactly sparse) with
// measurement noise, so both effects are active.
func A2(cfg A2Config) (*Table, error) {
	phi := basis.CachedDCT(cfg.N)
	op, err := basis.CachedOperator(basis.KindDCT, cfg.N)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "A2",
		Title:  "Total error vs sparsity budget K at fixed M (U-shape)",
		Header: []string{"K", "median-NMSE", "mean-cond"},
	}
	type point struct {
		k    int
		nmse float64
	}
	var curve []point
	for _, k := range cfg.Ks {
		if k >= cfg.M {
			continue
		}
		nmses := make([]float64, cfg.Trials)
		conds := make([]float64, cfg.Trials)
		err := forEachTrial(cfg.Trials, subSeed(cfg.Seed, int64(k)), func(trial int, rng *rand.Rand) error {
			// Compressible signal: power-law decaying DCT spectrum.
			alpha := make([]float64, cfg.N)
			perm := rng.Perm(cfg.N)
			for rank := 0; rank < cfg.N; rank++ {
				alpha[perm[rank]] = 5 * math.Pow(float64(rank+1), -1.0) * (1 + 0.2*rng.NormFloat64())
			}
			x, err := basis.Synthesize(phi, alpha)
			if err != nil {
				return err
			}
			locs, err := cs.RandomLocations(rng, cfg.N, cfg.M)
			if err != nil {
				return err
			}
			y, err := cs.Measure(x, locs, rng, []float64{cfg.Noise})
			if err != nil {
				return err
			}
			res, err := cs.OMPOp(op, locs, y, k, 0)
			if err != nil {
				return err
			}
			nmses[trial] = cs.NMSE(x, res.Xhat)
			bd, err := cs.Diagnose(phi, x, locs, res, []float64{cfg.Noise})
			if err != nil {
				return err
			}
			if !math.IsInf(bd.Condition, 1) {
				conds[trial] = bd.Condition
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		condSum := 0.0
		for _, c := range conds {
			condSum += c
		}
		// Median is robust to the occasional catastrophic OMP miss, which
		// would otherwise swamp the U-shape.
		sort.Float64s(nmses)
		med := nmses[len(nmses)/2]
		t.AddRow(d(k), f(med), f2(condSum/float64(cfg.Trials)))
		curve = append(curve, point{k, med})
	}
	// Locate the empirical optimum for the note.
	sort.Slice(curve, func(i, j int) bool { return curve[i].nmse < curve[j].nmse })
	if len(curve) > 0 {
		t.AddNote("empirical optimal K = %d at M=%d (noise sigma %.2f): error falls (ε_a) then rises (ε_c/overfit)",
			curve[0].k, cfg.M, cfg.Noise)
	}
	return t, nil
}

// --- A3: criticality-directed budgets --------------------------------------------------------

// A3Config sizes the criticality ablation.
type A3Config struct {
	TotalM int
	Crit   float64
	Trials int
	Seed   int64
}

// DefaultA3 returns the paper-scale configuration.
func DefaultA3() A3Config { return A3Config{TotalM: 140, Crit: 4, Trials: 3, Seed: 23} }

// A3 tests the paper's "ability to analyze a region with more emphasis
// based on criticality": raising one zone's criticality shifts budget
// there and lowers that zone's reconstruction error relative to a uniform
// plan, at equal total budget.
func A3(cfg A3Config) (*Table, error) {
	t := &Table{
		ID:     "A3",
		Title:  "Criticality-directed measurement budgets (equal total budget)",
		Header: []string{"trial", "crit-zone-M(uni)", "crit-zone-M(crit)", "crit-NMSE(uni)", "crit-NMSE(crit)"},
	}
	const critZone = 3 // bottom-right of a 2x2 partition
	type outcome struct {
		uniM, critM       int
		uniNMSE, critNMSE float64
	}
	outs := make([]outcome, cfg.Trials)
	err := forEach(cfg.Trials, func(trial int) error {
		sd, err := core.New(core.Options{
			FieldW: 32, FieldH: 32, ZoneRows: 2, ZoneCols: 2,
			NCsPerZone: 1, NodesPerNC: 4, Seed: cfg.Seed + int64(trial)*31,
		})
		if err != nil {
			return err
		}
		defer sd.Close()
		// Activity everywhere, so the sparsity signal alone doesn't already
		// decide the allocation.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
		truth := field.GenPlumes(32, 32, 12, []field.Plume{
			{Row: 6, Col: 6, Sigma: 2.5, Amplitude: 25},
			{Row: 8, Col: 24, Sigma: 2.5, Amplitude: 25},
			{Row: 24, Col: 8, Sigma: 2.5, Amplitude: 25},
			{Row: 25, Col: 25, Sigma: 2.5, Amplitude: 25},
		})
		truth.AddNoise(rng, 0.05)
		if err := sd.SetTruth(truth); err != nil {
			return err
		}
		uni, err := sd.RunCampaign(core.CampaignConfig{TotalM: cfg.TotalM, Adaptive: true, Prior: truth})
		if err != nil {
			return err
		}
		if err := sd.SetCriticality(critZone, cfg.Crit); err != nil {
			return err
		}
		crit, err := sd.RunCampaign(core.CampaignConfig{TotalM: cfg.TotalM, Adaptive: true, Prior: truth})
		if err != nil {
			return err
		}
		outs[trial] = outcome{
			uniM: uni.Plan[critZone], critM: crit.Plan[critZone],
			uniNMSE: uni.ZoneNMSE[critZone], critNMSE: crit.ZoneNMSE[critZone],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	improved := 0
	for trial, o := range outs {
		if o.critNMSE <= o.uniNMSE {
			improved++
		}
		t.AddRow(d(trial), d(o.uniM), d(o.critM), f(o.uniNMSE), f(o.critNMSE))
	}
	t.AddNote("zone %d criticality raised to %.0fx: it receives a larger budget share and its error improved in %d/%d trials",
		critZone, cfg.Crit, improved, cfg.Trials)
	return t, nil
}

// --- Runner registry ----------------------------------------------------------------------------

// Runner executes one experiment at default configuration.
type Runner struct {
	ID   string
	Desc string
	Run  func() (*Table, error)
}

// All returns every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"fig1", "hierarchy vs flat sink scalability", func() (*Table, error) { return Fig1(DefaultFig1()) }},
		{"fig2", "NanoCloud broker round trip", func() (*Table, error) { return Fig2(DefaultFig2()) }},
		{"fig3", "probe inventory + virtual sensor fusion", func() (*Table, error) { return Fig3(3) }},
		{"fig4", "reconstruction accuracy vs measurements", func() (*Table, error) { return Fig4(DefaultFig4()) }},
		{"fig5", "adaptive per-zone compression", func() (*Table, error) { return Fig5(DefaultFig5()) }},
		{"fig6", "CHS algorithm OLS vs GLS", func() (*Table, error) { return Fig6(DefaultFig6()) }},
		{"c1", "transmissions O(N^2) vs O(NM)", func() (*Table, error) { return C1(DefaultC1()) }},
		{"c2", "M = O(K log N) bound", func() (*Table, error) { return C2(DefaultC2()) }},
		{"c3", ">80% energy savings via collaboration", func() (*Table, error) { return C3(DefaultC3()) }},
		{"c4", "compressive IsIndoor accuracy + energy", func() (*Table, error) { return C4(DefaultC4()) }},
		{"c5", "IsDriving from 30/256 samples", func() (*Table, error) { return C5(DefaultC5()) }},
		{"c6", "incentive mechanism comparison", func() (*Table, error) { return C6(DefaultC6()) }},
		{"c7", "heterogeneous radio selection", func() (*Table, error) { return C7(DefaultC7()) }},
		{"c8", "coverage under mobility models", func() (*Table, error) { return C8(DefaultC8()) }},
		{"c9", "opportunistic collaboration (Aquiba)", func() (*Table, error) { return C9(DefaultC9()) }},
		{"a1", "basis choice: DCT vs Haar vs learned", func() (*Table, error) { return A1(DefaultA1()) }},
		{"a2", "optimal K (U-shaped error)", func() (*Table, error) { return A2(DefaultA2()) }},
		{"a3", "criticality-directed budgets", func() (*Table, error) { return A3(DefaultA3()) }},
		{"a4", "sparse decoder comparison", func() (*Table, error) { return A4(DefaultA4()) }},
		{"a5", "joint spatio-temporal decoding", func() (*Table, error) { return A5(DefaultA5()) }},
		{"a6", "adaptive sampling (AIMD)", func() (*Table, error) { return A6(DefaultA6()) }},
		{"cfault", "accuracy vs injected faults", func() (*Table, error) { return CFault(DefaultCFault()) }},
		{"cfleet", "fleet backend parity + faults at scale", func() (*Table, error) { return CFleet(DefaultCFleet()) }},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
