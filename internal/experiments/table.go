// Package experiments regenerates every evaluation artifact of the paper:
// figures F1–F6, the prose claims C1–C6, and the design-choice ablations
// A1–A3 catalogued in DESIGN.md. Each experiment returns a Table whose
// rows are the series the paper reports; cmd/experiments prints them and
// the root bench_test.go times them.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note line printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f(v float64) string   { return fmt.Sprintf("%.4f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func d(v int) string       { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
