package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a table cell back to a float (stripping %, x suffixes).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestTableString(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddNote("hello %d", 7)
	out := tb.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestFig1HierarchyReducesBottleneck(t *testing.T) {
	tb, err := Fig1(Fig1Config{NodeCounts: []int{128, 256}, LCs: 4, NCsPerLC: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		flat := cell(t, row[1])
		hier := cell(t, row[2])
		if hier >= flat {
			t.Fatalf("hierarchy load %v not below flat %v", hier, flat)
		}
		// Bottleneck reduction should approach the NC count (16).
		if flat/hier < 4 {
			t.Fatalf("reduction only %vx", flat/hier)
		}
	}
	// Flat sink load grows linearly with N.
	if cell(t, tb.Rows[1][1]) != 2*cell(t, tb.Rows[0][1]) {
		t.Fatal("flat sink load not linear in N")
	}
}

func TestFig2RoundTrip(t *testing.T) {
	tb, err := Fig2(Fig2Config{Nodes: 8, M: 48, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]string{}
	for _, row := range tb.Rows {
		vals[row[0]] = row[1]
	}
	if cell(t, vals["reconstruction NMSE"]) > 0.1 {
		t.Fatalf("NMSE %s", vals["reconstruction NMSE"])
	}
	if cell(t, vals["bus payload bytes"]) == 0 {
		t.Fatal("no bus traffic")
	}
	if cell(t, vals["mobile readings used"]) == 0 {
		t.Fatal("no mobile readings")
	}
}

func TestFig3ListsAllProbes(t *testing.T) {
	tb, err := Fig3(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Fatalf("probe rows %d, want 11", len(tb.Rows))
	}
	if len(tb.Notes) == 0 || !strings.Contains(tb.Notes[0], "compass") {
		t.Fatal("missing fusion note")
	}
}

func TestFig4AccuracyImprovesWithM(t *testing.T) {
	tb, err := Fig4(Fig4Config{N: 256, Ms: []int{8, 30, 96}, K: 8, Trials: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	low := cell(t, tb.Rows[0][2])  // NMSE at M=8
	mid := cell(t, tb.Rows[1][2])  // NMSE at M=30
	high := cell(t, tb.Rows[2][2]) // NMSE at M=96
	if !(high <= mid && mid < low) {
		t.Fatalf("NMSE not decreasing: %v %v %v", low, mid, high)
	}
	// The paper's operating point M=30 must already be a good recovery.
	if mid > 0.15 {
		t.Fatalf("NMSE at M=30 is %v", mid)
	}
}

func TestFig5AdaptiveBeatsUniform(t *testing.T) {
	tb, err := Fig5(Fig5Config{FieldW: 32, FieldH: 32, ZoneRows: 4, ZoneCols: 4,
		NodesPerNC: 3, TotalM: 220, Trials: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	uniSum, adaSum := 0.0, 0.0
	for _, row := range tb.Rows {
		uniSum += cell(t, row[1])
		adaSum += cell(t, row[2])
	}
	if adaSum >= uniSum {
		t.Fatalf("adaptive mean NMSE %v not below uniform %v", adaSum, uniSum)
	}
}

func TestFig6GLSBeatsOLS(t *testing.T) {
	tb, err := Fig6(Fig6Config{N: 128, M: 40, K: 6, Trials: 6, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ols := cell(t, tb.Rows[0][1])
	gls := cell(t, tb.Rows[0][2])
	if gls >= ols {
		t.Fatalf("GLS NMSE %v not below OLS %v under heterogeneous noise", gls, ols)
	}
}

func TestC1QuadraticVsLinear(t *testing.T) {
	tb, err := C1(C1Config{NodeCounts: []int{64, 256}, K: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Raw transmissions are exactly N(N+1)/2.
	if got := cell(t, tb.Rows[0][2]); got != 64*65/2 {
		t.Fatalf("raw(64)=%v", got)
	}
	// Ratio grows with N.
	if cell(t, tb.Rows[1][4]) <= cell(t, tb.Rows[0][4]) {
		t.Fatal("compression advantage should grow with N")
	}
	// cs/(N·M) is exactly 1.
	if cell(t, tb.Rows[0][6]) != 1 {
		t.Fatalf("cs normalization %v", tb.Rows[0][6])
	}
}

func TestC2ConstantRoughlyFlat(t *testing.T) {
	tb, err := C2(C2Config{Ns: []int{128, 512}, Ks: []int{5}, Trials: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		mMin := cell(t, row[2])
		if mMin <= 0 {
			t.Fatalf("no M found: %v", row)
		}
		c := cell(t, row[4])
		if c <= 0 || c > 3 {
			t.Fatalf("constant c=%v outside sane range", c)
		}
	}
}

func TestC3SavingsAbove80(t *testing.T) {
	tb, err := C3(DefaultC3())
	if err != nil {
		t.Fatal(err)
	}
	sav := cell(t, tb.Rows[1][3])
	if sav < 75 {
		t.Fatalf("collaborative savings only %v%%", sav)
	}
	if !strings.Contains(tb.String(), "80%") {
		t.Log("table rendered without target marker (fine)")
	}
}

func TestC4SimilarAccuracyLowerEnergy(t *testing.T) {
	tb, err := C4(C4Config{Windows: 6, WindowLen: 64, M: 16, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	contAcc := cell(t, tb.Rows[0][1])
	compAcc := cell(t, tb.Rows[1][1])
	sav := cell(t, tb.Rows[1][4])
	if compAcc < contAcc-12 {
		t.Fatalf("compressive accuracy %v%% too far below continuous %v%%", compAcc, contAcc)
	}
	if sav < 60 {
		t.Fatalf("energy savings only %v%%", sav)
	}
}

func TestC5ThirtySamplesSuffice(t *testing.T) {
	tb, err := C5(C5Config{Ms: []int{30}, Trials: 9, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if agree := cell(t, tb.Rows[0][1]); agree < 85 {
		t.Fatalf("context agreement at M=30 only %v%%", agree)
	}
}

func TestC6AllMechanismsReport(t *testing.T) {
	tb, err := C6(C6Config{Candidates: 40, K: 8, Budget: 30, Cells: 32, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
}

func TestA1LearnedBasisWins(t *testing.T) {
	tb, err := A1(A1Config{W: 16, H: 16, M: 48, K: 10, PriorT: 40, Trials: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var dct, learned float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "dct":
			dct = cell(t, row[1])
		case "learned-pca":
			learned = cell(t, row[1])
		}
	}
	if learned >= dct {
		t.Fatalf("learned basis NMSE %v not below DCT %v", learned, dct)
	}
}

func TestA2UShape(t *testing.T) {
	tb, err := A2(A2Config{N: 128, M: 36, Ks: []int{2, 4, 32}, Noise: 0.05, Trials: 20, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	small := cell(t, tb.Rows[0][1]) // K=2: under-fit
	mid := cell(t, tb.Rows[1][1])   // K=4: near optimum
	large := cell(t, tb.Rows[2][1]) // K=32: over-fit / ill-conditioned
	if !(mid < small && mid < large) {
		t.Fatalf("no U-shape: K=2→%v K=4→%v K=32→%v", small, mid, large)
	}
}

func TestA3CriticalityShiftsBudget(t *testing.T) {
	tb, err := A3(A3Config{TotalM: 140, Crit: 4, Trials: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if cell(t, row[2]) <= cell(t, row[1]) {
			t.Fatalf("critical zone budget did not grow: %v", row)
		}
	}
}

func TestRunnerRegistry(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("runner count %d, want 23", len(all))
	}
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("fig4 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestA4AllDecodersRecover(t *testing.T) {
	tb, err := A4(A4Config{N: 64, M: 28, K: 4, Noise: 0.02, Trials: 4, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if cell(t, row[2]) != 0 {
			t.Fatalf("decoder %s failed %s times", row[0], row[2])
		}
		if nm := cell(t, row[1]); nm > 0.05 {
			t.Fatalf("decoder %s NMSE %v", row[0], nm)
		}
	}
}

func TestA5JointWinsAtEveryBudget(t *testing.T) {
	tb, err := A5(A5Config{W: 10, H: 10, Steps: 6, Ms: []int{12, 20}, Drift: 0.15, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if cell(t, row[2]) >= cell(t, row[1]) {
			t.Fatalf("joint did not win at M=%s: %v vs %v", row[0], row[2], row[1])
		}
	}
}

func TestA6AdaptiveBetweenFixedPolicies(t *testing.T) {
	tb, err := A6(DefaultA6())
	if err != nil {
		t.Fatal(err)
	}
	var fastN, slowErr, adaN, adaErr, fastErr float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "fixed-5s":
			fastN, fastErr = cell(t, row[1]), cell(t, row[2])
		case "fixed-60s":
			slowErr = cell(t, row[2])
		case "adaptive-AIMD":
			adaN, adaErr = cell(t, row[1]), cell(t, row[2])
		}
	}
	if adaN >= fastN/2 {
		t.Fatalf("adaptive used %v samples, want well below fixed-fast %v", adaN, fastN)
	}
	if adaErr >= slowErr {
		t.Fatalf("adaptive error %v not below fixed-slow %v", adaErr, slowErr)
	}
	if adaErr < fastErr {
		t.Fatalf("adaptive error %v below fixed-fast %v is implausible", adaErr, fastErr)
	}
}

func TestC7AdaptiveRadioCheapestAndLossless(t *testing.T) {
	tb, err := C7(DefaultC7())
	if err != nil {
		t.Fatal(err)
	}
	var gsm, ada float64
	var adaDropped float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "gsm-only":
			gsm = cell(t, row[1])
		case "adaptive":
			ada = cell(t, row[1])
			adaDropped = cell(t, row[2])
		}
	}
	if ada >= gsm {
		t.Fatalf("adaptive %v not cheaper than GSM %v", ada, gsm)
	}
	if adaDropped != 0 {
		t.Fatalf("adaptive dropped %v messages", adaDropped)
	}
}

func TestC8BothModelsCover(t *testing.T) {
	tb, err := C8(C8Config{GridW: 8, GridH: 8, Nodes: 4, DurationS: 600, StepS: 5, Seed: 28})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if cell(t, row[1]) < 10 {
			t.Fatalf("%s covered only %s cells", row[0], row[1])
		}
		sp := cell(t, row[2])
		if sp <= 0 || sp > 1 {
			t.Fatalf("%s spatial coverage %v", row[0], sp)
		}
	}
}

func TestC9SuppressionGrowsWithDensity(t *testing.T) {
	tb, err := C9(C9Config{AreaM: 200, Radius: 20, Rounds: 10, Crowds: []int{10, 100}, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	sparse := cell(t, tb.Rows[0][3])
	dense := cell(t, tb.Rows[1][3])
	if dense <= sparse {
		t.Fatalf("dense redundancy %v%% not above sparse %v%%", dense, sparse)
	}
	// Coverage loss is bounded by the area diagonal (dense crowds chain
	// into large connected components — the known density artifact of
	// overhearing-based clustering).
	for _, row := range tb.Rows {
		if loss := cell(t, row[4]); loss > 285 {
			t.Fatalf("coverage loss %v m exceeds the area diagonal", loss)
		}
	}
}

func TestCFaultCurveDegradesGracefully(t *testing.T) {
	cfg := DefaultCFault()
	tb, err := CFault(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(cfg.Losses)+1 {
		t.Fatalf("rows %d, want %d severity levels", len(tb.Rows), len(cfg.Losses)+1)
	}
	base := cell(t, tb.Rows[0][1])
	for i, row := range tb.Rows {
		nmse := cell(t, row[1])
		if nmse > 2.5*base {
			t.Fatalf("level %s NMSE %v exceeds 2.5x fault-free %v", row[0], nmse, base)
		}
		if cell(t, row[2]) == 0 {
			t.Fatalf("level %s gathered nothing", row[0])
		}
		// Faulted levels drop traffic; the fault-free one drops none.
		dropped := cell(t, row[7])
		if i == 0 && dropped != 0 {
			t.Fatalf("fault-free level dropped %v messages", dropped)
		}
		if i > 0 && dropped == 0 {
			t.Fatalf("level %s dropped no traffic", row[0])
		}
	}
	// The worst case (partition) reports the lost broker.
	last := tb.Rows[len(tb.Rows)-1]
	if cell(t, last[5]) != 1 {
		t.Fatalf("partition level failed brokers %v, want 1", last[5])
	}
}
