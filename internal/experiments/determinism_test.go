package experiments

// Golden determinism tests for the parallel fan-out: every parallelized
// table and the campaign pipeline must be byte-identical between a serial
// (GOMAXPROCS=1) run and a fully parallel one. The fan-out contract —
// per-trial seeded RNGs, per-index result slots, reductions in index order
// after the pool drains — makes the schedule unobservable; these tests pin
// that contract.

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

// atGOMAXPROCS runs fn with GOMAXPROCS pinned to n, restoring the previous
// value afterwards.
func atGOMAXPROCS(n int, fn func() (*Table, error)) (*Table, error) {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	return fn()
}

func assertTableStable(t *testing.T, name string, run func() (*Table, error)) {
	t.Helper()
	serial, err := atGOMAXPROCS(1, run)
	if err != nil {
		t.Fatalf("%s serial: %v", name, err)
	}
	parallel, err := atGOMAXPROCS(4, run)
	if err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("%s table differs between GOMAXPROCS=1 and 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
			name, serial.String(), parallel.String())
	}
}

func TestFig4DeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := Fig4Config{N: 128, Ms: []int{20, 30}, K: 6, Trials: 6, Seed: 4}
	assertTableStable(t, "Fig4", func() (*Table, error) { return Fig4(cfg) })
}

func TestC2DeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := C2Config{Ns: []int{64, 128}, Ks: []int{4}, Trials: 5, Seed: 12}
	assertTableStable(t, "C2", func() (*Table, error) { return C2(cfg) })
}

func TestA2DeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := A2Config{N: 96, M: 30, Ks: []int{4, 8, 16}, Noise: 0.05, Trials: 9, Seed: 22}
	assertTableStable(t, "A2", func() (*Table, error) { return A2(cfg) })
}

func TestA4DeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := A4Config{N: 64, M: 28, K: 4, Noise: 0.02, Trials: 6, Seed: 24}
	assertTableStable(t, "A4", func() (*Table, error) { return A4(cfg) })
}

// TestCampaignDeterministicAcrossGOMAXPROCS exercises the zone fan-out in
// PublicCloud.Assemble: two identically seeded middleware stacks must
// produce the exact same reconstruction whether zones run serially or
// concurrently.
func TestCampaignDeterministicAcrossGOMAXPROCS(t *testing.T) {
	runOnce := func() (*core.CampaignResult, error) {
		sd, err := core.New(core.Options{
			FieldW: 24, FieldH: 24, ZoneRows: 2, ZoneCols: 2,
			NCsPerZone: 1, NodesPerNC: 4, Seed: 99,
		})
		if err != nil {
			return nil, err
		}
		defer sd.Close()
		rng := rand.New(rand.NewSource(7))
		truth := field.GenPlumes(24, 24, 10, []field.Plume{
			{Row: 6, Col: 6, Sigma: 2.5, Amplitude: 20},
			{Row: 16, Col: 18, Sigma: 3, Amplitude: 25},
		})
		truth.AddNoise(rng, 0.02)
		if err := sd.SetTruth(truth); err != nil {
			return nil, err
		}
		return sd.RunCampaign(core.CampaignConfig{TotalM: 96})
	}

	prev := runtime.GOMAXPROCS(1)
	serial, errS := runOnce()
	runtime.GOMAXPROCS(4)
	parallel, errP := runOnce()
	runtime.GOMAXPROCS(prev)
	if errS != nil {
		t.Fatalf("serial campaign: %v", errS)
	}
	if errP != nil {
		t.Fatalf("parallel campaign: %v", errP)
	}
	if len(serial.Reconstructed.Data) != len(parallel.Reconstructed.Data) {
		t.Fatalf("field sizes differ: %d vs %d", len(serial.Reconstructed.Data), len(parallel.Reconstructed.Data))
	}
	for i, v := range serial.Reconstructed.Data {
		if parallel.Reconstructed.Data[i] != v {
			t.Fatalf("reconstructed field differs at cell %d: serial %g, parallel %g",
				i, v, parallel.Reconstructed.Data[i])
		}
	}
	if serial.GlobalNMSE != parallel.GlobalNMSE {
		t.Fatalf("GlobalNMSE differs: serial %g, parallel %g", serial.GlobalNMSE, parallel.GlobalNMSE)
	}
	for z, v := range serial.ZoneNMSE {
		if parallel.ZoneNMSE[z] != v {
			t.Fatalf("zone %d NMSE differs: serial %g, parallel %g", z, v, parallel.ZoneNMSE[z])
		}
	}
	for z, m := range serial.Plan {
		if parallel.Plan[z] != m {
			t.Fatalf("zone %d budget differs: serial %d, parallel %d", z, m, parallel.Plan[z])
		}
	}
}
