package experiments

// Bounded fan-out for the embarrassingly parallel trial loops. The contract
// that makes parallel tables byte-identical to serial ones has two parts:
//
//  1. every trial derives its own RNG from (seed, sweep-point, trial) via
//     subSeed, so no trial reads another trial's stream, and
//  2. workers only write to per-index slots; all floating-point reduction
//     (sums, medians) happens after the pool drains, in index order.
//
// Under that contract the schedule cannot influence any result, so the
// golden determinism tests compare GOMAXPROCS=1 against GOMAXPROCS=N runs
// for exact equality.

import (
	"math/rand"
	"runtime"
	"sync"
)

// mix64 is the splitmix64 finalizer; it decorrelates adjacent seeds.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// subSeed derives a deterministic child seed from a base seed and a path of
// indices (sweep point, trial, ...).
func subSeed(seed int64, path ...int64) int64 {
	h := mix64(uint64(seed))
	for _, p := range path {
		h = mix64(h ^ uint64(p))
	}
	return int64(h >> 1) // non-negative, the convention for rand seeds here
}

// forEach runs fn(i) for i in [0, n) on min(n, GOMAXPROCS) workers and
// blocks until all complete. Errors land in per-index slots and the
// lowest-index one is returned, so the reported error does not depend on
// scheduling either.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachTrial is forEach where every trial gets its own deterministic RNG
// seeded by subSeed(seed, trial).
func forEachTrial(trials int, seed int64, fn func(trial int, rng *rand.Rand) error) error {
	return forEach(trials, func(t int) error {
		return fn(t, rand.New(rand.NewSource(subSeed(seed, int64(t)))))
	})
}
