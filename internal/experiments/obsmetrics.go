package experiments

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// recordNMSE publishes a reconstruction-error summary under the canonical
// metric name "experiments.<id>.nmse.<label>". Every error metric the
// experiment tables print is an NMSE (normalized mean-square error,
// cs.NMSE) — historically some locals were named ambiguously (nm, sums,
// rmse-style shorthands), so this helper is the single naming chokepoint:
// anything routed through it lands in the obs registry (and the -obs-out
// snapshot) under one consistent scheme. It is a no-op until obs.Enable.
func recordNMSE(id, label string, v float64) {
	if !obs.Enabled() {
		return
	}
	name := fmt.Sprintf("experiments.%s.nmse.%s", strings.ToLower(id), label)
	obs.GetGauge(name).Set(v)
}
