package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/fleet"
)

// cfleetTruth scales the two-plume evaluation field to the configured
// grid, so every scenario (and both backends) reconstructs the same
// shape and the NMSE column is comparable across rows.
func cfleetTruth(w, h int) *field.Field {
	return field.GenPlumes(w, h, 10, []field.Plume{
		{Row: float64(h) / 4, Col: float64(w) / 4, Sigma: float64(h) / 8, Amplitude: 30},
		{Row: 3 * float64(h) / 4, Col: 2 * float64(w) / 3, Sigma: float64(h) / 7, Amplitude: 22},
	})
}

// CFleetConfig sizes the fleet-backend campaign sweep.
type CFleetConfig struct {
	Nodes     int // fleet population per scenario
	ShardSize int
	FieldW    int
	FieldH    int
	ZoneRows  int
	ZoneCols  int
	Budget    int   // distinct measured cells per zone
	Seed      int64 // population seed; Seed+1 seeds the network

	// Comparison row: the same truth reconstructed by the node.Node
	// backend (live goroutine nodes, buses, brokers).
	NodeBackendNodes int // nodes per NanoCloud
	TotalM           int // node-backend measurement budget
}

// DefaultCFleet returns the presentation-scale configuration: a 65k-node
// fleet (the bench suite pushes the same runner to 10^6).
func DefaultCFleet() CFleetConfig {
	return CFleetConfig{
		Nodes: 65536, ShardSize: 4096,
		FieldW: 32, FieldH: 32, ZoneRows: 2, ZoneCols: 2,
		Budget: 96, Seed: 11,
		NodeBackendNodes: 8, TotalM: 128,
	}
}

// cfleetRun builds a fresh population+runner from cfg (identical seeds
// every time — scenarios differ only in the fault plan mutate applies)
// and runs one campaign.
func cfleetRun(cfg CFleetConfig, truth *field.Field, mutate func(*fleet.Runner)) (*fleet.Result, error) {
	p, err := fleet.NewPopulation(fleet.Config{
		Nodes: cfg.Nodes, ShardSize: cfg.ShardSize,
		FieldW: cfg.FieldW, FieldH: cfg.FieldH,
		ZoneRows: cfg.ZoneRows, ZoneCols: cfg.ZoneCols,
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := p.SetTruth(truth); err != nil {
		return nil, err
	}
	r, err := fleet.NewRunner(p, cfg.Seed+1, cfg.Budget)
	if err != nil {
		return nil, err
	}
	if mutate != nil {
		mutate(r)
	}
	return r.Run(fleet.CampaignConfig{})
}

// CFleet compares the struct-of-arrays fleet backend against the
// node.Node backend on one truth, then sweeps the fleet through the
// fault scenarios the node backend is routinely subjected to — burst
// loss on shard uplinks, a zone collector crash window, and
// duplication+reordering. Every scenario reuses the netsim fault
// substrate (fleet.Runner.Plan is a live netsim.FaultPlan), so fault
// plans written for the node backend apply to fleet traffic unchanged.
func CFleet(cfg CFleetConfig) (*Table, error) {
	t := &Table{
		ID:     "CFL",
		Title:  "Fleet backend: node-backend parity and fault scenarios at scale",
		Header: []string{"scenario", "nodes", "NMSE", "meas", "deliv", "lost", "down", "energy-MJ"},
	}
	truth := cfleetTruth(cfg.FieldW, cfg.FieldH)

	// Node backend row: the full middleware hierarchy on the same truth.
	sd, err := core.New(core.Options{
		FieldW: cfg.FieldW, FieldH: cfg.FieldH,
		ZoneRows: cfg.ZoneRows, ZoneCols: cfg.ZoneCols,
		NCsPerZone: 1, NodesPerNC: cfg.NodeBackendNodes, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := sd.SetTruth(truth); err != nil {
		sd.Close()
		return nil, err
	}
	nodeRes, err := sd.RunCampaign(core.CampaignConfig{TotalM: cfg.TotalM})
	sd.Close()
	if err != nil {
		return nil, fmt.Errorf("experiments: cfleet node backend: %w", err)
	}
	nodeCount := cfg.ZoneRows * cfg.ZoneCols * cfg.NodeBackendNodes
	recordNMSE("cfleet", "node-backend", nodeRes.GlobalNMSE)
	t.AddRow("node-backend", d(nodeCount), f(nodeRes.GlobalNMSE), d(nodeRes.Measurements), "-", "-", "-", "-")

	scenarios := []struct {
		name   string
		mutate func(*fleet.Runner)
	}{
		{"fleet-clean", nil},
		{"fleet-burst", func(r *fleet.Runner) {
			// Burst loss on every shard's uplink to its zone collector.
			ge := geForAvgLoss(0.25)
			for _, s := range r.Pop.Shards {
				r.Plan.SetBurstLink(fleet.ShardEndpoint(s.Index), fleet.ZoneEndpoint(s.Zone), ge)
			}
		}},
		{"fleet-zone-crash", func(r *fleet.Runner) {
			// One zone's collector crashes for a mid-campaign window.
			r.Plan.Crash(fleet.ZoneEndpoint(0), cfg.Nodes/16, cfg.Nodes/2)
		}},
		{"fleet-dup-reorder", func(r *fleet.Runner) {
			r.Plan.SetDuplicateProb(0.2)
			r.Plan.SetReorderProb(0.25)
		}},
	}
	var cleanNMSE float64
	for i, sc := range scenarios {
		res, err := cfleetRun(cfg, truth, sc.mutate)
		if err != nil {
			return nil, fmt.Errorf("experiments: cfleet %q: %w", sc.name, err)
		}
		if i == 0 {
			cleanNMSE = res.GlobalNMSE
		}
		recordNMSE("cfleet", sc.name, res.GlobalNMSE)
		t.AddRow(sc.name, d(cfg.Nodes), f(res.GlobalNMSE), d(res.Measurements),
			d(res.Envelopes), d(res.Totals.Dropped), d(res.Down), f(res.EnergyMJ))
	}
	t.AddNote("fleet backend simulates %d nodes per scenario as struct-of-arrays shards; node backend runs %d live goroutine nodes on the same truth", cfg.Nodes, nodeCount)
	t.AddNote("fault-free fleet NMSE %.4f vs node backend %.4f; fault scenarios reuse the netsim fault plan unchanged", cleanNMSE, nodeRes.GlobalNMSE)
	return t, nil
}
