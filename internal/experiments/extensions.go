package experiments

// Extension experiments beyond the paper's artifacts: the optional /
// future-work directions its §5 sketches, made concrete. A4 compares the
// decoder zoo, A5 quantifies joint spatio-temporal decoding, A6 evaluates
// adaptive sampling, C7 the heterogeneous-radio selection, and C8 the
// coverage metrics under different mobility models.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/basis"
	"repro/internal/coverage"
	"repro/internal/cs"
	"repro/internal/energy"
	"repro/internal/field"
	"repro/internal/mobility"
	"repro/internal/opportunistic"
	"repro/internal/schedule"
	"repro/internal/sensor"
)

// --- A4: decoder comparison -------------------------------------------------------

// A4Config sizes the decoder shoot-out.
type A4Config struct {
	N, M, K int
	Noise   float64
	Trials  int
	Seed    int64
}

// DefaultA4 returns the paper-scale configuration.
func DefaultA4() A4Config { return A4Config{N: 128, M: 40, K: 6, Noise: 0.02, Trials: 10, Seed: 24} }

// A4 compares the four decoders the middleware ships — OMP (the paper's
// Eq. 13 solver), basis pursuit / BPDN (the Eq. 9–10 L1 program), CoSaMP
// and IHT — on the same noisy sparse-recovery instances.
func A4(cfg A4Config) (*Table, error) {
	phi := basis.CachedDCT(cfg.N)
	op, err := basis.CachedOperator(basis.KindDCT, cfg.N)
	if err != nil {
		return nil, err
	}
	type decoder struct {
		name string
		run  func(locs []int, y []float64) (*cs.Result, error)
	}
	// The greedy decoders run matrix-free; BPDN builds an explicit LP from
	// the sensing matrix, so it stays on the dense path.
	decoders := []decoder{
		{"omp", func(locs []int, y []float64) (*cs.Result, error) {
			return cs.OMPOp(op, locs, y, cfg.K, 1e-9)
		}},
		{"cosamp", func(locs []int, y []float64) (*cs.Result, error) {
			return cs.CoSaMPOp(op, locs, y, cs.CoSaMPOptions{K: cfg.K})
		}},
		{"iht", func(locs []int, y []float64) (*cs.Result, error) {
			return cs.IHTOp(op, locs, y, cs.IHTOptions{K: cfg.K})
		}},
		{"bpdn", func(locs []int, y []float64) (*cs.Result, error) {
			return cs.BPDN(phi, locs, y, 2*cfg.Noise, 1e-6)
		}},
	}
	nmse := make([][]float64, cfg.Trials)
	failed := make([][]bool, cfg.Trials)
	err = forEachTrial(cfg.Trials, subSeed(cfg.Seed, 4), func(trial int, rng *rand.Rand) error {
		nmse[trial] = make([]float64, len(decoders))
		failed[trial] = make([]bool, len(decoders))
		alpha := make([]float64, cfg.N)
		for _, j := range rng.Perm(cfg.N)[:cfg.K] {
			alpha[j] = 2 + rng.Float64()*3
		}
		x, err := basis.Synthesize(phi, alpha)
		if err != nil {
			return err
		}
		locs, err := cs.RandomLocations(rng, cfg.N, cfg.M)
		if err != nil {
			return err
		}
		y, err := cs.Measure(x, locs, rng, []float64{cfg.Noise})
		if err != nil {
			return err
		}
		for i, dec := range decoders {
			res, err := dec.run(locs, y)
			if err != nil {
				failed[trial][i] = true
				continue
			}
			nmse[trial][i] = cs.NMSE(x, res.Xhat)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	nmseSums := make([]float64, len(decoders))
	fails := make([]int, len(decoders))
	for trial := 0; trial < cfg.Trials; trial++ {
		for i := range decoders {
			if failed[trial][i] {
				fails[i]++
			} else {
				nmseSums[i] += nmse[trial][i]
			}
		}
	}
	t := &Table{
		ID:     "A4",
		Title:  "Sparse decoder comparison at equal budget",
		Header: []string{"decoder", "mean-NMSE", "failures"},
	}
	for i, dec := range decoders {
		ok := cfg.Trials - fails[i]
		mean := math.NaN()
		if ok > 0 {
			mean = nmseSums[i] / float64(ok)
		}
		recordNMSE("a4", dec.name, mean)
		t.AddRow(dec.name, f(mean), d(fails[i]))
	}
	t.AddNote("N=%d, M=%d, K=%d, noise sigma %.2f; BPDN box eps=2 sigma", cfg.N, cfg.M, cfg.K, cfg.Noise)
	return t, nil
}

// --- A5: joint spatio-temporal decoding --------------------------------------------

// A5Config sizes the spatio-temporal study.
type A5Config struct {
	W, H, Steps int
	Ms          []int
	Drift       float64
	Seed        int64
}

// DefaultA5 returns the paper-scale configuration.
func DefaultA5() A5Config {
	return A5Config{W: 12, H: 12, Steps: 8, Ms: []int{8, 12, 16, 30}, Drift: 0.15, Seed: 25}
}

// A5 quantifies the paper's "jointly perform spatio-temporal compressive
// sensing": a drifting plume decoded per snapshot vs jointly in the
// temporal⊗spatial basis at the same per-step budget.
func A5(cfg A5Config) (*Table, error) {
	proto := field.New(cfg.W, cfg.H)
	phi, err := proto.Operator2D(basis.KindDCT)
	if err != nil {
		return nil, err
	}
	seq := make([][]float64, cfg.Steps)
	for step := range seq {
		f := field.GenPlumes(cfg.W, cfg.H, 10, []field.Plume{{
			Row:   4 + cfg.Drift*float64(step),
			Col:   6 + cfg.Drift*0.8*float64(step),
			Sigma: 2.2, Amplitude: 25,
		}})
		seq[step] = f.Vector()
	}
	t := &Table{
		ID:     "A5",
		Title:  "Per-snapshot vs joint spatio-temporal decoding (equal budget)",
		Header: []string{"M/step", "per-step-NMSE", "joint-NMSE", "improvement"},
	}
	perStep := make([]float64, len(cfg.Ms))
	joint := make([]float64, len(cfg.Ms))
	err = forEach(len(cfg.Ms), func(mi int) error {
		m := cfg.Ms[mi]
		st, _, err := cs.RecoverSequence(phi, seq, cs.SequenceOptions{M: m, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		jt, _, err := cs.RecoverSpatioTemporal(phi, seq, cs.SpatioTemporalOptions{M: m, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		perStep[mi], joint[mi] = cs.MeanNMSE(st), cs.MeanNMSE(jt)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for mi, m := range cfg.Ms {
		s, j := perStep[mi], joint[mi]
		t.AddRow(d(m), f(s), f(j), fmt.Sprintf("%.1fx", s/math.Max(j, 1e-12)))
	}
	t.AddNote("%d-step drifting plume on a %dx%d grid; joint basis = spatial DCT ⊗ temporal DCT", cfg.Steps, cfg.H, cfg.W)
	return t, nil
}

// --- A6: adaptive sampling -----------------------------------------------------------

// A6Config sizes the adaptive-sampling study.
type A6Config struct {
	DurationS float64 // simulated seconds
	Events    int     // bursts within the duration
	Seed      int64
}

// DefaultA6 returns the paper-scale configuration.
func DefaultA6() A6Config { return A6Config{DurationS: 3600, Events: 4, Seed: 26} }

// A6 evaluates the §5 "adaptive sampling" direction: a bursty temperature
// signal tracked by fixed fast sampling, fixed slow sampling, and the
// variance-driven AIMD sampler — comparing samples spent against worst
// tracking error.
func A6(cfg A6Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Signal: flat baseline with sharp exponential bursts.
	type burst struct{ t0, amp, tau float64 }
	bursts := make([]burst, cfg.Events)
	for i := range bursts {
		bursts[i] = burst{
			t0:  (float64(i) + 0.3 + 0.4*rng.Float64()) * cfg.DurationS / float64(cfg.Events),
			amp: 5 + 5*rng.Float64(),
			tau: 40 + 30*rng.Float64(),
		}
	}
	signal := func(tt float64) float64 {
		v := 20.0
		for _, b := range bursts {
			if tt >= b.t0 {
				v += b.amp * math.Exp(-(tt-b.t0)/b.tau)
			}
		}
		return v
	}
	// run simulates one policy: nextInterval decides spacing; returns
	// samples used and the mean absolute error of zero-order-hold
	// tracking at 1 s resolution. (Worst-case error cannot discriminate
	// here: a burst is an instantaneous jump, so every policy eats one
	// full-amplitude sample; the integrated error is what sampling rate
	// actually controls.)
	run := func(next func(windowVar float64) float64, start float64) (int, float64) {
		samples := 0
		tt := 0.0
		lastVal := signal(0)
		interval := start
		errSum, errN := 0.0, 0
		var window []float64
		for tt < cfg.DurationS {
			steps := int(interval)
			if steps < 1 {
				steps = 1
			}
			for s := 0; s < steps && tt < cfg.DurationS; s++ {
				errSum += math.Abs(signal(tt) - lastVal)
				errN++
				tt++
			}
			lastVal = signal(tt)
			samples++
			window = append(window, lastVal)
			if len(window) > 5 {
				window = window[1:]
			}
			interval = next(variance(window))
		}
		return samples, errSum / float64(errN)
	}
	fixedFast := func(float64) float64 { return 5 }
	fixedSlow := func(float64) float64 { return 60 }
	sampler, err := schedule.NewAdaptiveSampler(5, 40, 0.02)
	if err != nil {
		return nil, err
	}
	adaptive := sampler.Observe

	t := &Table{
		ID:     "A6",
		Title:  "Adaptive sampling: samples spent vs mean tracking error",
		Header: []string{"policy", "samples", "mean-error", "sensor-mJ"},
	}
	model := energy.DefaultModel()
	cost := model.SensorSampleMJ[sensor.Temperature]
	policies := []struct {
		name string
		next func(float64) float64
		init float64
	}{
		{"fixed-5s", fixedFast, 5},
		{"fixed-60s", fixedSlow, 60},
		{"adaptive-AIMD", adaptive, 5},
	}
	samples := make([]int, len(policies))
	meanErrs := make([]float64, len(policies))
	if err := forEach(len(policies), func(pi int) error {
		samples[pi], meanErrs[pi] = run(policies[pi].next, policies[pi].init)
		return nil
	}); err != nil {
		return nil, err
	}
	for pi, p := range policies {
		t.AddRow(p.name, d(samples[pi]), f(meanErrs[pi]), f2(float64(samples[pi])*cost))
	}
	t.AddNote("%.0f s bursty signal with %d events; adaptive trades a little accuracy for a large cut in samples vs fixed-fast, and beats fixed-slow on both axes per joule", cfg.DurationS, cfg.Events)
	return t, nil
}

func variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := 0.0
	for _, x := range v {
		m += x
	}
	m /= float64(len(v))
	s := 0.0
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return s / float64(len(v))
}

// --- C7: heterogeneous radio selection -------------------------------------------------

// C7Config sizes the radio-selection study.
type C7Config struct {
	Messages int
	BTAvail  float64 // probability Bluetooth is in range for a message
	Seed     int64
}

// DefaultC7 returns the paper-scale configuration.
func DefaultC7() C7Config { return C7Config{Messages: 2000, BTAvail: 0.45, Seed: 27} }

// C7 concretizes the §5 "heterogeneity in mobile cloud" direction:
// per-message radio selection (Bluetooth when in range, else WiFi, GSM as
// last resort) versus pinning all traffic to one radio.
func C7(cfg C7Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	model := energy.DefaultModel()
	// Message mix: mostly small telemetry, some bulk log uploads.
	sizes := make([]int, cfg.Messages)
	btOK := make([]bool, cfg.Messages)
	wifiOK := make([]bool, cfg.Messages)
	for i := range sizes {
		if rng.Float64() < 0.85 {
			sizes[i] = 32 + rng.Intn(96)
		} else {
			sizes[i] = 4096 + rng.Intn(8192)
		}
		btOK[i] = rng.Float64() < cfg.BTAvail
		wifiOK[i] = rng.Float64() < 0.9
	}
	total := func(policy func(i int) []energy.RadioKind) (float64, int) {
		sum := 0.0
		dropped := 0
		for i, sz := range sizes {
			r, cost, ok := model.ChooseRadio(sz, policy(i))
			if !ok {
				dropped++
				continue
			}
			_ = r
			sum += cost
		}
		return sum, dropped
	}
	wifiOnly, dW := total(func(i int) []energy.RadioKind {
		if wifiOK[i] {
			return []energy.RadioKind{energy.RadioWiFi}
		}
		return nil
	})
	gsmOnly, dG := total(func(i int) []energy.RadioKind {
		return []energy.RadioKind{energy.RadioGSM}
	})
	adaptiveE, dA := total(func(i int) []energy.RadioKind {
		var avail []energy.RadioKind
		if btOK[i] {
			avail = append(avail, energy.RadioBluetooth)
		}
		if wifiOK[i] {
			avail = append(avail, energy.RadioWiFi)
		}
		avail = append(avail, energy.RadioGSM)
		return avail
	})
	t := &Table{
		ID:     "C7",
		Title:  "Per-message radio selection vs pinned radio",
		Header: []string{"policy", "total-mJ", "dropped", "vs-gsm"},
	}
	t.AddRow("gsm-only", f2(gsmOnly), d(dG), "-")
	t.AddRow("wifi-only", f2(wifiOnly), d(dW), pct(energy.SavingsPercent(gsmOnly, wifiOnly)))
	t.AddRow("adaptive", f2(adaptiveE), d(dA), pct(energy.SavingsPercent(gsmOnly, adaptiveE)))
	t.AddNote("%d messages (85%% telemetry, 15%% bulk); Bluetooth in range %.0f%% of the time; adaptive never drops", cfg.Messages, 100*cfg.BTAvail)
	return t, nil
}

// --- C8: coverage under mobility models -------------------------------------------------

// C8Config sizes the coverage study.
type C8Config struct {
	GridW, GridH int
	Nodes        int
	DurationS    float64
	StepS        float64
	Seed         int64
}

// DefaultC8 returns the paper-scale configuration.
func DefaultC8() C8Config {
	return C8Config{GridW: 16, GridH: 16, Nodes: 8, DurationS: 1200, StepS: 5, Seed: 28}
}

// C8 measures the spatial/temporal coverage metrics (after the
// StreamShaper line of work in the paper's §2) achieved by a node fleet
// under random-waypoint vs Gauss–Markov mobility.
func C8(cfg C8Config) (*Table, error) {
	areaW := float64(cfg.GridW) * 10
	areaH := float64(cfg.GridH) * 10
	runModel := func(mk func(r *rand.Rand) (mobility.Model, error)) (*coverage.Log, error) {
		rng := rand.New(rand.NewSource(cfg.Seed))
		log, err := coverage.NewLog(cfg.GridW, cfg.GridH)
		if err != nil {
			return nil, err
		}
		models := make([]mobility.Model, cfg.Nodes)
		for i := range models {
			m, err := mk(rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				return nil, err
			}
			models[i] = m
		}
		for tt := 0.0; tt < cfg.DurationS; tt += cfg.StepS {
			for _, m := range models {
				p := m.Step(cfg.StepS)
				idx := mobility.GridIndex(p, areaW, areaH, cfg.GridW, cfg.GridH)
				if err := log.Record(idx, tt); err != nil {
					return nil, err
				}
			}
		}
		return log, nil
	}
	wp, err := runModel(func(r *rand.Rand) (mobility.Model, error) {
		return mobility.NewRandomWaypoint(r, areaW, areaH, 1, 3, 2)
	})
	if err != nil {
		return nil, err
	}
	gm, err := runModel(func(r *rand.Rand) (mobility.Model, error) {
		return mobility.NewGaussMarkov(r, areaW, areaH, 0.85, 2, 0.4)
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "C8",
		Title:  "Coverage metrics under mobility models",
		Header: []string{"model", "cells", "spatial(r=1)", "temporal(5min)", "staleness(s)"},
	}
	for _, row := range []struct {
		name string
		log  *coverage.Log
	}{{"random-waypoint", wp}, {"gauss-markov", gm}} {
		t.AddRow(row.name,
			d(row.log.Cells()),
			f(row.log.Spatial(1)),
			f(row.log.Temporal(300, cfg.DurationS)),
			f2(row.log.MaxStaleness(cfg.DurationS)))
	}
	t.AddNote("%d nodes roaming %.0f s over a %dx%d grid, sampling their cell every %.0f s", cfg.Nodes, cfg.DurationS, cfg.GridH, cfg.GridW, cfg.StepS)
	return t, nil
}

// --- C9: opportunistic collaboration (Aquiba) ----------------------------------------------

// C9Config sizes the opportunistic-collaboration study.
type C9Config struct {
	AreaM  float64 // square area side, meters
	Radius float64 // collaboration (overhearing) radius
	Rounds int
	Crowds []int // pedestrian counts to sweep
	Seed   int64
}

// DefaultC9 returns the paper-scale configuration.
func DefaultC9() C9Config {
	return C9Config{AreaM: 300, Radius: 20, Rounds: 30, Crowds: []int{20, 60, 150, 300}, Seed: 29}
}

// C9 reproduces the Aquiba result the paper's related work cites
// (Thepvilojanapong et al.): opportunistic collaboration of pedestrians
// suppresses redundant reports, with savings growing with crowd density,
// at a bounded spatial cost (distance from a suppressed walker to its
// cluster's representative).
func C9(cfg C9Config) (*Table, error) {
	t := &Table{
		ID:     "C9",
		Title:  "Opportunistic collaboration: report suppression vs crowd density",
		Header: []string{"pedestrians", "mean-reports", "suppressed", "redundancy", "coverage-loss(m)", "energy-saved"},
	}
	model := energy.DefaultModel()
	perReport := model.TxCostMJ(energy.RadioWiFi, 64) + model.SensorSampleMJ[sensor.GPS]
	for _, crowd := range cfg.Crowds {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(crowd)))
		models := make([]mobility.Model, crowd)
		for i := range models {
			m, err := mobility.NewRandomWaypoint(
				rand.New(rand.NewSource(rng.Int63())), cfg.AreaM, cfg.AreaM, 0.8, 1.8, 3)
			if err != nil {
				return nil, err
			}
			models[i] = m
		}
		reports, suppressed, lossSum := 0, 0, 0.0
		for round := 0; round < cfg.Rounds; round++ {
			peers := make([]opportunistic.Peer, crowd)
			for i, m := range models {
				p := m.Step(10)
				peers[i] = opportunistic.Peer{
					ID: fmt.Sprintf("p%d", i), Pos: p, Battery: rng.Float64(),
				}
			}
			clusters, err := opportunistic.Clusters(peers, cfg.Radius)
			if err != nil {
				return nil, err
			}
			reps, err := opportunistic.Elect(peers, clusters, opportunistic.ElectBattery)
			if err != nil {
				return nil, err
			}
			reports += len(reps)
			suppressed += crowd - len(reps)
			lossSum += opportunistic.CoverageLoss(peers, clusters, reps)
		}
		rounds := float64(cfg.Rounds)
		baselineE := float64(crowd) * rounds * perReport
		actualE := float64(reports) * perReport
		t.AddRow(d(crowd),
			f2(float64(reports)/rounds),
			d(suppressed),
			pct(100*float64(suppressed)/float64(crowd*cfg.Rounds)),
			f2(lossSum/rounds),
			pct(energy.SavingsPercent(baselineE, actualE)))
	}
	t.AddNote("%.0f m area, %.0f m overhearing radius, %d rounds; savings grow with density, but dense crowds chain into large clusters so coverage loss grows too — the protocol's resolution/energy dial", cfg.AreaM, cfg.Radius, cfg.Rounds)
	return t, nil
}
