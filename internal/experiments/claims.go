package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/basis"
	"repro/internal/contextproc"
	"repro/internal/cs"
	"repro/internal/energy"
	"repro/internal/incentive"
	"repro/internal/netsim"
	"repro/internal/sensor"
)

// --- C1: O(N²) → O(NM) transmissions -------------------------------------------------

// C1Config sizes the transmission-scaling study.
type C1Config struct {
	NodeCounts []int
	K          int // field sparsity per cluster
	Seed       int64
}

// DefaultC1 returns the paper-scale configuration.
func DefaultC1() C1Config {
	return C1Config{NodeCounts: []int{64, 128, 256, 512}, K: 8, Seed: 11}
}

// C1 reproduces the Luo et al. claim the paper builds on: raw gathering
// over a chain of N nodes costs O(N²) value-transmissions (node i relays
// all i upstream readings), while compressive gathering costs O(N·M)
// (every node transmits exactly M combined values). The crossover and
// growth rates are what matter, not absolute counts.
func C1(cfg C1Config) (*Table, error) {
	t := &Table{
		ID:     "C1",
		Title:  "Transmissions: raw chain relay O(N²) vs compressive gathering O(N·M)",
		Header: []string{"N", "M", "raw-transmissions", "cs-transmissions", "ratio", "raw/N^2", "cs/(N*M)"},
	}
	for _, n := range cfg.NodeCounts {
		m := cs.TheoreticalM(cfg.K, n, 1.2)
		// Raw: node i (1-indexed from the far end) transmits i values.
		raw := netsim.New(cfg.Seed)
		if err := raw.Register("sink", nil); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if err := raw.Register(fmt.Sprintf("n%d", i), nil); err != nil {
				return nil, err
			}
		}
		for i := 0; i < n; i++ {
			// Node i forwards its own + all upstream readings one hop: i+1 values.
			to := "sink"
			if i+1 < n {
				to = fmt.Sprintf("n%d", i+1)
			}
			for v := 0; v <= i; v++ {
				if err := raw.Send(netsim.Message{From: fmt.Sprintf("n%d", i), To: to, Payload: []byte("v")}); err != nil {
					return nil, err
				}
			}
		}
		rawTx := raw.Totals().TxMessages

		// Compressive: every node transmits exactly M combined values.
		comp := netsim.New(cfg.Seed)
		if err := comp.Register("sink", nil); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if err := comp.Register(fmt.Sprintf("n%d", i), nil); err != nil {
				return nil, err
			}
		}
		for i := 0; i < n; i++ {
			to := "sink"
			if i+1 < n {
				to = fmt.Sprintf("n%d", i+1)
			}
			for v := 0; v < m; v++ {
				if err := comp.Send(netsim.Message{From: fmt.Sprintf("n%d", i), To: to, Payload: []byte("v")}); err != nil {
					return nil, err
				}
			}
		}
		csTx := comp.Totals().TxMessages
		t.AddRow(d(n), d(m), d(rawTx), d(csTx),
			fmt.Sprintf("%.1fx", float64(rawTx)/float64(csTx)),
			f(float64(rawTx)/float64(n*n)), f(float64(csTx)/float64(n*m)))
	}
	t.AddNote("raw/N² stays ~0.5 (= N(N+1)/2N²) and cs/(N·M) stays 1.0: quadratic vs linear-in-M growth")
	return t, nil
}

// --- C2: M = O(K log N) ------------------------------------------------------------------

// C2Config sizes the measurement-bound study.
type C2Config struct {
	Ns     []int
	Ks     []int
	Trials int
	Seed   int64
}

// DefaultC2 returns the paper-scale configuration.
func DefaultC2() C2Config {
	return C2Config{Ns: []int{128, 256, 512, 1024}, Ks: []int{5, 10}, Trials: 5, Seed: 12}
}

// C2 measures the minimal M for reliable recovery (NMSE < 1% in a
// majority of trials) and compares it against K·log N — the paper's
// "M is in the order of O(K log(N))".
func C2(cfg C2Config) (*Table, error) {
	t := &Table{
		ID:     "C2",
		Title:  "Minimal measurements for recovery vs K·log N",
		Header: []string{"N", "K", "M-min", "K*lnN", "c = M/(K*lnN)"},
	}
	for _, n := range cfg.Ns {
		phi := basis.CachedDCT(n)
		op, err := basis.CachedOperator(basis.KindDCT, n)
		if err != nil {
			return nil, err
		}
		for _, k := range cfg.Ks {
			mMin := -1
			for m := k + 2; m <= n; m += 2 {
				oks := make([]bool, cfg.Trials)
				err := forEachTrial(cfg.Trials, subSeed(cfg.Seed, int64(n), int64(k), int64(m)),
					func(trial int, rng *rand.Rand) error {
						alpha := make([]float64, n)
						for _, j := range rng.Perm(n)[:k] {
							alpha[j] = 1 + rng.Float64()*2
						}
						x, err := basis.Synthesize(phi, alpha)
						if err != nil {
							return err
						}
						locs, err := cs.RandomLocations(rng, n, m)
						if err != nil {
							return err
						}
						y, err := cs.Measure(x, locs, rng, nil)
						if err != nil {
							return err
						}
						res, err := cs.OMPOp(op, locs, y, k, 1e-10)
						if err != nil {
							return nil // decode failure counts as a miss, not an error
						}
						oks[trial] = cs.NMSE(x, res.Xhat) < 0.01
						return nil
					})
				if err != nil {
					return nil, err
				}
				ok := 0
				for _, hit := range oks {
					if hit {
						ok++
					}
				}
				if ok*2 > cfg.Trials {
					mMin = m
					break
				}
			}
			klogn := float64(k) * math.Log(float64(n))
			t.AddRow(d(n), d(k), d(mMin), f2(klogn), f2(float64(mMin)/klogn))
		}
	}
	t.AddNote("the fitted constant c should stay roughly flat across N, confirming M ~ O(K log N)")
	return t, nil
}

// --- C3: >80% energy savings via collaboration ---------------------------------------------

// C3Config sizes the collaborative-energy study.
type C3Config struct {
	Nodes  int
	Rounds int // sensing rounds (e.g. one per minute)
	M      int // measurements per collaborative round
	Seed   int64
}

// DefaultC3 returns the paper-scale configuration: a smooth field over one
// NanoCloud's small area has effective sparsity K≈2, so M=4 random
// sensors per round suffice (≈ K·log N for N=25).
func DefaultC3() C3Config { return C3Config{Nodes: 25, Rounds: 60, M: 4, Seed: 13} }

// C3 tests the paper's §5 claim (after Sheng et al. [24]) that
// "collaborative sensing can achieve over 80% power savings compared to
// traditional sensing without collaborations": baseline, every node takes
// a GPS-grade reading and uploads it every round; collaborative, the
// broker solicits only M of N nodes per round and shares the result.
func C3(cfg C3Config) (*Table, error) {
	model := energy.DefaultModel()
	perReadingBytes := 24 // timestamped reading

	// Baseline: N nodes × R rounds, each samples GPS + uploads.
	baseline := energy.NewMeter(model)
	for i := 0; i < cfg.Nodes*cfg.Rounds; i++ {
		if err := baseline.ChargeSamples(sensor.GPS, 1); err != nil {
			return nil, err
		}
		if err := baseline.ChargeTx(energy.RadioWiFi, perReadingBytes); err != nil {
			return nil, err
		}
	}

	// Collaborative: per round only M nodes sample+upload; every node
	// receives the broker's fused result broadcast.
	collab := energy.NewMeter(model)
	fusedBytes := perReadingBytes * cfg.M
	for r := 0; r < cfg.Rounds; r++ {
		for i := 0; i < cfg.M; i++ {
			if err := collab.ChargeSamples(sensor.GPS, 1); err != nil {
				return nil, err
			}
			if err := collab.ChargeTx(energy.RadioWiFi, perReadingBytes); err != nil {
				return nil, err
			}
		}
		for i := 0; i < cfg.Nodes; i++ {
			if err := collab.ChargeRx(energy.RadioWiFi, fusedBytes); err != nil {
				return nil, err
			}
		}
	}
	sav := energy.SavingsPercent(baseline.TotalMJ(), collab.TotalMJ())
	t := &Table{
		ID:     "C3",
		Title:  "Collaborative vs solo continuous sensing energy (target: >80% savings)",
		Header: []string{"scheme", "total-mJ", "per-node-mJ", "savings"},
	}
	t.AddRow("solo continuous", f2(baseline.TotalMJ()), f2(baseline.TotalMJ()/float64(cfg.Nodes)), "-")
	t.AddRow("collaborative M-of-N", f2(collab.TotalMJ()), f2(collab.TotalMJ()/float64(cfg.Nodes)), pct(sav))
	t.AddNote("%d nodes, %d rounds, M=%d sampled per round; every node still receives the fused field", cfg.Nodes, cfg.Rounds, cfg.M)
	return t, nil
}

// --- C4: compressive IsIndoor ----------------------------------------------------------------

// C4Config sizes the IsIndoor duty-cycling study.
type C4Config struct {
	Windows   int // number of 64-sample windows (1 sample/min → ~1 h each)
	WindowLen int
	M         int // compressive samples per window
	Seed      int64
}

// DefaultC4 returns the paper-scale configuration (~1 day at 1 fix/min,
// 25% duty cycle).
func DefaultC4() C4Config { return C4Config{Windows: 22, WindowLen: 64, M: 16, Seed: 14} }

// C4 reproduces the paper's energy-efficient context example: derive the
// IsIndoor flag from compressively sampled GPS/WiFi time series "with
// similar accuracy while saving energy consumptions" versus continuous
// uniform measurement.
func C4(cfg C4Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	indoor := sensor.AlternatingSchedule(1800) // 30 min indoors, 30 min out
	gpsModel := sensor.GPSModel(indoor)
	wifiModel := sensor.WiFiModel(indoor)
	phi, err := basis.CachedOperator(basis.KindHaar, cfg.WindowLen)
	if err != nil {
		return nil, err
	}
	model := energy.DefaultModel()
	contMeter := energy.NewMeter(model)
	compMeter := energy.NewMeter(model)

	total, contOK, compOK := 0, 0, 0
	minute := 60.0
	for w := 0; w < cfg.Windows; w++ {
		// Ground-truth per-minute signals for this window.
		sats := make([]float64, cfg.WindowLen)
		acc := make([]float64, cfg.WindowLen)
		rssi := make([]float64, cfg.WindowLen)
		aps := make([]float64, cfg.WindowLen)
		truthIndoor := make([]bool, cfg.WindowLen)
		for i := 0; i < cfg.WindowLen; i++ {
			tt := (float64(w*cfg.WindowLen) + float64(i)) * minute
			sats[i] = gpsModel(tt, 0)
			acc[i] = gpsModel(tt, 1)
			rssi[i] = wifiModel(tt, 0)
			aps[i] = wifiModel(tt, 1)
			truthIndoor[i] = indoor(tt)
		}
		// Continuous: a GPS fix + WiFi scan every minute.
		if err := contMeter.ChargeSamples(sensor.GPS, cfg.WindowLen); err != nil {
			return nil, err
		}
		if err := contMeter.ChargeSamples(sensor.WiFi, cfg.WindowLen); err != nil {
			return nil, err
		}
		// Compressive: M fixes/scans per window, reconstruct each series.
		if err := compMeter.ChargeSamples(sensor.GPS, cfg.M); err != nil {
			return nil, err
		}
		if err := compMeter.ChargeSamples(sensor.WiFi, cfg.M); err != nil {
			return nil, err
		}
		locs, err := cs.RandomLocations(rng, cfg.WindowLen, cfg.M)
		if err != nil {
			return nil, err
		}
		recon := func(sig []float64) ([]float64, error) {
			y, err := cs.Measure(sig, locs, rng, []float64{0.2})
			if err != nil {
				return nil, err
			}
			res, err := cs.OMPOp(phi, locs, y, cfg.M/2, 1e-8)
			if err != nil {
				return nil, err
			}
			return res.Xhat, nil
		}
		satsHat, err := recon(sats)
		if err != nil {
			return nil, err
		}
		accHat, err := recon(acc)
		if err != nil {
			return nil, err
		}
		rssiHat, err := recon(rssi)
		if err != nil {
			return nil, err
		}
		apsHat, err := recon(aps)
		if err != nil {
			return nil, err
		}
		for i := 0; i < cfg.WindowLen; i++ {
			total++
			// Continuous sampling sees the same sensor noise level.
			contFlag := contextproc.IsIndoor(contextproc.EnvReading{
				GPSSatellites: sats[i] + 0.2*rng.NormFloat64(),
				GPSAccuracyM:  acc[i] + 0.2*rng.NormFloat64(),
				WiFiRSSIdBm:   rssi[i] + 0.2*rng.NormFloat64(),
				WiFiAPCount:   aps[i] + 0.2*rng.NormFloat64(),
			})
			compFlag := contextproc.IsIndoor(contextproc.EnvReading{
				GPSSatellites: satsHat[i], GPSAccuracyM: accHat[i],
				WiFiRSSIdBm: rssiHat[i], WiFiAPCount: apsHat[i],
			})
			if contFlag == truthIndoor[i] {
				contOK++
			}
			if compFlag == truthIndoor[i] {
				compOK++
			}
		}
	}
	sav := energy.SavingsPercent(contMeter.TotalMJ(), compMeter.TotalMJ())
	t := &Table{
		ID:     "C4",
		Title:  "IsIndoor: continuous vs temporal-compressive GPS/WiFi sampling",
		Header: []string{"method", "accuracy", "gps-fixes", "energy-mJ", "savings"},
	}
	t.AddRow("continuous", pct(100*float64(contOK)/float64(total)),
		d(cfg.Windows*cfg.WindowLen), f2(contMeter.TotalMJ()), "-")
	t.AddRow(fmt.Sprintf("compressive M=%d/%d", cfg.M, cfg.WindowLen),
		pct(100*float64(compOK)/float64(total)),
		d(cfg.Windows*cfg.M), f2(compMeter.TotalMJ()), pct(sav))
	t.AddNote("%d windows of %d per-minute fixes; Haar basis exploits the piecewise-constant indoor/outdoor signal", cfg.Windows, cfg.WindowLen)
	return t, nil
}

// --- C5: IsDriving from 30/256 samples ----------------------------------------------------------

// C5Config sizes the IsDriving study.
type C5Config struct {
	Ms     []int
	Trials int
	Seed   int64
}

// DefaultC5 returns the paper's setting plus a sweep around it.
func DefaultC5() C5Config { return C5Config{Ms: []int{10, 20, 30, 45, 64}, Trials: 12, Seed: 15} }

// C5 tests the paper's concrete example: the IsDriving context recovered
// from 30 of 256 accelerometer samples matches full-window classification.
func C5(cfg C5Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	phi, err := basis.CachedOperator(basis.KindDFT, 256)
	if err != nil {
		return nil, err
	}
	scens := []sensor.MotionScenario{sensor.MotionIdle, sensor.MotionWalking, sensor.MotionDriving}
	t := &Table{
		ID:     "C5",
		Title:  "IsDriving context from M of 256 accelerometer samples",
		Header: []string{"M", "context-agreement", "mean-NMSE"},
	}
	for _, m := range cfg.Ms {
		pipe, err := contextproc.NewPipeline(phi, m, minInt(8, m))
		if err != nil {
			return nil, err
		}
		agree, total, nmseSum := 0, 0, 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			scen := scens[trial%len(scens)]
			model, err := sensor.AccelModel(scen)
			if err != nil {
				return nil, err
			}
			probe, err := sensor.NewProbe("a", sensor.Accelerometer, 3,
				sensor.Config{RateHz: 64, NoiseSigma: 0.02, Seed: rng.Int63()}, model)
			if err != nil {
				return nil, err
			}
			window, err := probe.CollectAxis(256, 2)
			if err != nil {
				return nil, err
			}
			comp, full, nmse, err := pipe.ClassifyCompressive(window, 64, rng)
			if err != nil {
				return nil, err
			}
			total++
			if comp == full {
				agree++
			}
			nmseSum += nmse
		}
		t.AddRow(d(m), pct(100*float64(agree)/float64(total)), f(nmseSum/float64(cfg.Trials)))
	}
	t.AddNote("paper highlights M=30: context agreement should be at or near 100%% there and degrade for small M")
	return t, nil
}

// --- C6: incentive mechanisms ----------------------------------------------------------------------

// C6Config sizes the incentive comparison.
type C6Config struct {
	Candidates int
	K          int
	Budget     float64
	Cells      int
	Seed       int64
}

// DefaultC6 returns the paper-scale configuration.
func DefaultC6() C6Config { return C6Config{Candidates: 100, K: 15, Budget: 60, Cells: 64, Seed: 16} }

// C6 reproduces the comparative incentive-mechanism study the paper cites
// (Duan et al.): recruitment, sealed-bid second-price, and dynamic-price
// reverse auction on one candidate pool.
func C6(cfg C6Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cands := make([]incentive.Candidate, cfg.Candidates)
	for i := range cands {
		cost := 0.5 + rng.Float64()*3.5
		cover := make([]int, 1+rng.Intn(5))
		for j := range cover {
			cover[j] = rng.Intn(cfg.Cells)
		}
		cands[i] = incentive.Candidate{
			ID: fmt.Sprintf("u%03d", i), Cost: cost,
			Bid: cost * (1 + 0.8*rng.Float64()), Coverage: cover,
		}
	}
	outcomes, err := incentive.Compare(rng, cands, cfg.K, cfg.Budget)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "C6",
		Title:  "Incentive mechanisms: cost, coverage, participation",
		Header: []string{"mechanism", "total-cost", "covered-cells", "winners"},
	}
	for _, o := range outcomes {
		covered := d(o.CoveredCells)
		if o.Mechanism == "reverse-dynamic" {
			covered = "-" // steady-state round metric; coverage not tracked per round
		}
		t.AddRow(o.Mechanism, f2(o.TotalCost), covered, d(o.Winners))
	}
	t.AddNote("%d candidates, task size k=%d, recruitment budget %.0f; dynamic auction reports steady-state round cost", cfg.Candidates, cfg.K, cfg.Budget)
	return t, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
