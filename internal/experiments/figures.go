package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/basis"
	"repro/internal/core"
	"repro/internal/cs"
	"repro/internal/field"
	"repro/internal/netsim"
	"repro/internal/sensor"
)

// --- F1: hierarchy scalability ---------------------------------------------------

// Fig1Config sizes the hierarchy-vs-flat comparison.
type Fig1Config struct {
	NodeCounts []int // network sizes to sweep
	LCs        int   // local clouds in the hierarchy
	NCsPerLC   int   // NanoClouds per local cloud
	Seed       int64
}

// DefaultFig1 returns the paper-scale configuration.
func DefaultFig1() Fig1Config {
	return Fig1Config{NodeCounts: []int{256, 512, 1024}, LCs: 4, NCsPerLC: 4, Seed: 1}
}

// Fig1 reproduces the Fig. 1 architecture argument quantitatively: with a
// flat single sink, the sink's receive load grows linearly with N and it
// is the lone bottleneck; the multi-tiered hierarchy spreads the load so
// the most-loaded element handles only ~N/(LCs·NCs) messages plus the
// small inter-tier traffic.
func Fig1(cfg Fig1Config) (*Table, error) {
	t := &Table{
		ID:     "F1",
		Title:  "Multi-tiered hierarchy vs flat single sink (per-round message load)",
		Header: []string{"nodes", "flat-sink-load", "hier-max-load", "reduction"},
	}
	for _, n := range cfg.NodeCounts {
		// Flat: every node sends one reading to the sink.
		flat := netsim.New(cfg.Seed)
		if err := flat.Register("sink", nil); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("n%d", i)
			if err := flat.Register(id, nil); err != nil {
				return nil, err
			}
			if err := flat.Send(netsim.Message{From: id, To: "sink", Payload: []byte("r")}); err != nil {
				return nil, err
			}
		}
		_, flatLoad := flat.MaxRx()

		// Hierarchy: node → NC broker → LC head → public cloud.
		hier := netsim.New(cfg.Seed)
		if err := hier.Register("cloud", nil); err != nil {
			return nil, err
		}
		ncCount := cfg.LCs * cfg.NCsPerLC
		for lc := 0; lc < cfg.LCs; lc++ {
			if err := hier.Register(fmt.Sprintf("lc%d", lc), nil); err != nil {
				return nil, err
			}
			for nc := 0; nc < cfg.NCsPerLC; nc++ {
				if err := hier.Register(fmt.Sprintf("lc%d/nc%d", lc, nc), nil); err != nil {
					return nil, err
				}
			}
		}
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("n%d", i)
			if err := hier.Register(id, nil); err != nil {
				return nil, err
			}
			ncIdx := i % ncCount
			brokerID := fmt.Sprintf("lc%d/nc%d", ncIdx/cfg.NCsPerLC, ncIdx%cfg.NCsPerLC)
			if err := hier.Send(netsim.Message{From: id, To: brokerID, Payload: []byte("r")}); err != nil {
				return nil, err
			}
		}
		// Brokers aggregate up to LC heads, heads to the cloud.
		for lc := 0; lc < cfg.LCs; lc++ {
			for nc := 0; nc < cfg.NCsPerLC; nc++ {
				if err := hier.Send(netsim.Message{
					From: fmt.Sprintf("lc%d/nc%d", lc, nc), To: fmt.Sprintf("lc%d", lc),
					Payload: []byte("agg"),
				}); err != nil {
					return nil, err
				}
			}
			if err := hier.Send(netsim.Message{From: fmt.Sprintf("lc%d", lc), To: "cloud", Payload: []byte("agg")}); err != nil {
				return nil, err
			}
		}
		_, hierLoad := hier.MaxRx()
		t.AddRow(d(n), d(flatLoad), d(hierLoad),
			fmt.Sprintf("%.1fx", float64(flatLoad)/float64(hierLoad)))
	}
	t.AddNote("hierarchy: %d LCs x %d NCs; flat sink load grows with N, hierarchical max load stays ~N/%d",
		cfg.LCs, cfg.NCsPerLC, cfg.LCs*cfg.NCsPerLC)
	return t, nil
}

// --- F2: NanoCloud round trip ------------------------------------------------------

// Fig2Config sizes the broker↔node orchestration measurement.
type Fig2Config struct {
	Nodes int
	M     int
	Seed  int64
}

// DefaultFig2 returns the paper-scale configuration.
func DefaultFig2() Fig2Config { return Fig2Config{Nodes: 32, M: 64, Seed: 2} }

// Fig2 exercises the Fig. 2 NanoCloud loop end to end: command →
// measure → telemetry → reconstruct, over the middleware bus, reporting
// orchestration traffic and reconstruction quality. (Wall-clock latency
// deliberately does not appear: experiment tables are byte-identical
// across runs, and real orchestration latency lives in the
// span.broker.gather.ms obs histogram instead.)
func Fig2(cfg Fig2Config) (*Table, error) {
	opts := core.Options{
		FieldW: 16, FieldH: 16, ZoneRows: 1, ZoneCols: 1,
		NCsPerZone: 1, NodesPerNC: cfg.Nodes, Seed: cfg.Seed,
	}
	sd, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	defer sd.Close()
	truth := field.GenPlumes(16, 16, 12, []field.Plume{{Row: 6, Col: 9, Sigma: 3, Amplitude: 25}})
	if err := sd.SetTruth(truth); err != nil {
		return nil, err
	}
	res, err := sd.RunCampaign(core.CampaignConfig{TotalM: cfg.M})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F2",
		Title:  "NanoCloud broker orchestration round trip (Fig. 2 components)",
		Header: []string{"metric", "value"},
	}
	t.AddRow("registered nodes", d(cfg.Nodes))
	t.AddRow("measurement budget M", d(cfg.M))
	t.AddRow("mobile readings used", d(res.NodesUsed))
	t.AddRow("infrastructure fallback", d(res.InfraUsed))
	t.AddRow("privacy denials", d(res.Denied))
	t.AddRow("reconstruction NMSE", f(res.GlobalNMSE))
	recordNMSE("f2", "global", res.GlobalNMSE)
	t.AddRow("bus payload bytes", fmt.Sprintf("%d", sd.BusBytes()))
	t.AddRow("node energy (mJ)", f2(sd.TotalEnergyMJ()))
	return t, nil
}

// --- F3: probe inventory -------------------------------------------------------------

// Fig3 enumerates the Fig. 3 probe complement of one simulated handset and
// validates the fused virtual sensors (compass) against ground truth.
func Fig3(seed int64) (*Table, error) {
	reg, err := sensor.StandardPhone("phone", seed, sensor.ProfileMidrange,
		sensor.MotionWalking, sensor.AlternatingSchedule(600))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F3",
		Title:  "Physical sensing probes + virtual sensor fusion (Fig. 3)",
		Header: []string{"probe", "kind", "axes", "rate(Hz)", "noise-sigma"},
	}
	for _, name := range reg.List() {
		p, _ := reg.Get(name)
		t.AddRow(p.Name(), string(p.Kind()), d(p.Axes()),
			fmt.Sprintf("%g", p.Config().RateHz), fmt.Sprintf("%g", p.NoiseSigma()))
	}
	// Virtual compass: fuse accel+mag, compare with the known heading model.
	headingTruth := math.Pi / 3
	accel, err := sensor.NewProbe("v/accel", sensor.Accelerometer, 3,
		sensor.Config{RateHz: 16, Seed: seed},
		func(tt float64, axis int) float64 {
			if axis == 2 {
				return 9.81
			}
			return 0
		})
	if err != nil {
		return nil, err
	}
	mag, err := sensor.NewProbe("v/mag", sensor.Magnetometer, 3,
		sensor.Config{RateHz: 16, NoiseSigma: 0.4, Seed: seed + 1},
		sensor.MagModel(func(tt float64) float64 { return headingTruth }))
	if err != nil {
		return nil, err
	}
	compass, err := sensor.NewCompassProbe("v/compass", accel, mag)
	if err != nil {
		return nil, err
	}
	sum, n := 0.0, 64
	for i := 0; i < n; i++ {
		h, err := compass.Next()
		if err != nil {
			return nil, err
		}
		sum += h
	}
	errRad := math.Abs(sum/float64(n) - headingTruth)
	t.AddNote("virtual compass (accel+mag fusion): mean heading error %.4f rad over %d samples", errRad, n)
	t.AddNote("11 physical probes + fused virtual sensors (orientation/compass/inclinometer) + context probes in internal/contextproc")
	return t, nil
}

// --- F4: reconstruction accuracy vs measurements ---------------------------------------

// Fig4Config sizes the headline reconstruction sweep.
type Fig4Config struct {
	N      int   // window length (paper: 256)
	Ms     []int // measurement counts to sweep (paper highlights 30)
	K      int   // OMP sparsity budget
	Trials int
	Seed   int64
}

// DefaultFig4 returns the paper's setting.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		N:  256,
		Ms: []int{8, 12, 16, 20, 24, 30, 40, 56, 80, 112, 128},
		K:  8, Trials: 10, Seed: 4,
	}
}

// Fig4 reproduces the paper's only quantitative figure: reconstruction
// accuracy of a 256-sample accelerometer signal as a function of the
// number of random measurements. The paper reports good recovery from 30
// random samples; the curve should rise steeply and flatten past the
// M ≈ O(K log N) knee.
func Fig4(cfg Fig4Config) (*Table, error) {
	model, err := sensor.AccelModel(sensor.MotionDriving)
	if err != nil {
		return nil, err
	}
	phi, err := basis.CachedOperator(basis.KindDFT, cfg.N)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F4",
		Title:  fmt.Sprintf("Reconstruction accuracy vs #measurements (N=%d accelerometer window)", cfg.N),
		Header: []string{"M", "compression", "NMSE", "accuracy", "snr(dB)"},
	}
	for _, m := range cfg.Ms {
		nmses := make([]float64, cfg.Trials)
		accs := make([]float64, cfg.Trials)
		snrs := make([]float64, cfg.Trials)
		err := forEachTrial(cfg.Trials, subSeed(cfg.Seed, int64(m)), func(trial int, rng *rand.Rand) error {
			probe, err := sensor.NewProbe("a", sensor.Accelerometer, 3,
				sensor.Config{RateHz: 64, NoiseSigma: 0.02, Seed: rng.Int63()}, model)
			if err != nil {
				return err
			}
			window, err := probe.CollectAxis(cfg.N, 2)
			if err != nil {
				return err
			}
			locs, err := cs.RandomLocations(rng, cfg.N, m)
			if err != nil {
				return err
			}
			y, err := cs.Measure(window, locs, rng, nil)
			if err != nil {
				return err
			}
			res, err := cs.OMPOp(phi, locs, y, cfg.K, 1e-9)
			if err != nil {
				return err
			}
			nmses[trial] = cs.NMSE(window, res.Xhat)
			accs[trial] = cs.Accuracy(window, res.Xhat)
			snr := cs.SNRdB(window, res.Xhat)
			if math.IsInf(snr, 1) {
				snr = 60
			}
			snrs[trial] = snr
			return nil
		})
		if err != nil {
			return nil, err
		}
		nmseSum, accSum, snrSum := 0.0, 0.0, 0.0
		for trial := 0; trial < cfg.Trials; trial++ {
			nmseSum += nmses[trial]
			accSum += accs[trial]
			snrSum += snrs[trial]
		}
		tr := float64(cfg.Trials)
		recordNMSE("f4", fmt.Sprintf("m%d", m), nmseSum/tr)
		t.AddRow(d(m), fmt.Sprintf("%.1fx", cs.CompressionRatio(cfg.N, m)),
			f(nmseSum/tr), f(accSum/tr), f2(snrSum/tr))
	}
	t.AddNote("paper: 256-sample accelerometer signal recovered from 30 random samples for the IsDriving context")
	t.AddNote("theoretical sufficient M = O(K log N) = %d (c=1, K=%d)", cs.TheoreticalM(cfg.K, cfg.N, 1), cfg.K)
	return t, nil
}

// --- F5: adaptive per-zone compression --------------------------------------------------

// Fig5Config sizes the zoned spatio-temporal field experiment.
type Fig5Config struct {
	FieldW, FieldH     int
	ZoneRows, ZoneCols int
	NodesPerNC         int
	TotalM             int
	Trials             int
	Seed               int64
}

// DefaultFig5 returns the paper-scale configuration.
func DefaultFig5() Fig5Config {
	return Fig5Config{FieldW: 32, FieldH: 32, ZoneRows: 4, ZoneCols: 4,
		NodesPerNC: 4, TotalM: 220, Trials: 3, Seed: 5}
}

// Fig5 reproduces the Fig. 5 story: a spatially heterogeneous field is
// gathered zone by zone, with the middleware choosing each zone's
// compression ratio from its local sparsity. At equal total budget the
// adaptive plan beats the uniform (global-threshold) baseline.
func Fig5(cfg Fig5Config) (*Table, error) {
	t := &Table{
		ID:     "F5",
		Title:  "Per-zone adaptive compression vs uniform budget (Fig. 5)",
		Header: []string{"trial", "uniform-NMSE", "adaptive-NMSE", "improvement"},
	}
	uniNMSESum, adaNMSESum := 0.0, 0.0
	for trial := 0; trial < cfg.Trials; trial++ {
		sd, err := core.New(core.Options{
			FieldW: cfg.FieldW, FieldH: cfg.FieldH,
			ZoneRows: cfg.ZoneRows, ZoneCols: cfg.ZoneCols,
			NCsPerZone: 1, NodesPerNC: cfg.NodesPerNC,
			Seed: cfg.Seed + int64(trial)*101,
		})
		if err != nil {
			return nil, err
		}
		// Heterogeneous field: hotspots concentrated in a few zones. The
		// sensor layer adds measurement noise; the field itself is clean so
		// the zones' local sparsity is well defined.
		truth := field.GenPlumes(cfg.FieldW, cfg.FieldH, 12, []field.Plume{
			{Row: 5, Col: 5, Sigma: 2.0, Amplitude: 40},
			{Row: 7, Col: 3, Sigma: 1.5, Amplitude: 25},
			{Row: 26, Col: 27, Sigma: 2.5, Amplitude: 30},
		})
		if err := sd.SetTruth(truth); err != nil {
			sd.Close()
			return nil, err
		}
		uni, err := sd.RunCampaign(core.CampaignConfig{TotalM: cfg.TotalM})
		if err != nil {
			sd.Close()
			return nil, err
		}
		ada, err := sd.RunCampaign(core.CampaignConfig{
			TotalM: cfg.TotalM, Adaptive: true, Prior: truth,
		})
		if err != nil {
			sd.Close()
			return nil, err
		}
		sd.Close()
		uniNMSESum += uni.GlobalNMSE
		adaNMSESum += ada.GlobalNMSE
		t.AddRow(d(trial), f(uni.GlobalNMSE), f(ada.GlobalNMSE),
			fmt.Sprintf("%.1fx", uni.GlobalNMSE/math.Max(ada.GlobalNMSE, 1e-12)))
	}
	tr := float64(cfg.Trials)
	recordNMSE("f5", "uniform", uniNMSESum/tr)
	recordNMSE("f5", "adaptive", adaNMSESum/tr)
	t.AddNote("mean uniform NMSE %.4f vs adaptive %.4f at equal total budget M=%d on a %dx%d field, %dx%d zones",
		uniNMSESum/tr, adaNMSESum/tr, cfg.TotalM, cfg.FieldH, cfg.FieldW, cfg.ZoneRows, cfg.ZoneCols)
	return t, nil
}

// --- F6: the CHS algorithm ---------------------------------------------------------------

// Fig6Config sizes the algorithm study.
type Fig6Config struct {
	N, M, K int
	Trials  int
	Seed    int64
}

// DefaultFig6 returns the paper-scale configuration.
func DefaultFig6() Fig6Config { return Fig6Config{N: 256, M: 64, K: 8, Trials: 10, Seed: 6} }

// Fig6 exercises the Compressive Heterogeneous Sensing algorithm of
// Fig. 6: convergence of the sensor residual across iterations, and the
// OLS-vs-GLS step (e) comparison under heterogeneous sensor noise.
func Fig6(cfg Fig6Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	phi := basis.CachedDCT(cfg.N)
	op, err := basis.CachedOperator(basis.KindDCT, cfg.N)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F6",
		Title:  "CHS algorithm: convergence and OLS vs GLS under heterogeneous sensors",
		Header: []string{"metric", "OLS", "GLS"},
	}
	olsNMSESum, glsNMSESum := 0.0, 0.0
	var iterOLS, iterGLS int
	for trial := 0; trial < cfg.Trials; trial++ {
		alpha := make([]float64, cfg.N)
		for _, j := range rng.Perm(cfg.N)[:cfg.K] {
			alpha[j] = 4 + rng.Float64()*4
		}
		x, err := basis.Synthesize(phi, alpha)
		if err != nil {
			return nil, err
		}
		locs, err := cs.RandomLocations(rng, cfg.N, cfg.M)
		if err != nil {
			return nil, err
		}
		sigmas := make([]float64, cfg.M)
		for i := range sigmas {
			if i%3 == 0 {
				sigmas[i] = 0.35 // budget handset
			} else {
				sigmas[i] = 0.02 // flagship
			}
		}
		y, err := cs.Measure(x, locs, rng, sigmas)
		if err != nil {
			return nil, err
		}
		ols, err := cs.CHSOp(op, locs, y, cs.CHSOptions{MaxSupport: cfg.K, Tol: 1e-6})
		if err != nil {
			return nil, err
		}
		gls, err := cs.CHSOp(op, locs, y, cs.CHSOptions{
			MaxSupport: cfg.K, Tol: 1e-6, V: cs.NoiseCovariance(sigmas, 1e-4),
		})
		if err != nil {
			return nil, err
		}
		olsNMSESum += cs.NMSE(x, ols.Xhat)
		glsNMSESum += cs.NMSE(x, gls.Xhat)
		iterOLS += ols.Iterations
		iterGLS += gls.Iterations
	}
	tr := float64(cfg.Trials)
	recordNMSE("f6", "ols", olsNMSESum/tr)
	recordNMSE("f6", "gls", glsNMSESum/tr)
	t.AddRow("mean NMSE", f(olsNMSESum/tr), f(glsNMSESum/tr))
	t.AddRow("mean iterations", f2(float64(iterOLS)/tr), f2(float64(iterGLS)/tr))
	t.AddRow("GLS improvement", "-", fmt.Sprintf("%.1fx", (olsNMSESum/tr)/math.Max(glsNMSESum/tr, 1e-12)))
	t.AddNote("N=%d, M=%d, K=%d, 1/3 of sensors are noisy budget handsets (sigma 0.35 vs 0.02)", cfg.N, cfg.M, cfg.K)
	return t, nil
}
