package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/netsim"
	"repro/internal/testutil/chaos"
)

// cfaultTruth is the two-plume evaluation field every severity level
// reconstructs, so the NMSE column is comparable across rows.
func cfaultTruth() *field.Field {
	return field.GenPlumes(16, 16, 12, []field.Plume{
		{Row: 4, Col: 4, Sigma: 2, Amplitude: 30},
		{Row: 11, Col: 12, Sigma: 3, Amplitude: 20},
	})
}

// CFaultConfig sizes the fault-resilience sweep.
type CFaultConfig struct {
	TotalM  int
	Seed    int64
	Timeout time.Duration // broker↔node request timeout
	Losses  []float64     // average burst-loss levels to sweep
}

// DefaultCFault returns the paper-scale configuration.
func DefaultCFault() CFaultConfig {
	return CFaultConfig{
		TotalM:  80,
		Seed:    27,
		Timeout: 60 * time.Millisecond,
		Losses:  []float64{0, 0.10, 0.25},
	}
}

// geForAvgLoss builds a Gilbert–Elliott channel whose stationary average
// loss is avg. The chain flips state often (half the messages land in
// the bad state), so the realized loss of even a short campaign tracks
// the average instead of hinging on whether one long burst happened.
func geForAvgLoss(avg float64) netsim.GilbertElliott {
	lossBad := 2 * avg
	if lossBad > 0.95 {
		lossBad = 0.95
	}
	return netsim.GilbertElliott{PGoodToBad: 0.5, PBadToGood: 0.5, LossGood: 0, LossBad: lossBad}
}

// CFault sweeps fault severity over the full Fig. 1 hierarchy and
// reports the accuracy-vs-loss curve: burst loss on every node link at
// increasing average rates, then a worst case that additionally
// partitions one broker (infra offline) so its zone must degrade.
// Per-call retries absorb most of the loss — the campaign completes at
// every level and the NMSE curve quantifies what resilience costs.
func CFault(cfg CFaultConfig) (*Table, error) {
	t := &Table{
		ID:     "CF",
		Title:  "Reconstruction accuracy vs injected faults (retry + degradation)",
		Header: []string{"scenario", "NMSE", "meas", "mobile", "infra", "failed", "short", "dropped", "tx"},
	}
	type level struct {
		name      string
		loss      float64
		partition bool
	}
	levels := make([]level, 0, len(cfg.Losses)+1)
	for _, l := range cfg.Losses {
		levels = append(levels, level{name: fmt.Sprintf("loss-%.0f%%", l*100), loss: l})
	}
	levels = append(levels, level{name: "loss-10%+partition", loss: 0.10, partition: true})
	var baseNMSE float64
	for i, lv := range levels {
		h, err := chaos.New(core.Options{
			FieldW: 16, FieldH: 16, ZoneRows: 2, ZoneCols: 2,
			NCsPerZone: 2, NodesPerNC: 4,
			Seed: cfg.Seed, Timeout: cfg.Timeout,
		})
		if err != nil {
			return nil, err
		}
		if err := h.SD.SetTruth(cfaultTruth()); err != nil {
			h.Close()
			return nil, err
		}
		if lv.loss > 0 {
			ge := geForAvgLoss(lv.loss)
			for _, brID := range h.SD.BrokerIDs() {
				h.BurstBroker(brID, ge)
			}
		}
		if lv.partition {
			h.PartitionBroker("lc0/nc0", 0, 1<<30)
			if br, ok := h.SD.BrokerByID("lc0/nc0"); ok {
				br.SetInfraEnabled(false)
			}
		}
		res, err := h.SD.RunCampaign(core.CampaignConfig{TotalM: cfg.TotalM})
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("experiments: cfault level %q: %w", lv.name, err)
		}
		stats := h.Totals()
		h.Close()
		if i == 0 {
			baseNMSE = res.GlobalNMSE
		}
		recordNMSE("cfault", lv.name, res.GlobalNMSE)
		t.AddRow(lv.name, f(res.GlobalNMSE), d(res.Measurements),
			d(res.NodesUsed), d(res.InfraUsed), d(res.BrokersFailed),
			d(res.Shortfall), d(stats.Dropped), d(stats.TxMessages))
	}
	t.AddNote("fault-free NMSE %.4f; every faulted level completes via retries, infra top-up, and zone redistribution", baseNMSE)
	t.AddNote("Gilbert-Elliott burst loss on all node links; worst case also severs one broker's fleet with its infra offline")
	return t, nil
}
