package field

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/basis"
	"repro/internal/mat"
)

func TestIndexLocRoundTrip(t *testing.T) {
	f := New(5, 3)
	for k := 0; k < f.N(); k++ {
		r, c := f.Loc(k)
		if f.Index(r, c) != k {
			t.Fatalf("Index(Loc(%d)) = %d", k, f.Index(r, c))
		}
	}
}

func TestAtSetVectorConvention(t *testing.T) {
	// Eq. (1) column-stacking: (r,c) lives at c*H + r.
	f := New(4, 3) // W=4, H=3
	f.Set(2, 3, 7)
	if f.Data[3*3+2] != 7 {
		t.Fatalf("column-stacking convention violated: %v", f.Data)
	}
	if f.At(2, 3) != 7 {
		t.Fatal("At/Set mismatch")
	}
}

func TestFromVector(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	f, err := FromVector(2, 3, x)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(0, 0) != 1 || f.At(2, 0) != 3 || f.At(0, 1) != 4 {
		t.Fatalf("FromVector layout wrong: %+v", f)
	}
	if _, err := FromVector(2, 2, x); err == nil {
		t.Fatal("want length error")
	}
}

func TestGenSparseInBasisIsExactlySparse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f, support, err := GenSparseInBasis(rng, 8, 8, 5, basis.KindDCT, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(support) != 5 {
		t.Fatalf("support size %d", len(support))
	}
	phi, _ := f.Basis2D(basis.KindDCT)
	alpha, _ := basis.Analyze(phi, f.Vector())
	if nz := mat.Norm0(alpha, 1e-9); nz != 5 {
		t.Fatalf("field has %d nonzero coefficients, want 5", nz)
	}
	for _, j := range support {
		if math.Abs(alpha[j]) < 1-1e-9 {
			t.Fatalf("support coefficient %d magnitude %v < 1", j, alpha[j])
		}
	}
}

func TestGenSparseTooSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, _, err := GenSparseInBasis(rng, 2, 2, 5, basis.KindDCT, 1, 2); err == nil {
		t.Fatal("want error when k > N")
	}
}

func TestGenPlumesPeakNearCenter(t *testing.T) {
	f := GenPlumes(32, 32, 10, []Plume{{Row: 10, Col: 20, Sigma: 3, Amplitude: 50}})
	r, c, v := f.MaxLoc()
	if r != 10 || c != 20 {
		t.Fatalf("peak at (%d,%d), want (10,20)", r, c)
	}
	if math.Abs(v-60) > 1e-6 {
		t.Fatalf("peak value %v, want 60", v)
	}
	// Far corner should be near ambient.
	if d := f.At(31, 0) - 10; d > 1 {
		t.Fatalf("far corner %v above ambient", d)
	}
}

func TestGenRandomPlumesInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f, plumes := GenRandomPlumes(rng, 16, 24, 4, 5, 30)
	if len(plumes) != 4 {
		t.Fatalf("plume count %d", len(plumes))
	}
	for _, p := range plumes {
		if p.Row < 0 || p.Row > 23 || p.Col < 0 || p.Col > 15 {
			t.Fatalf("plume out of bounds: %+v", p)
		}
	}
	for _, v := range f.Data {
		if v < 5-1e-9 {
			t.Fatalf("field value %v below ambient", v)
		}
	}
}

func TestAddNoiseChangesField(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := New(8, 8)
	f.AddNoise(rng, 1.0)
	v := mat.Variance(f.Data)
	if v < 0.5 || v > 2.0 {
		t.Fatalf("noise variance %v far from 1", v)
	}
}

func TestPartition(t *testing.T) {
	f := New(8, 6)
	zones, err := Partition(f, 2, 4) // 2 zone-rows × 4 zone-cols
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 8 {
		t.Fatalf("zone count %d", len(zones))
	}
	// Zones tile the grid exactly once.
	seen := make(map[int]int)
	for _, z := range zones {
		if z.W != 2 || z.H != 3 {
			t.Fatalf("zone shape %dx%d, want 3x2", z.H, z.W)
		}
		for c := 0; c < z.W; c++ {
			for r := 0; r < z.H; r++ {
				seen[f.Index(z.Row0+r, z.Col0+c)]++
			}
		}
	}
	if len(seen) != f.N() {
		t.Fatalf("zones cover %d points, want %d", len(seen), f.N())
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("point %d covered %d times", k, n)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	f := New(8, 6)
	if _, err := Partition(f, 0, 2); err == nil {
		t.Fatal("want error for zero zones")
	}
	if _, err := Partition(f, 4, 2); err == nil {
		t.Fatal("want error for indivisible height")
	}
}

func TestExtractInsertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := New(8, 8)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	zones, _ := Partition(f, 2, 2)
	rebuilt := New(8, 8)
	for _, z := range zones {
		sub := Extract(f, z)
		if err := Insert(rebuilt, z, sub); err != nil {
			t.Fatal(err)
		}
	}
	if d := mat.Norm2(mat.SubVec(rebuilt.Data, f.Data)); d > 0 {
		t.Fatalf("round trip differs by %v", d)
	}
}

func TestInsertShapeError(t *testing.T) {
	f := New(8, 8)
	if err := Insert(f, Zone{W: 4, H: 4}, New(2, 2)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestLocalSparsityOrdersZonesCorrectly(t *testing.T) {
	// A flat zone needs ~1 coefficient; a busy zone needs many.
	flat := New(8, 8)
	for i := range flat.Data {
		flat.Data[i] = 5
	}
	rng := rand.New(rand.NewSource(6))
	busy := New(8, 8)
	for i := range busy.Data {
		busy.Data[i] = rng.NormFloat64()
	}
	kFlat, err := LocalSparsity(flat, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	kBusy, err := LocalSparsity(busy, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if kFlat != 1 {
		t.Fatalf("flat zone sparsity %d, want 1", kFlat)
	}
	if kBusy <= 10 {
		t.Fatalf("busy zone sparsity %d, want much larger than flat", kBusy)
	}
	zero := New(4, 4)
	k0, _ := LocalSparsity(zero, 0.99)
	if k0 != 0 {
		t.Fatalf("zero field sparsity %d, want 0", k0)
	}
}

func TestCollectTracesAndLearn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func(step int) *Field {
		return GenPlumes(6, 6, 0, []Plume{{
			Row: 2 + 0.1*float64(step), Col: 3, Sigma: 2, Amplitude: 10 + rng.Float64(),
		}})
	}
	tr, err := CollectTraces(6, 6, 20, gen)
	if err != nil {
		t.Fatal(err)
	}
	if tr.X.Rows != 20 || tr.X.Cols != 36 {
		t.Fatalf("trace matrix %dx%d", tr.X.Rows, tr.X.Cols)
	}
	vecs, vals, err := tr.LearnBasis()
	if err != nil {
		t.Fatal(err)
	}
	if vecs.Rows != 36 || len(vals) != 36 {
		t.Fatal("learned basis shape wrong")
	}
}

func TestCollectTracesShapeMismatch(t *testing.T) {
	_, err := CollectTraces(4, 4, 2, func(step int) *Field { return New(3, 3) })
	if err == nil {
		t.Fatal("want shape error")
	}
}

func TestInterpolateNearestExactAtSamples(t *testing.T) {
	locs := []int{0, 10, 30}
	vals := []float64{1, 2, 3}
	out, err := InterpolateNearest(6, 6, locs, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range locs {
		if out[k] != vals[i] {
			t.Fatalf("sample %d not preserved: %v", k, out[k])
		}
	}
	// Every output value is one of the sample values.
	for _, v := range out {
		if v != 1 && v != 2 && v != 3 {
			t.Fatalf("unexpected interpolated value %v", v)
		}
	}
}

func TestInterpolateIDWExactAtSamplesAndBounded(t *testing.T) {
	locs := []int{0, 35}
	vals := []float64{0, 10}
	out, err := InterpolateIDW(6, 6, locs, vals)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[35] != 10 {
		t.Fatal("IDW not exact at samples")
	}
	for _, v := range out {
		if v < 0-1e-9 || v > 10+1e-9 {
			t.Fatalf("IDW value %v outside sample range", v)
		}
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := InterpolateNearest(4, 4, []int{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := InterpolateNearest(4, 4, []int{99}, []float64{1}); err == nil {
		t.Fatal("want range error")
	}
	if _, err := InterpolateIDW(4, 4, []int{-1}, []float64{1}); err == nil {
		t.Fatal("want range error")
	}
	out, err := InterpolateIDW(4, 4, nil, nil)
	if err != nil || len(out) != 16 {
		t.Fatal("empty interpolation should give zero field")
	}
}

// Property: Extract/Insert over a random partition always reassembles the
// original field exactly.
func TestPropZoneReassembly(t *testing.T) {
	f2 := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		zr := 1 + rng.Intn(3)
		zc := 1 + rng.Intn(3)
		w, h := zc*(1+rng.Intn(4)), zr*(1+rng.Intn(4))
		f := New(w, h)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64()
		}
		zones, err := Partition(f, zr, zc)
		if err != nil {
			return false
		}
		rebuilt := New(w, h)
		for _, z := range zones {
			if err := Insert(rebuilt, z, Extract(f, z)); err != nil {
				return false
			}
		}
		for i := range f.Data {
			if rebuilt.Data[i] != f.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenPlumes64(b *testing.B) {
	plumes := []Plume{{Row: 10, Col: 20, Sigma: 5, Amplitude: 50}, {Row: 50, Col: 40, Sigma: 8, Amplitude: 30}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenPlumes(64, 64, 10, plumes)
	}
}

func BenchmarkLocalSparsity16(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	f, _ := GenRandomPlumes(rng, 16, 16, 2, 5, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LocalSparsity(f, 0.99); err != nil {
			b.Fatal(err)
		}
	}
}
