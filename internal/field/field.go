// Package field models the 2-D spatial fields that SenseDroid senses and
// reconstructs: the discretized spatial field map f[i,j] of the paper's §4,
// its column-stacked vectorization (Eq. 1), zone partitioning for the
// hierarchical local-cloud architecture, synthetic field generators used in
// place of real-world phenomena, local sparsity estimation, and the
// interpolation operator Υ used by the Fig. 6 algorithm.
package field

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/basis"
	"repro/internal/mat"
)

// Field is a discretized 2-D spatial map with H rows and W columns.
// Data is column-stacked per the paper's Eq. (1): element (row r, col c)
// lives at Data[c*H + r], so Data is the vector x[k] with N = W·H entries.
type Field struct {
	W, H int
	Data []float64
}

// New returns a zero field of width w and height h.
func New(w, h int) *Field {
	if w < 0 || h < 0 {
		panic("field: negative dimension")
	}
	return &Field{W: w, H: h, Data: make([]float64, w*h)}
}

// N returns the number of grid points W·H.
func (f *Field) N() int { return f.W * f.H }

// At returns the value at row r, column c.
func (f *Field) At(r, c int) float64 { return f.Data[c*f.H+r] }

// Set assigns the value at row r, column c.
func (f *Field) Set(r, c int, v float64) { f.Data[c*f.H+r] = v }

// Index returns the vector index of grid point (row r, col c) under the
// column-stacking convention of Eq. (1).
func (f *Field) Index(r, c int) int { return c*f.H + r }

// Loc inverts Index: the (row, col) of vector position k.
func (f *Field) Loc(k int) (r, c int) { return k % f.H, k / f.H }

// Clone returns a deep copy.
func (f *Field) Clone() *Field {
	out := New(f.W, f.H)
	copy(out.Data, f.Data)
	return out
}

// Vector returns the column-stacked field values. The slice aliases the
// field's storage; callers that mutate it mutate the field.
func (f *Field) Vector() []float64 { return f.Data }

// FromVector builds a field from a column-stacked vector of length w·h.
func FromVector(w, h int, x []float64) (*Field, error) {
	if len(x) != w*h {
		return nil, fmt.Errorf("field: vector length %d, want %d", len(x), w*h)
	}
	out := New(w, h)
	copy(out.Data, x)
	return out, nil
}

// Basis2D returns the separable 2-D orthonormal basis for this field's
// shape: the row basis of size H Kronecker the column basis of size W,
// matching the column-stacking convention. The matrix is memoized per
// (kind, H, W) and shared — callers must not mutate it.
func (f *Field) Basis2D(kind basis.Kind) (*mat.Matrix, error) {
	return basis.Cached2D(kind, f.H, f.W)
}

// Operator2D returns the matrix-free separable 2-D basis operator for this
// field's shape — the fast-path counterpart of Basis2D. The Kronecker
// product is never materialized; the operator is memoized per (kind, H, W)
// and safe for concurrent use.
func (f *Field) Operator2D(kind basis.Kind) (basis.Operator, error) {
	return basis.CachedOperator2D(kind, f.H, f.W)
}

// MaxLoc returns the (row, col, value) of the field maximum.
func (f *Field) MaxLoc() (r, c int, v float64) {
	v = math.Inf(-1)
	for k, x := range f.Data {
		if x > v {
			v = x
			r, c = f.Loc(k)
		}
	}
	return r, c, v
}

// --- Synthetic generators -------------------------------------------------

// GenSparseInBasis synthesizes a field that is exactly k-sparse in the
// given 2-D basis, with coefficient magnitudes in [minAmp, maxAmp]. It
// returns the field and the true coefficient support, and is the ground
// truth generator for recovery experiments.
func GenSparseInBasis(rng *rand.Rand, w, h, k int, kind basis.Kind, minAmp, maxAmp float64) (*Field, []int, error) {
	f := New(w, h)
	n := f.N()
	if k > n {
		return nil, nil, fmt.Errorf("field: sparsity %d exceeds grid size %d", k, n)
	}
	op, err := f.Operator2D(kind)
	if err != nil {
		return nil, nil, err
	}
	alpha := make([]float64, n)
	support := rng.Perm(n)[:k]
	for _, j := range support {
		amp := minAmp + rng.Float64()*(maxAmp-minAmp)
		if rng.Intn(2) == 0 {
			amp = -amp
		}
		alpha[j] = amp
	}
	op.Apply(f.Data, alpha)
	return f, support, nil
}

// Plume is one Gaussian source in a plume field: a hotspot with the given
// center, spread and amplitude, e.g. a fire front or a pollutant source.
type Plume struct {
	Row, Col  float64
	Sigma     float64
	Amplitude float64
}

// GenPlumes synthesizes a field as a sum of Gaussian plumes on top of an
// ambient level. This is the physically-shaped workload for the disaster
// response use case (incident perimeter assessment).
func GenPlumes(w, h int, ambient float64, plumes []Plume) *Field {
	f := New(w, h)
	for c := 0; c < w; c++ {
		for r := 0; r < h; r++ {
			v := ambient
			for _, p := range plumes {
				dr := float64(r) - p.Row
				dc := float64(c) - p.Col
				v += p.Amplitude * math.Exp(-(dr*dr+dc*dc)/(2*p.Sigma*p.Sigma))
			}
			f.Set(r, c, v)
		}
	}
	return f
}

// GenRandomPlumes draws count plumes with parameters in natural ranges for
// a w×h grid and returns the synthesized field plus the plume list.
func GenRandomPlumes(rng *rand.Rand, w, h, count int, ambient, maxAmp float64) (*Field, []Plume) {
	plumes := make([]Plume, count)
	for i := range plumes {
		plumes[i] = Plume{
			Row:       rng.Float64() * float64(h-1),
			Col:       rng.Float64() * float64(w-1),
			Sigma:     2 + rng.Float64()*float64(min(w, h))/4,
			Amplitude: maxAmp * (0.3 + 0.7*rng.Float64()),
		}
	}
	return GenPlumes(w, h, ambient, plumes), plumes
}

// GenSmoothGradient synthesizes a smooth field varying linearly plus a slow
// sinusoid — the "smooth data field" assumption of the Luo et al. baseline.
func GenSmoothGradient(w, h int, base, slope, wave float64) *Field {
	f := New(w, h)
	for c := 0; c < w; c++ {
		for r := 0; r < h; r++ {
			v := base + slope*(float64(r)+float64(c))/float64(h+w) +
				wave*math.Sin(2*math.Pi*float64(r)/float64(h))*math.Cos(2*math.Pi*float64(c)/float64(w))
			f.Set(r, c, v)
		}
	}
	return f
}

// AddNoise adds i.i.d. Gaussian noise with the given standard deviation.
func (f *Field) AddNoise(rng *rand.Rand, sigma float64) {
	for i := range f.Data {
		f.Data[i] += rng.NormFloat64() * sigma
	}
}

// --- Zones ------------------------------------------------------------------

// Zone is a rectangular sub-region of a field: the area covered by one
// local cloud in the paper's hierarchy.
type Zone struct {
	ID          int
	Row0, Col0  int // top-left corner
	W, H        int
	Criticality float64 // ≥ 0; relative importance for measurement budget
}

// Partition splits a field into a zr×zc grid of zones (zr zone-rows by zc
// zone-columns). Field dimensions must divide evenly so each zone maps to a
// well-formed sub-grid.
func Partition(f *Field, zr, zc int) ([]Zone, error) {
	if zr <= 0 || zc <= 0 {
		return nil, errors.New("field: zone counts must be positive")
	}
	if f.H%zr != 0 || f.W%zc != 0 {
		return nil, fmt.Errorf("field: %dx%d grid not divisible into %dx%d zones", f.H, f.W, zr, zc)
	}
	zh, zw := f.H/zr, f.W/zc
	zones := make([]Zone, 0, zr*zc)
	id := 0
	for i := 0; i < zr; i++ {
		for j := 0; j < zc; j++ {
			zones = append(zones, Zone{
				ID: id, Row0: i * zh, Col0: j * zw, W: zw, H: zh, Criticality: 1,
			})
			id++
		}
	}
	return zones, nil
}

// Extract copies the zone's sub-region of f into a standalone field.
func Extract(f *Field, z Zone) *Field {
	out := New(z.W, z.H)
	for c := 0; c < z.W; c++ {
		for r := 0; r < z.H; r++ {
			out.Set(r, c, f.At(z.Row0+r, z.Col0+c))
		}
	}
	return out
}

// Insert writes sub back into f at the zone's position — the "concatenate
// the results of the NCs for the local region" step of the paper's §3.
func Insert(f *Field, z Zone, sub *Field) error {
	if sub.W != z.W || sub.H != z.H {
		return fmt.Errorf("field: subfield %dx%d does not match zone %dx%d", sub.H, sub.W, z.H, z.W)
	}
	for c := 0; c < z.W; c++ {
		for r := 0; r < z.H; r++ {
			f.Set(z.Row0+r, z.Col0+c, sub.At(r, c))
		}
	}
	return nil
}

// LocalSparsity estimates the zone's effective sparsity: the number of 2-D
// DCT coefficients needed to capture the given energy fraction (e.g. 0.99)
// of the sub-field. This is the "local spatio-temporal sparsity" the
// hierarchical scheme keys its per-zone measurement count on.
func LocalSparsity(sub *Field, energyFrac float64) (int, error) {
	op, err := sub.Operator2D(basis.KindDCT)
	if err != nil {
		return 0, err
	}
	alpha, err := basis.OpAnalyze(op, sub.Vector())
	if err != nil {
		return 0, err
	}
	total := 0.0
	mags := make([]float64, len(alpha))
	for i, a := range alpha {
		mags[i] = a * a
		total += mags[i]
	}
	if total == 0 {
		return 0, nil
	}
	// Sort magnitudes descending (insertion into sorted prefix is fine for
	// the few-hundred-coefficient zones used here).
	for i := 1; i < len(mags); i++ {
		for j := i; j > 0 && mags[j] > mags[j-1]; j-- {
			mags[j], mags[j-1] = mags[j-1], mags[j]
		}
	}
	acc, k := 0.0, 0
	for _, m := range mags {
		acc += m
		k++
		if acc >= energyFrac*total {
			break
		}
	}
	return k, nil
}

// --- Spatio-temporal traces -------------------------------------------------

// Traces holds T historical snapshots of a field process as the T×N matrix
// X of the paper's §4, used to learn priors (PCA basis) per region.
type Traces struct {
	W, H int
	X    *mat.Matrix // T×N, each row a column-stacked field
}

// CollectTraces samples the evolving process gen(t) at t = 0..T-1.
func CollectTraces(w, h, t int, gen func(step int) *Field) (*Traces, error) {
	x := mat.New(t, w*h)
	for step := 0; step < t; step++ {
		f := gen(step)
		if f.W != w || f.H != h {
			return nil, fmt.Errorf("field: trace %d has shape %dx%d, want %dx%d", step, f.H, f.W, h, w)
		}
		copy(x.Data[step*w*h:(step+1)*w*h], f.Data)
	}
	return &Traces{W: w, H: h, X: x}, nil
}

// LearnBasis returns the PCA basis of the traces (see basis.Learn).
func (tr *Traces) LearnBasis() (*mat.Matrix, []float64, error) {
	return basis.Learn(tr.X)
}

// Mean returns the per-cell mean field of the traces. Recovery in a PCA
// basis should run on mean-centered measurements (the eigenvectors span
// the *variation* around this mean), so brokers that exploit prior data
// subtract Mean at the sensor locations before decoding and add it back
// after synthesis.
func (tr *Traces) Mean() []float64 {
	n := tr.W * tr.H
	mu := make([]float64, n)
	if tr.X.Rows == 0 {
		return mu
	}
	for i := 0; i < tr.X.Rows; i++ {
		for j := 0; j < n; j++ {
			mu[j] += tr.X.At(i, j)
		}
	}
	for j := range mu {
		mu[j] /= float64(tr.X.Rows)
	}
	return mu
}

// --- Interpolation operator Υ ------------------------------------------------

// InterpolateNearest implements the Υ: R^M → R^N operator of the Fig. 6
// algorithm with nearest-neighbour interpolation: each grid point takes the
// value of the nearest measured location (Euclidean distance on the grid).
// locs are vector indices (Eq. 1 convention) of the M measurements; vals
// are the corresponding measured values.
func InterpolateNearest(w, h int, locs []int, vals []float64) ([]float64, error) {
	if len(locs) != len(vals) {
		return nil, errors.New("field: locs/vals length mismatch")
	}
	if len(locs) == 0 {
		return make([]float64, w*h), nil
	}
	f := New(w, h)
	out := make([]float64, w*h)
	type pt struct{ r, c int }
	pts := make([]pt, len(locs))
	for i, k := range locs {
		if k < 0 || k >= w*h {
			return nil, fmt.Errorf("field: location %d out of range [0,%d)", k, w*h)
		}
		r, c := f.Loc(k)
		pts[i] = pt{r, c}
	}
	for k := 0; k < w*h; k++ {
		r, c := f.Loc(k)
		best, bi := math.Inf(1), 0
		for i, p := range pts {
			dr, dc := float64(r-p.r), float64(c-p.c)
			d := dr*dr + dc*dc
			if d < best {
				best, bi = d, i
			}
		}
		out[k] = vals[bi]
	}
	return out, nil
}

// InterpolateIDW implements Υ with inverse-distance weighting (power 2),
// which gives a smoother initial field estimate than nearest-neighbour.
func InterpolateIDW(w, h int, locs []int, vals []float64) ([]float64, error) {
	if len(locs) != len(vals) {
		return nil, errors.New("field: locs/vals length mismatch")
	}
	if len(locs) == 0 {
		return make([]float64, w*h), nil
	}
	f := New(w, h)
	out := make([]float64, w*h)
	type pt struct{ r, c int }
	pts := make([]pt, len(locs))
	for i, k := range locs {
		if k < 0 || k >= w*h {
			return nil, fmt.Errorf("field: location %d out of range [0,%d)", k, w*h)
		}
		r, c := f.Loc(k)
		pts[i] = pt{r, c}
	}
	for k := 0; k < w*h; k++ {
		r, c := f.Loc(k)
		num, den := 0.0, 0.0
		exact := false
		for i, p := range pts {
			dr, dc := float64(r-p.r), float64(c-p.c)
			d := dr*dr + dc*dc
			if d == 0 {
				out[k] = vals[i]
				exact = true
				break
			}
			wgt := 1 / d
			num += wgt * vals[i]
			den += wgt
		}
		if !exact {
			out[k] = num / den
		}
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
