package netsim

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/testutil"
)

// TestStatsAccessorsUnderConcurrentTraffic is the -race audit of the stats
// accessors: NodeStats, Totals, MaxTx/MaxRx, SimTimeMS, and ResetStats all
// run concurrently with Send and Broadcast traffic. Any unguarded read of
// the per-node Stats or the simTime accumulator shows up as a data race
// under scripts/check.sh's race suite.
func TestStatsAccessorsUnderConcurrentTraffic(t *testing.T) {
	testutil.CheckGoroutines(t)
	n := New(42)
	const nodes = 8
	ids := make([]string, nodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i)
		if err := n.Register(ids[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	n.SetDefaultLink(Link{LatencyMS: 1.5, LossProb: 0.1})

	const rounds = 300
	var wg sync.WaitGroup
	// Writers: point-to-point senders plus a broadcaster.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				from, to := ids[(w+i)%nodes], ids[(w+i+1)%nodes]
				if err := n.Send(Message{From: from, To: to, Payload: []byte("p")}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/10; i++ {
			if _, err := n.Broadcast(ids[i%nodes], "b", []byte("bb")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Readers: every accessor, racing the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := n.NodeStats(ids[i%nodes]); err != nil {
				t.Error(err)
				return
			}
			_ = n.Totals()
			_, _ = n.MaxTx()
			_, _ = n.MaxRx()
			_ = n.SimTimeMS()
		}
	}()
	// A reset racing everything (topology survives, counters restart).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			n.ResetStats()
		}
	}()
	wg.Wait()

	// Post-conditions: counters are internally consistent after the dust
	// settles (every delivered message was counted on both sides).
	tot := n.Totals()
	if tot.RxMessages != tot.TxMessages-tot.Dropped {
		t.Fatalf("rx %d != tx %d - dropped %d", tot.RxMessages, tot.TxMessages, tot.Dropped)
	}
	if tot.RxBytes > tot.TxBytes {
		t.Fatalf("rx bytes %d > tx bytes %d", tot.RxBytes, tot.TxBytes)
	}
}

// TestObsCountersMatchTotals asserts the acceptance criterion that the
// global obs counters mirror Totals() exactly for a network's traffic —
// the -obs-out snapshot must agree with the in-simulation accounting.
func TestObsCountersMatchTotals(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	txM0 := obs.GetCounter("netsim.tx.messages").Value()
	txB0 := obs.GetCounter("netsim.tx.bytes").Value()
	rxM0 := obs.GetCounter("netsim.rx.messages").Value()
	rxB0 := obs.GetCounter("netsim.rx.bytes").Value()
	lost0 := obs.GetCounter("netsim.lost.messages").Value()

	n := New(7)
	for _, id := range []string{"a", "b", "c"} {
		if err := n.Register(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	n.SetLink("a", "b", Link{LossProb: 0.5, LatencyMS: 2})
	for i := 0; i < 50; i++ {
		if err := n.Send(Message{From: "a", To: "b", Payload: make([]byte, 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Broadcast("c", "t", make([]byte, 3)); err != nil {
		t.Fatal(err)
	}

	tot := n.Totals()
	if got := obs.GetCounter("netsim.tx.messages").Value() - txM0; got != int64(tot.TxMessages) {
		t.Fatalf("obs tx.messages %d != Totals().TxMessages %d", got, tot.TxMessages)
	}
	if got := obs.GetCounter("netsim.tx.bytes").Value() - txB0; got != int64(tot.TxBytes) {
		t.Fatalf("obs tx.bytes %d != Totals().TxBytes %d", got, tot.TxBytes)
	}
	if got := obs.GetCounter("netsim.rx.messages").Value() - rxM0; got != int64(tot.RxMessages) {
		t.Fatalf("obs rx.messages %d != Totals().RxMessages %d", got, tot.RxMessages)
	}
	if got := obs.GetCounter("netsim.rx.bytes").Value() - rxB0; got != int64(tot.RxBytes) {
		t.Fatalf("obs rx.bytes %d != Totals().RxBytes %d", got, tot.RxBytes)
	}
	if got := obs.GetCounter("netsim.lost.messages").Value() - lost0; got != int64(tot.Dropped) {
		t.Fatalf("obs lost.messages %d != Totals().Dropped %d", got, tot.Dropped)
	}
	if h := obs.GetHistogram("netsim.link.latency_ms", obs.LatencyBuckets); h.Count() == 0 {
		t.Fatal("latency histogram empty after delivered traffic")
	}
}
