// Package netsim is the simulated transport substrate: an in-process
// message network with per-link loss and latency bookkeeping and — the
// part the evaluation leans on — exact per-node transmission and byte
// accounting. The paper's O(N²)→O(NM) transmission claim (after Luo et
// al.) is about how many radio sends the gathering scheme needs, which the
// counters here measure directly.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Global traffic observability across all Network instances (no-ops until
// obs.Enable). The per-network Stats counters remain the authoritative
// per-node accounting; these mirror them so a live /metrics.json or an
// experiments -obs-out dump shows the same byte totals as Totals().
var (
	obsTxMessages = obs.GetCounter("netsim.tx.messages")
	obsTxBytes    = obs.GetCounter("netsim.tx.bytes")
	obsRxMessages = obs.GetCounter("netsim.rx.messages")
	obsRxBytes    = obs.GetCounter("netsim.rx.bytes")
	obsLost       = obs.GetCounter("netsim.lost.messages")
	obsLatency    = obs.GetHistogram("netsim.link.latency_ms", obs.LatencyBuckets)
)

// Message is one datagram between simulated nodes.
type Message struct {
	From, To string
	Topic    string
	Payload  []byte
}

// Handler consumes a delivered message.
type Handler func(Message)

// Link describes one directed link's quality.
type Link struct {
	LatencyMS float64 // recorded, not slept: simulation time bookkeeping
	LossProb  float64 // [0,1]
}

// Stats is a snapshot of one node's traffic counters.
type Stats struct {
	TxMessages, RxMessages int
	TxBytes, RxBytes       int
	Dropped                int
}

// Network is an in-process simulated network. All methods are safe for
// concurrent use.
type Network struct {
	mu       sync.Mutex
	rng      *rand.Rand         // guarded by mu
	handlers map[string]Handler // guarded by mu
	links    map[string]Link    // guarded by mu; key "from→to"
	stats    map[string]*Stats  // guarded by mu
	defLink  Link               // guarded by mu
	simTime  float64            // guarded by mu; accumulated virtual latency across delivered messages
	msgCount int                // guarded by mu; transmission attempts so far (fault-plan clock)
	plan     *FaultPlan         // guarded by mu; nil = no faults
	async    bool               // guarded by mu; queue deliveries until Flush
	queue    []Message          // guarded by mu; pending async deliveries
}

// ErrUnknownNode reports a send to an unregistered node.
var ErrUnknownNode = errors.New("netsim: unknown node")

// New returns an empty network; seed makes loss deterministic.
func New(seed int64) *Network {
	return &Network{
		rng:      rand.New(rand.NewSource(seed)),
		handlers: make(map[string]Handler),
		links:    make(map[string]Link),
		stats:    make(map[string]*Stats),
	}
}

// Register adds a node with its delivery handler (nil for a sink that
// just counts).
func (n *Network) Register(id string, h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.handlers[id]; ok {
		return fmt.Errorf("netsim: node %q already registered", id)
	}
	n.handlers[id] = h
	n.stats[id] = &Stats{}
	return nil
}

// SetDefaultLink sets the link quality used when no explicit link exists.
func (n *Network) SetDefaultLink(l Link) {
	n.mu.Lock()
	n.defLink = l
	n.mu.Unlock()
}

// SetLink sets a directed link's quality.
func (n *Network) SetLink(from, to string, l Link) {
	n.mu.Lock()
	n.links[from+"→"+to] = l
	n.mu.Unlock()
}

// SetFaultPlan installs (or, with nil, removes) the fault plan consulted
// on every transmission attempt. See FaultPlan for the semantics.
func (n *Network) SetFaultPlan(p *FaultPlan) {
	n.mu.Lock()
	n.plan = p
	n.mu.Unlock()
}

// MsgCount returns the number of transmission attempts so far — the
// deterministic clock that fault-plan windows are keyed on.
func (n *Network) MsgCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.msgCount
}

// SetAsync toggles asynchronous delivery: when on, messages that survive
// loss are queued instead of handled inline, and Flush delivers the
// batch (applying the fault plan's duplicate/reorder knobs). Call Flush
// before turning async off, or queued messages will sit until the next
// Flush.
func (n *Network) SetAsync(on bool) {
	n.mu.Lock()
	n.async = on
	n.mu.Unlock()
}

// Pending returns the number of messages queued for async delivery.
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// Send delivers a message, applying the fault plan and link loss and
// counting traffic. The transmission is charged to the sender even if
// the message is lost (the radio still spent the energy), but NOT when
// an error is returned: a down or unknown endpoint is detected before
// the radio transmits, so "error ⇒ nothing charged" holds. Delivery is
// synchronous unless SetAsync is on.
func (n *Network) Send(msg Message) error {
	_, err := n.Deliver(msg)
	return err
}

// txOutcome classifies one transmission attempt inside transmitLocked.
type txOutcome uint8

const (
	txErr       txOutcome = iota // unknown endpoint: nothing charged
	txDown                       // a party is down: nothing charged
	txLost                       // charged to the sender, dropped in flight
	txQueued                     // accepted onto the async queue
	txDelivered                  // sync delivery: rx charged, handler pending
)

// obsDelta batches observability increments accumulated while the
// network lock is held; flush applies them to the global counters after
// unlock, so a DeliverBatch of thousands of messages costs a handful of
// atomic adds instead of a few per message.
type obsDelta struct {
	txMsgs, txBytes, rxMsgs, rxBytes, lost     int64
	down, partition, burst, duplicate, reorder int64
}

func (d *obsDelta) flush() {
	if d.txMsgs != 0 {
		obsTxMessages.Add(d.txMsgs)
		obsTxBytes.Add(d.txBytes)
	}
	if d.rxMsgs != 0 {
		obsRxMessages.Add(d.rxMsgs)
		obsRxBytes.Add(d.rxBytes)
	}
	if d.lost != 0 {
		obsLost.Add(d.lost)
	}
	if d.down != 0 {
		obsFaultDown.Add(d.down)
	}
	if d.partition != 0 {
		obsFaultPartition.Add(d.partition)
	}
	if d.burst != 0 {
		obsFaultBurst.Add(d.burst)
	}
	if d.duplicate != 0 {
		obsFaultDup.Add(d.duplicate)
	}
	if d.reorder != 0 {
		obsFaultReorder.Add(d.reorder)
	}
}

// transmitLocked runs one transmission attempt under n.mu: fault-plan
// verdict, tx accounting, loss draw, then either async enqueue or sync
// rx accounting. It consumes exactly the RNG draws Deliver historically
// consumed, in the same order, so a batch of calls is stream-identical
// to sequential Deliver calls with the same seed. Observability deltas
// go to d (the caller flushes after unlock); on txDelivered the caller
// still owes the handler invocation and the latency observation. downID
// names the down endpoint on txDown; err is non-nil only for txErr.
func (n *Network) transmitLocked(msg Message, d *obsDelta) (out txOutcome, h Handler, latencyMS float64, downID string, err error) {
	if _, ok := n.handlers[msg.From]; !ok {
		return txErr, nil, 0, "", fmt.Errorf("%w: sender %q", ErrUnknownNode, msg.From)
	}
	h, ok := n.handlers[msg.To]
	if !ok {
		return txErr, nil, 0, "", fmt.Errorf("%w: receiver %q", ErrUnknownNode, msg.To)
	}
	link, ok := n.links[msg.From+"→"+msg.To]
	if !ok {
		link = n.defLink
	}
	idx := n.msgCount
	n.msgCount++
	size := len(msg.Payload)
	skipLoss := false
	if n.plan != nil {
		act, id := n.plan.verdict(msg.From, msg.To, idx, n.rng)
		switch act {
		case faultDown:
			d.down++
			return txDown, nil, 0, id, nil
		case faultPartition, faultBurst:
			tx := n.stats[msg.From]
			tx.TxMessages++
			tx.TxBytes += size
			tx.Dropped++
			d.txMsgs++
			d.txBytes += int64(size)
			d.lost++
			if act == faultPartition {
				d.partition++
			} else {
				d.burst++
			}
			return txLost, nil, 0, "", nil
		case faultDeliverBurst:
			skipLoss = true // the burst channel already decided delivery
		}
	}
	tx := n.stats[msg.From]
	tx.TxMessages++
	tx.TxBytes += size
	d.txMsgs++
	d.txBytes += int64(size)
	if !skipLoss && link.LossProb > 0 && n.rng.Float64() < link.LossProb {
		tx.Dropped++
		d.lost++
		return txLost, nil, 0, "", nil // lost in transit; not an error
	}
	if n.async {
		n.queue = append(n.queue, msg)
		return txQueued, nil, 0, "", nil // accepted; rx accounting happens at Flush
	}
	rx := n.stats[msg.To]
	rx.RxMessages++
	rx.RxBytes += size
	n.simTime += link.LatencyMS
	d.rxMsgs++
	d.rxBytes += int64(size)
	return txDelivered, h, link.LatencyMS, "", nil
}

// Deliver is Send exposing the delivery outcome: delivered=false with a
// nil error means the message was transmitted (and charged) but lost in
// flight — loss is not an error, but interceptors bridging this network
// into a bus need to know whether to fan out. In async mode delivered
// means "queued"; the fate of queued messages is decided at Flush.
func (n *Network) Deliver(msg Message) (delivered bool, err error) {
	var d obsDelta
	n.mu.Lock()
	out, h, latency, downID, err := n.transmitLocked(msg, &d)
	n.mu.Unlock()
	d.flush()
	switch out {
	case txErr:
		return false, err
	case txDown:
		return false, &NodeDownError{ID: downID}
	case txLost:
		return false, nil
	case txQueued:
		return true, nil
	}
	obsLatency.Observe(latency)
	if h != nil {
		h(msg)
	}
	return true, nil
}

// BatchResult classifies the messages of one DeliverBatch call.
type BatchResult struct {
	Queued    int // accepted onto the async queue (fate decided at Flush)
	Delivered int // sync mode: rx charged and handler run
	Lost      int // charged to the sender, dropped in flight
	Down      int // a down endpoint: skipped, nothing charged
}

// DeliverBatch transmits a slice of messages under one lock acquisition
// — the fleet layer's enqueue path, where a shard's round of measurement
// envelopes would otherwise pay a lock handshake and a few atomic
// counter updates per message. Per-message semantics are identical to
// calling Deliver in slice order (same fault verdicts, same RNG draw
// order, same per-node accounting), so batched enqueue followed by Flush
// is equivalent to sequential sends; TestBatchedEnqueueMatchesSequentialSend
// pins this. Two deviations, both deliberate: a down endpoint does not
// fail the batch — the message is skipped with nothing charged (the
// "error ⇒ nothing charged" contract) and counted in Down — and only an
// unknown endpoint aborts, returning the partial result alongside the
// error. In sync mode handlers run after the lock is released, in slice
// order.
func (n *Network) DeliverBatch(msgs []Message) (BatchResult, error) {
	type delivery struct {
		msg     Message
		h       Handler
		latency float64
	}
	var (
		res    BatchResult
		d      obsDelta
		out    []delivery
		batErr error
	)
	n.mu.Lock()
	for _, m := range msgs {
		o, h, latency, _, err := n.transmitLocked(m, &d)
		if o == txErr {
			batErr = err
			break // abort; messages already charged still get their handlers
		}
		switch o {
		case txDown:
			res.Down++
		case txLost:
			res.Lost++
		case txQueued:
			res.Queued++
		case txDelivered:
			res.Delivered++
			out = append(out, delivery{m, h, latency})
		}
	}
	n.mu.Unlock()
	d.flush()
	for _, dv := range out {
		obsLatency.Observe(dv.latency)
		if dv.h != nil {
			dv.h(dv.msg)
		}
	}
	return res, batErr
}

// Flush delivers the async queue, applying the fault plan's reorder and
// duplicate knobs: each message may be deferred behind the rest of the
// batch, and each delivery may be doubled.
//
// Charged-vs-delivered invariant (the queued-message analogue of Send's
// "error ⇒ nothing charged"): every queued message was already tx-charged
// to its sender at enqueue, and Flush resolves it exactly once —
//
//   - receiver down at flush time: the sender is charged exactly one
//     Dropped, nothing is rx-charged, and the duplicate draw is never
//     consulted (a copy of a message that cannot be delivered is not a
//     duplicate event);
//   - otherwise: rx messages/bytes and link latency are charged once per
//     delivered copy, and n.simTime accumulates in delivery order — the
//     queue order after the reorder pass, which is the order handlers run.
//
// Under this contract the obs mirrors reconcile with Totals():
// netsim.rx.messages grows by exactly the handler deliveries performed,
// netsim.lost.messages by the senders' Dropped growth, netsim.fault.dup
// only for copies actually delivered, and netsim.fault.down once per
// message dropped to a down receiver. TestFlushAccountingInvariant pins
// all of it. Returns the number of handler deliveries performed.
func (n *Network) Flush() int {
	type delivery struct {
		msg     Message
		h       Handler
		latency float64
	}
	var d obsDelta
	n.mu.Lock()
	q := n.queue
	n.queue = nil
	var dupP, reoP float64
	if n.plan != nil {
		dupP, reoP = n.plan.dupReorder()
	}
	if reoP > 0 && len(q) > 1 {
		kept := make([]Message, 0, len(q))
		var deferred []Message
		for _, m := range q {
			if n.rng.Float64() < reoP {
				deferred = append(deferred, m)
				d.reorder++
			} else {
				kept = append(kept, m)
			}
		}
		q = append(kept, deferred...)
	}
	var out []delivery
	for _, m := range q {
		// Down check first: a message to a receiver that crashed after
		// enqueue is dropped before the duplicate draw, so the dup RNG
		// stream and netsim.fault.dup only see deliverable messages and
		// the sender is charged one Dropped regardless of what a
		// duplicate draw would have said.
		if n.plan != nil && n.plan.nodeDown(m.To, n.msgCount) {
			n.stats[m.From].Dropped++
			d.lost++
			d.down++
			continue
		}
		copies := 1
		if dupP > 0 && n.rng.Float64() < dupP {
			copies = 2
			d.duplicate++
		}
		link, ok := n.links[m.From+"→"+m.To]
		if !ok {
			link = n.defLink
		}
		size := len(m.Payload)
		rx := n.stats[m.To]
		for c := 0; c < copies; c++ {
			rx.RxMessages++
			rx.RxBytes += size
			n.simTime += link.LatencyMS
			d.rxMsgs++
			d.rxBytes += int64(size)
			out = append(out, delivery{m, n.handlers[m.To], link.LatencyMS})
		}
	}
	n.mu.Unlock()
	d.flush()
	for _, dv := range out {
		obsLatency.Observe(dv.latency)
		if dv.h != nil {
			dv.h(dv.msg)
		}
	}
	return len(out)
}

// SetDuplexLink sets both directions of a link to the same quality.
func (n *Network) SetDuplexLink(a, b string, l Link) {
	n.SetLink(a, b, l)
	n.SetLink(b, a, l)
}

// Broadcast sends the payload from one node to every other registered
// node, returning how many transmissions were attempted (and therefore
// charged to the sender — Send charges even on loss but never on error).
// Loss applies per receiver independently. On a mid-loop failure the
// count of transmissions attempted before the failing one is returned
// alongside the error, so the caller's view agrees with the sender's
// byte/tx accounting instead of reporting zero for a partially charged
// broadcast.
func (n *Network) Broadcast(from, topic string, payload []byte) (int, error) {
	n.mu.Lock()
	if _, ok := n.handlers[from]; !ok {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: sender %q", ErrUnknownNode, from)
	}
	targets := make([]string, 0, len(n.handlers))
	for id := range n.handlers {
		if id != from {
			targets = append(targets, id)
		}
	}
	n.mu.Unlock()
	sort.Strings(targets) // deterministic delivery order
	attempted := 0
	for _, to := range targets {
		if err := n.Send(Message{From: from, To: to, Topic: topic, Payload: payload}); err != nil {
			return attempted, err
		}
		attempted++
	}
	return attempted, nil
}

// NodeStats returns a copy of a node's counters.
func (n *Network) NodeStats(id string) (Stats, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.stats[id]
	if !ok {
		return Stats{}, fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	return *s, nil
}

// Totals sums the counters across all nodes.
func (n *Network) Totals() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	var t Stats
	for _, s := range n.stats {
		t.TxMessages += s.TxMessages
		t.RxMessages += s.RxMessages
		t.TxBytes += s.TxBytes
		t.RxBytes += s.RxBytes
		t.Dropped += s.Dropped
	}
	return t
}

// MaxTx returns the node with the highest transmit count and that count —
// the bottleneck metric for the Fig. 1 hierarchy experiment.
func (n *Network) MaxTx() (string, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]string, 0, len(n.stats))
	for id := range n.stats {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic tie-break
	best, bestN := "", -1
	for _, id := range ids {
		if n.stats[id].TxMessages > bestN {
			best, bestN = id, n.stats[id].TxMessages
		}
	}
	return best, bestN
}

// MaxRx returns the node with the highest receive count and that count.
func (n *Network) MaxRx() (string, int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]string, 0, len(n.stats))
	for id := range n.stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	best, bestN := "", -1
	for _, id := range ids {
		if n.stats[id].RxMessages > bestN {
			best, bestN = id, n.stats[id].RxMessages
		}
	}
	return best, bestN
}

// SimTimeMS returns the accumulated virtual latency of all delivered
// messages.
func (n *Network) SimTimeMS() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.simTime
}

// ResetStats zeros all counters, keeping topology.
func (n *Network) ResetStats() {
	n.mu.Lock()
	for id := range n.stats {
		n.stats[id] = &Stats{}
	}
	n.simTime = 0
	n.mu.Unlock()
}
