package netsim

import (
	"errors"
	"fmt"
	"testing"
)

func faultNet(t *testing.T, seed int64, ids ...string) (*Network, *FaultPlan, map[string]*int) {
	t.Helper()
	n := New(seed)
	got := make(map[string]*int)
	for _, id := range ids {
		id := id
		c := new(int)
		got[id] = c
		if err := n.Register(id, func(Message) { *c++ }); err != nil {
			t.Fatal(err)
		}
	}
	p := NewFaultPlan()
	n.SetFaultPlan(p)
	return n, p, got
}

func TestDownReturnsTypedErrorAndChargesNothing(t *testing.T) {
	n, p, got := faultNet(t, 1, "a", "b")
	p.Down("b")
	err := n.Send(Message{From: "a", To: "b", Payload: []byte("xx")})
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("send to down node = %v, want ErrNodeDown", err)
	}
	var nd *NodeDownError
	if !errors.As(err, &nd) || nd.ID != "b" {
		t.Fatalf("error %v does not identify the down node", err)
	}
	if !nd.Retryable() {
		t.Fatal("NodeDownError must classify as retryable")
	}
	// "error ⇒ nothing charged": the radio never transmitted.
	s, _ := n.NodeStats("a")
	if s.TxMessages != 0 || s.TxBytes != 0 || s.Dropped != 0 {
		t.Fatalf("down send charged the sender: %+v", s)
	}
	// A down sender fails the same way.
	if err := n.Send(Message{From: "b", To: "a"}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("send from down node = %v, want ErrNodeDown", err)
	}
	p.Up("b")
	if err := n.Send(Message{From: "a", To: "b", Payload: []byte("xx")}); err != nil {
		t.Fatalf("send after Up: %v", err)
	}
	if *got["b"] != 1 {
		t.Fatalf("delivered %d after restart, want 1", *got["b"])
	}
}

func TestCrashWindowKeyedOnMessageCount(t *testing.T) {
	n, p, got := faultNet(t, 2, "a", "b")
	p.Crash("b", 1, 3) // down for transmission attempts 1 and 2
	for i := 0; i < 4; i++ {
		err := n.Send(Message{From: "a", To: "b", Payload: []byte("x")})
		down := i == 1 || i == 2
		if down != errors.Is(err, ErrNodeDown) {
			t.Fatalf("msg %d: err=%v, want down=%v", i, err, down)
		}
	}
	if *got["b"] != 2 {
		t.Fatalf("delivered %d, want 2 (attempts 0 and 3)", *got["b"])
	}
	if n.MsgCount() != 4 {
		t.Fatalf("msg count %d, want 4 (down attempts still tick the clock)", n.MsgCount())
	}
}

func TestPartitionWindowDropsBothDirections(t *testing.T) {
	n, p, got := faultNet(t, 3, "a", "b")
	p.Partition("a", "b", 0, 2)
	for i := 0; i < 2; i++ {
		from, to := "a", "b"
		if i == 1 {
			from, to = "b", "a"
		}
		delivered, err := n.Deliver(Message{From: from, To: to, Payload: []byte("xyz")})
		if err != nil {
			t.Fatalf("msg %d: partition must drop silently, got error %v", i, err)
		}
		if delivered {
			t.Fatalf("msg %d delivered across partition", i)
		}
	}
	// Window closed at count 2: traffic flows again.
	if delivered, err := n.Deliver(Message{From: "a", To: "b"}); err != nil || !delivered {
		t.Fatalf("after window: delivered=%v err=%v", delivered, err)
	}
	if *got["b"] != 1 || *got["a"] != 0 {
		t.Fatalf("handler counts a=%d b=%d", *got["a"], *got["b"])
	}
	// Partition drops charge the sender like link loss.
	sa, _ := n.NodeStats("a")
	if sa.TxMessages != 2 || sa.Dropped != 1 || sa.TxBytes != 3 {
		t.Fatalf("sender a stats %+v, want 2 tx (1 dropped)", sa)
	}
}

func TestBurstLossDeterministicAndBursty(t *testing.T) {
	cfg := GilbertElliott{PGoodToBad: 0.2, PBadToGood: 0.3, LossBad: 1.0}
	run := func(seed int64) (pattern string, lost int) {
		n, p, _ := faultNet(t, seed, "a", "b")
		p.SetBurstLink("a", "b", cfg)
		for i := 0; i < 200; i++ {
			delivered, err := n.Deliver(Message{From: "a", To: "b", Payload: []byte("x")})
			if err != nil {
				t.Fatal(err)
			}
			if delivered {
				pattern += "1"
			} else {
				pattern += "0"
				lost++
			}
		}
		return pattern, lost
	}
	p1, lost := run(7)
	p2, _ := run(7)
	if p1 != p2 {
		t.Fatal("burst loss pattern not reproducible for a fixed seed")
	}
	// With these chain parameters the stationary bad-state probability is
	// 0.2/(0.2+0.3) = 40%; over 200 messages the realized loss must be
	// well away from both 0 and 100%.
	if lost < 20 || lost > 180 {
		t.Fatalf("burst loss %d/200 implausible for the chain parameters", lost)
	}
	// Losses cluster: a bursty channel has far fewer loss runs than an
	// i.i.d. channel with the same rate would (runs ≈ lost·(1-rate)).
	runs := 0
	for i := 0; i < len(p1); i++ {
		if p1[i] == '0' && (i == 0 || p1[i-1] == '1') {
			runs++
		}
	}
	if runs >= lost {
		t.Fatalf("losses not bursty: %d runs for %d losses", runs, lost)
	}
}

func TestAsyncDuplicateAndReorder(t *testing.T) {
	n, p, got := faultNet(t, 11, "a", "b")
	n.SetAsync(true)
	p.SetDuplicateProb(1)
	for i := 0; i < 3; i++ {
		delivered, err := n.Deliver(Message{From: "a", To: "b", Payload: []byte("x")})
		if err != nil || !delivered {
			t.Fatalf("async enqueue: delivered=%v err=%v", delivered, err)
		}
	}
	if *got["b"] != 0 || n.Pending() != 3 {
		t.Fatalf("async mode delivered early: got=%d pending=%d", *got["b"], n.Pending())
	}
	if d := n.Flush(); d != 6 {
		t.Fatalf("flush delivered %d, want 6 (every message duplicated)", d)
	}
	if *got["b"] != 6 {
		t.Fatalf("handler saw %d messages, want 6", *got["b"])
	}
	sb, _ := n.NodeStats("b")
	if sb.RxMessages != 6 {
		t.Fatalf("rx accounting %d, want 6", sb.RxMessages)
	}

	// Reorder is deterministic for a fixed seed: two identical runs give
	// identical delivery orders, and some run observably deviates from
	// FIFO.
	order := func(seed int64) string {
		nn := New(seed)
		pp := NewFaultPlan()
		nn.SetFaultPlan(pp)
		nn.SetAsync(true)
		pp.SetReorderProb(0.4)
		var seq string
		if err := nn.Register("s", nil); err != nil {
			t.Fatal(err)
		}
		if err := nn.Register("r", func(m Message) { seq += m.Topic }); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := nn.Deliver(Message{From: "s", To: "r", Topic: fmt.Sprint(i)}); err != nil {
				t.Fatal(err)
			}
		}
		nn.Flush()
		return seq
	}
	if order(5) != order(5) {
		t.Fatal("reorder not reproducible for a fixed seed")
	}
	deviated := false
	for seed := int64(0); seed < 10; seed++ {
		if order(seed) != "01234567" {
			deviated = true
			break
		}
	}
	if !deviated {
		t.Fatal("reorder knob never reordered across 10 seeds")
	}
}

func TestFlushDropsMessagesForReceiverNowDown(t *testing.T) {
	n, p, got := faultNet(t, 13, "a", "b")
	n.SetAsync(true)
	if _, err := n.Deliver(Message{From: "a", To: "b", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	p.Down("b") // receiver crashes after the message was queued
	if d := n.Flush(); d != 0 {
		t.Fatalf("flush delivered %d to a down node", d)
	}
	if *got["b"] != 0 {
		t.Fatal("handler ran for a message dropped at flush")
	}
	sa, _ := n.NodeStats("a")
	if sa.Dropped != 1 {
		t.Fatalf("drop not charged to sender: %+v", sa)
	}
}

// TestBroadcastReturnsAttemptedCountOnError is the regression test for
// the (0, err) bug: a mid-loop failure used to report zero attempts even
// though earlier transmissions were already charged to the sender,
// letting callers' accounting drift from NodeStats.
func TestBroadcastReturnsAttemptedCountOnError(t *testing.T) {
	n, p, _ := faultNet(t, 17, "a", "b", "c", "d")
	p.Down("c") // sorted targets [b c d]: b succeeds, c errors
	sent, err := n.Broadcast("a", "t", []byte("pay"))
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("broadcast with down receiver = %v, want ErrNodeDown", err)
	}
	if sent != 1 {
		t.Fatalf("broadcast reported %d attempts, want 1 (the send to b)", sent)
	}
	sa, _ := n.NodeStats("a")
	if sa.TxMessages != sent || sa.TxBytes != 3*sent {
		t.Fatalf("reported attempts %d disagree with charged stats %+v", sent, sa)
	}
}

func TestSendDeliverEquivalence(t *testing.T) {
	// Deliver(…) with a healthy link behaves exactly like Send and reports
	// delivery; total stats line up with the mirror obs counters' contract
	// (Dropped counts only in-flight losses).
	n, _, got := faultNet(t, 19, "a", "b")
	delivered, err := n.Deliver(Message{From: "a", To: "b", Payload: []byte("ok")})
	if err != nil || !delivered {
		t.Fatalf("delivered=%v err=%v", delivered, err)
	}
	if *got["b"] != 1 {
		t.Fatal("handler not invoked")
	}
	tot := n.Totals()
	if tot.TxMessages != 1 || tot.RxMessages != 1 || tot.Dropped != 0 {
		t.Fatalf("totals %+v", tot)
	}

	// Property: batched fleet enqueue (DeliverBatch in async mode) plus
	// one Flush is byte-identical, per node, to sequential synchronous
	// Send whenever the dup/reorder knobs are zero — same Stats structs,
	// same delivery order, same simulated time, same fault clock — even
	// over a lossy link, across seeds. This is the contract that lets the
	// fleet backend reuse the netsim accounting unchanged.
	for seed := int64(0); seed < 20; seed++ {
		batchedEquivalence(t, seed)
	}
}
