package netsim

import (
	"sync"
	"testing"
)

func TestSendCountsTraffic(t *testing.T) {
	n := New(1)
	var got []Message
	if err := n.Register("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("b", func(m Message) { got = append(got, m) }); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{From: "a", To: "b", Topic: "t", Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Payload) != "hello" {
		t.Fatalf("delivery failed: %+v", got)
	}
	sa, _ := n.NodeStats("a")
	sb, _ := n.NodeStats("b")
	if sa.TxMessages != 1 || sa.TxBytes != 5 || sb.RxMessages != 1 || sb.RxBytes != 5 {
		t.Fatalf("stats a=%+v b=%+v", sa, sb)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	n := New(1)
	if err := n.Register("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("a", nil); err == nil {
		t.Fatal("want duplicate error")
	}
}

func TestSendUnknownNodes(t *testing.T) {
	n := New(1)
	n.Register("a", nil)
	if err := n.Send(Message{From: "x", To: "a"}); err == nil {
		t.Fatal("want unknown sender error")
	}
	if err := n.Send(Message{From: "a", To: "x"}); err == nil {
		t.Fatal("want unknown receiver error")
	}
}

func TestLossyLinkDropsButChargesSender(t *testing.T) {
	n := New(42)
	delivered := 0
	n.Register("a", nil)
	n.Register("b", func(Message) { delivered++ })
	n.SetLink("a", "b", Link{LossProb: 1.0})
	for i := 0; i < 10; i++ {
		if err := n.Send(Message{From: "a", To: "b", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if delivered != 0 {
		t.Fatalf("%d messages leaked through a fully lossy link", delivered)
	}
	sa, _ := n.NodeStats("a")
	if sa.TxMessages != 10 || sa.Dropped != 10 {
		t.Fatalf("sender stats %+v", sa)
	}
	sb, _ := n.NodeStats("b")
	if sb.RxMessages != 0 {
		t.Fatalf("receiver stats %+v", sb)
	}
}

func TestPartialLossStatistics(t *testing.T) {
	n := New(7)
	n.Register("a", nil)
	n.Register("b", nil)
	n.SetLink("a", "b", Link{LossProb: 0.5})
	for i := 0; i < 400; i++ {
		n.Send(Message{From: "a", To: "b", Payload: []byte("x")})
	}
	sa, _ := n.NodeStats("a")
	if sa.Dropped < 120 || sa.Dropped > 280 {
		t.Fatalf("dropped %d of 400 at p=0.5", sa.Dropped)
	}
}

func TestLatencyAccumulates(t *testing.T) {
	n := New(1)
	n.Register("a", nil)
	n.Register("b", nil)
	n.SetLink("a", "b", Link{LatencyMS: 10})
	for i := 0; i < 5; i++ {
		n.Send(Message{From: "a", To: "b"})
	}
	if n.SimTimeMS() != 50 {
		t.Fatalf("sim time %v, want 50", n.SimTimeMS())
	}
}

func TestMaxTxRxAndTotals(t *testing.T) {
	n := New(1)
	n.Register("a", nil)
	n.Register("b", nil)
	n.Register("sink", nil)
	for i := 0; i < 3; i++ {
		n.Send(Message{From: "a", To: "sink", Payload: []byte("xx")})
	}
	n.Send(Message{From: "b", To: "sink", Payload: []byte("y")})
	id, cnt := n.MaxTx()
	if id != "a" || cnt != 3 {
		t.Fatalf("MaxTx=(%s,%d)", id, cnt)
	}
	id, cnt = n.MaxRx()
	if id != "sink" || cnt != 4 {
		t.Fatalf("MaxRx=(%s,%d)", id, cnt)
	}
	tot := n.Totals()
	if tot.TxMessages != 4 || tot.TxBytes != 7 || tot.RxBytes != 7 {
		t.Fatalf("totals %+v", tot)
	}
}

func TestResetStats(t *testing.T) {
	n := New(1)
	n.Register("a", nil)
	n.Register("b", nil)
	n.SetLink("a", "b", Link{LatencyMS: 5})
	n.Send(Message{From: "a", To: "b"})
	n.ResetStats()
	if tot := n.Totals(); tot.TxMessages != 0 {
		t.Fatalf("totals after reset %+v", tot)
	}
	if n.SimTimeMS() != 0 {
		t.Fatal("sim time not reset")
	}
	// Topology survives.
	if err := n.Send(Message{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeStatsUnknown(t *testing.T) {
	n := New(1)
	if _, err := n.NodeStats("ghost"); err == nil {
		t.Fatal("want unknown-node error")
	}
}

func TestConcurrentSends(t *testing.T) {
	n := New(1)
	n.Register("sink", nil)
	const senders, each = 8, 50
	for i := 0; i < senders; i++ {
		n.Register(string(rune('a'+i)), nil)
	}
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				n.Send(Message{From: id, To: "sink", Payload: []byte("p")})
			}
		}(string(rune('a' + i)))
	}
	wg.Wait()
	if tot := n.Totals(); tot.TxMessages != senders*each {
		t.Fatalf("lost sends: %+v", tot)
	}
}

func BenchmarkSend(b *testing.B) {
	n := New(1)
	n.Register("a", nil)
	n.Register("b", nil)
	msg := Message{From: "a", To: "b", Payload: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := n.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	n := New(1)
	received := map[string]int{}
	var mu sync.Mutex
	for _, id := range []string{"a", "b", "c", "d"} {
		id := id
		n.Register(id, func(Message) {
			mu.Lock()
			received[id]++
			mu.Unlock()
		})
	}
	sent, err := n.Broadcast("a", "alert", []byte("evacuate"))
	if err != nil {
		t.Fatal(err)
	}
	if sent != 3 {
		t.Fatalf("broadcast to %d, want 3", sent)
	}
	mu.Lock()
	defer mu.Unlock()
	if received["a"] != 0 || received["b"] != 1 || received["c"] != 1 || received["d"] != 1 {
		t.Fatalf("deliveries %v", received)
	}
	if _, err := n.Broadcast("ghost", "t", nil); err == nil {
		t.Fatal("want unknown-sender error")
	}
}

func TestSetDuplexLink(t *testing.T) {
	n := New(1)
	n.Register("a", nil)
	n.Register("b", nil)
	n.SetDuplexLink("a", "b", Link{LatencyMS: 7})
	n.Send(Message{From: "a", To: "b"})
	n.Send(Message{From: "b", To: "a"})
	if n.SimTimeMS() != 14 {
		t.Fatalf("duplex latency %v, want 14", n.SimTimeMS())
	}
}
