package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/obs"
)

// netsimObs is a snapshot of the global netsim obs mirrors, for
// delta-based reconciliation against Totals(). The obs registry is
// process-global, so tests take a snapshot before generating traffic
// and assert on the difference.
type netsimObs struct {
	txM, txB, rxM, rxB, lost      int64
	down, partition, dup, reorder int64
}

func snapNetsimObs() netsimObs {
	return netsimObs{
		txM:       obs.GetCounter("netsim.tx.messages").Value(),
		txB:       obs.GetCounter("netsim.tx.bytes").Value(),
		rxM:       obs.GetCounter("netsim.rx.messages").Value(),
		rxB:       obs.GetCounter("netsim.rx.bytes").Value(),
		lost:      obs.GetCounter("netsim.lost.messages").Value(),
		down:      obs.GetCounter("netsim.fault.down").Value(),
		partition: obs.GetCounter("netsim.fault.partitioned").Value(),
		dup:       obs.GetCounter("netsim.fault.duplicated").Value(),
		reorder:   obs.GetCounter("netsim.fault.reordered").Value(),
	}
}

func (a netsimObs) sub(b netsimObs) netsimObs {
	return netsimObs{
		txM: a.txM - b.txM, txB: a.txB - b.txB,
		rxM: a.rxM - b.rxM, rxB: a.rxB - b.rxB,
		lost: a.lost - b.lost, down: a.down - b.down,
		partition: a.partition - b.partition,
		dup:       a.dup - b.dup, reorder: a.reorder - b.reorder,
	}
}

// TestFlushDupToDownReceiverAccounting is the regression test for the
// dup-before-down ordering bug: Flush used to draw the duplicate
// decision (and bump netsim.fault.duplicated) before checking whether
// the receiver was down, so a duplicated message to a crashed node
// inflated the dup counter relative to actual deliveries, charged the
// sender two Dropped for one undeliverable message, and fired
// netsim.fault.down once regardless of copies. The fixed order — down
// check first, duplicate draw only for deliverable messages — makes
// every obs mirror reconcile with Totals().
func TestFlushDupToDownReceiverAccounting(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	before := snapNetsimObs()

	n, p, got := faultNet(t, 23, "a", "b", "c")
	n.SetAsync(true)
	p.SetDuplicateProb(1) // every deliverable message is duplicated
	for _, to := range []string{"b", "b", "c"} {
		delivered, err := n.Deliver(Message{From: "a", To: to, Payload: []byte("xx")})
		if err != nil || !delivered {
			t.Fatalf("enqueue to %s: delivered=%v err=%v", to, delivered, err)
		}
	}
	p.Down("b") // b crashes with two messages already queued

	if d := n.Flush(); d != 2 {
		t.Fatalf("flush delivered %d, want 2 (only c's message, duplicated)", d)
	}
	if *got["b"] != 0 || *got["c"] != 2 {
		t.Fatalf("handlers saw b=%d c=%d, want 0 and 2", *got["b"], *got["c"])
	}

	sa, _ := n.NodeStats("a")
	if sa.Dropped != 2 {
		t.Fatalf("sender charged %d Dropped, want 2 (one per undeliverable message, not per would-be copy)", sa.Dropped)
	}
	d := snapNetsimObs().sub(before)
	if d.dup != 1 {
		t.Fatalf("netsim.fault.duplicated grew %d, want 1 (down receiver's messages never reach the dup draw)", d.dup)
	}
	if d.down != 2 {
		t.Fatalf("netsim.fault.down grew %d, want 2 (once per message dropped to the down receiver)", d.down)
	}
	tot := n.Totals()
	if d.lost != int64(tot.Dropped) || d.rxM != int64(tot.RxMessages) || d.txM != int64(tot.TxMessages) {
		t.Fatalf("obs deltas %+v do not reconcile with Totals %+v", d, tot)
	}
}

// TestFlushAccountingInvariant pins the charged-vs-delivered invariant
// documented on Flush — the queued-message analogue of Send's "error ⇒
// nothing charged" — across the fault combinations that historically
// disturbed it: a receiver going down mid-queue, duplication racing a
// crash, and reorder stacked on link loss. For every scenario the obs
// mirrors must reconcile exactly with Totals(), handler invocations must
// equal the rx-message growth, and rx must equal tx minus drops.
func TestFlushAccountingInvariant(t *testing.T) {
	obs.Enable()
	defer obs.Disable()

	type scenario struct {
		name string
		run  func(t *testing.T, n *Network, p *FaultPlan)
	}
	scenarios := []scenario{
		{"down-mid-queue", func(t *testing.T, n *Network, p *FaultPlan) {
			// Interleaved receivers; one crashes after its messages queue.
			for _, to := range []string{"b", "c", "b", "c"} {
				if _, err := n.Deliver(Message{From: "a", To: to, Payload: []byte("pay")}); err != nil {
					t.Fatal(err)
				}
			}
			p.Down("b")
			n.Flush()
		}},
		{"dup+down", func(t *testing.T, n *Network, p *FaultPlan) {
			p.SetDuplicateProb(0.7)
			for i := 0; i < 12; i++ {
				to := "b"
				if i%3 == 0 {
					to = "c"
				}
				if _, err := n.Deliver(Message{From: "a", To: to, Payload: []byte("zz")}); err != nil {
					t.Fatal(err)
				}
			}
			p.Down("c")
			n.Flush()
		}},
		{"reorder+loss", func(t *testing.T, n *Network, p *FaultPlan) {
			n.SetDefaultLink(Link{LatencyMS: 2, LossProb: 0.4})
			p.SetReorderProb(0.5)
			for i := 0; i < 20; i++ {
				if _, err := n.Deliver(Message{From: "a", To: "b", Payload: []byte("q")}); err != nil {
					t.Fatal(err)
				}
			}
			n.Flush()
			// Second wave so reordered stragglers mix with fresh traffic.
			for i := 0; i < 10; i++ {
				if _, err := n.Deliver(Message{From: "a", To: "c", Payload: []byte("qq")}); err != nil {
					t.Fatal(err)
				}
			}
			n.Flush()
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			before := snapNetsimObs()
			n, p, got := faultNet(t, 31, "a", "b", "c")
			n.SetAsync(true)
			sc.run(t, n, p)

			d := snapNetsimObs().sub(before)
			tot := n.Totals()
			if d.txM != int64(tot.TxMessages) || d.txB != int64(tot.TxBytes) {
				t.Fatalf("obs tx (%d msgs, %d bytes) != Totals (%d, %d)", d.txM, d.txB, tot.TxMessages, tot.TxBytes)
			}
			if d.rxM != int64(tot.RxMessages) || d.rxB != int64(tot.RxBytes) {
				t.Fatalf("obs rx (%d msgs, %d bytes) != Totals (%d, %d)", d.rxM, d.rxB, tot.RxMessages, tot.RxBytes)
			}
			if d.lost != int64(tot.Dropped) {
				t.Fatalf("obs lost %d != Totals().Dropped %d", d.lost, tot.Dropped)
			}
			handlerRuns := *got["a"] + *got["b"] + *got["c"]
			// Delivered copies (rx minus duplicate extras) can exceed
			// queued messages, but every rx-charged copy must have run a
			// handler: charged ⇔ delivered.
			if handlerRuns != tot.RxMessages {
				t.Fatalf("handlers ran %d times, rx charged %d", handlerRuns, tot.RxMessages)
			}
			// Duplicate deliveries add rx beyond tx; drops subtract. With
			// dup extras counted once each: rx = tx - dropped + duplicated.
			if int64(tot.RxMessages) != int64(tot.TxMessages)-int64(tot.Dropped)+d.dup {
				t.Fatalf("rx %d != tx %d - dropped %d + dup %d", tot.RxMessages, tot.TxMessages, tot.Dropped, d.dup)
			}
			if n.Pending() != 0 {
				t.Fatalf("%d messages still queued after flush", n.Pending())
			}
		})
	}
}

// genTraffic builds a deterministic pseudorandom message mix from seed:
// varying senders, sizes, and topics toward one receiver.
func genTraffic(seed int64, senders []string, to string, count int) []Message {
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]Message, count)
	for i := range msgs {
		pay := make([]byte, 1+rng.Intn(32))
		for j := range pay {
			pay[j] = byte(rng.Intn(256))
		}
		msgs[i] = Message{
			From:    senders[rng.Intn(len(senders))],
			To:      to,
			Topic:   fmt.Sprintf("t/%d", i),
			Payload: pay,
		}
	}
	return msgs
}

// equivNet builds a network with the property-test topology: lossy
// default link, an installed (but dup/reorder-free) fault plan, sender
// sinks, and a receiver that records delivery order.
func equivNet(t *testing.T, seed int64, senders []string, to string) (*Network, *[]string) {
	t.Helper()
	n := New(seed)
	p := NewFaultPlan()
	n.SetFaultPlan(p)
	n.SetDefaultLink(Link{LatencyMS: 2, LossProb: 0.3})
	for _, id := range senders {
		if err := n.Register(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	seen := &[]string{}
	if err := n.Register(to, func(m Message) { *seen = append(*seen, m.Topic) }); err != nil {
		t.Fatal(err)
	}
	return n, seen
}

// TestDeliverBatchDownSkipsWithoutCharge: a down endpoint inside a batch
// is skipped — counted in BatchResult.Down, nothing charged to either
// party — while the rest of the batch proceeds; only an unknown endpoint
// aborts.
func TestDeliverBatchDownSkipsWithoutCharge(t *testing.T) {
	n, p, got := faultNet(t, 37, "a", "b", "c")
	p.Down("c")
	res, err := n.DeliverBatch([]Message{
		{From: "a", To: "b", Payload: []byte("1")},
		{From: "a", To: "c", Payload: []byte("2")}, // down: skipped
		{From: "a", To: "b", Payload: []byte("3")},
	})
	if err != nil {
		t.Fatalf("batch with down endpoint errored: %v", err)
	}
	if res.Down != 1 || res.Delivered != 2 || res.Lost != 0 || res.Queued != 0 {
		t.Fatalf("batch result %+v, want 2 delivered / 1 down", res)
	}
	if *got["b"] != 2 || *got["c"] != 0 {
		t.Fatalf("handlers saw b=%d c=%d", *got["b"], *got["c"])
	}
	sa, _ := n.NodeStats("a")
	if sa.TxMessages != 2 || sa.TxBytes != 2 || sa.Dropped != 0 {
		t.Fatalf("down message charged the sender: %+v", sa)
	}

	// Unknown endpoint aborts with the partial result.
	res, err = n.DeliverBatch([]Message{
		{From: "a", To: "b", Payload: []byte("4")},
		{From: "a", To: "ghost", Payload: []byte("5")},
		{From: "a", To: "b", Payload: []byte("6")},
	})
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("batch to unknown node = %v, want ErrUnknownNode", err)
	}
	if res.Delivered != 1 {
		t.Fatalf("partial result %+v, want 1 delivered before the abort", res)
	}
	if *got["b"] != 3 {
		t.Fatalf("message after the failing one was transmitted: b=%d", *got["b"])
	}
}

// TestDeliverBatchAsyncQueuesAndFlushes: in async mode the whole batch
// lands on the queue and Flush delivers it in order.
func TestDeliverBatchAsyncQueuesAndFlushes(t *testing.T) {
	n, _, got := faultNet(t, 41, "a", "b")
	n.SetAsync(true)
	res, err := n.DeliverBatch(genTraffic(41, []string{"a"}, "b", 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Queued != 16 || res.Delivered != 0 {
		t.Fatalf("batch result %+v, want 16 queued", res)
	}
	if n.Pending() != 16 {
		t.Fatalf("pending %d, want 16", n.Pending())
	}
	if d := n.Flush(); d != 16 {
		t.Fatalf("flush delivered %d, want 16", d)
	}
	if *got["b"] != 16 {
		t.Fatalf("handler saw %d messages", *got["b"])
	}
}

// batchedEquivalence is the property body shared with
// TestSendDeliverEquivalence: for one seed, sequential sync Send and
// batched async enqueue + Flush must produce byte-identical per-node
// Stats, identical delivery order, and identical simulated time when
// the dup/reorder knobs are zero.
func batchedEquivalence(t *testing.T, seed int64) {
	t.Helper()
	senders := []string{"a", "b", "c"}
	msgs := genTraffic(seed, senders, "r", 64)

	seqNet, seqSeen := equivNet(t, seed, senders, "r")
	for _, m := range msgs {
		if _, err := seqNet.Deliver(m); err != nil {
			t.Fatalf("seed %d: sequential send: %v", seed, err)
		}
	}

	batNet, batSeen := equivNet(t, seed, senders, "r")
	batNet.SetAsync(true)
	res, err := batNet.DeliverBatch(msgs)
	if err != nil {
		t.Fatalf("seed %d: batch enqueue: %v", seed, err)
	}
	if res.Queued+res.Lost != len(msgs) {
		t.Fatalf("seed %d: batch result %+v does not cover %d messages", seed, res, len(msgs))
	}
	batNet.Flush()

	for _, id := range append(senders, "r") {
		ss, _ := seqNet.NodeStats(id)
		bs, _ := batNet.NodeStats(id)
		if ss != bs {
			t.Fatalf("seed %d: node %s stats diverge: sequential %+v, batched %+v", seed, id, ss, bs)
		}
	}
	if sq, bq := strings.Join(*seqSeen, ","), strings.Join(*batSeen, ","); sq != bq {
		t.Fatalf("seed %d: delivery order diverges:\nsequential %s\nbatched    %s", seed, sq, bq)
	}
	if seqNet.SimTimeMS() != batNet.SimTimeMS() {
		t.Fatalf("seed %d: simulated time diverges: %v vs %v", seed, seqNet.SimTimeMS(), batNet.SimTimeMS())
	}
	if seqNet.MsgCount() != batNet.MsgCount() {
		t.Fatalf("seed %d: fault clock diverges: %d vs %d", seed, seqNet.MsgCount(), batNet.MsgCount())
	}
}
