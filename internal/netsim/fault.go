// Fault-injection substrate: a FaultPlan scripts link partitions, node
// crash/restart, Gilbert–Elliott burst loss, and duplicate/reorder
// corruption for the async delivery path. Every fault decision is keyed
// on the network's deterministic message counter or drawn from its
// seeded RNG — never wall clock — so a faulted run replays identically
// from its seed, which is what lets the chaos tests assert exact
// outcomes under GOMAXPROCS=1 and N alike.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/obs"
)

// Fault observability (no-ops until obs.Enable). These count injected
// faults by mechanism; the drops they cause are additionally counted in
// netsim.lost.messages and the per-node Stats so Totals() stays the
// authoritative accounting.
var (
	obsFaultDown      = obs.GetCounter("netsim.fault.down")
	obsFaultPartition = obs.GetCounter("netsim.fault.partitioned")
	obsFaultBurst     = obs.GetCounter("netsim.fault.burst_lost")
	obsFaultDup       = obs.GetCounter("netsim.fault.duplicated")
	obsFaultReorder   = obs.GetCounter("netsim.fault.reordered")
)

// ErrNodeDown is the sentinel matched by errors.Is for sends involving a
// crashed node. The concrete error is a *NodeDownError carrying the node
// ID; it marks itself retryable so the bus retry layer treats a crashed
// peer as transient (it may restart).
var ErrNodeDown = errors.New("netsim: node down")

// NodeDownError reports a send to or from a node the fault plan has
// taken down. No transmission is charged: the failure is detected at the
// MAC/route layer before the radio spends energy, which keeps the
// "error ⇒ nothing charged" accounting invariant that Broadcast's
// attempted count relies on.
type NodeDownError struct{ ID string }

func (e *NodeDownError) Error() string { return fmt.Sprintf("netsim: node %q down", e.ID) }

// Is matches the ErrNodeDown sentinel.
func (e *NodeDownError) Is(target error) bool { return target == ErrNodeDown }

// Retryable marks the failure transient for retry-policy classification:
// a crashed node may restart within the caller's deadline.
func (e *NodeDownError) Retryable() bool { return true }

// GilbertElliott parameterizes a two-state burst-loss channel: the link
// flips between a good and a bad state with the given transition
// probabilities, and drops messages at the state's loss rate. Configured
// on a link it replaces the link's plain LossProb model.
type GilbertElliott struct {
	PGoodToBad float64 // per-message P(good → bad)
	PBadToGood float64 // per-message P(bad → good)
	LossGood   float64 // loss probability while good (often 0)
	LossBad    float64 // loss probability while bad (the burst)
}

// window is a half-open interval [From, To) of network message counts.
type window struct{ from, to int }

func (w window) contains(i int) bool { return i >= w.from && i < w.to }

// burstLink is one Gilbert–Elliott channel's live state.
type burstLink struct {
	cfg GilbertElliott
	bad bool
}

// FaultPlan scripts deterministic failures for one Network. All
// schedules are keyed on the network's message counter (the index Send
// assigns to each transmission attempt), not wall clock, so a plan
// replays identically for a fixed seed. A plan is safe for concurrent
// use and may be mutated while traffic flows (Down/Up model a live
// operator or supervisor).
type FaultPlan struct {
	mu          sync.Mutex
	down        map[string]bool       // guarded by mu; nodes currently crashed
	crashes     map[string][]window   // guarded by mu; scheduled crash windows per node
	parts       map[string][]window   // guarded by mu; partition windows per directed link "a→b"
	burst       map[string]*burstLink // guarded by mu; Gilbert–Elliott state per directed link
	dupProb     float64               // guarded by mu; async duplicate probability
	reorderProb float64               // guarded by mu; async reorder probability
}

// NewFaultPlan returns an empty plan (no faults).
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{
		down:    make(map[string]bool),
		crashes: make(map[string][]window),
		parts:   make(map[string][]window),
		burst:   make(map[string]*burstLink),
	}
}

// Down crashes a node immediately: sends to or from it return a typed
// *NodeDownError until Up is called.
func (p *FaultPlan) Down(id string) {
	p.mu.Lock()
	p.down[id] = true
	p.mu.Unlock()
}

// Up restarts a node taken down with Down.
func (p *FaultPlan) Up(id string) {
	p.mu.Lock()
	delete(p.down, id)
	p.mu.Unlock()
}

// Crash schedules a crash/restart cycle: the node is down for message
// counts in [fromMsg, toMsg) and back up afterwards.
func (p *FaultPlan) Crash(id string, fromMsg, toMsg int) {
	p.mu.Lock()
	p.crashes[id] = append(p.crashes[id], window{fromMsg, toMsg})
	p.mu.Unlock()
}

// Partition severs the a↔b link (both directions) for message counts in
// [fromMsg, toMsg): messages on the link are silently dropped — the
// sender's radio is still charged, mirroring loss semantics.
func (p *FaultPlan) Partition(a, b string, fromMsg, toMsg int) {
	p.mu.Lock()
	p.parts[a+"→"+b] = append(p.parts[a+"→"+b], window{fromMsg, toMsg})
	p.parts[b+"→"+a] = append(p.parts[b+"→"+a], window{fromMsg, toMsg})
	p.mu.Unlock()
}

// SetBurstLink installs a Gilbert–Elliott burst-loss channel on the
// directed from→to link, replacing the link's plain LossProb model.
func (p *FaultPlan) SetBurstLink(from, to string, cfg GilbertElliott) {
	p.mu.Lock()
	p.burst[from+"→"+to] = &burstLink{cfg: cfg}
	p.mu.Unlock()
}

// SetDuplexBurstLink installs the same burst-loss channel on both
// directions of a link (independent state per direction).
func (p *FaultPlan) SetDuplexBurstLink(a, b string, cfg GilbertElliott) {
	p.SetBurstLink(a, b, cfg)
	p.SetBurstLink(b, a, cfg)
}

// SetDuplicateProb sets the probability that an async-queued message is
// delivered twice at Flush.
func (p *FaultPlan) SetDuplicateProb(q float64) {
	p.mu.Lock()
	p.dupProb = q
	p.mu.Unlock()
}

// SetReorderProb sets the probability that an async-queued message is
// deferred behind the rest of its Flush batch.
func (p *FaultPlan) SetReorderProb(q float64) {
	p.mu.Lock()
	p.reorderProb = q
	p.mu.Unlock()
}

// faultAction is the plan's verdict for one transmission attempt.
type faultAction int

const (
	faultNone         faultAction = iota // no opinion; apply the link's own loss model
	faultDown                            // a party is crashed: typed error, nothing charged
	faultPartition                       // link partitioned: charged, silently dropped
	faultBurst                           // burst channel dropped it: charged, silently dropped
	faultDeliverBurst                    // burst channel delivered it: skip the plain loss draw
)

// verdict decides one transmission's fate. Called by Network.Deliver
// with the network mutex held; the only lock taken inside is the plan's
// own (Network.mu → FaultPlan.mu, never the reverse). rng is the
// network's seeded RNG so burst-state walks are reproducible.
func (p *FaultPlan) verdict(from, to string, msgIdx int, rng *rand.Rand) (faultAction, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.downLocked(from, msgIdx) {
		return faultDown, from
	}
	if p.downLocked(to, msgIdx) {
		return faultDown, to
	}
	for _, w := range p.parts[from+"→"+to] {
		if w.contains(msgIdx) {
			return faultPartition, ""
		}
	}
	if bl, ok := p.burst[from+"→"+to]; ok {
		if bl.bad {
			if rng.Float64() < bl.cfg.PBadToGood {
				bl.bad = false
			}
		} else {
			if rng.Float64() < bl.cfg.PGoodToBad {
				bl.bad = true
			}
		}
		loss := bl.cfg.LossGood
		if bl.bad {
			loss = bl.cfg.LossBad
		}
		if loss > 0 && rng.Float64() < loss {
			return faultBurst, ""
		}
		return faultDeliverBurst, ""
	}
	return faultNone, ""
}

// nodeDown reports whether a node is down at the given message count
// (used by Flush for messages queued before a crash landed).
func (p *FaultPlan) nodeDown(id string, msgIdx int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.downLocked(id, msgIdx)
}

func (p *FaultPlan) downLocked(id string, msgIdx int) bool {
	if p.down[id] {
		return true
	}
	for _, w := range p.crashes[id] {
		if w.contains(msgIdx) {
			return true
		}
	}
	return false
}

// dupReorder snapshots the async corruption knobs.
func (p *FaultPlan) dupReorder() (dup, reorder float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dupProb, p.reorderProb
}
