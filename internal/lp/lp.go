// Package lp implements a dense two-phase primal simplex solver for linear
// programs in standard form:
//
//	minimize    c·x
//	subject to  A x = b,  x ≥ 0.
//
// It exists so the middleware's L1 basis-pursuit decoder (paper Eq. 9–10)
// can be solved with the standard linear-programming reformulation using
// only the standard library. The solver uses Bland's rule to guarantee
// termination (no cycling) and is sized for the few-hundred-variable
// programs that arise from per-zone sparse recovery.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrShape      = errors.New("lp: dimension mismatch")
)

// Problem is a standard-form linear program: minimize C·x subject to
// A x = B, x ≥ 0. A is dense row-major with Rows*Cols entries.
type Problem struct {
	C    []float64 // length n
	A    []float64 // m×n row-major
	B    []float64 // length m
	Rows int       // m
	Cols int       // n
}

// Result holds the optimum found by Solve.
type Result struct {
	X          []float64 // optimal point, length n
	Objective  float64   // c·x at the optimum
	Iterations int       // total simplex pivots across both phases
}

const pivotTol = 1e-9

// Solve runs two-phase simplex on p. Rows with negative b are negated
// first so phase 1 can start from the artificial basis.
func Solve(p Problem) (*Result, error) {
	m, n := p.Rows, p.Cols
	if len(p.A) != m*n || len(p.B) != m || len(p.C) != n {
		return nil, fmt.Errorf("%w: A=%d (want %d), b=%d (want %d), c=%d (want %d)",
			ErrShape, len(p.A), m*n, len(p.B), m, len(p.C), n)
	}
	// Working tableau: m rows × (n + m artificials + 1 rhs).
	width := n + m + 1
	tab := make([]float64, m*width)
	for i := 0; i < m; i++ {
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			tab[i*width+j] = sign * p.A[i*n+j]
		}
		tab[i*width+n+i] = 1 // artificial
		tab[i*width+n+m] = sign * p.B[i]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	iters := 0

	// Phase 1: minimize sum of artificials.
	phase1 := make([]float64, n+m)
	for j := n; j < n+m; j++ {
		phase1[j] = 1
	}
	it, err := simplex(tab, basis, phase1, m, width)
	iters += it
	if err != nil {
		return nil, err
	}
	if obj := objective(tab, basis, phase1, m, width); obj > 1e-7 {
		return nil, ErrInfeasible
	}
	// Drive any artificial still in the basis out (degenerate case) or
	// confirm its row is zero across original columns.
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(tab[i*width+j]) > pivotTol {
				pivot(tab, basis, m, width, i, j)
				iters++
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint: the artificial stays basic at value 0;
			// harmless for phase 2 as long as its column is never re-entered
			// (phase-2 costs for artificial columns are +inf below).
			continue
		}
	}

	// Phase 2: original objective; forbid artificial columns.
	phase2 := make([]float64, n+m)
	copy(phase2, p.C)
	for j := n; j < n+m; j++ {
		phase2[j] = math.Inf(1)
	}
	it, err = simplex(tab, basis, phase2, m, width)
	iters += it
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = tab[i*width+n+m]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return &Result{X: x, Objective: obj, Iterations: iters}, nil
}

// objective returns c·x for the current basic solution.
func objective(tab []float64, basis []int, c []float64, m, width int) float64 {
	obj := 0.0
	for i, bi := range basis {
		obj += c[bi] * tab[i*width+width-1]
	}
	return obj
}

// simplex runs primal simplex pivots with Bland's rule until optimality.
// It returns the number of pivots performed.
func simplex(tab []float64, basis []int, c []float64, m, width int) (int, error) {
	ncols := width - 1
	iters := 0
	// y holds the simplex multipliers implicitly via reduced cost scan.
	for {
		// Compute reduced costs: rc_j = c_j - c_B · column_j. Pick the
		// lowest-index column with rc < -tol (Bland's rule).
		enter := -1
		for j := 0; j < ncols; j++ {
			if math.IsInf(c[j], 1) {
				continue // artificial barred in phase 2
			}
			if isBasic(basis, j) {
				continue
			}
			rc := c[j]
			for i := 0; i < m; i++ {
				cb := c[basis[i]]
				if cb != 0 && !math.IsInf(cb, 1) {
					rc -= cb * tab[i*width+j]
				}
			}
			if rc < -1e-9 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return iters, nil // optimal
		}
		// Ratio test with Bland tie-break on basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i*width+enter]
			if a <= pivotTol {
				continue
			}
			ratio := tab[i*width+width-1] / a
			if ratio < bestRatio-1e-12 ||
				(math.Abs(ratio-bestRatio) <= 1e-12 && (leave < 0 || basis[i] < basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return iters, ErrUnbounded
		}
		pivot(tab, basis, m, width, leave, enter)
		iters++
		if iters > 200000 {
			return iters, errors.New("lp: iteration limit exceeded")
		}
	}
}

func isBasic(basis []int, j int) bool {
	for _, b := range basis {
		if b == j {
			return true
		}
	}
	return false
}

// pivot makes column `col` basic in row `row`.
func pivot(tab []float64, basis []int, m, width, row, col int) {
	p := tab[row*width+col]
	inv := 1 / p
	for j := 0; j < width; j++ {
		tab[row*width+j] *= inv
	}
	tab[row*width+col] = 1 // exact
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := tab[i*width+col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i*width+j] -= f * tab[row*width+j]
		}
		tab[i*width+col] = 0 // exact
	}
	basis[row] = col
}
