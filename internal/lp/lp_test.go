package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOrFatal(t *testing.T, p Problem) *Result {
	t.Helper()
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestSimpleEquality(t *testing.T) {
	// min x1 + 2 x2  s.t. x1 + x2 = 4, x >= 0  → x = (4, 0), obj 4.
	res := solveOrFatal(t, Problem{
		C: []float64{1, 2}, A: []float64{1, 1}, B: []float64{4}, Rows: 1, Cols: 2,
	})
	if math.Abs(res.Objective-4) > 1e-8 {
		t.Fatalf("obj=%v want 4", res.Objective)
	}
	if math.Abs(res.X[0]-4) > 1e-8 || math.Abs(res.X[1]) > 1e-8 {
		t.Fatalf("x=%v", res.X)
	}
}

func TestTwoConstraints(t *testing.T) {
	// min -x1 - x2  s.t. x1 + 2x2 + s1 = 4; 3x1 + x2 + s2 = 6  (slacks as vars)
	// LP optimum at intersection x1=8/5, x2=6/5, obj=-14/5.
	res := solveOrFatal(t, Problem{
		C:    []float64{-1, -1, 0, 0},
		A:    []float64{1, 2, 1, 0, 3, 1, 0, 1},
		B:    []float64{4, 6},
		Rows: 2, Cols: 4,
	})
	if math.Abs(res.Objective-(-14.0/5)) > 1e-8 {
		t.Fatalf("obj=%v want -2.8", res.Objective)
	}
	if math.Abs(res.X[0]-1.6) > 1e-8 || math.Abs(res.X[1]-1.2) > 1e-8 {
		t.Fatalf("x=%v", res.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x1 = 1 and x1 = 2 simultaneously.
	_, err := Solve(Problem{
		C: []float64{1}, A: []float64{1, 1}, B: []float64{1, 2}, Rows: 2, Cols: 1,
	})
	if err != ErrInfeasible {
		t.Fatalf("err=%v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x1 s.t. x1 - x2 = 0: x1 can grow without bound.
	_, err := Solve(Problem{
		C: []float64{-1, 0}, A: []float64{1, -1}, B: []float64{0}, Rows: 1, Cols: 2,
	})
	if err != ErrUnbounded {
		t.Fatalf("err=%v, want ErrUnbounded", err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x1 = -3 → x1 = 3.
	res := solveOrFatal(t, Problem{
		C: []float64{1}, A: []float64{-1}, B: []float64{-3}, Rows: 1, Cols: 1,
	})
	if math.Abs(res.X[0]-3) > 1e-8 {
		t.Fatalf("x=%v", res.X)
	}
}

func TestRedundantConstraint(t *testing.T) {
	// Duplicate rows must not break phase 1 → 2 transition.
	res := solveOrFatal(t, Problem{
		C:    []float64{2, 3},
		A:    []float64{1, 1, 1, 1},
		B:    []float64{5, 5},
		Rows: 2, Cols: 2,
	})
	if math.Abs(res.X[0]+res.X[1]-5) > 1e-8 {
		t.Fatalf("constraint violated: x=%v", res.X)
	}
	if math.Abs(res.Objective-10) > 1e-8 { // all mass on the cheaper var
		t.Fatalf("obj=%v want 10", res.Objective)
	}
}

func TestShapeError(t *testing.T) {
	if _, err := Solve(Problem{C: []float64{1}, A: []float64{1, 2}, B: []float64{1}, Rows: 1, Cols: 1}); err == nil {
		t.Fatal("want shape error")
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Classic degeneracy-prone program; Bland's rule must terminate.
	res := solveOrFatal(t, Problem{
		C: []float64{-0.75, 150, -0.02, 6, 0, 0, 0},
		A: []float64{
			0.25, -60, -0.04, 9, 1, 0, 0,
			0.5, -90, -0.02, 3, 0, 1, 0,
			0, 0, 1, 0, 0, 0, 1,
		},
		B:    []float64{0, 0, 1},
		Rows: 3, Cols: 7,
	})
	if math.Abs(res.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("obj=%v want -0.05", res.Objective)
	}
}

// Property: the returned point always satisfies Ax=b and x>=0 for random
// feasible problems (constructed by picking a nonnegative x0 and setting
// b = A x0).
func TestPropFeasibilityOfOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		n := m + 1 + rng.Intn(5)
		p := Problem{Rows: m, Cols: n,
			A: make([]float64, m*n), B: make([]float64, m), C: make([]float64, n)}
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * 5
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				p.A[i*n+j] = rng.NormFloat64()
				p.B[i] += p.A[i*n+j] * x0[j]
			}
		}
		for j := range p.C {
			p.C[j] = rng.Float64() // nonnegative costs → bounded below by 0
		}
		res, err := Solve(p)
		if err != nil {
			return false
		}
		for _, x := range res.X {
			if x < -1e-7 {
				return false
			}
		}
		for i := 0; i < m; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += p.A[i*n+j] * res.X[j]
			}
			if math.Abs(s-p.B[i]) > 1e-6*(1+math.Abs(p.B[i])) {
				return false
			}
		}
		// Optimal objective cannot exceed the feasible point's objective.
		obj0 := 0.0
		for j := range x0 {
			obj0 += p.C[j] * x0[j]
		}
		return res.Objective <= obj0+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve20x60(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m, n := 20, 60
	p := Problem{Rows: m, Cols: n,
		A: make([]float64, m*n), B: make([]float64, m), C: make([]float64, n)}
	x0 := make([]float64, n)
	for j := range x0 {
		x0[j] = rng.Float64()
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			p.A[i*n+j] = rng.NormFloat64()
			p.B[i] += p.A[i*n+j] * x0[j]
		}
	}
	for j := range p.C {
		p.C[j] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
