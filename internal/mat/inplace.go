package mat

import "fmt"

// In-place kernel variants. The decode fast path calls these once per
// iteration with hoisted buffers, so none of them may allocate; each checks
// shape and (cheaply detectable) aliasing instead of silently corrupting an
// operand mid-scan.

func sameSlice(a, b []float64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// MulVecInto computes out = a*x without allocating. out must not alias x.
func MulVecInto(out []float64, a *Matrix, x []float64) error {
	if a.Cols != len(x) || a.Rows != len(out) {
		return fmt.Errorf("%w: (%dx%d)*vec(%d)->vec(%d)", ErrShape, a.Rows, a.Cols, len(x), len(out))
	}
	if sameSlice(out, x) {
		return ErrAlias
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return nil
}

// MulTVecInto computes out = aᵀ*x without allocating or materializing the
// transpose: it scans a row-major, accumulating x[i]·row(i) into out, which
// is the cache-friendly form of the correlation step Φ̃ᵀr used by every
// greedy decoder. out must not alias x.
func MulTVecInto(out []float64, a *Matrix, x []float64) error {
	if a.Rows != len(x) || a.Cols != len(out) {
		return fmt.Errorf("%w: (%dx%d)ᵀ*vec(%d)->vec(%d)", ErrShape, a.Rows, a.Cols, len(x), len(out))
	}
	if sameSlice(out, x) {
		return ErrAlias
	}
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out[j] += v * xi
		}
	}
	return nil
}

// SelectColsInto writes the submatrix of a formed from the given column
// indices into out (shape a.Rows × len(idx)). out must not alias a.
func SelectColsInto(out, a *Matrix, idx []int) error {
	if out.Rows != a.Rows || out.Cols != len(idx) {
		return fmt.Errorf("%w: SelectColsInto out %dx%d, want %dx%d", ErrShape, out.Rows, out.Cols, a.Rows, len(idx))
	}
	if sameSlice(out.Data, a.Data) {
		return ErrAlias
	}
	w := len(idx)
	for k, j := range idx {
		if j < 0 || j >= a.Cols {
			return fmt.Errorf("mat: col index %d out of range [0,%d)", j, a.Cols)
		}
		for i := 0; i < a.Rows; i++ {
			out.Data[i*w+k] = a.Data[i*a.Cols+j]
		}
	}
	return nil
}

// SelectRowsInto writes the submatrix of a formed from the given row
// indices into out (shape len(idx) × a.Cols). out must not alias a.
func SelectRowsInto(out, a *Matrix, idx []int) error {
	if out.Rows != len(idx) || out.Cols != a.Cols {
		return fmt.Errorf("%w: SelectRowsInto out %dx%d, want %dx%d", ErrShape, out.Rows, out.Cols, len(idx), a.Cols)
	}
	if sameSlice(out.Data, a.Data) {
		return ErrAlias
	}
	for k, i := range idx {
		if i < 0 || i >= a.Rows {
			return fmt.Errorf("mat: row index %d out of range [0,%d)", i, a.Rows)
		}
		copy(out.Data[k*a.Cols:(k+1)*a.Cols], a.Data[i*a.Cols:(i+1)*a.Cols])
	}
	return nil
}

// mulBlock is the tile edge for the blocked product: three float64 tiles of
// this size stay well inside a typical 32 KiB L1 data cache.
const mulBlock = 64

// MulInto computes out = a*b without allocating. For operands larger than
// one tile the k/j loops are blocked so each b tile is reused across a full
// stripe of a while still resident. out must not alias a or b.
func MulInto(out, a, b *Matrix) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("%w: (%dx%d)*(%dx%d)", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		return fmt.Errorf("%w: MulInto out %dx%d, want %dx%d", ErrShape, out.Rows, out.Cols, a.Rows, b.Cols)
	}
	if sameSlice(out.Data, a.Data) || sameSlice(out.Data, b.Data) {
		return ErrAlias
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	n, p := a.Cols, b.Cols
	if n <= mulBlock && p <= mulBlock {
		for i := 0; i < a.Rows; i++ {
			arow := a.Data[i*n : (i+1)*n]
			orow := out.Data[i*p : (i+1)*p]
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[k*p : (k+1)*p]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return nil
	}
	for k0 := 0; k0 < n; k0 += mulBlock {
		k1 := k0 + mulBlock
		if k1 > n {
			k1 = n
		}
		for j0 := 0; j0 < p; j0 += mulBlock {
			j1 := j0 + mulBlock
			if j1 > p {
				j1 = p
			}
			for i := 0; i < a.Rows; i++ {
				arow := a.Data[i*n : (i+1)*n]
				orow := out.Data[i*p : (i+1)*p]
				for k := k0; k < k1; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := b.Data[k*p : (k+1)*p]
					for j := j0; j < j1; j++ {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
	return nil
}

// MulATB returns aᵀ*b computed without materializing the transpose: both
// operands are scanned row-major (out[j,:] accumulates a[i,j]·b[i,:]).
func MulATB(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("%w: (%dx%d)ᵀ*(%dx%d)", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Cols, b.Cols)
	p := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		brow := b.Data[i*p : (i+1)*p]
		for j, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[j*p : (j+1)*p]
			for q, bv := range brow {
				orow[q] += av * bv
			}
		}
	}
	return out, nil
}
