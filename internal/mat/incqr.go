package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrAlias reports an in-place kernel whose output buffer aliases an input.
var ErrAlias = errors.New("mat: output aliases input")

// IncrementalQR maintains a thin QR factorization A = Q·R of a tall matrix
// whose columns arrive one at a time — the factorization greedy decoders
// (OMP, CHS) grow per iteration. Appending a column costs O(m·k) via
// modified Gram–Schmidt with one re-orthogonalization pass, instead of the
// O(m·k²) full Householder refactorization per iteration; dropping the most
// recently appended column is O(1).
//
// Q's columns are stored contiguously (column j at q[j*m:(j+1)*m]) so the
// append-time projections are sequential scans.
type IncrementalQR struct {
	m, maxCols int
	k          int
	q          []float64 // m×maxCols, column-contiguous
	r          []float64 // upper triangular, column-contiguous: R[i][j] at r[j*maxCols+i], i <= j
}

// NewIncrementalQR returns an empty factorization for m-row columns with
// capacity maxCols (requires 0 < maxCols <= m for full column rank).
func NewIncrementalQR(m, maxCols int) (*IncrementalQR, error) {
	if m <= 0 || maxCols <= 0 {
		return nil, fmt.Errorf("%w: IncrementalQR needs positive dims, got m=%d maxCols=%d", ErrShape, m, maxCols)
	}
	if maxCols > m {
		return nil, fmt.Errorf("%w: IncrementalQR capacity %d exceeds row count %d", ErrShape, maxCols, m)
	}
	return &IncrementalQR{
		m: m, maxCols: maxCols,
		q: make([]float64, m*maxCols),
		r: make([]float64, maxCols*maxCols),
	}, nil
}

// Len returns the number of columns currently factored.
func (f *IncrementalQR) Len() int { return f.k }

// Rows returns the row dimension m.
func (f *IncrementalQR) Rows() int { return f.m }

// Append factors one more column into Q·R. It returns ErrSingular without
// modifying the factorization when the new column is (numerically) linearly
// dependent on the current ones, and ErrShape when the column length or the
// capacity doesn't fit.
func (f *IncrementalQR) Append(col []float64) error {
	if len(col) != f.m {
		return fmt.Errorf("%w: column length %d, want %d", ErrShape, len(col), f.m)
	}
	if f.k >= f.maxCols {
		return fmt.Errorf("%w: IncrementalQR at capacity %d", ErrShape, f.maxCols)
	}
	v := f.q[f.k*f.m : (f.k+1)*f.m]
	copy(v, col)
	norm0 := Norm2(col)
	rk := f.r[f.k*f.maxCols:]
	for j := 0; j < f.k; j++ {
		rk[j] = 0
	}
	// Modified Gram–Schmidt with a second pass: the re-orthogonalization
	// ("twice is enough") keeps Q orthonormal to machine precision even for
	// the coherent point-sampled basis columns OMP selects near convergence.
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < f.k; j++ {
			qj := f.q[j*f.m : (j+1)*f.m]
			d := Dot(qj, v)
			rk[j] += d
			for i, qv := range qj {
				v[i] -= d * qv
			}
		}
	}
	nv := Norm2(v)
	// Relative rank test: a residual this far below the column's own norm
	// means the column lies in span(Q) to working precision.
	if nv <= 1e-12*math.Max(norm0, 1) {
		return ErrSingular
	}
	rk[f.k] = nv
	inv := 1 / nv
	for i := range v {
		v[i] *= inv
	}
	f.k++
	return nil
}

// Drop removes the most recently appended column (no-op when empty).
func (f *IncrementalQR) Drop() {
	if f.k > 0 {
		f.k--
	}
}

// DeflateLatest subtracts from v its projection onto the newest Q column:
// v ← v − (q_k·v)·q_k. For a residual r = y − QQᵀy maintained across
// appends this is the O(m) residual update of orthogonal matching pursuit
// (the new column is orthogonal to all previous ones, so one deflation
// keeps r exact). Returns the removed coefficient q_k·v.
func (f *IncrementalQR) DeflateLatest(v []float64) (float64, error) {
	if f.k == 0 {
		return 0, errors.New("mat: DeflateLatest on empty factorization")
	}
	if len(v) != f.m {
		return 0, fmt.Errorf("%w: vector length %d, want %d", ErrShape, len(v), f.m)
	}
	qk := f.q[(f.k-1)*f.m : f.k*f.m]
	d := Dot(qk, v)
	for i, qv := range qk {
		v[i] -= d * qv
	}
	return d, nil
}

// Solve returns the least-squares coefficients x minimizing ‖A·x − y‖₂ for
// the factored A: x = R⁻¹Qᵀy.
func (f *IncrementalQR) Solve(y []float64) ([]float64, error) {
	x := make([]float64, f.k)
	if err := f.SolveInto(x, y); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto writes the least-squares coefficients into x (length Len()).
func (f *IncrementalQR) SolveInto(x, y []float64) error {
	if len(y) != f.m {
		return fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(y), f.m)
	}
	if len(x) != f.k {
		return fmt.Errorf("%w: solution length %d, want %d", ErrShape, len(x), f.k)
	}
	// x ← Qᵀy.
	for j := 0; j < f.k; j++ {
		x[j] = Dot(f.q[j*f.m:(j+1)*f.m], y)
	}
	// Back-substitute R·x = Qᵀy (R stored column-contiguous: R[i][j] at
	// r[j*maxCols+i]).
	for i := f.k - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < f.k; j++ {
			s -= f.r[j*f.maxCols+i] * x[j]
		}
		d := f.r[i*f.maxCols+i]
		if d == 0 {
			return ErrSingular
		}
		x[i] = s / d
	}
	return nil
}
