package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func matsEqual(t *testing.T, name string, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > tol {
			t.Fatalf("%s: Data[%d] = %g, want %g", name, i, got.Data[i], want.Data[i])
		}
	}
}

func TestMulVecIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 7, 5)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := MulVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 7)
	if err := MulVecInto(got, a, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("out[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMulTVecIntoMatchesMulTVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 7, 5)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := MulTVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 5)
	// Pre-dirty the output: the kernel must fully overwrite it.
	for i := range got {
		got[i] = 99
	}
	if err := MulTVecInto(got, a, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("out[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSelectIntoMatchAllocatingVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 6, 8)
	cols := []int{7, 0, 3}
	rows := []int{5, 2}

	wantC, err := SelectCols(a, cols)
	if err != nil {
		t.Fatal(err)
	}
	gotC := New(6, len(cols))
	if err := SelectColsInto(gotC, a, cols); err != nil {
		t.Fatal(err)
	}
	matsEqual(t, "SelectColsInto", gotC, wantC, 0)

	wantR, err := SelectRows(a, rows)
	if err != nil {
		t.Fatal(err)
	}
	gotR := New(len(rows), 8)
	if err := SelectRowsInto(gotR, a, rows); err != nil {
		t.Fatal(err)
	}
	matsEqual(t, "SelectRowsInto", gotR, wantR, 0)

	if err := SelectColsInto(gotC, a, []int{0, 1, 8}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if err := SelectRowsInto(gotR, a, []int{0, 6}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Small (single-tile) and large (blocked) shapes exercise both paths.
	for _, dims := range [][3]int{{5, 4, 6}, {70, 80, 65}} {
		m, n, p := dims[0], dims[1], dims[2]
		a := randMat(rng, m, n)
		b := randMat(rng, n, p)
		want, err := Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got := New(m, p)
		if err := MulInto(got, a, b); err != nil {
			t.Fatal(err)
		}
		matsEqual(t, "MulInto", got, want, 1e-9)
	}
}

func TestMulATBMatchesTransposeMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 9, 4)
	b := randMat(rng, 9, 3)
	want, err := Mul(a.T(), b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MulATB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	matsEqual(t, "MulATB", got, want, 1e-12)
}

func TestInPlaceShapeErrors(t *testing.T) {
	a := New(3, 2)
	if err := MulVecInto(make([]float64, 3), a, make([]float64, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("MulVecInto bad x: %v, want ErrShape", err)
	}
	if err := MulVecInto(make([]float64, 2), a, make([]float64, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("MulVecInto bad out: %v, want ErrShape", err)
	}
	if err := MulTVecInto(make([]float64, 2), a, make([]float64, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("MulTVecInto bad x: %v, want ErrShape", err)
	}
	if err := SelectColsInto(New(3, 2), a, []int{0}); !errors.Is(err, ErrShape) {
		t.Fatalf("SelectColsInto bad out: %v, want ErrShape", err)
	}
	if err := SelectRowsInto(New(2, 3), a, []int{0, 1}); !errors.Is(err, ErrShape) {
		t.Fatalf("SelectRowsInto bad out: %v, want ErrShape", err)
	}
	if err := MulInto(New(3, 3), a, New(3, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("MulInto inner mismatch: %v, want ErrShape", err)
	}
	if err := MulInto(New(2, 3), a, New(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("MulInto bad out: %v, want ErrShape", err)
	}
	if _, err := MulATB(a, New(2, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("MulATB row mismatch: %v, want ErrShape", err)
	}
}

func TestInPlaceAliasDetection(t *testing.T) {
	a := New(3, 3)
	v := make([]float64, 3)
	if err := MulVecInto(v, a, v); !errors.Is(err, ErrAlias) {
		t.Fatalf("MulVecInto aliased: %v, want ErrAlias", err)
	}
	if err := MulTVecInto(v, a, v); !errors.Is(err, ErrAlias) {
		t.Fatalf("MulTVecInto aliased: %v, want ErrAlias", err)
	}
	shared := &Matrix{Rows: 3, Cols: 3, Data: a.Data}
	if err := SelectColsInto(shared, a, []int{0, 1, 2}); !errors.Is(err, ErrAlias) {
		t.Fatalf("SelectColsInto aliased: %v, want ErrAlias", err)
	}
	if err := SelectRowsInto(shared, a, []int{0, 1, 2}); !errors.Is(err, ErrAlias) {
		t.Fatalf("SelectRowsInto aliased: %v, want ErrAlias", err)
	}
	if err := MulInto(shared, a, New(3, 3)); !errors.Is(err, ErrAlias) {
		t.Fatalf("MulInto out aliases a: %v, want ErrAlias", err)
	}
	b := New(3, 3)
	sharedB := &Matrix{Rows: 3, Cols: 3, Data: b.Data}
	if err := MulInto(sharedB, New(3, 3), b); !errors.Is(err, ErrAlias) {
		t.Fatalf("MulInto out aliases b: %v, want ErrAlias", err)
	}
}
