package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randTall(rng *rand.Rand, m, n int) *Matrix {
	a := New(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

func appendCols(t *testing.T, f *IncrementalQR, a *Matrix) {
	t.Helper()
	col := make([]float64, a.Rows)
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			col[i] = a.At(i, j)
		}
		if err := f.Append(col); err != nil {
			t.Fatalf("Append col %d: %v", j, err)
		}
	}
}

func TestIncrementalQRMatchesLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{6, 3}, {12, 5}, {20, 20}} {
		m, n := dims[0], dims[1]
		a := randTall(rng, m, n)
		y := make([]float64, m)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		f, err := NewIncrementalQR(m, n)
		if err != nil {
			t.Fatal(err)
		}
		appendCols(t, f, a)
		if f.Len() != n || f.Rows() != m {
			t.Fatalf("Len/Rows = %d/%d, want %d/%d", f.Len(), f.Rows(), n, m)
		}
		x, err := f.Solve(y)
		if err != nil {
			t.Fatal(err)
		}
		// Least-squares optimality: the residual must be orthogonal to
		// every column of A.
		pred, err := MulVec(a, x)
		if err != nil {
			t.Fatal(err)
		}
		r := SubVec(y, pred)
		atr, err := MulTVec(a, r)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range atr {
			if math.Abs(v) > 1e-9 {
				t.Fatalf("%dx%d: Aᵀr[%d] = %g, want ~0", m, n, j, v)
			}
		}
	}
}

func TestIncrementalQRExactOnConsistentSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randTall(rng, 10, 4)
	want := []float64{2, -1, 0.5, 3}
	y, err := MulVec(a, want)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewIncrementalQR(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	appendCols(t, f, a)
	got, err := f.Solve(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestIncrementalQRRejectsDependentColumn(t *testing.T) {
	f, err := NewIncrementalQR(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	c1 := []float64{1, 2, 3, 4}
	if err := f.Append(c1); err != nil {
		t.Fatal(err)
	}
	// A scaled copy is linearly dependent: the append must fail without
	// committing.
	c2 := []float64{2, 4, 6, 8}
	if err := f.Append(c2); !errors.Is(err, ErrSingular) {
		t.Fatalf("dependent append: err = %v, want ErrSingular", err)
	}
	if f.Len() != 1 {
		t.Fatalf("Len after rejected append = %d, want 1", f.Len())
	}
	// The factorization must still accept an independent column afterwards.
	c3 := []float64{0, 1, 0, 0}
	if err := f.Append(c3); err != nil {
		t.Fatalf("independent append after rejection: %v", err)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
}

func TestIncrementalQRDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTall(rng, 8, 3)
	y := make([]float64, 8)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	f, err := NewIncrementalQR(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	appendCols(t, f, a)
	f.Drop()
	if f.Len() != 2 {
		t.Fatalf("Len after Drop = %d, want 2", f.Len())
	}
	got, err := f.Solve(y)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping the last column must give the same answer as factoring only
	// the first two columns.
	first2, err := SelectCols(a, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := LeastSquares(first2, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestIncrementalQRDeflateLatest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randTall(rng, 9, 4)
	y := make([]float64, 9)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	f, err := NewIncrementalQR(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Maintain resid = y − QQᵀy by deflating after every append (the OMP
	// residual recurrence) and compare with the explicit projection.
	resid := CloneVec(y)
	col := make([]float64, 9)
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < 9; i++ {
			col[i] = a.At(i, j)
		}
		if err := f.Append(col); err != nil {
			t.Fatal(err)
		}
		if _, err := f.DeflateLatest(resid); err != nil {
			t.Fatal(err)
		}
	}
	x, err := f.Solve(y)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := MulVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resid {
		if want := y[i] - pred[i]; math.Abs(resid[i]-want) > 1e-9 {
			t.Fatalf("resid[%d] = %g, want %g", i, resid[i], want)
		}
	}
}

func TestIncrementalQRShapeErrors(t *testing.T) {
	if _, err := NewIncrementalQR(3, 4); !errors.Is(err, ErrShape) {
		t.Fatalf("maxCols > m: err = %v, want ErrShape", err)
	}
	if _, err := NewIncrementalQR(0, 0); !errors.Is(err, ErrShape) {
		t.Fatalf("zero dims: err = %v, want ErrShape", err)
	}
	f, err := NewIncrementalQR(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("short column: err = %v, want ErrShape", err)
	}
	if err := f.Append([]float64{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := f.Append([]float64{0, 1, 0, 0}); !errors.Is(err, ErrShape) {
		t.Fatalf("append past capacity: err = %v, want ErrShape", err)
	}
	if _, err := f.Solve([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("short rhs: err = %v, want ErrShape", err)
	}
	if err := f.SolveInto(make([]float64, 3), make([]float64, 4)); !errors.Is(err, ErrShape) {
		t.Fatalf("wrong solution length: err = %v, want ErrShape", err)
	}
	if _, err := f.DeflateLatest([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("short deflate vector: err = %v, want ErrShape", err)
	}
}
