// Package mat provides the dense linear-algebra kernel used by the
// compressive-sensing core: vectors, row-major matrices, QR factorization,
// linear solvers, pseudo-inverse, and ordinary/generalized least squares.
//
// The package is deliberately small and allocation-conscious rather than
// fully general: everything SenseDroid needs reduces to dense operations on
// matrices whose larger dimension is a few thousand at most (field grids and
// measurement bases), so a straightforward O(n^3) dense implementation with
// partial pivoting and Householder QR is both adequate and easy to audit.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape reports operand dimensions that do not conform.
var ErrShape = errors.New("mat: dimension mismatch")

// ErrSingular reports a numerically singular system.
var ErrSingular = errors.New("mat: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// New returns a zero r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewFromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func NewFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.Data[i*len(d)+i] = v
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: (%dx%d)*(%dx%d)", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns a*x for a column vector x.
func MulVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)*vec(%d)", ErrShape, a.Rows, a.Cols, len(x))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// MulTVec returns aᵀ*x, computed without materializing the transpose.
func MulTVec(a *Matrix, x []float64) ([]float64, error) {
	if a.Rows != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)ᵀ*vec(%d)", ErrShape, a.Rows, a.Cols, len(x))
	}
	out := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out[j] += v * xi
		}
	}
	return out, nil
}

// Add returns a+b.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, ErrShape
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out, nil
}

// Sub returns a-b.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, ErrShape
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out, nil
}

// Scale returns s*a.
func Scale(s float64, a *Matrix) *Matrix {
	out := a.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// SelectRows returns the submatrix of a formed from the given row indices,
// in order. Indices may repeat.
func SelectRows(a *Matrix, idx []int) (*Matrix, error) {
	out := New(len(idx), a.Cols)
	for k, i := range idx {
		if i < 0 || i >= a.Rows {
			return nil, fmt.Errorf("mat: row index %d out of range [0,%d)", i, a.Rows)
		}
		copy(out.Data[k*a.Cols:(k+1)*a.Cols], a.Data[i*a.Cols:(i+1)*a.Cols])
	}
	return out, nil
}

// SelectCols returns the submatrix of a formed from the given column
// indices, in order.
func SelectCols(a *Matrix, idx []int) (*Matrix, error) {
	out := New(a.Rows, len(idx))
	for k, j := range idx {
		if j < 0 || j >= a.Cols {
			return nil, fmt.Errorf("mat: col index %d out of range [0,%d)", j, a.Cols)
		}
		for i := 0; i < a.Rows; i++ {
			out.Data[i*len(idx)+k] = a.Data[i*a.Cols+j]
		}
	}
	return out, nil
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest |element| of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Solve solves the square system a*x = b by Gaussian elimination with
// partial pivoting. a and b are not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: Solve needs square matrix, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), n)
	}
	// Augmented working copy.
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(w.Data[col*n+col])
		for i := col + 1; i < n; i++ {
			if v := math.Abs(w.Data[i*n+col]); v > best {
				best, p = v, i
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				w.Data[col*n+j], w.Data[p*n+j] = w.Data[p*n+j], w.Data[col*n+j]
			}
			x[col], x[p] = x[p], x[col]
		}
		piv := w.Data[col*n+col]
		for i := col + 1; i < n; i++ {
			f := w.Data[i*n+col] / piv
			if f == 0 {
				continue
			}
			w.Data[i*n+col] = 0
			for j := col + 1; j < n; j++ {
				w.Data[i*n+j] -= f * w.Data[col*n+j]
			}
			x[i] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= w.Data[i*n+j] * x[j]
		}
		x[i] = s / w.Data[i*n+i]
	}
	return x, nil
}

// Inverse returns a⁻¹ for square a.
func Inverse(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: Inverse needs square matrix", ErrShape)
	}
	out := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := Solve(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Data[i*n+j] = col[i]
		}
	}
	return out, nil
}

// QR holds a thin Householder QR factorization a = Q*R with Q m×n
// orthonormal columns and R n×n upper triangular (requires m >= n).
type QR struct {
	Q *Matrix
	R *Matrix
}

// QRDecompose computes the thin QR factorization of a (Rows >= Cols).
func QRDecompose(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("%w: QR needs rows >= cols, got %dx%d", ErrShape, m, n)
	}
	r := a.Clone()
	// Accumulate Q explicitly by applying the Householder reflectors to I.
	q := Identity(m)
	v := make([]float64, m)
	for k := 0; k < n; k++ {
		// Build Householder vector for column k of r below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm += r.Data[i*n+k] * r.Data[i*n+k]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		alpha := -norm
		if r.Data[k*n+k] < 0 {
			alpha = norm
		}
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			v[i] = r.Data[i*n+k]
			if i == k {
				v[i] -= alpha
			}
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 == 0 {
			continue
		}
		// Apply H = I - 2 v vᵀ / (vᵀv) to r (columns k..n-1).
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i] * r.Data[i*n+j]
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.Data[i*n+j] -= f * v[i]
			}
		}
		// Apply H to q from the right: q = q * H.
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := k; j < m; j++ {
				dot += q.Data[i*m+j] * v[j]
			}
			f := 2 * dot / vnorm2
			for j := k; j < m; j++ {
				q.Data[i*m+j] -= f * v[j]
			}
		}
	}
	// Thin factors.
	qt := New(m, n)
	for i := 0; i < m; i++ {
		copy(qt.Data[i*n:(i+1)*n], q.Data[i*m:i*m+n])
	}
	rt := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rt.Data[i*n+j] = r.Data[i*n+j]
		}
	}
	return &QR{Q: qt, R: rt}, nil
}

// SolveUpperTriangular solves R*x = b for upper-triangular R.
func SolveUpperTriangular(r *Matrix, b []float64) ([]float64, error) {
	n := r.Rows
	if r.Cols != n || len(b) != n {
		return nil, ErrShape
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= r.Data[i*n+j] * x[j]
		}
		d := r.Data[i*n+i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares solves min_x ||a*x - b||₂ via QR (requires a.Rows >= a.Cols
// and full column rank). This implements the paper's ordinary least squares
// (OLS) estimate, Eq. (11). The factorization is the thin column-by-column
// MGS of IncrementalQR — O(m·n²) and O(m·n) memory, versus the O(m²·n)
// Householder path with its m×m accumulated Q — and reports ErrSingular as
// soon as a dependent column is met.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), a.Rows)
	}
	if a.Cols == 0 {
		return []float64{}, nil
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("%w: LeastSquares needs rows >= cols, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	f, err := NewIncrementalQR(a.Rows, a.Cols)
	if err != nil {
		return nil, err
	}
	col := make([]float64, a.Rows)
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			col[i] = a.Data[i*a.Cols+j]
		}
		if err := f.Append(col); err != nil {
			return nil, err
		}
	}
	return f.Solve(b)
}

// WeightedLeastSquares solves the generalized least squares problem
// min_x (a*x-b)ᵀ V⁻¹ (a*x-b) for a noise covariance V, the paper's GLS
// estimate, Eq. (12). V must be symmetric positive definite. The system is
// whitened with the Cholesky factor of V and solved with ordinary QR.
func WeightedLeastSquares(a *Matrix, b []float64, v *Matrix) ([]float64, error) {
	if v.Rows != a.Rows || v.Cols != a.Rows {
		return nil, fmt.Errorf("%w: covariance %dx%d, want %dx%d", ErrShape, v.Rows, v.Cols, a.Rows, a.Rows)
	}
	l, err := Cholesky(v)
	if err != nil {
		return nil, fmt.Errorf("mat: covariance not positive definite: %w", err)
	}
	// Whiten: solve L*Ã = A and L*b̃ = b, then OLS on (Ã, b̃).
	wb, err := solveLowerTriangular(l, b)
	if err != nil {
		return nil, err
	}
	wa := New(a.Rows, a.Cols)
	col := make([]float64, a.Rows)
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			col[i] = a.Data[i*a.Cols+j]
		}
		wc, err := solveLowerTriangular(l, col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < a.Rows; i++ {
			wa.Data[i*a.Cols+j] = wc[i]
		}
	}
	return LeastSquares(wa, wb)
}

// Cholesky returns the lower-triangular L with a = L*Lᵀ for symmetric
// positive-definite a.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, ErrShape
	}
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.Data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.Data[i*n+k] * l.Data[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Data[i*n+i] = math.Sqrt(s)
			} else {
				l.Data[i*n+j] = s / l.Data[j*n+j]
			}
		}
	}
	return l, nil
}

func solveLowerTriangular(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, ErrShape
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.Data[i*n+j] * x[j]
		}
		d := l.Data[i*n+i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse of a full
// column-rank matrix a (Rows >= Cols): (aᵀa)⁻¹aᵀ, computed via QR as
// R⁻¹Qᵀ for numerical robustness. This is the Φ† operator of the paper.
func PseudoInverse(a *Matrix) (*Matrix, error) {
	if a.Rows < a.Cols {
		// Right pseudo-inverse for full row rank: aᵀ(a aᵀ)⁻¹.
		at := a.T()
		aat, err := Mul(a, at)
		if err != nil {
			return nil, err
		}
		inv, err := Inverse(aat)
		if err != nil {
			return nil, err
		}
		return Mul(at, inv)
	}
	qr, err := QRDecompose(a)
	if err != nil {
		return nil, err
	}
	rinv, err := Inverse(qr.R)
	if err != nil {
		return nil, err
	}
	return Mul(rinv, qr.Q.T())
}

// ConditionEstimate estimates the 2-norm condition number of a from the
// extreme diagonal magnitudes of its QR factor R. This is a cheap lower
// bound adequate for the ε_c diagnostics in the CS error decomposition; it
// is exact for diagonal matrices and within a small factor for the
// well-scaled basis submatrices used here.
func ConditionEstimate(a *Matrix) (float64, error) {
	work := a
	if a.Rows < a.Cols {
		work = a.T()
	}
	qr, err := QRDecompose(work)
	if err != nil {
		return 0, err
	}
	n := qr.R.Rows
	mx, mn := 0.0, math.Inf(1)
	for i := 0; i < n; i++ {
		d := math.Abs(qr.R.Data[i*n+i])
		if d > mx {
			mx = d
		}
		if d < mn {
			mn = d
		}
	}
	if mn == 0 {
		return math.Inf(1), nil
	}
	return mx / mn, nil
}
