package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecsAlmostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEqual(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("got %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1)=%v, want 6", m.At(2, 1))
	}
}

func TestNewFromRowsRagged(t *testing.T) {
	if _, err := NewFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want error for ragged rows")
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 4, 4)
	p, err := Mul(Identity(4), a)
	if err != nil {
		t.Fatal(err)
	}
	if !vecsAlmostEqual(p.Data, a.Data, eps) {
		t.Fatal("I*a != a")
	}
}

func TestMulShapes(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("want shape error")
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{5, 6}, {7, 8}})
	p, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	if !vecsAlmostEqual(p.Data, want, eps) {
		t.Fatalf("got %v want %v", p.Data, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 3, 5)
	tt := a.T().T()
	if !vecsAlmostEqual(tt.Data, a.Data, 0) {
		t.Fatal("(aᵀ)ᵀ != a")
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 5, 4)
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got, err := MulVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	xm := New(4, 1)
	copy(xm.Data, x)
	want, _ := Mul(a, xm)
	if !vecsAlmostEqual(got, want.Data, eps) {
		t.Fatal("MulVec disagrees with Mul")
	}
}

func TestMulTVec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 5, 4)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got, err := MulTVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MulVec(a.T(), x)
	if !vecsAlmostEqual(got, want, eps) {
		t.Fatal("MulTVec disagrees with MulVec of transpose")
	}
}

func TestSolveKnown(t *testing.T) {
	a, _ := NewFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsAlmostEqual(x, []float64{1, 3}, eps) {
		t.Fatalf("got %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("want singular error")
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, _ := MulVec(a, want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !vecsAlmostEqual(got, want, 1e-7) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMatrix(rng, 6, 6)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Mul(a, inv)
	id := Identity(6)
	d, _ := Sub(p, id)
	if d.MaxAbs() > 1e-8 {
		t.Fatalf("a*a⁻¹ deviates from I by %v", d.MaxAbs())
	}
}

func TestQROrthonormalAndReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMatrix(rng, 8, 5)
	qr, err := QRDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	// QᵀQ = I.
	qtq, _ := Mul(qr.Q.T(), qr.Q)
	d, _ := Sub(qtq, Identity(5))
	if d.MaxAbs() > 1e-9 {
		t.Fatalf("QᵀQ deviates from I by %v", d.MaxAbs())
	}
	// Q*R = a.
	recon, _ := Mul(qr.Q, qr.R)
	d2, _ := Sub(recon, a)
	if d2.MaxAbs() > 1e-9 {
		t.Fatalf("QR deviates from a by %v", d2.MaxAbs())
	}
	// R upper triangular.
	for i := 0; i < qr.R.Rows; i++ {
		for j := 0; j < i; j++ {
			if qr.R.At(i, j) != 0 {
				t.Fatalf("R(%d,%d)=%v below diagonal", i, j, qr.R.At(i, j))
			}
		}
	}
}

func TestQRWide(t *testing.T) {
	if _, err := QRDecompose(New(2, 5)); err == nil {
		t.Fatal("want error for wide matrix")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined consistent system recovers the exact solution.
	rng := rand.New(rand.NewSource(8))
	a := randMatrix(rng, 10, 4)
	want := []float64{1, -2, 3, 0.5}
	b, _ := MulVec(a, want)
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecsAlmostEqual(got, want, 1e-8) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestLeastSquaresResidualOrthogonal(t *testing.T) {
	// The LS residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(9))
	a := randMatrix(rng, 12, 5)
	b := make([]float64, 12)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := MulVec(a, x)
	r := SubVec(b, ax)
	atr, _ := MulTVec(a, r)
	if NormInf(atr) > 1e-8 {
		t.Fatalf("Aᵀr = %v, want ~0", atr)
	}
}

func TestWeightedLeastSquaresMatchesOLSForIdentityCov(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randMatrix(rng, 9, 3)
	b := make([]float64, 9)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ols, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	gls, err := WeightedLeastSquares(a, b, Identity(9))
	if err != nil {
		t.Fatal(err)
	}
	if !vecsAlmostEqual(ols, gls, 1e-8) {
		t.Fatalf("GLS with V=I %v != OLS %v", gls, ols)
	}
}

func TestWeightedLeastSquaresDownweightsNoisyRows(t *testing.T) {
	// Two duplicated measurement blocks; one block is corrupted. With a
	// covariance that marks the corrupted block as high variance, GLS must
	// land closer to the truth than OLS.
	a := New(8, 2)
	for i := 0; i < 8; i++ {
		a.Set(i, 0, 1)
		a.Set(i, 1, float64(i%4))
	}
	truth := []float64{2, 0.5}
	b, _ := MulVec(a, truth)
	for i := 4; i < 8; i++ {
		b[i] += 3 // gross corruption on second block
	}
	vdiag := make([]float64, 8)
	for i := range vdiag {
		if i < 4 {
			vdiag[i] = 0.01
		} else {
			vdiag[i] = 100
		}
	}
	gls, err := WeightedLeastSquares(a, b, Diag(vdiag))
	if err != nil {
		t.Fatal(err)
	}
	ols, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	eg := Norm2(SubVec(gls, truth))
	eo := Norm2(SubVec(ols, truth))
	if eg >= eo {
		t.Fatalf("GLS error %v not better than OLS error %v", eg, eo)
	}
	if eg > 0.05 {
		t.Fatalf("GLS error %v too large", eg)
	}
}

func TestCholesky(t *testing.T) {
	// Build SPD matrix a = bᵀb + I.
	rng := rand.New(rand.NewSource(11))
	b := randMatrix(rng, 6, 6)
	a, _ := Mul(b.T(), b)
	id := Identity(6)
	a, _ = Add(a, id)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	llt, _ := Mul(l, l.T())
	d, _ := Sub(llt, a)
	if d.MaxAbs() > 1e-9 {
		t.Fatalf("LLᵀ deviates by %v", d.MaxAbs())
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("want error for non-PD matrix")
	}
}

func TestPseudoInverseTall(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMatrix(rng, 7, 3)
	pinv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	// pinv * a = I (3x3) for full column rank.
	p, _ := Mul(pinv, a)
	d, _ := Sub(p, Identity(3))
	if d.MaxAbs() > 1e-8 {
		t.Fatalf("A†A deviates from I by %v", d.MaxAbs())
	}
}

func TestPseudoInverseWide(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMatrix(rng, 3, 7)
	pinv, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	// a * pinv = I (3x3) for full row rank.
	p, _ := Mul(a, pinv)
	d, _ := Sub(p, Identity(3))
	if d.MaxAbs() > 1e-8 {
		t.Fatalf("AA† deviates from I by %v", d.MaxAbs())
	}
}

func TestSelectRowsCols(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	r, err := SelectRows(a, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsAlmostEqual(r.Data, []float64{7, 8, 9, 1, 2, 3}, 0) {
		t.Fatalf("SelectRows got %v", r.Data)
	}
	c, err := SelectCols(a, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecsAlmostEqual(c.Data, []float64{2, 5, 8}, 0) {
		t.Fatalf("SelectCols got %v", c.Data)
	}
	if _, err := SelectRows(a, []int{3}); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := SelectCols(a, []int{-1}); err == nil {
		t.Fatal("want out-of-range error")
	}
}

func TestConditionEstimate(t *testing.T) {
	d := Diag([]float64{10, 1, 0.1})
	c, err := ConditionEstimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 100, 1e-6) {
		t.Fatalf("cond=%v, want 100", c)
	}
	id := Identity(5)
	c, _ = ConditionEstimate(id)
	if !almostEqual(c, 1, 1e-9) {
		t.Fatalf("cond(I)=%v, want 1", c)
	}
}

func TestVectorNorms(t *testing.T) {
	v := []float64{3, -4, 0}
	if !almostEqual(Norm2(v), 5, eps) {
		t.Fatalf("Norm2=%v", Norm2(v))
	}
	if !almostEqual(Norm1(v), 7, eps) {
		t.Fatalf("Norm1=%v", Norm1(v))
	}
	if !almostEqual(NormInf(v), 4, eps) {
		t.Fatalf("NormInf=%v", NormInf(v))
	}
	if Norm0(v, 1e-12) != 2 {
		t.Fatalf("Norm0=%v", Norm0(v, 1e-12))
	}
}

func TestMeanVariance(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if !almostEqual(Mean(v), 2.5, eps) {
		t.Fatalf("Mean=%v", Mean(v))
	}
	if !almostEqual(Variance(v), 1.25, eps) {
		t.Fatalf("Variance=%v", Variance(v))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestArgMaxAbs(t *testing.T) {
	if ArgMaxAbs([]float64{1, -5, 3}) != 1 {
		t.Fatal("ArgMaxAbs wrong")
	}
	if ArgMaxAbs(nil) != -1 {
		t.Fatal("ArgMaxAbs(nil) should be -1")
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ for random small matrices.
func TestPropTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := randMatrix(rng, r, k), randMatrix(rng, k, c)
		ab, _ := Mul(a, b)
		left := ab.T()
		right, _ := Mul(b.T(), a.T())
		return vecsAlmostEqual(left.Data, right.Data, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and Norm2² == Dot(v,v).
func TestPropDotNorm(t *testing.T) {
	f := func(raw []float64) bool {
		// Clamp to finite moderate values.
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			v = append(v, math.Mod(x, 1e6))
		}
		n := Norm2(v)
		return almostEqual(n*n, Dot(v, v), 1e-6*(1+n*n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Norm2 over AddVec.
func TestPropTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		return Norm2(AddVec(a, b)) <= Norm2(a)+Norm2(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Solve(a, a*x) == x for random well-conditioned systems.
func TestPropSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randMatrix(rng, n, n)
		// Diagonally dominate to guarantee conditioning.
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += float64(n) + 1
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b, _ := MulVec(a, x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return vecsAlmostEqual(got, x, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMatrix(rng, 64, 64)
	y := randMatrix(rng, 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQR128x32(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 128, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := QRDecompose(a); err != nil {
			b.Fatal(err)
		}
	}
}
