package mat

import "math"

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of v (sum of absolute values).
func Norm1(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Norm0 returns the number of entries with |v[i]| > tol — the "L0 norm"
// used throughout the compressive-sensing literature (paper Eq. 8).
func Norm0(v []float64, tol float64) int {
	n := 0
	for _, x := range v {
		if math.Abs(x) > tol {
			n++
		}
	}
	return n
}

// AddVec returns a+b element-wise.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a-b element-wise.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: SubVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec returns s*v.
func ScaleVec(s float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = s * x
	}
	return out
}

// CloneVec returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v (0 for empty input).
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// ArgMaxAbs returns the index of the entry with largest absolute value
// (-1 for empty input).
func ArgMaxAbs(v []float64) int {
	idx, best := -1, -1.0
	for i, x := range v {
		if a := math.Abs(x); a > best {
			best, idx = a, i
		}
	}
	return idx
}
