// Package cloud implements the upper tiers of the paper's Fig. 1
// hierarchy: a ZoneEnv mapping each zone's local grid onto the global
// field, a LocalCloud that concatenates the gathers of its NanoCloud
// brokers and reconstructs its zone, and a PublicCloud that divides the
// total measurement budget across zones — uniformly (the Luo-style global
// baseline) or adaptively by local sparsity and criticality (the paper's
// hierarchical scheme) — and assembles the global field from the zone
// reconstructions.
package cloud

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/broker"
	"repro/internal/field"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sensor"
)

// Cloud-tier observability handles (no-ops until obs.Enable). Assembly
// latency comes from the span auto-histogram "span.cloud.assemble.ms".
var (
	obsAssembleRounds = obs.GetCounter("cloud.assemble.rounds")
	obsAssembleZones  = obs.GetCounter("cloud.assemble.zones")
	obsAssembleBudget = obs.GetCounter("cloud.assemble.budget")
	// Zone-degradation view: how many constituent brokers the most recent
	// zone gather lost, and how far under budget it landed after
	// redistribution. Counters accumulate across rounds for rate views.
	obsGatherBrokersFailedLast = obs.GetGauge("cloud.gather.brokers_failed.last")
	obsGatherShortfallLast     = obs.GetGauge("cloud.gather.shortfall.last")
	obsGatherBrokersFailed     = obs.GetCounter("cloud.gather.brokers_failed")
	obsGatherShortfall         = obs.GetCounter("cloud.gather.shortfall")
)

// ZoneEnv exposes one zone of a (live) global field as a node.Environment:
// grid indices are zone-local, physical area spans the zone with the given
// meters-per-cell scale.
type ZoneEnv struct {
	mu     sync.RWMutex
	global *field.Field
	zone   field.Zone
	scale  float64 // meters per grid cell
}

// NewZoneEnv wraps a zone of the global field.
func NewZoneEnv(global *field.Field, zone field.Zone, metersPerCell float64) (*ZoneEnv, error) {
	if global == nil {
		return nil, errors.New("cloud: nil global field")
	}
	if metersPerCell <= 0 {
		metersPerCell = 10
	}
	if zone.Row0+zone.H > global.H || zone.Col0+zone.W > global.W {
		return nil, fmt.Errorf("cloud: zone %d exceeds field bounds", zone.ID)
	}
	return &ZoneEnv{global: global, zone: zone, scale: metersPerCell}, nil
}

// SetGlobal swaps the live global field (e.g. the next time step).
func (z *ZoneEnv) SetGlobal(f *field.Field) {
	z.mu.Lock()
	z.global = f
	z.mu.Unlock()
}

// FieldValue returns the global truth at a zone-local grid index.
func (z *ZoneEnv) FieldValue(kind sensor.Kind, gridIdx int) float64 {
	z.mu.RLock()
	defer z.mu.RUnlock()
	sub := field.Field{W: z.zone.W, H: z.zone.H}
	r, c := sub.Loc(gridIdx)
	return z.global.At(z.zone.Row0+r, z.zone.Col0+c)
}

// GridDims returns the zone grid dimensions.
func (z *ZoneEnv) GridDims() (int, int) { return z.zone.W, z.zone.H }

// AreaDims returns the zone's physical extent in meters.
func (z *ZoneEnv) AreaDims() (float64, float64) {
	return float64(z.zone.W) * z.scale, float64(z.zone.H) * z.scale
}

// Zone returns the wrapped zone.
func (z *ZoneEnv) Zone() field.Zone {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.zone
}

// SetCriticality updates the zone's criticality weight used by adaptive
// budgeting.
func (z *ZoneEnv) SetCriticality(c float64) {
	z.mu.Lock()
	z.zone.Criticality = c
	z.mu.Unlock()
}

var _ node.Environment = (*ZoneEnv)(nil)

// --- LocalCloud -----------------------------------------------------------------

// LocalCloud owns one zone: several NanoCloud brokers whose merged
// telemetry reconstructs the zone subfield.
type LocalCloud struct {
	Env     *ZoneEnv
	Brokers []*broker.Broker
}

// NewLocalCloud groups brokers under a zone environment.
func NewLocalCloud(env *ZoneEnv, brokers ...*broker.Broker) (*LocalCloud, error) {
	if env == nil {
		return nil, errors.New("cloud: nil zone environment")
	}
	if len(brokers) == 0 {
		return nil, errors.New("cloud: local cloud needs at least one broker")
	}
	return &LocalCloud{Env: env, Brokers: brokers}, nil
}

// Gather splits the zone's measurement budget evenly across the LC's
// NanoCloud brokers and concatenates their telemetry, deduplicating grid
// cells ("the nodes … concatenate the results of the NCs for the local
// region"). Infrastructure fallback inside each broker keeps the total on
// budget even when mobile coverage is short.
func (lc *LocalCloud) Gather(kind sensor.Kind, m int) (*broker.GatherResult, error) {
	return lc.GatherContext(context.Background(), kind, m)
}

// GatherContext is Gather with every broker round bounded by ctx, and
// with graceful degradation: a broker whose round fails outright no
// longer aborts the zone — its budget share is redistributed to the
// surviving brokers (and their infra fallback) in a top-up pass, and the
// degradation is reported in the merged result's BrokersFailed and
// Shortfall fields. Each broker gathers with the cells already covered
// by its predecessors excluded, so the merge is duplicate-free and
// on-budget by construction rather than by dropping overlaps after the
// fact. Cancellation still aborts the zone: ctx expiry is the caller's
// decision, not a broker fault.
func (lc *LocalCloud) GatherContext(ctx context.Context, kind sensor.Kind, m int) (*broker.GatherResult, error) {
	if m <= 0 {
		return nil, errors.New("cloud: budget must be positive")
	}
	per := m / len(lc.Brokers)
	extra := m % len(lc.Brokers)
	merged := &broker.GatherResult{}
	seen := map[int]bool{}
	alive := make([]*broker.Broker, 0, len(lc.Brokers))
	for i, br := range lc.Brokers {
		want := per
		if i < extra {
			want++
		}
		if want == 0 {
			alive = append(alive, br)
			continue
		}
		g, err := br.GatherExcludingContext(ctx, kind, want, seen)
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("cloud: broker %s: %w", br.ID, err)
			}
			merged.BrokersFailed++
			continue
		}
		alive = append(alive, br)
		mergeGather(merged, g, seen)
	}
	// Top-up pass: redistribute the shortfall — failed brokers' shares
	// plus any partial (infra-outage) rounds — across the survivors.
	for _, br := range alive {
		if len(merged.Locs) >= m {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cloud: zone top-up abandoned: %w", err)
		}
		g, err := br.GatherExcludingContext(ctx, kind, m-len(merged.Locs), seen)
		if err != nil {
			continue // already counted alive; a failed top-up just leaves the shortfall
		}
		mergeGather(merged, g, seen)
	}
	if len(merged.Locs) == 0 {
		return nil, fmt.Errorf("cloud: zone gather produced no measurements (%d of %d brokers failed)",
			merged.BrokersFailed, len(lc.Brokers))
	}
	merged.Shortfall = m - len(merged.Locs)
	obsGatherBrokersFailedLast.Set(float64(merged.BrokersFailed))
	obsGatherShortfallLast.Set(float64(merged.Shortfall))
	obsGatherBrokersFailed.Add(int64(merged.BrokersFailed))
	obsGatherShortfall.Add(int64(merged.Shortfall))
	return merged, nil
}

// mergeGather appends one broker round to the zone merge. The exclusion
// set passed to GatherExcludingContext makes cross-broker duplicates
// impossible; the seen guard here only defends the invariant.
func mergeGather(merged, g *broker.GatherResult, seen map[int]bool) {
	for j, loc := range g.Locs {
		if seen[loc] {
			continue
		}
		seen[loc] = true
		merged.Locs = append(merged.Locs, loc)
		merged.Values = append(merged.Values, g.Values[j])
		merged.Sigmas = append(merged.Sigmas, g.Sigmas[j])
		if j < len(g.NodeIDs) {
			merged.NodeIDs = append(merged.NodeIDs, g.NodeIDs[j])
		} else {
			merged.NodeIDs = append(merged.NodeIDs, "")
		}
	}
	merged.NodesUsed += g.NodesUsed
	merged.InfraUsed += g.InfraUsed
	merged.Denied += g.Denied
}

// Reconstruct gathers m measurements across the LC's brokers and recovers
// the zone subfield.
func (lc *LocalCloud) Reconstruct(kind sensor.Kind, m int, opts broker.ReconstructOptions) (*broker.Reconstruction, error) {
	return lc.ReconstructContext(context.Background(), kind, m, opts)
}

// ReconstructContext is Reconstruct with the gather rounds bounded by ctx.
func (lc *LocalCloud) ReconstructContext(ctx context.Context, kind sensor.Kind, m int, opts broker.ReconstructOptions) (*broker.Reconstruction, error) {
	g, err := lc.GatherContext(ctx, kind, m)
	if err != nil {
		return nil, err
	}
	return lc.Brokers[0].ReconstructFrom(g, opts)
}

// --- PublicCloud -----------------------------------------------------------------

// PublicCloud assembles the global field from its local clouds.
type PublicCloud struct {
	W, H int
	LCs  []*LocalCloud
}

// NewPublicCloud validates that the LCs tile a w×h field.
func NewPublicCloud(w, h int, lcs []*LocalCloud) (*PublicCloud, error) {
	if len(lcs) == 0 {
		return nil, errors.New("cloud: public cloud needs local clouds")
	}
	covered := 0
	for _, lc := range lcs {
		z := lc.Env.Zone()
		covered += z.W * z.H
	}
	if covered != w*h {
		return nil, fmt.Errorf("cloud: zones cover %d cells of %d", covered, w*h)
	}
	return &PublicCloud{W: w, H: h, LCs: lcs}, nil
}

// BudgetPlan maps zone ID → measurement count.
type BudgetPlan map[int]int

// UniformBudget splits the total budget evenly across zones — the global
// baseline that ignores regional fluctuations.
func (pc *PublicCloud) UniformBudget(total int) BudgetPlan {
	plan := BudgetPlan{}
	per := total / len(pc.LCs)
	extra := total % len(pc.LCs)
	for i, lc := range pc.LCs {
		m := per
		if i < extra {
			m++
		}
		plan[lc.Env.Zone().ID] = m
	}
	return plan
}

// AdaptiveBudget allocates the total budget proportionally to each zone's
// estimated local sparsity (from prior data) times its criticality — the
// paper's "number of random observations from any region should correspond
// to the local spatio-temporal sparsity … multi-resolution compressive
// thresholds based on the size and importance". Every zone keeps a minimum
// of minPerZone measurements, and no zone exceeds its cell count.
func (pc *PublicCloud) AdaptiveBudget(total int, prior *field.Field, energyFrac float64, minPerZone int) (BudgetPlan, error) {
	if prior == nil {
		return nil, errors.New("cloud: adaptive budget needs a prior field")
	}
	if prior.W != pc.W || prior.H != pc.H {
		return nil, fmt.Errorf("cloud: prior field %dx%d, want %dx%d", prior.H, prior.W, pc.H, pc.W)
	}
	if minPerZone < 1 {
		minPerZone = 1
	}
	// The proportional term below distributes total - minPerZone·zones on
	// top of the per-zone floor; if the total cannot even fund the floors
	// that term goes negative and would push zones below their minimum, so
	// reject the plan instead of silently producing one.
	if total < minPerZone*len(pc.LCs) {
		return nil, fmt.Errorf("cloud: total budget %d cannot fund the %d-measurement minimum for %d zones",
			total, minPerZone, len(pc.LCs))
	}
	type zinfo struct {
		id     int
		weight float64
		cells  int
	}
	infos := make([]zinfo, 0, len(pc.LCs))
	sum := 0.0
	for _, lc := range pc.LCs {
		z := lc.Env.Zone()
		sub := field.Extract(prior, z)
		k, err := field.LocalSparsity(sub, energyFrac)
		if err != nil {
			return nil, err
		}
		crit := z.Criticality
		if crit <= 0 {
			crit = 1
		}
		w := (float64(k) + 1) * crit
		infos = append(infos, zinfo{id: z.ID, weight: w, cells: z.W * z.H})
		sum += w
	}
	plan := BudgetPlan{}
	used := 0
	for _, zi := range infos {
		m := minPerZone + int(float64(total-minPerZone*len(infos))*zi.weight/sum)
		if m > zi.cells {
			m = zi.cells
		}
		plan[zi.id] = m
		used += m
	}
	// Distribute rounding remainder to the heaviest zones.
	for used < total {
		grew := false
		for _, zi := range infos {
			if used >= total {
				break
			}
			if plan[zi.id] < zi.cells {
				plan[zi.id]++
				used++
				grew = true
			}
		}
		if !grew {
			break // every zone saturated
		}
	}
	return plan, nil
}

// ZoneReport is one zone's reconstruction outcome.
type ZoneReport struct {
	Zone           field.Zone
	Reconstruction *broker.Reconstruction
	Budget         int
}

// Assemble runs every LC's reconstruction under the budget plan and
// stitches the zone subfields into the global estimate. Zones are
// independent — each LC owns its brokers, nodes, and RNG streams — so their
// reconstructions fan out across min(zones, GOMAXPROCS) workers; results
// are stitched in LC order afterwards, which keeps the assembled field and
// reports identical to a serial run at any GOMAXPROCS.
func (pc *PublicCloud) Assemble(kind sensor.Kind, plan BudgetPlan, opts broker.ReconstructOptions) (*field.Field, map[int]*ZoneReport, error) {
	return pc.AssembleContext(context.Background(), kind, plan, opts)
}

// AssembleContext is Assemble under a caller-supplied context. The first
// zone failure cancels the remaining zones so an assembly does not drain
// the full plan after its outcome is already decided; the reported error
// is still deterministic — the scan below prefers the lowest-index zone
// whose failure was not itself the cancellation — so the caller sees the
// same error at any GOMAXPROCS.
func (pc *PublicCloud) AssembleContext(ctx context.Context, kind sensor.Kind, plan BudgetPlan, opts broker.ReconstructOptions) (*field.Field, map[int]*ZoneReport, error) {
	return pc.AssembleSeededContext(ctx, kind, plan, opts, nil)
}

// AssembleSeededContext is AssembleContext with per-zone warm-start
// seeds: seeds maps zone ID → the support recovered for that zone in a
// previous assembly (ZoneReport.Reconstruction.Result.Support). Each
// zone's decode warm-starts from its own seed; zones absent from the map
// decode cold. This is the streaming pipeline's window-to-window fast
// path — on a slowly-varying field an unchanged zone support skips the
// greedy search entirely. The seeds map is read-only here, so one map can
// safely serve the concurrent zone fan-out.
func (pc *PublicCloud) AssembleSeededContext(ctx context.Context, kind sensor.Kind, plan BudgetPlan, opts broker.ReconstructOptions, seeds map[int][]int) (*field.Field, map[int]*ZoneReport, error) {
	sp := obs.StartSpan("cloud.assemble")
	sp.Label("zones", fmt.Sprint(len(pc.LCs)))
	defer sp.Finish()
	zctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type zoneOut struct {
		rec *broker.Reconstruction
		m   int
		err error
	}
	outs := make([]zoneOut, len(pc.LCs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pc.LCs) {
		workers = len(pc.LCs)
	}
	reconstruct := func(i int) {
		lc := pc.LCs[i]
		z := lc.Env.Zone()
		m, ok := plan[z.ID]
		if !ok || m <= 0 {
			outs[i].err = fmt.Errorf("cloud: no budget for zone %d", z.ID)
			cancel()
			return
		}
		zOpts := opts
		zOpts.SeedSupport = seeds[z.ID] // nil for unseeded zones → cold decode
		rec, err := lc.ReconstructContext(zctx, kind, m, zOpts)
		if err != nil {
			outs[i].err = fmt.Errorf("cloud: zone %d: %w", z.ID, err)
			cancel()
			return
		}
		outs[i] = zoneOut{rec: rec, m: m}
	}
	if workers <= 1 {
		for i := range pc.LCs {
			reconstruct(i)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					reconstruct(i)
				}
			}()
		}
		for i := range pc.LCs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	// Deterministic error choice: the first zone (in LC order) that failed
	// for a reason of its own beats any zone that merely observed the
	// cancellation triggered by a sibling.
	var cancelled error
	for i := range outs {
		if err := outs[i].err; err != nil {
			if errors.Is(err, context.Canceled) && ctx.Err() == nil {
				if cancelled == nil {
					cancelled = err
				}
				continue
			}
			return nil, nil, err
		}
	}
	if cancelled != nil {
		return nil, nil, cancelled
	}
	global := field.New(pc.W, pc.H)
	reports := make(map[int]*ZoneReport, len(pc.LCs))
	for i, lc := range pc.LCs {
		z := lc.Env.Zone()
		if err := field.Insert(global, z, outs[i].rec.Field); err != nil {
			return nil, nil, err
		}
		reports[z.ID] = &ZoneReport{Zone: z, Reconstruction: outs[i].rec, Budget: outs[i].m}
		obsAssembleZones.Inc()
		obsAssembleBudget.Add(int64(outs[i].m))
	}
	obsAssembleRounds.Inc()
	return global, reports, nil
}
