package cloud

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/bus"
	"repro/internal/cs"
	"repro/internal/field"
	"repro/internal/mobility"
	"repro/internal/node"
	"repro/internal/sensor"
)

func TestZoneEnvMapping(t *testing.T) {
	global := field.New(8, 8)
	for k := range global.Data {
		global.Data[k] = float64(k)
	}
	zones, _ := field.Partition(global, 2, 2)
	// Zone 3 is the bottom-right 4×4 block (Row0=4, Col0=4).
	env, err := NewZoneEnv(global, zones[3], 10)
	if err != nil {
		t.Fatal(err)
	}
	w, h := env.GridDims()
	if w != 4 || h != 4 {
		t.Fatalf("zone dims %dx%d", w, h)
	}
	aw, ah := env.AreaDims()
	if aw != 40 || ah != 40 {
		t.Fatalf("area dims %vx%v", aw, ah)
	}
	// Zone-local (0,0) is global (4,4).
	if got := env.FieldValue(sensor.Temperature, 0); got != global.At(4, 4) {
		t.Fatalf("zone-local origin %v, want %v", got, global.At(4, 4))
	}
	// Zone-local (r=1,c=2) → local idx 2*4+1=9 → global (5,6).
	if got := env.FieldValue(sensor.Temperature, 9); got != global.At(5, 6) {
		t.Fatalf("zone-local (1,2) = %v, want %v", got, global.At(5, 6))
	}
}

func TestZoneEnvValidation(t *testing.T) {
	if _, err := NewZoneEnv(nil, field.Zone{}, 10); err == nil {
		t.Fatal("want nil-field error")
	}
	f := field.New(4, 4)
	if _, err := NewZoneEnv(f, field.Zone{Row0: 2, Col0: 2, W: 4, H: 4}, 10); err == nil {
		t.Fatal("want bounds error")
	}
}

func TestZoneEnvSetGlobalAndCriticality(t *testing.T) {
	f1 := field.New(4, 4)
	f2 := field.New(4, 4)
	f2.Data[0] = 99
	env, _ := NewZoneEnv(f1, field.Zone{W: 4, H: 4, Criticality: 1}, 10)
	env.SetGlobal(f2)
	if env.FieldValue(sensor.Temperature, 0) != 99 {
		t.Fatal("SetGlobal did not take")
	}
	env.SetCriticality(5)
	if env.Zone().Criticality != 5 {
		t.Fatal("SetCriticality did not take")
	}
}

// buildHierarchy wires a full two-zone deployment over the given truth.
func buildHierarchy(t *testing.T, truth *field.Field, nodesPerNC int, seed int64) *PublicCloud {
	t.Helper()
	zones, err := field.Partition(truth, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var lcs []*LocalCloud
	for _, z := range zones {
		env, err := NewZoneEnv(truth, z, 10)
		if err != nil {
			t.Fatal(err)
		}
		b := bus.New()
		brID := fmt.Sprintf("nc%d", z.ID)
		br, err := broker.New(broker.Config{ID: brID, Seed: rng.Int63(), Timeout: 2 * time.Second}, b, env)
		if err != nil {
			t.Fatal(err)
		}
		aw, ah := env.AreaDims()
		for i := 0; i < nodesPerNC; i++ {
			mob, err := mobility.NewRandomWaypoint(rand.New(rand.NewSource(rng.Int63())), aw, ah, 1, 3, 1)
			if err != nil {
				t.Fatal(err)
			}
			nd, err := node.New(node.Config{
				ID: fmt.Sprintf("%s/n%d", brID, i), Seed: rng.Int63(),
			}, env, mob)
			if err != nil {
				t.Fatal(err)
			}
			if err := nd.AttachBus(b, brID); err != nil {
				t.Fatal(err)
			}
			if err := br.Register(nd.ID); err != nil {
				t.Fatal(err)
			}
			nodeRef := nd
			t.Cleanup(nodeRef.Detach)
		}
		busRef := b
		t.Cleanup(busRef.Close)
		lc, err := NewLocalCloud(env, br)
		if err != nil {
			t.Fatal(err)
		}
		lcs = append(lcs, lc)
	}
	pc, err := NewPublicCloud(truth.W, truth.H, lcs)
	if err != nil {
		t.Fatal(err)
	}
	return pc
}

func TestLocalCloudGatherMergesBrokers(t *testing.T) {
	truth := field.GenSmoothGradient(8, 8, 20, 5, 2)
	env, _ := NewZoneEnv(truth, field.Zone{W: 8, H: 8, Criticality: 1}, 10)
	b1, b2 := bus.New(), bus.New()
	defer b1.Close()
	defer b2.Close()
	br1, _ := broker.New(broker.Config{ID: "a", Seed: 1}, b1, env)
	br2, _ := broker.New(broker.Config{ID: "b", Seed: 2}, b2, env)
	lc, err := NewLocalCloud(env, br1, br2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := lc.Gather(sensor.Temperature, 21)
	if err != nil {
		t.Fatal(err)
	}
	// All-infra gather (no nodes): budget split 11/10 but duplicates are
	// possible across brokers, so expect close to 21 distinct cells.
	if len(g.Locs) < 15 || len(g.Locs) > 21 {
		t.Fatalf("merged gather %d cells", len(g.Locs))
	}
	seen := map[int]bool{}
	for _, l := range g.Locs {
		if seen[l] {
			t.Fatal("merged gather contains duplicates")
		}
		seen[l] = true
	}
	if _, err := lc.Gather(sensor.Temperature, 0); err == nil {
		t.Fatal("want budget error")
	}
}

// TestLocalCloudGatherOverlappingCoverageStaysOnBudget is the
// regression test for the under-budget merge bug: with two brokers
// covering the same zone, cross-broker duplicate cells used to be
// dropped without replacement, so the merged round came in under m
// whenever the brokers' random coverage overlapped — contradicting the
// "keeps the total on budget" contract. The exclusion-based merge now
// hands each broker the cells already covered, so the round is exact.
func TestLocalCloudGatherOverlappingCoverageStaysOnBudget(t *testing.T) {
	truth := field.GenSmoothGradient(8, 8, 20, 5, 2)
	env, _ := NewZoneEnv(truth, field.Zone{W: 8, H: 8, Criticality: 1}, 10)
	b1, b2 := bus.New(), bus.New()
	defer b1.Close()
	defer b2.Close()
	br1, _ := broker.New(broker.Config{ID: "a", Seed: 7}, b1, env)
	br2, _ := broker.New(broker.Config{ID: "b", Seed: 8}, b2, env)
	lc, err := NewLocalCloud(env, br1, br2)
	if err != nil {
		t.Fatal(err)
	}
	// All-infra gather over 64 cells, 20 per broker: the two independent
	// random samples overlap with near-certainty, which is exactly the
	// case the old merge lost measurements on.
	g, err := lc.Gather(sensor.Temperature, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Locs) != 40 {
		t.Fatalf("merged gather %d cells, want the full budget of 40", len(g.Locs))
	}
	if g.Shortfall != 0 || g.BrokersFailed != 0 {
		t.Fatalf("healthy round reported degradation: %+v", g)
	}
	seen := map[int]bool{}
	for _, l := range g.Locs {
		if seen[l] {
			t.Fatal("merged gather contains duplicates")
		}
		seen[l] = true
	}
}

// TestLocalCloudGatherDegradesOnBrokerFailure pins the degradation
// contract: a broker that fails outright (here: regional infra outage
// with zero reachable nodes) no longer aborts the zone; its share is
// redistributed to the survivor and the loss is reported.
func TestLocalCloudGatherDegradesOnBrokerFailure(t *testing.T) {
	truth := field.GenSmoothGradient(8, 8, 20, 5, 2)
	env, _ := NewZoneEnv(truth, field.Zone{W: 8, H: 8, Criticality: 1}, 10)
	b1, b2 := bus.New(), bus.New()
	defer b1.Close()
	defer b2.Close()
	br1, _ := broker.New(broker.Config{ID: "a", Seed: 9}, b1, env)
	br2, _ := broker.New(broker.Config{ID: "b", Seed: 10}, b2, env)
	br2.SetInfraEnabled(false) // no nodes either: br2's round has nothing to give
	lc, err := NewLocalCloud(env, br1, br2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := lc.Gather(sensor.Temperature, 20)
	if err != nil {
		t.Fatalf("zone gather must survive a failed broker: %v", err)
	}
	if g.BrokersFailed != 1 {
		t.Fatalf("BrokersFailed = %d, want 1", g.BrokersFailed)
	}
	if len(g.Locs) != 20 || g.Shortfall != 0 {
		t.Fatalf("survivor did not absorb the failed broker's share: %d cells, shortfall %d",
			len(g.Locs), g.Shortfall)
	}
	// With every broker down the zone still fails — degradation has a floor.
	br1.SetInfraEnabled(false)
	if _, err := lc.Gather(sensor.Temperature, 20); err == nil {
		t.Fatal("want error when no broker can gather anything")
	}
}

func TestNewLocalCloudValidation(t *testing.T) {
	if _, err := NewLocalCloud(nil); err == nil {
		t.Fatal("want env error")
	}
	env, _ := NewZoneEnv(field.New(4, 4), field.Zone{W: 4, H: 4}, 10)
	if _, err := NewLocalCloud(env); err == nil {
		t.Fatal("want brokers error")
	}
}

func TestNewPublicCloudValidation(t *testing.T) {
	if _, err := NewPublicCloud(8, 8, nil); err == nil {
		t.Fatal("want empty error")
	}
	truth := field.New(8, 8)
	env, _ := NewZoneEnv(truth, field.Zone{W: 4, H: 4}, 10)
	b := bus.New()
	defer b.Close()
	br, _ := broker.New(broker.Config{ID: "x", Seed: 1}, b, env)
	lc, _ := NewLocalCloud(env, br)
	if _, err := NewPublicCloud(8, 8, []*LocalCloud{lc}); err == nil {
		t.Fatal("want coverage error")
	}
}

func TestUniformBudget(t *testing.T) {
	truth := field.GenSmoothGradient(8, 8, 20, 5, 2)
	pc := buildHierarchy(t, truth, 0, 1)
	plan := pc.UniformBudget(21)
	total := 0
	for _, m := range plan {
		total += m
		if m < 10 || m > 11 {
			t.Fatalf("uneven split %v", plan)
		}
	}
	if total != 21 {
		t.Fatalf("plan total %d", total)
	}
}

func TestAdaptiveBudgetFavorsBusyZone(t *testing.T) {
	// Left zone flat, right zone has a plume: the right zone must receive
	// a larger share of the budget.
	truth := field.GenPlumes(16, 8, 10, []field.Plume{{Row: 4, Col: 12, Sigma: 1.5, Amplitude: 40}})
	pc := buildHierarchy(t, truth, 0, 2)
	plan, err := pc.AdaptiveBudget(40, truth, 0.98, 4)
	if err != nil {
		t.Fatal(err)
	}
	left, right := plan[0], plan[1]
	if right <= left {
		t.Fatalf("adaptive plan left=%d right=%d; busy zone should win", left, right)
	}
	total := 0
	for _, m := range plan {
		total += m
	}
	if total != 40 {
		t.Fatalf("plan total %d, want 40", total)
	}
}

func TestAdaptiveBudgetCriticalityWeighting(t *testing.T) {
	truth := field.GenSmoothGradient(16, 8, 20, 5, 2) // symmetric zones
	pc := buildHierarchy(t, truth, 0, 3)
	pc.LCs[0].Env.SetCriticality(4)
	plan, err := pc.AdaptiveBudget(40, truth, 0.98, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan[0] <= plan[1] {
		t.Fatalf("critical zone got %d <= %d", plan[0], plan[1])
	}
}

func TestAdaptiveBudgetValidation(t *testing.T) {
	truth := field.GenSmoothGradient(16, 8, 20, 5, 2)
	pc := buildHierarchy(t, truth, 0, 4)
	if _, err := pc.AdaptiveBudget(40, nil, 0.98, 4); err == nil {
		t.Fatal("want prior error")
	}
	if _, err := pc.AdaptiveBudget(40, field.New(4, 4), 0.98, 4); err == nil {
		t.Fatal("want shape error")
	}
}

// TestAdaptiveBudgetRejectsUnderfundedTotal is the regression test for
// the negative proportional term: with total below minPerZone·zones the
// old code computed float64(total - minPerZone*len(infos)) < 0 and
// produced per-zone budgets under the minimum instead of erroring.
func TestAdaptiveBudgetRejectsUnderfundedTotal(t *testing.T) {
	truth := field.GenSmoothGradient(16, 8, 20, 5, 2)
	pc := buildHierarchy(t, truth, 0, 7)
	if _, err := pc.AdaptiveBudget(5, truth, 0.98, 4); err == nil {
		t.Fatal("want error: 5 measurements cannot fund a 4-per-zone minimum across 2 zones")
	}
	// The boundary case — exactly the floors — is a valid plan.
	plan, err := pc.AdaptiveBudget(8, truth, 0.98, 4)
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range plan {
		if m < 4 {
			t.Fatalf("zone %d got %d, below the 4-measurement minimum", id, m)
		}
	}
}

func TestAssembleReconstructsGlobalField(t *testing.T) {
	truth := field.GenPlumes(16, 8, 15, []field.Plume{
		{Row: 3, Col: 4, Sigma: 2, Amplitude: 25},
		{Row: 5, Col: 12, Sigma: 2.5, Amplitude: 35},
	})
	pc := buildHierarchy(t, truth, 4, 5)
	plan := pc.UniformBudget(56)
	global, reports, err := pc.Assemble(sensor.Temperature, plan, broker.ReconstructOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports %d", len(reports))
	}
	if nmse := cs.NMSE(truth.Data, global.Data); nmse > 0.02 {
		t.Fatalf("assembled NMSE %v", nmse)
	}
	for id, rep := range reports {
		if rep.Budget != plan[id] {
			t.Fatalf("zone %d budget mismatch", id)
		}
	}
}

func TestAssembleMissingBudget(t *testing.T) {
	truth := field.GenSmoothGradient(16, 8, 20, 5, 2)
	pc := buildHierarchy(t, truth, 0, 6)
	if _, _, err := pc.Assemble(sensor.Temperature, BudgetPlan{0: 10}, broker.ReconstructOptions{}); err == nil {
		t.Fatal("want missing-budget error")
	}
}
