// Package schedule implements the sensor-scheduling and adaptive-sampling
// strategies the paper lists as the energy-efficiency research directions
// (§5): a variance-driven adaptive sampler that backs off when the signal
// is quiet and accelerates when it moves, and a battery-aware load
// balancer that rotates sensing duty across redundant nodes.
package schedule

import (
	"errors"
	"math"
)

// AdaptiveSampler chooses the next sampling interval from observed signal
// dynamics: additive-increase of the interval while the recent window is
// quiet, multiplicative-decrease the moment it becomes active (the AIMD
// asymmetry reacts fast to events and saves energy slowly, never the
// reverse).
type AdaptiveSampler struct {
	MinInterval float64 // fastest sampling period, seconds
	MaxInterval float64 // slowest sampling period, seconds
	Threshold   float64 // window variance above this counts as "active"
	Increase    float64 // seconds added per quiet window (default Min/2)
	Decrease    float64 // multiplicative factor on activity (default 0.25)

	interval float64
}

// NewAdaptiveSampler validates and builds a sampler starting at the
// fastest rate (conservative: it only slows down after observing quiet).
func NewAdaptiveSampler(minInterval, maxInterval, threshold float64) (*AdaptiveSampler, error) {
	if minInterval <= 0 || maxInterval < minInterval {
		return nil, errors.New("schedule: need 0 < min <= max interval")
	}
	if threshold <= 0 {
		return nil, errors.New("schedule: variance threshold must be positive")
	}
	return &AdaptiveSampler{
		MinInterval: minInterval, MaxInterval: maxInterval, Threshold: threshold,
		Increase: minInterval / 2, Decrease: 0.25,
		interval: minInterval,
	}, nil
}

// Interval returns the current sampling period.
func (s *AdaptiveSampler) Interval() float64 { return s.interval }

// Observe feeds the variance of the most recent sample window and returns
// the next sampling interval.
func (s *AdaptiveSampler) Observe(windowVariance float64) float64 {
	if windowVariance > s.Threshold {
		s.interval *= s.Decrease
		if s.interval < s.MinInterval {
			s.interval = s.MinInterval
		}
	} else {
		s.interval += s.Increase
		if s.interval > s.MaxInterval {
			s.interval = s.MaxInterval
		}
	}
	return s.interval
}

// Reset returns the sampler to the fastest rate.
func (s *AdaptiveSampler) Reset() { s.interval = s.MinInterval }

// --- Battery-aware duty rotation -------------------------------------------------

// LoadBalancer rotates sensing duty across redundant nodes so no single
// battery is drained — the "sensor scheduling" knob. Selection prefers
// the largest remaining battery fraction, breaking ties by least-recently
// used.
type LoadBalancer struct {
	lastUsed []int
	round    int
}

// NewLoadBalancer tracks n nodes.
func NewLoadBalancer(n int) (*LoadBalancer, error) {
	if n <= 0 {
		return nil, errors.New("schedule: need at least one node")
	}
	lu := make([]int, n)
	for i := range lu {
		lu[i] = -1
	}
	return &LoadBalancer{lastUsed: lu}, nil
}

// Pick selects the node to sense this round given per-node battery
// fractions (0..1). Depleted nodes (fraction <= 0) are skipped; -1 is
// returned if no node can sense.
func (lb *LoadBalancer) Pick(batteryFrac []float64) int {
	if len(batteryFrac) != len(lb.lastUsed) {
		return -1
	}
	best := -1
	for i, b := range batteryFrac {
		if b <= 0 {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		if b > batteryFrac[best]+1e-12 {
			best = i
		} else if math.Abs(b-batteryFrac[best]) <= 1e-12 && lb.lastUsed[i] < lb.lastUsed[best] {
			best = i
		}
	}
	if best >= 0 {
		lb.lastUsed[best] = lb.round
	}
	lb.round++
	return best
}

// PickK selects k distinct nodes by repeated Pick (for M-of-N rounds).
func (lb *LoadBalancer) PickK(batteryFrac []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	frac := make([]float64, len(batteryFrac))
	copy(frac, batteryFrac)
	var out []int
	for len(out) < k {
		i := lb.Pick(frac)
		if i < 0 {
			break
		}
		out = append(out, i)
		frac[i] = 0 // exclude for the rest of this round
	}
	return out
}
