package schedule

import (
	"math"
	"testing"
)

func TestNewAdaptiveSamplerValidation(t *testing.T) {
	if _, err := NewAdaptiveSampler(0, 10, 1); err == nil {
		t.Fatal("want min error")
	}
	if _, err := NewAdaptiveSampler(10, 5, 1); err == nil {
		t.Fatal("want max<min error")
	}
	if _, err := NewAdaptiveSampler(1, 10, 0); err == nil {
		t.Fatal("want threshold error")
	}
}

func TestAdaptiveSamplerBacksOffWhenQuiet(t *testing.T) {
	s, err := NewAdaptiveSampler(1, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Interval() != 1 {
		t.Fatal("should start at the fastest rate")
	}
	prev := s.Interval()
	for i := 0; i < 200; i++ {
		next := s.Observe(0.01) // quiet
		if next < prev {
			t.Fatal("interval decreased on quiet input")
		}
		prev = next
	}
	if s.Interval() != 60 {
		t.Fatalf("interval %v, want saturation at 60", s.Interval())
	}
}

func TestAdaptiveSamplerReactsFastToActivity(t *testing.T) {
	s, _ := NewAdaptiveSampler(1, 60, 0.5)
	for i := 0; i < 200; i++ {
		s.Observe(0.01)
	}
	// One active window must cut the interval multiplicatively.
	after := s.Observe(5.0)
	if after > 60*0.25+1e-9 {
		t.Fatalf("interval %v after activity, want <= 15", after)
	}
	// A couple more active windows pin it at the minimum.
	s.Observe(5.0)
	s.Observe(5.0)
	if s.Interval() != 1 {
		t.Fatalf("interval %v, want clamp at min", s.Interval())
	}
}

func TestAdaptiveSamplerAIMDAsymmetry(t *testing.T) {
	s, _ := NewAdaptiveSampler(1, 60, 0.5)
	// Count rounds to slow from min to max vs to speed from max to min.
	up := 0
	for s.Interval() < 60 {
		s.Observe(0)
		up++
		if up > 10000 {
			t.Fatal("never saturated")
		}
	}
	down := 0
	for s.Interval() > 1 {
		s.Observe(10)
		down++
	}
	if down >= up {
		t.Fatalf("reaction (%d rounds) should be faster than backoff (%d rounds)", down, up)
	}
}

func TestAdaptiveSamplerReset(t *testing.T) {
	s, _ := NewAdaptiveSampler(2, 30, 0.5)
	for i := 0; i < 50; i++ {
		s.Observe(0)
	}
	s.Reset()
	if s.Interval() != 2 {
		t.Fatal("reset failed")
	}
}

func TestLoadBalancerPicksFullestBattery(t *testing.T) {
	lb, err := NewLoadBalancer(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := lb.Pick([]float64{0.2, 0.9, 0.5}); got != 1 {
		t.Fatalf("picked %d, want 1", got)
	}
	// Depleted nodes are skipped.
	if got := lb.Pick([]float64{0, 0, 0.1}); got != 2 {
		t.Fatalf("picked %d, want 2", got)
	}
	if got := lb.Pick([]float64{0, 0, 0}); got != -1 {
		t.Fatalf("picked %d from depleted fleet, want -1", got)
	}
	if got := lb.Pick([]float64{1}); got != -1 {
		t.Fatal("length mismatch should return -1")
	}
}

func TestLoadBalancerTieBreaksLRU(t *testing.T) {
	lb, _ := NewLoadBalancer(2)
	equal := []float64{0.5, 0.5}
	first := lb.Pick(equal)
	second := lb.Pick(equal)
	if first == second {
		t.Fatalf("equal batteries should rotate, got %d twice", first)
	}
}

func TestLoadBalancerRotationEqualizesLoad(t *testing.T) {
	// Simulate draining: each pick costs 0.1 battery; over many rounds the
	// pick counts must equalize.
	lb, _ := NewLoadBalancer(4)
	bat := []float64{1, 1, 1, 1}
	counts := make([]int, 4)
	for round := 0; round < 36; round++ {
		i := lb.Pick(bat)
		if i < 0 {
			break
		}
		counts[i]++
		bat[i] -= 0.1
	}
	for i, c := range counts {
		if math.Abs(float64(c)-9) > 1 {
			t.Fatalf("node %d picked %d times, want ~9 (%v)", i, c, counts)
		}
	}
}

func TestPickK(t *testing.T) {
	lb, _ := NewLoadBalancer(5)
	picks := lb.PickK([]float64{0.9, 0.1, 0.8, 0, 0.7}, 3)
	if len(picks) != 3 {
		t.Fatalf("picks %v", picks)
	}
	seen := map[int]bool{}
	for _, p := range picks {
		if seen[p] || p == 3 {
			t.Fatalf("invalid picks %v", picks)
		}
		seen[p] = true
	}
	// Asking for more than available returns what exists.
	lb2, _ := NewLoadBalancer(2)
	if got := lb2.PickK([]float64{0.5, 0}, 5); len(got) != 1 {
		t.Fatalf("PickK over-ask got %v", got)
	}
	if lb2.PickK([]float64{1, 1}, 0) != nil {
		t.Fatal("PickK(0) should be nil")
	}
	if _, err := NewLoadBalancer(0); err == nil {
		t.Fatal("want size error")
	}
}
