package snapshot

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/sensor"
	"repro/internal/store"
	"repro/internal/testutil"
)

func mkSnap(step int) *Snapshot {
	f := field.New(4, 4)
	f.Data[0] = float64(step)
	return &Snapshot{Step: step, T: float64(step), Kind: sensor.Temperature, Field: f}
}

func TestPublishAssignsMonotonicVersions(t *testing.T) {
	r := NewRegistry(8)
	if r.Latest() != nil {
		t.Fatal("Latest before first publish should be nil")
	}
	for i := 1; i <= 5; i++ {
		v, err := r.Publish(mkSnap(i))
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i) {
			t.Fatalf("publish %d assigned version %d", i, v)
		}
	}
	got := r.Latest()
	if got == nil || got.Version != 5 || got.Step != 5 {
		t.Fatalf("Latest = %+v, want version 5 / step 5", got)
	}
}

func TestPublishRejectsNil(t *testing.T) {
	r := NewRegistry(2)
	if _, err := r.Publish(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := r.Publish(&Snapshot{}); err == nil {
		t.Fatal("nil field accepted")
	}
}

// Retention must evict strictly oldest-first and keep exactly the retain
// most recent versions, with Latest always the newest.
func TestRetentionEvictionOrdering(t *testing.T) {
	r := NewRegistry(4)
	for i := 1; i <= 10; i++ {
		if _, err := r.Publish(mkSnap(i)); err != nil {
			t.Fatal(err)
		}
	}
	hist := r.History()
	if len(hist) != 4 {
		t.Fatalf("retained %d snapshots, want 4", len(hist))
	}
	for i, s := range hist {
		want := uint64(7 + i)
		if s.Version != want {
			t.Fatalf("history[%d].Version = %d, want %d (oldest-first, oldest evicted first)", i, s.Version, want)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if got := r.Latest().Version; got != 10 {
		t.Fatalf("Latest.Version = %d, want 10", got)
	}
}

func TestSubscribersRunOnEveryPublish(t *testing.T) {
	r := NewRegistry(2)
	var got []uint64
	r.Subscribe(func(s *Snapshot) { got = append(got, s.Version) })
	for i := 1; i <= 3; i++ {
		if _, err := r.Publish(mkSnap(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("subscriber saw versions %v, want [1 2 3]", got)
	}
}

func TestBindStoreMirrorsHistory(t *testing.T) {
	r := NewRegistry(2)
	st := store.New(16)
	if err := r.BindStore(st, "recon.history"); err != nil {
		t.Fatal(err)
	}
	if err := r.BindStore(nil, "x"); err == nil {
		t.Fatal("nil store accepted")
	}
	s := mkSnap(1)
	s.NMSE = 0.25
	s.Measurements = 33
	if _, err := r.Publish(s); err != nil {
		t.Fatal(err)
	}
	rec, err := st.Latest("recon.history")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Values[0] != 1 || rec.Values[1] != 0.25 || rec.Values[2] != 33 {
		t.Fatalf("mirrored record = %+v", rec)
	}
}

func TestWaitContextReturnsOnPublishAndCancel(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	r := NewRegistry(2)
	if _, err := r.Publish(mkSnap(1)); err != nil {
		t.Fatal(err)
	}
	// Already satisfied: returns without blocking.
	s, err := r.WaitContext(context.Background(), 1)
	if err != nil || s.Version != 1 {
		t.Fatalf("WaitContext(1) = %v, %v", s, err)
	}
	done := make(chan *Snapshot, 1)
	go func() {
		got, werr := r.Wait(3)
		if werr != nil {
			t.Error(werr)
		}
		done <- got
	}()
	time.Sleep(5 * time.Millisecond)
	if _, err := r.Publish(mkSnap(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(mkSnap(3)); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got.Version < 3 {
			t.Fatalf("Wait(3) returned version %d", got.Version)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait(3) never woke after version 3 published")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := r.WaitContext(ctx, 99); err == nil {
		t.Fatal("WaitContext survived context expiry")
	}
}

// Lock-free read path under concurrent publishes: readers must always see
// either nil or a fully-formed snapshot whose field matches its step, and
// versions observed by a single reader must be non-decreasing.
func TestLatestIsConsistentUnderConcurrentPublish(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	r := NewRegistry(4)
	const writers, readers, perWriter = 2, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				if _, err := r.Publish(mkSnap(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for i := 0; i < 5000; i++ {
				s := r.Latest()
				if s == nil {
					continue
				}
				if s.Version < last {
					t.Errorf("version went backwards: %d after %d", s.Version, last)
					return
				}
				last = s.Version
				if s.Field.Data[0] != float64(s.Step) {
					t.Errorf("torn snapshot: step %d field %v", s.Step, s.Field.Data[0])
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Latest().Version; got != writers*perWriter {
		t.Fatalf("final version %d, want %d", got, writers*perWriter)
	}
}
