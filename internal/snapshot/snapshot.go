// Package snapshot holds versioned, immutable reconstructed-field
// snapshots and publishes them through an atomic-pointer swap: the query
// serving layer reads the latest snapshot lock-free (a single atomic
// load on the hot path, no mutex, no copy), while the streaming pipeline
// publishes a fresh snapshot per reconstruction window. A bounded ring
// of recent snapshots is retained for history, and each publish can be
// mirrored into internal/store so dashboards query reconstruction
// history with the ordinary time-series API.
package snapshot

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/sensor"
	"repro/internal/store"
)

// Snapshot observability handles (no-ops until obs.Enable).
var (
	obsPublished = obs.GetCounter("snapshot.published")
	obsEvicted   = obs.GetCounter("snapshot.evicted")
	obsVersion   = obs.GetGauge("snapshot.version.latest")
	obsRetained  = obs.GetGauge("snapshot.retained")
)

// Snapshot is one immutable reconstructed-field version. Everything in it
// is frozen at publish time: readers on the serving path hold the pointer
// without synchronization, so neither the publisher nor any consumer may
// mutate a snapshot after Publish. Version 0 never exists — the first
// published snapshot is version 1.
type Snapshot struct {
	Version uint64      // assigned by Publish, strictly increasing from 1
	Step    int         // pipeline window index that produced it
	T       float64     // simulation time of the window
	Kind    sensor.Kind // field quantity
	Field   *field.Field

	// Supports maps zone ID → the support recovered for that zone, in
	// admission order — the warm-start seed for the next window's decode.
	Supports map[int][]int

	// Quality/degradation accounting for the window that produced this
	// snapshot. NMSE is against the live truth when known, else -1.
	NMSE          float64
	Measurements  int
	BrokersFailed int
	Shortfall     int
}

// ErrNoSnapshot reports a read before the first publish.
var ErrNoSnapshot = errors.New("snapshot: nothing published yet")

// Registry is the snapshot store: one atomically swapped "latest" pointer
// plus a bounded retention ring. Reads are lock-free; publishes serialize
// on a writer mutex that the read path never touches.
type Registry struct {
	cur atomic.Pointer[Snapshot]

	mu      sync.Mutex
	version uint64           // guarded by mu
	hist    []*Snapshot      // guarded by mu; oldest first, len ≤ retain
	retain  int              // immutable after New
	notify  chan struct{}    // guarded by mu (swapped); closed on publish
	subs    []func(*Snapshot)
	st      *store.Store // optional history mirror; set before first Publish
	series  string
}

// NewRegistry creates a registry retaining the last retain snapshots
// (minimum 1: the latest snapshot is always retained).
func NewRegistry(retain int) *Registry {
	if retain < 1 {
		retain = 1
	}
	return &Registry{retain: retain, notify: make(chan struct{})}
}

// Latest returns the most recent snapshot without taking any lock — one
// atomic pointer load. Returns nil before the first publish; the serving
// layer maps that to ErrNoSnapshot.
func (r *Registry) Latest() *Snapshot { return r.cur.Load() }

// Subscribe registers fn to run synchronously after every publish (after
// the pointer swap, outside the registry lock). The serving layer uses it
// to invalidate per-zone result caches on snapshot swap. Subscribe before
// the pipeline starts; it is not safe concurrently with Publish.
func (r *Registry) Subscribe(fn func(*Snapshot)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

// BindStore mirrors every publish into a time-series store: one record
// per snapshot on the given series with values [version, NMSE,
// measurements, shortfall]. The store's own retention bounds the
// history. Bind before the pipeline starts.
func (r *Registry) BindStore(st *store.Store, series string) error {
	if st == nil || series == "" {
		return errors.New("snapshot: nil store or empty series")
	}
	r.mu.Lock()
	r.st, r.series = st, series
	r.mu.Unlock()
	return nil
}

// Publish assigns the next version to s, swaps it in as the latest
// snapshot, retains it in the history ring (evicting the oldest beyond
// the retention bound), and wakes waiters. The caller transfers
// ownership: s and everything it references must not be mutated after
// Publish returns. Returns the assigned version.
func (r *Registry) Publish(s *Snapshot) (uint64, error) {
	if s == nil || s.Field == nil {
		return 0, errors.New("snapshot: nil snapshot or field")
	}
	r.mu.Lock()
	r.version++
	s.Version = r.version
	r.hist = append(r.hist, s)
	evicted := 0
	if len(r.hist) > r.retain {
		evicted = len(r.hist) - r.retain
		r.hist = append(r.hist[:0:0], r.hist[evicted:]...)
	}
	r.cur.Store(s) // swap after version assignment, before waking waiters
	close(r.notify)
	r.notify = make(chan struct{})
	st, series := r.st, r.series
	subs := r.subs
	retained := len(r.hist)
	r.mu.Unlock()

	obsPublished.Inc()
	obsEvicted.Add(int64(evicted))
	obsVersion.Set(float64(s.Version))
	obsRetained.Set(float64(retained))
	if st != nil {
		rec := store.Record{T: s.T, Values: []float64{
			float64(s.Version), s.NMSE, float64(s.Measurements), float64(s.Shortfall),
		}}
		if err := st.Append(series, rec); err != nil {
			return s.Version, fmt.Errorf("snapshot: history append: %w", err)
		}
	}
	for _, fn := range subs {
		fn(s)
	}
	return s.Version, nil
}

// History returns the retained snapshots, oldest first. The returned
// slice is a copy; the snapshots themselves are shared and immutable.
func (r *Registry) History() []*Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Snapshot(nil), r.hist...)
}

// Len returns how many snapshots are currently retained.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.hist)
}

// Wait blocks until a snapshot with Version ≥ minVersion is published and
// returns it. Prefer WaitContext inside context-threaded code.
func (r *Registry) Wait(minVersion uint64) (*Snapshot, error) {
	return r.WaitContext(context.Background(), minVersion)
}

// WaitContext blocks until a snapshot with Version ≥ minVersion is
// published (returning the latest such snapshot) or ctx is done. The
// staleness-bound tests use it to observe exactly when the service
// recovers after a fault window.
func (r *Registry) WaitContext(ctx context.Context, minVersion uint64) (*Snapshot, error) {
	for {
		if s := r.cur.Load(); s != nil && s.Version >= minVersion {
			return s, nil
		}
		r.mu.Lock()
		ch := r.notify
		r.mu.Unlock()
		// Re-check after capturing the channel: a publish between the load
		// above and the capture would have closed the previous channel.
		if s := r.cur.Load(); s != nil && s.Version >= minVersion {
			return s, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("snapshot: wait for version %d: %w", minVersion, ctx.Err())
		case <-ch:
		}
	}
}
