package snapshot

import (
	"sync/atomic"
	"testing"

	"repro/internal/field"
	"repro/internal/sensor"
)

// BenchmarkSnapshotSwap measures the publish path: version assignment,
// retention, and the atomic pointer swap.
func BenchmarkSnapshotSwap(b *testing.B) {
	r := NewRegistry(8)
	f := field.New(32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Publish(&Snapshot{Step: i, Kind: sensor.Temperature, Field: f}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLatestParallel pins the lock-free claim: concurrent
// Latest calls against a registry being swapped must not contend on any
// mutex. Run with -cpu 4 (or higher) to observe scaling.
func BenchmarkSnapshotLatestParallel(b *testing.B) {
	r := NewRegistry(4)
	if _, err := r.Publish(&Snapshot{Field: field.New(32, 32)}); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		f := field.New(32, 32)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := r.Publish(&Snapshot{Step: i, Field: f}); err != nil {
				return
			}
		}
	}()
	defer close(stop)
	var sink atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var local uint64
		for pb.Next() {
			if s := r.Latest(); s != nil {
				local += s.Version
			}
		}
		sink.Add(local)
	})
}
