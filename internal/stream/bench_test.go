package stream

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/snapshot"
)

func benchPipeline(b *testing.B, warm bool) *Pipeline {
	b.Helper()
	sd, err := core.New(core.Options{
		FieldW: 32, FieldH: 32,
		ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 1, NodesPerNC: 8,
		Seed:    5,
		Timeout: 100 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sd.Close)
	evolve := func(step int, t float64) *field.Field {
		return field.GenPlumes(32, 32, 10, []field.Plume{
			{Row: 8 + 0.02*t, Col: 8, Sigma: 4, Amplitude: 25},
			{Row: 22, Col: 24 - 0.02*t, Sigma: 5, Amplitude: 18},
		})
	}
	if err := sd.SetTruth(evolve(0, 0)); err != nil {
		b.Fatal(err)
	}
	p, err := New(sd, snapshot.NewRegistry(2), Config{
		Budget: 240, WarmStart: warm, SeedRelTol: 0.5, Evolve: evolve, DT: 0.1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Prime one window so warm runs have a seed from the start.
	if _, err := p.Step(); err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkWarmStartWindow vs BenchmarkColdStartWindow isolates the
// warm-start win on a slowly-varying field: identical deployments and
// budgets, only the decode seeding differs.
func BenchmarkWarmStartWindow(b *testing.B) {
	p := benchPipeline(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdStartWindow(b *testing.B) {
	p := benchPipeline(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
