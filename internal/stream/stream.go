// Package stream is the continuous-service mode of the middleware: a
// long-lived pipeline that re-senses the field on a sliding window,
// reconstructs each window through the hierarchical assembly path, and
// publishes every reconstruction as a versioned immutable snapshot. Each
// window's per-zone decode warm-starts from the support the previous
// window recovered for that zone, so on a slowly-varying field the
// steady-state cost per window is one residual check plus a final solve
// instead of a full greedy search.
package stream

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/cs"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/sensor"
	"repro/internal/snapshot"
	"repro/internal/store"
)

// Pipeline observability handles (no-ops until obs.Enable).
var (
	obsWindows    = obs.GetCounter("stream.windows")
	obsWindowErrs = obs.GetCounter("stream.window.errors")
	obsSeededZn   = obs.GetCounter("stream.zones.seeded")
	obsNMSE       = obs.GetGauge("stream.nmse")
	obsWindowMs   = obs.GetHistogram("stream.window.ms", obs.LatencyBuckets)
)

// Config parameterizes a streaming pipeline.
type Config struct {
	Kind     sensor.Kind   // field quantity (default temperature)
	Budget   int           // global measurement budget per window (required)
	Interval time.Duration // Run cadence (default 100ms)

	// MaxWindows stops Run after that many successful windows; 0 runs
	// until the context is done.
	MaxWindows int

	Recon broker.ReconstructOptions // per-zone decode options

	// WarmStart seeds each zone's decode with the support that zone
	// recovered in the previous window. SeedRelTol bounds how much
	// residual the inherited support may leave before the decode restarts
	// cold (0 keeps any linearly independent seed).
	WarmStart  bool
	SeedRelTol float64

	// Evolve produces the ground truth for window step at simulation time
	// t — the simulated physical world. Nil leaves the truth untouched
	// (a static field).
	Evolve func(step int, t float64) *field.Field
	DT     float64 // simulation seconds per window (default 1)

	// Store, when set, receives one record per window on the "stream.window"
	// series with values [nmse, measurements, shortfall, brokersFailed].
	Store *store.Store
}

// Pipeline drives windows of sense→reconstruct→publish against a deployed
// hierarchy. Step is the unit of work; Run loops it on a ticker; Start and
// Stop manage a background Run.
type Pipeline struct {
	sd  *core.SenseDroid
	reg *snapshot.Registry
	cfg Config

	mu      sync.Mutex
	step    int           // guarded by mu
	t       float64       // guarded by mu
	prev    map[int][]int // guarded by mu; zone ID → last recovered support
	lastErr error         // guarded by mu
	cancel  context.CancelFunc
	done    chan struct{}
}

// New validates the config and binds a pipeline to a deployment and a
// snapshot registry.
func New(sd *core.SenseDroid, reg *snapshot.Registry, cfg Config) (*Pipeline, error) {
	if sd == nil || reg == nil {
		return nil, errors.New("stream: nil deployment or registry")
	}
	if cfg.Budget <= 0 {
		return nil, errors.New("stream: per-window budget must be positive")
	}
	if cfg.Kind == "" {
		cfg.Kind = sensor.Temperature
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.DT <= 0 {
		cfg.DT = 1
	}
	return &Pipeline{sd: sd, reg: reg, cfg: cfg, prev: map[int][]int{}}, nil
}

// Registry returns the snapshot registry the pipeline publishes into.
func (p *Pipeline) Registry() *snapshot.Registry { return p.reg }

// Windows returns how many windows have completed successfully.
func (p *Pipeline) Windows() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.step
}

// LastErr returns the most recent window error (nil after a clean window).
func (p *Pipeline) LastErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastErr
}

// Step runs one window to completion. Prefer StepContext inside
// context-threaded code.
func (p *Pipeline) Step() (*snapshot.Snapshot, error) {
	return p.StepContext(context.Background())
}

// StepContext runs one window: advance the simulated world, gather the
// per-window budget through the hierarchy (warm-starting each zone from
// its previous support when enabled), publish the reconstruction as the
// next snapshot, and record quality accounting. A failed window publishes
// nothing — the registry keeps serving the last good snapshot, which is
// what bounds staleness under faults — and leaves the warm-start state
// untouched so recovery resumes from the last good supports.
func (p *Pipeline) StepContext(ctx context.Context) (*snapshot.Snapshot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var begin time.Time
	if obs.Enabled() {
		begin = time.Now()
	}
	stepNo := p.step + 1
	t := p.t + p.cfg.DT
	if p.cfg.Evolve != nil {
		if err := p.sd.SetTruth(p.cfg.Evolve(stepNo, t)); err != nil {
			return nil, p.failLocked(err)
		}
	}
	p.sd.Tick(p.cfg.DT)

	plan := p.sd.Public.UniformBudget(p.cfg.Budget)
	opts := p.cfg.Recon
	var seeds map[int][]int
	if p.cfg.WarmStart && len(p.prev) > 0 {
		seeds = p.prev
		opts.SeedRelTol = p.cfg.SeedRelTol
		obsSeededZn.Add(int64(len(seeds)))
	}
	global, reports, err := p.sd.Public.AssembleSeededContext(ctx, p.cfg.Kind, plan, opts, seeds)
	if err != nil {
		return nil, p.failLocked(err)
	}

	s := &snapshot.Snapshot{
		Step:     stepNo,
		T:        t,
		Kind:     p.cfg.Kind,
		Field:    global,
		Supports: make(map[int][]int, len(reports)),
		NMSE:     cs.NMSE(p.sd.Truth.Data, global.Data),
	}
	next := make(map[int][]int, len(reports))
	for id, rep := range reports {
		sup := rep.Reconstruction.Result.Support
		s.Supports[id] = sup
		next[id] = sup
		s.Measurements += len(rep.Reconstruction.Gather.Locs)
		s.BrokersFailed += rep.Reconstruction.Gather.BrokersFailed
		s.Shortfall += rep.Reconstruction.Gather.Shortfall
	}
	if _, err := p.reg.Publish(s); err != nil {
		return nil, p.failLocked(err)
	}
	p.prev = next
	p.step = stepNo
	p.t = t
	p.lastErr = nil

	obsWindows.Inc()
	obsNMSE.Set(s.NMSE)
	if obs.Enabled() {
		obsWindowMs.Observe(float64(time.Since(begin)) / float64(time.Millisecond))
	}
	if p.cfg.Store != nil {
		rec := store.Record{T: t, Values: []float64{
			s.NMSE, float64(s.Measurements), float64(s.Shortfall), float64(s.BrokersFailed),
		}}
		if serr := p.cfg.Store.Append("stream.window", rec); serr != nil {
			return nil, p.failLocked(serr)
		}
	}
	return s, nil
}

// failLocked records a window failure; callers hold p.mu.
func (p *Pipeline) failLocked(err error) error {
	p.lastErr = err
	obsWindowErrs.Inc()
	return err
}

// Run loops StepContext on the configured cadence. Prefer RunContext
// inside context-threaded code.
func (p *Pipeline) Run() error { return p.RunContext(context.Background()) }

// RunContext loops windows on the ticker until ctx is done or MaxWindows
// successful windows have completed. A failed window does not stop the
// loop — continuous service rides through degraded rounds and the
// registry keeps serving the last good snapshot; the failure is counted
// and retrievable via LastErr.
func (p *Pipeline) RunContext(ctx context.Context) error {
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	completed := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if _, err := p.StepContext(ctx); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				continue
			}
			completed++
			if p.cfg.MaxWindows > 0 && completed >= p.cfg.MaxWindows {
				return nil
			}
		}
	}
}

// Start launches RunContext in a background goroutine. The goroutine
// exits when Stop cancels its context (or MaxWindows is reached).
func (p *Pipeline) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done != nil {
		return errors.New("stream: pipeline already running")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	p.cancel, p.done = cancel, done
	go func() {
		defer close(done)
		//lint:ignore errcheck a background run ends by cancellation or MaxWindows; failures surface via LastErr
		_ = p.RunContext(ctx)
	}()
	return nil
}

// Stop cancels the background run and waits for it to exit. Safe to call
// when not running.
func (p *Pipeline) Stop() {
	p.mu.Lock()
	cancel, done := p.cancel, p.done
	p.cancel, p.done = nil, nil
	p.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
}
