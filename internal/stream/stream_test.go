package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/testutil"
	"repro/internal/testutil/chaos"
)

func streamOpts() core.Options {
	return core.Options{
		FieldW: 16, FieldH: 16,
		ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 1, NodesPerNC: 5,
		Seed:    7,
		Timeout: 50 * time.Millisecond,
	}
}

// driftingPlumes is the slowly-varying world: two plumes whose centers
// creep a fraction of a cell per window.
func driftingPlumes(step int, t float64) *field.Field {
	return field.GenPlumes(16, 16, 10, []field.Plume{
		{Row: 4 + 0.05*t, Col: 4 + 0.03*t, Sigma: 2.5, Amplitude: 25},
		{Row: 11, Col: 12 - 0.04*t, Sigma: 3, Amplitude: 18},
	})
}

func newPipeline(t *testing.T, cfg Config) (*Pipeline, *core.SenseDroid) {
	t.Helper()
	sd, err := core.New(streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sd.Close)
	if err := sd.SetTruth(driftingPlumes(0, 0)); err != nil {
		t.Fatal(err)
	}
	p, err := New(sd, snapshot.NewRegistry(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, sd
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(nil, snapshot.NewRegistry(1), Config{Budget: 10}); err == nil {
		t.Fatal("nil deployment accepted")
	}
	sd, err := core.New(streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if _, err := New(sd, nil, Config{Budget: 10}); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := New(sd, snapshot.NewRegistry(1), Config{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestStepPublishesVersionedSnapshots(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	p, _ := newPipeline(t, Config{
		Budget: 60, WarmStart: true, Evolve: driftingPlumes,
	})
	st := store.New(32)
	if err := p.Registry().BindStore(st, "recon"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		s, err := p.Step()
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		if s.Version != uint64(i) || s.Step != i {
			t.Fatalf("window %d: version %d step %d", i, s.Version, s.Step)
		}
		if s.NMSE < 0 || s.NMSE > 1 {
			t.Fatalf("window %d: NMSE %v out of range", i, s.NMSE)
		}
		if len(s.Supports) != 4 {
			t.Fatalf("window %d: %d zone supports, want 4", i, len(s.Supports))
		}
		if s.Measurements == 0 {
			t.Fatalf("window %d: no measurements", i)
		}
	}
	if p.Windows() != 3 {
		t.Fatalf("Windows = %d, want 3", p.Windows())
	}
	if st.Len("recon") != 3 {
		t.Fatalf("store mirrored %d records, want 3", st.Len("recon"))
	}
}

// Start/Stop must leave no goroutines behind and publish windows while
// running.
func TestPipelineStartStopLifecycle(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	p, _ := newPipeline(t, Config{
		Budget: 60, Interval: 5 * time.Millisecond,
		WarmStart: true, Evolve: driftingPlumes,
	})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := p.Registry().WaitContext(ctx, 2); err != nil {
		t.Fatalf("no snapshots while running: %v", err)
	}
	p.Stop()
	p.Stop() // idempotent
	v := p.Registry().Latest().Version
	time.Sleep(20 * time.Millisecond)
	if got := p.Registry().Latest().Version; got != v {
		t.Fatalf("pipeline still publishing after Stop: %d → %d", v, got)
	}
}

func TestRunContextStopsAtMaxWindows(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	p, _ := newPipeline(t, Config{
		Budget: 60, Interval: time.Millisecond, MaxWindows: 3,
	})
	if err := p.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.Windows() != 3 {
		t.Fatalf("Windows = %d, want 3", p.Windows())
	}
}

// fingerprint renders a snapshot's float state exactly (hex bits), so two
// runs can be compared for float identity.
func fingerprint(s *snapshot.Snapshot) string {
	out := fmt.Sprintf("v%d step%d nmse%x\n", s.Version, s.Step, s.NMSE)
	for i, v := range s.Field.Data {
		out += fmt.Sprintf("%d:%x ", i, v)
	}
	for z := 0; z < 4; z++ {
		out += fmt.Sprintf("\nzone%d:%v", z, s.Supports[z])
	}
	return out
}

// The pipeline must replay float-identically regardless of parallelism:
// the zone fan-out's determinism contract plus seeded RNG everywhere make
// the schedule unobservable.
func TestPipelineDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) string {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		sd, err := core.New(streamOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer sd.Close()
		if err := sd.SetTruth(driftingPlumes(0, 0)); err != nil {
			t.Fatal(err)
		}
		p, err := New(sd, snapshot.NewRegistry(2), Config{
			Budget: 60, WarmStart: true, Evolve: driftingPlumes,
		})
		if err != nil {
			t.Fatal(err)
		}
		var last *snapshot.Snapshot
		for i := 0; i < 3; i++ {
			last, err = p.Step()
			if err != nil {
				t.Fatalf("GOMAXPROCS=%d window %d: %v", procs, i+1, err)
			}
		}
		return fingerprint(last)
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Fatalf("pipeline state differs between GOMAXPROCS=1 and 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// Warm-started windows must track the cold pipeline's quality on a
// slowly-varying field: same deployment seed gathers identical
// measurements, so only the decode seeding differs.
func TestWarmStartTracksColdQuality(t *testing.T) {
	run := func(warm bool) []float64 {
		sd, err := core.New(streamOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer sd.Close()
		if err := sd.SetTruth(driftingPlumes(0, 0)); err != nil {
			t.Fatal(err)
		}
		p, err := New(sd, snapshot.NewRegistry(2), Config{
			Budget: 80, WarmStart: warm, Evolve: driftingPlumes,
		})
		if err != nil {
			t.Fatal(err)
		}
		var nmse []float64
		for i := 0; i < 5; i++ {
			s, err := p.Step()
			if err != nil {
				t.Fatal(err)
			}
			nmse = append(nmse, s.NMSE)
		}
		return nmse
	}
	cold := run(false)
	warm := run(true)
	for i := range cold {
		if warm[i] > cold[i]+0.05 {
			t.Fatalf("window %d: warm NMSE %v much worse than cold %v", i+1, warm[i], cold[i])
		}
	}
}

// Bounded staleness under a fault: a fully partitioned broker with its
// infra offline kills its zone, so windows fail and the registry keeps
// serving the last good snapshot (staleness = fault duration, never a
// torn or partial field). Restoring infra resumes publishing on the next
// window.
func TestSnapshotStalenessBoundedUnderPartition(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	h, err := chaos.New(streamOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.SD.SetTruth(driftingPlumes(0, 0)); err != nil {
		t.Fatal(err)
	}
	p, err := New(h.SD, snapshot.NewRegistry(4), Config{
		Budget: 60, WarmStart: true, Evolve: driftingPlumes,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := p.Step(); err != nil {
			t.Fatalf("healthy window: %v", err)
		}
	}
	good := p.Registry().Latest()
	if good.Version != 2 {
		t.Fatalf("expected version 2 before fault, got %d", good.Version)
	}

	// Sever zone 0's only broker from its fleet AND its infra fallback.
	h.PartitionBroker("lc0/nc0", 0, 1<<30)
	br, ok := h.SD.BrokerByID("lc0/nc0")
	if !ok {
		t.Fatal("broker lc0/nc0 missing")
	}
	br.SetInfraEnabled(false)
	for i := 0; i < 2; i++ {
		if _, err := p.Step(); err == nil {
			t.Fatal("window succeeded with a dead zone; fault not injected")
		}
	}
	if p.LastErr() == nil {
		t.Fatal("LastErr not recorded")
	}
	stale := p.Registry().Latest()
	if stale.Version != good.Version {
		t.Fatalf("registry advanced during fault: %d → %d", good.Version, stale.Version)
	}
	if stale != good {
		t.Fatal("registry swapped a different snapshot during the fault window")
	}

	// Heal: infra back online (nodes still partitioned) — the zone
	// degrades to infrastructure sensing and the service resumes.
	br.SetInfraEnabled(true)
	rec, err := p.Step()
	if err != nil {
		t.Fatalf("post-heal window: %v", err)
	}
	if rec.Version != good.Version+1 {
		t.Fatalf("post-heal version %d, want %d", rec.Version, good.Version+1)
	}
	if p.LastErr() != nil {
		t.Fatalf("LastErr not cleared after recovery: %v", p.LastErr())
	}
	if rec.Shortfall == 0 {
		t.Log("post-heal window had no shortfall (infra covered the full budget)")
	}
}

// A canceled context must surface promptly from RunContext.
func TestRunContextHonorsCancel(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	p, _ := newPipeline(t, Config{Budget: 60, Interval: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}
