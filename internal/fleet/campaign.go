package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/cs"
	"repro/internal/field"
	"repro/internal/netsim"
)

// sampleSize is the wire size of one measurement envelope payload:
// uint32 zone-local cell, uint32 node index within shard, float64
// value, float64 sigma — all little-endian.
const sampleSize = 24

// MeasureTopic is the envelope topic on the simulated network.
const MeasureTopic = "fleet/measure"

func encodeSample(dst []byte, cell, node uint32, value, sigma float64) {
	binary.LittleEndian.PutUint32(dst[0:4], cell)
	binary.LittleEndian.PutUint32(dst[4:8], node)
	binary.LittleEndian.PutUint64(dst[8:16], math.Float64bits(value))
	binary.LittleEndian.PutUint64(dst[16:24], math.Float64bits(sigma))
}

func decodeSample(b []byte) (cell, node uint32, value, sigma float64, ok bool) {
	if len(b) != sampleSize {
		return 0, 0, 0, 0, false
	}
	cell = binary.LittleEndian.Uint32(b[0:4])
	node = binary.LittleEndian.Uint32(b[4:8])
	value = math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
	sigma = math.Float64frombits(binary.LittleEndian.Uint64(b[16:24]))
	return cell, node, value, sigma, true
}

// ShardEndpoint is shard i's sender id on the simulated network — the
// per-shard accounting granularity: netsim.NodeStats(ShardEndpoint(i))
// is shard i's radio ledger.
func ShardEndpoint(i int) string { return fmt.Sprintf("fleet/s%d", i) }

// ZoneEndpoint is zone z's collector id, matching the broker naming
// ("lc<z>") so fault plans written for the node backend — crash
// windows, partitions against a zone's LocalCloud — apply unchanged.
func ZoneEndpoint(z int) string { return fmt.Sprintf("lc%d", z) }

// ZoneCollector is a zone's ingest endpoint: it accumulates the
// envelope stream netsim delivers for that zone, keeping the first
// Budget distinct cells (a re-report of a known cell updates the stored
// value, so duplicated envelopes are idempotent). It is driven entirely
// from Network.Flush/Deliver handler invocations on the runner's
// goroutine — no locking, same single-writer discipline as the shards.
type ZoneCollector struct {
	Zone   field.Zone
	Budget int // max distinct cells; 0 = unbounded

	cellAt    map[int32]int // cell → index into locs/vals/sigmas
	locs      []int         // distinct cells in arrival order (decode locations)
	vals      []float64
	sigmas    []float64
	envelopes int // handler deliveries, duplicates included
	rejected  int // distinct cells beyond budget
	malformed int
}

func newZoneCollector(zone field.Zone, budget int) *ZoneCollector {
	return &ZoneCollector{Zone: zone, Budget: budget, cellAt: make(map[int32]int)}
}

func (zc *ZoneCollector) handle(m netsim.Message) {
	cell, _, value, sigma, ok := decodeSample(m.Payload)
	if !ok || int(cell) >= zc.Zone.W*zc.Zone.H {
		zc.malformed++
		return
	}
	zc.envelopes++
	if at, seen := zc.cellAt[int32(cell)]; seen {
		zc.vals[at] = value
		zc.sigmas[at] = sigma
		return
	}
	if zc.Budget > 0 && len(zc.locs) >= zc.Budget {
		zc.rejected++
		return
	}
	zc.cellAt[int32(cell)] = len(zc.locs)
	zc.locs = append(zc.locs, int(cell))
	zc.vals = append(zc.vals, value)
	zc.sigmas = append(zc.sigmas, sigma)
}

// Count returns the number of distinct cells collected.
func (zc *ZoneCollector) Count() int { return len(zc.locs) }

// Runner wires a Population to a netsim.Network and drives campaigns:
// tick, report, merge (batched enqueue in shard order), flush, and
// finally per-zone decode. Plan is live during Run — fault scenarios
// (crash windows, partitions, dup/reorder) apply to the envelope stream
// exactly as they would to node-backend traffic.
type Runner struct {
	Pop  *Population
	Net  *netsim.Network
	Plan *netsim.FaultPlan

	collectors []*ZoneCollector
	shardFrom  []string // precomputed sender ids, indexed by shard
	zoneTo     []string // precomputed collector ids, indexed by zone
	arena      [][]byte // per-shard payload arenas, reused every round
	batch      []netsim.Message
}

// NewRunner registers the population's shards and zone collectors on a
// fresh async network seeded with netSeed. budgetPerZone caps each
// zone's distinct measured cells (0 = unbounded).
func NewRunner(p *Population, netSeed int64, budgetPerZone int) (*Runner, error) {
	net := netsim.New(netSeed)
	net.SetAsync(true)
	net.SetDefaultLink(netsim.Link{LatencyMS: 1})
	plan := netsim.NewFaultPlan()
	net.SetFaultPlan(plan)

	r := &Runner{Pop: p, Net: net, Plan: plan}
	for z, zone := range p.Zones {
		zc := newZoneCollector(zone, budgetPerZone)
		r.collectors = append(r.collectors, zc)
		r.zoneTo = append(r.zoneTo, ZoneEndpoint(z))
		if err := net.Register(r.zoneTo[z], zc.handle); err != nil {
			return nil, err
		}
	}
	maxN := 0
	for _, s := range p.Shards {
		r.shardFrom = append(r.shardFrom, ShardEndpoint(s.Index))
		if err := net.Register(r.shardFrom[s.Index], nil); err != nil {
			return nil, err
		}
		r.arena = append(r.arena, make([]byte, s.N*sampleSize))
		if s.N > maxN {
			maxN = s.N
		}
	}
	r.batch = make([]netsim.Message, maxN)
	return r, nil
}

// Collector exposes a zone's collector (for tests and experiments).
func (r *Runner) Collector(z int) *ZoneCollector { return r.collectors[z] }

// CampaignConfig controls one Run.
type CampaignConfig struct {
	Rounds     int        // duty rounds (default Config.DutyPeriod: every node reports once)
	Dt         float64    // seconds per round (default 1)
	Basis      basis.Kind // decode basis (default DCT)
	MaxSupport int        // decode support cap per zone (default distinct cells / 3)
	UseGLS     bool       // weight the decode by reported sigmas
}

// Result is one fleet campaign's deterministic output.
type Result struct {
	Global     *field.Field // assembled reconstruction
	GlobalNMSE float64
	ZoneNMSE   []float64

	Reports      int // envelopes produced by on-duty nodes (enqueue attempts)
	Envelopes    int // envelopes delivered to collectors (duplicates included)
	Measurements int // distinct cells decoded across zones
	Lost, Down   int // batch enqueue outcomes (in-flight loss / down endpoints)
	Malformed    int

	Totals    netsim.Stats
	SimTimeMS float64
	EnergyMJ  float64
	Alive     int
}

// Run drives a campaign: Rounds times (tick → report → merge in shard
// order → flush), then decodes every zone against the collected
// measurements and assembles the global field. Requires SetTruth. The
// merge loop is the determinism linchpin: shards enqueue in ascending
// shard index on the single driving goroutine, so the network's RNG
// stream (loss, dup, reorder draws) is a pure function of the seeds.
func (r *Runner) Run(cfg CampaignConfig) (*Result, error) {
	p := r.Pop
	if p.truth == nil {
		return nil, errors.New("fleet: SetTruth before Run")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = p.Cfg.DutyPeriod
	}
	if cfg.Dt == 0 {
		cfg.Dt = 1
	}
	if cfg.Basis == "" {
		cfg.Basis = basis.KindDCT
	}

	res := &Result{}
	for round := 0; round < cfg.Rounds; round++ {
		p.Tick(cfg.Dt)
		p.Report(round)
		for _, s := range p.Shards {
			batch := r.buildBatch(s)
			if len(batch) == 0 {
				continue
			}
			res.Reports += len(batch)
			br, err := r.Net.DeliverBatch(batch)
			if err != nil {
				return nil, err
			}
			res.Lost += br.Lost
			res.Down += br.Down
		}
		r.Net.Flush()
	}

	if err := r.decode(cfg, res); err != nil {
		return nil, err
	}
	for _, zc := range r.collectors {
		res.Envelopes += zc.envelopes
		res.Measurements += zc.Count()
		res.Malformed += zc.malformed
	}
	res.Totals = r.Net.Totals()
	res.SimTimeMS = r.Net.SimTimeMS()
	res.EnergyMJ = p.EnergyUsedMJ()
	res.Alive = p.Alive()
	return res, nil
}

// buildBatch encodes shard s's report scratch into its payload arena
// and the shared message batch. The arena is reused every round: netsim
// retains payload slices only until the following Flush, which the run
// loop performs before the next buildBatch touches the arena.
func (r *Runner) buildBatch(s *Shard) []netsim.Message {
	from := r.shardFrom[s.Index]
	to := r.zoneTo[s.Zone]
	arena := r.arena[s.Index]
	for j := 0; j < s.repN; j++ {
		pay := arena[j*sampleSize : (j+1)*sampleSize]
		encodeSample(pay, uint32(s.repCell[j]), uint32(s.repNode[j]), s.repValue[j], s.repSigma[j])
		r.batch[j] = netsim.Message{From: from, To: to, Topic: MeasureTopic, Payload: pay}
	}
	return r.batch[:s.repN]
}

// decode reconstructs every zone from its collector via the matrix-free
// CHS decoder, in parallel over zones (each zone's decode is a pure
// function of its collected measurements), then assembles and scores
// the global field sequentially in zone order.
func (r *Runner) decode(cfg CampaignConfig, res *Result) error {
	p := r.Pop
	subs := make([]*field.Field, len(p.Zones))
	errs := make([]error, len(p.Zones))
	forEachIndex(len(p.Zones), func(z int) {
		zone := p.Zones[z]
		zc := r.collectors[z]
		zf := field.New(zone.W, zone.H)
		if zc.Count() == 0 {
			subs[z] = zf // nothing heard from this zone: flat-zero estimate
			return
		}
		op, err := zf.Operator2D(cfg.Basis)
		if err != nil {
			errs[z] = err
			return
		}
		k := cfg.MaxSupport
		if k <= 0 {
			k = zc.Count() / 3
		}
		if k < 1 {
			k = 1
		}
		opts := cs.CHSOptions{MaxSupport: k, MaxIter: k, Tol: 1e-8, PerIter: 1}
		if cfg.UseGLS {
			opts.V = cs.NoiseCovariance(zc.sigmas, 1e-4)
		}
		dec, err := cs.CHSOp(op, zc.locs, zc.vals, opts)
		if err != nil {
			errs[z] = err
			return
		}
		sub, err := field.FromVector(zone.W, zone.H, dec.Xhat)
		if err != nil {
			errs[z] = err
			return
		}
		subs[z] = sub
	})
	for z, err := range errs {
		if err != nil {
			return fmt.Errorf("fleet: zone %d decode: %w", z, err)
		}
	}

	global := field.New(p.Cfg.FieldW, p.Cfg.FieldH)
	res.ZoneNMSE = make([]float64, len(p.Zones))
	for z, zone := range p.Zones {
		if err := field.Insert(global, zone, subs[z]); err != nil {
			return err
		}
		truthSub := field.Extract(p.truth, zone)
		res.ZoneNMSE[z] = cs.NMSE(truthSub.Data, subs[z].Data)
	}
	res.Global = global
	res.GlobalNMSE = cs.NMSE(p.truth.Data, global.Data)
	return nil
}
