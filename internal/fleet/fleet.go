// Package fleet is the million-participant population backend: where
// internal/core instantiates a live node.Node (goroutines, bus
// subscriptions, per-node maps) per participant and tops out at
// hundreds, fleet keeps per-node state — position, energy, duty-cycle
// phase, noise level, current grid cell — in struct-of-arrays shards
// and advances whole shards at a time. That makes a simulated
// participant a few hundred bytes of flat array instead of a scheduled
// entity, which is what the paper's metropolitan-scale sensing claims
// need from the evaluation harness (MOSDEN-class populations, not
// testbed-class).
//
// Determinism contract (the fleet analogue of DESIGN.md §5): every
// shard owns a private RNG seeded from (Config.Seed, shard index), all
// random draws happen inside a shard in node-index order, and every
// cross-shard reduction — measurement merge, energy totals, decode
// assembly — runs in ascending shard or zone order on the single
// driving goroutine. Shards share no mutable state, so stepping them on
// GOMAXPROCS workers reorders only wall-clock time, never arithmetic:
// campaign outputs are float-identical across GOMAXPROCS settings
// (pinned by TestFleetCampaignDeterministicAcrossGOMAXPROCS).
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"math/rand"

	"repro/internal/energy"
	"repro/internal/field"
	"repro/internal/mobility"
	"repro/internal/sensor"
)

// Config sizes and seeds a population. Zero values select defaults
// (noted per field); Nodes and the field/zone geometry are required.
type Config struct {
	Nodes     int // total participants across all zones
	ShardSize int // nodes per shard (default 4096)

	FieldW, FieldH     int     // global grid dimensions
	ZoneRows, ZoneCols int     // zone partition (must divide the grid)
	MetersPerCell      float64 // area scale (default 10 m)

	Seed int64

	DutyPeriod         int     // a node reports every DutyPeriod rounds (default 8)
	SigmaMin, SigmaMax float64 // per-node noise level range (default 0.05..0.25)
	BatteryMJ          float64 // per-node battery (default 4e7, a phone battery)

	MinSpeed, MaxSpeed float64 // waypoint speed range, m/s (default 0.8..2.2)
	Pause              float64 // waypoint dwell, s (default 2)
}

func (c *Config) applyDefaults() {
	if c.ShardSize == 0 {
		c.ShardSize = 4096
	}
	if c.MetersPerCell == 0 {
		c.MetersPerCell = 10
	}
	if c.DutyPeriod == 0 {
		c.DutyPeriod = 8
	}
	if c.SigmaMin == 0 && c.SigmaMax == 0 {
		c.SigmaMin, c.SigmaMax = 0.05, 0.25
	}
	if c.BatteryMJ == 0 {
		c.BatteryMJ = 4e7
	}
	if c.MinSpeed == 0 && c.MaxSpeed == 0 {
		c.MinSpeed, c.MaxSpeed = 0.8, 2.2
	}
	if c.Pause == 0 {
		c.Pause = 2
	}
}

// Shard is one struct-of-arrays block of nodes, all in the same zone.
// Everything here is owned by the shard's scheduler turn: Tick and
// report mutate it from exactly one goroutine at a time, and the merge
// phase reads it only after the parallel phase has joined.
type Shard struct {
	Index int // global shard index: the deterministic merge order
	Zone  int // owning zone (index into Population.Zones)
	N     int

	rng    *rand.Rand
	params mobility.WaypointParams
	way    *mobility.WaypointState
	bank   *energy.Bank
	phase  []uint16  // duty-cycle offset per node
	sigma  []float64 // per-node measurement noise stddev
	cells  []int32   // zone-local grid cell per node, refreshed by Tick

	zone field.Zone // geometry for truth lookups

	// Round-report scratch, sized for the worst case (every node
	// reports) at construction so the steady state never allocates.
	// report fills [0:repN); the merge phase consumes it before the
	// next Report overwrites it.
	repN     int
	repCell  []int32
	repValue []float64
	repSigma []float64
	repNode  []int32
}

// Population is a sharded fleet over a zoned field.
type Population struct {
	Cfg    Config
	Zones  []field.Zone
	Shards []*Shard

	truth  *field.Field // ground truth sampled by reports (read-only during rounds)
	idleMJ float64      // per-second baseline drain
	costMJ float64      // per-report drain: one sample + one envelope tx
}

// shardSeed derives a shard's RNG seed from the campaign seed by a
// splitmix64 finalizer — decorrelated streams per shard, reproducible
// from (Seed, Index) alone.
func shardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + uint64(shard+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// NewPopulation builds the sharded fleet: nodes are spread over zones
// as evenly as possible (earlier zones take the remainder), each zone's
// nodes are cut into ShardSize blocks, and each shard draws its initial
// state — positions, waypoints, duty phases, noise levels — from its
// own seeded RNG in node-index order.
func NewPopulation(cfg Config) (*Population, error) {
	cfg.applyDefaults()
	if cfg.Nodes <= 0 {
		return nil, errors.New("fleet: need a positive node count")
	}
	if cfg.FieldW <= 0 || cfg.FieldH <= 0 {
		return nil, errors.New("fleet: need positive field dimensions")
	}
	zones, err := field.Partition(field.New(cfg.FieldW, cfg.FieldH), cfg.ZoneRows, cfg.ZoneCols)
	if err != nil {
		return nil, err
	}
	model := energy.DefaultModel()
	sampleMJ, ok := model.SampleCostMJ(sensor.Temperature)
	if !ok {
		return nil, errors.New("fleet: energy model lacks a temperature sample cost")
	}
	p := &Population{
		Cfg:    cfg,
		Zones:  zones,
		idleMJ: model.IdlePerSecMJ,
		costMJ: sampleMJ + model.TxCostMJ(energy.RadioWiFi, sampleSize),
	}

	perZone := cfg.Nodes / len(zones)
	extra := cfg.Nodes % len(zones)
	shardIdx := 0
	for z, zone := range zones {
		zn := perZone
		if z < extra {
			zn++
		}
		for zn > 0 {
			n := cfg.ShardSize
			if n > zn {
				n = zn
			}
			s, err := newShard(shardIdx, z, n, zone, cfg)
			if err != nil {
				return nil, err
			}
			p.Shards = append(p.Shards, s)
			shardIdx++
			zn -= n
		}
	}
	return p, nil
}

func newShard(index, zoneIdx, n int, zone field.Zone, cfg Config) (*Shard, error) {
	rng := rand.New(rand.NewSource(shardSeed(cfg.Seed, index)))
	params := mobility.WaypointParams{
		W: float64(zone.W) * cfg.MetersPerCell, H: float64(zone.H) * cfg.MetersPerCell,
		MinSpeed: cfg.MinSpeed, MaxSpeed: cfg.MaxSpeed, Pause: cfg.Pause,
	}
	way, err := mobility.InitWaypoints(rng, params, n)
	if err != nil {
		return nil, err
	}
	bank, err := energy.NewBank(n, cfg.BatteryMJ)
	if err != nil {
		return nil, err
	}
	s := &Shard{
		Index: index, Zone: zoneIdx, N: n,
		rng: rng, params: params, way: way, bank: bank,
		phase: make([]uint16, n), sigma: make([]float64, n),
		cells: make([]int32, n), zone: zone,
		repCell: make([]int32, n), repValue: make([]float64, n),
		repSigma: make([]float64, n), repNode: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		s.phase[i] = uint16(rng.Intn(cfg.DutyPeriod))
		s.sigma[i] = cfg.SigmaMin + rng.Float64()*(cfg.SigmaMax-cfg.SigmaMin)
	}
	mobility.GridIndexes(s.cells, way.X, way.Y, params.W, params.H, zone.W, zone.H)
	return s, nil
}

// SetTruth installs the ground-truth field reports sample from. The
// field is read concurrently by shards during Tick/Report — callers
// must not mutate it while a round is in flight.
func (p *Population) SetTruth(f *field.Field) error {
	if f.W != p.Cfg.FieldW || f.H != p.Cfg.FieldH {
		return fmt.Errorf("fleet: truth field %dx%d does not match config %dx%d",
			f.H, f.W, p.Cfg.FieldH, p.Cfg.FieldW)
	}
	p.truth = f
	return nil
}

// Tick advances every shard by dt seconds — movement, idle drain, and
// cell re-binning — in parallel. Shards are independent, so worker
// count affects only wall-clock time.
func (p *Population) Tick(dt float64) {
	p.forEachShard(func(s *Shard) { s.Tick(dt, p.idleMJ) })
}

// Tick advances one shard: waypoint movement, idle battery drain, and
// the position→cell binning the next report reads. This is the per-tick
// hot loop guarded by the hotalloc analyzer — it must not allocate.
func (s *Shard) Tick(dt float64, idlePerSecMJ float64) {
	mobility.StepWaypoints(s.rng, s.params, s.way, dt)
	s.bank.DrainAll(idlePerSecMJ * dt)
	mobility.GridIndexes(s.cells, s.way.X, s.way.Y, s.params.W, s.params.H, s.zone.W, s.zone.H)
}

// Report has every on-duty, non-depleted node sample the truth at its
// current cell into the shard's report scratch, in parallel across
// shards. The merge (Runner.Run) consumes the scratch in shard order
// before the next Report. Requires SetTruth.
func (p *Population) Report(round int) {
	truth := p.truth
	period := p.Cfg.DutyPeriod
	p.forEachShard(func(s *Shard) { s.report(round, period, truth, p.costMJ) })
}

// report fills the shard's scratch with this round's measurements. All
// RNG draws (one NormFloat64 per reporting node) happen in node-index
// order on the shard's private stream. Allocation-free (hot path).
func (s *Shard) report(round, period int, truth *field.Field, costMJ float64) {
	s.repN = 0
	gh := s.zone.H
	for i := 0; i < s.N; i++ {
		if (round+int(s.phase[i]))%period != 0 || s.bank.Depleted(i) {
			continue
		}
		cell := int(s.cells[i])
		v := truth.At(s.zone.Row0+cell%gh, s.zone.Col0+cell/gh) + s.rng.NormFloat64()*s.sigma[i]
		s.bank.Drain(i, costMJ)
		s.repCell[s.repN] = s.cells[i]
		s.repValue[s.repN] = v
		s.repSigma[s.repN] = s.sigma[i]
		s.repNode[s.repN] = int32(i)
		s.repN++
	}
}

// EnergyUsedMJ sums battery spending across the fleet in shard order.
func (p *Population) EnergyUsedMJ() float64 {
	t := 0.0
	for _, s := range p.Shards {
		t += s.bank.TotalUsedMJ()
	}
	return t
}

// Alive counts nodes with battery remaining.
func (p *Population) Alive() int {
	n := 0
	for _, s := range p.Shards {
		n += s.bank.Alive()
	}
	return n
}

// forEachShard applies fn to every shard on a GOMAXPROCS-bounded worker
// pool. fn must touch only its shard (the package's ownership
// discipline); the pool joins before returning, so callers see a
// completed parallel phase.
func (p *Population) forEachShard(fn func(*Shard)) {
	forEachIndex(len(p.Shards), func(i int) { fn(p.Shards[i]) })
}

// forEachIndex runs fn(0..n-1) on a GOMAXPROCS-bounded worker pool and
// joins. fn(i) must write only slots owned by index i, so the output is
// independent of worker count and interleaving — the mechanism behind
// the package's GOMAXPROCS float-identity guarantee.
func forEachIndex(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
