package fleet

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/field"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/testutil"
)

func testTruth(w, h int) *field.Field {
	return field.GenPlumes(w, h, 8, []field.Plume{
		{Row: float64(h) * 0.3, Col: float64(w) * 0.6, Sigma: float64(w) * 0.09, Amplitude: 24},
		{Row: float64(h) * 0.7, Col: float64(w) * 0.25, Sigma: float64(w) * 0.07, Amplitude: 16},
	})
}

func runFleet(t *testing.T, cfg Config, budget int, ccfg CampaignConfig, faults func(*Runner)) *Result {
	t.Helper()
	p, err := NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetTruth(testTruth(cfg.FieldW, cfg.FieldH)); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, cfg.Seed+1000, budget)
	if err != nil {
		t.Fatal(err)
	}
	if faults != nil {
		faults(r)
	}
	res, err := r.Run(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPopulationShardLayout: nodes spread evenly over zones, shards cut
// at ShardSize, merge order covers every shard exactly once.
func TestPopulationShardLayout(t *testing.T) {
	p, err := NewPopulation(Config{
		Nodes: 1000, ShardSize: 128,
		FieldW: 16, FieldH: 16, ZoneRows: 2, ZoneCols: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	perZone := make([]int, len(p.Zones))
	for i, s := range p.Shards {
		if s.Index != i {
			t.Fatalf("shard %d carries index %d", i, s.Index)
		}
		if s.N <= 0 || s.N > 128 {
			t.Fatalf("shard %d has %d nodes, want 1..128", i, s.N)
		}
		total += s.N
		perZone[s.Zone] += s.N
	}
	if total != 1000 {
		t.Fatalf("shards cover %d nodes, want 1000", total)
	}
	for z, n := range perZone {
		if n != 250 {
			t.Fatalf("zone %d has %d nodes, want 250", z, n)
		}
	}
}

// TestFleetCampaignDeterministicAcrossGOMAXPROCS is the tentpole's
// acceptance bar: the full campaign result — reconstruction floats,
// NMSE, traffic totals, energy — is identical at GOMAXPROCS=1 and
// GOMAXPROCS=N, because shards own their RNGs and every reduction runs
// in fixed order.
func TestFleetCampaignDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := Config{
		Nodes: 6000, ShardSize: 512,
		FieldW: 32, FieldH: 32, ZoneRows: 2, ZoneCols: 2, Seed: 42,
	}
	run := func(procs int) *Result {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		return runFleet(t, cfg, 64, CampaignConfig{}, nil)
	}
	serial := run(1)
	parallel := run(4)

	if serial.GlobalNMSE != parallel.GlobalNMSE {
		t.Fatalf("NMSE diverges: serial %v, parallel %v", serial.GlobalNMSE, parallel.GlobalNMSE)
	}
	for i := range serial.Global.Data {
		if serial.Global.Data[i] != parallel.Global.Data[i] {
			t.Fatalf("reconstruction cell %d diverges: %v vs %v",
				i, serial.Global.Data[i], parallel.Global.Data[i])
		}
	}
	for z := range serial.ZoneNMSE {
		if serial.ZoneNMSE[z] != parallel.ZoneNMSE[z] {
			t.Fatalf("zone %d NMSE diverges", z)
		}
	}
	if serial.Totals != parallel.Totals {
		t.Fatalf("traffic totals diverge: %+v vs %+v", serial.Totals, parallel.Totals)
	}
	if serial.EnergyMJ != parallel.EnergyMJ {
		t.Fatalf("energy diverges: %v vs %v", serial.EnergyMJ, parallel.EnergyMJ)
	}
	if serial.Reports != parallel.Reports || serial.Envelopes != parallel.Envelopes ||
		serial.SimTimeMS != parallel.SimTimeMS {
		t.Fatalf("accounting diverges: %+v vs %+v", serial, parallel)
	}
}

// TestFleetCampaignReconstructs: a fault-free campaign over a plume
// field reconstructs it well, every on-duty report is accounted for,
// and the energy ledger matches the closed-form expectation.
func TestFleetCampaignReconstructs(t *testing.T) {
	testutil.CheckGoroutines(t)
	cfg := Config{
		Nodes: 4096, ShardSize: 512,
		FieldW: 32, FieldH: 32, ZoneRows: 2, ZoneCols: 2, Seed: 7,
	}
	res := runFleet(t, cfg, 0, CampaignConfig{}, nil)

	if res.GlobalNMSE > 0.05 {
		t.Fatalf("fault-free fleet campaign NMSE %v, want <= 0.05", res.GlobalNMSE)
	}
	// DutyPeriod rounds ⇒ every node reports exactly once (no battery
	// dies at these budgets), and with no faults every report arrives.
	if res.Reports != cfg.Nodes {
		t.Fatalf("reports %d, want %d (every node exactly once over a duty period)", res.Reports, cfg.Nodes)
	}
	if res.Envelopes != cfg.Nodes || res.Lost != 0 || res.Down != 0 || res.Malformed != 0 {
		t.Fatalf("delivery accounting off: %+v", res)
	}
	if res.Totals.TxMessages != cfg.Nodes || res.Totals.RxMessages != cfg.Nodes {
		t.Fatalf("netsim totals %+v, want %d tx and rx", res.Totals, cfg.Nodes)
	}
	if res.Totals.TxBytes != cfg.Nodes*sampleSize {
		t.Fatalf("tx bytes %d, want %d", res.Totals.TxBytes, cfg.Nodes*sampleSize)
	}
	if res.Alive != cfg.Nodes {
		t.Fatalf("alive %d, want %d", res.Alive, cfg.Nodes)
	}
	// Energy ledger: 8 rounds × 1 s idle draw per node, plus one report
	// each (temperature sample + a 24-byte WiFi envelope with wake cost;
	// magnitudes from energy.DefaultModel).
	wantIdle := float64(cfg.Nodes) * 7.0 * 8.0
	wantReports := float64(res.Reports) * (0.002 + 6.0 + 0.0006*sampleSize)
	want := wantIdle + wantReports
	if math.Abs(res.EnergyMJ-want) > 1e-6*want {
		t.Fatalf("energy %v MJ, want %v (idle %v + reports %v)", res.EnergyMJ, want, wantIdle, wantReports)
	}
}

// TestFleetObsCountersReconcileUnderFaults is the acceptance criterion:
// with dup, reorder, a zone crash window, and burst loss all active,
// the netsim obs mirrors still reconcile exactly with Totals().
func TestFleetObsCountersReconcileUnderFaults(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	txM0 := obs.GetCounter("netsim.tx.messages").Value()
	txB0 := obs.GetCounter("netsim.tx.bytes").Value()
	rxM0 := obs.GetCounter("netsim.rx.messages").Value()
	rxB0 := obs.GetCounter("netsim.rx.bytes").Value()
	lost0 := obs.GetCounter("netsim.lost.messages").Value()
	dup0 := obs.GetCounter("netsim.fault.duplicated").Value()
	down0 := obs.GetCounter("netsim.fault.down").Value()

	cfg := Config{
		Nodes: 2048, ShardSize: 256,
		FieldW: 32, FieldH: 32, ZoneRows: 2, ZoneCols: 2, Seed: 99,
	}
	res := runFleet(t, cfg, 0, CampaignConfig{}, func(r *Runner) {
		r.Plan.SetDuplicateProb(0.2)
		r.Plan.SetReorderProb(0.15)
		r.Plan.Crash(ZoneEndpoint(1), 100, 400) // zone 1 collector down mid-campaign
		r.Plan.SetBurstLink(ShardEndpoint(0), ZoneEndpoint(0),
			netsim.GilbertElliott{PGoodToBad: 0.3, PBadToGood: 0.4, LossGood: 0, LossBad: 0.9})
	})

	dup := obs.GetCounter("netsim.fault.duplicated").Value() - dup0
	down := obs.GetCounter("netsim.fault.down").Value() - down0
	if dup == 0 || down == 0 || res.Lost == 0 || res.Down == 0 {
		t.Fatalf("fault scenario did not exercise dup/down/loss: dup=%d down=%d res=%+v", dup, down, res)
	}
	tot := res.Totals
	if got := obs.GetCounter("netsim.tx.messages").Value() - txM0; got != int64(tot.TxMessages) {
		t.Fatalf("obs tx.messages %d != Totals %d", got, tot.TxMessages)
	}
	if got := obs.GetCounter("netsim.tx.bytes").Value() - txB0; got != int64(tot.TxBytes) {
		t.Fatalf("obs tx.bytes %d != Totals %d", got, tot.TxBytes)
	}
	if got := obs.GetCounter("netsim.rx.messages").Value() - rxM0; got != int64(tot.RxMessages) {
		t.Fatalf("obs rx.messages %d != Totals %d", got, tot.RxMessages)
	}
	if got := obs.GetCounter("netsim.rx.bytes").Value() - rxB0; got != int64(tot.RxBytes) {
		t.Fatalf("obs rx.bytes %d != Totals %d", got, tot.RxBytes)
	}
	if got := obs.GetCounter("netsim.lost.messages").Value() - lost0; got != int64(tot.Dropped) {
		t.Fatalf("obs lost.messages %d != Totals().Dropped %d", got, tot.Dropped)
	}
	// Rx = every delivered envelope; the collectors saw exactly those.
	if res.Envelopes != tot.RxMessages {
		t.Fatalf("collectors saw %d envelopes, rx charged %d", res.Envelopes, tot.RxMessages)
	}
	// The crashed zone heard less than its healthy peers.
	if res.ZoneNMSE[1] <= res.ZoneNMSE[0] && res.ZoneNMSE[1] <= res.ZoneNMSE[2] {
		t.Logf("note: crashed zone NMSE %v not worst (zones %v) — acceptable, seed-dependent", res.ZoneNMSE[1], res.ZoneNMSE)
	}
}

// TestCollectorDupIdempotentAndBudget: duplicated envelopes do not grow
// the measurement set, malformed payloads are counted out, and the
// budget caps distinct cells.
func TestCollectorDupIdempotent(t *testing.T) {
	zc := newZoneCollector(field.Zone{W: 4, H: 4}, 2)
	pay := make([]byte, sampleSize)
	encodeSample(pay, 5, 0, 1.5, 0.1)
	zc.handle(netsim.Message{Payload: pay})
	zc.handle(netsim.Message{Payload: pay}) // duplicate: value update only
	if zc.Count() != 1 || zc.envelopes != 2 {
		t.Fatalf("count=%d envelopes=%d, want 1 and 2", zc.Count(), zc.envelopes)
	}
	encodeSample(pay, 6, 1, 2.5, 0.1)
	zc.handle(netsim.Message{Payload: pay})
	encodeSample(pay, 7, 2, 3.5, 0.1) // beyond budget 2
	zc.handle(netsim.Message{Payload: pay})
	if zc.Count() != 2 || zc.rejected != 1 {
		t.Fatalf("count=%d rejected=%d, want 2 and 1", zc.Count(), zc.rejected)
	}
	encodeSample(pay, 99, 3, 0, 0) // cell out of the 16-cell zone
	zc.handle(netsim.Message{Payload: pay})
	zc.handle(netsim.Message{Payload: pay[:7]})
	if zc.malformed != 2 {
		t.Fatalf("malformed=%d, want 2", zc.malformed)
	}
}

// TestSampleCodecRoundTrip covers the envelope wire format.
func TestSampleCodecRoundTrip(t *testing.T) {
	b := make([]byte, sampleSize)
	encodeSample(b, 1234, 56, -3.25, 0.125)
	cell, node, v, sg, ok := decodeSample(b)
	if !ok || cell != 1234 || node != 56 || v != -3.25 || sg != 0.125 {
		t.Fatalf("round trip: %d %d %v %v %v", cell, node, v, sg, ok)
	}
	if _, _, _, _, ok := decodeSample(b[:sampleSize-1]); ok {
		t.Fatal("short payload decoded")
	}
}
