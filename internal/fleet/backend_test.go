package fleet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

// TestFleetMatchesNodeBackendNMSE is the backend-choice contract from
// DESIGN.md §11: a small campaign runs on either the node.Node backend
// (live goroutine nodes, bus, brokers) or the fleet backend
// (struct-of-arrays shards over netsim batches) and both reconstruct
// the same truth to comparable accuracy. The backends draw different
// samples — equality of NMSE is not expected, the same decode quality
// class is.
func TestFleetMatchesNodeBackendNMSE(t *testing.T) {
	truth := field.GenPlumes(24, 24, 10, []field.Plume{
		{Row: 6, Col: 6, Sigma: 2.5, Amplitude: 20},
		{Row: 16, Col: 18, Sigma: 3, Amplitude: 25},
	})

	// Node backend: the full middleware hierarchy.
	sd, err := core.New(core.Options{
		FieldW: 24, FieldH: 24, ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 1, NodesPerNC: 8, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if err := sd.SetTruth(truth); err != nil {
		t.Fatal(err)
	}
	nodeRes, err := sd.RunCampaign(core.CampaignConfig{TotalM: 96})
	if err != nil {
		t.Fatal(err)
	}

	// Fleet backend: same truth, same zone geometry, a measurement
	// budget in the same class (96 distinct cells across 4 zones).
	p, err := NewPopulation(Config{
		Nodes: 2048, ShardSize: 256,
		FieldW: 24, FieldH: 24, ZoneRows: 2, ZoneCols: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetTruth(truth); err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, 6, 24)
	if err != nil {
		t.Fatal(err)
	}
	fleetRes, err := r.Run(CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fleetRes.Measurements > 96 {
		t.Fatalf("fleet exceeded the per-zone budget: %d distinct cells", fleetRes.Measurements)
	}

	const bar = 0.15
	if nodeRes.GlobalNMSE > bar {
		t.Fatalf("node backend NMSE %v above bar %v", nodeRes.GlobalNMSE, bar)
	}
	if fleetRes.GlobalNMSE > bar {
		t.Fatalf("fleet backend NMSE %v above bar %v (node backend: %v)",
			fleetRes.GlobalNMSE, bar, nodeRes.GlobalNMSE)
	}
	ratio := fleetRes.GlobalNMSE / nodeRes.GlobalNMSE
	if ratio > 10 || ratio < 0.1 {
		t.Fatalf("backends not in the same accuracy class: fleet %v vs node %v",
			fleetRes.GlobalNMSE, nodeRes.GlobalNMSE)
	}
}
