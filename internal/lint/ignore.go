package lint

import (
	"go/token"
	"strings"
)

// The suppression mechanism: a comment of the form
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// silences diagnostics of the named check(s) on the directive's own line
// (trailing comment) or on the line immediately below it (a directive
// comment on its own line above the offending statement). Anywhere else
// the directive has no effect — suppression must sit next to what it
// suppresses, so a refactor that moves the code re-surfaces the finding.
//
// The reason is mandatory. A directive with no check name or no reason
// is malformed; it suppresses nothing and is itself reported under the
// "sdlint" check.

const ignorePrefix = "//lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos    token.Position
	checks []string
	reason string
	ok     bool // well-formed
}

func parseDirective(text string, pos token.Position) (directive, bool) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return directive{}, false
	}
	rest := text[len(ignorePrefix):]
	// Require a space (or end) after the prefix so "//lint:ignoreXYZ" is
	// not a directive at all.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return directive{}, false
	}
	fields := strings.Fields(rest)
	d := directive{pos: pos}
	if len(fields) >= 2 {
		checks := strings.Split(fields[0], ",")
		// An empty segment ("a,,b", ",x", a bare ",") suppresses nothing
		// and usually marks a typo'd check list: malformed, not silently
		// half-working.
		for _, c := range checks {
			if c == "" {
				return d, true
			}
		}
		d.checks = checks
		d.reason = strings.Join(fields[1:], " ")
		d.ok = true
	}
	return d, true
}

// directivesByLine indexes every well-formed directive of a package by
// (filename, line).
type lineKey struct {
	file string
	line int
}

func collectDirectives(pkg *Package) (byLine map[lineKey][]directive, malformed []directive) {
	byLine = map[lineKey][]directive{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				d, isDirective := parseDirective(c.Text, pos)
				if !isDirective {
					continue
				}
				if !d.ok {
					malformed = append(malformed, d)
					continue
				}
				k := lineKey{file: pos.Filename, line: pos.Line}
				byLine[k] = append(byLine[k], d)
			}
		}
	}
	return byLine, malformed
}

// malformedDirectives reports ill-formed ignore comments as diagnostics
// so they cannot silently suppress nothing while looking authoritative.
func malformedDirectives(pkg *Package) []Diagnostic {
	_, bad := collectDirectives(pkg)
	diags := make([]Diagnostic, 0, len(bad))
	for _, d := range bad {
		diags = append(diags, Diagnostic{
			Pos:     d.pos,
			Check:   "sdlint",
			Message: "malformed lint:ignore directive: want //lint:ignore <check> <reason>",
		})
	}
	return diags
}

// suppress drops diagnostics covered by a directive on the same line or
// the line immediately above, and returns the survivors plus the count
// of silenced findings.
func suppress(pkgs []*Package, diags []Diagnostic) (kept []Diagnostic, suppressed int) {
	byLine := map[lineKey][]directive{}
	for _, pkg := range pkgs {
		dirs, _ := collectDirectives(pkg)
		for k, v := range dirs {
			byLine[k] = append(byLine[k], v...)
		}
	}
	kept = diags[:0:0]
	for _, d := range diags {
		if d.Check != "sdlint" && isSuppressed(byLine, d) {
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

func isSuppressed(byLine map[lineKey][]directive, d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range byLine[lineKey{file: d.Pos.Filename, line: line}] {
			for _, c := range dir.checks {
				if c == d.Check {
					return true
				}
			}
		}
	}
	return false
}
