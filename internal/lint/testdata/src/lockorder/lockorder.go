// Package lockorder is golden input for the lock-order analyzer: AB/BA
// cycles, direct and interprocedural self-deadlocks, and the patterns
// that must stay silent (consistent ordering, conditional locking merged
// by intersection, go-spawned callees, suppression).
package lockorder

import "sync"

var muA, muB, muC sync.Mutex

var rw sync.RWMutex

// lockAB and lockBA acquire the package mutexes in opposite orders: both
// closing acquisitions are cycle findings.
func lockAB() {
	muA.Lock()
	muB.Lock() // want `lock-order cycle`
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock() // want `lock-order cycle`
	muA.Unlock()
	muB.Unlock()
}

// consistent ordering with a third lock: an edge, but no cycle.
func lockAC() {
	muA.Lock()
	defer muA.Unlock()
	muC.Lock()
	defer muC.Unlock()
}

// relock is the direct self-deadlock.
func relock() {
	muC.Lock()
	muC.Lock() // want `self-deadlock`
	muC.Unlock()
	muC.Unlock()
}

// relockSuppressed pins the suppression geometry for this analyzer.
func relockSuppressed() {
	muC.Lock()
	//lint:ignore lockorder golden-test fixture: demonstrates audited suppression
	muC.Lock()
	muC.Unlock()
	muC.Unlock()
}

// rlockTwice is the read-read case: exempt (only deadlocks under writer
// starvation; reporting it would drown the signal).
func rlockTwice() {
	rw.RLock()
	rw.RLock()
	rw.RUnlock()
	rw.RUnlock()
}

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// reenter calls a method that re-acquires the lock the caller holds.
func (b *box) reenter() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bump() // want `self-deadlock`
}

// spawn starts bump on its own goroutine: the spawnee shares no lock
// context with the spawner, so holding b.mu here is fine.
func (b *box) spawn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go b.bump()
}

// conditional locking: the lock is only held on one branch, so the merge
// drops it and the following call is not a self-deadlock.
func (b *box) maybeLock(cond bool) {
	if cond {
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	}
	b.bump()
}

// unlockThenCall releases before calling: no finding.
func (b *box) unlockThenCall() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.bump()
}
