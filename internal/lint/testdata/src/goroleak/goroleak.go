// Package goroleak is golden input for the goroutine-leak analyzer:
// unbounded service loops with no shutdown edge, the blessed exit idioms
// (done/ctx select arms, channel-close range, bounded loops), and the
// audited-daemon suppression.
package goroleak

import "context"

func work() {}

// spin leaks: the spawned loop has no exit path at all.
func spin() {
	go func() {
		for { // want `no exit path`
			work()
		}
	}()
}

// helperLoop is only ever reached through a go statement; the finding
// lands on the loop, naming the spawn site.
func helperLoop() {
	for { // want `no exit path`
		work()
	}
}

func spawnHelper() {
	go helperLoop()
}

// bounded exits through the done select arm.
func bounded(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// ctxBounded exits when the context is cancelled.
func ctxBounded(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// drain exits when the channel is closed: range loops are bounded by
// construction.
func drain(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// breakOut exits through an unlabeled break targeting the loop itself; a
// break inside the select targets the select and does not count, so only
// the outer one saves this loop.
func breakOut(ch chan int) {
	go func() {
		for {
			if _, ok := <-ch; !ok {
				break
			}
		}
	}()
}

// labeledBreak exits via a labeled break from inside a select arm.
func labeledBreak(ch chan int) {
	go func() {
	loop:
		for {
			select {
			case _, ok := <-ch:
				if !ok {
					break loop
				}
			}
		}
	}()
}

// selectBreakOnly does NOT exit: its only break targets the select.
func selectBreakOnly(ch chan int) {
	go func() {
		for { // want `no exit path`
			select {
			case <-ch:
				break
			}
		}
	}()
}

// daemon is the audited-suppression case: an intentional process-
// lifetime goroutine.
func daemon() {
	go func() {
		//lint:ignore goroleak golden-test fixture: intentional process-lifetime daemon
		for {
			work()
		}
	}()
}

// block leaks by construction: an empty select never returns.
func block() {
	go func() {
		select {} // want `blocks forever`
	}()
}

// syncLoop is never go-spawned; the same shape is not a finding when it
// runs on the caller's goroutine.
func syncLoop() {
	for {
		work()
	}
}
