// Package obshot is sdlint golden-test input for the obshot analyzer.
// It imports the real repro/internal/obs so the callee resolution under
// test is exactly what production packages exercise.
package obshot

import (
	"fmt"

	"repro/internal/obs"
)

// Hoisted handles are the sanctioned form: interned once at package
// init, nil-safe per event.
var (
	hoistedEvents = obs.GetCounter("obshot.events")
	hoistedDepth  = obs.GetGauge("obshot.depth")
	hoistedLat    = obs.GetHistogram("obshot.latency_ms", obs.LatencyBuckets)
)

func hotLoop(n int) {
	for i := 0; i < n; i++ {
		hoistedEvents.Inc()
		hoistedDepth.Set(float64(i))
		hoistedLat.Observe(float64(i))
	}
}

func perEventLookup(n int) {
	obs.GetCounter("obshot.bad.events").Inc() // want `obs handle lookup GetCounter inside a function body`
	obs.GetGauge("obshot.bad.depth").Set(1)   // want `obs handle lookup GetGauge inside a function body`
	g := obs.Default.Gauge("obshot.bad.reg")  // want `obs handle lookup Gauge inside a function body`
	g.Set(float64(n))
}

func sprintfLabel(zone int) {
	span := obs.StartSpan(fmt.Sprintf("zone.%d.decode", zone)) // want `fmt\.Sprintf builds an obs metric name per call`
	span.Finish()
}

// Spans with static names are fine per event: the analyzer bans the
// per-call registry lookups and name formatting, not recording itself.
func staticSpan() {
	span := obs.StartSpan("obshot.decode")
	span.Finish()
}
