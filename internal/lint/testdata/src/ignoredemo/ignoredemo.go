// Package ignoredemo is sdlint golden-test input for the //lint:ignore
// suppression mechanism, exercised through printban findings.
package ignoredemo

import "fmt"

func suppressed() {
	fmt.Println("same line") //lint:ignore printban directive on the same line suppresses

	//lint:ignore printban directive on the line immediately above suppresses
	fmt.Println("line above")

	//lint:ignore printban,errcheck a multi-check directive suppresses each named check
	fmt.Println("multi check")
}

func notSuppressed() {
	//lint:ignore printban two lines above the finding is the wrong line; must NOT suppress

	fmt.Println("too far") // want `fmt\.Println writes to stdout from a library package`

	//lint:ignore errcheck wrong check name; must NOT suppress printban
	fmt.Println("wrong check") // want `fmt\.Println writes to stdout from a library package`

	fmt.Println("directive after") // want `fmt\.Println writes to stdout from a library package`
	//lint:ignore printban a directive below the finding only covers its own line and the next; must NOT suppress the line above
}

func malformed() {
	//lint:ignore printban
	fmt.Println("reasonless") // want `fmt\.Println writes to stdout from a library package`
}
