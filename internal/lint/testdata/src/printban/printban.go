// Package printban is sdlint golden-test input for the printban
// analyzer. This is a library package, so ambient output is banned.
package printban

import (
	"fmt"
	"io"
	"log"
	"os"
)

func ambient() {
	fmt.Println("hello")  // want `fmt\.Println writes to stdout from a library package`
	fmt.Printf("%d\n", 1) // want `fmt\.Printf writes to stdout from a library package`
	fmt.Print("x")        // want `fmt\.Print writes to stdout from a library package`
	log.Printf("x")       // want `log\.Printf in library package`
	log.Println("x")      // want `log\.Println in library package`
	println("x")          // want `builtin println in library package`
	print("x")            // want `builtin print in library package`
}

func fatal() {
	log.Fatalf("x") // want `log\.Fatalf in library package`
}

// Formatting and explicit writers are always fine: the ban is on ambient
// streams, not on formatting.
func explicit(w io.Writer) string {
	fmt.Fprintln(w, "x")
	fmt.Fprintf(os.Stderr, "x") // explicit writer, caller's choice
	return fmt.Sprintf("x=%d", 1)
}

// A custom logger bound to an injected writer is fine too.
func scoped(w io.Writer) {
	l := log.New(w, "p: ", 0)
	l.Printf("x")
}
