// Package callgraphfix is a hand-checked fixture for the call-graph
// builder: every resolution rule (direct call, concrete-receiver method,
// interface dispatch left unresolved, function literals, local literal
// bindings) and every edge kind (call, go, defer) appears exactly once
// in a known place, and callgraph_test.go pins the formatted graph.
package callgraphfix

type ringer struct{ n int }

func (r *ringer) Ring() { r.n++ }

type noise interface{ Ring() }

func helper() {}

// Entry exercises one of everything.
func Entry(ifc noise) {
	helper()       // call edge to a package function
	defer helper() // defer edge
	r := &ringer{}
	r.Ring()    // call edge through a concrete receiver
	go r.Ring() // go edge
	ifc.Ring()  // interface dispatch: unresolved, no edge
	send := func() { helper() }
	send()      // call edge to the bound literal
	go func() { // go edge to an anonymous literal
		helper()
	}()
}

// SpawnBound spawns a locally-bound literal: go-edge resolution runs
// through the same binding table as plain calls, so the literal body
// becomes goroutine-reachable.
func SpawnBound() {
	work := func() { helper() }
	go work()
}

// Rebound binds two literals to one variable: binding resolution is
// single-assignment only, so the call through f stays unresolved — no
// edge, and neither literal is reachable from Rebound.
func Rebound(flip bool) {
	f := func() { helper() }
	if flip {
		f = func() {}
	}
	f()
}
