// Package hotalloc is golden input for the hot-path allocation
// analyzer: per-element allocations in loops of hot functions and in
// loop-hot callees, per-event Sprintf/concat/boxing, and the shapes
// that stay silent — entry-level buffers, value struct literals, map
// key concatenation, error paths, amortized cache boundaries, go-edge
// cutoff, and suppression.
package hotalloc

import "fmt"

// Serve is a per-event entry point of the golden test.
func Serve(keys []string) int {
	total := 0
	for _, k := range keys {
		m := make(map[string]int) // want `make allocates per element`
		m[k] = 1
		total += handle(k)
		total += compile(k)
	}
	return total
}

// handle is reached through Serve's loop: loop-hot, so even a top-level
// literal runs once per element.
func handle(k string) int {
	buf := []int{1, 2, 3} // want `slice literal allocates per element`
	_ = k
	return len(buf)
}

// compile is listed as an amortized boundary (cache-gated): it is still
// scanned, but parse behind it is not hot.
func compile(src string) int { return parse(src) }

func parse(src string) int {
	toks := make([]string, 0, len(src))
	return len(toks)
}

// Label builds a per-event string: flagged anywhere in a hot function.
func Label(id int) string {
	return fmt.Sprintf("node-%d", id) // want `builds a string per event`
}

// Concat allocates per event even outside a loop.
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

var table = map[string]int{}

// LookupJoined concatenates only inside a map index: the compiler keeps
// that key on the stack, so the idiom is exempt.
func LookupJoined(a, b string) int {
	return table[a+"|"+b]
}

// Box stores a scalar into an interface-valued map cell: one heap
// object per call.
func Box(env map[string]any, v float64) {
	env["value"] = v // want `boxes a float64 into an interface`
}

// Closures allocates a closure per element.
func Closures(keys []string) {
	for range keys {
		f := func() {} // want `closure allocated per element`
		f()
	}
}

type nodeT struct{ v int }

// Pointers: &T{} in a loop heap-allocates per element; the result
// buffer made once outside the loop is clean.
func Pointers(n int) []*nodeT {
	out := make([]*nodeT, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &nodeT{v: i}) // want `heap-allocates per element`
	}
	return out
}

type cell struct{ r, c int }

// Fill appends value struct literals: stack-allocated, exempt.
func Fill(n int) []cell {
	out := make([]cell, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cell{r: i, c: i})
	}
	return out
}

// Validated only allocates on the error path: exempt.
func Validated(n int) error {
	if n < 0 {
		return fmt.Errorf("bad count %s", fmt.Sprint(n))
	}
	return nil
}

// SpawnOff hands work to a goroutine: go edges are not followed, so
// background's Sprintf is off the event path.
func SpawnOff(n int) {
	go background(n)
}

func background(n int) {
	_ = fmt.Sprintf("bg-%d", n)
}

// Suppressed pins the audited-ignore path.
func Suppressed(keys []string) {
	for range keys {
		//lint:ignore hotalloc golden-test fixture: demonstrates audited suppression
		_ = make([]int, 4)
	}
}
