// Package raceguard is golden input for the shared-state race analyzer:
// goroutine-reachable writes to "guarded by" fields without the guard,
// the entry-held fixpoint that keeps always-called-locked helpers clean,
// the read-lock-only write, mixed atomic/plain field access, and the
// patterns that must stay silent (locked writes, reads, Locked-suffix
// convention, typed atomics, suppression).
package raceguard

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	rw sync.RWMutex
	m  int // guarded by rw
}

// bump writes under the lock and is spawned on a goroutine: clean.
func (c *counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// flush is reachable from a go statement and writes without the guard.
func (c *counter) flush() {
	c.n = 0 // want `guarded by mu but written without holding it`
}

// readOnly reads without the lock on a goroutine: reads are mutexguard's
// department; raceguard flags only writes.
func (c *counter) readOnly() int {
	return c.n
}

// applyLocked carries the caller-holds-the-lock naming convention: the
// audit burden is on its callers, not on this body.
func (c *counter) applyLocked() {
	c.n++
}

// helper is only ever called with mu held: the entry fixpoint proves the
// lock across the call edge, no rename needed.
func (c *counter) helper() {
	c.n = 42
}

// run is a goroutine body; its locked call chain stays clean.
func (c *counter) run() {
	c.mu.Lock()
	c.helper()
	c.mu.Unlock()
	c.applyLocked()
}

// rflush writes while holding only the read lock: readers may run
// concurrently, so this is still a race.
func (c *counter) rflush() {
	c.rw.RLock()
	c.m = 1 // want `holding only the read lock`
	c.rw.RUnlock()
}

// suppressed pins the audited-ignore path.
func (c *counter) suppressed() {
	//lint:ignore raceguard golden-test fixture: demonstrates audited suppression
	c.n = 7
}

// aliasWrite writes through a single-assignment alias: type-level field
// identity sees the guarded field regardless of the variable name.
func aliasWrite(c *counter) {
	d := c
	d.n = 9 // want `guarded by mu but written without holding it`
}

func spawnAll(c *counter) {
	go c.bump()
	go c.flush()
	go c.readOnly()
	go c.run()
	go c.rflush()
	go c.suppressed()
	go aliasWrite(c)
}

// notSpawned writes without the lock but is never reachable from a go
// statement: sequential callers are mutexguard's contract.
func notSpawned(c *counter) {
	c.n = 3
}

// published uses a typed atomic pointer: the only access path is the
// atomic method set, so the snapshot/serve fast-path shape passes with
// no annotation at all.
type published struct {
	cur atomic.Pointer[counter]
}

func (p *published) swap(c *counter) {
	p.cur.Store(c)
}

func (p *published) watch() {
	go p.swap(nil)
}

// mixed touches the same field through sync/atomic in one place and
// plainly in others: there is no consistent synchronization story, and
// every plain access is a finding.
type mixed struct {
	hits int64
}

func (m *mixed) inc() {
	atomic.AddInt64(&m.hits, 1)
}

func (m *mixed) reset() {
	m.hits = 0 // want `mixed atomic/non-atomic`
}

func (m *mixed) read() int64 {
	return m.hits // want `mixed atomic/non-atomic`
}
