// Package aliaspub is golden input for the immutability-after-publish
// analyzer: writes through values already handed to a publish sink
// (configured function, channel send, atomic.Pointer store), aliases,
// appends into published backing arrays, mutation via module-local
// callees, the exported-accessor-returns-buffer rule, and the clean
// copy-on-write shapes that must stay silent.
package aliaspub

import "sync/atomic"

type buf struct {
	n int
}

// publish is the configured sink of the golden test (argument 0).
func publish(b *buf) {}

var cur atomic.Pointer[buf]

// writeAfterPublish is the basic CoW violation.
func writeAfterPublish() {
	b := &buf{}
	b.n = 1 // building before the sink is fine
	publish(b)
	b.n = 2 // want `written here after being published`
}

// sendThenWrite: a channel send transfers ownership the same way.
func sendThenWrite(ch chan *buf) {
	b := &buf{}
	ch <- b
	b.n = 3 // want `written here after being published`
}

// storeThenWrite: so does an atomic.Pointer store.
func storeThenWrite() {
	b := &buf{}
	cur.Store(b)
	b.n = 4 // want `written here after being published`
}

// aliasWrite: a single-assignment alias is the same backing value.
func aliasWrite() {
	b := &buf{}
	a := b
	publish(b)
	a.n = 5 // want `written here after being published`
}

// addrRebind: publishing &n makes a plain rebind of n a write through
// the published pointer.
func addrRebind(ch chan *int) {
	n := 0
	ch <- &n
	n = 6 // want `written here after being published`
}

// appendAfterPublish: append writes into the shared backing array
// whenever capacity allows.
func appendAfterPublish(ch chan []int) {
	s := make([]int, 0, 8)
	ch <- s
	s = append(s, 1) // want `append to s after it was published`
}

// scrub mutates its parameter; scrubVia forwards to it.
func scrub(b *buf)    { b.n = 0 }
func scrubVia(b *buf) { scrub(b) }

// calleeMutates: passing the published value to a mutating callee is
// flagged at the call site.
func calleeMutates() {
	b := &buf{}
	publish(b)
	scrub(b) // want `the callee writes through this parameter`
}

// transitiveMutates: the parameter-mutation summary is transitive.
func transitiveMutates() {
	b := &buf{}
	publish(b)
	scrubVia(b) // want `the callee writes through this parameter`
}

// inspect only reads its parameter: passing the published value on is
// fine.
func inspect(b *buf) int { return b.n }

func calleeReads() {
	b := &buf{}
	publish(b)
	_ = inspect(b)
}

// cowClean copies before mutating: the canonical fix shape.
func cowClean(ch chan []int) {
	s := []int{1, 2}
	ch <- s
	t := append([]int(nil), s...)
	t[0] = 9
	_ = t
}

// suppressed pins the audited-ignore path.
func suppressed() {
	b := &buf{}
	publish(b)
	//lint:ignore aliaspub golden-test fixture: demonstrates audited suppression
	b.n = 7
}

// Ring is a published type (publishRing hands it to a sink), so its
// exported accessors must not return internal buffers uncopied.
type Ring struct {
	items []int
}

func publishRing(ch chan *Ring) {
	r := &Ring{}
	ch <- r
}

// Items returns the internal slice directly: every caller gets a
// mutable alias of served data.
func (r *Ring) Items() []int {
	return r.items // want `callers get a mutable alias`
}

// CopyItems returns a copy: the Registry.History shape, clean.
func (r *Ring) CopyItems() []int {
	return append([]int(nil), r.items...)
}
