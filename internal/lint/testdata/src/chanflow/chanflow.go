// Package chanflow is the golden fixture for the chanflow analyzer: one
// example of every channel-lifecycle defect it reports, and the
// idiomatic patterns that must stay silent.
package chanflow

import "repro/internal/lint/testdata/src/chanown"

// --- nil-channel operations -------------------------------------------------

func NilSend() {
	var ch chan int
	ch <- 1 // want `send on nil channel ch blocks forever`
}

func NilReceive() {
	var ch chan int
	<-ch // want `receive on nil channel ch blocks forever`
}

func NilRange() {
	var ch chan int
	for range ch { // want `range over nil channel ch blocks forever`
	}
}

func NilClose() {
	var ch chan int
	close(ch) // want `close of nil channel ch \(panics\)`
}

// MadeLater is clean: the assignment clears the nil fact.
func MadeLater() {
	var ch chan int
	ch = make(chan int, 1)
	ch <- 1
	close(ch)
}

// MaybeMade is clean: must-nil is an intersection fact, and one branch
// makes the channel.
func MaybeMade(enable bool) {
	var ch chan int
	if enable {
		ch = make(chan int, 1)
	}
	select {
	case ch <- 1:
	default:
	}
}

// NilSelectArm is clean: a provably-nil channel in a select comm clause
// is the standard way to disable that arm.
func NilSelectArm(done chan struct{}) {
	var idle chan int
	select {
	case <-idle:
	case <-done:
	}
}

// --- double close -----------------------------------------------------------

func DoubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want `ch may already be closed at chanflow.go:\d+ \(double close\)`
}

func DeferDoubleClose() {
	ch := make(chan int)
	defer close(ch)
	close(ch) // want `ch is closed again by the deferred close at chanflow.go:\d+ \(double close\)`
}

func DeferTwice() {
	ch := make(chan int)
	defer close(ch)
	defer close(ch) // want `ch is closed again by the deferred close at chanflow.go:\d+ \(double close\)`
}

// BranchClose is clean: exactly one of the two closes runs (the first
// branch returns), so the join sees a single close.
func BranchClose(fail bool) {
	ch := make(chan int)
	if fail {
		close(ch)
		return
	}
	close(ch)
}

// Remake is clean — the close-then-remake notify pattern: reassignment
// clears the closed state.
type ticker struct{ notify chan struct{} }

func (t *ticker) bump() {
	close(t.notify)
	t.notify = make(chan struct{}, 1)
	t.notify <- struct{}{}
}

// --- send after close -------------------------------------------------------

func SendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want `send on ch after close at chanflow.go:\d+ \(panics\)`
}

// LoopClose: the close in iteration N reaches the send in iteration
// N+1, and the close itself re-runs.
func LoopClose(items []int) {
	ch := make(chan int, len(items))
	for _, v := range items {
		ch <- v   // want `send on ch after close at chanflow.go:\d+ \(panics\)`
		close(ch) // want `ch may already be closed at chanflow.go:\d+ \(double close\)`
	}
}

// SelectSendClosed: send on a closed channel panics even inside a
// select (only the nil checks are suppressed there).
func SelectSendClosed(ch chan int) {
	close(ch)
	select {
	case ch <- 1: // want `send on ch after close at chanflow.go:\d+ \(panics\)`
	default:
	}
}

// GoClose is clean: the goroutine's sends and close have no flow order
// against the spawner, and are internally ordered correctly.
func GoClose() {
	ch := make(chan int)
	go func() {
		for i := 0; i < 3; i++ {
			ch <- i
		}
		close(ch)
	}()
	for range ch {
	}
}

// --- interprocedural: call/defer edges --------------------------------------

func sendInto(ch chan int, v int) { ch <- v }

func closeIt(ch chan int) { close(ch) }

func closeVia(ch chan int) { closeIt(ch) }

func CallSendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	sendInto(ch, 1) // want `call to repro/internal/lint/testdata/src/chanflow.sendInto sends on ch, closed at chanflow.go:\d+ \(send after close\)`
}

// CallDoubleClose: the callee's close is composed into the flow state,
// so the later direct close is a double close.
func CallDoubleClose() {
	ch := make(chan int)
	closeIt(ch)
	close(ch) // want `ch may already be closed at chanflow.go:\d+ \(double close\)`
}

// TransitiveDoubleClose: the summary propagates through closeVia.
func TransitiveDoubleClose() {
	ch := make(chan int)
	close(ch)
	closeVia(ch) // want `call to repro/internal/lint/testdata/src/chanflow.closeVia closes ch again, closed at chanflow.go:\d+ \(double close\)`
}

// --- fields and methods -----------------------------------------------------

type worker struct {
	out chan int
}

func (w *worker) emit(v int) { w.out <- v }

func FieldSendAfterClose(w *worker) {
	close(w.out)
	w.emit(3) // want `call to \(\*repro/internal/lint/testdata/src/chanflow.worker\)\.emit sends on worker.out, closed at chanflow.go:\d+ \(send after close\)`
}

// --- ownership --------------------------------------------------------------

// ForeignClose closes a channel field belonging to another package's
// type: only the owner knows when no sender remains.
func ForeignClose(f *chanown.Feed) {
	close(f.C) // want `close of channel field Feed.C owned by package repro/internal/lint/testdata/src/chanown \(close by non-owner\)`
}

// --- audited suppression ----------------------------------------------------

func SuppressedDoubleClose() {
	ch := make(chan int)
	close(ch)
	//lint:ignore chanflow fixture demonstrates the audited escape hatch
	close(ch)
}
