// Package nondet is sdlint golden-test input for the nondeterminism
// analyzer. Each "want" comment pins an expected diagnostic.
package nondet

import (
	"math/rand"
	"sort"
	"time"
)

// Global math/rand draws from process-global state: banned.
func globalRand() int {
	n := rand.Intn(10)                 // want `global rand\.Intn in deterministic package`
	f := rand.Float64()                // want `global rand\.Float64 in deterministic package`
	p := rand.Perm(4)                  // want `global rand\.Perm in deterministic package`
	rand.Shuffle(4, func(i, j int) {}) // want `global rand\.Shuffle in deterministic package`
	return n + int(f) + p[0]
}

// The explicitly seeded form is the allowed one.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) + r.Perm(4)[0]
}

// Wall-clock reads are banned.
func wallClock() float64 {
	t := time.Now()              // want `wall-clock time\.Now in deterministic package`
	d := time.Since(t)           // want `wall-clock time\.Since in deterministic package`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in deterministic package`
	return d.Seconds()
}

// Pure duration arithmetic and explicit instants are fine.
func durations() time.Duration {
	base := time.Unix(0, 0)
	return base.Add(3 * time.Second).Sub(base)
}

// Appending to an outer slice while ranging a map leaks iteration order.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside map range`
	}
	return out
}

// The canonical collect-then-sort idiom is order-independent.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Commutative aggregation over a map is order-independent.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Sends observe iteration order on the receiving side.
func sendKeys(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map range`
	}
}

// Appending to a slice declared inside the loop body is fine: its
// contents never outlive one iteration.
func innerAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
