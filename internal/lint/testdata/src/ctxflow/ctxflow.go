// Package ctxflow is golden input for the context-propagation analyzer:
// fresh context roots minted inside context-accepting functions, calls
// that drop the incoming ctx, blocking convenience wrappers with known
// ctx-aware variants, and the derivation chains that must stay silent.
package ctxflow

import "context"

// Request is the context-less convenience wrapper the golden blocking
// map points at RequestContext.
func Request(topic string) {}

// RequestContext is the context-aware variant.
func RequestContext(ctx context.Context, topic string) {}

func waitDone(done <-chan struct{}) {}

// forward is the good path: the incoming ctx flows down.
func forward(ctx context.Context) {
	RequestContext(ctx, "a")
}

// derive tracks ctx through context.With* assignments.
func derive(ctx context.Context) {
	c2, cancel := context.WithCancel(ctx)
	defer cancel()
	RequestContext(c2, "a")
}

// fresh mints a new root instead of deriving: rule one.
func fresh(ctx context.Context) {
	RequestContext(context.Background(), "a") // want `derive from the incoming ctx`
}

// drop passes a context unrelated to the incoming one.
func drop(ctx context.Context) {
	var other context.Context
	RequestContext(other, "a") // want `does not forward the caller's context`
}

// downgrade calls the blocking wrapper, discarding ctx silently.
func downgrade(ctx context.Context) {
	Request("a") // want `use RequestContext`
}

// downgradeSuppressed pins the suppression geometry: a detached
// background task may outlive the request, with an audited reason.
func downgradeSuppressed(ctx context.Context) {
	//lint:ignore ctxflow golden-test fixture: detached task outlives the request
	Request("a")
}

// closure captures ctx like any other variable; the rules follow it into
// the literal body.
func closure(ctx context.Context) {
	run := func() {
		Request("a") // want `use RequestContext`
	}
	run()
}

// noCtx has no context parameter: the wrapper and a fresh root are both
// fine here.
func noCtx() {
	Request("a")
	ctx := context.Background()
	RequestContext(ctx, "a")
}

// doneForward treats a conventional shutdown channel like a context.
func doneForward(done <-chan struct{}) {
	waitDone(done)
}

// doneDrop passes an unrelated channel instead of the incoming one.
func doneDrop(done <-chan struct{}) {
	var other chan struct{}
	waitDone(other) // want `does not forward the caller's context`
}
