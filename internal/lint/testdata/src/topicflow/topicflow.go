// Package topicflow is the golden fixture for the topicflow analyzer.
// It carries its own miniature bus API — the root functions are wired up
// by FuncID in lint_test.go, exactly the way project.go wires the real
// middleware's — plus one example of every protocol defect the analyzer
// reports, and the matched pairs that must stay silent.
package topicflow

import (
	"encoding/json"
	"fmt"
)

// --- protocol roots (bodies are never endpoints) ----------------------------

type Bus struct{}

func (b *Bus) Publish(topic string, payload []byte) error         { return nil }
func (b *Bus) PublishRetained(topic string, payload []byte) error { return nil }
func (b *Bus) Subscribe(pattern string, buffer int) error         { return nil }
func (b *Bus) Retained(topic string) ([]byte, bool)               { return nil, false }

func Request(b *Bus, topic string, body, out any) error { return nil }

func Respond(b *Bus, pattern string, fn func(topic string, body []byte) (any, error)) error {
	return nil
}

// --- payload types ----------------------------------------------------------

type MeasureReq struct{ Kind int }
type MeasureReply struct{ Value float64 }
type StatusReply struct{ Up bool }
type BadBody struct{ X int }

// --- matched pairs: no findings ---------------------------------------------

// CleanPair: an unresolved parameter degrades to an abstract segment,
// which must still match the same parameter on the other side.
func CleanPair(b *Bus, id string) {
	_ = b.Subscribe("telemetry/"+id+"/#", 8)
	_ = b.Publish("telemetry/"+id+"/cpu", nil)
	_ = b.PublishRetained("telemetry/"+id+"/last", nil)
}

// SprintfPair exercises the format-string shape abstraction: %d becomes
// an abstract segment.
func SprintfPair(b *Bus, zone int) {
	_ = b.Subscribe(fmt.Sprintf("zone/%d/#", zone), 4)
	_ = b.Publish(fmt.Sprintf("zone/%d/load", zone), nil)
}

// announceTopic exercises module-local constant folding.
const announceTopic = "cluster/announce"

func ConstPair(b *Bus) {
	_ = b.Subscribe(announceTopic, 1)
	_ = b.Publish(announceTopic, nil)
}

// CleanRequest/CleanResponder: a request whose body and reply types both
// agree with the responder it reaches.
func CleanRequest(b *Bus, id string) {
	var out MeasureReply
	_ = Request(b, "node/"+id+"/measure", MeasureReq{Kind: 1}, &out)
}

func CleanResponder(b *Bus) {
	_ = Respond(b, "node/+/measure", handleMeasure)
}

func handleMeasure(topic string, body []byte) (any, error) {
	var req MeasureReq
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	return MeasureReply{Value: float64(req.Kind)}, nil
}

// RetainedPair: a retained publish with no live subscriber is satisfied
// by a retained read.
func RetainedPair(b *Bus) {
	_ = b.PublishRetained("retained/ok", nil)
	_, _ = b.Retained("retained/ok")
}

// --- orphan publishes -------------------------------------------------------

func Orphan(b *Bus) {
	_ = b.Publish("lost/event", nil) // want `publish on "lost/event" matches no subscription or responder pattern \(orphan publish\)`
}

func RetainedOrphan(b *Bus) {
	_ = b.PublishRetained("retained/orphan", nil) // want `retained publish on "retained/orphan" matches no subscription, responder, or retained read \(orphan publish\)`
}

// publishVia exercises parametric lifting: the endpoint is reported at
// the caller that supplies the topic, not here.
func publishVia(b *Bus, topic string) { _ = b.Publish(topic, nil) }

func LiftedOrphan(b *Bus) {
	publishVia(b, "lifted/orphan") // want `publish on "lifted/orphan" matches no subscription or responder pattern \(orphan publish\)`
}

// --- unanswered request -----------------------------------------------------

func Unanswered(b *Bus) {
	var out StatusReply
	_ = Request(b, "ghost/status", struct{}{}, &out) // want `request on "ghost/status" has no matching responder or subscription: it can only time out \(unanswered request\)`
}

// --- statically invalid topics and patterns ---------------------------------

func Invalid(b *Bus) {
	_ = b.Subscribe("a//b", 1)  // want `statically invalid subscribe pattern "a//b": empty segment`
	_ = b.Subscribe("a/#/b", 1) // want `statically invalid subscribe pattern "a/#/b": "#" before the final segment`
	_ = b.Publish("a/+/b", nil) // want `statically invalid publish topic "a/\+/b": wildcard segment in a concrete topic`
}

// --- payload mismatch -------------------------------------------------------

// MismatchedRequest reaches handleMeasure (the pattern matches) but
// sends the wrong body type and decodes the reply into the wrong type.
func MismatchedRequest(b *Bus, id string) {
	var out StatusReply
	_ = Request(b, "node/"+id+"/measure", BadBody{X: 2}, &out) // want `request on "node/\+/measure" sends body type topicflow.BadBody but the responder at topicflow.go:\d+ decodes topicflow.MeasureReq \(payload mismatch\)` `request on "node/\+/measure" decodes the reply into topicflow.StatusReply but the responder at topicflow.go:\d+ replies with topicflow.MeasureReply \(payload mismatch\)`
}

// --- unrequested responder --------------------------------------------------

func DeadResponder(b *Bus) {
	_ = Respond(b, "dead/end", handleStatus) // want `responder on "dead/end" is targeted by no request or publish \(unrequested responder\)`
}

func handleStatus(topic string, body []byte) (any, error) { return StatusReply{Up: true}, nil }

// --- audited suppression ----------------------------------------------------

func Suppressed(b *Bus) {
	//lint:ignore topicflow fixture demonstrates the audited escape hatch
	_ = b.Publish("suppressed/orphan", nil)
}
