// Package errcheck is sdlint golden-test input for the errcheck-lite
// analyzer.
package errcheck

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func fail() error        { return errors.New("boom") }
func pair() (int, error) { return 0, errors.New("boom") }
func value() int         { return 1 }
func multi() (a, b int)  { return 1, 2 }

type closer struct{}

func (closer) Close() error { return nil }

func discards(c closer) {
	fail()        // want `error result of fail is silently discarded`
	pair()        // want `error result of pair is silently discarded`
	c.Close()     // want `error result of Close is silently discarded`
	_ = fail()    // want `error result of fail is discarded to _ without a lint:ignore reason`
	_, _ = pair() // want `error result of pair is discarded to _ without a lint:ignore reason`
}

func handled() error {
	if err := fail(); err != nil {
		return err
	}
	v, err := pair()
	if err != nil {
		return err
	}
	_ = v
	return nil
}

func exemptForms(c closer) {
	// Non-error results carry no obligation.
	value()
	_ = value()
	_, _ = multi()

	// Deferred discards are out of errcheck-lite's scope.
	defer c.Close()

	// bytes.Buffer and strings.Builder are structurally infallible.
	var b bytes.Buffer
	b.WriteString("x")
	var sb strings.Builder
	sb.WriteByte('x')
	fmt.Fprintf(&b, "n=%d", 1)
	fmt.Fprintln(&sb, "x")

	// The sanctioned escape hatch: blank assignment plus an audited
	// ignore directive.
	//lint:ignore errcheck golden-file demonstration of the escape hatch
	_ = fail()
}
