// Package chanown provides the foreign channel owner for the chanflow
// golden fixture: a type whose channel field only this package may
// close.
package chanown

type Feed struct {
	C chan int
}

func New() *Feed { return &Feed{C: make(chan int, 1)} }

// Close is the owner's shutdown path — closing Feed.C here is fine.
func (f *Feed) Close() { close(f.C) }
