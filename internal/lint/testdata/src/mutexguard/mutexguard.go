// Package mutexguard is sdlint golden-test input for the mutexguard
// analyzer.
package mutexguard

import "sync"

type counterBox struct {
	mu    sync.Mutex
	n     int // guarded by mu
	free  int
	total int // guarded by mu
}

// Locking before the access satisfies the contract.
func (b *counterBox) Good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n + b.total
}

// Accessing a guarded field without the lock is the bug class.
func (b *counterBox) Bad() int {
	return b.n // want `counterBox\.n is guarded by mu, but method Bad does not lock it`
}

// Writes count as accesses too.
func (b *counterBox) BadWrite(v int) {
	b.total = v // want `counterBox\.total is guarded by mu, but method BadWrite does not lock it`
}

// Unguarded fields carry no obligation.
func (b *counterBox) Free() int { return b.free }

// The Locked suffix is the documented caller-holds-the-lock convention.
func (b *counterBox) totalLocked() int { return b.n + b.total }

type rwBox struct {
	mu sync.RWMutex
	// cache holds recent lookups; guarded by mu.
	cache map[string]int
}

// RLock satisfies the contract for readers.
func (b *rwBox) Read(k string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.cache[k]
}

func (b *rwBox) Peek(k string) int {
	return b.cache[k] // want `rwBox\.cache is guarded by mu, but method Peek does not lock it`
}

// Naming a non-mutex (or missing) sibling is itself a finding.
type brokenAnnotation struct {
	// guarded by missing
	state int // want `guarded-by comment names "missing", which is not a sync\.Mutex/RWMutex field`
}
