package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The golden harness: each package under testdata/src is lint-run with
// one analyzer, and every `// want `+"`regex`"+`` comment in the source
// must be matched by exactly the diagnostics the analyzer reports on
// that line — no extras, no misses.

// testdataScope admits the golden packages into scoped analyzers.
var testdataScope = pathMatcher("repro/internal/lint/testdata/...")

var (
	loaderOnce sync.Once
	testLdr    *Loader
	testLdrErr error
)

// testLoader shares one Loader (and so one type-checked stdlib) across
// all golden tests; the source importer is the expensive part.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		testLdr, testLdrErr = NewLoader(filepath.Join("..", ".."))
	})
	if testLdrErr != nil {
		t.Fatalf("NewLoader: %v", testLdrErr)
	}
	return testLdr
}

func loadTestdata(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := testLoader(t).LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load testdata/src/%s: %v", name, err)
	}
	return pkg
}

type wantAnno struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantPatternRe = regexp.MustCompile("`([^`]+)`")

// collectWants extracts the `// want` annotations from a loaded package.
// One comment may carry several backquoted regexes (several diagnostics
// expected on the same line).
func collectWants(t *testing.T, pkg *Package) []*wantAnno {
	t.Helper()
	var wants []*wantAnno
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(body, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantPatternRe.FindAllStringSubmatch(body, -1)
				if len(matches) == 0 {
					t.Fatalf("%s:%d: want comment without a backquoted pattern", pos.Filename, pos.Line)
				}
				for _, m := range matches {
					wants = append(wants, &wantAnno{
						file: pos.Filename,
						line: pos.Line,
						re:   regexp.MustCompile(m[1]),
					})
				}
			}
		}
	}
	return wants
}

// runGolden lints one testdata package with one analyzer and diffs the
// diagnostics of the named checks against the want annotations.
func runGolden(t *testing.T, name string, a *Analyzer, checks ...string) {
	t.Helper()
	pkg := loadTestdata(t, name)
	res := Run([]*Package{pkg}, []*Analyzer{a})

	keep := map[string]bool{}
	for _, c := range checks {
		keep[c] = true
	}
	wants := collectWants(t, pkg)
	for _, d := range res.Diagnostics {
		if !keep[d.Check] {
			continue
		}
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: missing diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestGoldenNondeterminism(t *testing.T) {
	runGolden(t, "nondet", Nondeterminism(testdataScope), "nondeterminism")
}

func TestGoldenMutexGuard(t *testing.T) {
	runGolden(t, "mutexguard", MutexGuard(), "mutexguard")
}

func TestGoldenObsHot(t *testing.T) {
	runGolden(t, "obshot", ObsHot(testdataScope, ObsPath), "obshot")
}

func TestGoldenErrCheck(t *testing.T) {
	runGolden(t, "errcheck", ErrCheck(testdataScope), "errcheck")
}

func TestGoldenPrintBan(t *testing.T) {
	runGolden(t, "printban", PrintBan(pathMatcher()), "printban")
}

func TestGoldenLockOrder(t *testing.T) {
	runGolden(t, "lockorder", Lockorder(), "lockorder")
}

func TestGoldenGoroLeak(t *testing.T) {
	runGolden(t, "goroleak", GoroLeak(), "goroleak")
}

func TestGoldenCtxFlow(t *testing.T) {
	blocking := map[string]string{
		"repro/internal/lint/testdata/src/ctxflow.Request": "RequestContext",
	}
	runGolden(t, "ctxflow", CtxFlow(blocking, "repro/"), "ctxflow")
}

func TestGoldenRaceGuard(t *testing.T) {
	runGolden(t, "raceguard", RaceGuard(), "raceguard")
}

// testAliasPubSinks configures the fixture's own publish function as a
// sink (argument 0), the way project.go lists the middleware's.
func testAliasPubSinks() map[string]int {
	return map[string]int{
		"repro/internal/lint/testdata/src/aliaspub.publish": 0,
	}
}

func TestGoldenAliasPub(t *testing.T) {
	runGolden(t, "aliaspub", AliasPub(testAliasPubSinks(), "repro/"), "aliaspub")
}

// testHotAllocEntries: every per-event entry point of the fixture, plus
// the amortized boundary, mirroring the HotEntryPoints/HotAmortizedStops
// pair in project.go.
func testHotAllocEntries() (entries, stops []string) {
	const p = "repro/internal/lint/testdata/src/hotalloc."
	return []string{
			p + "Serve", p + "Label", p + "Concat", p + "LookupJoined",
			p + "Box", p + "Closures", p + "Pointers", p + "Fill",
			p + "Validated", p + "SpawnOff", p + "Suppressed",
		}, []string{
			p + "compile",
		}
}

func TestGoldenHotAlloc(t *testing.T) {
	entries, stops := testHotAllocEntries()
	runGolden(t, "hotalloc", HotAlloc(entries, stops), "hotalloc")
}

// testTopicConfig wires the fixture's miniature bus API as protocol
// roots, mirroring ProjectTopicConfig's shape for the real middleware.
func testTopicConfig() *TopicConfig {
	const p = "repro/internal/lint/testdata/src/topicflow"
	return &TopicConfig{
		Roots: map[string]TopicRoot{
			"(*" + p + ".Bus).Publish":         {Role: TopicPublish, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			"(*" + p + ".Bus).PublishRetained": {Role: TopicPublish, Retained: true, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			"(*" + p + ".Bus).Subscribe":       {Role: TopicSubscribe, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			"(*" + p + ".Bus).Retained":        {Role: TopicRetainedRead, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			p + ".Request":                     {Role: TopicRequest, TopicArg: 1, BodyArg: 2, OutArg: 3, HandlerArg: -1},
			p + ".Respond":                     {Role: TopicRespond, TopicArg: 1, BodyArg: -1, OutArg: -1, HandlerArg: 2},
		},
	}
}

func TestGoldenTopicFlow(t *testing.T) {
	runGolden(t, "topicflow", TopicFlow(testTopicConfig()), "topicflow")
}

func TestGoldenChanFlow(t *testing.T) {
	runGolden(t, "chanflow", ChanFlow(), "chanflow")
}

// TestGoldenSuppressedCounts pins that each concurrency analyzer has at
// least one finding silenced by an audited //lint:ignore in its golden
// package — the suppression path is part of the contract, not a fluke
// of the fixtures.
func TestGoldenSuppressedCounts(t *testing.T) {
	hotEntries, hotStops := testHotAllocEntries()
	cases := []struct {
		name string
		a    *Analyzer
	}{
		{"lockorder", Lockorder()},
		{"goroleak", GoroLeak()},
		{"ctxflow", CtxFlow(map[string]string{
			"repro/internal/lint/testdata/src/ctxflow.Request": "RequestContext",
		}, "repro/")},
		{"raceguard", RaceGuard()},
		{"aliaspub", AliasPub(testAliasPubSinks(), "repro/")},
		{"hotalloc", HotAlloc(hotEntries, hotStops)},
		{"topicflow", TopicFlow(testTopicConfig())},
		{"chanflow", ChanFlow()},
	}
	for _, c := range cases {
		pkg := loadTestdata(t, c.name)
		res := Run([]*Package{pkg}, []*Analyzer{c.a})
		if res.Suppressed == 0 {
			t.Errorf("%s: golden package has no suppressed finding; the ignore-directive path is untested", c.name)
		}
	}
}

// TestGoldenIgnoreDemo checks the suppression positions end to end: the
// want annotations in ignoredemo mark exactly the findings a directive
// on the wrong line (or a malformed one) fails to silence.
func TestGoldenIgnoreDemo(t *testing.T) {
	runGolden(t, "ignoredemo", PrintBan(pathMatcher()), "printban")
}

// TestLoadPatterns pins the "..." expansion the CLI depends on: the
// recursive pattern must find this package but never descend into
// testdata (golden inputs deliberately fail the suite).
func TestLoadPatterns(t *testing.T) {
	pkgs, err := testLoader(t).Load("./internal/lint/...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("pattern expansion descended into %s", p.Path)
		}
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/lint" {
		t.Errorf("Load(./internal/lint/...) = %v, want exactly repro/internal/lint", pkgPaths(pkgs))
	}
}

func pkgPaths(pkgs []*Package) []string {
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = p.Path
	}
	return out
}

// TestZeroPackages pins the contract behind check.sh's zero-guard: a
// run over nothing reports zero packages analyzed.
func TestZeroPackages(t *testing.T) {
	res := Run(nil, ProjectAnalyzers())
	if res.Packages != 0 {
		t.Fatalf("Packages = %d, want 0", res.Packages)
	}
	if len(res.Diagnostics) != 0 {
		t.Fatalf("Diagnostics = %v, want none", res.Diagnostics)
	}
}

// TestProjectTreeClean runs the real analyzer suite over the real tree —
// the same invocation as cmd/sdlint — and demands a clean bill. This is
// the regression test that keeps the repository at zero findings.
func TestProjectTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := testLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	res := Run(pkgs, ProjectAnalyzers())
	if res.Packages == 0 {
		t.Fatal("analyzed 0 packages")
	}
	if len(res.Diagnostics) != 0 {
		var b strings.Builder
		for _, d := range res.Diagnostics {
			fmt.Fprintf(&b, "\n  %s", d)
		}
		t.Errorf("tree is not lint-clean:%s", b.String())
	}
}
