package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxflow: a function that accepts a context.Context (or a done-channel)
// has promised its caller cancellation; dropping that context on a
// downstream call breaks the promise silently. Inside such functions the
// analyzer enforces three rules:
//
//   - no fresh roots: context.Background()/context.TODO() must not be
//     created — derive from the incoming ctx instead;
//   - forward on every context-aware edge: a call to a module-local
//     function that itself accepts a context must receive the incoming
//     ctx or something derived from it (context.WithCancel/WithTimeout/
//     ... results are tracked through local assignments);
//   - no blocking downgrades: calls to the configured blocking
//     functions' context-less convenience wrappers (bus.Request,
//     broker.Gather, ...) are flagged with the ctx-aware variant to use.
//
// The analysis is per function declaration, in source order; function
// literals inside the body share the declaration's derived-context set
// (closures capture ctx like any other variable).

// doneChanNames are the parameter names treated as shutdown channels
// when typed <-chan struct{}.
var doneChanNames = map[string]bool{"done": true, "stop": true, "quit": true, "closing": true}

// CtxFlow returns the context-propagation analyzer. blocking maps the
// FuncID of a context-less convenience wrapper to the name of its
// context-aware variant; module is the import-path prefix inside which
// callees are held to the forwarding rule.
func CtxFlow(blocking map[string]string, module string) *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "context-accepting functions must forward their context down every context-aware call edge",
		Run: func(pass *Pass) {
			for _, f := range pass.Pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					derived := ctxParams(pass.Pkg.Info, fd.Type)
					if len(derived) == 0 {
						continue
					}
					checkCtxBody(pass, fd.Body, derived, blocking, module)
				}
			}
		},
	}
}

// ctxParams seeds the derived set with the function's context-like
// parameters: context.Context values and <-chan struct{} shutdown
// channels with a conventional name.
func ctxParams(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	derived := map[types.Object]bool{}
	if ft.Params == nil {
		return derived
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.ObjectOf(name)
			if obj == nil {
				continue
			}
			if isCtxType(obj.Type()) || (doneChanNames[name.Name] && isDoneChan(obj.Type())) {
				derived[obj] = true
			}
		}
	}
	return derived
}

func isCtxType(t types.Type) bool { return isNamed(t, "context", "Context") }

func isDoneChan(t types.Type) bool {
	ch, ok := t.(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// checkCtxBody walks one context-accepting function body in source
// order, growing the derived set through assignments and enforcing the
// three rules at every call.
func checkCtxBody(pass *Pass, body *ast.BlockStmt, derived map[types.Object]bool, blocking map[string]string, module string) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A literal with its own ctx parameter rebinds the name; its
			// parameter joins the derived set (it is context-like too).
			for obj := range ctxParams(info, x.Type) {
				derived[obj] = true
			}
			return true

		case *ast.AssignStmt:
			// ctx2, cancel := context.WithTimeout(ctx, d) — any LHS of a
			// context-like type whose RHS mentions a derived value is
			// itself derived. (Inspect visits in source order, so the
			// assignment is seen before uses of ctx2.)
			rhsDerived := false
			for _, r := range x.Rhs {
				if mentionsDerived(info, r, derived) {
					rhsDerived = true
					break
				}
			}
			if rhsDerived {
				for _, l := range x.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.ObjectOf(id)
					if obj != nil && (isCtxType(obj.Type()) || isDoneChan(obj.Type())) {
						derived[obj] = true
					}
				}
			}
			return true

		case *ast.CallExpr:
			checkCtxCall(pass, x, derived, blocking, module)
			return true
		}
		return true
	})
}

func checkCtxCall(pass *Pass, call *ast.CallExpr, derived map[types.Object]bool, blocking map[string]string, module string) {
	info := pass.Pkg.Info

	// Rule 1: no fresh context roots inside a context-accepting function.
	if pkgPath, name, sel, ok := pkgFuncCall(info, call); ok && pkgPath == "context" {
		if name == "Background" || name == "TODO" {
			pass.Reportf(sel.Sel.Pos(),
				"context.%s() created inside a context-accepting function; derive from the incoming ctx instead", name)
		}
		return
	}

	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), module) {
		return
	}
	id := FuncID(fn)

	// Rule 3: context-less convenience wrapper with a known ctx-aware
	// variant.
	if variant, isBlocking := blocking[id]; isBlocking {
		pass.Reportf(call.Lparen,
			"blocking call to %s drops the caller's context; use %s", fn.Name(), variant)
		return
	}

	// Rule 2: the callee accepts a context — one argument must carry the
	// incoming ctx or a derivation of it. An argument that itself mints a
	// fresh root is already reported by rule 1; don't double-report.
	if !funcAcceptsCtx(fn) {
		return
	}
	for _, arg := range call.Args {
		if mentionsDerived(info, arg, derived) || mintsFreshCtx(info, arg) {
			return
		}
	}
	pass.Reportf(call.Lparen,
		"call to %s does not forward the caller's context (pass ctx or a context derived from it)", fn.Name())
}

// funcAcceptsCtx reports whether the callee's signature has a
// context.Context or shutdown-channel parameter.
func funcAcceptsCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isCtxType(p.Type()) || (doneChanNames[p.Name()] && isDoneChan(p.Type())) {
			return true
		}
	}
	return false
}

// mentionsDerived reports whether the expression references any object
// in the derived set.
func mentionsDerived(info *types.Info, e ast.Expr, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && derived[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mintsFreshCtx reports whether the expression contains a
// context.Background()/TODO() call (rule 1 already covers it).
func mintsFreshCtx(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if pkgPath, name, _, isFn := pkgFuncCall(info, call); isFn && pkgPath == "context" && (name == "Background" || name == "TODO") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
