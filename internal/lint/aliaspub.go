package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// aliaspub: immutability after publish.
//
// The serving layer's correctness rests on a copy-on-write discipline:
// once a value has been handed to a publish sink — snapshot
// Registry.Publish, bus Publish/PublishRetained, a channel send, or an
// atomic.Pointer Store/Swap/CompareAndSwap — concurrent readers may
// hold it, and any later write through a retained alias corrupts served
// answers silently (no lock is even supposed to be involved on the read
// path, so the race detector rarely sees it). aliaspub pins that
// discipline statically:
//
//   - inside the publishing function, a write through the published
//     value (field store, element store, pointer store, ++/--) at a
//     source position after the sink call is a finding; so is an append
//     to a published slice (append writes into the shared backing array
//     whenever capacity allows) and a rebinding of a variable whose
//     address was published;
//   - aliases created by single ident-to-ident copies (v := s) are
//     tracked with the original — publishing s and then writing v.f is
//     the same bug;
//   - passing the published value to a module-local callee that writes
//     through the corresponding parameter (directly or transitively,
//     by a call-graph fixpoint over parameter-mutation summaries) is a
//     finding at the call site;
//   - an exported method on a published type that returns one of its
//     slice or map fields directly (`return s.buf`) hands every caller
//     a mutable alias of the published buffer and is flagged — return
//     a copy, as Registry.History does.
//
// The after-the-sink check is positional (source order within the
// function, function literals included). A publish inside a loop
// followed lexically by a write earlier in the same loop body is not
// caught — the analyzer under-approximates rather than guessing at
// iteration order.

// pubFinding is one diagnostic-to-be, reported by its package's pass.
type pubFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// pubAnalysis is the memoized whole-program result.
type pubAnalysis struct {
	sinks    map[string]int // FuncID → published argument index
	modPfx   string
	findings []pubFinding
}

// pubEvent is one publish site inside a function.
type pubEvent struct {
	pos    token.Pos
	sink   string          // human name for messages
	root   types.Object    // the published local/param, nil if untracked
	byAddr bool            // published &root: rebinding root also writes through it
	sel    *ast.CallExpr   // nil for channel sends
}

// mutSummary records which parameters a function writes through,
// directly or via module-local callees.
type mutSummary struct {
	params []*types.Var
	mut    map[int]bool
}

func (p *Program) pubAnalysisResult(sinks map[string]int, modPfx string) *pubAnalysis {
	if p.pub != nil {
		return p.pub
	}
	pa := &pubAnalysis{sinks: sinks, modPfx: modPfx}
	g := p.CallGraph()

	summaries := paramMutFixpoint(g, modPfx)

	publishedTypes := map[*types.Named]token.Position{}

	for _, n := range g.SortedNodes() {
		if n.Decl == nil {
			continue // literal interiors are scanned with their declaring function
		}
		pa.scanFunc(n, g, summaries, publishedTypes)
	}

	pa.scanAccessors(p.Pkgs, publishedTypes)

	sort.Slice(pa.findings, func(i, j int) bool {
		return pa.findings[i].pos < pa.findings[j].pos
	})
	p.pub = pa
	return pa
}

func (pa *pubAnalysis) finding(pkg *Package, pos token.Pos, format string, args ...any) {
	pa.findings = append(pa.findings, pubFinding{pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
}

// scanFunc checks one declared function (literal interiors included,
// positionally) for writes after publish.
func (pa *pubAnalysis) scanFunc(n *CGNode, g *CallGraph, summaries map[*types.Func]*mutSummary, publishedTypes map[*types.Named]token.Position) {
	pkg := n.Pkg
	body := n.Body()

	// Pass 1: publish events and the published named types.
	var events []pubEvent
	ast.Inspect(body, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.SendStmt:
			events = append(events, pa.eventFor(pkg, x.Value, x.Arrow, "channel send", nil))
		case *ast.CallExpr:
			if name, arg, ok := pa.sinkCall(pkg, x); ok && arg < len(x.Args) {
				events = append(events, pa.eventFor(pkg, x.Args[arg], x.Lparen, name, x))
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}
	for i := range events {
		if events[i].root == nil {
			continue
		}
		if named := namedType(events[i].root.Type()); named != nil && named.Obj().Pkg() != nil && hasPrefix(named.Obj().Pkg().Path(), pa.modPfx) {
			w := pkg.Fset.Position(events[i].pos)
			if prev, seen := publishedTypes[named]; !seen || posLess(w, prev) {
				publishedTypes[named] = w
			}
		}
	}

	// Pass 2: alias closure over single ident-to-ident copies. The
	// relation is kept symmetric: after `v := s`, both names share one
	// backing value, so publish-through-one/write-through-other is the
	// same bug in either direction.
	aliases := identCopyPairs(pkg, body)
	closure := func(root types.Object) map[types.Object]bool {
		set := map[types.Object]bool{root: true}
		for changed := true; changed; {
			changed = false
			for _, pr := range aliases {
				if set[pr[0]] != set[pr[1]] {
					set[pr[0]], set[pr[1]] = true, true
					changed = true
				}
			}
		}
		return set
	}

	// Pass 3: writes and mutating calls after each event.
	for _, ev := range events {
		if ev.root == nil {
			continue
		}
		set := closure(ev.root)
		sinkAt := pkg.Fset.Position(ev.pos)
		ast.Inspect(body, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.AssignStmt:
				if x.Pos() <= ev.pos {
					return true
				}
				for _, lhs := range x.Lhs {
					pa.checkWrite(pkg, lhs, ev, set, sinkAt)
				}
				for _, rhs := range x.Rhs {
					pa.checkAppend(pkg, rhs, ev, set, sinkAt)
				}
			case *ast.IncDecStmt:
				if x.Pos() > ev.pos {
					pa.checkWrite(pkg, x.X, ev, set, sinkAt)
				}
			case *ast.CallExpr:
				if x.Lparen <= ev.pos || x == ev.sel {
					return true
				}
				pa.checkMutCall(pkg, x, ev, set, sinkAt, summaries)
			}
			return true
		})
	}
}

// eventFor resolves a published expression to a tracked root object.
func (pa *pubAnalysis) eventFor(pkg *Package, expr ast.Expr, pos token.Pos, sink string, call *ast.CallExpr) pubEvent {
	ev := pubEvent{pos: pos, sink: sink, sel: call}
	e := ast.Unparen(expr)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		if id, ok := ast.Unparen(u.X).(*ast.Ident); ok {
			ev.root, ev.byAddr = pkg.Info.ObjectOf(id), true
		}
		return ev
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return ev // composite literal / call result: ownership transfers, nothing retained
	}
	obj := pkg.Info.ObjectOf(id)
	if v, isVar := obj.(*types.Var); isVar && aliasable(v.Type()) {
		ev.root = obj
	}
	return ev
}

// sinkCall reports whether the call is a publish sink: a configured
// FuncID, or an atomic.Pointer Store/Swap/CompareAndSwap.
func (pa *pubAnalysis) sinkCall(pkg *Package, call *ast.CallExpr) (name string, arg int, ok bool) {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return "", 0, false
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		if isNamed(sig.Recv().Type(), "sync/atomic", "Pointer") {
			switch fn.Name() {
			case "Store", "Swap":
				return "atomic.Pointer." + fn.Name(), 0, true
			case "CompareAndSwap":
				return "atomic.Pointer.CompareAndSwap", 1, true
			}
		}
	}
	if arg, isSink := pa.sinks[FuncID(fn)]; isSink {
		return shortFuncName(fn), arg, true
	}
	return "", 0, false
}

// checkWrite flags a write whose base identifier aliases the published
// value: through the value (x.f=, x[i]=, *x=) always, a plain rebind
// only when the published value was the variable's address.
func (pa *pubAnalysis) checkWrite(pkg *Package, lhs ast.Expr, ev pubEvent, set map[types.Object]bool, sinkAt token.Position) {
	id, through := writeBase(lhs)
	if id == nil || !set[pkg.Info.ObjectOf(id)] {
		return
	}
	if !through && !ev.byAddr {
		return // rebinding the local: the published header is unaffected
	}
	pa.finding(pkg, id.Pos(),
		"%s is written here after being published at %s:%d (%s); published values are immutable — copy before mutating",
		id.Name, baseName(sinkAt.Filename), sinkAt.Line, ev.sink)
}

// checkAppend flags append(x, ...) on a published slice: when the
// backing array has spare capacity, append writes into memory the
// published header can see.
func (pa *pubAnalysis) checkAppend(pkg *Package, rhs ast.Expr, ev pubEvent, set map[types.Object]bool, sinkAt token.Position) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	if id, isIdent := call.Fun.(*ast.Ident); !isIdent || id.Name != "append" || pkg.Info.Uses[id] != types.Universe.Lookup("append") {
		return
	}
	id, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !isIdent || !set[pkg.Info.ObjectOf(id)] {
		return
	}
	pa.finding(pkg, call.Pos(),
		"append to %s after it was published at %s:%d (%s) can write into the shared backing array; publish a copy or re-slice to full capacity",
		id.Name, baseName(sinkAt.Filename), sinkAt.Line, ev.sink)
}

// checkMutCall flags passing the published value to a module-local
// callee that writes through the corresponding parameter.
func (pa *pubAnalysis) checkMutCall(pkg *Package, call *ast.CallExpr, ev pubEvent, set map[types.Object]bool, sinkAt token.Position, summaries map[*types.Func]*mutSummary) {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return
	}
	summ := summaries[fn]
	if summ == nil {
		return
	}
	for i, a := range call.Args {
		e := ast.Unparen(a)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		id, ok := e.(*ast.Ident)
		if !ok || !set[pkg.Info.ObjectOf(id)] {
			continue
		}
		pi := i
		if pi >= len(summ.params) {
			pi = len(summ.params) - 1 // variadic tail
		}
		if pi < 0 || !summ.mut[pi] {
			continue
		}
		pa.finding(pkg, call.Lparen,
			"%s is passed to %s after being published at %s:%d (%s); the callee writes through this parameter",
			id.Name, shortFuncName(fn), baseName(sinkAt.Filename), sinkAt.Line, ev.sink)
	}
}

// scanAccessors flags exported methods on published types returning a
// slice or map field directly.
func (pa *pubAnalysis) scanAccessors(pkgs []*Package, publishedTypes map[*types.Named]token.Position) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				recv := namedType(fn.Type().(*types.Signature).Recv().Type())
				if recv == nil {
					continue
				}
				pubAt, isPub := publishedTypes[recv]
				if !isPub {
					continue
				}
				ast.Inspect(fd.Body, func(m ast.Node) bool {
					if _, isLit := m.(*ast.FuncLit); isLit {
						return false
					}
					ret, ok := m.(*ast.ReturnStmt)
					if !ok {
						return true
					}
					for _, res := range ret.Results {
						sel, ok := ast.Unparen(res).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						fld, _ := pkg.Info.ObjectOf(sel.Sel).(*types.Var)
						if fld == nil || !fld.IsField() || !bufferType(fld.Type()) {
							continue
						}
						base, ok := ast.Unparen(sel.X).(*ast.Ident)
						if !ok || pkg.Info.ObjectOf(base) != recvObj(fn) {
							continue
						}
						pa.finding(pkg, sel.Pos(),
							"exported %s returns field %s of %s, published at %s:%d, without copying; callers get a mutable alias of served data",
							fn.Name(), fld.Name(), recv.Obj().Name(), baseName(pubAt.Filename), pubAt.Line)
					}
					return true
				})
			}
		}
	}
}

func recvObj(fn *types.Func) types.Object {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	return sig.Recv()
}

// paramMutFixpoint computes, for every module-local declared function,
// which pointer-like parameters it writes through — directly, or by
// passing them on to another module-local function that does.
func paramMutFixpoint(g *CallGraph, modPfx string) map[*types.Func]*mutSummary {
	summ := map[*types.Func]*mutSummary{}
	for _, n := range g.SortedNodes() {
		if n.Decl == nil || n.Fn == nil || !hasPrefix(n.Pkg.Path, modPfx) {
			continue
		}
		sig := n.Fn.Type().(*types.Signature)
		s := &mutSummary{mut: map[int]bool{}}
		for i := 0; i < sig.Params().Len(); i++ {
			s.params = append(s.params, sig.Params().At(i))
		}
		summ[n.Fn] = s
	}
	paramIndex := func(n *CGNode, id *ast.Ident) int {
		obj := n.Pkg.Info.ObjectOf(id)
		for i, p := range summ[n.Fn].params {
			if obj == p {
				return i
			}
		}
		return -1
	}
	// Direct writes.
	for _, n := range g.SortedNodes() {
		if n.Decl == nil || summ[n.Fn] == nil {
			continue
		}
		ast.Inspect(n.Body(), func(m ast.Node) bool {
			var targets []ast.Expr
			switch x := m.(type) {
			case *ast.AssignStmt:
				targets = x.Lhs
			case *ast.IncDecStmt:
				targets = []ast.Expr{x.X}
			default:
				return true
			}
			for _, t := range targets {
				id, through := writeBase(t)
				if id == nil || !through {
					continue // rebinding a parameter never escapes the callee
				}
				if i := paramIndex(n, id); i >= 0 && aliasable(summ[n.Fn].params[i].Type()) {
					summ[n.Fn].mut[i] = true
				}
			}
			return true
		})
	}
	// Transitive: param forwarded to a mutating callee.
	for changed := true; changed; {
		changed = false
		for _, n := range g.SortedNodes() {
			if n.Decl == nil || summ[n.Fn] == nil {
				continue
			}
			for _, e := range n.Out {
				if e.Call == nil || e.Callee == nil || e.Callee.Fn == nil {
					continue
				}
				cs := summ[e.Callee.Fn]
				if cs == nil {
					continue
				}
				for ai, a := range e.Call.Args {
					ae := ast.Unparen(a)
					if u, ok := ae.(*ast.UnaryExpr); ok && u.Op == token.AND {
						ae = ast.Unparen(u.X)
					}
					id, ok := ae.(*ast.Ident)
					if !ok {
						continue
					}
					pi := ai
					if pi >= len(cs.params) {
						pi = len(cs.params) - 1
					}
					if pi < 0 || !cs.mut[pi] {
						continue
					}
					if i := paramIndex(n, id); i >= 0 && !summ[n.Fn].mut[i] {
						summ[n.Fn].mut[i] = true
						changed = true
					}
				}
			}
		}
	}
	return summ
}

// identCopyPairs collects single ident-to-ident copies (v := s, v = s)
// of aliasable values within the body.
func identCopyPairs(pkg *Package, body *ast.BlockStmt) [][2]types.Object {
	var out [][2]types.Object
	ast.Inspect(body, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			rid, ok := ast.Unparen(rhs).(*ast.Ident)
			if !ok {
				continue
			}
			lid, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			ro, lo := pkg.Info.ObjectOf(rid), pkg.Info.ObjectOf(lid)
			if ro == nil || lo == nil || ro == lo {
				continue
			}
			if rv, isVar := ro.(*types.Var); !isVar || !aliasable(rv.Type()) {
				continue
			}
			out = append(out, [2]types.Object{lo, ro})
		}
		return true
	})
	return out
}

// writeBase unwraps an assignment target to its base identifier and
// reports whether the write goes *through* the value (selector, index,
// or dereference) rather than rebinding the name itself.
func writeBase(e ast.Expr) (*ast.Ident, bool) {
	through := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e, through = x.X, true
		case *ast.IndexExpr:
			e, through = x.X, true
		case *ast.StarExpr:
			e, through = x.X, true
		case *ast.Ident:
			return x, through
		default:
			return nil, false
		}
	}
}

// aliasable: can a copy of this value alias the original's storage?
func aliasable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// bufferType: slice or map — the shapes whose direct return hands out a
// mutable alias.
func bufferType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// shortFuncName trims the import path of a FuncID down to the package
// base name for readability: "(*repro/internal/snapshot.Registry).Publish"
// → "(*snapshot.Registry).Publish".
func shortFuncName(fn *types.Func) string {
	id := FuncID(fn)
	pfx, s := "", id
	if hasPrefix(s, "(*") {
		pfx, s = "(*", s[2:]
	} else if hasPrefix(s, "(") {
		pfx, s = "(", s[1:]
	}
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return pfx + s[i+1:]
		}
	}
	return id
}

func hasPrefix(s, pfx string) bool {
	return len(s) >= len(pfx) && s[:len(pfx)] == pfx
}

// AliasPub returns the immutability-after-publish analyzer. sinks maps
// publish-function FuncIDs to the index of the published argument;
// channel sends and atomic.Pointer stores are always sinks.
func AliasPub(sinks map[string]int, modulePrefix string) *Analyzer {
	return &Analyzer{
		Name: "aliaspub",
		Doc:  "values handed to publish sinks (snapshot/bus publish, channel sends, atomic.Pointer stores) must not be written through afterwards",
		Run: func(pass *Pass) {
			pa := pass.Prog.pubAnalysisResult(sinks, modulePrefix)
			for _, f := range pa.findings {
				if f.pkg == pass.Pkg {
					pass.Reportf(f.pos, "%s", f.msg)
				}
			}
		},
	}
}
