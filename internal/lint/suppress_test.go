package lint

import (
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text        string
		isDirective bool
		ok          bool
		checks      []string
		reason      string
	}{
		{"//lint:ignore errcheck best-effort close", true, true, []string{"errcheck"}, "best-effort close"},
		{"//lint:ignore printban,errcheck demo output", true, true, []string{"printban", "errcheck"}, "demo output"},
		{"//lint:ignore errcheck", true, false, nil, ""},          // reason is mandatory
		{"//lint:ignore", true, false, nil, ""},                   // no check, no reason
		{"//lint:ignored errcheck oops", false, false, nil, ""},   // prefix must end at a space
		{"// lint:ignore errcheck spaced", false, false, nil, ""}, // not the directive form
		{"// an ordinary comment", false, false, nil, ""},
	}
	for _, c := range cases {
		d, isDirective := parseDirective(c.text, token.Position{})
		if isDirective != c.isDirective || d.ok != c.ok {
			t.Errorf("parseDirective(%q): directive=%v ok=%v, want %v/%v", c.text, isDirective, d.ok, c.isDirective, c.ok)
			continue
		}
		if !d.ok {
			continue
		}
		if strings.Join(d.checks, ",") != strings.Join(c.checks, ",") || d.reason != c.reason {
			t.Errorf("parseDirective(%q) = checks %v reason %q, want %v %q", c.text, d.checks, d.reason, c.checks, c.reason)
		}
	}
}

// TestSuppressionPositions pins the exact line geometry on the
// ignoredemo golden package: same line and line-above suppress, two
// lines above / wrong check / line below / malformed do not, and the
// malformed directive surfaces as an sdlint finding.
func TestSuppressionPositions(t *testing.T) {
	pkg := loadTestdata(t, "ignoredemo")
	res := Run([]*Package{pkg}, []*Analyzer{PrintBan(pathMatcher())})

	if res.Suppressed != 3 {
		t.Errorf("Suppressed = %d, want 3 (same line, line above, multi-check)", res.Suppressed)
	}

	var printbanLines, sdlintLines []int
	for _, d := range res.Diagnostics {
		switch d.Check {
		case "printban":
			printbanLines = append(printbanLines, d.Pos.Line)
		case "sdlint":
			sdlintLines = append(sdlintLines, d.Pos.Line)
		default:
			t.Errorf("unexpected check %q: %s", d.Check, d)
		}
	}
	wantPrintban := []int{20, 23, 25, 31}
	if !equalInts(printbanLines, wantPrintban) {
		t.Errorf("surviving printban lines = %v, want %v", printbanLines, wantPrintban)
	}
	// The reasonless directive on line 30 is malformed: reported, and it
	// suppressed nothing (line 31 survives above).
	if !equalInts(sdlintLines, []int{30}) {
		t.Errorf("sdlint (malformed directive) lines = %v, want [30]", sdlintLines)
	}
}

// TestMalformedDirectiveIsUnsuppressable: an sdlint finding cannot be
// silenced by an ignore directive, even one naming sdlint itself.
func TestMalformedDirectiveIsUnsuppressable(t *testing.T) {
	byLine := map[lineKey][]directive{
		{file: "x.go", line: 5}: {{checks: []string{"sdlint", "printban"}, reason: "r", ok: true}},
	}
	printbanDiag := Diagnostic{Pos: token.Position{Filename: "x.go", Line: 5}, Check: "printban"}
	if !isSuppressed(byLine, printbanDiag) {
		t.Error("printban diagnostic on the directive line should be suppressed")
	}
	// suppress() never consults directives for sdlint diagnostics; mimic
	// its guard here.
	sdlintDiag := Diagnostic{Pos: token.Position{Filename: "x.go", Line: 5}, Check: "sdlint"}
	suppressible := sdlintDiag.Check != "sdlint" && isSuppressed(byLine, sdlintDiag)
	if suppressible {
		t.Error("sdlint diagnostics must not be suppressible")
	}
}

func TestSortDiagnostics(t *testing.T) {
	d := func(file string, line, col int, check, msg string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line, Column: col}, Check: check, Message: msg}
	}
	diags := []Diagnostic{
		d("b.go", 1, 1, "errcheck", "z"),
		d("a.go", 9, 2, "printban", "y"),
		d("a.go", 9, 2, "errcheck", "x"),
		d("a.go", 2, 7, "printban", "w"),
		d("a.go", 2, 3, "printban", "v"),
	}
	SortDiagnostics(diags)
	var order []string
	for _, x := range diags {
		order = append(order, x.Message)
	}
	want := "v w x y z"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("sorted order = %q, want %q", got, want)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "internal/cs/omp.go", Line: 42, Column: 7},
		Check:   "nondeterminism",
		Message: "wall-clock time.Now in deterministic package",
	}
	want := "internal/cs/omp.go:42:7: wall-clock time.Now in deterministic package (nondeterminism)"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func equalInts(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
