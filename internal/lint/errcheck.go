package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck is errcheck-lite: inside the library packages matched by
// inScope, an error returned by a call may not be silently discarded.
//
// Flagged forms:
//
//   - a call used as a bare statement whose results include an error
//     ("conn.Close()", "enc.Encode(v)")
//   - an assignment that throws every result away and one of them is an
//     error ("_ = f()", "_, _ = io.Copy(dst, src)")
//
// The escape hatch is explicit and audited: keep the blank assignment
// and add "//lint:ignore errcheck <reason>" on the same line or the line
// above. Deferred calls are exempt (flow of a deferred error is a
// different, noisier discussion), as are methods of bytes.Buffer and
// strings.Builder and fmt.Fprint* into those two types, whose errors are
// structurally always nil.
func ErrCheck(inScope func(pkgPath string) bool) *Analyzer {
	a := &Analyzer{
		Name: "errcheck",
		Doc:  "no silently discarded error returns in library packages",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path) {
			return
		}
		inspectFiles(pass, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
				if ok && discardsError(pass, call) {
					pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it or assign to _ with a lint:ignore reason", calleeLabel(pass, call))
				}
			case *ast.AssignStmt:
				if !allBlank(stmt.Lhs) || len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
				if ok && discardsError(pass, call) {
					pass.Reportf(stmt.Pos(), "error result of %s is discarded to _ without a lint:ignore reason", calleeLabel(pass, call))
				}
			}
			return true
		})
	}
	return a
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}

func discardsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok || !hasErrorResult(tv.Type) {
		return false
	}
	return !infallibleCallee(pass, call)
}

// infallibleCallee recognizes the handful of stdlib calls whose error is
// always nil by documented contract.
func infallibleCallee(pass *Pass, call *ast.CallExpr) bool {
	info := pass.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	// Methods of bytes.Buffer / strings.Builder never fail.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if isNamed(t, "bytes", "Buffer") || isNamed(t, "strings", "Builder") {
			return true
		}
	}
	// fmt.Fprint* only propagates the writer's error; writing into a
	// Buffer/Builder cannot fail.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && len(call.Args) > 0 {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			tv, ok := info.Types[call.Args[0]]
			if ok && (isNamed(tv.Type, "bytes", "Buffer") || isNamed(tv.Type, "strings", "Builder")) {
				return true
			}
		}
	}
	return false
}

func calleeLabel(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass.Pkg.Info, call); fn != nil {
		return fn.Name()
	}
	return "call"
}
