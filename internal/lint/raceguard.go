package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// raceguard: interprocedural shared-state race detection.
//
// mutexguard pins the documented lock discipline one method at a time
// and flow-insensitively: a Lock anywhere in the body counts. That is
// the right bar for sequential accessors, but the code the runtime race
// detector can only spot-check — everything reachable from a `go`
// statement — deserves the stronger, flow-ordered contract: a *write*
// to a "guarded by mu" field that executes on a spawned goroutine must
// happen while mu is actually held (Lock before the write on every
// path), not merely somewhere in the function.
//
// The analysis reuses the lockorder machinery:
//
//   - every function body is interpreted in statement order with the
//     held-set walker (branch merge by intersection, deferred unlocks
//     held to exit), the access hook recording which locks are held at
//     every guarded-field access;
//   - an entry-held fixpoint propagates lock context across call and
//     defer edges: a helper only ever called with mu held inherits
//     {mu} as its entry set, so factored-out mutation helpers do not
//     need a rename. `go` edges contribute the empty set — a spawned
//     goroutine holds nothing of its parent — which also grounds the
//     fixpoint for every go-reachable function;
//   - only functions reachable from a `go` edge (GoReachable) are
//     checked, and only writes are findings: a read-only racy access is
//     mutexguard's (and the race detector's) departement, while an
//     unguarded write is the corruption the serving layer cannot
//     tolerate. Methods suffixed "Locked" keep the documented
//     caller-holds-the-lock exemption.
//
// Lock and field identity are type-level ("pkg.Type.field"), exactly as
// in lockorder, so accesses through single-assignment aliases of the
// same struct type are checked without any points-to analysis.
//
// Atomics are modeled, not flagged: fields typed as sync/atomic values
// (atomic.Pointer, atomic.Int64, ...) are safe by construction — their
// only access path is the atomic method set, which is what makes the
// snapshot/serve lock-free fast paths pass this analyzer with zero
// annotations. What is a finding is *mixing*: a field accessed through
// sync/atomic package functions (atomic.AddInt64(&s.n, 1)) in one place
// and through a plain read or write in another has no consistent
// synchronization story, and every plain access is reported.

// raceFinding is one diagnostic-to-be, reported by the owning package's
// pass (keeps suppression and dedup per package, as in lockorder).
type raceFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// raceAnalysis is the memoized whole-program result.
type raceAnalysis struct {
	findings []raceFinding
}

// guardedField is one "guarded by mu" annotation resolved to type-level
// identities: the owning struct, the field, and the guard's lock ID in
// lockorder's naming scheme ("pkg.Type.mu").
type guardedField struct {
	owner  string // "pkg.Type.field", for messages
	lockID string // "pkg.Type.mu", matches lockWalker.lockID
	guard  string // bare guard field name, for messages
}

// raceAccess is one access to a guarded field with its flow state.
type raceAccess struct {
	node  *CGNode
	sel   *ast.SelectorExpr
	field *types.Var
	held  map[string]lockMode
	write bool
}

// raceAnalysisResult computes (once) the whole-program race analysis.
func (p *Program) raceAnalysisResult() *raceAnalysis {
	if p.races != nil {
		return p.races
	}
	ra := &raceAnalysis{}
	g := p.CallGraph()
	nodes := g.SortedNodes()

	guards := collectGuardTable(p.Pkgs)
	atomicFields, atomicWitness := collectAtomicMixing(p.Pkgs, ra)

	// Per-function hooked walk: held sets at call edges (for the entry
	// fixpoint) plus every guarded-field access with its local held set.
	// The throwaway lockAnalysis absorbs the walker's ordering bookkeeping
	// without touching the real lockorder result.
	scratch := &lockAnalysis{edges: map[[2]string]*lockEdge{}}
	summ := map[*CGNode]*lockSummary{}
	var accesses []*raceAccess
	for _, n := range nodes {
		n := n
		w := &lockWalker{la: scratch, g: g, node: n, summ: &lockSummary{
			heldAt:   map[*CallEdge]map[string]lockMode{},
			acquires: map[string]lockMode{},
		}}
		bySel := map[*ast.SelectorExpr]*raceAccess{}
		w.access = func(sel *ast.SelectorExpr, held map[string]lockMode, write bool) {
			fld, _ := n.Pkg.Info.ObjectOf(sel.Sel).(*types.Var)
			if fld == nil || !fld.IsField() {
				return
			}
			if _, isGuarded := guards[fld]; !isGuarded {
				return
			}
			if prev, seen := bySel[sel]; seen {
				prev.write = prev.write || write
				return
			}
			a := &raceAccess{node: n, sel: sel, field: fld, held: cloneHeld(held), write: write}
			bySel[sel] = a
			accesses = append(accesses, a)
		}
		w.stmts(n.Body().List, map[string]lockMode{})
		summ[n] = w.summ
	}

	entry := raceEntryFixpoint(nodes, summ)

	// Findings: unguarded writes on goroutine-reachable paths.
	reach := g.GoReachable()
	for _, a := range accesses {
		witness := reach[a.node]
		if witness == nil || !a.write || lockedSuffix(a.node) {
			continue
		}
		gf := guards[a.field]
		ent, known := entry[a.node]
		if !known {
			continue // unreachable cycle: no grounded entry state, no claim
		}
		eff := unionHeld(ent, a.held)
		if eff[gf.lockID]&lockWrite != 0 {
			continue
		}
		spawn := a.node.Pkg.Fset.Position(witness.Pos)
		how := "without holding it"
		if eff[gf.lockID] != 0 {
			how = "holding only the read lock"
		}
		ra.finding(a.node.Pkg, a.sel.Sel.Pos(),
			"%s is guarded by %s but written %s in goroutine-reachable %s (spawned at %s:%d); lock %s for writes",
			gf.owner, gf.guard, how, a.node.ID, baseName(spawn.Filename), spawn.Line, gf.guard)
	}

	// Findings: plain accesses to atomically-accessed fields.
	for _, pa := range atomicFields {
		w := atomicWitness[pa.field]
		ra.finding(pa.pkg, pa.pos,
			"%s is accessed with sync/atomic at %s:%d but plainly here (mixed atomic/non-atomic access has no consistent synchronization)",
			fieldOwnerID(pa.field), baseName(w.Filename), w.Line)
	}

	sort.Slice(ra.findings, func(i, j int) bool {
		return ra.findings[i].pos < ra.findings[j].pos
	})
	p.races = ra
	return ra
}

func (ra *raceAnalysis) finding(pkg *Package, pos token.Pos, format string, args ...any) {
	ra.findings = append(ra.findings, raceFinding{pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
}

// lockedSuffix reports whether the node (or, for a literal, its rooting
// declared function) carries the "Locked" caller-holds-the-lock naming
// convention.
func lockedSuffix(n *CGNode) bool {
	id := n.ID
	if i := indexByte(id, '$'); i >= 0 {
		id = id[:i]
	}
	return strings.HasSuffix(id, "Locked")
}

// fieldOwnerID names a field type-level: "pkg.Type.field".
func fieldOwnerID(fld *types.Var) string {
	if fld.Pkg() == nil {
		return fld.Name()
	}
	// The owning named type is not recorded on the Var; scan the package
	// scope for the struct that declares it.
	scope := fld.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fld {
				return fld.Pkg().Path() + "." + tn.Name() + "." + fld.Name()
			}
		}
	}
	return fld.Pkg().Path() + "." + fld.Name()
}

// collectGuardTable resolves every "guarded by mu" annotation in the
// loaded packages to its field object and type-level lock identity.
// Annotations whose guard is not a sibling mutex are mutexguard's
// finding; they are simply skipped here.
func collectGuardTable(pkgs []*Package) map[*types.Var]guardedField {
	out := map[*types.Var]guardedField{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					mu := guardAnnotation(field)
					if mu == "" || !structHasMutexFieldInfo(pkg, st, mu) {
						continue
					}
					for _, name := range field.Names {
						fld, _ := pkg.Info.Defs[name].(*types.Var)
						if fld == nil {
							continue
						}
						out[fld] = guardedField{
							owner:  pkg.Path + "." + ts.Name.Name + "." + name.Name,
							lockID: pkg.Path + "." + ts.Name.Name + "." + mu,
							guard:  mu,
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// structHasMutexFieldInfo is structHasMutexField without a Pass.
func structHasMutexFieldInfo(pkg *Package, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			tv, ok := pkg.Info.Types[field.Type]
			if !ok {
				return false
			}
			return isNamed(tv.Type, "sync", "Mutex") || isNamed(tv.Type, "sync", "RWMutex")
		}
	}
	return false
}

// plainAtomicAccess is one non-atomic access to a field that is accessed
// atomically elsewhere.
type plainAtomicAccess struct {
	pkg   *Package
	pos   token.Pos
	field *types.Var
}

// collectAtomicMixing finds fields accessed through sync/atomic package
// functions and returns every plain (non-atomic) access to them, plus
// the earliest atomic witness position per field for the message.
func collectAtomicMixing(pkgs []*Package, _ *raceAnalysis) ([]plainAtomicAccess, map[*types.Var]token.Position) {
	atomicOf := map[*types.Var]token.Position{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	fieldOf := func(pkg *Package, e ast.Expr) (*ast.SelectorExpr, *types.Var) {
		u, ok := ast.Unparen(e).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return nil, nil
		}
		sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		fld, _ := pkg.Info.ObjectOf(sel.Sel).(*types.Var)
		if fld == nil || !fld.IsField() {
			return nil, nil
		}
		return sel, fld
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkgPath, _, _, isFn := pkgFuncCall(pkg.Info, call); !isFn || pkgPath != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					sel, fld := fieldOf(pkg, arg)
					if fld == nil {
						continue
					}
					sanctioned[sel] = true
					w := pkg.Fset.Position(sel.Pos())
					if prev, seen := atomicOf[fld]; !seen || posLess(w, prev) {
						atomicOf[fld] = w
					}
				}
				return true
			})
		}
	}
	if len(atomicOf) == 0 {
		return nil, atomicOf
	}
	var plains []plainAtomicAccess
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				fld, _ := pkg.Info.ObjectOf(sel.Sel).(*types.Var)
				if fld == nil {
					return true
				}
				if _, isAtomic := atomicOf[fld]; !isAtomic {
					return true
				}
				plains = append(plains, plainAtomicAccess{pkg: pkg, pos: sel.Sel.Pos(), field: fld})
				return true
			})
		}
	}
	return plains, atomicOf
}

// raceEntryFixpoint computes, for every function, the set of locks held
// on entry along *every* incoming edge: the meet (intersection) over
// call and defer edges of the caller's entry set united with the locks
// held at the call site, with `go` edges contributing the empty set.
// Functions with no incoming edges start empty (external callers hold
// nothing we can prove). Nodes only reachable through unresolved calls
// or dead cycles stay absent from the map — no grounded state, and the
// caller treats them as unknown rather than unlocked.
func raceEntryFixpoint(nodes []*CGNode, summ map[*CGNode]*lockSummary) map[*CGNode]map[string]lockMode {
	entry := map[*CGNode]map[string]lockMode{}
	for _, n := range nodes {
		if len(n.In) == 0 {
			entry[n] = map[string]lockMode{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if len(n.In) == 0 {
				continue
			}
			var meet map[string]lockMode
			have := false
			for _, e := range n.In {
				var contrib map[string]lockMode
				if e.Kind == EdgeGo {
					contrib = map[string]lockMode{}
				} else {
					callerEntry, known := entry[e.Caller]
					if !known {
						continue // ⊤: identity for intersection
					}
					held := summ[e.Caller].heldAt[e]
					contrib = unionHeld(callerEntry, held)
				}
				if !have {
					meet, have = cloneHeld(contrib), true
				} else {
					meet = intersectHeld(meet, contrib)
				}
			}
			if !have {
				continue
			}
			if prev, known := entry[n]; !known || !heldEqual(prev, meet) {
				entry[n] = meet
				changed = true
			}
		}
	}
	return entry
}

// unionHeld merges two held sets, modes OR-ed.
func unionHeld(a, b map[string]lockMode) map[string]lockMode {
	out := make(map[string]lockMode, len(a)+len(b))
	for k, v := range a {
		out[k] |= v
	}
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func heldEqual(a, b map[string]lockMode) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// RaceGuard returns the shared-state race analyzer. The analysis itself
// is whole-program and memoized on the Pass's Program; each pass reports
// only the findings positioned in its own package.
func RaceGuard() *Analyzer {
	return &Analyzer{
		Name: "raceguard",
		Doc:  "goroutine-reachable writes to guarded fields must hold the guard; no mixed atomic/plain field access",
		Run: func(pass *Pass) {
			ra := pass.Prog.raceAnalysisResult()
			for _, f := range ra.findings {
				if f.pkg == pass.Pkg {
					pass.Reportf(f.pos, "%s", f.msg)
				}
			}
		},
	}
}
