package lint

import (
	"go/ast"
	"go/token"
)

// goroleak: every `go` statement must have a provable exit path. The
// analyzer walks the call graph from every go edge (the spawned function
// and everything it can call) and flags the two shapes that keep a
// goroutine alive forever with no shutdown edge:
//
//   - an unbounded `for { ... }` (no condition, not a range) whose body
//     contains no way out: no return, no break targeting that loop, no
//     goto, and no terminal call (panic/os.Exit/log.Fatal/Goexit). A
//     `select` arm that returns — the `<-done` / `<-ctx.Done()` idiom —
//     counts as an exit, as does ranging over a closable channel
//     (range loops are exempt by construction);
//   - an empty `select {}`, which blocks forever.
//
// Intentional process-lifetime daemons are suppressed case by case with
// `//lint:ignore goroleak <audited reason>`; DESIGN.md §7 carries the
// audit.

// GoroLeak returns the goroutine-leak analyzer.
func GoroLeak() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "goroutine-spawned code must have a provable exit path (done/ctx select arm, channel close, or bounded loop)",
		Run: func(pass *Pass) {
			g := pass.Prog.CallGraph()
			reach := g.GoReachable()
			for _, n := range g.SortedNodes() {
				if n.Pkg != pass.Pkg {
					continue
				}
				witness := reach[n]
				if witness == nil {
					continue
				}
				spawn := pass.Fset().Position(witness.Pos)
				at := baseName(spawn.Filename)
				scanLeakShapes(pass, n, at, spawn.Line)
			}
		},
	}
}

// scanLeakShapes reports unbounded loops and empty selects in one
// go-reachable function body. Function-literal interiors are skipped:
// each literal is its own graph node and is scanned iff it is itself
// reachable from a go edge.
func scanLeakShapes(pass *Pass, n *CGNode, spawnFile string, spawnLine int) {
	ast.Inspect(n.Body(), func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if x.Cond != nil {
				return true
			}
			if !loopHasExit(pass.Pkg, x, labelOf(n, x)) {
				pass.Reportf(x.For,
					"unbounded for loop in goroutine-spawned %s has no exit path (goroutine started at %s:%d); add a done/ctx.Done select arm or bound the loop",
					n.ID, spawnFile, spawnLine)
			}
		case *ast.SelectStmt:
			if len(x.Body.List) == 0 {
				pass.Reportf(x.Select,
					"empty select in goroutine-spawned %s blocks forever (goroutine started at %s:%d)",
					n.ID, spawnFile, spawnLine)
			}
		}
		return true
	})
}

// labelOf finds the label attached to a loop statement, if any, so a
// labeled break deep in the body can be matched to it.
func labelOf(n *CGNode, loop ast.Stmt) string {
	label := ""
	ast.Inspect(n.Body(), func(m ast.Node) bool {
		if ls, ok := m.(*ast.LabeledStmt); ok && ls.Stmt == loop {
			label = ls.Label.Name
			return false
		}
		return true
	})
	return label
}

// loopHasExit reports whether control can provably leave the loop: a
// return, a break targeting this loop (unlabeled at depth zero, or
// labeled with the loop's label), a goto, or a terminal call. Exits
// inside nested function literals do not count — they leave a different
// function.
func loopHasExit(pkg *Package, loop *ast.ForStmt, label string) bool {
	var scanList func(list []ast.Stmt, depth int) bool
	var scan func(s ast.Stmt, depth int) bool
	scan = func(s ast.Stmt, depth int) bool {
		switch x := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			switch x.Tok {
			case token.GOTO:
				return true // conservatively an exit (never a false leak report)
			case token.BREAK:
				if x.Label != nil {
					return label != "" && x.Label.Name == label
				}
				return depth == 0
			}
			return false
		case *ast.ExprStmt:
			return isTerminalExpr(pkg, x.X)
		case *ast.BlockStmt:
			return scanList(x.List, depth)
		case *ast.IfStmt:
			if x.Body != nil && scanList(x.Body.List, depth) {
				return true
			}
			if x.Else != nil {
				return scan(x.Else, depth)
			}
			return false
		case *ast.ForStmt:
			return scanList(x.Body.List, depth+1)
		case *ast.RangeStmt:
			return scanList(x.Body.List, depth+1)
		case *ast.SwitchStmt:
			return scanClauses(pkg, x.Body.List, depth, scanList)
		case *ast.TypeSwitchStmt:
			return scanClauses(pkg, x.Body.List, depth, scanList)
		case *ast.SelectStmt:
			return scanClauses(pkg, x.Body.List, depth, scanList)
		case *ast.LabeledStmt:
			return scan(x.Stmt, depth)
		default:
			return false
		}
	}
	scanList = func(list []ast.Stmt, depth int) bool {
		for _, s := range list {
			if scan(s, depth) {
				return true
			}
		}
		return false
	}
	return scanList(loop.Body.List, 0)
}

// scanClauses scans case/comm clause bodies one breakable level deeper
// (an unlabeled break inside them targets the switch/select, not the
// loop under scrutiny).
func scanClauses(pkg *Package, clauses []ast.Stmt, depth int, scanList func([]ast.Stmt, int) bool) bool {
	for _, cl := range clauses {
		var body []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		if scanList(body, depth+1) {
			return true
		}
	}
	return false
}
