package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// topicflow: whole-program message-protocol analysis.
//
// The middleware's components talk to each other exclusively through
// bus topics, so the set of (publish, subscribe, request, respond)
// call sites IS the protocol — and a typo'd segment or a payload-type
// drift between a requester and its responder fails silently at
// runtime. topicflow recovers that protocol statically: it resolves
// the topic operand at every bus API call site to a *shape*, builds
// the global topic graph, and checks it with the bus's real wildcard
// semantics (bus.Match: "+" is one segment, a trailing "#" is any
// remainder).
//
// Topic shapes. A topic operand resolves to a sequence of segments,
// each one of:
//
//   - a literal ("register", "measure");
//   - "+" or "#", when written literally in a subscription pattern;
//   - abstract: a component the resolver cannot evaluate (a node ID
//     from a flag, a broker ID field). An abstract component is
//     assumed to be one non-empty, slash-free segment — the module's
//     IDs are — so "+/register" and "nc0/register" may match. The
//     resolver evaluates string literals and constants (via constant
//     folding), "+" concatenation, fmt.Sprintf with a constant format
//     (verbs become spliced sub-shapes or abstract segments), local
//     single-assignment variables, and module-local single-return
//     helper functions by inlining (which is why internal/bus/topics.go
//     centralizes topic construction: every helper resolves exactly).
//
// When a topic shape still references parameters of the enclosing
// function, the endpoint is *lifted* along the call graph's incoming
// edges, substituting each caller's argument shapes — so a forwarding
// wrapper like broker.request reports one endpoint per real call site,
// with that site's topic, body and reply operands. An operand that
// stays unresolved makes the endpoint opaque ("<dynamic>" in the
// dump): opaque publishes are exempt from checking, and an opaque
// subscription conservatively satisfies every publish/request.
//
// Checks, all deduplicated per endpoint and reported at the call site:
//
//   - invalid: a concrete topic (publish/request/retained-read) with an
//     empty or wildcard segment; a pattern (subscribe/respond) with an
//     empty segment or a non-final "#" — both rejected by the bus at
//     runtime, caught here at compile time;
//   - orphan publish: no subscription or responder pattern may match
//     (a retained publish is also satisfied by a Retained() read);
//   - unanswered request: no responder or subscription may match the
//     request topic — the request can only ever time out;
//   - unrequested responder: a respond endpoint no request (or plain
//     publish) targets — dead protocol surface;
//   - payload mismatch: the request's body type vs. the type the paired
//     responder json.Unmarshals its body into, and the request's reply
//     destination type vs. the types the responder returns. Compared by
//     named type identity; anonymous types (struct{}{} pings) and
//     unresolvable handlers are skipped.

// TopicRole classifies what an endpoint does with its topic operand.
type TopicRole uint8

// Endpoint roles.
const (
	TopicPublish      TopicRole = iota // fire-and-forget publish (topic)
	TopicSubscribe                     // subscription (pattern)
	TopicRequest                       // request/reply initiator (topic)
	TopicRespond                       // request/reply responder (pattern)
	TopicRetainedRead                  // read of a retained topic (topic)
)

func (r TopicRole) String() string {
	switch r {
	case TopicPublish:
		return "publish"
	case TopicSubscribe:
		return "subscribe"
	case TopicRequest:
		return "request"
	case TopicRespond:
		return "respond"
	case TopicRetainedRead:
		return "retained-read"
	}
	return "?"
}

// TopicRoot describes one bus API function whose call sites are
// protocol endpoints, keyed by FuncID in TopicConfig.Roots. Argument
// indexes are positional (receiver excluded); -1 means "not present".
type TopicRoot struct {
	Role       TopicRole
	Retained   bool // publish keeps a retained copy
	TopicArg   int  // topic/pattern operand
	BodyArg    int  // request body operand, or -1
	OutArg     int  // request reply-destination operand, or -1
	HandlerArg int  // responder handler operand, or -1
}

// TopicConfig scopes the topicflow analysis: which functions are
// protocol roots, and which packages implement the transport itself
// (their bodies — the reply-channel plumbing inside the bus — are not
// protocol endpoints).
type TopicConfig struct {
	Roots    map[string]TopicRoot
	ImplPkgs []string
}

// --- shapes -----------------------------------------------------------------

type segKind uint8

const (
	segLit      segKind = iota // literal segment text
	segPlus                    // "+" written in a pattern
	segHash                    // "#" written in a pattern
	segAbstract                // unresolved component: one OR MORE unknown segments
)

type topicSeg struct {
	kind segKind
	lit  string
}

type topicShape struct{ segs []topicSeg }

// String renders the shape with abstract segments as "+": the dump
// groups by what an endpoint can match, and an unknown ID matches
// exactly what "+" does.
func (s topicShape) String() string {
	parts := make([]string, len(s.segs))
	for i, g := range s.segs {
		switch g.kind {
		case segPlus, segAbstract:
			parts[i] = "+"
		case segHash:
			parts[i] = "#"
		default:
			parts[i] = g.lit
		}
	}
	return strings.Join(parts, "/")
}

// shapeMayMatch mirrors bus.Match over shapes, conservatively: is there
// ANY concretization of the unknowns under which the pattern matches
// the topic? "+" matches exactly one segment and "#" any remainder
// (bus.Match semantics); an abstract component stands for a runtime ID,
// which — as the hierarchical broker/node IDs show ("lc0/nc0/n3") — may
// itself contain slashes, so it concretizes to one OR MORE segments. A
// "no match" answer here is therefore definite.
func shapeMayMatch(pat, top topicShape) bool {
	memo := map[[2]int]bool{}
	var rec func(i, j int) bool
	rec = func(i, j int) bool {
		key := [2]int{i, j}
		if v, ok := memo[key]; ok {
			return v
		}
		memo[key] = false // cycle guard; overwritten below
		v := shapeMayMatchAt(pat.segs, top.segs, i, j, rec)
		memo[key] = v
		return v
	}
	return rec(0, 0)
}

func shapeMayMatchAt(ps, ts []topicSeg, i, j int, rec func(int, int) bool) bool {
	if i < len(ps) && ps[i].kind == segHash {
		return true // "#" swallows any remainder, including none ("a/#" matches "a")
	}
	if i == len(ps) || j == len(ts) {
		return i == len(ps) && j == len(ts)
	}
	p, t := ps[i], ts[j]
	if t.kind == segPlus || t.kind == segHash {
		return true // wildcard in a topic: invalid, reported separately; stay permissive
	}
	switch {
	case p.kind == segAbstract && t.kind == segAbstract:
		return rec(i+1, j+1) || rec(i+1, j) || rec(i, j+1)
	case p.kind == segAbstract:
		// the abstract component consumes this segment and may extend
		return rec(i+1, j+1) || rec(i, j+1)
	case t.kind == segAbstract:
		return rec(i+1, j+1) || rec(i+1, j)
	case p.kind == segLit && p.lit != t.lit:
		return false
	default: // lit==lit or "+"-vs-lit: exactly one segment each
		return rec(i+1, j+1)
	}
}

// topicInvalidReason checks a concrete-topic shape against
// bus.ValidTopic; abstract segments are assumed valid IDs.
func topicInvalidReason(s topicShape) string {
	for _, g := range s.segs {
		switch {
		case g.kind == segLit && g.lit == "":
			return "empty segment"
		case g.kind == segPlus || g.kind == segHash:
			return "wildcard segment in a concrete topic"
		}
	}
	return ""
}

// patternInvalidReason checks a pattern shape against bus.ValidPattern.
func patternInvalidReason(s topicShape) string {
	for i, g := range s.segs {
		switch {
		case g.kind == segLit && g.lit == "":
			return "empty segment"
		case g.kind == segHash && i != len(s.segs)-1:
			return `"#" before the final segment`
		}
	}
	return ""
}

// --- operand resolution -----------------------------------------------------

type partKind uint8

const (
	partLit      partKind = iota // literal text
	partAbstract                 // unknown component (one or more segments)
	partParam                    // free parameter of the enclosing function
)

// topicPart is one component of a partially resolved topic operand.
type topicPart struct {
	kind  partKind
	lit   string
	param *types.Var
}

// shapeCtx is the resolution context: the function whose body the
// expression sits in, plus parameter substitutions for inlined helpers.
type shapeCtx struct {
	node *CGNode
	bind map[types.Object][]topicPart
}

const maxResolveDepth = 16

// topicResolver resolves topic-operand expressions to part sequences.
type topicResolver struct{ g *CallGraph }

// resolve returns the operand's parts, or ok=false when the expression
// is not statically evaluable at all (the caller decides whether that
// makes a sub-component abstract or the whole endpoint opaque).
func (r *topicResolver) resolve(ctx *shapeCtx, e ast.Expr, depth int) ([]topicPart, bool) {
	if depth > maxResolveDepth {
		return nil, false
	}
	info := ctx.node.Pkg.Info
	e = ast.Unparen(e)
	// Constant folding first: literals, named constants, and constant
	// concatenations all resolve in one step.
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return []topicPart{{kind: partLit, lit: constant.StringVal(tv.Value)}}, true
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return nil, false
		}
		l := r.resolveComponent(ctx, x.X, depth)
		rr := r.resolveComponent(ctx, x.Y, depth)
		return append(l, rr...), true
	case *ast.CallExpr:
		if pkgPath, name, _, ok := pkgFuncCall(info, x); ok && pkgPath == "fmt" && name == "Sprintf" {
			return r.sprintfParts(ctx, x, depth)
		}
		return r.inlineCall(ctx, x, depth)
	case *ast.Ident:
		obj := info.ObjectOf(x)
		if obj == nil {
			return nil, false
		}
		if parts, ok := ctx.bind[obj]; ok {
			return parts, true
		}
		v, isVar := obj.(*types.Var)
		if !isVar {
			return nil, false
		}
		if paramIndexOf(ctx.node, v) >= 0 {
			return []topicPart{{kind: partParam, param: v}}, true
		}
		if !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() {
			return r.resolveLocal(ctx, obj, depth)
		}
		return nil, false
	}
	return nil, false
}

// resolveComponent resolves one sub-component of a concatenation: an
// unresolvable component degrades to a single abstract part instead of
// failing the whole operand.
func (r *topicResolver) resolveComponent(ctx *shapeCtx, e ast.Expr, depth int) []topicPart {
	if parts, ok := r.resolve(ctx, e, depth+1); ok {
		return parts
	}
	return []topicPart{{kind: partAbstract}}
}

// resolveLocal resolves a local variable bound exactly once in the
// enclosing body; anything rebound or range/multi-assigned stays
// unresolved.
func (r *topicResolver) resolveLocal(ctx *shapeCtx, obj types.Object, depth int) ([]topicPart, bool) {
	info := ctx.node.Pkg.Info
	var rhs ast.Expr
	count := 0
	ast.Inspect(ctx.node.Body(), func(m ast.Node) bool {
		switch a := m.(type) {
		case *ast.AssignStmt:
			for i, l := range a.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || info.ObjectOf(id) != obj {
					continue
				}
				count++
				if len(a.Rhs) == len(a.Lhs) {
					rhs = a.Rhs[i]
				} else {
					rhs = nil
				}
			}
		case *ast.ValueSpec:
			for i, nm := range a.Names {
				if info.ObjectOf(nm) != obj {
					continue
				}
				count++
				if i < len(a.Values) {
					rhs = a.Values[i]
				} else {
					rhs = nil
				}
			}
		case *ast.RangeStmt:
			if id, ok := a.Key.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				count += 2 // loop-carried: never single-assignment
			}
			if id, ok := a.Value.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				count += 2
			}
		}
		return true
	})
	if count != 1 || rhs == nil {
		return nil, false
	}
	return r.resolve(ctx, rhs, depth+1)
}

// sprintfParts evaluates fmt.Sprintf with a constant format string:
// literal text stays literal, %s/%v splice the argument's resolution
// (or an abstract segment), numeric and quoting verbs become abstract.
func (r *topicResolver) sprintfParts(ctx *shapeCtx, call *ast.CallExpr, depth int) ([]topicPart, bool) {
	info := ctx.node.Pkg.Info
	if len(call.Args) == 0 || call.Ellipsis != token.NoPos {
		return nil, false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil, false
	}
	format := constant.StringVal(tv.Value)
	args := call.Args[1:]
	var parts []topicPart
	var lit []byte
	flush := func() {
		if len(lit) > 0 {
			parts = append(parts, topicPart{kind: partLit, lit: string(lit)})
			lit = lit[:0]
		}
	}
	argi := 0
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			lit = append(lit, c)
			continue
		}
		i++
		if i >= len(format) {
			return nil, false
		}
		if format[i] == '%' {
			lit = append(lit, '%')
			continue
		}
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			return nil, false
		}
		verb := format[i]
		if verb == '[' || verb == '*' || argi >= len(args) {
			return nil, false // explicit indexes, arg-widths, or too few args: bail
		}
		arg := args[argi]
		argi++
		flush()
		if verb == 's' || verb == 'v' {
			parts = append(parts, r.resolveComponent(ctx, arg, depth)...)
		} else {
			parts = append(parts, topicPart{kind: partAbstract})
		}
	}
	flush()
	return parts, true
}

// inlineCall resolves a call to a module-local function whose body is a
// single one-result return, by substituting the argument shapes — the
// topics.go helper pattern.
func (r *topicResolver) inlineCall(ctx *shapeCtx, call *ast.CallExpr, depth int) ([]topicPart, bool) {
	if call.Ellipsis != token.NoPos {
		return nil, false
	}
	fn := calleeFunc(ctx.node.Pkg.Info, call)
	if fn == nil {
		return nil, false
	}
	node := r.g.NodeFor(fn)
	if node == nil || node.Decl == nil {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() || sig.Params().Len() != len(call.Args) {
		return nil, false
	}
	if len(node.Decl.Body.List) != 1 {
		return nil, false
	}
	ret, ok := node.Decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil, false
	}
	bind := map[types.Object][]topicPart{}
	for i := 0; i < sig.Params().Len(); i++ {
		bind[sig.Params().At(i)] = r.resolveComponent(ctx, call.Args[i], depth)
	}
	return r.resolve(&shapeCtx{node: node, bind: bind}, ret.Results[0], depth+1)
}

// nodeSig returns the node's function signature.
func nodeSig(n *CGNode) *types.Signature {
	if n.Fn != nil {
		sig, _ := n.Fn.Type().(*types.Signature)
		return sig
	}
	sig, _ := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature)
	return sig
}

// paramIndexOf returns v's positional index in n's signature (receiver
// excluded), or -1.
func paramIndexOf(n *CGNode, v *types.Var) int {
	sig := nodeSig(n)
	if sig == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i
		}
	}
	return -1
}

// partsToShape finalizes parts into a segment shape: leftover params
// (an endpoint that could not lift further) degrade to abstract.
func partsToShape(parts []topicPart) topicShape {
	const hole = "\x00"
	var b strings.Builder
	for _, p := range parts {
		if p.kind == partLit {
			b.WriteString(p.lit)
		} else {
			b.WriteString(hole)
		}
	}
	raw := strings.Split(b.String(), "/")
	segs := make([]topicSeg, len(raw))
	for i, s := range raw {
		switch {
		case strings.Contains(s, hole):
			segs[i] = topicSeg{kind: segAbstract}
		case s == "+":
			segs[i] = topicSeg{kind: segPlus}
		case s == "#":
			segs[i] = topicSeg{kind: segHash}
		default:
			segs[i] = topicSeg{kind: segLit, lit: s}
		}
	}
	return topicShape{segs: segs}
}

// --- endpoint collection ----------------------------------------------------

// operand carries a body/out/handler expression with the package whose
// type info can evaluate it (lifting moves operands between packages).
type operand struct {
	expr ast.Expr
	pkg  *Package
}

// topicEndpoint is one protocol endpoint: a bus API call site (possibly
// lifted to the caller that supplies its topic) with its resolved shape.
type topicEndpoint struct {
	role     TopicRole
	retained bool
	pkg      *Package
	pos      token.Pos
	opaque   bool // topic operand not statically evaluable
	invalid  bool // shape fails the bus's validity rules
	shape    topicShape
	bodyType types.Type // request body static type, or nil
	outType  types.Type // request reply-destination element type, or nil
	handler  *CGNode    // responder handler, or nil
}

// topicFinding is one diagnostic-to-be, tagged with the package whose
// pass reports it.
type topicFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// topicAnalysis is the memoized whole-program result.
type topicAnalysis struct {
	endpoints []*topicEndpoint
	findings  []topicFinding
}

const maxLiftDepth = 8

// topicAnalysisResult computes (once) the whole-program topic analysis.
func (p *Program) topicAnalysisResult(cfg *TopicConfig) *topicAnalysis {
	if p.topics != nil {
		return p.topics
	}
	ta := &topicAnalysis{}
	g := p.CallGraph()
	isImpl := pathMatcher(cfg.ImplPkgs...)
	res := &topicResolver{g: g}
	isRootFn := func(n *CGNode) bool {
		if n.Fn == nil {
			return false
		}
		_, ok := cfg.Roots[FuncID(n.Fn)]
		return ok
	}
	for _, n := range g.SortedNodes() {
		if isImpl(n.Pkg.Path) || isRootFn(n) {
			continue // transport internals and root bodies are not endpoints
		}
		node := n
		ast.Inspect(n.Body(), func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit {
				return false // literal interiors are their own graph nodes
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(node.Pkg.Info, call)
			if fn == nil {
				return true
			}
			root, ok := cfg.Roots[FuncID(fn)]
			if !ok {
				return true
			}
			ta.collect(res, cfg, isImpl, node, call, root)
			return true
		})
	}
	ta.check()
	sort.Slice(ta.findings, func(i, j int) bool {
		if ta.findings[i].pos != ta.findings[j].pos {
			return ta.findings[i].pos < ta.findings[j].pos
		}
		return ta.findings[i].msg < ta.findings[j].msg
	})
	p.topics = ta
	return ta
}

// collect records one root call site, resolving its operands and
// lifting parametric shapes to real callers.
func (ta *topicAnalysis) collect(res *topicResolver, cfg *TopicConfig, isImpl func(string) bool, owner *CGNode, call *ast.CallExpr, root TopicRoot) {
	if root.TopicArg >= len(call.Args) {
		return
	}
	argOp := func(idx int) operand {
		if idx >= 0 && idx < len(call.Args) {
			return operand{expr: call.Args[idx], pkg: owner.Pkg}
		}
		return operand{}
	}
	parts, ok := res.resolve(&shapeCtx{node: owner}, call.Args[root.TopicArg], 0)
	if !ok {
		ta.endpoints = append(ta.endpoints, &topicEndpoint{
			role: root.Role, retained: root.Retained,
			pkg: owner.Pkg, pos: call.Lparen, opaque: true,
		})
		return
	}
	ta.emit(res, cfg, isImpl, owner, call.Lparen, root, parts,
		argOp(root.BodyArg), argOp(root.OutArg), argOp(root.HandlerArg),
		0, map[*CGNode]bool{})
}

// emit finalizes the endpoint, or — when the shape still references
// parameters of the enclosing function — lifts it through every
// incoming call edge, substituting the caller's argument shapes and
// re-homing parameter-passed operands to the caller's expressions.
func (ta *topicAnalysis) emit(res *topicResolver, cfg *TopicConfig, isImpl func(string) bool,
	node *CGNode, pos token.Pos, root TopicRoot, parts []topicPart,
	body, out, handler operand, depth int, visited map[*CGNode]bool) {

	free := false
	for _, p := range parts {
		if p.kind == partParam && paramIndexOf(node, p.param) >= 0 {
			free = true
			break
		}
	}
	sig := nodeSig(node)
	if !free || depth >= maxLiftDepth || visited[node] || sig == nil || sig.Variadic() {
		ta.finalize(res, node, pos, root, parts, body, out, handler)
		return
	}
	var edges []*CallEdge
	for _, e := range node.In {
		if e.Call == nil || isImpl(e.Caller.Pkg.Path) {
			continue
		}
		if e.Caller.Fn != nil {
			if _, isRoot := cfg.Roots[FuncID(e.Caller.Fn)]; isRoot {
				continue
			}
		}
		if sig.Params().Len() != len(e.Call.Args) {
			continue // method value / mismatched call: cannot map args
		}
		edges = append(edges, e)
	}
	if len(edges) == 0 {
		ta.finalize(res, node, pos, root, parts, body, out, handler)
		return
	}
	visited[node] = true
	defer delete(visited, node)
	for _, e := range edges {
		cctx := &shapeCtx{node: e.Caller}
		bind := map[*types.Var][]topicPart{}
		for i := 0; i < sig.Params().Len(); i++ {
			bind[sig.Params().At(i)] = res.resolveComponent(cctx, e.Call.Args[i], 0)
		}
		var nparts []topicPart
		for _, p := range parts {
			if p.kind == partParam {
				if sub, ok := bind[p.param]; ok {
					nparts = append(nparts, sub...)
					continue
				}
			}
			nparts = append(nparts, p)
		}
		lift := func(op operand) operand {
			id, ok := op.expr.(*ast.Ident)
			if !ok || op.pkg == nil {
				return op
			}
			v, _ := op.pkg.Info.ObjectOf(id).(*types.Var)
			if v == nil {
				return op
			}
			if i := paramIndexOf(node, v); i >= 0 {
				return operand{expr: e.Call.Args[i], pkg: e.Caller.Pkg}
			}
			return op
		}
		ta.emit(res, cfg, isImpl, e.Caller, e.Pos, root, nparts,
			lift(body), lift(out), lift(handler), depth+1, visited)
	}
}

// finalize materializes one endpoint at its (possibly lifted) call site.
func (ta *topicAnalysis) finalize(res *topicResolver, node *CGNode, pos token.Pos, root TopicRoot,
	parts []topicPart, body, out, handler operand) {

	ep := &topicEndpoint{
		role: root.Role, retained: root.Retained,
		pkg: node.Pkg, pos: pos, shape: partsToShape(parts),
	}
	if body.expr != nil {
		ep.bodyType = body.pkg.Info.TypeOf(body.expr)
	}
	if out.expr != nil {
		t := out.pkg.Info.TypeOf(out.expr)
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		ep.outType = t
	}
	if handler.expr != nil {
		ep.handler = resolveHandler(res.g, handler)
	}
	ta.endpoints = append(ta.endpoints, ep)
}

// resolveHandler maps a handler operand to its call-graph node: a
// declared function, a method value, or a function literal.
func resolveHandler(g *CallGraph, op operand) *CGNode {
	switch x := ast.Unparen(op.expr).(type) {
	case *ast.FuncLit:
		return g.NodeForLit(x)
	case *ast.Ident:
		if fn, ok := op.pkg.Info.Uses[x].(*types.Func); ok {
			return g.NodeFor(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := op.pkg.Info.Uses[x.Sel].(*types.Func); ok {
			return g.NodeFor(fn)
		}
	}
	return nil
}

// --- checks -----------------------------------------------------------------

// typeKey names a (possibly pointer-wrapped) named type for comparison
// and display; "" for anonymous or unknown types, which are never
// compared.
func typeKey(t types.Type) string {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name()
}

// handlerPayload is what a responder handler does with its payload:
// the type it decodes the request body into and the types it replies
// with.
type handlerPayload struct {
	decode  string
	replies []string
}

// handlerPayloadOf scans a handler body: json.Unmarshal(body, &x)
// against the handler's []byte parameter gives the decode type; return
// statements give the reply types.
func handlerPayloadOf(n *CGNode) handlerPayload {
	var hp handlerPayload
	sig := nodeSig(n)
	if sig == nil {
		return hp
	}
	var bodyParam *types.Var
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if sl, ok := p.Type().(*types.Slice); ok {
			if b, ok := sl.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
				bodyParam = p // last []byte parameter is the body
			}
		}
	}
	info := n.Pkg.Info
	seen := map[string]bool{}
	ast.Inspect(n.Body(), func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		switch x := m.(type) {
		case *ast.CallExpr:
			pkgPath, name, _, ok := pkgFuncCall(info, x)
			if !ok || pkgPath != "encoding/json" || name != "Unmarshal" || len(x.Args) != 2 {
				return true
			}
			id, ok := ast.Unparen(x.Args[0]).(*ast.Ident)
			if !ok || bodyParam == nil || info.ObjectOf(id) != bodyParam {
				return true
			}
			if k := typeKey(info.TypeOf(x.Args[1])); k != "" {
				hp.decode = k
			}
		case *ast.ReturnStmt:
			if len(x.Results) == 0 {
				return true
			}
			t := info.TypeOf(x.Results[0])
			if tup, ok := t.(*types.Tuple); ok && tup.Len() > 0 {
				t = tup.At(0).Type()
			}
			if k := typeKey(t); k != "" && !seen[k] {
				seen[k] = true
				hp.replies = append(hp.replies, k)
			}
		}
		return true
	})
	sort.Strings(hp.replies)
	return hp
}

// check runs every protocol check over the collected endpoint set.
func (ta *topicAnalysis) check() {
	var pats, reqs, resps, reads []*topicEndpoint
	opaquePattern := false
	for _, ep := range ta.endpoints {
		if ep.opaque {
			if ep.role == TopicSubscribe || ep.role == TopicRespond {
				opaquePattern = true
			}
			continue
		}
		// Validity first; invalid endpoints are excluded from matching.
		var reason string
		if ep.role == TopicSubscribe || ep.role == TopicRespond {
			reason = patternInvalidReason(ep.shape)
		} else {
			reason = topicInvalidReason(ep.shape)
		}
		if reason != "" {
			ep.invalid = true
			ta.finding(ep, "statically invalid %s %s %q: %s", ep.role, kindWord(ep.role), ep.shape, reason)
			continue
		}
		switch ep.role {
		case TopicSubscribe, TopicRespond:
			pats = append(pats, ep)
			if ep.role == TopicRespond {
				resps = append(resps, ep)
			}
		case TopicRequest:
			reqs = append(reqs, ep)
		case TopicRetainedRead:
			reads = append(reads, ep)
		}
	}
	matchedByPattern := func(shape topicShape) bool {
		for _, p := range pats {
			if shapeMayMatch(p.shape, shape) {
				return true
			}
		}
		return false
	}
	for _, ep := range ta.endpoints {
		if ep.opaque || ep.invalid {
			continue
		}
		switch ep.role {
		case TopicPublish:
			if opaquePattern || matchedByPattern(ep.shape) {
				continue
			}
			if ep.retained {
				ok := false
				for _, rd := range reads {
					if shapeMayMatch(rd.shape, ep.shape) {
						ok = true
						break
					}
				}
				if ok {
					continue
				}
				ta.finding(ep, "retained publish on %q matches no subscription, responder, or retained read (orphan publish)", ep.shape)
				continue
			}
			ta.finding(ep, "publish on %q matches no subscription or responder pattern (orphan publish)", ep.shape)
		case TopicRequest:
			if !opaquePattern && !matchedByPattern(ep.shape) {
				ta.finding(ep, "request on %q has no matching responder or subscription: it can only time out (unanswered request)", ep.shape)
				continue
			}
			ta.payloadCheck(ep, resps)
		case TopicRespond:
			targeted := false
			for _, rq := range reqs {
				if shapeMayMatch(ep.shape, rq.shape) {
					targeted = true
					break
				}
			}
			if !targeted {
				for _, pb := range ta.endpoints {
					if pb.role == TopicPublish && !pb.opaque && !pb.invalid && shapeMayMatch(ep.shape, pb.shape) {
						targeted = true
						break
					}
				}
			}
			if !targeted {
				ta.finding(ep, "responder on %q is targeted by no request or publish (unrequested responder)", ep.shape)
			}
		}
	}
}

// payloadCheck compares a request's body/reply types against every
// responder its topic can reach.
func (ta *topicAnalysis) payloadCheck(req *topicEndpoint, resps []*topicEndpoint) {
	bodyKey := typeKey(req.bodyType)
	outKey := typeKey(req.outType)
	if bodyKey == "" && outKey == "" {
		return
	}
	for _, rp := range resps {
		if rp.handler == nil || !shapeMayMatch(rp.shape, req.shape) {
			continue
		}
		hp := handlerPayloadOf(rp.handler)
		at := rp.pkg.Fset.Position(rp.pos)
		where := fmt.Sprintf("%s:%d", baseName(at.Filename), at.Line)
		if bodyKey != "" && hp.decode != "" && bodyKey != hp.decode {
			ta.finding(req, "request on %q sends body type %s but the responder at %s decodes %s (payload mismatch)",
				req.shape, bodyKey, where, hp.decode)
		}
		if outKey != "" && len(hp.replies) > 0 {
			ok := false
			for _, rk := range hp.replies {
				if rk == outKey {
					ok = true
					break
				}
			}
			if !ok {
				ta.finding(req, "request on %q decodes the reply into %s but the responder at %s replies with %s (payload mismatch)",
					req.shape, outKey, where, strings.Join(hp.replies, ", "))
			}
		}
	}
}

func kindWord(r TopicRole) string {
	if r == TopicSubscribe || r == TopicRespond {
		return "pattern"
	}
	return "topic"
}

func (ta *topicAnalysis) finding(ep *topicEndpoint, format string, args ...any) {
	ta.findings = append(ta.findings, topicFinding{pkg: ep.pkg, pos: ep.pos, msg: fmt.Sprintf(format, args...)})
}

// TopicFlow returns the message-protocol analyzer. The analysis is
// whole-program and memoized on the Program; each pass reports only
// findings positioned in its own package.
func TopicFlow(cfg *TopicConfig) *Analyzer {
	return &Analyzer{
		Name: "topicflow",
		Doc:  "message-protocol topic graph: orphan publishes, unanswered requests, unrequested responders, invalid topics, payload mismatches",
		Run: func(pass *Pass) {
			ta := pass.Prog.topicAnalysisResult(cfg)
			for _, f := range ta.findings {
				if f.pkg == pass.Pkg {
					pass.Reportf(f.pos, "%s", f.msg)
				}
			}
		},
	}
}

// FormatTopicGraph renders the protocol topic graph as sorted,
// byte-stable text: one block per topic shape (opaque endpoints under
// "<dynamic>"), each endpoint line giving role, package, site, and —
// for requests and responders — the payload contract.
func FormatTopicGraph(prog *Program, cfg *TopicConfig) string {
	ta := prog.topicAnalysisResult(cfg)
	type row struct {
		sortKey string
		text    string
	}
	groups := map[string][]row{}
	for _, ep := range ta.endpoints {
		key := "<dynamic>"
		if !ep.opaque {
			key = ep.shape.String()
		}
		role := ep.role.String()
		if ep.role == TopicPublish && ep.retained {
			role = "publish-retained"
		}
		at := ep.pkg.Fset.Position(ep.pos)
		site := fmt.Sprintf("%s:%d", baseName(at.Filename), at.Line)
		extra := ""
		switch ep.role {
		case TopicRequest:
			if k := typeKey(ep.bodyType); k != "" {
				extra += "  body=" + k
			}
			if k := typeKey(ep.outType); k != "" {
				extra += "  reply=" + k
			}
		case TopicRespond:
			if ep.handler != nil {
				extra = "  handler=" + ep.handler.ID
			}
		}
		text := fmt.Sprintf("  %-16s %s  %s%s\n", role, ep.pkg.Path, site, extra)
		groups[key] = append(groups[key], row{sortKey: role + "\x00" + ep.pkg.Path + "\x00" + site + extra, text: text})
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
		rows := groups[k]
		sort.Slice(rows, func(i, j int) bool { return rows[i].sortKey < rows[j].sortKey })
		for _, r := range rows {
			b.WriteString(r.text)
		}
	}
	return b.String()
}
