package lint

import (
	"go/token"
	"strings"
	"testing"
)

// FuzzIgnoreDirective hammers the //lint:ignore parser with arbitrary
// comment text. The parser sits in front of every suppression decision
// sdlint makes, so its invariants are load-bearing:
//
//   - it never panics;
//   - only text starting with the exact "//lint:ignore" word is a
//     directive at all;
//   - a well-formed directive has at least one non-empty check name and
//     a non-empty reason, and its check list round-trips to the first
//     field of the comment;
//   - parsing is deterministic.
func FuzzIgnoreDirective(f *testing.F) {
	for _, seed := range []string{
		"//lint:ignore errcheck best-effort reply",
		"//lint:ignore errcheck,printban two checks one reason",
		"//lint:ignore goroleak intentional process-lifetime daemon",
		"//lint:ignore",                    // no checks, no reason: malformed
		"//lint:ignore errcheck",           // reason missing: malformed
		"//lint:ignore  spaced   out  ok ", // extra whitespace
		"//lint:ignoreXYZ not a directive",
		"//lint:ignore a,,b empty segment",
		"//lint:ignore , bare comma",
		"//lint:ignore ,x leading comma",
		"//lint:ignore x, trailing comma",
		"// lint:ignore errcheck spaced prefix is not a directive",
		"//nolint:errcheck other linters' syntax",
		"//lint:ignore\terrcheck\ttabs as separators",
		"//lint:ignore errcheck \x00\xff binary reason",
		"",
	} {
		f.Add(seed)
	}
	pos := token.Position{Filename: "fuzz.go", Line: 1, Column: 1}
	f.Fuzz(func(t *testing.T, text string) {
		d, isDirective := parseDirective(text, pos)
		d2, isDirective2 := parseDirective(text, pos)
		if isDirective != isDirective2 || d.ok != d2.ok || d.reason != d2.reason ||
			strings.Join(d.checks, ",") != strings.Join(d2.checks, ",") {
			t.Fatalf("parseDirective not deterministic on %q", text)
		}
		if !isDirective {
			// Nothing that is not a directive may ever suppress: the prefix
			// either does not match or runs into a non-separator character.
			if strings.HasPrefix(text, ignorePrefix) {
				rest := text[len(ignorePrefix):]
				if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
					t.Fatalf("%q has the directive shape but was not recognized", text)
				}
			}
			if d.ok {
				t.Fatalf("non-directive %q parsed as well-formed", text)
			}
			return
		}
		if !strings.HasPrefix(text, ignorePrefix) {
			t.Fatalf("%q recognized as directive without the prefix", text)
		}
		if !d.ok {
			if len(d.checks) != 0 {
				t.Fatalf("malformed directive %q kept checks %v", text, d.checks)
			}
			return
		}
		if len(d.checks) == 0 {
			t.Fatalf("well-formed directive %q with no checks", text)
		}
		for _, c := range d.checks {
			if c == "" {
				t.Fatalf("well-formed directive %q with empty check segment", text)
			}
			if strings.ContainsAny(c, " \t") {
				t.Fatalf("check name %q contains whitespace", c)
			}
		}
		if d.reason == "" {
			t.Fatalf("well-formed directive %q with empty reason", text)
		}
		fields := strings.Fields(text[len(ignorePrefix):])
		if got := strings.Join(d.checks, ","); got != fields[0] {
			t.Fatalf("check list %q does not round-trip to field %q", got, fields[0])
		}
	})
}

// TestMalformedEmptyCheckSegment pins the fuzz-hardened rule at the unit
// level: comma typos in the check list make the directive malformed (and
// so reported) rather than a silent partial suppression.
func TestMalformedEmptyCheckSegment(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 1}
	for _, text := range []string{
		"//lint:ignore a,,b reason here",
		"//lint:ignore ,a reason here",
		"//lint:ignore a, reason here",
		"//lint:ignore , reason here",
	} {
		d, isDirective := parseDirective(text, pos)
		if !isDirective {
			t.Errorf("%q not recognized as a directive", text)
			continue
		}
		if d.ok {
			t.Errorf("%q parsed as well-formed, want malformed", text)
		}
	}
}
