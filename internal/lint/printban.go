package lint

import (
	"go/ast"
	"go/types"
)

// PrintBan keeps library packages silent: no fmt.Print*, no log
// package-level printing, no builtin print/println. Library code returns
// values or writes to an injected io.Writer; stdout/stderr belong to the
// cmd/ binaries (package main, exempt by construction), the experiments
// table printers named in allowedPkgs, and test files (never loaded).
//
// Writing to an explicit writer (fmt.Fprintf(w, ...)) is always fine —
// the ban is on ambient output streams, not on formatting.
func PrintBan(allowed func(pkgPath string) bool) *Analyzer {
	a := &Analyzer{
		Name: "printban",
		Doc:  "no fmt.Print*/log.Print* in library packages; print only from cmd/, allowlisted printers, and tests",
	}
	bannedFmt := map[string]bool{"Print": true, "Printf": true, "Println": true}
	bannedLog := map[string]bool{
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Name == "main" || allowed(pass.Pkg.Path) {
			return
		}
		info := pass.Pkg.Info
		inspectFiles(pass, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
					pass.Reportf(call.Pos(), "builtin %s in library package; return values or write to an injected io.Writer", b.Name())
				}
				return true
			}
			pkgPath, name, sel, ok := pkgFuncCall(info, call)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "fmt" && bannedFmt[name]:
				pass.Reportf(sel.Pos(), "fmt.%s writes to stdout from a library package; return values or write to an injected io.Writer", name)
			case pkgPath == "log" && bannedLog[name]:
				pass.Reportf(sel.Pos(), "log.%s in library package; surface errors to the caller or record an obs metric", name)
			}
			return true
		})
	}
	return a
}
