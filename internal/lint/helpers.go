package lint

import (
	"go/ast"
	"go/types"
)

// pkgFuncCall reports whether the call's callee is the package-level
// function pkgPath.name, resolved through the type info (so aliased
// imports and shadowed identifiers are handled correctly). It returns
// the selector for position reporting.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, sel *ast.SelectorExpr, ok bool) {
	s, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	id, isIdent := s.X.(*ast.Ident)
	if !isIdent {
		return "", "", nil, false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", nil, false
	}
	return pn.Imported().Path(), s.Sel.Name, s, true
}

// calleeFunc resolves the call's callee to a *types.Func (package-level
// function or method) if possible.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// hasErrorResult reports whether t (a call's result type) is or contains
// the built-in error type.
func hasErrorResult(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// namedType unwraps pointers and returns the named type beneath, if any.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// pathMatcher builds an import-path predicate from exact paths and
// "prefix/..." patterns.
func pathMatcher(patterns ...string) func(string) bool {
	exact := map[string]bool{}
	var prefixes []string
	for _, p := range patterns {
		if pre, ok := cutDots(p); ok {
			prefixes = append(prefixes, pre)
		} else {
			exact[p] = true
		}
	}
	return func(path string) bool {
		if exact[path] {
			return true
		}
		for _, pre := range prefixes {
			if path == pre || len(path) > len(pre) && path[:len(pre)] == pre && path[len(pre)] == '/' {
				return true
			}
		}
		return false
	}
}

func cutDots(p string) (string, bool) {
	const suf = "/..."
	if len(p) > len(suf) && p[len(p)-len(suf):] == suf {
		return p[:len(p)-len(suf)], true
	}
	return p, false
}
