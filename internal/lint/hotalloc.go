package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotalloc: allocation-site discipline on per-event paths.
//
// PR 1 hand-hoisted the decoder buffers and DESIGN.md §6 commits the
// instrumented per-event paths (bus publish, netsim delivery, store
// appends, serve queries) to zero steady-state allocation — but nothing
// guarded that contract: a later edit adding one fmt.Sprintf label or
// boxing one float per cell silently turns a 27 ns read into a GC
// treadmill at 640k QPS. hotalloc rebuilds the discipline statically.
//
// Scope: the call/defer-edge closure of the configured HotEntryPoints
// over the module-local call graph. `go` edges are not followed — a
// spawned goroutine is off the caller's event path. Each reached
// function is classified *hot* (runs once per event) or *loop-hot*
// (additionally runs once per element: reached through a call site
// inside a loop, or called from a loop-hot function).
//
// Allocation-site taxonomy:
//
//   - loop-scoped sites — flagged inside a lexical loop of a hot
//     function, or anywhere in a loop-hot function: make, new, slice
//     and map composite literals, &T{} pointer literals, and function
//     literals (closure allocation). Plain struct *value* literals are
//     exempt (stack-allocated; `out = append(out, Cell{...})` filling
//     a result buffer is the caller's amortized cost, not a per-event
//     leak).
//   - anywhere in a hot function: fmt.Sprintf/Sprint/Sprintln label
//     construction, string concatenation (+ on strings), and interface
//     boxing of basic-typed values in assignments (the map[string]any
//     store `env["v"] = x` allocates per call).
//   - exempt subtrees: arguments of fmt.Errorf / errors.New / panic —
//     error and panic paths are exceptional, not per-event.
//
// Messages carry the entry point through which the function became hot,
// so a finding deep in a helper is actionable without tracing by hand.

type hotState uint8

const (
	hotNone hotState = iota
	hotPlain          // on the event path: runs once per event
	hotLoop           // reached through a loop: runs once per element
)

// HotAlloc returns the hot-path allocation analyzer. entries lists the
// FuncIDs of the per-event entry points whose call closure is guarded;
// stops lists amortized boundaries — functions whose cost is gated by a
// cache or once-guard, where hotness stops propagating (the boundary
// function itself is still scanned, its callees are not).
func HotAlloc(entries []string, stops []string) *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "no per-event allocations (loop make/new/literals/closures, Sprintf labels, string concat, interface boxing) on hot paths",
		Run: func(pass *Pass) {
			g := pass.Prog.CallGraph()
			state, via := hotClosure(g, entries, stops)
			for _, n := range g.SortedNodes() {
				if n.Pkg != pass.Pkg || state[n] == hotNone {
					continue
				}
				scanHotFunc(pass, n, state[n], via[n])
			}
		},
	}
}

// hotClosure propagates hotness from the entry points over call and
// defer edges: a call site inside a loop upgrades the callee to
// loop-hot, and loop-hot propagates unconditionally (the whole callee
// runs per element). via records the entry ID that first reached each
// node, as the finding's witness.
func hotClosure(g *CallGraph, entries []string, stops []string) (map[*CGNode]hotState, map[*CGNode]string) {
	state := map[*CGNode]hotState{}
	via := map[*CGNode]string{}
	for _, id := range entries {
		if n := g.Nodes[id]; n != nil {
			state[n] = hotPlain
			via[n] = id
		}
	}
	stop := map[string]bool{}
	for _, id := range stops {
		stop[id] = true
	}
	loops := map[*CGNode][][2]token.Pos{}
	for changed := true; changed; {
		changed = false
		for _, n := range g.SortedNodes() {
			st := state[n]
			if st == hotNone || stop[n.ID] {
				continue
			}
			if _, done := loops[n]; !done {
				loops[n] = loopRanges(n.Body())
			}
			for _, e := range n.Out {
				if e.Kind == EdgeGo || e.Callee == nil {
					continue
				}
				next := st
				if st == hotPlain && posInRanges(e.Pos, loops[n]) {
					next = hotLoop
				}
				if next > state[e.Callee] {
					state[e.Callee] = next
					if via[e.Callee] == "" {
						via[e.Callee] = via[n]
					}
					changed = true
				}
			}
		}
	}
	return state, via
}

// loopRanges collects the source extents of for/range statements in the
// body, excluding nested function literals (their loops belong to their
// own graph nodes).
func loopRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			out = append(out, [2]token.Pos{x.Pos(), x.End()})
		case *ast.RangeStmt:
			out = append(out, [2]token.Pos{x.Pos(), x.End()})
		}
		return true
	})
	return out
}

func posInRanges(p token.Pos, rs [][2]token.Pos) bool {
	for _, r := range rs {
		if r[0] <= p && p < r[1] {
			return true
		}
	}
	return false
}

// scanHotFunc reports the allocation sites of one hot function.
func scanHotFunc(pass *Pass, n *CGNode, st hotState, via string) {
	body := n.Body()
	loops := loopRanges(body)
	perElem := func(p token.Pos) bool {
		return st == hotLoop || posInRanges(p, loops)
	}
	exempt := exemptRanges(pass, body)
	mapKeys := mapKeyRanges(n.Pkg, body)
	ast.Inspect(body, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			// The literal's interior is its own graph node (scanned when
			// it is itself reachable); the literal expression here is a
			// closure allocation at this site.
			if perElem(m.Pos()) && !posInRanges(m.Pos(), exempt) {
				pass.Reportf(m.Pos(), "closure allocated per element on the hot path (entered via %s); hoist the function value out of the loop", via)
			}
			return false
		}
		if posInRanges(m.Pos(), exempt) {
			return true
		}
		switch x := m.(type) {
		case *ast.CallExpr:
			scanHotCall(pass, n, x, perElem, via)
		case *ast.CompositeLit:
			scanHotComposite(pass, n, x, perElem, via)
		case *ast.UnaryExpr:
			if x.Op == token.AND && perElem(x.Pos()) {
				if _, isComp := ast.Unparen(x.X).(*ast.CompositeLit); isComp {
					pass.Reportf(x.Pos(), "&T{} literal heap-allocates per element on the hot path (entered via %s); hoist or reuse the object", via)
				}
			}
		case *ast.BinaryExpr:
			// Concat used directly as a map index is exempt: the compiler
			// stack-buffers the key for m[a+b], so the idiomatic
			// links[from+"→"+to] lookup does not allocate.
			if x.Op == token.ADD && isStringExpr(n.Pkg, x) && !posInRanges(x.OpPos, mapKeys) {
				pass.Reportf(x.OpPos, "string concatenation allocates on the hot path (entered via %s); use a precomputed label or an appending writer", via)
			}
		case *ast.AssignStmt:
			scanHotBoxing(pass, n, x, via)
		}
		return true
	})
}

func scanHotCall(pass *Pass, n *CGNode, call *ast.CallExpr, perElem func(token.Pos) bool, via string) {
	info := n.Pkg.Info
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch obj := info.Uses[id]; obj {
		case types.Universe.Lookup("make"), types.Universe.Lookup("new"):
			if perElem(call.Pos()) {
				pass.Reportf(call.Pos(), "%s allocates per element on the hot path (entered via %s); hoist the buffer out of the loop", id.Name, via)
			}
			return
		}
	}
	if pkgPath, name, sel, ok := pkgFuncCall(info, call); ok && pkgPath == "fmt" {
		switch name {
		case "Sprintf", "Sprint", "Sprintln":
			pass.Reportf(sel.Pos(), "fmt.%s builds a string per event on the hot path (entered via %s); precompute the label or use an appending encoder", name, via)
		}
	}
}

func scanHotComposite(pass *Pass, n *CGNode, lit *ast.CompositeLit, perElem func(token.Pos) bool, via string) {
	if !perElem(lit.Pos()) {
		return
	}
	tv, ok := n.Pkg.Info.Types[ast.Expr(lit)]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates per element on the hot path (entered via %s); hoist or reuse a buffer", via)
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates per element on the hot path (entered via %s); hoist or reuse the map", via)
	}
}

// scanHotBoxing flags assignments that box a basic-typed value into an
// interface, including map[...]any element stores.
func scanHotBoxing(pass *Pass, n *CGNode, as *ast.AssignStmt, via string) {
	info := n.Pkg.Info
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := info.TypeOf(lhs)
		rt := info.TypeOf(as.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if _, isIface := lt.Underlying().(*types.Interface); !isIface {
			continue
		}
		b, isBasic := rt.Underlying().(*types.Basic)
		if !isBasic || b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(as.Rhs[i].Pos(), "assignment boxes a %s into an interface per event on the hot path (entered via %s); use a concretely-typed field or a typed fast path", rt.String(), via)
	}
}

// exemptRanges: argument subtrees of error/panic construction — those
// paths are exceptional, not per-event.
func exemptRanges(pass *Pass, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && pass.Pkg.Info.Uses[id] == types.Universe.Lookup("panic") {
			out = append(out, [2]token.Pos{call.Pos(), call.End()})
			return true
		}
		if pkgPath, name, _, isFn := pkgFuncCall(pass.Pkg.Info, call); isFn {
			if (pkgPath == "fmt" && name == "Errorf") || pkgPath == "errors" {
				out = append(out, [2]token.Pos{call.Pos(), call.End()})
			}
		}
		return true
	})
	return out
}

// mapKeyRanges collects the index subtrees of map accesses, where the
// compiler keeps a concatenated string key on the stack.
func mapKeyRanges(pkg *Package, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(m ast.Node) bool {
		ix, ok := m.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if t := pkg.Info.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				out = append(out, [2]token.Pos{ix.Index.Pos(), ix.Index.End()})
			}
		}
		return true
	})
	return out
}

func isStringExpr(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
