package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockorder: interprocedural lock-acquisition analysis.
//
// The walker derives, for every function in the call graph, which
// mutexes are held at every resolved call site by interpreting the body
// in statement order: Lock/RLock adds to the held set, Unlock/RUnlock
// removes, `defer mu.Unlock()` keeps the lock held to function exit, and
// branches merge by intersection (a lock is "held" after an if/else only
// if both arms leave it held), so conditional locking never produces a
// phantom hold. A `go` statement starts its callee with an empty held
// set — the spawned goroutine shares no lock context with its spawner.
//
// On top of the per-function facts the analyzer computes the transitive
// may-acquire set of every function (fixpoint over call and defer edges)
// and builds the global lock-acquisition graph: an edge A→B means "B was
// acquired, directly or through a callee, while A was held". It reports
//
//   - self-deadlocks: acquiring a lock already in the held set, or
//     calling (while holding L) into a function that re-acquires L; a
//     read-read pair is exempt (recursive RLock only deadlocks under
//     writer starvation, which would drown the report in noise);
//   - lock-order cycles: any edge that closes a cycle in the acquisition
//     graph is a potential AB/BA deadlock and is reported at the
//     acquisition site that witnesses it.
//
// Lock identity is type-level: a field mutex is "pkg.Type.field" (every
// instance of the type conflates — ordering violations between two
// instances of one type are out of scope), a package-level mutex is
// "pkg.var", and a local is scoped to its function. The inferred
// hierarchy is dumped, sorted, by `sdlint -lockgraph` (FormatLockGraph)
// so DESIGN.md can pin it.

// lockMode distinguishes read from write acquisition of an RWMutex.
type lockMode uint8

const (
	lockRead lockMode = 1 << iota
	lockWrite
)

// rwConflict reports whether two acquisition modes of the same lock can
// deadlock: anything involving a writer.
func rwConflict(a, b lockMode) bool { return (a|b)&lockWrite != 0 }

// lockFinding is one diagnostic-to-be, tagged with the package whose
// pass should report it (keeps suppression and dedup per package).
type lockFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// lockEdge is one edge of the global lock-acquisition graph with its
// earliest witness position.
type lockEdge struct {
	from, to string
	pkg      *Package
	pos      token.Pos
	witness  token.Position
}

// lockAnalysis is the memoized whole-program result.
type lockAnalysis struct {
	edges    map[[2]string]*lockEdge
	findings []lockFinding
}

// lockSummary is one function's lock facts.
type lockSummary struct {
	heldAt   map[*CallEdge]map[string]lockMode // held set at each out-edge
	acquires map[string]lockMode               // direct acquisitions
	transAcq map[string]lockMode               // after the call-graph fixpoint
}

// lockAnalysisResult computes (once) the whole-program lock analysis.
func (p *Program) lockAnalysisResult() *lockAnalysis {
	if p.locks != nil {
		return p.locks
	}
	la := &lockAnalysis{edges: map[[2]string]*lockEdge{}}
	g := p.CallGraph()
	nodes := g.SortedNodes()

	// Per-function walk.
	summ := map[*CGNode]*lockSummary{}
	for _, n := range nodes {
		w := &lockWalker{la: la, g: g, node: n, summ: &lockSummary{
			heldAt:   map[*CallEdge]map[string]lockMode{},
			acquires: map[string]lockMode{},
		}}
		w.stmts(n.Body().List, map[string]lockMode{})
		summ[n] = w.summ
	}

	// Transitive may-acquire fixpoint over call and defer edges (never
	// go edges: the spawned goroutine's acquisitions happen on another
	// stack and cannot deadlock against locks merely held by the
	// spawner at spawn time).
	for _, s := range summ {
		s.transAcq = map[string]lockMode{}
		for id, m := range s.acquires {
			s.transAcq[id] = m
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			s := summ[n]
			for _, e := range n.Out {
				if e.Kind == EdgeGo {
					continue
				}
				cs := summ[e.Callee]
				for id, m := range cs.transAcq {
					if s.transAcq[id]&m != m {
						s.transAcq[id] |= m
						changed = true
					}
				}
			}
		}
	}

	// Interprocedural edges and self-deadlocks: compose each call site's
	// held set with the callee's transitive acquisitions.
	for _, n := range nodes {
		s := summ[n]
		for _, e := range n.Out {
			if e.Kind == EdgeGo {
				continue
			}
			held := s.heldAt[e]
			if len(held) == 0 {
				continue
			}
			cs := summ[e.Callee]
			for _, id := range sortedLockIDs(held) {
				for _, aid := range sortedLockIDs(cs.transAcq) {
					if aid == id {
						if rwConflict(held[id], cs.transAcq[aid]) {
							la.finding(n.Pkg, e.Pos,
								"call to %s while holding %s, which the callee re-acquires (self-deadlock)",
								e.Callee.ID, id)
						}
						continue
					}
					la.addEdge(id, aid, n.Pkg, e.Pos)
				}
			}
		}
	}

	// Cycle detection: an edge whose target can reach its source closes
	// a cycle; report it at the witness acquisition site.
	succ := map[string][]string{}
	for _, e := range la.edges {
		succ[e.from] = append(succ[e.from], e.to)
	}
	for _, e := range sortedLockEdges(la.edges) {
		if lockReaches(succ, e.to, e.from) {
			la.finding(e.pkg, e.pos,
				"lock-order cycle: %s acquired while holding %s, but a reverse acquisition path exists (AB/BA deadlock risk)",
				e.to, e.from)
		}
	}

	sort.Slice(la.findings, func(i, j int) bool {
		return la.findings[i].pos < la.findings[j].pos
	})
	p.locks = la
	return la
}

func (la *lockAnalysis) finding(pkg *Package, pos token.Pos, format string, args ...any) {
	la.findings = append(la.findings, lockFinding{pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
}

// addEdge records from→to, keeping the earliest witness position so
// repeated runs dump identical graphs.
func (la *lockAnalysis) addEdge(from, to string, pkg *Package, pos token.Pos) {
	k := [2]string{from, to}
	w := pkg.Fset.Position(pos)
	if e, ok := la.edges[k]; ok {
		if posLess(w, e.witness) {
			e.pkg, e.pos, e.witness = pkg, pos, w
		}
		return
	}
	la.edges[k] = &lockEdge{from: from, to: to, pkg: pkg, pos: pos, witness: w}
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func sortedLockIDs(m map[string]lockMode) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func sortedLockEdges(m map[[2]string]*lockEdge) []*lockEdge {
	out := make([]*lockEdge, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

// lockReaches reports whether from can reach to in the acquisition graph.
func lockReaches(succ map[string][]string, from, to string) bool {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		for _, s := range succ[n] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// lockWalker interprets one function body in statement order.
//
// The walker has a second consumer beyond lockorder: raceguard runs its
// own walkers with the access hook set, reusing the held-set flow
// tracking to learn which locks are held at every field access. The hook
// is observational only — it never changes how held sets evolve — so
// lockorder's results are identical whether or not it is installed.
type lockWalker struct {
	la   *lockAnalysis
	g    *CallGraph
	node *CGNode
	summ *lockSummary

	// access, when set, is invoked for every selector expression the walk
	// reaches, with the held set at that statement and whether the
	// selector is a write target (assignment LHS or ++/--).
	access func(sel *ast.SelectorExpr, held map[string]lockMode, write bool)
}

func cloneHeld(h map[string]lockMode) map[string]lockMode {
	c := make(map[string]lockMode, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersectHeld keeps only locks held on both paths (modes union, so a
// write on either path keeps its conflict potential).
func intersectHeld(a, b map[string]lockMode) map[string]lockMode {
	out := map[string]lockMode{}
	for k, v := range a {
		if w, ok := b[k]; ok {
			out[k] = v | w
		}
	}
	return out
}

// stmts walks a statement list; it returns the held set at the fall-off
// point and whether control provably never falls off (return/panic on
// every path).
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]lockMode) (map[string]lockMode, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]lockMode) (map[string]lockMode, bool) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(x.List, held)

	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, mode, acq, ok := w.lockOp(call); ok {
				if acq {
					w.acquire(id, mode, call.Lparen, held)
				} else {
					delete(held, id)
				}
				return held, false
			}
		}
		w.exprEdges(x.X, held)
		return held, isTerminalExpr(w.node.Pkg, x.X)

	case *ast.DeferStmt:
		if id, _, acq, ok := w.lockOp(x.Call); ok && !acq {
			_ = id // deferred unlock: the lock stays held until exit
			return held, false
		}
		w.exprEdges(x.Call, held)
		return held, false

	case *ast.GoStmt:
		w.exprEdges(x.Call, held)
		return held, false

	case *ast.ReturnStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.markWrites(s, held)
		w.exprEdges(s, held)
		_, isRet := s.(*ast.ReturnStmt)
		return held, isRet

	case *ast.IfStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		w.exprEdges(x.Cond, held)
		thenOut, thenTerm := w.stmts(x.Body.List, cloneHeld(held))
		elseOut, elseTerm := held, false
		if x.Else != nil {
			elseOut, elseTerm = w.stmt(x.Else, cloneHeld(held))
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return intersectHeld(thenOut, elseOut), false
		}

	case *ast.ForStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		if x.Cond != nil {
			w.exprEdges(x.Cond, held)
		}
		bodyOut, bodyTerm := w.stmts(x.Body.List, cloneHeld(held))
		if x.Post != nil && !bodyTerm {
			bodyOut, _ = w.stmt(x.Post, bodyOut)
		}
		if bodyTerm {
			return held, false
		}
		return intersectHeld(held, bodyOut), false

	case *ast.RangeStmt:
		w.exprEdges(x.X, held)
		bodyOut, bodyTerm := w.stmts(x.Body.List, cloneHeld(held))
		if bodyTerm {
			return held, false
		}
		return intersectHeld(held, bodyOut), false

	case *ast.SwitchStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		if x.Tag != nil {
			w.exprEdges(x.Tag, held)
		}
		return w.caseMerge(x.Body.List, held, false)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			held, _ = w.stmt(x.Init, held)
		}
		return w.caseMerge(x.Body.List, held, false)

	case *ast.SelectStmt:
		return w.caseMerge(x.Body.List, held, true)

	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; for merge purposes
		// the path is gone (a slight under-approximation that only ever
		// shrinks held sets — it cannot create false positives).
		return held, true

	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, held)

	default:
		return held, false
	}
}

// caseMerge walks switch/select clause bodies from a shared entry state
// and merges the survivors by intersection. Without a default clause a
// switch may skip every case, so the entry state joins the merge; a
// select with no default blocks until some clause runs.
func (w *lockWalker) caseMerge(clauses []ast.Stmt, held map[string]lockMode, isSelect bool) (map[string]lockMode, bool) {
	var outs []map[string]lockMode
	hasDefault := false
	nCases := 0
	for _, cl := range clauses {
		var body []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.exprEdges(e, held)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				_, _ = w.stmt(c.Comm, cloneHeld(held))
			}
			body = c.Body
		default:
			continue
		}
		nCases++
		out, term := w.stmts(body, cloneHeld(held))
		if !term {
			outs = append(outs, out)
		}
	}
	exhaustive := hasDefault || (isSelect && nCases > 0)
	if len(outs) == 0 {
		if exhaustive {
			return held, true // every clause terminates and one must run
		}
		return held, false
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersectHeld(merged, o)
	}
	if !exhaustive {
		merged = intersectHeld(merged, held)
	}
	return merged, false
}

// acquire records a Lock/RLock: order edges against everything already
// held, a self-deadlock if the lock is already in the held set (unless
// read-read), then the new hold.
func (w *lockWalker) acquire(id string, mode lockMode, pos token.Pos, held map[string]lockMode) {
	if old, reentrant := held[id]; reentrant && rwConflict(old, mode) {
		w.la.finding(w.node.Pkg, pos, "%s acquired while already held (self-deadlock)", id)
	}
	for h := range held {
		if h != id {
			w.la.addEdge(h, id, w.node.Pkg, pos)
		}
	}
	held[id] |= mode
	w.summ.acquires[id] |= mode
}

// markWrites feeds the access hook the write targets of an assignment or
// ++/-- statement: each LHS is unwrapped through parens, indexing, and
// pointer dereference to the selector being written through (s.f = v,
// s.f[i] = v, *s.f = v all write through field f). No-op without a hook.
func (w *lockWalker) markWrites(s ast.Stmt, held map[string]lockMode) {
	if w.access == nil {
		return
	}
	var targets []ast.Expr
	switch x := s.(type) {
	case *ast.AssignStmt:
		targets = x.Lhs
	case *ast.IncDecStmt:
		targets = []ast.Expr{x.X}
	default:
		return
	}
	for _, t := range targets {
		for {
			switch u := t.(type) {
			case *ast.ParenExpr:
				t = u.X
			case *ast.IndexExpr:
				t = u.X
			case *ast.StarExpr:
				t = u.X
			case *ast.SelectorExpr:
				w.access(u, held, true)
				t = nil
			default:
				t = nil
			}
			if t == nil {
				break
			}
		}
	}
}

// exprEdges snapshots the current held set at every resolved call edge
// inside the expression (or statement). Function-literal interiors are
// excluded — literals are their own graph nodes with their own walk —
// and go edges snapshot empty (the spawnee starts with no locks).
func (w *lockWalker) exprEdges(n ast.Node, held map[string]lockMode) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if w.access != nil {
			if sel, isSel := m.(*ast.SelectorExpr); isSel {
				w.access(sel, held, false)
			}
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		e := w.g.EdgeByCall[call]
		if e == nil || e.Caller != w.node {
			return true
		}
		snap := map[string]lockMode{}
		if e.Kind != EdgeGo {
			snap = cloneHeld(held)
		}
		if prev, seen := w.summ.heldAt[e]; seen {
			snap = intersectHeld(prev, snap)
		}
		w.summ.heldAt[e] = snap
		return true
	})
}

// lockOp classifies a call as a sync.Mutex/RWMutex acquire or release
// and identifies the lock.
func (w *lockWalker) lockOp(call *ast.CallExpr) (id string, mode lockMode, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		mode, acquire = lockWrite, true
	case "RLock":
		mode, acquire = lockRead, true
	case "Unlock":
		mode, acquire = lockWrite, false
	case "RUnlock":
		mode, acquire = lockRead, false
	default:
		return "", 0, false, false
	}
	fn, _ := w.node.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false, false
	}
	id, ok = w.lockID(sel.X)
	if !ok {
		return "", 0, false, false
	}
	return id, mode, acquire, true
}

// lockID names the mutex operand. Field mutexes are identified by the
// owner's static type ("pkg.Type.field"), package-level mutexes by
// "pkg.var", locals by their enclosing function.
func (w *lockWalker) lockID(e ast.Expr) (string, bool) {
	info := w.node.Pkg.Info
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj, _ := info.ObjectOf(x.Sel).(*types.Var)
		if obj == nil || !obj.IsField() {
			return "", false
		}
		owner := namedType(info.TypeOf(x.X))
		if owner == nil || owner.Obj().Pkg() == nil {
			return "", false
		}
		return owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + obj.Name(), true
	case *ast.Ident:
		v, _ := info.ObjectOf(x).(*types.Var)
		if v == nil {
			return "", false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
		// Local (including a receiver that embeds the mutex): scope the
		// identity to the declared function so distinct locals in
		// different functions never alias.
		rootID := w.node.ID
		if i := indexByte(rootID, '$'); i >= 0 {
			rootID = rootID[:i]
		}
		return rootID + "." + v.Name(), true
	}
	return "", false
}

// isTerminalExpr reports whether the expression statement provably does
// not return: panic, os.Exit, log.Fatal*, runtime.Goexit.
func isTerminalExpr(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
		if b, isB := pkg.Info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
			return true
		}
	}
	if pkgPath, name, _, isPkgFn := pkgFuncCall(pkg.Info, call); isPkgFn {
		switch {
		case pkgPath == "os" && name == "Exit",
			pkgPath == "runtime" && name == "Goexit",
			pkgPath == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln"),
			pkgPath == "log" && (name == "Panic" || name == "Panicf" || name == "Panicln"):
			return true
		}
	}
	return false
}

// Lockorder returns the lock-order analyzer. The analysis itself is
// whole-program and memoized on the Pass's Program; each pass reports
// only the findings positioned in its own package.
func Lockorder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "lock-acquisition cycles (AB/BA deadlocks) and re-entrant self-deadlocks across call chains",
		Run: func(pass *Pass) {
			la := pass.Prog.lockAnalysisResult()
			for _, f := range la.findings {
				if f.pkg == pass.Pkg {
					pass.Reportf(f.pos, "%s", f.msg)
				}
			}
		},
	}
}

// FormatLockGraph renders the inferred lock-acquisition graph as sorted,
// byte-stable text: one "A -> B (file:line)" line per edge, the witness
// being the earliest acquisition site that orders the pair.
func FormatLockGraph(prog *Program) string {
	la := prog.lockAnalysisResult()
	var b []byte
	for _, e := range sortedLockEdges(la.edges) {
		b = append(b, fmt.Sprintf("%s -> %s (%s:%d)\n", e.from, e.to, baseName(e.witness.Filename), e.witness.Line)...)
	}
	return string(b)
}
