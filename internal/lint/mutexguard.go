package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// MutexGuard enforces documented lock discipline: a struct field whose
// doc or line comment says "guarded by <mu>" may only be touched inside
// methods of that struct that lock <mu> (Lock or RLock, directly on the
// receiver) somewhere in their body. This pins exactly the class of bug
// the netsim -race stress test can only catch probabilistically: a new
// accessor that forgets the mutex.
//
// Conventions the check understands:
//
//   - <mu> must be a sibling field of type sync.Mutex, sync.RWMutex, or
//     a pointer to either; naming a non-existent or non-mutex field is
//     itself reported.
//   - Methods whose name ends in "Locked" are exempt — the suffix is
//     the project's documented "caller holds the lock" convention.
//   - The check is flow-insensitive (a lock anywhere in the method
//     satisfies it) and only inspects methods of the annotated type;
//     construction before the value escapes needs no lock and plain
//     functions are out of scope.
var mutexGuardRe = regexp.MustCompile(`guarded by (\w+)`)

func MutexGuard() *Analyzer {
	a := &Analyzer{
		Name: "mutexguard",
		Doc:  "fields documented as 'guarded by mu' may only be accessed in methods that lock mu",
	}
	a.Run = func(pass *Pass) {
		guarded := collectGuardedFields(pass)
		if len(guarded) == 0 {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil {
					continue
				}
				checkGuardedMethod(pass, guarded, fd)
			}
		}
	}
	return a
}

// guardedFields maps a struct type name to field name to guarding mutex
// field name.
type guardedFields map[string]map[string]string

func collectGuardedFields(pass *Pass) guardedFields {
	out := guardedFields{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				if !structHasMutexField(pass, st, mu) {
					pass.Reportf(field.Pos(), "guarded-by comment names %q, which is not a sync.Mutex/RWMutex field of %s", mu, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					m := out[ts.Name.Name]
					if m == nil {
						m = map[string]string{}
						out[ts.Name.Name] = m
					}
					m[name.Name] = mu
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := mutexGuardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func structHasMutexField(pass *Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			tv, ok := pass.Pkg.Info.Types[field.Type]
			if !ok {
				return false
			}
			return isNamed(tv.Type, "sync", "Mutex") || isNamed(tv.Type, "sync", "RWMutex")
		}
	}
	return false
}

func checkGuardedMethod(pass *Pass, guarded guardedFields, fd *ast.FuncDecl) {
	recvType := receiverTypeName(fd)
	fields := guarded[recvType]
	if fields == nil {
		return
	}
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	recv := fd.Recv.List[0]
	if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
		return
	}
	recvObj := pass.Pkg.Info.Defs[recv.Names[0]]
	if recvObj == nil {
		return
	}
	locked := lockedMutexes(pass, fd, recvObj)
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || info.ObjectOf(id) != recvObj {
			return true
		}
		mu, isGuarded := fields[sel.Sel.Name]
		if !isGuarded || locked[mu] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s, but method %s does not lock it (lock %s.%s, or suffix the method name with Locked if the caller holds it)",
			recvType, sel.Sel.Name, mu, fd.Name.Name, id.Name, mu)
		return true
	})
}

func receiverTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// lockedMutexes returns the set of receiver mutex fields the method
// locks anywhere in its body: recv.mu.Lock(), recv.mu.RLock(), either
// directly or in a defer.
func lockedMutexes(pass *Pass, fd *ast.FuncDecl, recvObj types.Object) map[string]bool {
	info := pass.Pkg.Info
	locked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := inner.X.(*ast.Ident)
		if !ok || info.ObjectOf(id) != recvObj {
			return true
		}
		locked[inner.Sel.Name] = true
		return true
	})
	return locked
}
