package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The interprocedural layer: a deterministic static call graph over the
// loaded package set. The concurrency analyzers (lockorder, goroleak)
// are built on top of it — the bug classes they guard (AB/BA deadlocks
// between package mutexes, goroutines leaked per connection, shutdown
// paths that never propagate) are properties of call *chains*, not of
// any single function body.
//
// Resolution policy, chosen for zero false edges:
//
//   - direct calls to package-level functions resolve through go/types
//     (aliased imports, shadowing handled);
//   - method calls resolve when the receiver's static type is concrete —
//     calls through interface values stay unresolved (no class-hierarchy
//     guessing);
//   - function literals become their own nodes, named parent$N in source
//     order, so `go func() { ... }()` bodies are first-class;
//   - an identifier bound exactly once to a function literal in the same
//     body (`send := func(...) {...}`) resolves to that literal;
//   - calls through other function values (fields, parameters) stay
//     unresolved.
//
// Every edge is tagged with how control transfers: a plain call, a `go`
// statement (new goroutine — the spawned work shares no lock context
// with the spawner), or a `defer` (runs at function exit).

// EdgeKind tags how an edge transfers control.
type EdgeKind uint8

// Edge kinds.
const (
	EdgeCall  EdgeKind = iota // ordinary synchronous call
	EdgeGo                    // go statement: callee runs on a new goroutine
	EdgeDefer                 // defer statement: callee runs at function exit
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	default:
		return "call"
	}
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Caller *CGNode
	Callee *CGNode
	Kind   EdgeKind
	Pos    token.Pos
	Call   *ast.CallExpr
}

// CGNode is one function in the graph: a declared function/method or a
// function literal.
type CGNode struct {
	ID   string        // canonical: "pkg.Func", "(*pkg.T).Method", "pkg.Func$1"
	Pkg  *Package      // owning package
	Fn   *types.Func   // nil for function literals
	Decl *ast.FuncDecl // non-nil for declared functions
	Lit  *ast.FuncLit  // non-nil for literals
	Out  []*CallEdge   // outgoing edges, source order
	In   []*CallEdge   // incoming edges
}

// Body returns the node's function body (never nil for graph nodes).
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the declaration position.
func (n *CGNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// CallGraph is the module-local static call graph.
type CallGraph struct {
	Nodes      map[string]*CGNode
	EdgeByCall map[*ast.CallExpr]*CallEdge // call-site lookup for the flow walkers
	byFunc     map[*types.Func]*CGNode
	byLit      map[*ast.FuncLit]*CGNode

	goReachable map[*CGNode]*CallEdge // node → witness go edge it is reachable from
}

// FuncID is the canonical node name of a declared function or method:
// the package path qualifies everything, so IDs are unique and sortable.
func FuncID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), nil) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// NodeFor returns the graph node of a declared function, if loaded.
func (g *CallGraph) NodeFor(fn *types.Func) *CGNode { return g.byFunc[fn] }

// NodeForLit returns the graph node of a function literal, if registered.
func (g *CallGraph) NodeForLit(lit *ast.FuncLit) *CGNode { return g.byLit[lit] }

// SortedNodes returns the nodes ordered by ID (deterministic output).
func (g *CallGraph) SortedNodes() []*CGNode {
	out := make([]*CGNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BuildCallGraph constructs the graph over the given packages. The same
// packages loaded in the same order produce the identical graph.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:      map[string]*CGNode{},
		EdgeByCall: map[*ast.CallExpr]*CallEdge{},
		byFunc:     map[*types.Func]*CGNode{},
		byLit:      map[*ast.FuncLit]*CGNode{},
	}
	// Pass 1: a node per declared function with a body.
	type declWork struct {
		node *CGNode
	}
	var work []declWork
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &CGNode{ID: FuncID(fn), Pkg: pkg, Fn: fn, Decl: fd}
				g.Nodes[n.ID] = n
				g.byFunc[fn] = n
				work = append(work, declWork{node: n})
			}
		}
	}
	// Pass 2: walk each body, creating literal child nodes and edges.
	for _, w := range work {
		g.walkBody(w.node, w.node.Body(), map[types.Object]*CGNode{}, &litCounter{})
	}
	return g
}

// litCounter numbers the function literals of one declared function in
// source order, so literal IDs are stable across runs.
type litCounter struct{ n int }

// walkBody scans one function body: it registers nested literals as
// child nodes, resolves call sites, and records edges. bindings maps
// local identifiers bound to function literals (inherited by nested
// literal bodies so sibling closures resolve).
func (g *CallGraph) walkBody(owner *CGNode, body *ast.BlockStmt, bindings map[types.Object]*CGNode, lits *litCounter) {
	// Literal IDs are rooted at the declared function: pkg.F$1, pkg.F$2,
	// ... numbered in registration order across nesting levels.
	rootID := owner.ID
	if i := indexByte(rootID, '$'); i >= 0 {
		rootID = rootID[:i]
	}
	type litWork struct {
		node *CGNode
		lit  *ast.FuncLit
	}
	var nested []litWork
	litNodes := map[*ast.FuncLit]*CGNode{}
	registerLit := func(lit *ast.FuncLit) *CGNode {
		if n, seen := litNodes[lit]; seen {
			return n
		}
		lits.n++
		n := &CGNode{ID: fmt.Sprintf("%s$%d", rootID, lits.n), Pkg: owner.Pkg, Lit: lit}
		g.Nodes[n.ID] = n
		litNodes[lit] = n
		g.byLit[lit] = n
		nested = append(nested, litWork{node: n, lit: lit})
		return n
	}
	// Sweep 1: register directly nested literals (deeper ones belong to
	// their own walk), record single-assignment bindings, and tag the
	// call expressions that sit under go/defer statements.
	kindOf := map[*ast.CallExpr]EdgeKind{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			registerLit(x)
			return false
		case *ast.GoStmt:
			kindOf[x.Call] = EdgeGo
		case *ast.DeferStmt:
			kindOf[x.Call] = EdgeDefer
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok || i >= len(x.Lhs) {
					continue
				}
				id, ok := x.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := owner.Pkg.Info.ObjectOf(id)
				if obj == nil {
					continue
				}
				ln := registerLit(lit)
				if _, dup := bindings[obj]; dup {
					delete(bindings, obj) // rebound: ambiguous, stop resolving
				} else {
					bindings[obj] = ln
				}
			}
		}
		return true
	})
	// Sweep 2: one edge per resolvable call site, literal interiors
	// excluded (they get their own walk below).
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := g.resolveCall(owner.Pkg, call, bindings, litNodes)
		if callee == nil {
			return true
		}
		kind, tagged := kindOf[call]
		if !tagged {
			kind = EdgeCall
		}
		e := &CallEdge{Caller: owner, Callee: callee, Kind: kind, Pos: call.Lparen, Call: call}
		owner.Out = append(owner.Out, e)
		callee.In = append(callee.In, e)
		g.EdgeByCall[call] = e
		return true
	})
	// Recurse into the literals, sharing the binding environment (so
	// sibling closures resolve) and the literal counter.
	for _, lw := range nested {
		g.walkBody(lw.node, lw.lit.Body, bindings, lits)
	}
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// resolveCall resolves one call expression to a graph node, or nil.
func (g *CallGraph) resolveCall(pkg *Package, call *ast.CallExpr, bindings map[types.Object]*CGNode, litNodes map[*ast.FuncLit]*CGNode) *CGNode {
	fun := ast.Unparen(call.Fun)
	// Immediately-invoked literal: func(){...}().
	if lit, ok := fun.(*ast.FuncLit); ok {
		return litNodes[lit]
	}
	// Local binding to a literal.
	if id, ok := fun.(*ast.Ident); ok {
		if obj := pkg.Info.ObjectOf(id); obj != nil {
			if n, ok := bindings[obj]; ok {
				return n
			}
		}
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil // interface dispatch: deliberately unresolved
		}
	}
	return g.byFunc[fn]
}

// GoReachable returns, for every node reachable from a `go` statement
// (the spawned function and everything it calls, transitively), a
// witness go edge that reaches it. Memoized; deterministic because the
// BFS seeds are visited in sorted node order.
func (g *CallGraph) GoReachable() map[*CGNode]*CallEdge {
	if g.goReachable != nil {
		return g.goReachable
	}
	reach := map[*CGNode]*CallEdge{}
	var frontier []*CGNode
	for _, n := range g.SortedNodes() {
		for _, e := range n.Out {
			if e.Kind != EdgeGo || e.Callee == nil {
				continue
			}
			if _, seen := reach[e.Callee]; !seen {
				reach[e.Callee] = e
				frontier = append(frontier, e.Callee)
			}
		}
	}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		witness := reach[n]
		for _, e := range n.Out {
			if e.Callee == nil {
				continue
			}
			if _, seen := reach[e.Callee]; !seen {
				reach[e.Callee] = witness
				frontier = append(frontier, e.Callee)
			}
		}
	}
	g.goReachable = reach
	return reach
}

// FormatCallGraph renders the call graph of the packages matched by
// keep as sorted, byte-stable text: one block per node, edges in source
// order with their kind tag and file:line position.
func FormatCallGraph(g *CallGraph, fset *token.FileSet, keep func(pkgPath string) bool) string {
	var b []byte
	for _, n := range g.SortedNodes() {
		if !keep(n.Pkg.Path) {
			continue
		}
		b = append(b, n.ID...)
		b = append(b, '\n')
		for _, e := range n.Out {
			pos := fset.Position(e.Pos)
			line := fmt.Sprintf("  %-5s %s %s:%d\n", e.Kind, e.Callee.ID, baseName(pos.Filename), pos.Line)
			b = append(b, line...)
		}
	}
	return string(b)
}

func baseName(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}
