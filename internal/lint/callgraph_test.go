package lint

import (
	"strings"
	"testing"
)

const fixPath = "repro/internal/lint/testdata/src/callgraphfix"

// TestCallGraphFixture pins the whole formatted graph of the
// hand-checked fixture: method-call resolution through a concrete
// receiver, go/defer edge kinds, interface dispatch staying unresolved,
// literal nodes with stable $N names, and local literal bindings.
func TestCallGraphFixture(t *testing.T) {
	pkg := loadTestdata(t, "callgraphfix")
	g := BuildCallGraph([]*Package{pkg})

	want := strings.Join([]string{
		"(*" + fixPath + ".ringer).Ring",
		fixPath + ".Entry",
		"  call  " + fixPath + ".helper callgraphfix.go:18",
		"  defer " + fixPath + ".helper callgraphfix.go:19",
		"  call  (*" + fixPath + ".ringer).Ring callgraphfix.go:21",
		"  go    (*" + fixPath + ".ringer).Ring callgraphfix.go:22",
		"  call  " + fixPath + ".Entry$1 callgraphfix.go:25",
		"  go    " + fixPath + ".Entry$2 callgraphfix.go:28",
		fixPath + ".Entry$1",
		"  call  " + fixPath + ".helper callgraphfix.go:24",
		fixPath + ".Entry$2",
		"  call  " + fixPath + ".helper callgraphfix.go:27",
		fixPath + ".Rebound",
		fixPath + ".Rebound$1",
		"  call  " + fixPath + ".helper callgraphfix.go:43",
		fixPath + ".Rebound$2",
		fixPath + ".SpawnBound",
		"  go    " + fixPath + ".SpawnBound$1 callgraphfix.go:36",
		fixPath + ".SpawnBound$1",
		"  call  " + fixPath + ".helper callgraphfix.go:35",
		fixPath + ".helper",
		"",
	}, "\n")
	got := FormatCallGraph(g, pkg.Fset, func(p string) bool { return p == fixPath })
	if got != want {
		t.Errorf("call graph mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The formatted dump must be byte-stable run to run.
	g2 := BuildCallGraph([]*Package{pkg})
	if again := FormatCallGraph(g2, pkg.Fset, func(p string) bool { return p == fixPath }); again != got {
		t.Errorf("call graph dump is not deterministic:\n--- first ---\n%s--- second ---\n%s", got, again)
	}
}

// TestGoReachable pins the go-reachability closure on the fixture: the
// spawned method and literal plus everything they call, but not Entry
// itself.
func TestGoReachable(t *testing.T) {
	pkg := loadTestdata(t, "callgraphfix")
	g := BuildCallGraph([]*Package{pkg})
	reach := g.GoReachable()

	var got []string
	for _, n := range g.SortedNodes() {
		if reach[n] != nil {
			got = append(got, n.ID)
		}
	}
	want := []string{
		"(*" + fixPath + ".ringer).Ring",
		fixPath + ".Entry$2",
		fixPath + ".SpawnBound$1",
		fixPath + ".helper", // called by Entry$2, so transitively go-reachable
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("go-reachable = %v, want %v", got, want)
	}
}

// TestLockGraphDump pins the -lockgraph debug output on the lockorder
// golden package: sorted edges with earliest-witness positions.
func TestLockGraphDump(t *testing.T) {
	pkg := loadTestdata(t, "lockorder")
	prog := &Program{Pkgs: []*Package{pkg}}
	const lp = "repro/internal/lint/testdata/src/lockorder"

	want := strings.Join([]string{
		lp + ".muA -> " + lp + ".muB (lockorder.go:17)",
		lp + ".muA -> " + lp + ".muC (lockorder.go:33)",
		lp + ".muB -> " + lp + ".muA (lockorder.go:24)",
		"",
	}, "\n")
	got := FormatLockGraph(prog)
	if got != want {
		t.Errorf("lock graph mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
