package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path (module-relative, e.g. "repro/internal/cs")
	Dir   string // absolute directory
	Name  string // package name from the source
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library. Imports within the module are resolved recursively
// from source; all other imports (the standard library — the module has
// no external dependencies) go through go/importer's source compiler.
//
// Only non-test files are loaded: the invariants sdlint guards are
// library-code contracts, and several checks explicitly exempt tests
// (tests may print, tests may measure wall time).
type Loader struct {
	Root   string // module root: the directory containing go.mod
	Module string // module path from go.mod

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
}

// NewLoader builds a loader for the module rooted at root. The module
// path is read from root/go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   abs,
		Module: mod,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*loadEntry{},
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer: module-local paths load recursively
// from source, everything else is delegated to the stdlib importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.LoadDir(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.Module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the package in dir (memoized).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.pathFor(abs)
	if e, ok := l.cache[path]; ok {
		return e.pkg, e.err
	}
	// Reserve the slot first so an import cycle fails fast instead of
	// recursing forever.
	l.cache[path] = &loadEntry{err: fmt.Errorf("lint: import cycle through %s", path)}
	pkg, err := l.loadDir(abs, path)
	l.cache[path] = &loadEntry{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Name:  tpkg.Name(),
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load resolves package patterns relative to the module root and loads
// every matched package. A pattern is either a directory ("./internal/cs")
// or a recursive "..." pattern ("./...", "./internal/..."). Directories
// named testdata or vendor and hidden directories are never matched by
// "..." (mirroring the go tool).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, d := range dirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *Loader) expand(pattern string) ([]string, error) {
	base, recursive := strings.CutSuffix(pattern, "...")
	base = strings.TrimSuffix(base, "/")
	if base == "" || base == "." {
		base = l.Root
	} else if !filepath.IsAbs(base) {
		base = filepath.Join(l.Root, filepath.FromSlash(base))
	}
	if !recursive {
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if p != base && (n == "testdata" || n == "vendor" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}
