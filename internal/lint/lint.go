// Package lint is SenseDroid's project-invariant static-analysis engine.
//
// The middleware's core guarantees — deterministic parallel fan-out,
// simulated time and transport instead of wall-clock and RF, and the
// "permanently instrumented, zero-cost when disabled" observability
// contract — are architectural invariants that ordinary tests cannot
// economically pin: they are properties of *all* code, including code
// that has not been written yet. This package machine-checks them.
//
// The engine is stdlib-only (go/ast + go/parser + go/types; no
// golang.org/x/tools), matching the module's zero-dependency policy. It
// loads packages itself (see Loader), type-checks them with a recursive
// module-local importer, runs a set of Analyzers over each package, and
// reports Diagnostics in "path:line:col" form, sorted by position so the
// output is stable. A finding can be suppressed — with an audit trail —
// by a "//lint:ignore <check> <reason>" comment on the offending line or
// the line immediately above it (see ignore.go).
//
// cmd/sdlint is the CLI front end; scripts/check.sh gates the build on a
// clean run.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"time"
)

// Diagnostic is one finding: a position, the check that produced it, and
// a human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String formats the diagnostic in the conventional compiler style:
// path:line:col: message (check).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// Analyzer is one named invariant check. Run inspects a type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	Name string // short identifier used in output and //lint:ignore
	Doc  string // one-line description of the guarded invariant
	Run  func(*Pass)
}

// Pass hands one package to one analyzer and collects its findings.
type Pass struct {
	Pkg      *Package
	Prog     *Program
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Program is the whole loaded package set, shared across passes so the
// interprocedural analyzers build their call graph once per run instead
// of once per package. Analyzers that consume it must still report only
// diagnostics positioned inside their pass's package — that keeps
// findings deduplicated and //lint:ignore suppression working (ignore
// directives are collected per package).
type Program struct {
	Pkgs []*Package

	cg     *CallGraph
	locks  *lockAnalysis
	races  *raceAnalysis
	pub    *pubAnalysis
	topics *topicAnalysis
	chans  *chanAnalysis
}

// CallGraph returns the memoized module-local call graph.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = BuildCallGraph(p.Pkgs)
	}
	return p.cg
}

// Fset returns the file set the package was parsed into.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of a lint run.
type Result struct {
	Diagnostics []Diagnostic     // post-suppression, sorted by position
	Packages    int              // packages analyzed (the zero-guard in check.sh watches this)
	Suppressed  int              // diagnostics silenced by //lint:ignore directives
	Timings     []AnalyzerTiming // wall time per analyzer, sorted by name
}

// AnalyzerTiming is the wall time one analyzer spent across all
// packages of the run. The whole-program analyses are memoized on the
// Program, so the first analyzer to demand a shared structure (the call
// graph, most visibly) is billed for building it — the numbers answer
// "which analyzer should I look at when the run blows the latency
// budget", not "what is the marginal cost of re-running this one".
type AnalyzerTiming struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"ms"`
}

// Run analyzes every package with every analyzer, applies //lint:ignore
// suppression, and returns position-sorted diagnostics. Malformed ignore
// directives (missing check name or reason) are themselves reported under
// the "sdlint" check so they cannot silently rot.
func Run(pkgs []*Package, analyzers []*Analyzer) *Result {
	var diags []Diagnostic
	prog := &Program{Pkgs: pkgs}
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Prog: prog, analyzer: a, diags: &diags}
			start := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(start)
		}
		diags = append(diags, malformedDirectives(pkg)...)
	}
	kept, suppressed := suppress(pkgs, diags)
	SortDiagnostics(kept)
	timings := make([]AnalyzerTiming, 0, len(elapsed))
	for name, d := range elapsed {
		timings = append(timings, AnalyzerTiming{Analyzer: name, Millis: float64(d.Microseconds()) / 1000})
	}
	sort.Slice(timings, func(i, j int) bool { return timings[i].Analyzer < timings[j].Analyzer })
	return &Result{Diagnostics: kept, Packages: len(pkgs), Suppressed: suppressed, Timings: timings}
}

// SortDiagnostics orders by file, then line, then column, then check —
// a total order, so repeated runs print byte-identical output.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// WriteDiagnostics prints one diagnostic per line to w.
func WriteDiagnostics(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the wire shape of `sdlint -json`. The field order here IS
// the output order, scripts/check.sh and CI parse it, and TestWriteJSON
// pins the bytes — treat any change as a format-version bump.
type jsonReport struct {
	Version    int              `json:"version"`
	Packages   int              `json:"packages"`
	Analyzers  []string         `json:"analyzers"`
	Timings    []AnalyzerTiming `json:"timings"`
	Findings   []jsonDiagnostic `json:"findings"`
	Suppressed int              `json:"suppressed"`
}

type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// WriteJSON emits one deterministic JSON document for the run: analyzer
// names sorted, per-analyzer timings (name-sorted; the one field whose
// values vary run to run — consumers comparing reports must normalize
// "ms"), findings in SortDiagnostics order, never null for the empty
// lists, and a version field so consumers can detect format changes.
// Version history: 1 = no timings; 2 = added "timings".
func WriteJSON(w io.Writer, res *Result, analyzers []*Analyzer) error {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	timings := res.Timings
	if timings == nil {
		timings = []AnalyzerTiming{}
	}
	rep := jsonReport{
		Version:    2,
		Packages:   res.Packages,
		Analyzers:  names,
		Timings:    timings,
		Findings:   make([]jsonDiagnostic, 0, len(res.Diagnostics)),
		Suppressed: res.Suppressed,
	}
	for _, d := range res.Diagnostics {
		rep.Findings = append(rep.Findings, jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// inspectFiles walks every file of the pass's package.
func inspectFiles(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
