package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestWriteJSON pins the -json wire format byte for byte: field order,
// indentation, sorted analyzer names, and the version marker. CI stores
// the document as an artifact, so format drift must be a deliberate,
// reviewed change here first.
func TestWriteJSON(t *testing.T) {
	res := &Result{
		Diagnostics: []Diagnostic{
			{
				Pos:     token.Position{Filename: "internal/demo/demo.go", Line: 12, Column: 3},
				Check:   "raceguard",
				Message: "demo.n is guarded by mu but written without holding it",
			},
			{
				Pos:     token.Position{Filename: "internal/demo/demo.go", Line: 40, Column: 9},
				Check:   "hotalloc",
				Message: "make allocates per element on the hot path",
			},
		},
		Packages:   3,
		Suppressed: 2,
	}
	analyzers := []*Analyzer{RaceGuard(), {Name: "aliaspub"}, {Name: "hotalloc"}}

	var b strings.Builder
	if err := WriteJSON(&b, res, analyzers); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := `{
  "version": 1,
  "packages": 3,
  "analyzers": [
    "aliaspub",
    "hotalloc",
    "raceguard"
  ],
  "findings": [
    {
      "file": "internal/demo/demo.go",
      "line": 12,
      "col": 3,
      "check": "raceguard",
      "message": "demo.n is guarded by mu but written without holding it"
    },
    {
      "file": "internal/demo/demo.go",
      "line": 40,
      "col": 9,
      "check": "hotalloc",
      "message": "make allocates per element on the hot path"
    }
  ],
  "suppressed": 2
}
`
	if got := b.String(); got != want {
		t.Errorf("JSON report mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteJSONEmpty pins the clean-tree shape: findings is [] (never
// null), so `jq '.findings | length'` works without a null guard.
func TestWriteJSONEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, &Result{Packages: 1}, ProjectAnalyzers()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := b.String()
	if strings.Contains(out, "null") {
		t.Errorf("empty report contains null:\n%s", out)
	}
	var rep struct {
		Version   int      `json:"version"`
		Analyzers []string `json:"analyzers"`
		Findings  []any    `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, out)
	}
	if rep.Version != 1 {
		t.Errorf("version = %d, want 1", rep.Version)
	}
	if len(rep.Analyzers) != 11 {
		t.Errorf("analyzers = %d, want 11 (the project suite)", len(rep.Analyzers))
	}
	if rep.Findings == nil || len(rep.Findings) != 0 {
		t.Errorf("findings = %v, want empty non-null list", rep.Findings)
	}
}

// TestWriteJSONDeterministic pins byte-stability across runs on a real
// golden package.
func TestWriteJSONDeterministic(t *testing.T) {
	pkg := loadTestdata(t, "raceguard")
	dump := func() string {
		res := Run([]*Package{pkg}, []*Analyzer{RaceGuard()})
		var b strings.Builder
		if err := WriteJSON(&b, res, []*Analyzer{RaceGuard()}); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return b.String()
	}
	first := dump()
	if !strings.Contains(first, `"check": "raceguard"`) {
		t.Fatalf("golden run produced no raceguard findings:\n%s", first)
	}
	if second := dump(); second != first {
		t.Errorf("JSON output is not deterministic:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}
