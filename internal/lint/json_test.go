package lint

import (
	"encoding/json"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// TestWriteJSON pins the -json wire format byte for byte: field order,
// indentation, sorted analyzer names, and the version marker. CI stores
// the document as an artifact, so format drift must be a deliberate,
// reviewed change here first. Timings are injected as fixed values —
// the only field whose real values vary run to run.
func TestWriteJSON(t *testing.T) {
	res := &Result{
		Diagnostics: []Diagnostic{
			{
				Pos:     token.Position{Filename: "internal/demo/demo.go", Line: 12, Column: 3},
				Check:   "raceguard",
				Message: "demo.n is guarded by mu but written without holding it",
			},
			{
				Pos:     token.Position{Filename: "internal/demo/demo.go", Line: 40, Column: 9},
				Check:   "hotalloc",
				Message: "make allocates per element on the hot path",
			},
		},
		Packages:   3,
		Suppressed: 2,
		Timings: []AnalyzerTiming{
			{Analyzer: "aliaspub", Millis: 1.25},
			{Analyzer: "hotalloc", Millis: 40},
			{Analyzer: "raceguard", Millis: 3.5},
		},
	}
	analyzers := []*Analyzer{RaceGuard(), {Name: "aliaspub"}, {Name: "hotalloc"}}

	var b strings.Builder
	if err := WriteJSON(&b, res, analyzers); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := `{
  "version": 2,
  "packages": 3,
  "analyzers": [
    "aliaspub",
    "hotalloc",
    "raceguard"
  ],
  "timings": [
    {
      "analyzer": "aliaspub",
      "ms": 1.25
    },
    {
      "analyzer": "hotalloc",
      "ms": 40
    },
    {
      "analyzer": "raceguard",
      "ms": 3.5
    }
  ],
  "findings": [
    {
      "file": "internal/demo/demo.go",
      "line": 12,
      "col": 3,
      "check": "raceguard",
      "message": "demo.n is guarded by mu but written without holding it"
    },
    {
      "file": "internal/demo/demo.go",
      "line": 40,
      "col": 9,
      "check": "hotalloc",
      "message": "make allocates per element on the hot path"
    }
  ],
  "suppressed": 2
}
`
	if got := b.String(); got != want {
		t.Errorf("JSON report mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteJSONEmpty pins the clean-tree shape: findings and timings are
// [] (never null), so `jq '.findings | length'` works without a null
// guard.
func TestWriteJSONEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, &Result{Packages: 1}, ProjectAnalyzers()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := b.String()
	if strings.Contains(out, "null") {
		t.Errorf("empty report contains null:\n%s", out)
	}
	var rep struct {
		Version   int      `json:"version"`
		Analyzers []string `json:"analyzers"`
		Timings   []any    `json:"timings"`
		Findings  []any    `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, out)
	}
	if rep.Version != 2 {
		t.Errorf("version = %d, want 2", rep.Version)
	}
	if len(rep.Analyzers) != 13 {
		t.Errorf("analyzers = %d, want 13 (the project suite)", len(rep.Analyzers))
	}
	if rep.Timings == nil || len(rep.Timings) != 0 {
		t.Errorf("timings = %v, want empty non-null list", rep.Timings)
	}
	if rep.Findings == nil || len(rep.Findings) != 0 {
		t.Errorf("findings = %v, want empty non-null list", rep.Findings)
	}
}

// msValue matches a timing value so determinism checks can normalize
// the one legitimately varying field.
var msValue = regexp.MustCompile(`"ms": [0-9.]+`)

// TestWriteJSONDeterministic pins byte-stability across runs on a real
// golden package, modulo the timing values.
func TestWriteJSONDeterministic(t *testing.T) {
	pkg := loadTestdata(t, "raceguard")
	dump := func() string {
		res := Run([]*Package{pkg}, []*Analyzer{RaceGuard()})
		var b strings.Builder
		if err := WriteJSON(&b, res, []*Analyzer{RaceGuard()}); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return msValue.ReplaceAllString(b.String(), `"ms": X`)
	}
	first := dump()
	if !strings.Contains(first, `"check": "raceguard"`) {
		t.Fatalf("golden run produced no raceguard findings:\n%s", first)
	}
	if !strings.Contains(first, `"analyzer": "raceguard"`) {
		t.Fatalf("report carries no timing entry for the analyzer that ran:\n%s", first)
	}
	if second := dump(); second != first {
		t.Errorf("JSON output is not deterministic:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}
