package lint

import (
	"go/ast"
	"go/types"
)

// Nondeterminism guards the byte-identical-output contract of DESIGN.md
// §5: inside the deterministic packages (the decode pipeline and the
// experiment drivers), all randomness must flow from an explicitly
// seeded *rand.Rand, no code may read the wall clock, and output built
// while ranging over a map must not depend on iteration order.
//
// Three rules, applied only to packages matched by inScope:
//
//  1. No global math/rand state: rand.Intn, rand.Float64, rand.Perm,
//     rand.Seed, ... are banned. rand.New / rand.NewSource (the seeded
//     form) remain allowed.
//  2. No wall clock: time.Now, time.Since, time.Sleep, timers and
//     tickers are banned; simulated time or seed-derived schedules are
//     the allowed forms.
//  3. A `for ... range m` over a map whose body appends to a slice
//     declared outside the loop (or sends on a channel) produces
//     order-dependent output — unless the collected slice is later
//     passed to a sort call in the same function, which is the
//     canonical collect-then-sort idiom.
func Nondeterminism(inScope func(pkgPath string) bool) *Analyzer {
	a := &Analyzer{
		Name: "nondeterminism",
		Doc:  "deterministic packages must not use global math/rand, the wall clock, or map-order-dependent output",
	}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path) {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fd, ok := n.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					checkMapRanges(pass, fd)
				}
				if call, ok := n.(*ast.CallExpr); ok {
					checkNondetCall(pass, call)
				}
				return true
			})
		}
	}
	return a
}

// Global math/rand functions that draw from the shared, unseedable (or
// process-globally seeded) source. rand.New, rand.NewSource and
// rand.NewZipf construct the allowed explicit-seed form.
var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
	// math/rand/v2 additions (same global-state hazard).
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
	"N": true,
}

// Wall-clock entry points. A deterministic package has no business
// observing real time at all; durations derived from the netsim clock or
// printed by cmd/ wrappers live outside these packages.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true,
	"NewTicker": true, "Sleep": true,
}

func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	pkgPath, name, sel, ok := pkgFuncCall(pass.Pkg.Info, call)
	if !ok {
		return
	}
	switch pkgPath {
	case "math/rand", "math/rand/v2":
		if bannedRandFuncs[name] {
			pass.Reportf(sel.Pos(), "global %s.%s in deterministic package; use an explicitly seeded *rand.Rand", pathBase(pkgPath), name)
		}
	case "time":
		if bannedTimeFuncs[name] {
			pass.Reportf(sel.Pos(), "wall-clock time.%s in deterministic package; derive timing from the simulated clock or drop it", name)
		}
	}
}

func pathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// checkMapRanges flags order-dependent accumulation inside map ranges of
// one function body.
func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fd, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(stmt.Pos(), "channel send inside map range: receiver observes nondeterministic iteration order; collect and sort keys first")
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(stmt.Lhs) {
					continue
				}
				target := rootIdent(stmt.Lhs[i])
				if target == nil {
					continue
				}
				obj := info.ObjectOf(target)
				if obj == nil || !declaredOutside(obj, rng) {
					continue
				}
				if sortedLater(info, fd, rng, obj) {
					continue
				}
				pass.Reportf(stmt.Pos(), "append to %s inside map range makes its element order nondeterministic; sort it afterwards or iterate sorted keys", target.Name)
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootIdent digs through index/selector expressions to the base ident.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedLater reports whether obj is passed to a sort.* / slices.Sort*
// call after the range statement in the same function — the canonical
// collect-keys-then-sort idiom, which is order-independent.
func sortedLater(info *types.Info, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		pkgPath, _, _, ok := pkgFuncCall(info, call)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && info.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
