package lint

import (
	"testing"

	"repro/internal/bus"
)

// parseShape builds a shape from literal pattern/topic text, the way
// the resolver does for a fully-constant operand.
func parseShape(s string) topicShape {
	return partsToShape([]topicPart{{kind: partLit, lit: s}})
}

// TestShapeMayMatchAgreesWithBusMatch pins the analyzer's matcher to
// the transport's real semantics: on fully-concrete shapes (no abstract
// segments) shapeMayMatch must equal bus.Match exactly — the
// conservatism of may-match only comes from abstraction, never from the
// wildcard rules themselves.
func TestShapeMayMatchAgreesWithBusMatch(t *testing.T) {
	patterns := []string{
		"a", "a/b", "a/b/c", "+", "+/+", "a/+", "+/b", "a/#", "#",
		"a/+/c", "a/b/#", "+/#", "a/+/#", "nc0/node/n1/measure",
		"nc0/node/+/measure", "nc0/node/+/#", "+/register",
	}
	topics := []string{
		"a", "a/b", "a/b/c", "a/b/c/d", "b", "b/a", "a/x/c",
		"nc0/node/n1/measure", "nc0/node/n2/measure", "nc0/node/n1/status",
		"nc1/register", "register",
	}
	for _, p := range patterns {
		if !bus.ValidPattern(p) {
			t.Fatalf("test pattern %q is not valid", p)
		}
		for _, top := range topics {
			if !bus.ValidTopic(top) {
				t.Fatalf("test topic %q is not valid", top)
			}
			want := bus.Match(p, top)
			got := shapeMayMatch(parseShape(p), parseShape(top))
			if got != want {
				t.Errorf("shapeMayMatch(%q, %q) = %v, bus.Match = %v", p, top, got, want)
			}
		}
	}
}

// TestShapeMayMatchAbstract pins the abstraction's key property: an
// abstract component stands for one OR MORE segments (runtime IDs like
// "lc0/nc0" contain slashes), so shapes that disagree only on how many
// segments an unknown ID spans must still may-match.
func TestShapeMayMatchAbstract(t *testing.T) {
	abstract := topicSeg{kind: segAbstract}
	lit := func(s string) topicSeg { return topicSeg{kind: segLit, lit: s} }
	cases := []struct {
		name     string
		pat, top topicShape
		want     bool
	}{
		{
			"one abstract spans two",
			topicShape{segs: []topicSeg{abstract, lit("node"), abstract, lit("measure")}},
			topicShape{segs: []topicSeg{abstract, abstract, lit("node"), abstract, lit("measure")}},
			true,
		},
		{
			"literals still anchor",
			topicShape{segs: []topicSeg{abstract, lit("node")}},
			topicShape{segs: []topicSeg{abstract, lit("status")}},
			false,
		},
		{
			"abstract cannot span zero",
			topicShape{segs: []topicSeg{lit("a"), abstract, lit("b")}},
			topicShape{segs: []topicSeg{lit("a"), lit("b")}},
			false,
		},
		{
			"hash swallows abstract tail",
			topicShape{segs: []topicSeg{lit("a"), topicSeg{kind: segHash}}},
			topicShape{segs: []topicSeg{lit("a"), abstract, abstract}},
			true,
		},
	}
	for _, c := range cases {
		if got := shapeMayMatch(c.pat, c.top); got != c.want {
			t.Errorf("%s: shapeMayMatch = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestFormatTopicGraphDeterministic pins the committed-dump contract:
// the same tree renders byte-identical text run to run (docs/
// topicgraph.txt is diffed in CI).
func TestFormatTopicGraphDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := testLoader(t)
	dump := func() string {
		pkgs, err := l.Load("./...")
		if err != nil {
			t.Fatalf("Load ./...: %v", err)
		}
		prog := &Program{Pkgs: pkgs}
		return FormatTopicGraph(prog, ProjectTopicConfig())
	}
	first := dump()
	if first == "" {
		t.Fatal("topic graph is empty; the protocol endpoints were not found")
	}
	if second := dump(); second != first {
		t.Errorf("FormatTopicGraph is not deterministic:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}
