package lint

import (
	"go/ast"
	"go/types"
)

// ObsHot guards the "permanently instrumented, zero-cost when disabled"
// contract of DESIGN.md §6 in the hot-path packages: instrumentation
// must go through handles hoisted into package-level vars (whose nil-safe
// methods cost one atomic load when the registry is off), never through
// per-event registry lookups or per-event name formatting.
//
// Two rules, applied to packages matched by inScope:
//
//  1. obs.GetCounter / GetGauge / GetHistogram (and the equivalent
//     Registry methods Counter/Gauge/Histogram) must not be called
//     inside a function body — hoist the handle into a package-level
//     var. The lookup is an interned map access behind an RWMutex;
//     cheap once, hostile per event.
//  2. No argument of any call into the obs package may be built with
//     fmt.Sprintf — a per-event Sprintf allocates on the hot path even
//     while the registry is disabled, which is exactly what the
//     disabled-path benchmarks forbid.
func ObsHot(inScope func(pkgPath string) bool, obsPath string) *Analyzer {
	a := &Analyzer{
		Name: "obshot",
		Doc:  "hot-path obs usage must go through hoisted handles; no per-call registry lookups or fmt.Sprintf labels",
	}
	lookupFuncs := map[string]bool{"GetCounter": true, "GetGauge": true, "GetHistogram": true}
	lookupMethods := map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}
	a.Run = func(pass *Pass) {
		if !inScope(pass.Pkg.Path) || pass.Pkg.Path == obsPath {
			return
		}
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					// Package-level var initializers are the sanctioned
					// home for handle lookups.
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(info, call)
					if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
						return true
					}
					sig, _ := fn.Type().(*types.Signature)
					if lookupFuncs[fn.Name()] || (lookupMethods[fn.Name()] && sig != nil && sig.Recv() != nil) {
						pass.Reportf(call.Pos(), "obs handle lookup %s inside a function body in a hot-path package; hoist the handle into a package-level var", fn.Name())
					}
					for _, arg := range call.Args {
						if argCall, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
							if p, name, _, ok := pkgFuncCall(info, argCall); ok && p == "fmt" && name == "Sprintf" {
								pass.Reportf(arg.Pos(), "fmt.Sprintf builds an obs metric name per call; precompute the name (hot-path allocation while disabled)")
							}
						}
					}
					return true
				})
			}
		}
	}
	return a
}
