package lint

// Project wiring: which invariant applies to which part of the SenseDroid
// tree. cmd/sdlint and the lint tests both build their analyzer set here
// so the CLI and the test suite can never drift apart.

// DeterministicPkgs are the packages under the byte-identical-output
// contract of DESIGN.md §5: the decode pipeline and the experiment
// drivers. Reconstructions and tables from these packages must be
// reproducible from seeds alone.
var DeterministicPkgs = []string{
	"repro/internal/cs",
	"repro/internal/mat",
	"repro/internal/basis",
	"repro/internal/fft",
	"repro/internal/field",
	"repro/internal/experiments",
	"repro/internal/cloud",
	"repro/internal/fleet",
}

// HotPathPkgs carry permanent instrumentation on per-event paths (bus
// publish, netsim delivery, decode iterations, store appends) and are
// held to the zero-cost-when-disabled obs contract of DESIGN.md §6.
var HotPathPkgs = []string{
	"repro/internal/bus",
	"repro/internal/netsim",
	"repro/internal/broker",
	"repro/internal/node",
	"repro/internal/store",
	"repro/internal/cloud",
	"repro/internal/core",
	"repro/internal/cs",
	"repro/internal/mat",
	"repro/internal/basis",
	"repro/internal/fft",
	"repro/internal/stream",
	"repro/internal/snapshot",
	"repro/internal/serve",
	"repro/internal/fleet",
	"repro/internal/mobility",
	"repro/internal/energy",
}

// ErrcheckScope: every library package. cmd/ and examples/ are package
// main and carry their own error handling idiom (often log.Fatal).
var ErrcheckScope = []string{"repro/internal/..."}

// PrintAllowedPkgs may print to ambient streams despite being library
// packages. Currently empty: the experiments table printers already take
// an io.Writer, which is the preferred shape. Extend deliberately.
var PrintAllowedPkgs = []string{}

// ObsPath is the observability package the obshot check guards calls into.
const ObsPath = "repro/internal/obs"

// ModulePrefix scopes the interprocedural analyzers to module-local
// callees (stdlib and vendored code are never findings).
const ModulePrefix = "repro/"

// CtxBlocking maps the context-less convenience wrappers of blocking
// middleware operations to their context-aware variants. Inside a
// context-accepting function, calling the wrapper silently discards the
// caller's cancellation — ctxflow points at the variant instead.
var CtxBlocking = map[string]string{
	"repro/internal/bus.Request":                   "bus.RequestContext",
	"repro/internal/bus.RequestRetry":              "bus.RequestRetryContext",
	"repro/internal/bus.Respond":                   "bus.RespondContext",
	"(*repro/internal/broker.Broker).Gather":       "Broker.GatherContext",
	"(*repro/internal/cloud.LocalCloud).Gather":    "LocalCloud.GatherContext",
	"(*repro/internal/cloud.PublicCloud).Assemble": "PublicCloud.AssembleContext",
	"(*repro/internal/stream.Pipeline).Step":       "Pipeline.StepContext",
	"(*repro/internal/stream.Pipeline).Run":        "Pipeline.RunContext",
	"(*repro/internal/snapshot.Registry).Wait":     "Registry.WaitContext",
}

// PublishSinks maps the module's publish functions to the index of the
// argument whose ownership transfers to concurrent readers at the call.
// Channel sends and atomic.Pointer Store/Swap/CompareAndSwap are always
// sinks; this table adds the middleware's named publication points.
var PublishSinks = map[string]int{
	"(*repro/internal/snapshot.Registry).Publish": 0,
	"(*repro/internal/bus.Bus).Publish":           1,
	"(*repro/internal/bus.Bus).PublishRetained":   1,
}

// HotEntryPoints are the per-event entry functions whose module-local
// call/defer closure is held to the zero-allocation contract of
// DESIGN.md §6: the serving read path, bus message fan-out, netsim
// delivery, and store appends. Per-window work (decode, stream steps)
// is deliberately not listed — those paths allocate result buffers by
// design and are guarded by obshot instead.
var HotEntryPoints = []string{
	"(*repro/internal/serve.Server).Point",
	"(*repro/internal/serve.Server).Range",
	"(*repro/internal/serve.Server).Aggregate",
	"(*repro/internal/snapshot.Registry).Latest",
	"(*repro/internal/bus.Bus).Publish",
	"(*repro/internal/bus.Bus).PublishRetained",
	"(*repro/internal/netsim.Network).Send",
	"(*repro/internal/netsim.Network).Deliver",
	"(*repro/internal/netsim.Network).DeliverBatch",
	"(*repro/internal/netsim.Network).Flush",
	"(*repro/internal/store.Store).Append",
	"(*repro/internal/store.Store).AppendScalar",
	"(*repro/internal/fleet.Shard).Tick",
	"(*repro/internal/fleet.Shard).report",
	"repro/internal/mobility.StepWaypoints",
	"repro/internal/mobility.GridIndexes",
	"(*repro/internal/energy.Bank).DrainAll",
}

// HotAmortizedStops are cache- or once-gated boundaries inside the hot
// closure: the boundary function runs per event (and is scanned), but
// its callees only run on a miss, so hotness stops propagating there.
// serve.(*Server).compile hits the CoW filter cache on the steady
// state; the query parser behind it allocates its AST freely.
var HotAmortizedStops = []string{
	"(*repro/internal/serve.Server).compile",
}

// ProjectTopicConfig describes the middleware's message-protocol surface
// for topicflow: every function whose call sites mint a topic or pattern,
// with the operand positions of the topic, the request body, the reply
// destination, and the responder handler. Keys are call-graph FuncIDs.
// The bus package itself is the protocol implementation, not a protocol
// participant — its internal publishes/subscribes are excluded.
func ProjectTopicConfig() *TopicConfig {
	return &TopicConfig{
		ImplPkgs: []string{"repro/internal/bus"},
		Roots: map[string]TopicRoot{
			"(*repro/internal/bus.Bus).Publish":         {Role: TopicPublish, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			"(*repro/internal/bus.Bus).PublishRetained": {Role: TopicPublish, Retained: true, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			"(*repro/internal/bus.Bus).Subscribe":       {Role: TopicSubscribe, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			"(*repro/internal/bus.Bus).SubscribeFunc":   {Role: TopicSubscribe, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			"(*repro/internal/bus.Bus).Retained":        {Role: TopicRetainedRead, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			"(*repro/internal/bus.Client).Publish":      {Role: TopicPublish, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			"(*repro/internal/bus.Client).Subscribe":    {Role: TopicSubscribe, TopicArg: 0, BodyArg: -1, OutArg: -1, HandlerArg: -1},
			"repro/internal/bus.Request":                {Role: TopicRequest, TopicArg: 1, BodyArg: 2, OutArg: 3, HandlerArg: -1},
			"repro/internal/bus.RequestContext":         {Role: TopicRequest, TopicArg: 2, BodyArg: 3, OutArg: 4, HandlerArg: -1},
			"repro/internal/bus.RequestRetry":           {Role: TopicRequest, TopicArg: 1, BodyArg: 2, OutArg: 3, HandlerArg: -1},
			"repro/internal/bus.RequestRetryContext":    {Role: TopicRequest, TopicArg: 2, BodyArg: 3, OutArg: 4, HandlerArg: -1},
			"repro/internal/bus.Respond":                {Role: TopicRespond, TopicArg: 1, BodyArg: -1, OutArg: -1, HandlerArg: 2},
			"repro/internal/bus.RespondContext":         {Role: TopicRespond, TopicArg: 2, BodyArg: -1, OutArg: -1, HandlerArg: 3},
			"(*repro/internal/node.Node).serveTopic":    {Role: TopicRespond, TopicArg: 1, BodyArg: -1, OutArg: -1, HandlerArg: 2},
		},
	}
}

// ProjectAnalyzers returns the full sdlint analyzer suite with the
// project's scoping baked in.
func ProjectAnalyzers() []*Analyzer {
	return []*Analyzer{
		Nondeterminism(pathMatcher(DeterministicPkgs...)),
		MutexGuard(),
		ObsHot(pathMatcher(HotPathPkgs...), ObsPath),
		ErrCheck(pathMatcher(ErrcheckScope...)),
		PrintBan(pathMatcher(PrintAllowedPkgs...)),
		Lockorder(),
		GoroLeak(),
		CtxFlow(CtxBlocking, ModulePrefix),
		RaceGuard(),
		AliasPub(PublishSinks, ModulePrefix),
		HotAlloc(HotEntryPoints, HotAmortizedStops),
		TopicFlow(ProjectTopicConfig()),
		ChanFlow(),
	}
}
