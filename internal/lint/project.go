package lint

// Project wiring: which invariant applies to which part of the SenseDroid
// tree. cmd/sdlint and the lint tests both build their analyzer set here
// so the CLI and the test suite can never drift apart.

// DeterministicPkgs are the packages under the byte-identical-output
// contract of DESIGN.md §5: the decode pipeline and the experiment
// drivers. Reconstructions and tables from these packages must be
// reproducible from seeds alone.
var DeterministicPkgs = []string{
	"repro/internal/cs",
	"repro/internal/mat",
	"repro/internal/basis",
	"repro/internal/fft",
	"repro/internal/field",
	"repro/internal/experiments",
	"repro/internal/cloud",
}

// HotPathPkgs carry permanent instrumentation on per-event paths (bus
// publish, netsim delivery, decode iterations, store appends) and are
// held to the zero-cost-when-disabled obs contract of DESIGN.md §6.
var HotPathPkgs = []string{
	"repro/internal/bus",
	"repro/internal/netsim",
	"repro/internal/broker",
	"repro/internal/node",
	"repro/internal/store",
	"repro/internal/cloud",
	"repro/internal/core",
	"repro/internal/cs",
	"repro/internal/mat",
	"repro/internal/basis",
	"repro/internal/fft",
	"repro/internal/stream",
	"repro/internal/snapshot",
	"repro/internal/serve",
}

// ErrcheckScope: every library package. cmd/ and examples/ are package
// main and carry their own error handling idiom (often log.Fatal).
var ErrcheckScope = []string{"repro/internal/..."}

// PrintAllowedPkgs may print to ambient streams despite being library
// packages. Currently empty: the experiments table printers already take
// an io.Writer, which is the preferred shape. Extend deliberately.
var PrintAllowedPkgs = []string{}

// ObsPath is the observability package the obshot check guards calls into.
const ObsPath = "repro/internal/obs"

// ModulePrefix scopes the interprocedural analyzers to module-local
// callees (stdlib and vendored code are never findings).
const ModulePrefix = "repro/"

// CtxBlocking maps the context-less convenience wrappers of blocking
// middleware operations to their context-aware variants. Inside a
// context-accepting function, calling the wrapper silently discards the
// caller's cancellation — ctxflow points at the variant instead.
var CtxBlocking = map[string]string{
	"repro/internal/bus.Request":                   "bus.RequestContext",
	"repro/internal/bus.RequestRetry":              "bus.RequestRetryContext",
	"repro/internal/bus.Respond":                   "bus.RespondContext",
	"(*repro/internal/broker.Broker).Gather":       "Broker.GatherContext",
	"(*repro/internal/cloud.LocalCloud).Gather":    "LocalCloud.GatherContext",
	"(*repro/internal/cloud.PublicCloud).Assemble": "PublicCloud.AssembleContext",
	"(*repro/internal/stream.Pipeline).Step":       "Pipeline.StepContext",
	"(*repro/internal/stream.Pipeline).Run":        "Pipeline.RunContext",
	"(*repro/internal/snapshot.Registry).Wait":     "Registry.WaitContext",
}

// ProjectAnalyzers returns the full sdlint analyzer suite with the
// project's scoping baked in.
func ProjectAnalyzers() []*Analyzer {
	return []*Analyzer{
		Nondeterminism(pathMatcher(DeterministicPkgs...)),
		MutexGuard(),
		ObsHot(pathMatcher(HotPathPkgs...), ObsPath),
		ErrCheck(pathMatcher(ErrcheckScope...)),
		PrintBan(pathMatcher(PrintAllowedPkgs...)),
		Lockorder(),
		GoroLeak(),
		CtxFlow(CtxBlocking, ModulePrefix),
	}
}
