package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// chanflow: channel-lifecycle discipline along flow order.
//
// A channel has three lifecycle states the runtime punishes for
// confusing: nil (send/receive block forever, close panics), open, and
// closed (send and close panic). The walker interprets each function
// body in statement order, tracking
//
//   - must-nil: channels declared `var ch chan T` (or assigned nil) and
//     not yet made — an intersection fact, so a channel that *might*
//     have been made on some path is not nil;
//   - may-closed: channels a reachable close() has run on — a union
//     fact, so "send after close" fires if any path closed first.
//
// Any assignment to the channel clears its state (the snapshot
// registry's close-then-remake notify pattern stays clean), loop bodies
// are walked twice so a close in iteration N is visible to a send in
// iteration N+1, and select comm clauses suppress the nil checks — a
// nil channel arm is the standard way to disable a select case.
//
// Interprocedurally, every function gets a summary of which parameters
// and which channel fields it (transitively, over call and defer edges)
// sends on or closes; at a call site after close(ch), passing ch to a
// callee that sends on it is reported just like a direct send. `go`
// edges are excluded: a spawned goroutine has no flow order against its
// spawner.
//
// Reported:
//
//   - send/receive/range on a provably-nil channel (blocks forever);
//   - close of a nil channel (panics);
//   - double close, direct, via deferred close, or through a callee;
//   - send after close, direct or through a call/defer edge;
//   - close of a channel field owned by another package — only the
//     package that owns a channel knows when no sender remains, so a
//     foreign close is a protocol violation even when it happens to
//     work today.

// chanKey identifies a channel: a local/parameter object, or a
// (root object, field) pair for s.ch style fields.
type chanKey struct {
	root  types.Object
	field *types.Var
}

// chanState is the walker's abstract state at one program point.
type chanState struct {
	mustNil     map[chanKey]bool
	mayClosed   map[chanKey]token.Pos
	deferClosed map[chanKey]token.Pos
}

func newChanState() *chanState {
	return &chanState{
		mustNil:     map[chanKey]bool{},
		mayClosed:   map[chanKey]token.Pos{},
		deferClosed: map[chanKey]token.Pos{},
	}
}

func (st *chanState) clone() *chanState {
	c := newChanState()
	for k, v := range st.mustNil {
		c.mustNil[k] = v
	}
	for k, v := range st.mayClosed {
		c.mayClosed[k] = v
	}
	for k, v := range st.deferClosed {
		c.deferClosed[k] = v
	}
	return c
}

// forget drops every fact about k (the channel was reassigned).
func (st *chanState) forget(k chanKey) {
	delete(st.mustNil, k)
	delete(st.mayClosed, k)
	delete(st.deferClosed, k)
}

// forgetRoot drops every fact rooted at obj (loop variables are
// rebound at each iteration).
func (st *chanState) forgetRoot(obj types.Object) {
	for k := range st.mustNil {
		if k.root == obj {
			delete(st.mustNil, k)
		}
	}
	for k := range st.mayClosed {
		if k.root == obj {
			delete(st.mayClosed, k)
		}
	}
	for k := range st.deferClosed {
		if k.root == obj {
			delete(st.deferClosed, k)
		}
	}
}

// mergeChanStates joins branch outcomes: must-nil by intersection,
// may-closed by union (earliest witness position kept for stable
// messages).
func mergeChanStates(states []*chanState) *chanState {
	out := newChanState()
	if len(states) == 0 {
		return out
	}
	for k := range states[0].mustNil {
		all := true
		for _, s := range states[1:] {
			if !s.mustNil[k] {
				all = false
				break
			}
		}
		if all {
			out.mustNil[k] = true
		}
	}
	for _, s := range states {
		for k, p := range s.mayClosed {
			if old, ok := out.mayClosed[k]; !ok || p < old {
				out.mayClosed[k] = p
			}
		}
		for k, p := range s.deferClosed {
			if old, ok := out.deferClosed[k]; !ok || p < old {
				out.deferClosed[k] = p
			}
		}
	}
	return out
}

// chanSummary records which parameters (by index) and channel fields a
// function sends on or closes, transitively over call/defer edges.
type chanSummary struct {
	paramSends  map[int]bool
	paramCloses map[int]bool
	fieldSends  map[*types.Var]bool
	fieldCloses map[*types.Var]bool
}

func newChanSummary() *chanSummary {
	return &chanSummary{
		paramSends:  map[int]bool{},
		paramCloses: map[int]bool{},
		fieldSends:  map[*types.Var]bool{},
		fieldCloses: map[*types.Var]bool{},
	}
}

type chanFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// chanAnalysis is the memoized whole-program result.
type chanAnalysis struct {
	findings []chanFinding
	seen     map[string]bool
}

// report appends one deduplicated finding (the two-pass loop walk and
// branch re-walks may reach the same site twice).
func (ca *chanAnalysis) report(pkg *Package, pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if ca.seen[key] {
		return
	}
	ca.seen[key] = true
	ca.findings = append(ca.findings, chanFinding{pkg: pkg, pos: pos, msg: msg})
}

// chanAnalysisResult computes (once) the whole-program channel analysis.
func (p *Program) chanAnalysisResult() *chanAnalysis {
	if p.chans != nil {
		return p.chans
	}
	ca := &chanAnalysis{seen: map[string]bool{}}
	g := p.CallGraph()
	nodes := g.SortedNodes()

	// Direct summaries.
	summ := map[*CGNode]*chanSummary{}
	for _, n := range nodes {
		s := newChanSummary()
		info := n.Pkg.Info
		ast.Inspect(n.Body(), func(m ast.Node) bool {
			if _, isLit := m.(*ast.FuncLit); isLit {
				return false
			}
			switch x := m.(type) {
			case *ast.SendStmt:
				recordChanOp(n, info, x.Chan, s.paramSends, s.fieldSends)
			case *ast.CallExpr:
				if arg, ok := closeArg(info, x); ok {
					recordChanOp(n, info, arg, s.paramCloses, s.fieldCloses)
				}
			}
			return true
		})
		summ[n] = s
	}

	// Transitive fixpoint over call and defer edges.
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			s := summ[n]
			for _, e := range n.Out {
				if e.Kind == EdgeGo || e.Call == nil {
					continue
				}
				cs := summ[e.Callee]
				prop := func(from map[int]bool, toParams map[int]bool, toFields map[*types.Var]bool) {
					for j := range from {
						if j >= len(e.Call.Args) {
							continue
						}
						k, ok := chanKeyOf(n.Pkg.Info, e.Call.Args[j])
						if !ok {
							continue
						}
						if k.field != nil {
							if !toFields[k.field] {
								toFields[k.field] = true
								changed = true
							}
						} else if i := paramIndexOf(n, rootVar(k)); i >= 0 {
							if !toParams[i] {
								toParams[i] = true
								changed = true
							}
						}
					}
				}
				prop(cs.paramSends, s.paramSends, s.fieldSends)
				prop(cs.paramCloses, s.paramCloses, s.fieldCloses)
				for f := range cs.fieldSends {
					if !s.fieldSends[f] {
						s.fieldSends[f] = true
						changed = true
					}
				}
				for f := range cs.fieldCloses {
					if !s.fieldCloses[f] {
						s.fieldCloses[f] = true
						changed = true
					}
				}
			}
		}
	}

	// Per-function flow walk.
	for _, n := range nodes {
		w := &chanWalker{ca: ca, g: g, node: n, summ: summ}
		w.stmts(n.Body().List, newChanState())
	}

	sort.Slice(ca.findings, func(i, j int) bool {
		if ca.findings[i].pos != ca.findings[j].pos {
			return ca.findings[i].pos < ca.findings[j].pos
		}
		return ca.findings[i].msg < ca.findings[j].msg
	})
	p.chans = ca
	return ca
}

func rootVar(k chanKey) *types.Var {
	v, _ := k.root.(*types.Var)
	return v
}

// recordChanOp classifies a direct channel operand as a parameter or a
// field fact for the summary.
func recordChanOp(n *CGNode, info *types.Info, e ast.Expr, params map[int]bool, fields map[*types.Var]bool) {
	k, ok := chanKeyOf(info, e)
	if !ok {
		return
	}
	if k.field != nil {
		fields[k.field] = true
		return
	}
	if i := paramIndexOf(n, rootVar(k)); i >= 0 {
		params[i] = true
	}
}

// closeArg reports whether call is the builtin close and returns its
// operand.
func closeArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return nil, false
	}
	return call.Args[0], true
}

// chanKeyOf identifies a channel-typed operand: a plain identifier, or
// a one-level field selector rooted at an identifier.
func chanKeyOf(info *types.Info, e ast.Expr) (chanKey, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := info.ObjectOf(x).(*types.Var)
		if !ok || v.IsField() {
			return chanKey{}, false
		}
		return chanKey{root: v}, true
	case *ast.SelectorExpr:
		f, ok := info.ObjectOf(x.Sel).(*types.Var)
		if !ok || !f.IsField() {
			return chanKey{}, false
		}
		base, ok := ast.Unparen(x.X).(*ast.Ident)
		if !ok {
			return chanKey{}, false
		}
		r := info.ObjectOf(base)
		if r == nil {
			return chanKey{}, false
		}
		return chanKey{root: r, field: f}, true
	}
	return chanKey{}, false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// chanName renders a key for messages.
func chanName(k chanKey) string {
	if k.field != nil {
		if owner := namedType(rootVar2Type(k.root)); owner != nil {
			return owner.Obj().Name() + "." + k.field.Name()
		}
		return k.root.Name() + "." + k.field.Name()
	}
	return k.root.Name()
}

func rootVar2Type(o types.Object) types.Type {
	if o == nil {
		return nil
	}
	return o.Type()
}

// chanWalker interprets one function body in statement order.
type chanWalker struct {
	ca   *chanAnalysis
	g    *CallGraph
	node *CGNode
	summ map[*CGNode]*chanSummary
}

func (w *chanWalker) info() *types.Info { return w.node.Pkg.Info }

// stmts walks a statement list; true means control provably never
// falls off (return/panic/branch on every path).
func (w *chanWalker) stmts(list []ast.Stmt, st *chanState) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

func (w *chanWalker) stmt(s ast.Stmt, st *chanState) bool {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(x.List, st)

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if arg, isClose := closeArg(w.info(), call); isClose {
				w.doClose(arg, call.Lparen, st, false)
				return false
			}
		}
		w.scanExpr(x.X, st, false)
		return isTerminalExpr(w.node.Pkg, x.X)

	case *ast.SendStmt:
		w.scanExpr(x.Value, st, false)
		w.checkSend(x.Chan, x.Arrow, st, false)
		return false

	case *ast.DeferStmt:
		if arg, isClose := closeArg(w.info(), x.Call); isClose {
			w.doClose(arg, x.Call.Lparen, st, true)
			return false
		}
		w.scanExpr(x.Call, st, false)
		return false

	case *ast.GoStmt:
		// The spawned body runs concurrently: no flow order against this
		// function, so only the argument expressions are scanned.
		for _, a := range x.Call.Args {
			w.scanExpr(a, st, false)
		}
		return false

	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.scanExpr(r, st, false)
		}
		for i, l := range x.Lhs {
			k, ok := chanKeyOf(w.info(), l)
			if !ok {
				continue
			}
			st.forget(k)
			if len(x.Rhs) == len(x.Lhs) && isChanType(w.info().TypeOf(l)) {
				if tv, ok := w.info().Types[x.Rhs[i]]; ok && tv.IsNil() {
					st.mustNil[k] = true
				}
			}
		}
		return false

	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.scanExpr(v, st, false)
			}
			if len(vs.Values) > 0 {
				continue
			}
			for _, nm := range vs.Names {
				obj := w.info().ObjectOf(nm)
				if obj != nil && isChanType(obj.Type()) {
					st.mustNil[chanKey{root: obj}] = true
				}
			}
		}
		return false

	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.scanExpr(r, st, false)
		}
		return true

	case *ast.IfStmt:
		if x.Init != nil {
			w.stmt(x.Init, st)
		}
		w.scanExpr(x.Cond, st, false)
		thenSt := st.clone()
		thenTerm := w.stmts(x.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if x.Else != nil {
			elseTerm = w.stmt(x.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *mergeChanStates([]*chanState{thenSt, elseSt})
		}
		return false

	case *ast.ForStmt:
		if x.Init != nil {
			w.stmt(x.Init, st)
		}
		if x.Cond != nil {
			w.scanExpr(x.Cond, st, false)
		}
		w.loopBody(func(bst *chanState) bool {
			term := w.stmts(x.Body.List, bst)
			if !term && x.Post != nil {
				w.stmt(x.Post, bst)
			}
			return term
		}, nil, st)
		return false

	case *ast.RangeStmt:
		if k, ok := chanKeyOf(w.info(), x.X); ok && isChanType(w.info().TypeOf(x.X)) && st.mustNil[k] {
			w.ca.report(w.node.Pkg, x.For, "range over nil channel %s blocks forever", chanName(k))
		}
		w.scanExpr(x.X, st, false)
		var loopVars []types.Object
		for _, v := range []ast.Expr{x.Key, x.Value} {
			if id, ok := v.(*ast.Ident); ok {
				if obj := w.info().ObjectOf(id); obj != nil {
					loopVars = append(loopVars, obj)
				}
			}
		}
		w.loopBody(func(bst *chanState) bool {
			return w.stmts(x.Body.List, bst)
		}, loopVars, st)
		return false

	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init, st)
		}
		if x.Tag != nil {
			w.scanExpr(x.Tag, st, false)
		}
		return w.caseMerge(x.Body.List, st, false)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init, st)
		}
		return w.caseMerge(x.Body.List, st, false)

	case *ast.SelectStmt:
		return w.caseMerge(x.Body.List, st, true)

	case *ast.BranchStmt:
		return true

	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)

	case *ast.IncDecStmt:
		w.scanExpr(x.X, st, false)
		return false

	default:
		return false
	}
}

// loopBody walks a loop body twice — a close in iteration N must be
// visible to a send in iteration N+1 — rebinding loop variables at
// each pass; findings are deduplicated by the analysis. The loop's out
// state is the entry/body merge (zero iterations are possible).
func (w *chanWalker) loopBody(walk func(*chanState) bool, loopVars []types.Object, st *chanState) {
	entry := st.clone()
	pass1 := entry.clone()
	for _, v := range loopVars {
		pass1.forgetRoot(v)
	}
	term1 := walk(pass1)
	if !term1 {
		pass2 := mergeChanStates([]*chanState{entry, pass1})
		for _, v := range loopVars {
			pass2.forgetRoot(v)
		}
		if !walk(pass2) {
			pass1 = pass2
		}
	}
	if term1 {
		*st = *entry
		return
	}
	*st = *mergeChanStates([]*chanState{entry, pass1})
}

// caseMerge walks switch/select clause bodies from a shared entry
// state and merges the survivors; select comm clauses suppress the
// nil-channel checks (a nil arm disables the case by design).
func (w *chanWalker) caseMerge(clauses []ast.Stmt, st *chanState, isSelect bool) bool {
	var outs []*chanState
	hasDefault := false
	nCases := 0
	for _, cl := range clauses {
		var body []ast.Stmt
		cst := st.clone()
		switch c := cl.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.scanExpr(e, st, false)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.commStmt(c.Comm, cst)
			}
			body = c.Body
		default:
			continue
		}
		nCases++
		if !w.stmts(body, cst) {
			outs = append(outs, cst)
		}
	}
	exhaustive := hasDefault || (isSelect && nCases > 0)
	if len(outs) == 0 {
		return exhaustive && nCases > 0
	}
	if !exhaustive {
		outs = append(outs, st.clone())
	}
	*st = *mergeChanStates(outs)
	return false
}

// commStmt walks a select communication op: send-on-closed still
// panics inside a select, but nil checks are suppressed.
func (w *chanWalker) commStmt(s ast.Stmt, st *chanState) {
	switch x := s.(type) {
	case *ast.SendStmt:
		w.scanExpr(x.Value, st, true)
		w.checkSend(x.Chan, x.Arrow, st, true)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.scanExpr(r, st, true)
		}
	case *ast.ExprStmt:
		w.scanExpr(x.X, st, true)
	}
}

// checkSend reports sends on provably-nil or may-closed channels.
func (w *chanWalker) checkSend(ch ast.Expr, pos token.Pos, st *chanState, suppressNil bool) {
	k, ok := chanKeyOf(w.info(), ch)
	if !ok {
		return
	}
	if !suppressNil && st.mustNil[k] {
		w.ca.report(w.node.Pkg, pos, "send on nil channel %s blocks forever", chanName(k))
	}
	if cp, closed := st.mayClosed[k]; closed {
		at := w.node.Pkg.Fset.Position(cp)
		w.ca.report(w.node.Pkg, pos, "send on %s after close at %s:%d (panics)", chanName(k), baseName(at.Filename), at.Line)
	}
}

// doClose handles close(ch) and defer close(ch): nil close, double
// close (direct, deferred, or mixed), and foreign-field ownership.
func (w *chanWalker) doClose(arg ast.Expr, pos token.Pos, st *chanState, deferred bool) {
	w.scanExpr(arg, st, false)
	// Ownership: closing a channel field of a type another package
	// defines breaks the "only the owner closes" protocol.
	if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
		if f, ok := w.info().ObjectOf(sel.Sel).(*types.Var); ok && f.IsField() {
			if owner := namedType(w.info().TypeOf(sel.X)); owner != nil && owner.Obj().Pkg() != nil &&
				owner.Obj().Pkg() != w.node.Pkg.Types {
				w.ca.report(w.node.Pkg, pos, "close of channel field %s.%s owned by package %s (close by non-owner)",
					owner.Obj().Name(), f.Name(), owner.Obj().Pkg().Path())
			}
		}
	}
	k, ok := chanKeyOf(w.info(), arg)
	if !ok {
		return
	}
	if st.mustNil[k] {
		w.ca.report(w.node.Pkg, pos, "close of nil channel %s (panics)", chanName(k))
	}
	if cp, closed := st.mayClosed[k]; closed {
		at := w.node.Pkg.Fset.Position(cp)
		w.ca.report(w.node.Pkg, pos, "%s may already be closed at %s:%d (double close)", chanName(k), baseName(at.Filename), at.Line)
	} else if dp, has := st.deferClosed[k]; has {
		at := w.node.Pkg.Fset.Position(dp)
		w.ca.report(w.node.Pkg, pos, "%s is closed again by the deferred close at %s:%d (double close)", chanName(k), baseName(at.Filename), at.Line)
	}
	delete(st.mustNil, k)
	if deferred {
		st.deferClosed[k] = pos
	} else {
		st.mayClosed[k] = pos
	}
}

// scanExpr checks receives and resolved calls inside an expression.
// Function-literal interiors are excluded — they are their own graph
// nodes with their own walk.
func (w *chanWalker) scanExpr(e ast.Expr, st *chanState, suppressNil bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		switch x := m.(type) {
		case *ast.UnaryExpr:
			if x.Op != token.ARROW || suppressNil {
				return true
			}
			if k, ok := chanKeyOf(w.info(), x.X); ok && st.mustNil[k] {
				w.ca.report(w.node.Pkg, x.OpPos, "receive on nil channel %s blocks forever", chanName(k))
			}
		case *ast.CallExpr:
			w.applyCall(x, st)
		}
		return true
	})
}

// applyCall composes the flow state with a resolved callee's summary:
// a closed channel flowing into a callee that sends on (or re-closes)
// it is the interprocedural version of the direct checks.
func (w *chanWalker) applyCall(call *ast.CallExpr, st *chanState) {
	e := w.g.EdgeByCall[call]
	if e == nil || e.Caller != w.node || e.Kind == EdgeGo {
		return
	}
	cs := w.summ[e.Callee]
	if cs == nil {
		return
	}
	for j, arg := range call.Args {
		k, ok := chanKeyOf(w.info(), arg)
		if !ok {
			continue
		}
		if cp, closed := st.mayClosed[k]; closed {
			at := w.node.Pkg.Fset.Position(cp)
			if cs.paramSends[j] {
				w.ca.report(w.node.Pkg, call.Lparen, "call to %s sends on %s, closed at %s:%d (send after close)",
					e.Callee.ID, chanName(k), baseName(at.Filename), at.Line)
			}
			if cs.paramCloses[j] {
				w.ca.report(w.node.Pkg, call.Lparen, "call to %s closes %s again, closed at %s:%d (double close)",
					e.Callee.ID, chanName(k), baseName(at.Filename), at.Line)
			}
		}
		if cs.paramCloses[j] {
			delete(st.mustNil, k)
			st.mayClosed[k] = call.Lparen
		}
	}
	// Method receiver: closed fields of the receiver object.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if rid, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			r := w.info().ObjectOf(rid)
			if r == nil {
				return
			}
			for k, cp := range st.mayClosed {
				if k.root != r || k.field == nil {
					continue
				}
				at := w.node.Pkg.Fset.Position(cp)
				if cs.fieldSends[k.field] {
					w.ca.report(w.node.Pkg, call.Lparen, "call to %s sends on %s, closed at %s:%d (send after close)",
						e.Callee.ID, chanName(k), baseName(at.Filename), at.Line)
				}
				if cs.fieldCloses[k.field] {
					w.ca.report(w.node.Pkg, call.Lparen, "call to %s closes %s again, closed at %s:%d (double close)",
						e.Callee.ID, chanName(k), baseName(at.Filename), at.Line)
				}
			}
		}
	}
}

// ChanFlow returns the channel-lifecycle analyzer. The analysis is
// whole-program and memoized on the Program; each pass reports only
// findings positioned in its own package.
func ChanFlow() *Analyzer {
	return &Analyzer{
		Name: "chanflow",
		Doc:  "channel lifecycle: nil sends/receives, double close, send after close, close by non-owner package",
		Run: func(pass *Pass) {
			ca := pass.Prog.chanAnalysisResult()
			for _, f := range ca.findings {
				if f.pkg == pass.Pkg {
					pass.Reportf(f.pos, "%s", f.msg)
				}
			}
		},
	}
}
