package incentive

import (
	"fmt"
	"math/rand"
	"testing"
)

func pool(rng *rand.Rand, n, cells int) []Candidate {
	cands := make([]Candidate, n)
	for i := range cands {
		cost := 1 + rng.Float64()*4
		cover := make([]int, 1+rng.Intn(4))
		for j := range cover {
			cover[j] = rng.Intn(cells)
		}
		cands[i] = Candidate{
			ID:       fmt.Sprintf("u%02d", i),
			Cost:     cost,
			Bid:      cost * (1 + rng.Float64()), // bid above true cost
			Coverage: cover,
		}
	}
	return cands
}

func TestRecruitRespectsBudgetAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cands := pool(rng, 30, 50)
	sel, err := Recruit(cands, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Total > 20 {
		t.Fatalf("spent %v over budget", sel.Total)
	}
	if len(sel.Winners) == 0 || len(sel.Covered) == 0 {
		t.Fatal("nothing recruited")
	}
	// Every winner added coverage (no useless hires).
	for _, w := range sel.Winners {
		if len(w.Coverage) == 0 {
			t.Fatalf("winner %s covers nothing", w.ID)
		}
	}
	if _, err := Recruit(cands, 0); err == nil {
		t.Fatal("want budget error")
	}
}

func TestRecruitPrefersEfficientCandidates(t *testing.T) {
	cands := []Candidate{
		{ID: "cheap-wide", Bid: 1, Coverage: []int{1, 2, 3, 4}},
		{ID: "dear-narrow", Bid: 10, Coverage: []int{5}},
	}
	sel, err := Recruit(cands, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Winners) != 1 || sel.Winners[0].ID != "cheap-wide" {
		t.Fatalf("winners %v", sel.Winners)
	}
}

func TestSecondPriceSelectsLowestAndPaysClearing(t *testing.T) {
	cands := []Candidate{
		{ID: "a", Bid: 5}, {ID: "b", Bid: 2}, {ID: "c", Bid: 8}, {ID: "d", Bid: 3},
	}
	sel, err := SecondPriceReverse(cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Winners) != 2 || sel.Winners[0].ID != "b" || sel.Winners[1].ID != "d" {
		t.Fatalf("winners %v", sel.Winners)
	}
	// Clearing price is the 3rd lowest bid (5).
	if sel.Payments["b"] != 5 || sel.Payments["d"] != 5 || sel.Total != 10 {
		t.Fatalf("payments %v total %v", sel.Payments, sel.Total)
	}
}

func TestSecondPriceTruthfulnessIncentive(t *testing.T) {
	// A winner's payment never depends on its own bid: overbidding can
	// only lose the auction, never raise the payment received.
	base := []Candidate{{ID: "x", Bid: 2}, {ID: "y", Bid: 4}, {ID: "z", Bid: 6}}
	sel, _ := SecondPriceReverse(base, 1)
	payTruthful := sel.Payments["x"]
	// x raises its bid but still wins → same payment.
	raised := []Candidate{{ID: "x", Bid: 3.9}, {ID: "y", Bid: 4}, {ID: "z", Bid: 6}}
	sel2, _ := SecondPriceReverse(raised, 1)
	if sel2.Payments["x"] != payTruthful {
		t.Fatalf("payment moved with own bid: %v vs %v", sel2.Payments["x"], payTruthful)
	}
}

func TestSecondPriceErrors(t *testing.T) {
	cands := []Candidate{{ID: "a", Bid: 1}, {ID: "b", Bid: 2}}
	if _, err := SecondPriceReverse(cands, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, err := SecondPriceReverse(cands, 2); err == nil {
		t.Fatal("want k+1 bidders error")
	}
}

func TestReverseAuctionDynamicConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cands := pool(rng, 40, 50)
	stats, err := ReverseAuctionDynamic(rng, cands, 10, 40, 0.5, 1.3, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 40 {
		t.Fatalf("rounds %d", len(stats))
	}
	// Later rounds should reliably fill all k slots.
	last := stats[len(stats)-1]
	if last.Winners < 10 {
		t.Fatalf("steady state fills %d of 10 slots", last.Winners)
	}
	// Price should have come down from any early spike: final price below
	// the maximum price seen.
	maxPrice := 0.0
	for _, s := range stats {
		if s.Price > maxPrice {
			maxPrice = s.Price
		}
	}
	if last.Price > maxPrice {
		t.Fatal("price did not stabilize")
	}
}

func TestReverseAuctionDynamicValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cands := pool(rng, 10, 10)
	if _, err := ReverseAuctionDynamic(rng, cands, 0, 5, 1, 1.2, 0.9); err == nil {
		t.Fatal("want k error")
	}
	if _, err := ReverseAuctionDynamic(rng, cands, 2, 5, 0, 1.2, 0.9); err == nil {
		t.Fatal("want price error")
	}
	if _, err := ReverseAuctionDynamic(rng, cands, 2, 5, 1, 0.9, 0.9); err == nil {
		t.Fatal("want riseFactor error")
	}
	if _, err := ReverseAuctionDynamic(rng, cands, 2, 5, 1, 1.2, 1.5); err == nil {
		t.Fatal("want decayFactor error")
	}
}

func TestCompareProducesAllMechanisms(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cands := pool(rng, 50, 64)
	out, err := Compare(rng, cands, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("outcomes %v", out)
	}
	names := map[string]bool{}
	for _, o := range out {
		names[o.Mechanism] = true
		if o.TotalCost < 0 {
			t.Fatalf("negative cost %+v", o)
		}
	}
	for _, want := range []string{"recruitment", "second-price", "reverse-dynamic"} {
		if !names[want] {
			t.Fatalf("missing mechanism %s", want)
		}
	}
}
