// Package incentive implements the participation-incentive mechanisms the
// paper surveys as required substrate for collaboration (§5): recruitment
// by coverage (after Reddy et al.), a sealed-bid second-price reverse
// auction (after Danezis et al.), and a reverse auction with dynamic price
// and virtual participation credit (after Lee & Hoh), plus the comparative
// evaluation across mechanisms (after Duan et al.).
package incentive

import (
	"errors"
	"math/rand"
	"sort"
)

// Candidate is one potential participant: their private cost of sensing,
// the grid cells they can cover, and their announced bid.
type Candidate struct {
	ID       string
	Cost     float64 // true private cost per task
	Bid      float64 // announced asking price (>= 0)
	Coverage []int   // field cells this candidate can sense
}

// Selection is the outcome of a recruitment/auction round.
type Selection struct {
	Winners  []Candidate
	Payments map[string]float64 // per winner
	Covered  map[int]bool       // union of winner coverage
	Total    float64            // total payout
}

// Recruit greedily selects participants maximizing marginal
// coverage-per-cost until the budget is exhausted (the recruitment
// framework approach: pick well-suited participants, pay their bid).
func Recruit(cands []Candidate, budget float64) (*Selection, error) {
	if budget <= 0 {
		return nil, errors.New("incentive: budget must be positive")
	}
	sel := &Selection{Payments: map[string]float64{}, Covered: map[int]bool{}}
	remaining := append([]Candidate(nil), cands...)
	for {
		bestIdx, bestScore := -1, 0.0
		for i, c := range remaining {
			if c.Bid > budget-sel.Total || c.Bid < 0 {
				continue
			}
			marginal := 0
			for _, cell := range c.Coverage {
				if !sel.Covered[cell] {
					marginal++
				}
			}
			if marginal == 0 {
				continue
			}
			price := c.Bid
			if price <= 0 {
				price = 1e-9 // free participant: infinitely good score
			}
			score := float64(marginal) / price
			if score > bestScore {
				bestScore, bestIdx = score, i
			}
		}
		if bestIdx < 0 {
			break
		}
		w := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		sel.Winners = append(sel.Winners, w)
		sel.Payments[w.ID] = w.Bid
		sel.Total += w.Bid
		for _, cell := range w.Coverage {
			sel.Covered[cell] = true
		}
	}
	return sel, nil
}

// SecondPriceReverse runs a sealed-bid reverse Vickrey auction selecting
// the k lowest bidders; each winner is paid the (k+1)-th lowest bid (the
// first losing bid), which makes truthful bidding a dominant strategy.
func SecondPriceReverse(cands []Candidate, k int) (*Selection, error) {
	if k <= 0 {
		return nil, errors.New("incentive: k must be positive")
	}
	if len(cands) < k+1 {
		return nil, errors.New("incentive: need at least k+1 bidders for a second-price payment")
	}
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Bid != sorted[j].Bid {
			return sorted[i].Bid < sorted[j].Bid
		}
		return sorted[i].ID < sorted[j].ID
	})
	clearing := sorted[k].Bid
	sel := &Selection{Payments: map[string]float64{}, Covered: map[int]bool{}}
	for _, w := range sorted[:k] {
		sel.Winners = append(sel.Winners, w)
		sel.Payments[w.ID] = clearing
		sel.Total += clearing
		for _, cell := range w.Coverage {
			sel.Covered[cell] = true
		}
	}
	return sel, nil
}

// DynamicRoundStats records one round of the dynamic-price reverse auction.
type DynamicRoundStats struct {
	Round        int
	Price        float64
	Participants int
	Winners      int
	Cost         float64
}

// ReverseAuctionDynamic runs the RADP-style repeated reverse auction: each
// round the platform buys up to k readings at the current price from
// candidates whose bid (cost) does not exceed it. If fewer than k sell,
// the price rises by riseFactor; if all k slots fill, it decays by
// decayFactor — converging toward the market-clearing price while keeping
// participation up (the virtual-participation-credit effect is modeled by
// candidates shading their bid toward cost after losing).
func ReverseAuctionDynamic(rng *rand.Rand, cands []Candidate, k, rounds int, startPrice, riseFactor, decayFactor float64) ([]DynamicRoundStats, error) {
	if k <= 0 || rounds <= 0 {
		return nil, errors.New("incentive: k and rounds must be positive")
	}
	if startPrice <= 0 || riseFactor <= 1 || decayFactor <= 0 || decayFactor >= 1 {
		return nil, errors.New("incentive: need startPrice>0, riseFactor>1, 0<decayFactor<1")
	}
	bids := make([]float64, len(cands))
	for i, c := range cands {
		bids[i] = c.Bid
	}
	price := startPrice
	var stats []DynamicRoundStats
	for r := 0; r < rounds; r++ {
		var sellers []int
		for i := range cands {
			if bids[i] <= price {
				sellers = append(sellers, i)
			}
		}
		// The platform buys from the cheapest k sellers at the posted price.
		sort.Slice(sellers, func(a, b int) bool { return bids[sellers[a]] < bids[sellers[b]] })
		winners := sellers
		if len(winners) > k {
			winners = winners[:k]
		}
		st := DynamicRoundStats{
			Round: r, Price: price,
			Participants: len(sellers), Winners: len(winners),
			Cost: price * float64(len(winners)),
		}
		stats = append(stats, st)
		// Losers shade bids down toward their true cost to win next round.
		winnerSet := map[int]bool{}
		for _, w := range winners {
			winnerSet[w] = true
		}
		for i := range cands {
			if !winnerSet[i] && bids[i] > cands[i].Cost {
				bids[i] = cands[i].Cost + (bids[i]-cands[i].Cost)*0.7*rng.Float64()
			}
		}
		if len(winners) < k {
			price *= riseFactor
		} else {
			price *= decayFactor
			// Never post below the cheapest true cost; nothing would sell.
			minCost := cands[0].Cost
			for _, c := range cands[1:] {
				if c.Cost < minCost {
					minCost = c.Cost
				}
			}
			if price < minCost {
				price = minCost
			}
		}
	}
	return stats, nil
}

// Outcome summarizes one mechanism in the comparative study.
type Outcome struct {
	Mechanism    string
	TotalCost    float64
	CoveredCells int
	Winners      int
}

// Compare runs the three mechanisms on the same candidate pool for a task
// wanting k participants (after Duan et al.'s comparative study). For the
// dynamic auction the last-round steady state is reported.
func Compare(rng *rand.Rand, cands []Candidate, k int, budget float64) ([]Outcome, error) {
	var out []Outcome
	rec, err := Recruit(cands, budget)
	if err != nil {
		return nil, err
	}
	out = append(out, Outcome{"recruitment", rec.Total, len(rec.Covered), len(rec.Winners)})
	vick, err := SecondPriceReverse(cands, k)
	if err != nil {
		return nil, err
	}
	out = append(out, Outcome{"second-price", vick.Total, len(vick.Covered), len(vick.Winners)})
	dyn, err := ReverseAuctionDynamic(rng, cands, k, 25, budget/float64(4*k), 1.25, 0.95)
	if err != nil {
		return nil, err
	}
	last := dyn[len(dyn)-1]
	out = append(out, Outcome{"reverse-dynamic", last.Cost, 0, last.Winners})
	return out, nil
}
