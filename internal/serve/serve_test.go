package serve

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/sensor"
	"repro/internal/snapshot"
	"repro/internal/stream"
	"repro/internal/testutil"
)

// testServer builds an 8×8 field in 2×2 zones where cell (r,c) holds
// 10r+c, published as version 1.
func testServer(t *testing.T) (*Server, *snapshot.Registry) {
	t.Helper()
	reg := snapshot.NewRegistry(4)
	s, err := New(reg, 8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := field.New(8, 8)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			f.Set(r, c, float64(10*r+c))
		}
	}
	if _, err := reg.Publish(&snapshot.Snapshot{Step: 1, T: 1, Kind: sensor.Temperature, Field: f}); err != nil {
		t.Fatal(err)
	}
	return s, reg
}

func TestPointReadsLatestSnapshot(t *testing.T) {
	s, _ := testServer(t)
	got, err := s.Point(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != 35 || got.Zone != 1 || got.Version != 1 {
		t.Fatalf("Point(3,5) = %+v", got)
	}
	if _, err := s.Point(8, 0); err == nil {
		t.Fatal("out-of-range point accepted")
	}
}

func TestQueriesBeforeFirstPublishReturnErrNoSnapshot(t *testing.T) {
	reg := snapshot.NewRegistry(1)
	s, err := New(reg, 8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Point(0, 0); !errors.Is(err, snapshot.ErrNoSnapshot) {
		t.Fatalf("Point = %v, want ErrNoSnapshot", err)
	}
	if _, err := s.Aggregate(0, AggSum, ""); !errors.Is(err, snapshot.ErrNoSnapshot) {
		t.Fatalf("Aggregate = %v, want ErrNoSnapshot", err)
	}
}

func TestRangePredicatePushdown(t *testing.T) {
	s, _ := testServer(t)
	res, err := s.Range(Rect{0, 0, 8, 8}, "value >= 70 && col < 4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 64 {
		t.Fatalf("scanned %d cells, want 64", res.Scanned)
	}
	if len(res.Cells) != 4 { // row 7, cols 0..3
		t.Fatalf("matched %d cells, want 4: %+v", len(res.Cells), res.Cells)
	}
	for _, c := range res.Cells {
		if c.Row != 7 || c.Col >= 4 || c.Zone != 2 {
			t.Fatalf("bad cell %+v", c)
		}
	}
	if _, err := s.Range(Rect{0, 0, 8, 8}, "value >"); err == nil {
		t.Fatal("bad filter accepted")
	}
	if _, err := s.Range(Rect{4, 4, 2, 2}, ""); err == nil {
		t.Fatal("inverted rectangle accepted")
	}
}

func TestAggregateOpsAndZones(t *testing.T) {
	s, _ := testServer(t)
	// Zone 3 covers rows 4..7 × cols 4..7.
	sum := 0.0
	for r := 4; r < 8; r++ {
		for c := 4; c < 8; c++ {
			sum += float64(10*r + c)
		}
	}
	for _, tc := range []struct {
		op   AggOp
		want float64
	}{
		{AggSum, sum}, {AggMean, sum / 16}, {AggMin, 44}, {AggMax, 77}, {AggCount, 16},
	} {
		got, err := s.Aggregate(3, tc.op, "")
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != tc.want || got.Cells != 16 {
			t.Fatalf("Aggregate(3,%s) = %+v, want value %v", tc.op, got, tc.want)
		}
	}
	whole, err := s.Aggregate(-1, AggCount, "zone == 0")
	if err != nil {
		t.Fatal(err)
	}
	if whole.Value != 16 {
		t.Fatalf("whole-field zone filter counted %v, want 16", whole.Value)
	}
	if _, err := s.Aggregate(4, AggSum, ""); err == nil {
		t.Fatal("unknown zone accepted")
	}
	if _, err := s.Aggregate(0, AggOp("median"), ""); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// The per-zone cache must serve repeats at the answered version and be
// invalidated by the next snapshot swap.
func TestAggregateCacheInvalidatedOnSwap(t *testing.T) {
	s, reg := testServer(t)
	first, err := s.Aggregate(0, AggSum, "")
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Aggregate(0, AggSum, "")
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatalf("cached aggregate differs: %+v vs %+v", again, first)
	}
	f2 := field.New(8, 8)
	for i := range f2.Data {
		f2.Data[i] = 1
	}
	if _, err := reg.Publish(&snapshot.Snapshot{Step: 2, T: 2, Field: f2}); err != nil {
		t.Fatal(err)
	}
	after, err := s.Aggregate(0, AggSum, "")
	if err != nil {
		t.Fatal(err)
	}
	if after.Version != 2 || after.Value != 16 {
		t.Fatalf("post-swap aggregate = %+v, want version 2 value 16", after)
	}
}

// Concurrent queries racing concurrent publishes: every answer must be
// internally consistent (version matches the value read) — run under
// -race this also proves the read path touches no unsynchronized state.
func TestConcurrentQueriesDuringSwaps(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	reg := snapshot.NewRegistry(2)
	s, err := New(reg, 8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	mkVersion := func(v float64) *field.Field {
		f := field.New(8, 8)
		for i := range f.Data {
			f.Data[i] = v
		}
		return f
	}
	if _, err := reg.Publish(&snapshot.Snapshot{Step: 1, Field: mkVersion(1)}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // publisher: version v has all cells = v
		defer wg.Done()
		for v := 2; ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := reg.Publish(&snapshot.Snapshot{Step: v, Field: mkVersion(float64(v))}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				p, err := s.Point(i%8, (i/8)%8)
				if err != nil {
					t.Error(err)
					return
				}
				if p.Value != float64(p.Version) {
					t.Errorf("torn read: version %d value %v", p.Version, p.Value)
					return
				}
				a, err := s.Aggregate(i%4, AggMean, "")
				if err != nil {
					t.Error(err)
					return
				}
				if a.Value != float64(a.Version) {
					t.Errorf("stale cache served: version %d mean %v", a.Version, a.Value)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// Soak: the full stack — evolving truth, streaming pipeline, query load —
// runs for SOAK_DURATION (default a short smoke), with zero query errors,
// zero leaked goroutines, and a sane p99. CI runs this with
// SOAK_DURATION=10s.
func TestServeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	defer testutil.CheckGoroutines(t)
	obs.Enable()
	dur := 400 * time.Millisecond
	if v := os.Getenv("SOAK_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad SOAK_DURATION %q: %v", v, err)
		}
		dur = d
	}
	sd, err := core.New(core.Options{
		FieldW: 16, FieldH: 16,
		ZoneRows: 2, ZoneCols: 2,
		NCsPerZone: 1, NodesPerNC: 5,
		Seed:    11,
		Timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	evolve := func(step int, tm float64) *field.Field {
		return field.GenPlumes(16, 16, 10, []field.Plume{
			{Row: 5 + 0.05*tm, Col: 5, Sigma: 2.5, Amplitude: 25},
		})
	}
	if err := sd.SetTruth(evolve(0, 0)); err != nil {
		t.Fatal(err)
	}
	reg := snapshot.NewRegistry(4)
	p, err := stream.New(sd, reg, stream.Config{
		Budget: 60, Interval: 10 * time.Millisecond,
		WarmStart: true, Evolve: evolve,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(reg, 16, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := reg.WaitContext(ctx, 1); err != nil {
		t.Fatalf("pipeline never published: %v", err)
	}
	rep, err := RunLoad(ctx, s, LoadConfig{
		Workers: 4, Duration: dur, Seed: 3,
		Filters: []string{"value > 12", "zone == 1 && value < 30"},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Stop()
	t.Logf("soak: %s", rep)
	if rep.Errors != 0 {
		t.Fatalf("%d query errors under load", rep.Errors)
	}
	if rep.Queries == 0 {
		t.Fatal("load generator issued no queries")
	}
	if v := reg.Latest().Version; v < 2 {
		t.Fatalf("pipeline published only %d versions during soak", v)
	}
	// Latency budget: generous enough for shared CI machines, tight
	// enough to catch a lock sneaking onto the query path.
	if rep.Point.Count > 0 && rep.Point.P99 > 250 {
		t.Fatalf("point p99 = %.1fms, budget 250ms", rep.Point.P99)
	}
	if rep.Agg.Count > 0 && rep.Agg.P99 > 500 {
		t.Fatalf("aggregate p99 = %.1fms, budget 500ms", rep.Agg.P99)
	}
}

// The per-cell filter environment and typed evaluation path allocate
// nothing: boxing one value per cell would put ~4 heap objects on every
// scanned cell at full query load. Filtered aggregates with zero
// matches take the same loop without touching the result buffer, so the
// whole query is alloc-free after warm-up (cache insert aside).
func TestRangeFilterZeroAllocs(t *testing.T) {
	s, _ := testServer(t)
	f, err := s.compile("value >= 70 && col < 4")
	if err != nil {
		t.Fatal(err)
	}
	env := &cellEnv{}
	allocs := testing.AllocsPerRun(200, func() {
		env.v, env.r, env.c, env.zone = 71, 7, 1, 2
		ok, ferr := f.EvalWith(env)
		if ferr != nil || !ok {
			t.Fatalf("EvalWith: ok=%v err=%v", ok, ferr)
		}
	})
	if allocs != 0 {
		t.Fatalf("per-cell filter eval allocates %.1f per run, want 0", allocs)
	}
}

// Aggregate caching still round-trips through the struct key: a repeated
// (op, filter) query on the same version is a cache hit with an
// identical result.
func TestAggregateCacheStructKey(t *testing.T) {
	s, _ := testServer(t)
	first, err := s.Aggregate(2, AggMean, "value >= 70")
	if err != nil {
		t.Fatal(err)
	}
	cache := s.caches[2].Load()
	if cache == nil {
		t.Fatal("no cache after aggregate")
	}
	if _, ok := cache.entries[aggKey{op: AggMean, src: "value >= 70"}]; !ok {
		t.Fatalf("cache missing struct key, has %d entries", len(cache.entries))
	}
	again, err := s.Aggregate(2, AggMean, "value >= 70")
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("cache hit differs: %+v vs %+v", first, again)
	}
}
