package serve

import (
	"sync/atomic"
	"testing"

	"repro/internal/field"
	"repro/internal/snapshot"
)

func benchServer(b *testing.B) (*Server, *snapshot.Registry) {
	b.Helper()
	reg := snapshot.NewRegistry(4)
	s, err := New(reg, 32, 32, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	f := field.New(32, 32)
	for i := range f.Data {
		f.Data[i] = float64(i % 97)
	}
	if _, err := reg.Publish(&snapshot.Snapshot{Step: 1, Field: f}); err != nil {
		b.Fatal(err)
	}
	return s, reg
}

// BenchmarkQueryServe is the single-threaded mixed-query baseline.
func BenchmarkQueryServe(b *testing.B) {
	s, _ := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch i % 4 {
		case 0, 1:
			if _, err := s.Point(i%32, (i/32)%32); err != nil {
				b.Fatal(err)
			}
		case 2:
			if _, err := s.Range(Rect{0, 0, 8, 8}, "value > 50"); err != nil {
				b.Fatal(err)
			}
		default:
			if _, err := s.Aggregate(i%4, AggMean, ""); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkQueryServeParallel pins the lock-free claim for the read
// path: point queries from all procs against a server whose snapshot is
// being swapped underneath. With no mutex on the path, throughput scales
// with GOMAXPROCS (run with -cpu 1,4 to compare).
func BenchmarkQueryServeParallel(b *testing.B) {
	s, reg := benchServer(b)
	stop := make(chan struct{})
	go func() { // background publisher keeps the swap pressure on
		f := field.New(32, 32)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := reg.Publish(&snapshot.Snapshot{Step: i, Field: f}); err != nil {
				return
			}
		}
	}()
	defer close(stop)
	var sink atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i, local := 0, 0.0
		for pb.Next() {
			p, err := s.Point(i%32, (i/32)%32)
			if err != nil {
				b.Error(err)
				return
			}
			local += p.Value
			i++
		}
		sink.Add(uint64(local))
	})
}
