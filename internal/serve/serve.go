// Package serve answers concurrent field queries against the latest
// versioned snapshot: point reads, rectangular range scans with
// predicate pushdown through the query language, and per-zone
// aggregates. The read path is lock-free — one atomic load fetches the
// snapshot, per-zone aggregate caches are copy-on-write behind atomic
// pointers, and compiled filters are memoized the same way — so query
// throughput scales with cores while the streaming pipeline swaps
// snapshots underneath.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/snapshot"
)

// Serving observability handles (no-ops until obs.Enable). These are
// explicit histograms rather than spans: the span recorder serializes on
// a mutex, which would put a lock on the query hot path.
var (
	obsPointMs   = obs.GetHistogram("serve.query.point.ms", obs.LatencyBuckets)
	obsRangeMs   = obs.GetHistogram("serve.query.range.ms", obs.LatencyBuckets)
	obsAggMs     = obs.GetHistogram("serve.query.agg.ms", obs.LatencyBuckets)
	obsQueries   = obs.GetCounter("serve.queries")
	obsQueryErrs = obs.GetCounter("serve.query.errors")
	obsCacheHit  = obs.GetCounter("serve.cache.hits")
	obsCacheMiss = obs.GetCounter("serve.cache.misses")
)

// AggOp is an aggregate operator.
type AggOp string

const (
	AggSum   AggOp = "sum"
	AggMean  AggOp = "mean"
	AggMin   AggOp = "min"
	AggMax   AggOp = "max"
	AggCount AggOp = "count"
)

// Rect is a half-open cell rectangle [Row0,Row1)×[Col0,Col1).
type Rect struct {
	Row0, Col0, Row1, Col1 int
}

// Cell is one matched cell of a range query.
type Cell struct {
	Row   int     `json:"row"`
	Col   int     `json:"col"`
	Zone  int     `json:"zone"`
	Value float64 `json:"value"`
}

// PointResult is a point read plus the snapshot version that answered it.
type PointResult struct {
	Value   float64 `json:"value"`
	Zone    int     `json:"zone"`
	Version uint64  `json:"version"`
	Step    int     `json:"step"`
	T       float64 `json:"t"`
}

// RangeResult is a predicate-filtered range scan.
type RangeResult struct {
	Cells   []Cell  `json:"cells"`
	Scanned int     `json:"scanned"`
	Version uint64  `json:"version"`
	T       float64 `json:"t"`
}

// AggResult is one aggregate over a zone (or the whole field).
type AggResult struct {
	Op      AggOp   `json:"op"`
	Zone    int     `json:"zone"` // -1 = whole field
	Value   float64 `json:"value"`
	Cells   int     `json:"cells"` // cells that passed the predicate
	Version uint64  `json:"version"`
	T       float64 `json:"t"`
}

// aggKey identifies one cached aggregate: comparable struct, so cache
// lookups build no per-query key string.
type aggKey struct {
	op  AggOp
	src string
}

// zoneCache is an immutable aggregate cache for one zone at one snapshot
// version. Lookups copy-on-write: a new cache value replaces the pointer
// wholesale, so readers never see a map mid-update.
type zoneCache struct {
	version uint64
	entries map[aggKey]AggResult
}

// filterCache memoizes compiled predicates, copy-on-write like zoneCache
// but version-independent (compilation depends only on the source text).
type filterCache struct {
	entries map[string]*query.Filter
}

// Server answers queries against the registry's latest snapshot.
type Server struct {
	reg *snapshot.Registry

	// Geometry, immutable after New: zoneRows×zoneCols zones of
	// zoneH×zoneW cells over a fieldH×fieldW grid (row-major zone IDs,
	// matching field.Partition).
	fieldW, fieldH     int
	zoneRows, zoneCols int
	zoneW, zoneH       int

	caches  []atomic.Pointer[zoneCache] // one per zone, index = zone ID
	filters atomic.Pointer[filterCache]

	// maxCacheEntries bounds each zone's aggregate cache; a full cache
	// stops admitting new keys until the next snapshot resets it.
	maxCacheEntries int
}

// New binds a server to a registry over a fieldW×fieldH grid split into
// zoneRows×zoneCols zones. It subscribes to the registry so every
// snapshot swap invalidates the aggregate caches.
func New(reg *snapshot.Registry, fieldW, fieldH, zoneRows, zoneCols int) (*Server, error) {
	if reg == nil {
		return nil, errors.New("serve: nil registry")
	}
	if fieldW <= 0 || fieldH <= 0 || zoneRows <= 0 || zoneCols <= 0 {
		return nil, errors.New("serve: non-positive geometry")
	}
	if fieldH%zoneRows != 0 || fieldW%zoneCols != 0 {
		return nil, fmt.Errorf("serve: %dx%d field not divisible into %dx%d zones",
			fieldH, fieldW, zoneRows, zoneCols)
	}
	s := &Server{
		reg:    reg,
		fieldW: fieldW, fieldH: fieldH,
		zoneRows: zoneRows, zoneCols: zoneCols,
		zoneW: fieldW / zoneCols, zoneH: fieldH / zoneRows,
		caches:          make([]atomic.Pointer[zoneCache], zoneRows*zoneCols),
		maxCacheEntries: 256,
	}
	s.filters.Store(&filterCache{entries: map[string]*query.Filter{}})
	reg.Subscribe(func(snap *snapshot.Snapshot) {
		for i := range s.caches {
			s.caches[i].Store(&zoneCache{version: snap.Version, entries: map[aggKey]AggResult{}})
		}
	})
	return s, nil
}

// ZoneOf returns the zone ID owning cell (r, c).
func (s *Server) ZoneOf(r, c int) int {
	return (r/s.zoneH)*s.zoneCols + c/s.zoneW
}

// latest returns the current snapshot or ErrNoSnapshot before the first
// publish.
func (s *Server) latest() (*snapshot.Snapshot, error) {
	snap := s.reg.Latest()
	if snap == nil {
		return nil, snapshot.ErrNoSnapshot
	}
	return snap, nil
}

// Point reads one cell from the latest snapshot.
func (s *Server) Point(r, c int) (PointResult, error) {
	var begin time.Time
	if obs.Enabled() {
		begin = time.Now()
	}
	obsQueries.Inc()
	if r < 0 || r >= s.fieldH || c < 0 || c >= s.fieldW {
		obsQueryErrs.Inc()
		return PointResult{}, fmt.Errorf("serve: point (%d,%d) outside %dx%d field", r, c, s.fieldH, s.fieldW)
	}
	snap, err := s.latest()
	if err != nil {
		obsQueryErrs.Inc()
		return PointResult{}, err
	}
	res := PointResult{
		Value: snap.Field.At(r, c), Zone: s.ZoneOf(r, c),
		Version: snap.Version, Step: snap.Step, T: snap.T,
	}
	if obs.Enabled() {
		obsPointMs.Observe(float64(time.Since(begin)) / float64(time.Millisecond))
	}
	return res, nil
}

// compile memoizes predicate compilation in the copy-on-write filter
// cache. Concurrent first compilations of the same source race benignly:
// one of the identical filters wins the pointer swap.
func (s *Server) compile(src string) (*query.Filter, error) {
	if src == "" {
		return nil, nil
	}
	fc := s.filters.Load()
	if f, ok := fc.entries[src]; ok {
		obsCacheHit.Inc()
		return f, nil
	}
	f, err := query.Compile(src)
	if err != nil {
		return nil, err
	}
	obsCacheMiss.Inc()
	if len(fc.entries) < 1024 {
		next := make(map[string]*query.Filter, len(fc.entries)+1)
		for k, v := range fc.entries {
			next[k] = v
		}
		next[src] = f
		s.filters.Store(&filterCache{entries: next})
	}
	return f, nil
}

// cellEnv is the predicate environment for one cell: a concrete
// query.Lookuper, so filter evaluation sees value, row, col, and zone
// without boxing anything per cell (pinned by TestRangeFilterZeroAllocs).
type cellEnv struct {
	v          float64
	r, c, zone int
}

func (e *cellEnv) Lookup(name string) (query.Val, bool) {
	switch name {
	case "value":
		return query.Num(e.v), true
	case "row":
		return query.Num(float64(e.r)), true
	case "col":
		return query.Num(float64(e.c)), true
	case "zone":
		return query.Num(float64(e.zone)), true
	}
	return query.Val{}, false
}

// Range scans a rectangle of the latest snapshot, keeping cells that
// match the predicate (empty filterSrc keeps everything). The predicate
// sees value, row, col, and zone.
func (s *Server) Range(rect Rect, filterSrc string) (RangeResult, error) {
	var begin time.Time
	if obs.Enabled() {
		begin = time.Now()
	}
	obsQueries.Inc()
	if rect.Row0 < 0 || rect.Col0 < 0 || rect.Row1 > s.fieldH || rect.Col1 > s.fieldW ||
		rect.Row0 >= rect.Row1 || rect.Col0 >= rect.Col1 {
		obsQueryErrs.Inc()
		return RangeResult{}, fmt.Errorf("serve: bad rectangle %+v for %dx%d field", rect, s.fieldH, s.fieldW)
	}
	snap, err := s.latest()
	if err != nil {
		obsQueryErrs.Inc()
		return RangeResult{}, err
	}
	f, err := s.compile(filterSrc)
	if err != nil {
		obsQueryErrs.Inc()
		return RangeResult{}, err
	}
	res := RangeResult{Version: snap.Version, T: snap.T}
	env := &cellEnv{}
	for r := rect.Row0; r < rect.Row1; r++ {
		for c := rect.Col0; c < rect.Col1; c++ {
			res.Scanned++
			v := snap.Field.At(r, c)
			zone := s.ZoneOf(r, c)
			if f != nil {
				env.v, env.r, env.c, env.zone = v, r, c, zone
				ok, ferr := f.EvalWith(env)
				if ferr != nil {
					obsQueryErrs.Inc()
					return RangeResult{}, ferr
				}
				if !ok {
					continue
				}
			}
			res.Cells = append(res.Cells, Cell{Row: r, Col: c, Zone: zone, Value: v})
		}
	}
	if obs.Enabled() {
		obsRangeMs.Observe(float64(time.Since(begin)) / float64(time.Millisecond))
	}
	return res, nil
}

// Aggregate folds one zone of the latest snapshot (zone -1 = the whole
// field) under the predicate. Results are cached per (op, filter) in the
// zone's copy-on-write cache and invalidated on snapshot swap; a lost
// insertion race costs one recomputation, never a wrong answer.
func (s *Server) Aggregate(zone int, op AggOp, filterSrc string) (AggResult, error) {
	var begin time.Time
	if obs.Enabled() {
		begin = time.Now()
	}
	obsQueries.Inc()
	snap, err := s.latest()
	if err != nil {
		obsQueryErrs.Inc()
		return AggResult{}, err
	}
	var rect Rect
	switch {
	case zone == -1:
		rect = Rect{0, 0, s.fieldH, s.fieldW}
	case zone >= 0 && zone < len(s.caches):
		zr, zc := zone/s.zoneCols, zone%s.zoneCols
		rect = Rect{zr * s.zoneH, zc * s.zoneW, (zr + 1) * s.zoneH, (zc + 1) * s.zoneW}
	default:
		obsQueryErrs.Inc()
		return AggResult{}, fmt.Errorf("serve: zone %d outside [0,%d)", zone, len(s.caches))
	}
	key := aggKey{op: op, src: filterSrc}
	var cache *zoneCache
	if zone >= 0 {
		cache = s.caches[zone].Load()
		if cache != nil && cache.version == snap.Version {
			if hit, ok := cache.entries[key]; ok {
				obsCacheHit.Inc()
				if obs.Enabled() {
					obsAggMs.Observe(float64(time.Since(begin)) / float64(time.Millisecond))
				}
				return hit, nil
			}
		}
		obsCacheMiss.Inc()
	}

	f, err := s.compile(filterSrc)
	if err != nil {
		obsQueryErrs.Inc()
		return AggResult{}, err
	}
	res := AggResult{Op: op, Zone: zone, Version: snap.Version, T: snap.T}
	sum, minV, maxV := 0.0, math.Inf(1), math.Inf(-1)
	env := &cellEnv{}
	for r := rect.Row0; r < rect.Row1; r++ {
		for c := rect.Col0; c < rect.Col1; c++ {
			v := snap.Field.At(r, c)
			if f != nil {
				env.v, env.r, env.c, env.zone = v, r, c, s.ZoneOf(r, c)
				ok, ferr := f.EvalWith(env)
				if ferr != nil {
					obsQueryErrs.Inc()
					return AggResult{}, ferr
				}
				if !ok {
					continue
				}
			}
			res.Cells++
			sum += v
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	switch op {
	case AggSum:
		res.Value = sum
	case AggMean:
		if res.Cells > 0 {
			res.Value = sum / float64(res.Cells)
		}
	case AggMin:
		if res.Cells > 0 {
			res.Value = minV
		}
	case AggMax:
		if res.Cells > 0 {
			res.Value = maxV
		}
	case AggCount:
		res.Value = float64(res.Cells)
	default:
		obsQueryErrs.Inc()
		return AggResult{}, fmt.Errorf("serve: unknown aggregate op %q", op)
	}

	if zone >= 0 {
		// Copy-on-write insert against the version we answered from. If a
		// newer snapshot reset the cache meanwhile, skip: caching a stale
		// version would serve old data as current.
		cur := s.caches[zone].Load()
		if (cur == nil || cur.version == snap.Version) && (cur == nil || len(cur.entries) < s.maxCacheEntries) {
			next := &zoneCache{version: snap.Version, entries: map[aggKey]AggResult{key: res}}
			if cur != nil {
				for k, v := range cur.entries {
					next.entries[k] = v
				}
				next.entries[key] = res
			}
			s.caches[zone].CompareAndSwap(cur, next)
		}
	}
	if obs.Enabled() {
		obsAggMs.Observe(float64(time.Since(begin)) / float64(time.Millisecond))
	}
	return res, nil
}
