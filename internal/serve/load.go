package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// LoadConfig shapes a synthetic query workload: Workers concurrent
// clients issuing a Point/Range/Aggregate mix for Duration. Weights
// need not sum to 1; they are normalized. Filters, when non-empty, is
// sampled uniformly for range/aggregate predicates.
type LoadConfig struct {
	Workers    int
	Duration   time.Duration
	PointFrac  float64 // default 0.7
	RangeFrac  float64 // default 0.2
	AggFrac    float64 // default 0.1
	RangeSpan  int     // max rectangle edge (default 8)
	Filters    []string
	Seed       int64
}

// LoadReport summarizes a load run. Latency quantiles come from the
// serve histograms, so they cover exactly the queries this process
// issued since obs was last reset.
type LoadReport struct {
	Queries  int64
	Errors   int64
	Duration time.Duration
	QPS      float64
	Point    obs.HistSnapshot
	Range    obs.HistSnapshot
	Agg      obs.HistSnapshot
}

// String renders the report for terminals and logs.
func (r LoadReport) String() string {
	return fmt.Sprintf(
		"queries=%d errors=%d elapsed=%v qps=%.0f\n"+
			"point ms: p50=%.3f p95=%.3f p99=%.3f (n=%d)\n"+
			"range ms: p50=%.3f p95=%.3f p99=%.3f (n=%d)\n"+
			"agg   ms: p50=%.3f p95=%.3f p99=%.3f (n=%d)",
		r.Queries, r.Errors, r.Duration.Round(time.Millisecond), r.QPS,
		r.Point.P50, r.Point.P95, r.Point.P99, r.Point.Count,
		r.Range.P50, r.Range.P95, r.Range.P99, r.Range.Count,
		r.Agg.P50, r.Agg.P95, r.Agg.P99, r.Agg.Count)
}

// RunLoad drives a sustained mixed query workload against the server and
// reports throughput and latency quantiles. Each worker owns a seeded
// RNG, so a fixed seed fixes the exact query sequence per worker (the
// interleaving is scheduler-dependent, as real load is).
func RunLoad(ctx context.Context, s *Server, cfg LoadConfig) (LoadReport, error) {
	if s == nil {
		return LoadReport{}, errors.New("serve: nil server")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.PointFrac == 0 && cfg.RangeFrac == 0 && cfg.AggFrac == 0 {
		cfg.PointFrac, cfg.RangeFrac, cfg.AggFrac = 0.7, 0.2, 0.1
	}
	if cfg.RangeSpan <= 0 {
		cfg.RangeSpan = 8
	}
	total := cfg.PointFrac + cfg.RangeFrac + cfg.AggFrac
	pPoint := cfg.PointFrac / total
	pRange := pPoint + cfg.RangeFrac/total

	lctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	counts := make([]int64, cfg.Workers)
	errs := make([]int64, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) { // exits when lctx expires
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			zones := s.zoneRows * s.zoneCols
			ops := []AggOp{AggSum, AggMean, AggMin, AggMax, AggCount}
			for lctx.Err() == nil {
				var err error
				switch u := rng.Float64(); {
				case u < pPoint:
					_, err = s.Point(rng.Intn(s.fieldH), rng.Intn(s.fieldW))
				case u < pRange:
					r0 := rng.Intn(s.fieldH)
					c0 := rng.Intn(s.fieldW)
					r1 := min(s.fieldH, r0+1+rng.Intn(cfg.RangeSpan))
					c1 := min(s.fieldW, c0+1+rng.Intn(cfg.RangeSpan))
					_, err = s.Range(Rect{r0, c0, r1, c1}, pickFilter(rng, cfg.Filters))
				default:
					_, err = s.Aggregate(rng.Intn(zones+1)-1, ops[rng.Intn(len(ops))], pickFilter(rng, cfg.Filters))
				}
				counts[w]++
				if err != nil {
					errs[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	rep := LoadReport{
		Duration: time.Since(start),
		Point:    obsPointMs.Snapshot(),
		Range:    obsRangeMs.Snapshot(),
		Agg:      obsAggMs.Snapshot(),
	}
	for w := range counts {
		rep.Queries += counts[w]
		rep.Errors += errs[w]
	}
	rep.QPS = float64(rep.Queries) / rep.Duration.Seconds()
	return rep, nil
}

// pickFilter samples one predicate source (empty = unfiltered) from the
// configured pool.
func pickFilter(rng *rand.Rand, filters []string) string {
	if len(filters) == 0 {
		return ""
	}
	return filters[rng.Intn(len(filters))]
}
