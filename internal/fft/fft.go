// Package fft provides the radix-2 fast Fourier transform core behind the
// matrix-free basis operators (basis.Operator): an iterative, in-place
// Cooley–Tukey butterfly with precomputed twiddle tables and bit-reversal
// permutation, O(n log n) where the dense bases pay O(n²).
//
// Determinism contract (DESIGN.md §5, §9): the butterfly schedule is a fixed
// function of n — stages in increasing span order, blocks left to right,
// twiddles from a table computed once per plan — so a transform of the same
// input is bit-identical on every run and at every GOMAXPROCS. Transforms
// never spawn goroutines and never allocate: all state lives in the plan and
// the caller's buffers.
package fft

import (
	"fmt"
	"math"
	"sync"
)

// Plan holds the precomputed tables for transforms of one size. Plans are
// immutable after construction and safe for concurrent use; obtain shared
// ones through PlanFor.
type Plan struct {
	n   int
	rev []int     // bit-reversal permutation
	cos []float64 // cos(2πj/n), j = 0..n/2-1
	sin []float64 // sin(2πj/n), j = 0..n/2-1
}

// IsPow2 reports whether n is a positive power of two (the sizes the
// radix-2 core handles; other sizes use the dense reference path).
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NewPlan builds the tables for size-n transforms. n must be a positive
// power of two.
func NewPlan(n int) (*Plan, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("fft: size %d is not a power of two", n)
	}
	p := &Plan{
		n:   n,
		rev: make([]int, n),
		cos: make([]float64, n/2),
		sin: make([]float64, n/2),
	}
	// Bit-reversal permutation via the incremental carry trick.
	for i, j := 0, 0; i < n; i++ {
		p.rev[i] = j
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j &^= bit
		}
		j |= bit
	}
	for j := 0; j < n/2; j++ {
		s, c := math.Sincos(2 * math.Pi * float64(j) / float64(n))
		p.cos[j] = c
		p.sin[j] = s
	}
	return p, nil
}

// N returns the transform size.
func (p *Plan) N() int { return p.n }

// plan cache: transforms of the same size share one table set.
var (
	planMu sync.RWMutex
	plans  = make(map[int]*Plan)
)

// PlanFor returns the shared plan for size n, building and memoizing it on
// first use. n must be a positive power of two.
func PlanFor(n int) (*Plan, error) {
	planMu.RLock()
	p, ok := plans[n]
	planMu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	planMu.Lock()
	plans[n] = p
	planMu.Unlock()
	return p, nil
}

// Forward computes the in-place DFT X[k] = Σᵢ x[i]·e^{-2πi·ik/n} of the
// complex signal (re, im). Both slices must have length n.
func (p *Plan) Forward(re, im []float64) {
	p.transform(re, im, false)
}

// Inverse computes the in-place inverse DFT x[i] = (1/n)·Σₖ X[k]·e^{+2πi·ik/n}.
func (p *Plan) Inverse(re, im []float64) {
	p.transform(re, im, true)
	inv := 1 / float64(p.n)
	for i := range re {
		re[i] *= inv
		im[i] *= inv
	}
}

// transform runs the iterative radix-2 butterfly. The loop body performs no
// allocation and no calls; the schedule is a pure function of n.
func (p *Plan) transform(re, im []float64, inverse bool) {
	n := p.n
	if len(re) != n || len(im) != n {
		panic(fmt.Sprintf("fft: buffer length %d/%d, want %d", len(re), len(im), n))
	}
	for i, j := range p.rev {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	// The direction only flips the twiddle's imaginary sign; folding it
	// into a constant here keeps the innermost butterfly branch-free.
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				wre := p.cos[tw]
				wim := sign * p.sin[tw]
				j := k + half
				tre := re[j]*wre - im[j]*wim
				tim := re[j]*wim + im[j]*wre
				re[j] = re[k] - tre
				im[j] = im[k] - tim
				re[k] += tre
				im[k] += tim
				tw += step
			}
		}
	}
}

// Naive computes the DFT by direct O(n²) summation — the reference the
// property tests compare the butterfly against. Any length is accepted.
func Naive(re, im []float64) ([]float64, []float64) {
	n := len(re)
	outRe := make([]float64, n)
	outIm := make([]float64, n)
	for k := 0; k < n; k++ {
		var sr, si float64
		for i := 0; i < n; i++ {
			s, c := math.Sincos(2 * math.Pi * float64(k) * float64(i) / float64(n))
			sr += re[i]*c + im[i]*s
			si += im[i]*c - re[i]*s
		}
		outRe[k] = sr
		outIm[k] = si
	}
	return outRe, outIm
}
