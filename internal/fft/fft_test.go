package fft

import (
	"math"
	"math/rand"
	"testing"
)

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		p, err := PlanFor(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		wantRe, wantIm := Naive(re, im)
		p.Forward(re, im)
		if d := maxAbsDiff(re, wantRe); d > 1e-9 {
			t.Errorf("n=%d: forward re deviates by %.3g", n, d)
		}
		if d := maxAbsDiff(im, wantIm); d > 1e-9 {
			t.Errorf("n=%d: forward im deviates by %.3g", n, d)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 32, 512} {
		p, err := PlanFor(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		origRe := append([]float64(nil), re...)
		origIm := append([]float64(nil), im...)
		p.Forward(re, im)
		p.Inverse(re, im)
		if d := maxAbsDiff(re, origRe); d > 1e-10 {
			t.Errorf("n=%d: round-trip re deviates by %.3g", n, d)
		}
		if d := maxAbsDiff(im, origIm); d > 1e-10 {
			t.Errorf("n=%d: round-trip im deviates by %.3g", n, d)
		}
	}
}

func TestNonPow2Rejected(t *testing.T) {
	for _, n := range []int{0, -4, 3, 6, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) accepted a non-power-of-two size", n)
		}
	}
}

// TestDeterministic pins the fixed-butterfly-order contract: two transforms
// of the same input must agree bit for bit, including across plan instances.
func TestDeterministic(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewSource(3))
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = rng.NormFloat64()
	}
	run := func(p *Plan) ([]float64, []float64) {
		r := append([]float64(nil), re...)
		q := append([]float64(nil), im...)
		p.Forward(r, q)
		return r, q
	}
	shared, err := PlanFor(n)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	r1, i1 := run(shared)
	r2, i2 := run(fresh)
	for i := range r1 {
		if r1[i] != r2[i] || i1[i] != i2[i] {
			t.Fatalf("bin %d differs between plan instances: (%v,%v) vs (%v,%v)", i, r1[i], i1[i], r2[i], i2[i])
		}
	}
}

// TestTransformAllocs pins the allocation-free butterfly: a transform on
// prepared buffers must not allocate at all.
func TestTransformAllocs(t *testing.T) {
	p, err := PlanFor(512)
	if err != nil {
		t.Fatal(err)
	}
	re := make([]float64, 512)
	im := make([]float64, 512)
	re[3] = 1
	allocs := testing.AllocsPerRun(100, func() {
		p.Forward(re, im)
		p.Inverse(re, im)
	})
	if allocs != 0 {
		t.Fatalf("transform allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	p, err := PlanFor(1024)
	if err != nil {
		b.Fatal(err)
	}
	re := make([]float64, 1024)
	im := make([]float64, 1024)
	rng := rand.New(rand.NewSource(4))
	for i := range re {
		re[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(re, im)
	}
}
