package cs

// The decoders are written against a sensing dictionary abstraction so the
// same greedy cores serve two execution paths:
//
//   - denseDict: the reference path. Φ and Φ̃ = Φ(L,:) are explicit
//     matrices and every operation delegates to the exact mat kernels the
//     decoders called before the abstraction existed, in the same order —
//     the dense path stays bit-identical decode for decode.
//   - opDict: the matrix-free fast path. Φ is a basis.Operator and Φ̃ is
//     applied by scatter/gather around Apply/ApplyTranspose: a correlation
//     Φ̃ᵀr scatters the M residual values onto the full grid and runs one
//     O(n log n) analysis; a column Φ̃e_j synthesizes one basis vector and
//     gathers it at the sensor locations. No M×N sensing matrix — and no
//     N×N basis — is ever materialized, which is what unlocks 1024² grids
//     (dense Φ there would be (2²⁰)² floats ≈ 8 TB).
//
// Numerical contract: both paths implement the same linear algebra; the op
// path reassociates floating-point sums inside the fast transforms, so its
// results agree with dense to the documented ≤1e-9 equivalence bound
// (DESIGN.md §9) rather than bit-for-bit. Each path is individually
// deterministic at every GOMAXPROCS.

import (
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/mat"
)

// dict is the sensing dictionary Φ̃ = Φ(L,:) together with the full basis
// Φ it was sampled from. m is the measurement count, n the coefficient
// count, and signalDim the full signal length N (== n for the square
// orthonormal operators; dense matrices may be rectangular).
type dict interface {
	rows() int
	cols() int
	signalDim() int
	// corrT computes dst = Φ̃ᵀ r (length n) from a residual at the sensors.
	corrT(dst, r []float64) error
	// col extracts dst = Φ̃ e_j (length m), the j-th dictionary column.
	col(dst []float64, j int) error
	// colNorms fills dst[j] = ‖Φ̃ e_j‖₂ for every column.
	colNorms(dst []float64) error
	// predict computes dst = Φ̃ α (length m) from a full-length coefficient
	// vector.
	predict(dst, alpha []float64) error
	// analyzeFull computes dst = Φᵀ e (length n) from a full-length signal —
	// the CHS step-(b) scan.
	analyzeFull(dst, e []float64) error
	// subInto fills the dense m×len(idx) matrix of the selected dictionary
	// columns — the small least-squares systems every decoder ends with.
	subInto(dst *mat.Matrix, idx []int) error
	// synth reconstructs the full signal Φ·α from support-packed
	// coefficients.
	synth(support []int, coef []float64) []float64
	// residualSq returns ‖y − Φ̃_J coef‖² given the already-synthesized xhat.
	residualSq(support []int, coef, y, xhat []float64) float64
}

// dictFor builds the decode dictionary for an operator at the given sensor
// locations. A *basis.MatrixOp routes to the dense reference dictionary so
// matrix-backed operators (learned bases, non-dyadic fallbacks) decode
// bit-identically to the historical dense entry points.
func dictFor(op basis.Operator, locs []int) (dict, error) {
	if mo, ok := op.(*basis.MatrixOp); ok {
		return denseDictFor(mo.Matrix(), locs)
	}
	// Everything else — including a Separable2D over dense factors — runs
	// matrix-free: applying the factors costs O(n·(h+w)) against the Kron
	// product's O(n²).
	return newOpDict(op, locs)
}

// denseDictFor builds the reference dictionary: Φ̃ gathered once through
// the memoized sensingMatrix path.
func denseDictFor(phi *mat.Matrix, locs []int) (dict, error) {
	a, err := sensingMatrix(phi, locs)
	if err != nil {
		return nil, err
	}
	return &denseDict{phi: phi, a: a}, nil
}

// --- dense reference path ------------------------------------------------------

type denseDict struct {
	phi *mat.Matrix // full basis, N×n
	a   *mat.Matrix // sensing matrix Φ(L,:), m×n
}

func (d *denseDict) rows() int      { return d.a.Rows }
func (d *denseDict) cols() int      { return d.a.Cols }
func (d *denseDict) signalDim() int { return d.phi.Rows }

func (d *denseDict) corrT(dst, r []float64) error {
	return mat.MulTVecInto(dst, d.a, r)
}

func (d *denseDict) col(dst []float64, j int) error {
	n := d.a.Cols
	for i := 0; i < d.a.Rows; i++ {
		dst[i] = d.a.Data[i*n+j]
	}
	return nil
}

func (d *denseDict) colNorms(dst []float64) error {
	n := d.a.Cols
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < d.a.Rows; i++ {
		row := d.a.Data[i*n : (i+1)*n]
		for j, v := range row {
			dst[j] += v * v
		}
	}
	for j, s := range dst {
		dst[j] = math.Sqrt(s)
	}
	return nil
}

func (d *denseDict) predict(dst, alpha []float64) error {
	return mat.MulVecInto(dst, d.a, alpha)
}

func (d *denseDict) analyzeFull(dst, e []float64) error {
	return mat.MulTVecInto(dst, d.phi, e)
}

func (d *denseDict) subInto(dst *mat.Matrix, idx []int) error {
	return mat.SelectColsInto(dst, d.a, idx)
}

func (d *denseDict) synth(support []int, coef []float64) []float64 {
	xhat := make([]float64, d.phi.Rows)
	for s, j := range support {
		cj := coef[s]
		if cj == 0 {
			continue
		}
		for i := 0; i < d.phi.Rows; i++ {
			xhat[i] += d.phi.Data[i*d.phi.Cols+j] * cj
		}
	}
	return xhat
}

func (d *denseDict) residualSq(support []int, coef, y, _ []float64) float64 {
	res := 0.0
	for i := 0; i < d.a.Rows; i++ {
		pred := 0.0
		for s, j := range support {
			pred += d.a.Data[i*d.a.Cols+j] * coef[s]
		}
		diff := y[i] - pred
		res += diff * diff
	}
	return res
}

// --- matrix-free path ----------------------------------------------------------

type opDict struct {
	op    basis.Operator
	locs  []int
	n     int
	full  []float64 // length-n scatter buffer, kept all-zero between uses
	out   []float64 // length-n transform output buffer
	norms []float64 // lazily computed column norms (OMP only)

	// colJs/colBuf memoize gathered columns for the lifetime of one
	// decode: the greedy decoders re-request every support column on each
	// refit, so caching turns O(iters·|J|) synthesis transforms into one
	// per distinct column. Support stays small (tens of atoms), so a
	// linear scan over admission order beats a map — no hashing, no map
	// allocation on the decode hot path. Entries are immutable once
	// stored.
	colJs  []int
	colBuf [][]float64
	// sepU/sepV hold the factor columns when op is a Separable2D.
	sepU, sepV []float64
}

func newOpDict(op basis.Operator, locs []int) (*opDict, error) {
	if len(locs) == 0 {
		return nil, ErrNoMeasurements
	}
	n := op.Dim()
	for _, l := range locs {
		if l < 0 || l >= n {
			return nil, fmt.Errorf("cs: location %d out of range [0,%d)", l, n)
		}
	}
	return &opDict{
		op: op, locs: locs, n: n,
		full: make([]float64, n),
		out:  make([]float64, n),
	}, nil
}

func (d *opDict) rows() int      { return len(d.locs) }
func (d *opDict) cols() int      { return d.n }
func (d *opDict) signalDim() int { return d.n }

// corrT scatters the residual onto the grid (zeros elsewhere — the ZeroFill
// embedding, under which Φ̃ᵀr = Φᵀ(scatter r)) and runs one analysis.
// Duplicate locations accumulate, matching the dense row-sum.
func (d *opDict) corrT(dst, r []float64) error {
	for i, l := range d.locs {
		d.full[l] += r[i]
	}
	d.op.ApplyTranspose(dst, d.full)
	for _, l := range d.locs {
		d.full[l] = 0
	}
	return nil
}

// col synthesizes basis vector j and gathers it at the sensors.
func (d *opDict) col(dst []float64, j int) error {
	c, err := d.gatherCol(j)
	if err != nil {
		return err
	}
	copy(dst, c)
	return nil
}

// gatherCol returns the memoized gathered column Φ̃ e_j.
func (d *opDict) gatherCol(j int) ([]float64, error) {
	if j < 0 || j >= d.n {
		return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrBadSupport, j, d.n)
	}
	for s, cj := range d.colJs {
		if cj == j {
			return d.colBuf[s], nil
		}
	}
	c := make([]float64, len(d.locs))
	if sep, ok := d.op.(*basis.Separable2D); ok {
		d.sepCol(sep, c, j)
	} else if ea, ok := d.op.(basis.EntryAccessor); ok {
		// Closed-form entries: the column restricted to the m sampled
		// rows costs O(m), not one full synthesis.
		for i, l := range d.locs {
			c[i] = ea.Entry(l, j)
		}
	} else {
		d.full[j] = 1
		d.op.Apply(d.out, d.full)
		d.full[j] = 0
		for i, l := range d.locs {
			c[i] = d.out[l]
		}
	}
	d.colJs = append(d.colJs, j)
	d.colBuf = append(d.colBuf, c)
	return c, nil
}

// sepCol exploits separability: column jc·h+jr of a 2-D operator is the
// outer product of the 1-D factor columns, so it costs two small factor
// transforms and an O(M) gather instead of one full n-point synthesis.
func (d *opDict) sepCol(sep *basis.Separable2D, dst []float64, j int) {
	rowOp, colOp := sep.Factors()
	h, w := rowOp.Dim(), colOp.Dim()
	if d.sepU == nil {
		d.sepU, d.sepV = make([]float64, h), make([]float64, w)
	}
	jr, jc := j%h, j/h
	d.full[jr] = 1
	rowOp.Apply(d.sepU, d.full[:h])
	d.full[jr] = 0
	d.full[jc] = 1
	colOp.Apply(d.sepV, d.full[:w])
	d.full[jc] = 0
	for i, l := range d.locs {
		dst[i] = d.sepU[l%h] * d.sepV[l/h]
	}
}

// colNorms costs one analysis per measurement (row locs[i] of Φ is
// Φᵀe_{locs[i]}) — O(M·n log n), done once per decode and only by OMP.
func (d *opDict) colNorms(dst []float64) error {
	for j := range dst {
		dst[j] = 0
	}
	// Column norms of the restricted dictionary are row norms of Φ over the
	// sampled locations. Closed-form row access (basis.RowAccessor) makes
	// each row O(n); the analysis fallback pays one full transform per
	// measurement, which dominates OMP setup at small n.
	if ra, ok := d.op.(basis.RowAccessor); ok {
		for _, l := range d.locs {
			ra.RowInto(d.out, l)
			for j, v := range d.out {
				dst[j] += v * v
			}
		}
	} else {
		for _, l := range d.locs {
			d.full[l] = 1
			d.op.ApplyTranspose(d.out, d.full)
			d.full[l] = 0
			for j, v := range d.out {
				dst[j] += v * v
			}
		}
	}
	for j, s := range dst {
		dst[j] = math.Sqrt(s)
	}
	return nil
}

func (d *opDict) predict(dst, alpha []float64) error {
	d.op.Apply(d.out, alpha)
	for i, l := range d.locs {
		dst[i] = d.out[l]
	}
	return nil
}

func (d *opDict) analyzeFull(dst, e []float64) error {
	d.op.ApplyTranspose(dst, e)
	return nil
}

// subInto builds the small m×|idx| system column by column — |idx| fast
// synthesizes, never a dense slice of Φ.
func (d *opDict) subInto(dst *mat.Matrix, idx []int) error {
	m := len(d.locs)
	if dst.Rows != m || dst.Cols != len(idx) {
		return fmt.Errorf("%w: submatrix %dx%d, want %dx%d", mat.ErrShape, dst.Rows, dst.Cols, m, len(idx))
	}
	for c, j := range idx {
		cj, err := d.gatherCol(j)
		if err != nil {
			return err
		}
		for i := range d.locs {
			dst.Data[i*dst.Cols+c] = cj[i]
		}
	}
	return nil
}

func (d *opDict) synth(support []int, coef []float64) []float64 {
	xhat := make([]float64, d.n)
	if len(support) == 0 {
		return xhat
	}
	for s, j := range support {
		d.full[j] = coef[s]
	}
	d.op.Apply(xhat, d.full)
	for _, j := range support {
		d.full[j] = 0
	}
	return xhat
}

// residualSq reads the sensor predictions straight off the synthesized
// signal: (Φ̃_J coef)_i = xhat[locs[i]] by construction.
func (d *opDict) residualSq(_ []int, _, y, xhat []float64) float64 {
	res := 0.0
	for i, l := range d.locs {
		diff := y[i] - xhat[l]
		res += diff * diff
	}
	return res
}

// --- shared result packing -----------------------------------------------------

// packResultDict assembles the Result every decoder returns: full-length
// alpha, synthesized xhat, and the sensor-residual norm.
func packResultDict(d dict, support []int, coef, y []float64, iters int) (*Result, error) {
	alpha := make([]float64, d.cols())
	for s, j := range support {
		alpha[j] = coef[s]
	}
	xhat := d.synth(support, coef)
	res := d.residualSq(support, coef, y, xhat)
	return &Result{
		Alpha: alpha, Support: support, Xhat: xhat,
		Residual: math.Sqrt(res), Iterations: iters,
	}, nil
}

// zeroResult is the empty-support decode outcome.
func zeroResult(d dict, y []float64, iters int) *Result {
	return &Result{
		Alpha: make([]float64, d.cols()), Support: nil,
		Xhat: make([]float64, d.signalDim()), Residual: mat.Norm2(y), Iterations: iters,
	}
}
