package cs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/basis"
)

// The warm-start contract: re-decoding unchanged measurements seeded with
// the previous Result.Support must be bit-identical to the cold decode —
// same Alpha, Support (order included), Xhat, and Residual, float for
// float. Only Iterations may differ (the warm path skips the greedy
// scans). A bad seed must never corrupt a decode: stale, duplicate, or
// rank-deficient seeds fall back to exactly the cold result.

// warmProblem builds a K-sparse signal in a DCT basis with noisy
// measurements at random locations.
func warmProblem(t *testing.T, n, m, k int, seed int64) (op basis.Operator, locs []int, y []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	op, err := basis.OperatorFor(basis.KindDCT, n)
	if err != nil {
		t.Fatal(err)
	}
	alpha := make([]float64, n)
	for i := 0; i < k; i++ {
		alpha[rng.Intn(n)] = 3 + 2*rng.Float64()
	}
	x := make([]float64, n)
	op.Apply(x, alpha)
	locs, err = RandomLocations(rng, n, m)
	if err != nil {
		t.Fatal(err)
	}
	y, err = Measure(x, locs, rng, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	return op, locs, y
}

// assertBitIdentical fails unless two results agree float-for-float on
// everything but Iterations.
func assertBitIdentical(t *testing.T, name string, cold, warm *Result) {
	t.Helper()
	if len(warm.Support) != len(cold.Support) {
		t.Fatalf("%s: support size %d, want %d", name, len(warm.Support), len(cold.Support))
	}
	for i, j := range cold.Support {
		if warm.Support[i] != j {
			t.Fatalf("%s: support[%d] = %d, want %d (admission order must match)", name, i, warm.Support[i], j)
		}
	}
	for i, v := range cold.Alpha {
		if warm.Alpha[i] != v {
			t.Fatalf("%s: alpha[%d] = %v, want %v (must be bit-identical)", name, i, warm.Alpha[i], v)
		}
	}
	for i, v := range cold.Xhat {
		if warm.Xhat[i] != v {
			t.Fatalf("%s: xhat[%d] = %v, want %v (must be bit-identical)", name, i, warm.Xhat[i], v)
		}
	}
	if warm.Residual != cold.Residual {
		t.Fatalf("%s: residual %v, want %v (must be bit-identical)", name, warm.Residual, cold.Residual)
	}
}

func TestWarmStartCHSBitIdenticalOnUnchangedField(t *testing.T) {
	op, locs, y := warmProblem(t, 256, 64, 8, 41)
	opts := CHSOptions{MaxSupport: 12, Tol: 1e-8, PerIter: 1}
	cold, err := CHSOp(op, locs, y, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Support) == 0 {
		t.Fatal("cold decode recovered nothing; test is vacuous")
	}
	opts.SeedSupport = cold.Support
	warm, err := CHSOp(op, locs, y, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "CHSOp", cold, warm)
	if warm.Iterations != 0 {
		t.Fatalf("warm decode of an unchanged field ran %d greedy iterations, want 0", warm.Iterations)
	}
}

func TestWarmStartCHSDenseBitIdentical(t *testing.T) {
	phi := basis.DCT(128)
	rng := rand.New(rand.NewSource(7))
	alpha := make([]float64, 128)
	for i := 0; i < 5; i++ {
		alpha[rng.Intn(128)] = 2 + rng.Float64()
	}
	x := make([]float64, 128)
	for i := 0; i < 128; i++ {
		for j, a := range alpha {
			if a != 0 {
				x[i] += phi.Data[i*128+j] * a
			}
		}
	}
	locs, err := RandomLocations(rng, 128, 40)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Measure(x, locs, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := CHSOptions{MaxSupport: 8, Tol: 1e-10}
	cold, err := CHS(phi, locs, y, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.SeedSupport = cold.Support
	warm, err := CHS(phi, locs, y, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "CHS dense", cold, warm)
}

func TestWarmStartOMPBitIdenticalOnUnchangedField(t *testing.T) {
	op, locs, y := warmProblem(t, 256, 64, 8, 43)
	cold, err := OMPOp(op, locs, y, 10, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Support) == 0 {
		t.Fatal("cold decode recovered nothing; test is vacuous")
	}
	warm, err := OMPSeededOp(op, locs, y, 10, 1e-8, cold.Support)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "OMPSeededOp", cold, warm)
	if warm.Iterations != 0 {
		t.Fatalf("warm OMP of an unchanged field ran %d iterations, want 0", warm.Iterations)
	}
}

// A seed that is garbage — out-of-range indices, duplicates, or longer
// than the support cap — must be discarded, and the decode must equal the
// cold decode exactly.
func TestWarmStartInvalidSeedFallsBackToCold(t *testing.T) {
	op, locs, y := warmProblem(t, 128, 48, 6, 17)
	opts := CHSOptions{MaxSupport: 10, Tol: 1e-8}
	cold, err := CHSOp(op, locs, y, opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, seed := range map[string][]int{
		"out-of-range": {0, 5, 4096},
		"negative":     {-1, 3},
		"duplicate":    {2, 7, 2},
		"oversized":    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
	} {
		opts.SeedSupport = seed
		got, err := CHSOp(op, locs, y, opts)
		if err != nil {
			t.Fatalf("%s seed: %v", name, err)
		}
		assertBitIdentical(t, "invalid seed "+name, cold, got)
	}
}

// A rank-deficient seed (the same direction twice via distinct indices
// that alias at the sensors) must also fall back cold rather than error.
func TestWarmStartRankDeficientSeedFallsBackToCold(t *testing.T) {
	// One measurement: every 1-column system is full rank, but any second
	// column is linearly dependent in R^1.
	op, err := basis.OperatorFor(basis.KindDCT, 16)
	if err != nil {
		t.Fatal(err)
	}
	locs := []int{3}
	y := []float64{1.5}
	cold, err := OMPOp(op, locs, y, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := OMPSeededOp(op, locs, y, 1, 0, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Oversized for k=1 → invalid → cold.
	assertBitIdentical(t, "oversized seed", cold, warm)
	warmCHS, err := CHSOp(op, locs, y, CHSOptions{MaxSupport: 2, SeedSupport: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	coldCHS, err := CHSOp(op, locs, y, CHSOptions{MaxSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "rank-deficient seed", coldCHS, warmCHS)
}

// SeedRelTol: when the field drifts so far that the old support explains
// nothing, the seed must be rejected and the decode must equal cold.
func TestWarmStartSeedRelTolRejectsDriftedSeed(t *testing.T) {
	op, locsA, yA := warmProblem(t, 256, 64, 8, 91)
	prev, err := CHSOp(op, locsA, yA, CHSOptions{MaxSupport: 10, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	// A completely different field at the same sensors.
	_, _, yB := warmProblem(t, 256, 64, 8, 1234)
	optsCold := CHSOptions{MaxSupport: 10, Tol: 1e-8}
	cold, err := CHSOp(op, locsA, yB, optsCold)
	if err != nil {
		t.Fatal(err)
	}
	optsWarm := optsCold
	optsWarm.SeedSupport = prev.Support
	optsWarm.SeedRelTol = 0.05 // stricter than the drift allows
	warm, err := CHSOp(op, locsA, yB, optsWarm)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "drift-rejected seed", cold, warm)
}

// Without a tolerance, a still-valid seed on a slightly-changed field is
// kept and refined; the result must stay a sane reconstruction.
func TestWarmStartRefinesChangedField(t *testing.T) {
	op, locs, y := warmProblem(t, 256, 64, 8, 101)
	prev, err := CHSOp(op, locs, y, CHSOptions{MaxSupport: 12, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	y2 := make([]float64, len(y))
	for i, v := range y {
		y2[i] = v * 1.02 // 2% amplitude drift
	}
	warm, err := CHSOp(op, locs, y2, CHSOptions{MaxSupport: 12, Tol: 1e-8, SeedSupport: prev.Support})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := CHSOp(op, locs, y2, CHSOptions{MaxSupport: 12, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	// Pure amplitude scaling keeps the support; the refit coefficients
	// must track the cold solution closely.
	for i, v := range cold.Xhat {
		if math.Abs(warm.Xhat[i]-v) > 1e-6 {
			t.Fatalf("xhat[%d]: warm %v vs cold %v", i, warm.Xhat[i], v)
		}
	}
}
