package cs

import (
	"errors"
	"math"

	"repro/internal/basis"
	"repro/internal/mat"
)

// Interpolator is the Υ: R^M → R^N operator of the Fig. 6 algorithm: it
// lifts a residual known only at the M sensor locations to a full-length
// field estimate. Implementations live in internal/field (nearest
// neighbour, inverse-distance weighting); ZeroFill is the basis-agnostic
// default.
type Interpolator func(locs []int, vals []float64) ([]float64, error)

// ZeroFill returns an Interpolator that places the residual values at
// their locations and zeros elsewhere. For an orthonormal Φ this makes the
// coefficient scan α_r = Φᵀ e exactly the correlation used by matching
// pursuit, so it is a safe default when no geometry is known.
func ZeroFill(n int) Interpolator {
	return func(locs []int, vals []float64) ([]float64, error) {
		if len(locs) != len(vals) {
			return nil, errors.New("cs: locs/vals length mismatch")
		}
		out := make([]float64, n)
		for i, k := range locs {
			if k < 0 || k >= n {
				return nil, ErrBadSupport
			}
			out[k] = vals[i]
		}
		return out, nil
	}
}

// CHSOptions configures the Compressive Heterogeneous Sensing algorithm.
type CHSOptions struct {
	// MaxIter bounds the outer while loop (default 32).
	MaxIter int
	// PerIter is how many new coefficient indices are admitted to J per
	// iteration — step (c)'s "subset of coefficient indices" (default 1).
	PerIter int
	// Tol stops iteration when the sensor-residual norm falls below it.
	Tol float64
	// MaxSupport caps |J| (default: number of measurements).
	MaxSupport int
	// V is the sensor-noise covariance; when non-nil the coefficients are
	// solved with GLS (Fig. 6 step e-ii) instead of OLS (step e-i).
	V *mat.Matrix
	// Interp is the Υ operator (default ZeroFill).
	Interp Interpolator
	// SeedSupport warm-starts the decode from a previously recovered
	// support (Result.Support, in admission order): the seed columns are
	// folded into the incremental-QR factors and the sensor residual
	// deflated before the first greedy iteration, so a support that still
	// explains the measurements costs one residual check plus the final
	// solve instead of a full decode. A seed whose support and admission
	// order match what the cold decode would have found yields a
	// bit-identical Alpha/Support/Xhat/Residual (only Iterations differs):
	// corrT scans never touch the QR factors or the residual, so skipping
	// them changes no arithmetic. Invalid seeds (out-of-range, duplicate,
	// longer than MaxSupport) and rank-deficient seeds are discarded and
	// the decode restarts cold — a stale seed can cost, never corrupt.
	SeedSupport []int
	// SeedRelTol guards warm starts against field drift: when > 0 and the
	// post-seed residual norm exceeds SeedRelTol·‖y‖, the seed is
	// discarded and the decode restarts cold. 0 keeps any seed whose
	// columns are linearly independent (the greedy loop still refines it).
	SeedRelTol float64
}

// CHS runs the paper's Fig. 6 "Compressive Heterogeneous Sensing"
// algorithm: starting from an empty support it repeatedly (a) interpolates
// the sensor residual to the full grid with Υ, (b) analyzes it in the
// basis, (c–d) admits the most significant coefficients to the index set J,
// (e) re-solves the coefficients on J with OLS or GLS, and (f) updates the
// residual, until the stop criterion is met. It returns the reconstruction
// x̂ = Φ_K α_K along with the recovered support.
func CHS(phi *mat.Matrix, locs []int, y []float64, opts CHSOptions) (*Result, error) {
	d, err := denseDictFor(phi, locs)
	if err != nil {
		return nil, err
	}
	return chsDict(d, locs, y, opts)
}

// CHSOp is CHS through a matrix-free basis operator: the step-(b)
// full-basis analysis Φᵀe becomes one fast transform and each admitted
// column one synthesis — the combination that makes 1024² broker
// reconstructions feasible (the dense Φ there would be ~8 TB).
func CHSOp(op basis.Operator, locs []int, y []float64, opts CHSOptions) (*Result, error) {
	d, err := dictFor(op, locs)
	if err != nil {
		return nil, err
	}
	return chsDict(d, locs, y, opts)
}

// hasDuplicateLocs reports whether any sensor location appears twice.
func hasDuplicateLocs(locs []int) bool {
	seen := make(map[int]struct{}, len(locs))
	for _, l := range locs {
		if _, ok := seen[l]; ok {
			return true
		}
		seen[l] = struct{}{}
	}
	return false
}

func chsDict(d dict, locs []int, y []float64, opts CHSOptions) (*Result, error) {
	if len(y) != d.rows() {
		return nil, errors.New("cs: measurement/location length mismatch")
	}
	n := d.cols()
	if opts.MaxIter <= 0 {
		opts.MaxIter = 32
	}
	if opts.PerIter <= 0 {
		opts.PerIter = 1
	}
	if opts.MaxSupport <= 0 || opts.MaxSupport > len(locs) {
		opts.MaxSupport = len(locs)
	}
	// Under the default ZeroFill interpolation, steps (a)+(b) compose to
	// exactly Φ̃ᵀe_r — one scatter+analysis with no interpolant allocation.
	// The fused path is taken only on the matrix-free dictionary (where it
	// is bit-identical to ZeroFill+analyzeFull, both being a scatter into
	// the same buffer followed by one ApplyTranspose); the dense dictionary
	// keeps the historical two-step arithmetic so its decodes stay
	// bit-identical to the pre-operator implementation. Duplicate sensor
	// locations disable it: corrT accumulates where ZeroFill overwrites.
	od, fused := d.(*opDict)
	fused = fused && opts.Interp == nil && !hasDuplicateLocs(locs)
	if opts.Interp == nil {
		opts.Interp = ZeroFill(d.signalDim())
	}

	// Step 1: J = ∅, e_r = x_S. The growing-support OLS of step (e) is kept
	// as an incrementally updated QR factorization: each admitted column is
	// folded in with a rank-1 update and the sensor residual is deflated in
	// O(M), instead of copying Φ̃_J and refactorizing from scratch every
	// iteration. Coefficients are materialized once, after the loop.
	resid := mat.CloneVec(y)
	support := make([]int, 0, opts.MaxSupport)
	inSupport := make([]bool, n)
	qr, err := mat.NewIncrementalQR(d.rows(), opts.MaxSupport)
	if err != nil {
		return nil, err
	}
	eNew := make([]float64, 0)
	alphaR := make([]float64, n)
	col := make([]float64, d.rows())
	iters := 0

	// Warm start: fold the seed support into the factors before the first
	// greedy iteration. When the seeded support still explains the
	// measurements (residual under the seed tolerance, or the support cap
	// already reached), the loop below exits immediately and the decode
	// costs one residual check plus the final solve.
	if validSeed(opts.SeedSupport, n, opts.MaxSupport) {
		var ok bool
		support, ok, err = seedFactors(d, qr, resid, col, support, inSupport, opts.SeedSupport)
		if err != nil {
			return nil, err
		}
		if ok && opts.SeedRelTol > 0 && mat.Norm2(resid) > opts.SeedRelTol*mat.Norm2(y) {
			ok = false // the field drifted past what the old support explains
		}
		if !ok {
			qr, resid, support, err = coldRestart(d, y, opts.MaxSupport, support, inSupport)
			if err != nil {
				return nil, err
			}
		}
	}

outer:
	for iters < opts.MaxIter && len(support) < opts.MaxSupport {
		if mat.Norm2(resid) <= opts.Tol {
			break
		}
		iters++
		// (a) e_new = Υ(e_r); (b) α_r = Φ† e_new; Φ orthonormal ⇒ Φ† = Φᵀ.
		if fused {
			if err := od.corrT(alphaR, resid); err != nil {
				return nil, err
			}
		} else {
			eNew, err = opts.Interp(locs, resid)
			if err != nil {
				return nil, err
			}
			if err := d.analyzeFull(alphaR, eNew); err != nil {
				return nil, err
			}
		}
		// (c–e) admit the PerIter most significant unused coefficients,
		// folding each admitted column into the OLS factors. Support
		// identification always uses the unweighted fit: a GLS fit inside
		// the loop leaves large residual at the noisy sensors it
		// deliberately under-weights, and the step-(b) scan would then
		// admit atoms that chase that noise. The GLS weighting of Fig. 6
		// step (e-ii) is applied once, on the final support, below.
		added := 0
		for added < opts.PerIter && len(support) < opts.MaxSupport {
			best, bestJ := 0.0, -1
			for j := 0; j < n; j++ {
				if inSupport[j] {
					continue
				}
				if c := math.Abs(alphaR[j]); c > best {
					best, bestJ = c, j
				}
			}
			if bestJ < 0 || best == 0 {
				break
			}
			if err := d.col(col, bestJ); err != nil {
				return nil, err
			}
			if err := qr.Append(col); err != nil {
				// Rank-deficient admission: the column adds nothing the
				// factors don't already span. Keep the factorization as is
				// and stop — no retraction solve needed.
				break outer
			}
			support = append(support, bestJ)
			inSupport[bestJ] = true
			// (f) e_r = x_S − Φ̃_K α_K, maintained by deflating against the
			// newly orthogonalized direction.
			if _, err := qr.DeflateLatest(resid); err != nil {
				return nil, err
			}
			added++
		}
		if added == 0 {
			break // nothing significant left to admit
		}
	}

	if len(support) == 0 {
		return zeroResult(d, y, iters), nil
	}
	coef, err := qr.Solve(y)
	if err != nil {
		return nil, err
	}
	// Fig. 6 step (e-ii): for heterogeneous sensors, refit the recovered
	// support with the noise-covariance-weighted GLS estimate.
	if opts.V != nil {
		sub := mat.New(d.rows(), len(support))
		if err := d.subInto(sub, support); err != nil {
			return nil, err
		}
		if gcoef, err := mat.WeightedLeastSquares(sub, y, opts.V); err == nil {
			coef = gcoef
		}
	}
	return packResultDict(d, support, coef, y, iters)
}
