package cs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/basis"
	"repro/internal/field"
	"repro/internal/mat"
)

func TestIHTExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	phi := basis.DCT(64)
	x, _, _ := sparseSignal(rng, phi, 4)
	locs, _ := RandomLocations(rng, 64, 28)
	y, _ := Measure(x, locs, rng, nil)
	res, err := IHT(phi, locs, y, IHTOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 1e-8 {
		t.Fatalf("IHT NMSE %v", nm)
	}
	if len(res.Support) > 4 {
		t.Fatalf("IHT support %d", len(res.Support))
	}
}

func TestIHTValidation(t *testing.T) {
	phi := basis.DCT(16)
	if _, err := IHT(phi, []int{1, 2}, []float64{1, 2}, IHTOptions{}); err == nil {
		t.Fatal("want K error")
	}
	if _, err := IHT(phi, []int{1}, []float64{1, 2}, IHTOptions{K: 1}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := IHT(phi, nil, nil, IHTOptions{K: 1}); err == nil {
		t.Fatal("want measurements error")
	}
}

func TestCoSaMPExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	phi := basis.DCT(64)
	x, _, _ := sparseSignal(rng, phi, 4)
	locs, _ := RandomLocations(rng, 64, 30)
	y, _ := Measure(x, locs, rng, nil)
	res, err := CoSaMP(phi, locs, y, CoSaMPOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 1e-10 {
		t.Fatalf("CoSaMP NMSE %v", nm)
	}
}

func TestCoSaMPClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	phi := basis.DCT(32)
	x, _, _ := sparseSignal(rng, phi, 2)
	locs, _ := RandomLocations(rng, 32, 9)
	y, _ := Measure(x, locs, rng, nil)
	// 3K > m forces an internal clamp rather than an error.
	res, err := CoSaMP(phi, locs, y, CoSaMPOptions{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Support) > 3 {
		t.Fatalf("clamped support %d", len(res.Support))
	}
	if _, err := CoSaMP(phi, locs, y, CoSaMPOptions{}); err == nil {
		t.Fatal("want K error")
	}
}

func TestCoSaMPNoisyComparable(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	phi := basis.DCT(128)
	x, _, _ := sparseSignal(rng, phi, 5)
	locs, _ := RandomLocations(rng, 128, 50)
	y, _ := Measure(x, locs, rng, []float64{0.02})
	res, err := CoSaMP(phi, locs, y, CoSaMPOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 0.02 {
		t.Fatalf("noisy CoSaMP NMSE %v", nm)
	}
}

func TestBPDNToleratesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	phi := basis.DCT(32)
	x, _, _ := sparseSignal(rng, phi, 3)
	locs, _ := RandomLocations(rng, 32, 16)
	sigma := 0.05
	y, _ := Measure(x, locs, rng, []float64{sigma})
	eps := 2 * sigma
	res, err := BPDN(phi, locs, y, eps, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 0.1 {
		t.Fatalf("BPDN NMSE %v", nm)
	}
	// Fidelity box respected at the sensors.
	a, _ := mat.SelectRows(phi, locs)
	pred, _ := mat.MulVec(a, res.Alpha)
	for i := range y {
		if math.Abs(pred[i]-y[i]) > eps+1e-6 {
			t.Fatalf("fidelity violated at %d: %v", i, math.Abs(pred[i]-y[i]))
		}
	}
}

func TestBPDNZeroEpsFallsBackToBP(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	phi := basis.DCT(24)
	x, _, _ := sparseSignal(rng, phi, 2)
	locs, _ := RandomLocations(rng, 24, 10)
	y, _ := Measure(x, locs, rng, nil)
	res, err := BPDN(phi, locs, y, 0, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 1e-8 {
		t.Fatalf("BPDN(eps=0) NMSE %v", nm)
	}
	if _, err := BPDN(phi, locs, y, -1, 1e-7); err == nil {
		t.Fatal("want eps error")
	}
}

func TestDecodersAgreeOnEasyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	phi := basis.DCT(48)
	x, _, _ := sparseSignal(rng, phi, 3)
	locs, _ := RandomLocations(rng, 48, 24)
	y, _ := Measure(x, locs, rng, nil)
	omp, err := OMP(phi, locs, y, 3, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	iht, err := IHT(phi, locs, y, IHTOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	cosamp, err := CoSaMP(phi, locs, y, CoSaMPOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"iht": iht, "cosamp": cosamp} {
		if d := mat.Norm2(mat.SubVec(r.Xhat, omp.Xhat)); d > 1e-6 {
			t.Fatalf("%s disagrees with OMP by %v", name, d)
		}
	}
}

func TestHardThresholdAndTopK(t *testing.T) {
	v := []float64{1, -5, 3, 0.5}
	hardThreshold(v, 2)
	if v[0] != 0 || v[1] != -5 || v[2] != 3 || v[3] != 0 {
		t.Fatalf("hardThreshold got %v", v)
	}
	if got := topKIndices([]float64{1, 2}, 0); got != nil {
		t.Fatalf("topK(0)=%v", got)
	}
	if got := topKIndices([]float64{1, 2}, 5); len(got) != 2 {
		t.Fatalf("topK over-len=%v", got)
	}
}

func driftingPlumeSeq(w, h, steps int, drift float64) [][]float64 {
	seq := make([][]float64, steps)
	for t := range seq {
		f := field.GenPlumes(w, h, 10, []field.Plume{{
			Row: 4 + drift*float64(t), Col: 6 + drift*0.8*float64(t), Sigma: 2.2, Amplitude: 25,
		}})
		seq[t] = f.Vector()
	}
	return seq
}

func TestJointSpatioTemporalBeatsPerStep(t *testing.T) {
	// Slowly drifting plume: joint decoding in the temporal⊗spatial basis
	// should beat independent per-step decoding at the same total budget.
	proto := field.New(12, 12)
	phi, err := proto.Operator2D(basis.KindDCT)
	if err != nil {
		t.Fatal(err)
	}
	seq := driftingPlumeSeq(12, 12, 8, 0.1)
	static, _, err := RecoverSequence(phi, seq, SequenceOptions{M: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	joint, _, err := RecoverSpatioTemporal(phi, seq, SpatioTemporalOptions{M: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, j := MeanNMSE(static), MeanNMSE(joint)
	if j >= s {
		t.Fatalf("joint NMSE %v not below static %v", j, s)
	}
	if j > 0.05 {
		t.Fatalf("joint NMSE %v too large", j)
	}
}

func TestJointRecoveryWithNoise(t *testing.T) {
	proto := field.New(10, 10)
	phi, err := proto.Operator2D(basis.KindDCT)
	if err != nil {
		t.Fatal(err)
	}
	seq := driftingPlumeSeq(10, 10, 6, 0.2)
	joint, recovered, err := RecoverSpatioTemporal(phi, seq, SpatioTemporalOptions{
		M: 20, NoiseSigma: 0.1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 6 || len(recovered[0]) != 100 {
		t.Fatal("recovered sequence shape wrong")
	}
	if nm := MeanNMSE(joint); nm > 0.05 {
		t.Fatalf("noisy joint NMSE %v", nm)
	}
}

func TestRecoverSequenceValidation(t *testing.T) {
	phi, err := basis.OperatorFor(basis.KindDCT, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverSequence(phi, nil, SequenceOptions{M: 4}); err == nil {
		t.Fatal("want empty error")
	}
	if _, _, err := RecoverSequence(phi, [][]float64{make([]float64, 8)}, SequenceOptions{M: 4}); err == nil {
		t.Fatal("want length error")
	}
	if _, _, err := RecoverSequence(phi, [][]float64{make([]float64, 16)}, SequenceOptions{}); err == nil {
		t.Fatal("want M error")
	}
	if _, _, err := RecoverSpatioTemporal(phi, nil, SpatioTemporalOptions{M: 4}); err == nil {
		t.Fatal("want empty error")
	}
	if _, _, err := RecoverSpatioTemporal(phi, [][]float64{make([]float64, 16)}, SpatioTemporalOptions{}); err == nil {
		t.Fatal("want M error")
	}
}

func TestOMPCentered(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	phi := basis.DCT(32)
	// Signal = mean + sparse deviation.
	mu := make([]float64, 32)
	for i := range mu {
		mu[i] = 5
	}
	dev, _, _ := sparseSignal(rng, phi, 2)
	x := mat.AddVec(mu, dev)
	locs, _ := RandomLocations(rng, 32, 14)
	y, _ := Measure(x, locs, rng, nil)
	res, err := OMPCentered(phi, locs, y, mu, 2, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 1e-10 {
		t.Fatalf("centered NMSE %v", nm)
	}
	if _, err := OMPCentered(phi, locs, y, mu[:3], 2, 0); err == nil {
		t.Fatal("want mean-length error")
	}
}

func BenchmarkIHT256(b *testing.B) {
	rng := rand.New(rand.NewSource(39))
	phi := basis.DCT(256)
	x, _, _ := sparseSignal(rng, phi, 8)
	locs, _ := RandomLocations(rng, 256, 48)
	y, _ := Measure(x, locs, rng, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IHT(phi, locs, y, IHTOptions{K: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoSaMP256(b *testing.B) {
	rng := rand.New(rand.NewSource(40))
	phi := basis.DCT(256)
	x, _, _ := sparseSignal(rng, phi, 8)
	locs, _ := RandomLocations(rng, 256, 48)
	y, _ := Measure(x, locs, rng, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CoSaMP(phi, locs, y, CoSaMPOptions{K: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
