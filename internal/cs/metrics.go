package cs

import (
	"errors"
	"math"

	"repro/internal/basis"
	"repro/internal/mat"
)

// RMSE returns the root-mean-square error between truth and estimate.
func RMSE(x, xhat []float64) float64 {
	if len(x) != len(xhat) || len(x) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range x {
		d := x[i] - xhat[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// NMSE returns ‖x − x̂‖² / ‖x‖², the normalized mean-square error used for
// the Fig. 4 reconstruction-error curve. Returns +Inf for a zero truth
// signal with nonzero estimate.
func NMSE(x, xhat []float64) float64 {
	if len(x) != len(xhat) || len(x) == 0 {
		return math.NaN()
	}
	num, den := 0.0, 0.0
	for i := range x {
		d := x[i] - xhat[i]
		num += d * d
		den += x[i] * x[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// Accuracy returns the reconstruction accuracy 1 − ‖x−x̂‖/‖x‖ (clamped to
// [0,1]), the "accuracy of reconstruction" axis of the paper's Fig. 4.
func Accuracy(x, xhat []float64) float64 {
	n := NMSE(x, xhat)
	if math.IsNaN(n) {
		return math.NaN()
	}
	a := 1 - math.Sqrt(n)
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// SNRdB returns the reconstruction signal-to-noise ratio in decibels.
func SNRdB(x, xhat []float64) float64 {
	n := NMSE(x, xhat)
	if n == 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(n)
}

// PSNRdB returns the peak signal-to-noise ratio in decibels for a signal
// with the given peak value.
func PSNRdB(x, xhat []float64, peak float64) float64 {
	r := RMSE(x, xhat)
	if r == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(peak/r)
}

// ErrorBreakdown decomposes the total reconstruction error into the
// paper's three components (§4): the K-term approximation error ε_a, a
// conditioning indicator ε_c (the condition number of the sensing
// submatrix Φ̃_K — large values amplify noise), and the measurement noise
// floor ε_m. Total is the realized reconstruction NMSE.
type ErrorBreakdown struct {
	ApproxNMSE float64 // ε_a: NMSE of the best K-term approximation of x
	Condition  float64 // ε_c indicator: cond(Φ̃_K) on the recovered support
	NoiseNMSE  float64 // ε_m: measurement-noise energy relative to signal
	TotalNMSE  float64 // realized NMSE of the reconstruction
}

// Diagnose computes the error breakdown for a completed recovery against
// ground truth x. noiseSigmas are the per-measurement noise standard
// deviations used (nil → 0).
func Diagnose(phi *mat.Matrix, x []float64, locs []int, res *Result, noiseSigmas []float64) (*ErrorBreakdown, error) {
	if res == nil {
		return nil, errors.New("cs: nil result")
	}
	k := len(res.Support)
	bd := &ErrorBreakdown{TotalNMSE: NMSE(x, res.Xhat)}
	// ε_a: best K-term approximation in the basis.
	alpha, err := basis.Analyze(phi, x)
	if err != nil {
		return nil, err
	}
	sparse, _ := basis.SparsifyTopK(alpha, k)
	xk, err := basis.Synthesize(phi, sparse)
	if err != nil {
		return nil, err
	}
	bd.ApproxNMSE = NMSE(x, xk)
	// ε_c: conditioning of the sensing submatrix on the recovered support.
	if k > 0 {
		a, err := sensingMatrix(phi, locs)
		if err != nil {
			return nil, err
		}
		sub, err := mat.SelectCols(a, res.Support)
		if err != nil {
			return nil, err
		}
		cond, err := mat.ConditionEstimate(sub)
		if err != nil {
			return nil, err
		}
		bd.Condition = cond
	}
	// ε_m: noise energy relative to signal energy at the sensors.
	sigE := 0.0
	for _, l := range locs {
		sigE += x[l] * x[l]
	}
	noiseE := 0.0
	for i := range locs {
		s := 0.0
		if len(noiseSigmas) == 1 {
			s = noiseSigmas[0]
		} else if len(noiseSigmas) > i {
			s = noiseSigmas[i]
		}
		noiseE += s * s
	}
	if sigE > 0 {
		bd.NoiseNMSE = noiseE / sigE
	}
	return bd, nil
}

// MutualCoherence returns µ(Φ̃) = max_{i≠j} |⟨φ̃ᵢ, φ̃ⱼ⟩| / (‖φ̃ᵢ‖‖φ̃ⱼ‖),
// the worst normalized correlation between distinct columns of the sensing
// matrix at the given locations. Low coherence is the classical sufficient
// condition for sparse recovery (exact for K < (1 + 1/µ)/2), so brokers
// can use it to sanity-check a sensor placement before trusting a
// reconstruction. Zero columns are skipped.
func MutualCoherence(phi *mat.Matrix, locs []int) (float64, error) {
	a, err := sensingMatrix(phi, locs)
	if err != nil {
		return 0, err
	}
	m, n := a.Rows, a.Cols
	norms := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			v := a.Data[i*n+j]
			s += v * v
		}
		norms[j] = math.Sqrt(s)
	}
	mu := 0.0
	for j1 := 0; j1 < n; j1++ {
		if norms[j1] == 0 {
			continue
		}
		for j2 := j1 + 1; j2 < n; j2++ {
			if norms[j2] == 0 {
				continue
			}
			dot := 0.0
			for i := 0; i < m; i++ {
				dot += a.Data[i*n+j1] * a.Data[i*n+j2]
			}
			if c := math.Abs(dot) / (norms[j1] * norms[j2]); c > mu {
				mu = c
			}
		}
	}
	return mu, nil
}

// CoherenceSparsityBound returns the largest K for which mutual coherence
// µ guarantees exact recovery: K < (1 + 1/µ)/2. Returns a large bound for
// µ = 0 (orthogonal columns).
func CoherenceSparsityBound(mu float64) int {
	if mu <= 0 {
		return math.MaxInt32
	}
	k := int(math.Ceil((1+1/mu)/2)) - 1
	if k < 0 {
		k = 0
	}
	return k
}

// CompressionRatio returns N/M, the paper's compression ratio for M
// measurements of an N-point field.
func CompressionRatio(n, m int) float64 {
	if m == 0 {
		return math.Inf(1)
	}
	return float64(n) / float64(m)
}

// TheoreticalM returns the O(K·log N) measurement count the paper cites as
// sufficient for recovery (with the customary constant c).
func TheoreticalM(k, n int, c float64) int {
	if k <= 0 || n <= 1 {
		return 0
	}
	m := int(math.Ceil(c * float64(k) * math.Log(float64(n))))
	if m > n {
		m = n
	}
	return m
}
