package cs

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/mat"
)

// The decode fuzz targets feed the sparse decoders adversarial numerics:
// NaN, ±Inf, denormals, rank-deficient and zero matrices, out-of-range
// sensor locations, and invalid sparsity levels. The contract under test
// is "error, never panic" — a broker decoding hostile or corrupt sensor
// data must stay up — plus the structural invariants of any Result that
// is returned.

// fuzzProblem is a tiny decode problem derived from raw fuzz bytes.
type fuzzProblem struct {
	phi  *mat.Matrix
	locs []int
	y    []float64
	k    int
}

// newFuzzProblem maps fuzz bytes onto a problem. The first four bytes
// pick dimensions and sparsity (including invalid values, to walk the
// error paths); the rest become basis entries, sensor locations, and
// measurements. Float64s come straight from the bit pattern, so the
// engine reaches NaN, ±Inf, and denormals for free.
func newFuzzProblem(data []byte) (fuzzProblem, bool) {
	if len(data) < 4 {
		return fuzzProblem{}, false
	}
	n := 1 + int(data[0]%8)  // signal length (basis rows)
	c := 1 + int(data[1]%8)  // basis columns
	m := 1 + int(data[2]%8)  // measurement count
	k := int(data[3]%10) - 1 // -1..8: k <= 0 must error, not panic
	data = data[4:]
	next := func() float64 {
		if len(data) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data))
			data = data[8:]
			return v
		}
		if len(data) > 0 {
			v := float64(int8(data[0]))
			data = data[1:]
			return v
		}
		return 0
	}
	phi := mat.New(n, c)
	for i := range phi.Data {
		phi.Data[i] = next()
	}
	locs := make([]int, m)
	for i := range locs {
		b := byte(i)
		if len(data) > 0 {
			b = data[0]
			data = data[1:]
		}
		locs[i] = int(b%16) - 2 // mostly in range; negatives and overshoots must error
	}
	y := make([]float64, m)
	for i := range y {
		y[i] = next()
	}
	return fuzzProblem{phi: phi, locs: locs, y: y, k: k}, true
}

// checkResult asserts the structural invariants every successful decode
// must satisfy no matter how degenerate the input values were.
func checkResult(t *testing.T, p fuzzProblem, res *Result) {
	t.Helper()
	if res == nil {
		t.Fatal("nil result without error")
	}
	if len(res.Alpha) != p.phi.Cols {
		t.Fatalf("Alpha length %d, want %d", len(res.Alpha), p.phi.Cols)
	}
	if len(res.Xhat) != p.phi.Rows {
		t.Fatalf("Xhat length %d, want %d", len(res.Xhat), p.phi.Rows)
	}
	seen := make(map[int]bool, len(res.Support))
	for _, j := range res.Support {
		if j < 0 || j >= p.phi.Cols {
			t.Fatalf("support index %d outside [0,%d)", j, p.phi.Cols)
		}
		if seen[j] {
			t.Fatalf("duplicate support index %d", j)
		}
		seen[j] = true
	}
	if res.Residual < 0 { // NaN-safe: NaN compares false
		t.Fatalf("negative residual %v", res.Residual)
	}
	if res.Iterations < 0 {
		t.Fatalf("negative iteration count %d", res.Iterations)
	}
}

func FuzzDecodeOMP(f *testing.F) {
	f.Add([]byte("\x06\x05\x04\x03ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnop0123456789"))
	f.Add([]byte("\x04\x04\x03\x02" +
		"\x00\x00\x00\x00\x00\x00\xf0\x7f" + // +Inf
		"\xff\xff\xff\xff\xff\xff\xff\xff" + // NaN
		"\x00\x00\x00\x00\x00\x00\xf0\xff" + // -Inf
		"\x01\x00\x00\x00\x00\x00\x00\x00")) // denormal
	f.Add([]byte("\x01\x01\x01\x01"))         // all-zero 1x1 problem
	f.Add([]byte("\x08\x08\x08\x00zzzzzzzz")) // k == -1: must error cleanly
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := newFuzzProblem(data)
		if !ok {
			return
		}
		res, err := OMP(p.phi, p.locs, p.y, p.k, 1e-9)
		if err != nil {
			return
		}
		checkResult(t, p, res)
		if len(res.Support) > len(p.locs) {
			t.Fatalf("OMP support size %d exceeds measurement count %d", len(res.Support), len(p.locs))
		}
	})
}

func FuzzDecodeIHT(f *testing.F) {
	f.Add([]byte("\x05\x06\x04\x04qwertyuiopasdfghjklzxcvbnm1234567890QWERTY"))
	f.Add([]byte("\x03\x03\x02\x03" +
		"\xff\xff\xff\xff\xff\xff\xff\xff" + // NaN
		"\x00\x00\x00\x00\x00\x00\xf0\x7f")) // +Inf
	f.Add([]byte("\x01\x01\x01\x00")) // k == -1 on the minimal problem
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := newFuzzProblem(data)
		if !ok {
			return
		}
		res, err := IHT(p.phi, p.locs, p.y, IHTOptions{K: p.k, MaxIter: 50})
		if err != nil {
			return
		}
		checkResult(t, p, res)
	})
}
