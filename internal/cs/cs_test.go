package cs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/basis"
	"repro/internal/mat"
)

// sparseSignal builds an exactly k-sparse signal in the given basis and
// returns the signal, coefficients, and support.
func sparseSignal(rng *rand.Rand, phi *mat.Matrix, k int) ([]float64, []float64, []int) {
	n := phi.Cols
	alpha := make([]float64, n)
	support := rng.Perm(n)[:k]
	for _, j := range support {
		v := 1 + rng.Float64()*2
		if rng.Intn(2) == 0 {
			v = -v
		}
		alpha[j] = v
	}
	x, _ := basis.Synthesize(phi, alpha)
	return x, alpha, support
}

func TestOMPExactRecoveryNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	phi := basis.DCT(64)
	x, alpha, _ := sparseSignal(rng, phi, 4)
	locs, err := RandomLocations(rng, 64, 24)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Measure(x, locs, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OMP(phi, locs, y, 4, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 1e-18 {
		t.Fatalf("NMSE %v, want ~0", nm)
	}
	if d := mat.Norm2(mat.SubVec(alpha, res.Alpha)); d > 1e-8 {
		t.Fatalf("coefficient error %v", d)
	}
	if len(res.Support) != 4 {
		t.Fatalf("support size %d", len(res.Support))
	}
}

func TestOMPNoisyRecoveryDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	phi := basis.DCT(128)
	x, _, _ := sparseSignal(rng, phi, 5)
	locs, _ := RandomLocations(rng, 128, 50)
	y, _ := Measure(x, locs, rng, []float64{0.02})
	res, err := OMP(phi, locs, y, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 0.02 {
		t.Fatalf("noisy NMSE %v too large", nm)
	}
}

func TestOMPErrorsAndEdgeCases(t *testing.T) {
	phi := basis.DCT(16)
	if _, err := OMP(phi, nil, nil, 3, 0); err != ErrNoMeasurements {
		t.Fatalf("err=%v, want ErrNoMeasurements", err)
	}
	if _, err := OMP(phi, []int{1, 2}, []float64{1}, 3, 0); err == nil {
		t.Fatal("want measurement length error")
	}
	if _, err := OMP(phi, []int{1, 2}, []float64{1, 2}, 0, 0); err == nil {
		t.Fatal("want sparsity error")
	}
	// Zero measurements → zero reconstruction.
	res, err := OMP(phi, []int{1, 2, 3}, []float64{0, 0, 0}, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Norm2(res.Xhat) != 0 {
		t.Fatalf("zero input should give zero reconstruction, got %v", res.Xhat)
	}
}

func TestOMPSupportCappedByMeasurements(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	phi := basis.DCT(32)
	x, _, _ := sparseSignal(rng, phi, 8)
	locs, _ := RandomLocations(rng, 32, 6)
	y, _ := Measure(x, locs, rng, nil)
	res, err := OMP(phi, locs, y, 20, 0) // ask for more atoms than measurements
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Support) > 6 {
		t.Fatalf("support %d exceeds measurement count", len(res.Support))
	}
}

func TestBasisPursuitExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	phi := basis.DCT(32)
	x, alpha, _ := sparseSignal(rng, phi, 3)
	locs, _ := RandomLocations(rng, 32, 14)
	y, _ := Measure(x, locs, rng, nil)
	res, err := BasisPursuit(phi, locs, y, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.Norm2(mat.SubVec(alpha, res.Alpha)); d > 1e-5 {
		t.Fatalf("BP coefficient error %v", d)
	}
	if nm := NMSE(x, res.Xhat); nm > 1e-10 {
		t.Fatalf("BP NMSE %v", nm)
	}
}

func TestBasisPursuitMatchesOMPOnEasyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	phi := basis.DCT(24)
	x, _, _ := sparseSignal(rng, phi, 2)
	locs, _ := RandomLocations(rng, 24, 10)
	y, _ := Measure(x, locs, rng, nil)
	bp, err := BasisPursuit(phi, locs, y, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	omp, err := OMP(phi, locs, y, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.Norm2(mat.SubVec(bp.Xhat, omp.Xhat)); d > 1e-5 {
		t.Fatalf("BP and OMP disagree by %v", d)
	}
}

func TestFixedSupportOLSExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	phi := basis.DCT(48)
	x, alpha, support := sparseSignal(rng, phi, 5)
	locs, _ := RandomLocations(rng, 48, 15)
	y, _ := Measure(x, locs, rng, nil)
	res, err := FixedSupportOLS(phi, locs, y, support)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.Norm2(mat.SubVec(alpha, res.Alpha)); d > 1e-8 {
		t.Fatalf("OLS coefficient error %v", d)
	}
}

func TestFixedSupportBadSupport(t *testing.T) {
	phi := basis.DCT(8)
	locs := []int{0, 1, 2, 3}
	y := []float64{1, 2, 3, 4}
	if _, err := FixedSupportOLS(phi, locs, y, []int{9}); err == nil {
		t.Fatal("want range error")
	}
	if _, err := FixedSupportOLS(phi, locs, y, []int{1, 1}); err == nil {
		t.Fatal("want duplicate error")
	}
}

func TestGLSBeatsOLSUnderHeterogeneousNoise(t *testing.T) {
	// Average over trials: GLS should beat OLS when half the sensors are
	// an order of magnitude noisier and V reflects that.
	rng := rand.New(rand.NewSource(7))
	phi := basis.DCT(64)
	wins, trials := 0, 20
	for trial := 0; trial < trials; trial++ {
		x, _, support := sparseSignal(rng, phi, 4)
		locs, _ := RandomLocations(rng, 64, 24)
		sigmas := make([]float64, 24)
		for i := range sigmas {
			if i%2 == 0 {
				sigmas[i] = 0.01
			} else {
				sigmas[i] = 1.0
			}
		}
		y, _ := Measure(x, locs, rng, sigmas)
		v := NoiseCovariance(sigmas, 1e-6)
		gls, err := FixedSupportGLS(phi, locs, y, support, v)
		if err != nil {
			t.Fatal(err)
		}
		ols, err := FixedSupportOLS(phi, locs, y, support)
		if err != nil {
			t.Fatal(err)
		}
		if NMSE(x, gls.Xhat) < NMSE(x, ols.Xhat) {
			wins++
		}
	}
	if wins < trials*3/4 {
		t.Fatalf("GLS beat OLS in only %d/%d trials", wins, trials)
	}
}

func TestCHSRecoversSparseSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	phi := basis.DCT(64)
	x, _, _ := sparseSignal(rng, phi, 4)
	locs, _ := RandomLocations(rng, 64, 24)
	y, _ := Measure(x, locs, rng, nil)
	res, err := CHS(phi, locs, y, CHSOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 1e-12 {
		t.Fatalf("CHS NMSE %v", nm)
	}
	if res.Iterations == 0 {
		t.Fatal("CHS reported zero iterations")
	}
}

func TestCHSWithGLSUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	phi := basis.DCT(64)
	x, _, _ := sparseSignal(rng, phi, 4)
	locs, _ := RandomLocations(rng, 64, 28)
	sigmas := make([]float64, 28)
	for i := range sigmas {
		sigmas[i] = 0.02 + 0.3*float64(i%2)
	}
	y, _ := Measure(x, locs, rng, sigmas)
	res, err := CHS(phi, locs, y, CHSOptions{
		Tol: 1e-6, MaxSupport: 4, V: NoiseCovariance(sigmas, 1e-6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 0.05 {
		t.Fatalf("CHS-GLS NMSE %v", nm)
	}
}

func TestCHSPerIterBatching(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	phi := basis.DCT(64)
	x, _, _ := sparseSignal(rng, phi, 6)
	locs, _ := RandomLocations(rng, 64, 30)
	y, _ := Measure(x, locs, rng, nil)
	res, err := CHS(phi, locs, y, CHSOptions{PerIter: 3, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if nm := NMSE(x, res.Xhat); nm > 1e-10 {
		t.Fatalf("batched CHS NMSE %v", nm)
	}
	// Batched admission must need fewer outer iterations than atoms.
	if res.Iterations > 6 {
		t.Fatalf("batched CHS used %d iterations for 6 atoms", res.Iterations)
	}
}

func TestCHSZeroSignal(t *testing.T) {
	phi := basis.DCT(16)
	res, err := CHS(phi, []int{0, 5, 9}, []float64{0, 0, 0}, CHSOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if mat.Norm2(res.Xhat) != 0 {
		t.Fatal("zero measurements should give zero field")
	}
}

func TestZeroFillInterpolator(t *testing.T) {
	interp := ZeroFill(8)
	out, err := interp([]int{1, 5}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2, 0, 0, 0, 3, 0, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("ZeroFill got %v", out)
		}
	}
	if _, err := interp([]int{9}, []float64{1}); err == nil {
		t.Fatal("want range error")
	}
	if _, err := interp([]int{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length error")
	}
}

func TestRandomLocations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	locs, err := RandomLocations(rng, 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, l := range locs {
		if l < 0 || l >= 100 {
			t.Fatalf("location %d out of range", l)
		}
		if seen[l] {
			t.Fatalf("duplicate location %d", l)
		}
		seen[l] = true
	}
	if _, err := RandomLocations(rng, 5, 6); err == nil {
		t.Fatal("want m>n error")
	}
	if _, err := RandomLocations(rng, 5, -1); err == nil {
		t.Fatal("want negative error")
	}
}

func TestMeasureBroadcastAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := []float64{1, 2, 3, 4}
	y, err := Measure(x, []int{0, 3}, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 1 || y[1] != 4 {
		t.Fatalf("noiseless measure got %v", y)
	}
	if _, err := Measure(x, []int{5}, rng, nil); err == nil {
		t.Fatal("want range error")
	}
	// Broadcast sigma actually perturbs.
	y2, _ := Measure(x, []int{0, 1, 2, 3}, rng, []float64{0.5})
	if mat.Norm2(mat.SubVec(y2, x)) == 0 {
		t.Fatal("broadcast noise had no effect")
	}
}

func TestMetricsKnownValues(t *testing.T) {
	x := []float64{3, 4}
	if v := NMSE(x, x); v != 0 {
		t.Fatalf("NMSE(x,x)=%v", v)
	}
	zero := []float64{0, 0}
	if v := NMSE(x, zero); math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMSE vs zero = %v, want 1", v)
	}
	if v := RMSE(x, zero); math.Abs(v-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE=%v", v)
	}
	if v := Accuracy(x, x); v != 1 {
		t.Fatalf("Accuracy(x,x)=%v", v)
	}
	if v := Accuracy(x, []float64{-3, -4}); v != 0 {
		t.Fatalf("Accuracy of anti-signal = %v, want clamp 0", v)
	}
	if !math.IsInf(SNRdB(x, x), 1) {
		t.Fatal("SNR of perfect reconstruction should be +Inf")
	}
	if v := SNRdB(x, zero); math.Abs(v-0) > 1e-9 {
		t.Fatalf("SNR vs zero = %v dB, want 0", v)
	}
	if !math.IsInf(PSNRdB(x, x, 4), 1) {
		t.Fatal("PSNR of perfect reconstruction should be +Inf")
	}
	if math.IsNaN(NMSE(x, x)) || !math.IsNaN(NMSE(x, []float64{1})) {
		t.Fatal("NMSE NaN handling wrong")
	}
	if v := NMSE(zero, zero); v != 0 {
		t.Fatalf("NMSE(0,0)=%v", v)
	}
	if !math.IsInf(NMSE(zero, x), 1) {
		t.Fatal("NMSE(0,x)!=Inf")
	}
}

func TestCompressionRatioAndTheoreticalM(t *testing.T) {
	if CompressionRatio(256, 32) != 8 {
		t.Fatal("CompressionRatio wrong")
	}
	if !math.IsInf(CompressionRatio(10, 0), 1) {
		t.Fatal("CompressionRatio(_, 0) should be Inf")
	}
	m := TheoreticalM(5, 256, 1.5)
	want := int(math.Ceil(1.5 * 5 * math.Log(256)))
	if m != want {
		t.Fatalf("TheoreticalM=%d want %d", m, want)
	}
	if TheoreticalM(0, 256, 1) != 0 || TheoreticalM(5, 1, 1) != 0 {
		t.Fatal("degenerate TheoreticalM should be 0")
	}
	if TheoreticalM(1000, 16, 2) != 16 {
		t.Fatal("TheoreticalM should clamp at n")
	}
}

func TestDiagnose(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	phi := basis.DCT(64)
	x, _, _ := sparseSignal(rng, phi, 4)
	locs, _ := RandomLocations(rng, 64, 24)
	sigmas := []float64{0.01}
	y, _ := Measure(x, locs, rng, sigmas)
	res, err := OMP(phi, locs, y, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := Diagnose(phi, x, locs, res, sigmas)
	if err != nil {
		t.Fatal(err)
	}
	if bd.ApproxNMSE > 1e-18 {
		t.Fatalf("ε_a=%v for exactly-sparse signal, want 0", bd.ApproxNMSE)
	}
	if bd.Condition < 1 {
		t.Fatalf("condition %v < 1", bd.Condition)
	}
	if bd.NoiseNMSE <= 0 {
		t.Fatal("noise NMSE should be positive")
	}
	if bd.TotalNMSE < 0 {
		t.Fatal("total NMSE negative")
	}
	if _, err := Diagnose(phi, x, locs, nil, nil); err == nil {
		t.Fatal("want nil-result error")
	}
}

func TestChooseKCrossVal(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	phi := basis.DCT(64)
	x, _, _ := sparseSignal(rng, phi, 4)
	locs, _ := RandomLocations(rng, 64, 32)
	y, _ := Measure(x, locs, rng, []float64{0.01})
	k, err := ChooseKCrossVal(phi, locs, y, 12, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	if k < 3 || k > 7 {
		t.Fatalf("cross-validated K=%d, want near 4", k)
	}
	if _, err := ChooseKCrossVal(phi, locs[:2], y[:2], 4, 0.25, rng); err == nil {
		t.Fatal("want too-few-measurements error")
	}
}

func TestLowFrequencySupport(t *testing.T) {
	s := LowFrequencySupport(3)
	if len(s) != 3 || s[0] != 0 || s[2] != 2 {
		t.Fatalf("LowFrequencySupport=%v", s)
	}
}

// Statistical test: exact recovery succeeds in the overwhelming majority of
// random instances when M = 6K with N=64 (the regime the paper's Fig. 4
// operates in).
func TestRecoveryProbability(t *testing.T) {
	phi := basis.DCT(64)
	ok := 0
	const trials = 25
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		x, _, _ := sparseSignal(rng, phi, 4)
		locs, _ := RandomLocations(rng, 64, 24)
		y, _ := Measure(x, locs, rng, nil)
		res, err := OMP(phi, locs, y, 4, 1e-12)
		if err != nil {
			continue
		}
		if NMSE(x, res.Xhat) < 1e-10 {
			ok++
		}
	}
	if ok < trials-3 {
		t.Fatalf("exact recovery in only %d/%d trials", ok, trials)
	}
}

// Property: every recovery result has a valid, duplicate-free support of
// size ≤ min(k, M), and Alpha is zero off-support.
func TestPropResultInvariants(t *testing.T) {
	phi := basis.DCT(32)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		m := k + 2 + rng.Intn(10)
		x, _, _ := sparseSignal(rng, phi, k)
		locs, err := RandomLocations(rng, 32, m)
		if err != nil {
			return false
		}
		y, err := Measure(x, locs, rng, []float64{0.05})
		if err != nil {
			return false
		}
		res, err := OMP(phi, locs, y, k, 0)
		if err != nil {
			return false
		}
		if len(res.Support) > k || len(res.Support) > m {
			return false
		}
		seen := map[int]bool{}
		for _, j := range res.Support {
			if j < 0 || j >= 32 || seen[j] {
				return false
			}
			seen[j] = true
		}
		for j, a := range res.Alpha {
			if a != 0 && !seen[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOMP256M30(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	phi := basis.DCT(256)
	x, _, _ := sparseSignal(rng, phi, 8)
	locs, _ := RandomLocations(rng, 256, 30)
	y, _ := Measure(x, locs, rng, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OMP(phi, locs, y, 8, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBasisPursuit32(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	phi := basis.DCT(32)
	x, _, _ := sparseSignal(rng, phi, 3)
	locs, _ := RandomLocations(rng, 32, 14)
	y, _ := Measure(x, locs, rng, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BasisPursuit(phi, locs, y, 1e-7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCHS256(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	phi := basis.DCT(256)
	x, _, _ := sparseSignal(rng, phi, 8)
	locs, _ := RandomLocations(rng, 256, 40)
	y, _ := Measure(x, locs, rng, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CHS(phi, locs, y, CHSOptions{Tol: 1e-10}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMutualCoherence(t *testing.T) {
	// Full sampling of an orthonormal basis has zero coherence.
	phi := basis.DCT(16)
	all := make([]int, 16)
	for i := range all {
		all[i] = i
	}
	mu, err := MutualCoherence(phi, all)
	if err != nil {
		t.Fatal(err)
	}
	if mu > 1e-10 {
		t.Fatalf("full-sampling coherence %v, want 0", mu)
	}
	// Subsampling raises coherence but keeps it below 1 for distinct cols.
	rng := rand.New(rand.NewSource(41))
	locs, _ := RandomLocations(rng, 16, 8)
	mu, err = MutualCoherence(phi, locs)
	if err != nil {
		t.Fatal(err)
	}
	if mu <= 0 || mu > 1+1e-12 {
		t.Fatalf("subsampled coherence %v outside (0,1]", mu)
	}
	if _, err := MutualCoherence(phi, nil); err == nil {
		t.Fatal("want no-measurements error")
	}
}

func TestCoherenceSparsityBound(t *testing.T) {
	if CoherenceSparsityBound(0) < 1<<20 {
		t.Fatal("zero coherence should allow huge K")
	}
	// µ = 1/3 → K < (1+3)/2 = 2 → bound 1.
	if got := CoherenceSparsityBound(1.0 / 3); got != 1 {
		t.Fatalf("bound %d, want 1", got)
	}
	// µ = 1 → K < 1 → bound 0.
	if got := CoherenceSparsityBound(1); got != 0 {
		t.Fatalf("bound %d, want 0", got)
	}
}
