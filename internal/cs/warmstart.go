package cs

import (
	"repro/internal/mat"
)

// Warm-start plumbing shared by the OMP and CHS cores. A seed is a support
// recovered by an earlier decode of the same dictionary (Result.Support,
// in admission order). Seeding replays exactly the Append/DeflateLatest
// sequence the greedy loop would have performed for those columns — the
// correlation scans it skips never touch the QR factors or the residual —
// so a seed that matches what the cold decode would have admitted leaves
// the decoder in a bit-identical state.

// validSeed reports whether a seed can be folded into the factors at all:
// non-empty, within the support cap, all indices in range and distinct.
// Invalid seeds are silently discarded (the caller decodes cold): a stale
// support from a differently-sized window is an expected input, not an
// error.
func validSeed(seed []int, n, maxSupport int) bool {
	if len(seed) == 0 || len(seed) > maxSupport {
		return false
	}
	seen := make(map[int]struct{}, len(seed))
	for _, j := range seed {
		if j < 0 || j >= n {
			return false
		}
		if _, dup := seen[j]; dup {
			return false
		}
		seen[j] = struct{}{}
	}
	return true
}

// seedFactors folds the seed columns into the incremental-QR factors and
// deflates the residual, in seed order. It returns the grown support and
// ok=false when a seed column is linearly dependent on its predecessors
// (the caller restarts cold). Hard errors (dictionary access on a
// validated index) propagate.
func seedFactors(d dict, qr *mat.IncrementalQR, resid, col []float64, support []int, inSupport []bool, seed []int) ([]int, bool, error) {
	for _, j := range seed {
		if err := d.col(col, j); err != nil {
			return support, false, err
		}
		if err := qr.Append(col); err != nil {
			return support, false, nil // rank-deficient seed: decode cold
		}
		support = append(support, j)
		inSupport[j] = true
		if _, err := qr.DeflateLatest(resid); err != nil {
			return support, false, err
		}
	}
	return support, true, nil
}

// coldRestart discards a failed seed: fresh factors, full residual, empty
// support. The inSupport marks set during seeding are cleared in place.
func coldRestart(d dict, y []float64, maxSupport int, support []int, inSupport []bool) (*mat.IncrementalQR, []float64, []int, error) {
	for _, j := range support {
		inSupport[j] = false
	}
	qr, err := mat.NewIncrementalQR(d.rows(), maxSupport)
	if err != nil {
		return nil, nil, nil, err
	}
	return qr, mat.CloneVec(y), support[:0], nil
}
