package cs

import (
	"sync"

	"repro/internal/mat"
)

// Sensing-matrix cache: Φ̃ = Φ(L,:) depends only on the basis matrix and
// the measurement locations, and several workloads decode repeatedly with
// the same pair — ChooseKCrossVal sweeps K over one gather, CHS-then-GLS
// refits one support, A6-style adaptive loops re-decode a window. Keyed by
// the basis identity (bases are themselves memoized in internal/basis, so
// pointer identity is stable) plus an FNV hash of the locations; the stored
// locations are compared on every hit so a hash collision can never return
// the wrong matrix.
//
// Cached sensing matrices are SHARED and read-only, like the bases.

const sensingCacheCap = 64

type sensingKey struct {
	phi  *mat.Matrix
	hash uint64
	m    int
}

type sensingEntry struct {
	locs []int
	a    *mat.Matrix
}

var (
	sensingMu    sync.RWMutex
	sensingCache = make(map[sensingKey]*sensingEntry)
)

func hashLocs(locs []int) uint64 {
	// FNV-1a over the location indices.
	h := uint64(14695981039346656037)
	for _, l := range locs {
		h ^= uint64(l)
		h *= 1099511628211
	}
	return h
}

func sameLocs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// sensingMatrix returns Φ̃ = Φ(L, :), the M×N matrix of basis rows at the
// sensor locations (paper Eq. 7 before column selection), memoized per
// (Φ, L). The returned matrix is shared: callers must not mutate it.
func sensingMatrix(phi *mat.Matrix, locs []int) (*mat.Matrix, error) {
	if len(locs) == 0 {
		return nil, ErrNoMeasurements
	}
	key := sensingKey{phi: phi, hash: hashLocs(locs), m: len(locs)}
	sensingMu.RLock()
	e, ok := sensingCache[key]
	sensingMu.RUnlock()
	if ok && sameLocs(e.locs, locs) {
		return e.a, nil
	}
	a, err := mat.SelectRows(phi, locs)
	if err != nil {
		return nil, err
	}
	sensingMu.Lock()
	if len(sensingCache) >= sensingCacheCap {
		for old := range sensingCache {
			delete(sensingCache, old)
			break
		}
	}
	sensingCache[key] = &sensingEntry{locs: append([]int(nil), locs...), a: a}
	sensingMu.Unlock()
	return a, nil
}

// ResetSensingCache drops all memoized sensing matrices.
func ResetSensingCache() {
	sensingMu.Lock()
	sensingCache = make(map[sensingKey]*sensingEntry)
	sensingMu.Unlock()
}
