package cs

// Spatio-temporal recovery: the paper's framework performs "multi-tiered
// data aggregation of spatio-temporal sparse fields" and "jointly
// perform[s] spatio-temporal compressive sensing". Two decoders:
//
//   - RecoverSequence: the per-snapshot baseline — each time step decoded
//     independently in the spatial basis.
//   - RecoverSpatioTemporal: joint decoding — the whole T-step sequence is
//     one signal, sparse in the (temporal DCT ⊗ spatial basis) product,
//     so temporal correlation buys accuracy at the same total budget
//     (ablation A5 quantifies the win).
//
// A note for maintainers: an innovation-tracking decoder (decode
// x_t − x̂_{t−1} per step) was tried first and diverges — greedy fits to
// the innovation extrapolate wildly off-sample and the errors compound
// step over step. Joint decoding has no feedback loop and is stable.

import (
	"errors"
	"math/rand"

	"repro/internal/basis"
)

// SequenceOptions tunes the per-step baseline decoder.
type SequenceOptions struct {
	M          int     // measurements per time step (required)
	K          int     // sparsity budget per step (default M/3)
	NoiseSigma float64 // measurement noise applied by the sampler
	Seed       int64
}

// StepReport records one recovered time step.
type StepReport struct {
	T       int
	NMSE    float64
	Support int
}

// RecoverSequence samples and recovers each field in the sequence
// independently (each a column-stacked vector of length phi.Dim()). The
// spatial basis is a matrix-free operator; wrap a dense matrix with
// basis.FromMatrix to run the reference path.
func RecoverSequence(phi basis.Operator, seq [][]float64, opts SequenceOptions) ([]StepReport, [][]float64, error) {
	n, err := checkSequence(phi, seq)
	if err != nil {
		return nil, nil, err
	}
	if opts.M <= 0 {
		return nil, nil, errors.New("cs: sequence recovery needs positive M")
	}
	k := opts.K
	if k <= 0 {
		k = opts.M / 3
		if k < 1 {
			k = 1
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	reports := make([]StepReport, 0, len(seq))
	recovered := make([][]float64, 0, len(seq))
	for t, x := range seq {
		locs, err := RandomLocations(rng, n, opts.M)
		if err != nil {
			return nil, nil, err
		}
		y, err := Measure(x, locs, rng, sigmaSlice(opts.NoiseSigma))
		if err != nil {
			return nil, nil, err
		}
		res, err := OMPOp(phi, locs, y, k, 1e-9)
		if err != nil {
			return nil, nil, err
		}
		reports = append(reports, StepReport{T: t, NMSE: NMSE(x, res.Xhat), Support: len(res.Support)})
		recovered = append(recovered, res.Xhat)
	}
	return reports, recovered, nil
}

// SpatioTemporalOptions tunes the joint decoder.
type SpatioTemporalOptions struct {
	M          int // measurements per time step (same sampler as the baseline)
	K          int // joint sparsity budget (default T·M/3 capped at T·M−1)
	NoiseSigma float64
	Seed       int64
}

// JointMeasurements holds measurements of a T-step, N-cell sequence in
// joint-index form: Locs[i] = step·N + spatialIndex.
type JointMeasurements struct {
	T, N int
	Locs []int
	Y    []float64
}

// DecodeSpatioTemporal decodes joint measurements in Ψ = Φ_space ⊗ DCT_T
// and returns the per-step recovered fields plus the raw result. k ≤ 0
// applies the |measurements|/3 heuristic. The joint basis is applied
// separably — the T·N × T·N Kronecker product is never materialized, which
// is what keeps long sequences over large grids affordable.
func DecodeSpatioTemporal(phi basis.Operator, jm JointMeasurements, k int) ([][]float64, *Result, error) {
	if jm.T <= 0 || jm.N != phi.Dim() {
		return nil, nil, errors.New("cs: joint measurements shape mismatch")
	}
	if len(jm.Locs) == 0 || len(jm.Locs) != len(jm.Y) {
		return nil, nil, errors.New("cs: joint measurements empty or inconsistent")
	}
	tempo, err := basis.CachedOperator(basis.KindDCT, jm.T)
	if err != nil {
		return nil, nil, err
	}
	// Joint index step·N + loc matches Separable2D's column-stacked layout
	// with the spatial factor on rows and the temporal factor on columns.
	joint := basis.NewSeparable2D(phi, tempo)
	if k <= 0 {
		k = len(jm.Locs) / 3
	}
	if k >= len(jm.Locs) {
		k = len(jm.Locs) - 1
	}
	if k < 1 {
		k = 1
	}
	res, err := OMPOp(joint, jm.Locs, jm.Y, k, 1e-9)
	if err != nil {
		return nil, nil, err
	}
	recovered := make([][]float64, jm.T)
	for step := 0; step < jm.T; step++ {
		out := make([]float64, jm.N)
		copy(out, res.Xhat[step*jm.N:(step+1)*jm.N])
		recovered[step] = out
	}
	return recovered, res, nil
}

// RecoverSpatioTemporal samples each step of the sequence and decodes the
// whole thing jointly: the T×M measurements index into the length T·N
// joint signal — few temporal modes represent a slowly evolving field, so
// the joint problem is much sparser relative to its size than any single
// snapshot.
func RecoverSpatioTemporal(phi basis.Operator, seq [][]float64, opts SpatioTemporalOptions) ([]StepReport, [][]float64, error) {
	n, err := checkSequence(phi, seq)
	if err != nil {
		return nil, nil, err
	}
	if opts.M <= 0 {
		return nil, nil, errors.New("cs: sequence recovery needs positive M")
	}
	t := len(seq)
	rng := rand.New(rand.NewSource(opts.Seed))
	jm := JointMeasurements{T: t, N: n}
	for step, x := range seq {
		locs, err := RandomLocations(rng, n, opts.M)
		if err != nil {
			return nil, nil, err
		}
		ys, err := Measure(x, locs, rng, sigmaSlice(opts.NoiseSigma))
		if err != nil {
			return nil, nil, err
		}
		for i, l := range locs {
			jm.Locs = append(jm.Locs, step*n+l)
			jm.Y = append(jm.Y, ys[i])
		}
	}
	k := opts.K
	if k <= 0 {
		k = t * opts.M / 3
	}
	recovered, res, err := DecodeSpatioTemporal(phi, jm, k)
	if err != nil {
		return nil, nil, err
	}
	reports := make([]StepReport, 0, t)
	for step, x := range seq {
		reports = append(reports, StepReport{
			T: step, NMSE: NMSE(x, recovered[step]), Support: len(res.Support),
		})
	}
	return reports, recovered, nil
}

func checkSequence(phi basis.Operator, seq [][]float64) (int, error) {
	if len(seq) == 0 {
		return 0, errors.New("cs: empty sequence")
	}
	n := phi.Dim()
	for _, x := range seq {
		if len(x) != n {
			return 0, errors.New("cs: sequence step length mismatch")
		}
	}
	return n, nil
}

func sigmaSlice(sigma float64) []float64 {
	if sigma > 0 {
		return []float64{sigma}
	}
	return nil
}

// MeanNMSE averages the per-step NMSE of a recovered sequence.
func MeanNMSE(reports []StepReport) float64 {
	if len(reports) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range reports {
		s += r.NMSE
	}
	return s / float64(len(reports))
}
