package cs

// Additional sparse decoders beyond OMP/BP: iterative hard thresholding
// (IHT) and CoSaMP. The paper names OMP and the L1 program explicitly;
// these two are the standard greedy alternatives a production middleware
// would ship so brokers can trade robustness against compute (the A4
// ablation compares all four).

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/basis"
	"repro/internal/lp"
	"repro/internal/mat"
)

// IHTOptions tunes iterative hard thresholding.
type IHTOptions struct {
	K        int     // target sparsity (required)
	MaxIter  int     // default 200
	StepSize float64 // 0 = adaptive normalized-IHT step (recommended)
	Tol      float64 // stop when residual norm change < Tol (default 1e-9)
}

// IHT recovers a K-sparse coefficient vector by projected gradient
// descent: α ← H_K(α + µ·Φ̃ᵀ(y − Φ̃α)), where H_K keeps the K largest
// magnitudes. Slower to converge than OMP but a single matrix-vector pair
// per iteration and very robust to coherent dictionaries.
func IHT(phi *mat.Matrix, locs []int, y []float64, opts IHTOptions) (*Result, error) {
	d, err := denseDictFor(phi, locs)
	if err != nil {
		return nil, err
	}
	return ihtDict(d, y, opts)
}

// IHTOp is IHT through a matrix-free basis operator: the per-iteration
// matrix-vector pair (predict, correlate) becomes one synthesis and one
// analysis at O(n log n).
func IHTOp(op basis.Operator, locs []int, y []float64, opts IHTOptions) (*Result, error) {
	d, err := dictFor(op, locs)
	if err != nil {
		return nil, err
	}
	return ihtDict(d, y, opts)
}

func ihtDict(d dict, y []float64, opts IHTOptions) (*Result, error) {
	m, n := d.rows(), d.cols()
	if len(y) != m {
		return nil, fmt.Errorf("cs: %d measurements for %d locations", len(y), m)
	}
	if opts.K <= 0 {
		return nil, errors.New("cs: IHT needs positive sparsity K")
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-9
	}
	fixedMu := opts.StepSize
	alpha := make([]float64, n)
	// Per-iteration work buffers, hoisted so the loop allocates nothing.
	pred := make([]float64, m)
	r := make([]float64, m)
	g := make([]float64, n)
	gS := make([]float64, n)
	agS := make([]float64, m)
	idxScratch := make([]int, n)
	mask := make([]bool, n)
	prevRes := math.Inf(1)
	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		// r = y − Φ̃α.
		if err := d.predict(pred, alpha); err != nil {
			return nil, err
		}
		for i := range r {
			r[i] = y[i] - pred[i]
		}
		rn := mat.Norm2(r)
		if math.Abs(prevRes-rn) < opts.Tol {
			break
		}
		prevRes = rn
		if err := d.corrT(g, r); err != nil {
			return nil, err
		}
		// Normalized-IHT step (Blumensath & Davies): the exact line-search
		// step restricted to the working support makes convergence robust
		// for the coherent point-sampled bases used here. The working
		// support is the current support, or the top-K gradient entries on
		// the first iteration.
		mu := fixedMu
		if mu <= 0 {
			workSup := supportOf(alpha)
			if len(workSup) == 0 {
				workSup = topKIndicesInto(g, opts.K, idxScratch)
			}
			for _, j := range workSup {
				gS[j] = g[j]
			}
			if err := d.predict(agS, gS); err != nil {
				return nil, err
			}
			num := 0.0
			for _, j := range workSup {
				num += gS[j] * gS[j]
			}
			den := mat.Dot(agS, agS)
			for _, j := range workSup {
				gS[j] = 0
			}
			if den <= 0 {
				mu = 1
			} else {
				mu = num / den
			}
		}
		for j := range alpha {
			alpha[j] += mu * g[j]
		}
		hardThresholdWith(alpha, opts.K, idxScratch, mask)
	}
	support := supportOf(alpha)
	// Debias: least squares on the final support.
	coef := make([]float64, len(support))
	if len(support) > 0 && len(support) <= m {
		sub := mat.New(m, len(support))
		if err := d.subInto(sub, support); err != nil {
			return nil, err
		}
		if ls, err := mat.LeastSquares(sub, y); err == nil {
			coef = ls
		} else {
			for i, j := range support {
				coef[i] = alpha[j]
			}
		}
	} else {
		for i, j := range support {
			coef[i] = alpha[j]
		}
	}
	return packResultDict(d, support, coef, y, iters)
}

// CoSaMPOptions tunes CoSaMP.
type CoSaMPOptions struct {
	K       int // target sparsity (required)
	MaxIter int // default 50
	Tol     float64
}

// CoSaMP (Needell & Tropp) recovers a K-sparse vector by repeatedly
// merging the 2K strongest residual correlations into the support, solving
// least squares, and pruning back to K.
func CoSaMP(phi *mat.Matrix, locs []int, y []float64, opts CoSaMPOptions) (*Result, error) {
	d, err := denseDictFor(phi, locs)
	if err != nil {
		return nil, err
	}
	return cosampDict(d, y, opts)
}

// CoSaMPOp is CoSaMP through a matrix-free basis operator.
func CoSaMPOp(op basis.Operator, locs []int, y []float64, opts CoSaMPOptions) (*Result, error) {
	d, err := dictFor(op, locs)
	if err != nil {
		return nil, err
	}
	return cosampDict(d, y, opts)
}

func cosampDict(d dict, y []float64, opts CoSaMPOptions) (*Result, error) {
	m, n := d.rows(), d.cols()
	if len(y) != m {
		return nil, fmt.Errorf("cs: %d measurements for %d locations", len(y), m)
	}
	if opts.K <= 0 {
		return nil, errors.New("cs: CoSaMP needs positive sparsity K")
	}
	if 3*opts.K > m {
		// The merged LS needs ≤ m columns; clamp like OMP does.
		opts.K = m / 3
		if opts.K == 0 {
			opts.K = 1
		}
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 50
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-9
	}
	alpha := make([]float64, n)
	resid := mat.CloneVec(y)
	// Per-iteration work buffers, hoisted so the loop allocates only inside
	// the least-squares solve. The merged candidate set never exceeds
	// 3K (current K-sparse support plus 2K proxy picks).
	proxy := make([]float64, n)
	idxScratch := make([]int, n)
	mask := make([]bool, n)
	maxMerge := 3 * opts.K
	if maxMerge > m {
		maxMerge = m
	}
	subBuf := make([]float64, m*maxMerge)
	idx := make([]int, 0, maxMerge)
	coef := make([]float64, 0, maxMerge)
	pred := make([]float64, m)
	iters := 0
	prev := math.Inf(1)
	for ; iters < opts.MaxIter; iters++ {
		rn := mat.Norm2(resid)
		if rn <= opts.Tol || math.Abs(prev-rn) < opts.Tol {
			break
		}
		prev = rn
		// Proxy = Φ̃ᵀ r; take 2K strongest plus current support.
		if err := d.corrT(proxy, resid); err != nil {
			return nil, err
		}
		for _, j := range supportOf(alpha) {
			mask[j] = true
		}
		for _, j := range topKIndicesInto(proxy, 2*opts.K, idxScratch) {
			mask[j] = true
		}
		idx = idx[:0]
		for j := 0; j < n; j++ {
			if mask[j] {
				mask[j] = false
				if len(idx) < maxMerge {
					idx = append(idx, j)
				}
			}
		}
		if len(idx) == 0 {
			break
		}
		sub := &mat.Matrix{Rows: m, Cols: len(idx), Data: subBuf[:m*len(idx)]}
		if err := d.subInto(sub, idx); err != nil {
			return nil, err
		}
		ls, err := mat.LeastSquares(sub, y)
		if err != nil {
			break // rank-deficient merge; keep the previous estimate
		}
		// Prune to K.
		for j := range alpha {
			alpha[j] = 0
		}
		for i, j := range idx {
			alpha[j] = ls[i]
		}
		hardThresholdWith(alpha, opts.K, idxScratch, mask)
		// Update residual from the pruned estimate.
		support := supportOf(alpha)
		sub2 := &mat.Matrix{Rows: m, Cols: len(support), Data: subBuf[:m*len(support)]}
		if err := d.subInto(sub2, support); err != nil {
			return nil, err
		}
		coef = coef[:len(support)]
		for i, j := range support {
			coef[i] = alpha[j]
		}
		if err := mat.MulVecInto(pred, sub2, coef); err != nil {
			return nil, err
		}
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
	}
	support := supportOf(alpha)
	coef = make([]float64, len(support))
	for i, j := range support {
		coef[i] = alpha[j]
	}
	return packResultDict(d, support, coef, y, iters)
}

// BPDN solves basis pursuit denoising via the LP relaxation with a noise
// allowance: minimize ‖α‖₁ subject to |Φ̃α − y|ᵢ ≤ eps for every
// measurement (an L∞ fidelity box, which keeps the problem a plain LP).
// Standard form uses α = u − v and slack s: Φ̃(u−v) + s = y + eps,
// 0 ≤ s ≤ 2·eps, encoded with an extra slack pair.
func BPDN(phi *mat.Matrix, locs []int, y []float64, eps, zeroTol float64) (*Result, error) {
	if eps < 0 {
		return nil, errors.New("cs: BPDN needs eps >= 0")
	}
	if eps == 0 {
		return BasisPursuit(phi, locs, y, zeroTol)
	}
	a, err := sensingMatrix(phi, locs)
	if err != nil {
		return nil, err
	}
	m, n := a.Rows, a.Cols
	if len(y) != m {
		return nil, fmt.Errorf("cs: %d measurements for %d locations", len(y), m)
	}
	// Variables: u(n), v(n), s(m), t(m) with
	//   Φ̃(u−v) + s           = y + eps        (upper bound)
	//   s + t                 = 2·eps          (s ≤ 2eps)
	// all variables ≥ 0. Objective Σu + Σv.
	nv := 2*n + 2*m
	rows := 2 * m
	prob := lp.Problem{
		Rows: rows, Cols: nv,
		A: make([]float64, rows*nv),
		B: make([]float64, rows),
		C: make([]float64, nv),
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			prob.A[i*nv+j] = a.Data[i*n+j]
			prob.A[i*nv+n+j] = -a.Data[i*n+j]
		}
		prob.A[i*nv+2*n+i] = 1
		prob.B[i] = y[i] + eps
		// Row m+i: s_i + t_i = 2 eps.
		prob.A[(m+i)*nv+2*n+i] = 1
		prob.A[(m+i)*nv+2*n+m+i] = 1
		prob.B[m+i] = 2 * eps
	}
	for j := 0; j < 2*n; j++ {
		prob.C[j] = 1
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("cs: BPDN LP failed: %w", err)
	}
	support := make([]int, 0)
	coef := make([]float64, 0)
	for j := 0; j < n; j++ {
		v := sol.X[j] - sol.X[n+j]
		if math.Abs(v) > zeroTol {
			support = append(support, j)
			coef = append(coef, v)
		}
	}
	return packResultDict(&denseDict{phi: phi, a: a}, support, coef, y, sol.Iterations)
}

// --- helpers -------------------------------------------------------------------

// hardThreshold zeroes all but the k largest-magnitude entries in place.
func hardThreshold(v []float64, k int) {
	hardThresholdWith(v, k, make([]int, len(v)), make([]bool, len(v)))
}

// hardThresholdWith is hardThreshold with caller-provided scratch, so hot
// loops can run it without allocating. idxScratch must have len(v) entries
// and mask must be an all-false []bool of len(v); the mask is restored to
// all-false before returning.
func hardThresholdWith(v []float64, k int, idxScratch []int, mask []bool) {
	keep := topKIndicesInto(v, k, idxScratch)
	for _, j := range keep {
		mask[j] = true
	}
	for j := range v {
		if !mask[j] {
			v[j] = 0
		}
	}
	for _, j := range keep {
		mask[j] = false
	}
}

// topKIndices returns the indices of the k largest |v| entries.
func topKIndices(v []float64, k int) []int {
	return topKIndicesInto(v, k, make([]int, len(v)))
}

// topKIndicesInto is topKIndices with a caller-provided scratch slice of
// len(v); the returned slice aliases idxScratch and is valid until the next
// call that reuses the scratch.
func topKIndicesInto(v []float64, k int, idxScratch []int) []int {
	if k <= 0 {
		return nil
	}
	if k > len(v) {
		k = len(v)
	}
	idx := idxScratch[:len(v)]
	for i := range idx {
		idx[i] = i
	}
	// Partial selection.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if math.Abs(v[idx[j]]) > math.Abs(v[idx[best]]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// supportOf returns the sorted nonzero indices.
func supportOf(v []float64) []int {
	var out []int
	for j, x := range v {
		if x != 0 {
			out = append(out, j)
		}
	}
	return out
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
