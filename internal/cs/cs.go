// Package cs implements the compressive-sensing core of SenseDroid (paper
// §4): recovery of a length-N signal x = Φα that is K-sparse in an
// orthonormal basis Φ from M ≪ N point measurements x_S = x(L) taken at
// sensor locations L, possibly corrupted by heterogeneous sensor noise.
//
// Decoders provided:
//   - OMP: orthogonal matching pursuit for Eq. (13), the workhorse.
//   - BasisPursuit: L1 minimization (Eq. 9) via the LP reformulation
//     (Eq. 10), solved with the internal simplex solver.
//   - FixedSupportOLS / FixedSupportGLS: the closed-form least-squares
//     estimates of Eqs. (11) and (12) when the support J is known.
//   - CHS (chs.go): the iterative Compressive Heterogeneous Sensing
//     algorithm of Fig. 6 with a pluggable interpolation operator Υ.
package cs

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/basis"
	"repro/internal/lp"
	"repro/internal/mat"
)

// Decoder failure modes.
var (
	ErrNoMeasurements = errors.New("cs: no measurements")
	ErrBadSupport     = errors.New("cs: invalid support index")
)

// Result is the outcome of a sparse recovery.
type Result struct {
	Alpha []float64 // recovered coefficients, length N (zero off support)
	// Support holds the indices of the recovered nonzero coefficients J,
	// in admission order. Feeding it back as the seed of the next decode
	// (OMPSeeded / CHSOptions.SeedSupport) warm-starts the solver: for an
	// unchanged field the warm decode is bit-identical to a cold one and
	// skips the greedy search entirely.
	Support    []int
	Xhat       []float64 // reconstructed signal Φ·Alpha, length N
	Residual   float64   // ‖x_S − Φ̃_K α_K‖₂ at the sensor locations
	Iterations int
}

// OMP recovers a K-sparse coefficient vector from measurements y taken at
// locations locs, using orthogonal matching pursuit (Tropp & Gilbert; the
// solver the paper names for Eq. 13). It stops after k atoms or when the
// residual norm drops below tol.
//
// The per-iteration work is the incremental fast path: the correlation scan
// is one Φ̃ᵀr pass, the selected column is folded into a rank-1 updated QR
// factorization, and the residual is deflated in O(M) — no per-iteration
// submatrix copy or full refactorization. The least-squares coefficients
// are solved once, at the end, from the accumulated factors.
func OMP(phi *mat.Matrix, locs []int, y []float64, k int, tol float64) (*Result, error) {
	return OMPSeeded(phi, locs, y, k, tol, nil)
}

// OMPSeeded is OMP warm-started from a previously recovered support (see
// Result.Support). Seed columns are folded into the incremental-QR factors
// before the first greedy iteration; an unchanged field then costs one
// residual check plus the final solve and is bit-identical to the cold
// decode. Invalid or rank-deficient seeds fall back to a cold start.
func OMPSeeded(phi *mat.Matrix, locs []int, y []float64, k int, tol float64, seed []int) (*Result, error) {
	d, err := denseDictFor(phi, locs)
	if err != nil {
		return nil, err
	}
	return ompDict(d, y, k, tol, seed)
}

// OMPOp is OMP through a matrix-free basis operator: correlations and
// column extractions run in O(n log n) scatter/gather applies instead of
// dense M×N passes. A *basis.MatrixOp routes to the dense reference kernel.
func OMPOp(op basis.Operator, locs []int, y []float64, k int, tol float64) (*Result, error) {
	return OMPSeededOp(op, locs, y, k, tol, nil)
}

// OMPSeededOp is OMPSeeded through a matrix-free operator.
func OMPSeededOp(op basis.Operator, locs []int, y []float64, k int, tol float64, seed []int) (*Result, error) {
	d, err := dictFor(op, locs)
	if err != nil {
		return nil, err
	}
	return ompDict(d, y, k, tol, seed)
}

func ompDict(d dict, y []float64, k int, tol float64, seed []int) (*Result, error) {
	m, n := d.rows(), d.cols()
	if len(y) != m {
		return nil, fmt.Errorf("cs: %d measurements for %d locations", len(y), m)
	}
	if k <= 0 {
		return nil, errors.New("cs: sparsity k must be positive")
	}
	if k > m {
		k = m // cannot identify more atoms than measurements
	}
	qr, err := mat.NewIncrementalQR(m, k)
	if err != nil {
		return nil, err
	}
	resid := mat.CloneVec(y)
	corr := make([]float64, n)
	col := make([]float64, m)
	support := make([]int, 0, k)
	inSupport := make([]bool, n)
	iters := 0
	// Warm start: replay the seed's Append/Deflate sequence before the
	// first correlation scan. A seed that fills the support (or already
	// drives the residual under tol) skips the scans — and the column-norm
	// pass below — entirely.
	if validSeed(seed, n, k) {
		var ok bool
		support, ok, err = seedFactors(d, qr, resid, col, support, inSupport, seed)
		if err != nil {
			return nil, err
		}
		if !ok {
			qr, resid, support, err = coldRestart(d, y, k, support, inSupport)
			if err != nil {
				return nil, err
			}
		}
	}
	// Column norms for normalized correlation, computed lazily before the
	// first scan (values are independent of when they are computed, so the
	// cold decode is unchanged arithmetic in the original order).
	var colNorm []float64
	for len(support) < k {
		if mat.Norm2(resid) <= tol && len(support) > 0 {
			break
		}
		if colNorm == nil {
			colNorm = make([]float64, n)
			if err := d.colNorms(colNorm); err != nil {
				return nil, err
			}
		}
		iters++
		// Correlate residual with every column in one dictionary pass.
		if err := d.corrT(corr, resid); err != nil {
			return nil, err
		}
		best, bestJ := 0.0, -1
		for j, dot := range corr {
			if inSupport[j] || colNorm[j] == 0 {
				continue
			}
			if c := math.Abs(dot) / colNorm[j]; c > best {
				best, bestJ = c, j
			}
		}
		if bestJ < 0 {
			break
		}
		if err := d.col(col, bestJ); err != nil {
			return nil, err
		}
		if err := qr.Append(col); err != nil {
			// The chosen column is linearly dependent on the current support:
			// it cannot reduce the residual, so stop growing. The factors
			// already held are reused as-is — no second solve pass needed.
			break
		}
		support = append(support, bestJ)
		inSupport[bestJ] = true
		if _, err := qr.DeflateLatest(resid); err != nil {
			return nil, err
		}
		if mat.Norm2(resid) <= tol {
			break
		}
	}
	if len(support) == 0 {
		// Zero signal.
		return zeroResult(d, y, iters), nil
	}
	coef, err := qr.Solve(y)
	if err != nil {
		return nil, err
	}
	return packResultDict(d, support, coef, y, iters)
}

// OMPCentered recovers a signal whose prior mean mu (length N) is known —
// the right decoder for a PCA basis learned from historical traces, whose
// columns span the variation *around* the mean: the measurements are
// mean-centered before decoding and the mean is added back to Xhat.
// Alpha/Support/Residual describe the centered component.
func OMPCentered(phi *mat.Matrix, locs []int, y []float64, mu []float64, k int, tol float64) (*Result, error) {
	yc, err := centerMeasurements(locs, y, mu, phi.Rows)
	if err != nil {
		return nil, err
	}
	res, err := OMP(phi, locs, yc, k, tol)
	if err != nil {
		return nil, err
	}
	for i := range res.Xhat {
		res.Xhat[i] += mu[i]
	}
	return res, nil
}

// OMPCenteredOp is OMPCentered through a matrix-free operator.
func OMPCenteredOp(op basis.Operator, locs []int, y []float64, mu []float64, k int, tol float64) (*Result, error) {
	yc, err := centerMeasurements(locs, y, mu, op.Dim())
	if err != nil {
		return nil, err
	}
	res, err := OMPOp(op, locs, yc, k, tol)
	if err != nil {
		return nil, err
	}
	for i := range res.Xhat {
		res.Xhat[i] += mu[i]
	}
	return res, nil
}

func centerMeasurements(locs []int, y, mu []float64, dim int) ([]float64, error) {
	if len(mu) != dim {
		return nil, fmt.Errorf("cs: mean length %d, want %d", len(mu), dim)
	}
	yc := make([]float64, len(y))
	for i, l := range locs {
		if l < 0 || l >= len(mu) {
			return nil, fmt.Errorf("cs: location %d out of range [0,%d)", l, len(mu))
		}
		yc[i] = y[i] - mu[l]
	}
	return yc, nil
}

// BasisPursuit recovers the minimum-L1 coefficient vector subject to the
// measurement constraint (paper Eq. 9), via the slack-variable LP of
// Eq. 10 expressed in standard form with the split α = u − v, u,v ≥ 0:
//
//	min Σu + Σv   s.t.  Φ̃(u − v) = x_S.
//
// Exact equality constraints make this appropriate for (near-)noiseless
// measurements; use OMP or CHS when noise is significant. zeroTol trims
// solver jitter from the returned support.
func BasisPursuit(phi *mat.Matrix, locs []int, y []float64, zeroTol float64) (*Result, error) {
	a, err := sensingMatrix(phi, locs)
	if err != nil {
		return nil, err
	}
	m, n := a.Rows, a.Cols
	if len(y) != m {
		return nil, fmt.Errorf("cs: %d measurements for %d locations", len(y), m)
	}
	prob := lp.Problem{
		Rows: m, Cols: 2 * n,
		A: make([]float64, m*2*n),
		B: mat.CloneVec(y),
		C: make([]float64, 2*n),
	}
	for j := 0; j < 2*n; j++ {
		prob.C[j] = 1
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			prob.A[i*2*n+j] = a.Data[i*n+j]
			prob.A[i*2*n+n+j] = -a.Data[i*n+j]
		}
	}
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("cs: basis pursuit LP failed: %w", err)
	}
	support := make([]int, 0)
	coef := make([]float64, 0)
	for j := 0; j < n; j++ {
		v := sol.X[j] - sol.X[n+j]
		if math.Abs(v) > zeroTol {
			support = append(support, j)
			coef = append(coef, v)
		}
	}
	return packResultDict(&denseDict{phi: phi, a: a}, support, coef, y, sol.Iterations)
}

// FixedSupportOLS solves for the coefficients on a known support J with
// ordinary least squares — the paper's Eq. (11), appropriate for
// homogeneous sensors. Requires len(locs) ≥ len(support).
func FixedSupportOLS(phi *mat.Matrix, locs []int, y []float64, support []int) (*Result, error) {
	d, err := denseDictFor(phi, locs)
	if err != nil {
		return nil, err
	}
	return fixedSupportDict(d, y, support, nil)
}

// FixedSupportOLSOp is FixedSupportOLS through a matrix-free operator: the
// M×|J| design matrix is assembled column by column via scatter/gather
// applies — Φ is never materialized or sliced densely.
func FixedSupportOLSOp(op basis.Operator, locs []int, y []float64, support []int) (*Result, error) {
	d, err := dictFor(op, locs)
	if err != nil {
		return nil, err
	}
	return fixedSupportDict(d, y, support, nil)
}

// FixedSupportGLS solves for the coefficients on a known support with
// generalized least squares under sensor-noise covariance V — the paper's
// Eq. (12), for heterogeneous sensors. V is M×M (ordered like locs).
func FixedSupportGLS(phi *mat.Matrix, locs []int, y []float64, support []int, v *mat.Matrix) (*Result, error) {
	d, err := denseDictFor(phi, locs)
	if err != nil {
		return nil, err
	}
	return fixedSupportDict(d, y, support, v)
}

// FixedSupportGLSOp is FixedSupportGLS through a matrix-free operator.
func FixedSupportGLSOp(op basis.Operator, locs []int, y []float64, support []int, v *mat.Matrix) (*Result, error) {
	d, err := dictFor(op, locs)
	if err != nil {
		return nil, err
	}
	return fixedSupportDict(d, y, support, v)
}

// fixedSupportDict is the shared Eq. (11)/(12) core: v == nil selects OLS,
// otherwise GLS under covariance v.
func fixedSupportDict(d dict, y []float64, support []int, v *mat.Matrix) (*Result, error) {
	if err := checkSupport(support, d.cols()); err != nil {
		return nil, err
	}
	sub := mat.New(d.rows(), len(support))
	if err := d.subInto(sub, support); err != nil {
		return nil, err
	}
	var coef []float64
	var err error
	if v == nil {
		coef, err = mat.LeastSquares(sub, y)
	} else {
		coef, err = mat.WeightedLeastSquares(sub, y, v)
	}
	if err != nil {
		return nil, err
	}
	return packResultDict(d, support, coef, y, 1)
}

func checkSupport(support []int, n int) error {
	seen := make(map[int]bool, len(support))
	for _, j := range support {
		if j < 0 || j >= n {
			return fmt.Errorf("%w: %d not in [0,%d)", ErrBadSupport, j, n)
		}
		if seen[j] {
			return fmt.Errorf("%w: duplicate index %d", ErrBadSupport, j)
		}
		seen[j] = true
	}
	return nil
}

// LowFrequencySupport returns the support {0, 1, …, k−1}: the K lowest
// modes of a frequency-ordered basis such as DCT. It encodes the smooth
// field prior used when no coefficient ordering has been learned.
func LowFrequencySupport(k int) []int {
	s := make([]int, k)
	for i := range s {
		s[i] = i
	}
	return s
}

// RandomLocations draws m distinct sensor locations uniformly from
// {0,…,n−1} — the broker's "stochastic (random) spatial sampling".
func RandomLocations(rng *rand.Rand, n, m int) ([]int, error) {
	if m > n {
		return nil, fmt.Errorf("cs: cannot draw %d distinct locations from %d", m, n)
	}
	if m < 0 {
		return nil, errors.New("cs: negative measurement count")
	}
	return rng.Perm(n)[:m], nil
}

// Measure samples the signal x at the given locations and adds Gaussian
// noise with per-measurement standard deviations sigmas (nil for
// noiseless; a single-element slice broadcasts).
func Measure(x []float64, locs []int, rng *rand.Rand, sigmas []float64) ([]float64, error) {
	y := make([]float64, len(locs))
	for i, k := range locs {
		if k < 0 || k >= len(x) {
			return nil, fmt.Errorf("cs: location %d out of range [0,%d)", k, len(x))
		}
		y[i] = x[k]
		if len(sigmas) > 0 {
			s := sigmas[0]
			if len(sigmas) > 1 {
				s = sigmas[i]
			}
			if s > 0 {
				y[i] += rng.NormFloat64() * s
			}
		}
	}
	return y, nil
}

// NoiseCovariance builds the diagonal sensor-noise covariance V from
// per-measurement standard deviations. Zero sigmas are floored at
// minSigma to keep V positive definite.
func NoiseCovariance(sigmas []float64, minSigma float64) *mat.Matrix {
	d := make([]float64, len(sigmas))
	for i, s := range sigmas {
		if s < minSigma {
			s = minSigma
		}
		d[i] = s * s
	}
	return mat.Diag(d)
}

// ChooseKCrossVal picks the sparsity K that minimizes held-out measurement
// error: it splits the measurements into a training and validation set,
// runs OMP at each K in [1, kMax], and returns the K whose reconstruction
// best predicts the held-out sensors. This automates the paper's "pick an
// optimal K such that the total error ε is minimal" guidance without
// needing ground truth.
func ChooseKCrossVal(phi *mat.Matrix, locs []int, y []float64, kMax int, holdout float64, rng *rand.Rand) (int, error) {
	return chooseKCore(func(l []int, yy []float64, k int) (*Result, error) {
		return OMP(phi, l, yy, k, 0)
	}, locs, y, kMax, holdout, rng)
}

// ChooseKCrossValOp is ChooseKCrossVal through a matrix-free operator.
func ChooseKCrossValOp(op basis.Operator, locs []int, y []float64, kMax int, holdout float64, rng *rand.Rand) (int, error) {
	return chooseKCore(func(l []int, yy []float64, k int) (*Result, error) {
		return OMPOp(op, l, yy, k, 0)
	}, locs, y, kMax, holdout, rng)
}

func chooseKCore(decode func(locs []int, y []float64, k int) (*Result, error), locs []int, y []float64, kMax int, holdout float64, rng *rand.Rand) (int, error) {
	m := len(locs)
	if m < 4 {
		return 0, errors.New("cs: too few measurements for cross-validation")
	}
	nVal := int(math.Round(float64(m) * holdout))
	if nVal < 1 {
		nVal = 1
	}
	if nVal > m-2 {
		nVal = m - 2
	}
	perm := rng.Perm(m)
	valIdx, trainIdx := perm[:nVal], perm[nVal:]
	trLocs := make([]int, len(trainIdx))
	trY := make([]float64, len(trainIdx))
	for i, p := range trainIdx {
		trLocs[i], trY[i] = locs[p], y[p]
	}
	bestK, bestErr := 1, math.Inf(1)
	if kMax > len(trLocs) {
		kMax = len(trLocs)
	}
	for k := 1; k <= kMax; k++ {
		res, err := decode(trLocs, trY, k)
		if err != nil {
			continue
		}
		// Validation error at held-out sensors.
		e := 0.0
		for _, p := range valIdx {
			d := y[p] - res.Xhat[locs[p]]
			e += d * d
		}
		if e < bestErr {
			bestErr, bestK = e, k
		}
	}
	return bestK, nil
}
