package energy

import (
	"testing"

	"repro/internal/sensor"
)

// TestBankMatchesBatterySemantics: Bank's depletion boundary and
// remaining-fraction clamp agree with the scalar Battery.
func TestBankMatchesBatterySemantics(t *testing.T) {
	b, err := NewBank(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	bat := NewBattery(10)

	b.Drain(0, 4)
	if err := bat.Drain(4); err != nil {
		t.Fatalf("battery depleted early: %v", err)
	}
	if b.Depleted(0) {
		t.Fatal("bank depleted at 4/10")
	}
	if got, want := b.RemainingFrac(0), bat.FractionRemaining(); got != want {
		t.Fatalf("remaining fraction %v != battery %v", got, want)
	}

	// Exactly at capacity is depleted, matching Battery.Drain's >=.
	b.Drain(0, 6)
	if err := bat.Drain(6); err != ErrDepleted {
		t.Fatalf("battery at capacity: %v, want ErrDepleted", err)
	}
	if !b.Depleted(0) {
		t.Fatal("bank not depleted at exactly capacity")
	}
	if b.RemainingFrac(0) != 0 {
		t.Fatalf("remaining fraction %v after depletion, want 0", b.RemainingFrac(0))
	}

	// Other nodes are unaffected; Alive counts them.
	if b.Depleted(1) || b.Depleted(2) {
		t.Fatal("draining node 0 affected others")
	}
	if got := b.Alive(); got != 2 {
		t.Fatalf("alive %d, want 2", got)
	}
	if got := b.TotalUsedMJ(); got != 10 {
		t.Fatalf("total used %v, want 10", got)
	}
}

func TestBankDrainAllAndDefaults(t *testing.T) {
	b, err := NewBank(4, 0) // default capacity
	if err != nil {
		t.Fatal(err)
	}
	if b.CapacityMJ != 4e7 {
		t.Fatalf("default capacity %v, want 4e7", b.CapacityMJ)
	}
	b.DrainAll(2.5)
	b.Drain(2, 1)
	for i := 0; i < b.Len(); i++ {
		want := 2.5
		if i == 2 {
			want = 3.5
		}
		if b.UsedMJ[i] != want {
			t.Fatalf("node %d used %v, want %v", i, b.UsedMJ[i], want)
		}
	}
	if _, err := NewBank(-1, 10); err == nil {
		t.Fatal("negative node count accepted")
	}
}

func TestSampleCostMJ(t *testing.T) {
	m := DefaultModel()
	c, ok := m.SampleCostMJ(sensor.Temperature)
	if !ok || c != m.SensorSampleMJ[sensor.Temperature] {
		t.Fatalf("temperature cost (%v,%v)", c, ok)
	}
	if _, ok := m.SampleCostMJ(sensor.Kind("warp-core")); ok {
		t.Fatal("unknown sensor kind reported a cost")
	}
}
