package energy

import (
	"math"
	"sync"
	"testing"

	"repro/internal/sensor"
)

func TestMeterChargesSamples(t *testing.T) {
	m := NewMeter(nil)
	if err := m.ChargeSamples(sensor.GPS, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.ChargeSamples(sensor.Accelerometer, 1000); err != nil {
		t.Fatal(err)
	}
	gps := DefaultModel().SensorSampleMJ[sensor.GPS] * 10
	acc := DefaultModel().SensorSampleMJ[sensor.Accelerometer] * 1000
	if got := m.TotalMJ(); math.Abs(got-(gps+acc)) > 1e-9 {
		t.Fatalf("total %v, want %v", got, gps+acc)
	}
	bd := m.Breakdown()
	if math.Abs(bd["sense/gps"]-gps) > 1e-9 {
		t.Fatalf("breakdown %v", bd)
	}
	if err := m.ChargeSamples(sensor.Kind("bogus"), 1); err == nil {
		t.Fatal("want unknown-kind error")
	}
}

func TestGPSSamplesDominateAccel(t *testing.T) {
	// The central premise of compressive GPS duty-cycling: a GPS fix is
	// orders of magnitude costlier than an accelerometer sample.
	model := DefaultModel()
	if model.SensorSampleMJ[sensor.GPS] < 1000*model.SensorSampleMJ[sensor.Accelerometer] {
		t.Fatal("GPS/accelerometer cost ratio too small to be realistic")
	}
}

func TestMeterRadioCharges(t *testing.T) {
	m := NewMeter(nil)
	if err := m.ChargeTx(RadioWiFi, 1000); err != nil {
		t.Fatal(err)
	}
	want := DefaultModel().RadioWakeMJ[RadioWiFi] + 1000*DefaultModel().RadioTxByteMJ[RadioWiFi]
	if got := m.TotalMJ(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("tx cost %v, want %v", got, want)
	}
	if err := m.ChargeRx(RadioBluetooth, 500); err != nil {
		t.Fatal(err)
	}
	if err := m.ChargeTx(RadioKind("laser"), 1); err == nil {
		t.Fatal("want unknown-radio error")
	}
	if err := m.ChargeRx(RadioKind("laser"), 1); err == nil {
		t.Fatal("want unknown-radio error")
	}
}

func TestMeterCPUIdleAndReset(t *testing.T) {
	m := NewMeter(nil)
	m.ChargeCPU(2)
	m.ChargeIdle(10)
	want := 2*DefaultModel().CPUPerSecMJ + 10*DefaultModel().IdlePerSecMJ
	if got := m.TotalMJ(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("total %v want %v", got, want)
	}
	cats := m.Categories()
	if len(cats) != 2 || cats[0] != "cpu" || cats[1] != "idle" {
		t.Fatalf("categories %v", cats)
	}
	m.Reset()
	if m.TotalMJ() != 0 || len(m.Breakdown()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestMeterConcurrentSafety(t *testing.T) {
	m := NewMeter(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.ChargeCPU(0.001)
			}
		}()
	}
	wg.Wait()
	want := 800 * 0.001 * DefaultModel().CPUPerSecMJ
	if got := m.TotalMJ(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("concurrent total %v, want %v", got, want)
	}
}

func TestBattery(t *testing.T) {
	b := NewBattery(100)
	if err := b.Drain(40); err != nil {
		t.Fatal(err)
	}
	if b.RemainingMJ() != 60 {
		t.Fatalf("remaining %v", b.RemainingMJ())
	}
	if f := b.FractionRemaining(); math.Abs(f-0.6) > 1e-12 {
		t.Fatalf("fraction %v", f)
	}
	if err := b.Drain(70); err != ErrDepleted {
		t.Fatalf("err=%v, want ErrDepleted", err)
	}
	if b.RemainingMJ() != 0 {
		t.Fatal("depleted battery should report 0 remaining")
	}
	if b.FractionRemaining() != 0 {
		t.Fatal("depleted fraction should clamp to 0")
	}
	if NewBattery(0).FractionRemaining() != 0 {
		t.Fatal("zero-capacity battery")
	}
}

func TestSavingsPercent(t *testing.T) {
	if v := SavingsPercent(100, 20); math.Abs(v-80) > 1e-12 {
		t.Fatalf("savings %v, want 80", v)
	}
	if v := SavingsPercent(100, 120); math.Abs(v+20) > 1e-12 {
		t.Fatalf("negative savings %v, want -20", v)
	}
	if SavingsPercent(0, 50) != 0 {
		t.Fatal("zero baseline should give 0")
	}
}

func TestDefaultModelCoversAllSensorKinds(t *testing.T) {
	model := DefaultModel()
	kinds := []sensor.Kind{
		sensor.Accelerometer, sensor.Gyroscope, sensor.Magnetometer,
		sensor.GPS, sensor.WiFi, sensor.Temperature, sensor.Microphone,
		sensor.Barometer, sensor.Light, sensor.Humidity, sensor.Proximity,
	}
	for _, k := range kinds {
		if _, ok := model.SensorSampleMJ[k]; !ok {
			t.Fatalf("no cost for sensor kind %s", k)
		}
	}
	for _, r := range []RadioKind{RadioWiFi, RadioBluetooth, RadioGSM} {
		if _, ok := model.RadioTxByteMJ[r]; !ok {
			t.Fatalf("no tx cost for radio %s", r)
		}
		if _, ok := model.RadioRxByteMJ[r]; !ok {
			t.Fatalf("no rx cost for radio %s", r)
		}
	}
}

func TestTxCostMJ(t *testing.T) {
	m := DefaultModel()
	want := m.RadioWakeMJ[RadioWiFi] + 100*m.RadioTxByteMJ[RadioWiFi]
	if got := m.TxCostMJ(RadioWiFi, 100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TxCostMJ=%v want %v", got, want)
	}
	if !math.IsInf(m.TxCostMJ(RadioKind("laser"), 10), 1) {
		t.Fatal("unknown radio should cost +Inf")
	}
}

func TestChooseRadioPrefersCheapest(t *testing.T) {
	m := DefaultModel()
	// Small payload: Bluetooth's tiny wake cost wins.
	r, cost, ok := m.ChooseRadio(50, []RadioKind{RadioWiFi, RadioBluetooth, RadioGSM})
	if !ok || r != RadioBluetooth {
		t.Fatalf("small payload chose %s (ok=%v)", r, ok)
	}
	if cost <= 0 {
		t.Fatal("cost should be positive")
	}
	// Without Bluetooth in range, WiFi beats GSM at any size.
	r, _, ok = m.ChooseRadio(50, []RadioKind{RadioWiFi, RadioGSM})
	if !ok || r != RadioWiFi {
		t.Fatalf("fallback chose %s", r)
	}
	// Nothing available.
	if _, _, ok := m.ChooseRadio(50, nil); ok {
		t.Fatal("no radios should report !ok")
	}
	if _, _, ok := m.ChooseRadio(50, []RadioKind{RadioKind("laser")}); ok {
		t.Fatal("only-unknown radios should report !ok")
	}
}
