// Vectorized energy accounting: Battery keeps a mutex and two floats
// per node, which is exactly wrong for a million-participant fleet — the
// fleet scheduler already serializes access per shard, so the lock buys
// nothing and the per-object overhead dominates. Bank is the
// struct-of-arrays equivalent: one shared capacity, one used-energy
// float per node, drained in bulk by the shard's tick.

package energy

import (
	"errors"

	"repro/internal/sensor"
)

// Bank is per-node battery accounting over a flat array: node i's state
// is UsedMJ[i] against the shared CapacityMJ. A Bank is owned by exactly
// one fleet shard and mutated only on that shard's scheduler turn — it
// is deliberately not safe for concurrent use (that is the point; use
// Battery for concurrently-shared meters).
type Bank struct {
	UsedMJ     []float64
	CapacityMJ float64
}

// NewBank returns an n-node bank. capacityMJ <= 0 selects the same
// default as a typical phone battery, 4e7 mJ (≈40 kJ).
func NewBank(n int, capacityMJ float64) (*Bank, error) {
	if n < 0 {
		return nil, errors.New("energy: negative node count")
	}
	if capacityMJ <= 0 {
		capacityMJ = 4e7
	}
	return &Bank{UsedMJ: make([]float64, n), CapacityMJ: capacityMJ}, nil
}

// Len returns the node count.
func (b *Bank) Len() int { return len(b.UsedMJ) }

// Drain charges node i. Like Battery.Drain, overdraw is recorded; the
// node simply reads as depleted afterwards.
func (b *Bank) Drain(i int, mj float64) { b.UsedMJ[i] += mj }

// DrainAll charges every node the same amount — the per-tick idle draw.
// Allocation-free: this runs on the fleet tick path.
func (b *Bank) DrainAll(mj float64) {
	for i := range b.UsedMJ {
		b.UsedMJ[i] += mj
	}
}

// Depleted reports whether node i has exhausted its capacity (the same
// >= boundary as Battery.Drain's ErrDepleted).
func (b *Bank) Depleted(i int) bool { return b.UsedMJ[i] >= b.CapacityMJ }

// RemainingFrac returns node i's remaining charge as a fraction of
// capacity, clamped to [0,1].
func (b *Bank) RemainingFrac(i int) float64 {
	f := 1 - b.UsedMJ[i]/b.CapacityMJ
	if f < 0 {
		return 0
	}
	return f
}

// Alive counts nodes that still have charge.
func (b *Bank) Alive() int {
	n := 0
	for i := range b.UsedMJ {
		if b.UsedMJ[i] < b.CapacityMJ {
			n++
		}
	}
	return n
}

// TotalUsedMJ sums spending across the bank, in index order (the sum is
// part of the fleet campaign's deterministic output).
func (b *Bank) TotalUsedMJ() float64 {
	t := 0.0
	for i := range b.UsedMJ {
		t += b.UsedMJ[i]
	}
	return t
}

// SampleCostMJ exposes the model's per-sample cost for a sensor kind;
// ok is false for unknown kinds. The fleet layer looks the cost up once
// per campaign instead of paying Meter's map lookup per sample.
func (m *Model) SampleCostMJ(kind sensor.Kind) (float64, bool) {
	c, ok := m.SensorSampleMJ[kind]
	return c, ok
}
