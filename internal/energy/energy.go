// Package energy provides the component energy model and per-node battery
// accounting used to evaluate SenseDroid's energy claims. Since there is
// no physical battery to measure, costs are charged per event (sensor
// sample, radio byte, idle second) from a table whose magnitudes follow
// published smartphone measurements; the paper's energy results are
// relative (percent savings), which a consistent component model
// preserves.
package energy

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/sensor"
)

// RadioKind names a network interface with its own energy profile — the
// paper's "multiple networks like WiFi, GSM, bluetooth".
type RadioKind string

// Supported radios.
const (
	RadioWiFi      RadioKind = "wifi"
	RadioBluetooth RadioKind = "bluetooth"
	RadioGSM       RadioKind = "gsm"
)

// Model is the energy cost table. All costs are in millijoules.
type Model struct {
	SensorSampleMJ map[sensor.Kind]float64 // per sample
	RadioTxByteMJ  map[RadioKind]float64   // per transmitted byte
	RadioRxByteMJ  map[RadioKind]float64   // per received byte
	RadioWakeMJ    map[RadioKind]float64   // fixed cost to wake the radio per exchange
	CPUPerSecMJ    float64                 // active computation
	IdlePerSecMJ   float64                 // baseline draw
}

// DefaultModel returns a cost table with magnitudes in line with published
// smartphone measurements: GPS fixes are ~3 orders of magnitude more
// expensive than inertial samples, WiFi bytes are cheaper than GSM bytes,
// and radio wake-ups carry a fixed tail cost.
func DefaultModel() *Model {
	return &Model{
		SensorSampleMJ: map[sensor.Kind]float64{
			sensor.Accelerometer: 0.005,
			sensor.Gyroscope:     0.02,
			sensor.Magnetometer:  0.01,
			sensor.GPS:           45.0, // a position fix
			sensor.WiFi:          8.0,  // an AP scan
			sensor.Temperature:   0.002,
			sensor.Microphone:    0.06,
			sensor.Barometer:     0.003,
			sensor.Light:         0.002,
			sensor.Humidity:      0.002,
			sensor.Proximity:     0.002,
		},
		RadioTxByteMJ: map[RadioKind]float64{
			RadioWiFi: 0.0006, RadioBluetooth: 0.0002, RadioGSM: 0.004,
		},
		RadioRxByteMJ: map[RadioKind]float64{
			RadioWiFi: 0.0004, RadioBluetooth: 0.00015, RadioGSM: 0.003,
		},
		RadioWakeMJ: map[RadioKind]float64{
			RadioWiFi: 6.0, RadioBluetooth: 0.8, RadioGSM: 12.0,
		},
		CPUPerSecMJ:  90,
		IdlePerSecMJ: 7,
	}
}

// Meter accrues energy spending for one node, broken down by category.
// It is safe for concurrent use.
type Meter struct {
	model *Model

	mu    sync.Mutex
	total float64
	byCat map[string]float64
}

// NewMeter returns a meter charging against the given model.
func NewMeter(model *Model) *Meter {
	if model == nil {
		model = DefaultModel()
	}
	return &Meter{model: model, byCat: make(map[string]float64)}
}

func (m *Meter) charge(category string, mj float64) {
	m.mu.Lock()
	m.total += mj
	m.byCat[category] += mj
	m.mu.Unlock()
}

// ChargeSamples charges n samples of the given sensor kind.
func (m *Meter) ChargeSamples(kind sensor.Kind, n int) error {
	c, ok := m.model.SensorSampleMJ[kind]
	if !ok {
		return fmt.Errorf("energy: no sample cost for sensor kind %q", kind)
	}
	m.charge("sense/"+string(kind), c*float64(n))
	return nil
}

// ChargeTx charges a transmission of the given size, including the radio
// wake cost.
func (m *Meter) ChargeTx(radio RadioKind, bytes int) error {
	per, ok := m.model.RadioTxByteMJ[radio]
	if !ok {
		return fmt.Errorf("energy: unknown radio %q", radio)
	}
	m.charge("tx/"+string(radio), m.model.RadioWakeMJ[radio]+per*float64(bytes))
	return nil
}

// ChargeRx charges a reception of the given size.
func (m *Meter) ChargeRx(radio RadioKind, bytes int) error {
	per, ok := m.model.RadioRxByteMJ[radio]
	if !ok {
		return fmt.Errorf("energy: unknown radio %q", radio)
	}
	m.charge("rx/"+string(radio), per*float64(bytes))
	return nil
}

// ChargeCPU charges seconds of active computation.
func (m *Meter) ChargeCPU(seconds float64) {
	m.charge("cpu", m.model.CPUPerSecMJ*seconds)
}

// ChargeIdle charges seconds of baseline draw.
func (m *Meter) ChargeIdle(seconds float64) {
	m.charge("idle", m.model.IdlePerSecMJ*seconds)
}

// TotalMJ returns the total spent so far.
func (m *Meter) TotalMJ() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Breakdown returns a copy of per-category spending.
func (m *Meter) Breakdown() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.byCat))
	for k, v := range m.byCat {
		out[k] = v
	}
	return out
}

// Categories returns the spending category names, sorted.
func (m *Meter) Categories() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.byCat))
	for k := range m.byCat {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset zeros the meter.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.total = 0
	m.byCat = make(map[string]float64)
	m.mu.Unlock()
}

// Battery tracks remaining charge against a capacity.
type Battery struct {
	mu       sync.Mutex
	capacity float64
	used     float64
}

// ErrDepleted reports an empty battery.
var ErrDepleted = errors.New("energy: battery depleted")

// NewBattery returns a battery with the given capacity in millijoules.
// A typical phone battery is ~40 kJ = 4e7 mJ.
func NewBattery(capacityMJ float64) *Battery {
	return &Battery{capacity: capacityMJ}
}

// Drain subtracts mj; it returns ErrDepleted once the capacity is
// exhausted (the overdraw is still recorded).
func (b *Battery) Drain(mj float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.used += mj
	if b.used >= b.capacity {
		return ErrDepleted
	}
	return nil
}

// RemainingMJ returns the charge left (never negative).
func (b *Battery) RemainingMJ() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if r := b.capacity - b.used; r > 0 {
		return r
	}
	return 0
}

// FractionRemaining returns remaining charge as a fraction of capacity.
func (b *Battery) FractionRemaining() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.capacity == 0 {
		return 0
	}
	f := 1 - b.used/b.capacity
	if f < 0 {
		return 0
	}
	return f
}

// TxCostMJ returns the energy of one transmission of the given size on a
// radio, including the wake cost. Unknown radios cost +Inf (never chosen).
func (m *Model) TxCostMJ(radio RadioKind, bytes int) float64 {
	per, ok := m.RadioTxByteMJ[radio]
	if !ok {
		return math.Inf(1)
	}
	return m.RadioWakeMJ[radio] + per*float64(bytes)
}

// ChooseRadio picks the cheapest available radio for a transmission of
// the given size — the paper's "heterogeneity in mobile cloud" direction:
// Bluetooth for short in-NanoCloud hops when in range, WiFi for bulk, GSM
// as the fallback of last resort. It returns the chosen radio and its
// per-message cost; ok is false when no radio is available.
func (m *Model) ChooseRadio(bytes int, available []RadioKind) (RadioKind, float64, bool) {
	best := RadioKind("")
	bestCost := math.Inf(1)
	for _, r := range available {
		if c := m.TxCostMJ(r, bytes); c < bestCost {
			best, bestCost = r, c
		}
	}
	if math.IsInf(bestCost, 1) {
		return "", 0, false
	}
	return best, bestCost, true
}

// SavingsPercent returns how much cheaper `proposed` is than `baseline`,
// in percent: 100·(1 − proposed/baseline). Positive means savings.
func SavingsPercent(baselineMJ, proposedMJ float64) float64 {
	if baselineMJ == 0 {
		return 0
	}
	return 100 * (1 - proposedMJ/baselineMJ)
}
