package mobility

import (
	"math/rand"
	"testing"
)

// TestStepWaypointsMatchesScalarModel is the backend-equivalence
// contract: a one-node WaypointState driven by the same seed is
// float-identical (==, not approximately) to RandomWaypoint at every
// step, including irregular dt values that cross pauses and arrivals.
func TestStepWaypointsMatchesScalarModel(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		sRng := rand.New(rand.NewSource(seed))
		vRng := rand.New(rand.NewSource(seed))
		p := WaypointParams{W: 40, H: 25, MinSpeed: 0.5, MaxSpeed: 3, Pause: 1.5}

		scalar, err := NewRandomWaypoint(sRng, p.W, p.H, p.MinSpeed, p.MaxSpeed, p.Pause)
		if err != nil {
			t.Fatal(err)
		}
		vec, err := InitWaypoints(vRng, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if vec.X[0] != scalar.Pos().X || vec.Y[0] != scalar.Pos().Y {
			t.Fatalf("seed %d: initial positions diverge", seed)
		}
		dts := []float64{0.3, 1, 2.5, 0.1, 7, 0.9}
		for step := 0; step < 200; step++ {
			dt := dts[step%len(dts)]
			got := scalar.Step(dt)
			StepWaypoints(vRng, p, vec, dt)
			if vec.X[0] != got.X || vec.Y[0] != got.Y {
				t.Fatalf("seed %d step %d: vec (%v,%v) != scalar (%v,%v)",
					seed, step, vec.X[0], vec.Y[0], got.X, got.Y)
			}
		}
	}
}

// TestStepWaypointsNodeIndependence: in a multi-node state each node's
// trajectory depends only on its own draws' position in the stream, and
// all nodes stay inside the area across long runs.
func TestStepWaypointsConfinedToArea(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := WaypointParams{W: 12, H: 8, MinSpeed: 1, MaxSpeed: 4, Pause: 0.5}
	s, err := InitWaypoints(rng, p, 64)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 500; step++ {
		StepWaypoints(rng, p, s, 0.7)
		for i := range s.X {
			if s.X[i] < 0 || s.X[i] > p.W || s.Y[i] < 0 || s.Y[i] > p.H {
				t.Fatalf("step %d node %d escaped: (%v,%v)", step, i, s.X[i], s.Y[i])
			}
		}
	}
}

// TestGridIndexesMatchesScalar: the vectorized cell mapping agrees with
// GridIndex on every position, including clamped boundary cases.
func TestGridIndexesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 256
	w, h := 30.0, 20.0
	gw, gh := 16, 10
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		// Include exact-boundary and slightly-out-of-range positions.
		xs[i] = rng.Float64()*w*1.1 - 0.05*w
		ys[i] = rng.Float64()*h*1.1 - 0.05*h
	}
	xs[0], ys[0] = 0, 0
	xs[1], ys[1] = w, h
	dst := make([]int32, n)
	GridIndexes(dst, xs, ys, w, h, gw, gh)
	for i := 0; i < n; i++ {
		want := GridIndex(Point{X: xs[i], Y: ys[i]}, w, h, gw, gh)
		if int(dst[i]) != want {
			t.Fatalf("node %d at (%v,%v): vec %d != scalar %d", i, xs[i], ys[i], dst[i], want)
		}
	}
}

// TestInitWaypointsValidation mirrors the scalar constructor's checks.
func TestInitWaypointsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []WaypointParams{
		{W: 0, H: 1, MinSpeed: 1, MaxSpeed: 2},
		{W: 1, H: 1, MinSpeed: 0, MaxSpeed: 2},
		{W: 1, H: 1, MinSpeed: 3, MaxSpeed: 2},
	}
	for i, p := range bad {
		if _, err := InitWaypoints(rng, p, 4); err == nil {
			t.Fatalf("params %d accepted: %+v", i, p)
		}
	}
	if _, err := InitWaypoints(rng, WaypointParams{W: 1, H: 1, MinSpeed: 1, MaxSpeed: 2}, -1); err == nil {
		t.Fatal("negative node count accepted")
	}
}

// BenchmarkStepWaypoints4096 measures one shard-sized vectorized tick;
// allocs/op must be zero (the hotalloc contract).
func BenchmarkStepWaypoints4096(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := WaypointParams{W: 640, H: 640, MinSpeed: 0.8, MaxSpeed: 2.2, Pause: 2}
	s, err := InitWaypoints(rng, p, 4096)
	if err != nil {
		b.Fatal(err)
	}
	cells := make([]int32, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StepWaypoints(rng, p, s, 1)
		GridIndexes(cells, s.X, s.Y, p.W, p.H, 64, 64)
	}
}
