// Package mobility provides the node mobility models that stand in for
// real human movement: random waypoint (the classic MANET model) and
// Gauss–Markov (temporally correlated velocity). Node positions drive
// which field grid point each mobile sensor can measure, so coverage and
// collaboration results depend on them; the models are deterministic under
// a seed for reproducible experiments.
package mobility

import (
	"errors"
	"math"
	"math/rand"
)

// Point is a position in continuous field coordinates: X along columns
// (0..W), Y along rows (0..H).
type Point struct {
	X, Y float64
}

// Model advances a node position through simulated time.
type Model interface {
	// Step advances the model by dt seconds and returns the new position.
	Step(dt float64) Point
	// Pos returns the current position without advancing.
	Pos() Point
}

// --- Random waypoint -----------------------------------------------------------

// RandomWaypoint implements the random-waypoint model: pick a uniform
// destination, travel at a uniform-random speed, pause, repeat.
type RandomWaypoint struct {
	w, h               float64
	minSpeed, maxSpeed float64
	pause              float64
	rng                *rand.Rand

	pos, dst  Point
	speed     float64
	pauseLeft float64
}

// NewRandomWaypoint creates a model confined to a w×h area.
func NewRandomWaypoint(rng *rand.Rand, w, h, minSpeed, maxSpeed, pause float64) (*RandomWaypoint, error) {
	if w <= 0 || h <= 0 {
		return nil, errors.New("mobility: area must be positive")
	}
	if minSpeed <= 0 || maxSpeed < minSpeed {
		return nil, errors.New("mobility: need 0 < minSpeed <= maxSpeed")
	}
	m := &RandomWaypoint{w: w, h: h, minSpeed: minSpeed, maxSpeed: maxSpeed, pause: pause, rng: rng}
	m.pos = Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	m.pickDestination()
	return m, nil
}

func (m *RandomWaypoint) pickDestination() {
	m.dst = Point{X: m.rng.Float64() * m.w, Y: m.rng.Float64() * m.h}
	m.speed = m.minSpeed + m.rng.Float64()*(m.maxSpeed-m.minSpeed)
}

// Pos returns the current position.
func (m *RandomWaypoint) Pos() Point { return m.pos }

// Step advances by dt seconds.
func (m *RandomWaypoint) Step(dt float64) Point {
	for dt > 0 {
		if m.pauseLeft > 0 {
			if m.pauseLeft >= dt {
				m.pauseLeft -= dt
				return m.pos
			}
			dt -= m.pauseLeft
			m.pauseLeft = 0
		}
		dx, dy := m.dst.X-m.pos.X, m.dst.Y-m.pos.Y
		dist := math.Hypot(dx, dy)
		travel := m.speed * dt
		if travel >= dist {
			// Arrive, spend remaining time pausing then pick a new target.
			m.pos = m.dst
			if m.speed > 0 {
				dt -= dist / m.speed
			} else {
				dt = 0
			}
			m.pauseLeft = m.pause
			m.pickDestination()
			continue
		}
		m.pos.X += dx / dist * travel
		m.pos.Y += dy / dist * travel
		return m.pos
	}
	return m.pos
}

// --- Gauss–Markov ---------------------------------------------------------------

// GaussMarkov implements the Gauss–Markov mobility model: speed and
// direction evolve as AR(1) processes around their means, giving smoother,
// temporally correlated trajectories than random waypoint. alpha∈[0,1]
// controls memory (1 = straight line, 0 = Brownian).
type GaussMarkov struct {
	w, h      float64
	alpha     float64
	meanSpeed float64
	sigma     float64
	rng       *rand.Rand

	pos       Point
	speed     float64
	direction float64
}

// NewGaussMarkov creates a model confined to a w×h area.
func NewGaussMarkov(rng *rand.Rand, w, h, alpha, meanSpeed, sigma float64) (*GaussMarkov, error) {
	if w <= 0 || h <= 0 {
		return nil, errors.New("mobility: area must be positive")
	}
	if alpha < 0 || alpha > 1 {
		return nil, errors.New("mobility: alpha must be in [0,1]")
	}
	if meanSpeed <= 0 {
		return nil, errors.New("mobility: meanSpeed must be positive")
	}
	return &GaussMarkov{
		w: w, h: h, alpha: alpha, meanSpeed: meanSpeed, sigma: sigma, rng: rng,
		pos:       Point{X: rng.Float64() * w, Y: rng.Float64() * h},
		speed:     meanSpeed,
		direction: rng.Float64() * 2 * math.Pi,
	}, nil
}

// Pos returns the current position.
func (m *GaussMarkov) Pos() Point { return m.pos }

// Step advances by dt seconds.
func (m *GaussMarkov) Step(dt float64) Point {
	a := m.alpha
	root := math.Sqrt(1 - a*a)
	m.speed = a*m.speed + (1-a)*m.meanSpeed + root*m.sigma*m.rng.NormFloat64()
	if m.speed < 0 {
		m.speed = 0
	}
	meanDir := m.direction
	m.direction = a*m.direction + (1-a)*meanDir + root*0.5*m.rng.NormFloat64()
	m.pos.X += m.speed * math.Cos(m.direction) * dt
	m.pos.Y += m.speed * math.Sin(m.direction) * dt
	// Reflect at the boundary so nodes stay in the area.
	if m.pos.X < 0 {
		m.pos.X = -m.pos.X
		m.direction = math.Pi - m.direction
	}
	if m.pos.X > m.w {
		m.pos.X = 2*m.w - m.pos.X
		m.direction = math.Pi - m.direction
	}
	if m.pos.Y < 0 {
		m.pos.Y = -m.pos.Y
		m.direction = -m.direction
	}
	if m.pos.Y > m.h {
		m.pos.Y = 2*m.h - m.pos.Y
		m.direction = -m.direction
	}
	return m.pos
}

// --- Helpers ---------------------------------------------------------------------

// Static is a degenerate model for fixed infrastructure sensors.
type Static struct{ P Point }

// Pos returns the fixed position.
func (s Static) Pos() Point { return s.P }

// Step returns the fixed position.
func (s Static) Step(dt float64) Point { return s.P }

// GridIndex maps a continuous position in a w×h area to the column-stacked
// grid index of a gridW×gridH field (the grid point the node's local
// measurement represents). Positions on the boundary clamp inward.
func GridIndex(p Point, w, h float64, gridW, gridH int) int {
	col := int(p.X / w * float64(gridW))
	row := int(p.Y / h * float64(gridH))
	if col >= gridW {
		col = gridW - 1
	}
	if col < 0 {
		col = 0
	}
	if row >= gridH {
		row = gridH - 1
	}
	if row < 0 {
		row = 0
	}
	return col*gridH + row
}
