package mobility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomWaypointStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewRandomWaypoint(rng, 100, 50, 1, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		p := m.Step(0.5)
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 50 {
			t.Fatalf("step %d out of bounds: %+v", i, p)
		}
	}
}

func TestRandomWaypointMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, _ := NewRandomWaypoint(rng, 100, 100, 2, 2, 0)
	start := m.Pos()
	moved := 0.0
	prev := start
	for i := 0; i < 100; i++ {
		p := m.Step(1)
		moved += math.Hypot(p.X-prev.X, p.Y-prev.Y)
		prev = p
	}
	// At fixed speed 2 with no pause, total path length ≈ 200.
	if moved < 150 {
		t.Fatalf("moved only %v over 100 s at speed 2", moved)
	}
}

func TestRandomWaypointPause(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _ := NewRandomWaypoint(rng, 10, 10, 100, 100, 5)
	// Speed so high the node arrives within one step, then pauses 5 s.
	m.Step(1)
	p1 := m.Pos()
	p2 := m.Step(1) // within the 5 s pause
	if p1 != p2 {
		t.Fatalf("node moved during pause: %+v → %+v", p1, p2)
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := NewRandomWaypoint(rng, 0, 10, 1, 2, 0); err == nil {
		t.Fatal("want area error")
	}
	if _, err := NewRandomWaypoint(rng, 10, 10, 0, 2, 0); err == nil {
		t.Fatal("want speed error")
	}
	if _, err := NewRandomWaypoint(rng, 10, 10, 3, 2, 0); err == nil {
		t.Fatal("want min>max error")
	}
}

func TestGaussMarkovStaysInBoundsAndMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, err := NewGaussMarkov(rng, 60, 40, 0.8, 1.5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	start := m.Pos()
	maxDisp := 0.0
	for i := 0; i < 3000; i++ {
		p := m.Step(0.5)
		if p.X < -1e-9 || p.X > 60+1e-9 || p.Y < -1e-9 || p.Y > 40+1e-9 {
			t.Fatalf("out of bounds at step %d: %+v", i, p)
		}
		if d := math.Hypot(p.X-start.X, p.Y-start.Y); d > maxDisp {
			maxDisp = d
		}
	}
	if maxDisp < 5 {
		t.Fatalf("node barely moved: max displacement %v", maxDisp)
	}
}

func TestGaussMarkovValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewGaussMarkov(rng, 0, 10, 0.5, 1, 0.1); err == nil {
		t.Fatal("want area error")
	}
	if _, err := NewGaussMarkov(rng, 10, 10, 1.5, 1, 0.1); err == nil {
		t.Fatal("want alpha error")
	}
	if _, err := NewGaussMarkov(rng, 10, 10, 0.5, 0, 0.1); err == nil {
		t.Fatal("want speed error")
	}
}

func TestStatic(t *testing.T) {
	s := Static{P: Point{X: 3, Y: 4}}
	if s.Pos() != s.Step(100) {
		t.Fatal("static sensor moved")
	}
}

func TestGridIndexCorners(t *testing.T) {
	// 10×10 area onto a 4-wide × 5-high grid.
	if GridIndex(Point{X: 0, Y: 0}, 10, 10, 4, 5) != 0 {
		t.Fatal("origin should map to index 0")
	}
	// Far corner clamps to last column/row: col 3, row 4 → 3*5+4 = 19.
	if got := GridIndex(Point{X: 10, Y: 10}, 10, 10, 4, 5); got != 19 {
		t.Fatalf("far corner index %d, want 19", got)
	}
	// Out-of-bounds positions clamp.
	if got := GridIndex(Point{X: -5, Y: 100}, 10, 10, 4, 5); got != 4 {
		t.Fatalf("clamped index %d, want 4", got)
	}
}

// Property: GridIndex is always a valid field index for in-area points.
func TestPropGridIndexValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gw, gh := 1+rng.Intn(16), 1+rng.Intn(16)
		p := Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		idx := GridIndex(p, 10, 10, gw, gh)
		return idx >= 0 && idx < gw*gh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: random-waypoint trajectories are deterministic under a seed.
func TestPropWaypointDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		m1, err := NewRandomWaypoint(rand.New(rand.NewSource(seed)), 50, 50, 1, 4, 1)
		if err != nil {
			return false
		}
		m2, _ := NewRandomWaypoint(rand.New(rand.NewSource(seed)), 50, 50, 1, 4, 1)
		for i := 0; i < 50; i++ {
			if m1.Step(0.7) != m2.Step(0.7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGaussMarkovStep(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m, _ := NewGaussMarkov(rng, 100, 100, 0.8, 1.5, 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Step(0.5)
	}
}
