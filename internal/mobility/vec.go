// Vectorized mobility: the random-waypoint process of RandomWaypoint,
// stepped over struct-of-arrays state for a whole fleet shard at once.
// A million simulated participants cannot afford one heap object and one
// interface dispatch each per tick; WaypointState keeps each component
// of every node's state in a flat slice, and StepWaypoints advances all
// of them in one allocation-free pass. The process is the scalar model's
// exactly — same RNG consumption order, same arithmetic expression
// order — so a one-node WaypointState driven by the same seed produces
// float-identical trajectories to RandomWaypoint (pinned by the vec
// tests), and the fleet backend inherits the scalar model's validation.

package mobility

import (
	"errors"
	"math"
	"math/rand"
)

// WaypointParams is the per-shard configuration of the vectorized
// random-waypoint model: movement area, speed range, and pause time,
// shared by every node in the shard.
type WaypointParams struct {
	W, H               float64 // area extent (field coordinates)
	MinSpeed, MaxSpeed float64 // uniform speed range, units/s
	Pause              float64 // dwell time at each waypoint, s
}

func (p WaypointParams) check() error {
	if p.W <= 0 || p.H <= 0 {
		return errors.New("mobility: area must be positive")
	}
	if p.MinSpeed <= 0 || p.MaxSpeed < p.MinSpeed {
		return errors.New("mobility: need 0 < MinSpeed <= MaxSpeed")
	}
	return nil
}

// WaypointState is the struct-of-arrays position state of n nodes under
// the random-waypoint process. All slices have the same length; index i
// across them is one node. The state is owned by exactly one shard and
// advanced single-threaded by that shard's scheduler turn — nothing here
// is safe for concurrent mutation.
type WaypointState struct {
	X, Y       []float64 // current position
	DstX, DstY []float64 // current waypoint
	Speed      []float64 // current leg's speed
	PauseLeft  []float64 // remaining dwell at the last waypoint
}

// Len returns the node count.
func (s *WaypointState) Len() int { return len(s.X) }

// InitWaypoints seeds n nodes' waypoint state from rng. Per node it
// draws, in order: position X, position Y, destination X, destination Y,
// speed — the exact order NewRandomWaypoint consumes its RNG — so a
// one-node state is stream-identical to the scalar model under the same
// seed.
func InitWaypoints(rng *rand.Rand, p WaypointParams, n int) (*WaypointState, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, errors.New("mobility: negative node count")
	}
	s := &WaypointState{
		X: make([]float64, n), Y: make([]float64, n),
		DstX: make([]float64, n), DstY: make([]float64, n),
		Speed:     make([]float64, n),
		PauseLeft: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s.X[i] = rng.Float64() * p.W
		s.Y[i] = rng.Float64() * p.H
		s.DstX[i] = rng.Float64() * p.W
		s.DstY[i] = rng.Float64() * p.H
		s.Speed[i] = p.MinSpeed + rng.Float64()*(p.MaxSpeed-p.MinSpeed)
	}
	return s, nil
}

// StepWaypoints advances every node by dt seconds: consume pause time,
// travel toward the waypoint, and on arrival pause and draw the next
// destination and speed from rng. Node i's per-arrival draws happen in
// index order, so the consumed RNG stream is a deterministic function of
// (seed, trajectory) regardless of how many shards step concurrently —
// each shard owns its own rng. The arithmetic matches
// (*RandomWaypoint).Step term for term, keeping the two backends
// float-identical. Allocation-free: this is the fleet tick's inner loop.
func StepWaypoints(rng *rand.Rand, p WaypointParams, s *WaypointState, dt float64) {
	for i := range s.X {
		t := dt
		for t > 0 {
			if s.PauseLeft[i] > 0 {
				if s.PauseLeft[i] >= t {
					s.PauseLeft[i] -= t
					break
				}
				t -= s.PauseLeft[i]
				s.PauseLeft[i] = 0
			}
			dx, dy := s.DstX[i]-s.X[i], s.DstY[i]-s.Y[i]
			dist := math.Hypot(dx, dy)
			travel := s.Speed[i] * t
			if travel >= dist {
				// Arrive, spend remaining time pausing then pick a new target.
				s.X[i], s.Y[i] = s.DstX[i], s.DstY[i]
				if s.Speed[i] > 0 {
					t -= dist / s.Speed[i]
				} else {
					t = 0
				}
				s.PauseLeft[i] = p.Pause
				s.DstX[i] = rng.Float64() * p.W
				s.DstY[i] = rng.Float64() * p.H
				s.Speed[i] = p.MinSpeed + rng.Float64()*(p.MaxSpeed-p.MinSpeed)
				continue
			}
			s.X[i] += dx / dist * travel
			s.Y[i] += dy / dist * travel
			break
		}
	}
}

// GridIndexes maps every position to its column-stacked grid index,
// writing into dst (len(dst) must equal len(xs)). Same clamping and
// arithmetic as GridIndex, vectorized and allocation-free for the fleet
// tick path. Indexes are int32: fleets address zone-local grids, which
// are far below 2³¹ cells.
func GridIndexes(dst []int32, xs, ys []float64, w, h float64, gridW, gridH int) {
	for i := range xs {
		col := int(xs[i] / w * float64(gridW))
		row := int(ys[i] / h * float64(gridH))
		if col >= gridW {
			col = gridW - 1
		}
		if col < 0 {
			col = 0
		}
		if row >= gridH {
			row = gridH - 1
		}
		if row < 0 {
			row = 0
		}
		dst[i] = int32(col*gridH + row)
	}
}
