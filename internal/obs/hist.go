package obs

import (
	"math"
	"sync/atomic"
)

// Standard bucket layouts. Bounds are upper edges; one implicit +Inf
// bucket catches the overflow.
var (
	// LatencyBuckets covers sub-millisecond bus hops through multi-second
	// gather rounds (values in milliseconds).
	LatencyBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}
	// CountBuckets covers small discrete counts (decoder iterations,
	// support sizes, retry counts).
	CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	// SizeBuckets covers payload sizes in bytes.
	SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
)

// Histogram is a fixed-bucket histogram with atomic per-bucket counters.
// Quantiles are estimated from the bucket counts by linear interpolation,
// which is exact enough for the p50/p95/p99 dashboard numbers this
// middleware reports.
type Histogram struct {
	on     *atomic.Bool
	bounds []float64      // sorted upper edges
	counts []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func newHistogram(on *atomic.Bool, bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	h := &Histogram{on: on, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later callers' bounds are ignored). Nil or empty
// bounds default to LatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	h = newHistogram(&r.enabled, bounds)
	r.hists[name] = h
	return h
}

// GetHistogram returns the named histogram of the Default registry.
func GetHistogram(name string, bounds []float64) *Histogram {
	return Default.Histogram(name, bounds)
}

// Observe records one sample when the owning registry is enabled.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on.Load() {
		return
	}
	// Linear scan: bucket lists are short (≤ ~16) and the branch predictor
	// settles on the common bucket, beating binary search at these sizes.
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnapshot is a consistent-enough copy of a histogram with computed
// summary statistics.
type HistSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Mean    float64   `json:"mean"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
	P99     float64   `json:"p99"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // len(Bounds)+1; last is +Inf overflow
}

// Snapshot copies the histogram and computes mean/p50/p95/p99. Buckets are
// read without a global lock, so a snapshot taken under concurrent writes
// can be off by the in-flight observations — fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: append([]float64(nil), h.bounds...)}
	s.Buckets = make([]int64, len(h.counts))
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sum.Load())
	s.Min = math.Float64frombits(h.min.Load())
	s.Max = math.Float64frombits(h.max.Load())
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	s.Mean = s.Sum / float64(s.Count)
	s.P50 = s.quantile(0.50)
	s.P95 = s.quantile(0.95)
	s.P99 = s.quantile(0.99)
	return s
}

// quantile estimates the q-quantile (0..1) by walking the cumulative bucket
// counts and interpolating linearly inside the landing bucket. The first
// bucket interpolates from the observed minimum; the overflow bucket
// reports the observed maximum (no upper edge to interpolate toward).
func (s HistSnapshot) quantile(q float64) float64 {
	total := int64(0)
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range s.Buckets {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(s.Bounds) { // overflow bucket
			return s.Max
		}
		lo := s.Min
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if hi > s.Max {
			hi = s.Max
		}
		if lo > hi {
			lo = hi
		}
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Max
}
