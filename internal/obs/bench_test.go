package obs

import "testing"

// The overhead guard in scripts/check.sh runs BenchmarkObsDisabledCounter
// and BenchmarkObsEnabledCounter and fails the build if the disabled path
// allocates or exceeds a few ns/op — the contract that lets the hot paths
// (bus publish, netsim delivery, decoders) stay instrumented permanently.

func BenchmarkObsDisabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.disabled")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != 0 {
		b.Fatal("disabled counter recorded")
	}
}

func BenchmarkObsEnabledCounter(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("bench.enabled")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsDisabledHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench.h", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5)
	}
}

func BenchmarkObsEnabledHistogram(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("bench.h", LatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5)
	}
}

func BenchmarkObsDisabledSpan(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StartSpan("bench").Finish()
	}
}

func BenchmarkObsEnabledSpan(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StartSpan("bench").Finish()
	}
}
