// Package obs is SenseDroid's observability subsystem: a zero-dependency,
// allocation-conscious metrics registry (atomic counters, gauges,
// fixed-bucket histograms with quantile snapshots) plus lightweight span
// tracing with a bounded ring buffer of recent spans.
//
// The package-level Default registry is *disabled* by default: every
// instrumented hot path degrades to a nil-check plus one atomic load
// (~1 ns, zero allocations), so the middleware's fast paths — bus publish,
// netsim delivery, the CHS decoders — carry their instrumentation at no
// measurable cost until an operator turns it on with Enable() (the
// -debug-addr / -obs-out flags of the cmd/ binaries do this).
//
// Metric handles are interned by name: obs.GetCounter("bus.publish.messages")
// returns the same *Counter on every call, so packages hoist handles into
// package-level vars and the per-event cost is a single atomic op.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry owns a namespace of counters, gauges, histograms, and a span
// recorder. All methods are safe for concurrent use.
type Registry struct {
	enabled  atomic.Bool
	mu       sync.RWMutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	spans    *SpanRecorder         // immutable after NewRegistry
}

// NewRegistry returns a disabled registry with an empty namespace and a
// span ring of DefaultSpanRing entries.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.spans = newSpanRecorder(r, DefaultSpanRing)
	return r
}

// Default is the process-wide registry every instrumented package records
// into. It starts disabled.
var Default = NewRegistry()

// SetEnabled turns metric recording on or off. Handles stay valid either
// way; a disabled registry makes every record operation a no-op.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry records.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Enable turns on the Default registry.
func Enable() { Default.SetEnabled(true) }

// Disable turns off the Default registry.
func Disable() { Default.SetEnabled(false) }

// Enabled reports whether the Default registry records.
func Enabled() bool { return Default.Enabled() }

// --- Counter --------------------------------------------------------------------

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Add increments the counter when the owning registry is enabled.
func (c *Counter) Add(delta int64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(delta)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (readable even while disabled).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{on: &r.enabled}
	r.counters[name] = c
	return c
}

// GetCounter returns the named counter of the Default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// --- Gauge ----------------------------------------------------------------------

// Gauge is an atomic float64 last-value metric.
type Gauge struct {
	on *atomic.Bool
	v  atomic.Uint64 // float64 bits
}

// Set records the value when the owning registry is enabled.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Add adds delta to the gauge (CAS loop) when enabled.
func (g *Gauge) Add(delta float64) {
	if g == nil || !g.on.Load() {
		return
	}
	for {
		old := g.v.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.v.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{on: &r.enabled}
	r.gauges[name] = g
	return g
}

// GetGauge returns the named gauge of the Default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// --- Snapshot -------------------------------------------------------------------

// Snapshot is a point-in-time copy of a registry, JSON-encodable for the
// /metrics.json endpoint and the experiments -obs-out dump.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Spans      []SpanRecord            `json:"spans,omitempty"`
}

// Snapshot copies every metric. Span records are included (most recent
// last); pass through WriteJSON for the serialized form.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.RUnlock()
	snap := &Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistSnapshot, len(hists)),
	}
	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		snap.Histograms[name] = h.Snapshot()
	}
	snap.Spans = r.Spans()
	return snap
}

// MetricNames returns every registered metric name, sorted (counters,
// gauges, and histograms share one namespace for listing purposes).
func (r *Registry) MetricNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
