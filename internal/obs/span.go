package obs

import (
	"sync"
	"time"
)

// DefaultSpanRing is how many finished spans a registry retains.
const DefaultSpanRing = 256

// SpanRecord is one finished span as retained by the ring buffer and
// served by the /spans endpoint.
type SpanRecord struct {
	Name       string            `json:"name"`
	StartUnixN int64             `json:"startUnixNano"`
	DurationNS int64             `json:"durationNano"`
	Labels     map[string]string `json:"labels,omitempty"`
}

// SpanRecorder is a bounded ring buffer of recent spans.
type SpanRecorder struct {
	reg   *Registry
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	total int64
}

func newSpanRecorder(reg *Registry, size int) *SpanRecorder {
	if size < 1 {
		size = 1
	}
	return &SpanRecorder{reg: reg, ring: make([]SpanRecord, 0, size)}
}

func (sr *SpanRecorder) record(rec SpanRecord) {
	sr.mu.Lock()
	if len(sr.ring) < cap(sr.ring) {
		sr.ring = append(sr.ring, rec)
	} else {
		sr.ring[sr.next] = rec
		sr.next = (sr.next + 1) % cap(sr.ring)
	}
	sr.total++
	sr.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (r *Registry) Spans() []SpanRecord {
	sr := r.spans
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SpanRecord, 0, len(sr.ring))
	if len(sr.ring) == cap(sr.ring) {
		out = append(out, sr.ring[sr.next:]...)
		out = append(out, sr.ring[:sr.next]...)
	} else {
		out = append(out, sr.ring...)
	}
	return out
}

// SpanCount returns how many spans have ever been recorded (including
// those already evicted from the ring).
func (r *Registry) SpanCount() int64 {
	r.spans.mu.Lock()
	defer r.spans.mu.Unlock()
	return r.spans.total
}

// Span is an in-flight traced operation. The zero Span (returned when the
// registry is disabled) is inert: Label and Finish are no-ops, so call
// sites never branch on enablement themselves.
type Span struct {
	rec    *SpanRecorder
	name   string
	start  time.Time
	labels map[string]string
}

// StartSpan begins a span. When the registry is disabled this returns the
// zero Span and performs no work (not even reading the clock).
func (r *Registry) StartSpan(name string) Span {
	if !r.enabled.Load() {
		return Span{}
	}
	return Span{rec: r.spans, name: name, start: time.Now()}
}

// StartSpan begins a span on the Default registry.
func StartSpan(name string) Span { return Default.StartSpan(name) }

// Label attaches a key/value to the span (recorded at Finish).
func (s *Span) Label(key, value string) {
	if s.rec == nil {
		return
	}
	if s.labels == nil {
		s.labels = make(map[string]string, 4)
	}
	s.labels[key] = value
}

// Finish ends the span: the record lands in the ring buffer and the
// duration feeds the span's auto-histogram "span.<name>.ms", so every
// traced operation gets p50/p95/p99 latency for free.
func (s Span) Finish() {
	if s.rec == nil {
		return
	}
	dur := time.Since(s.start)
	s.rec.record(SpanRecord{
		Name:       s.name,
		StartUnixN: s.start.UnixNano(),
		DurationNS: dur.Nanoseconds(),
		Labels:     s.labels,
	})
	s.rec.reg.Histogram("span."+s.name+".ms", LatencyBuckets).
		Observe(float64(dur.Nanoseconds()) / 1e6)
}
