package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterDisabledIsNoOp(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if v := c.Value(); v != 0 {
		t.Fatalf("disabled counter recorded %d", v)
	}
	r.SetEnabled(true)
	c.Add(5)
	c.Inc()
	if v := c.Value(); v != 6 {
		t.Fatalf("enabled counter = %d, want 6", v)
	}
	r.SetEnabled(false)
	c.Inc()
	if v := c.Value(); v != 6 {
		t.Fatalf("re-disabled counter moved to %d", v)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles returned nonzero")
	}
}

func TestCounterInterning(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name returned distinct counters")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Fatal("distinct names shared a counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if v := c.Value(); v != workers*per {
		t.Fatalf("concurrent count = %d, want %d", v, workers*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("disabled gauge recorded")
	}
	r.SetEnabled(true)
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	g.Add(-1.25)
	if g.Value() != 2.25 {
		t.Fatalf("gauge after Add = %v", g.Value())
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	g := r.Gauge("g")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if want := float64(workers*per) * 0.5; math.Abs(g.Value()-want) > 1e-9 {
		t.Fatalf("gauge = %v, want %v", g.Value(), want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("h", []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Uniform 1..100: p50 ≈ 50, p95 ≈ 95, p99 ≈ 99, within a bucket width.
	if math.Abs(s.P50-50) > 10 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if math.Abs(s.P95-95) > 10 {
		t.Fatalf("p95 = %v", s.P95)
	}
	if math.Abs(s.P99-99) > 10 {
		t.Fatalf("p99 = %v", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: %v %v %v", s.P50, s.P95, s.P99)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if s.P99 != 99 {
		t.Fatalf("overflow p99 = %v, want observed max", s.P99)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	r := NewRegistry()
	s := r.Histogram("h", nil).Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("h", CountBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 64))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	total := int64(0)
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
	if s.Min != 0 || s.Max != 63 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSpanDisabledIsInert(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("op")
	sp.Label("k", "v")
	sp.Finish()
	if n := r.SpanCount(); n != 0 {
		t.Fatalf("disabled span recorded (%d)", n)
	}
}

func TestSpanRecording(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	sp := r.StartSpan("gather")
	sp.Label("zone", "3")
	time.Sleep(time.Millisecond)
	sp.Finish()
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	got := spans[0]
	if got.Name != "gather" || got.Labels["zone"] != "3" {
		t.Fatalf("span = %+v", got)
	}
	if got.DurationNS <= 0 {
		t.Fatalf("duration = %d", got.DurationNS)
	}
	// Auto-histogram fed by Finish.
	if c := r.Histogram("span.gather.ms", LatencyBuckets).Count(); c != 1 {
		t.Fatalf("span auto-histogram count = %d", c)
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	for i := 0; i < DefaultSpanRing+10; i++ {
		r.StartSpan("s").Finish()
	}
	if n := len(r.Spans()); n != DefaultSpanRing {
		t.Fatalf("ring holds %d, want %d", n, DefaultSpanRing)
	}
	if n := r.SpanCount(); n != DefaultSpanRing+10 {
		t.Fatalf("total = %d", n)
	}
}

func TestSpanRingOrder(t *testing.T) {
	r := NewRegistry()
	r.spans = newSpanRecorder(r, 3)
	r.SetEnabled(true)
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		sp := r.StartSpan(name)
		sp.Finish()
	}
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].Name != "c" || spans[1].Name != "d" || spans[2].Name != "e" {
		t.Fatalf("order = %s %s %s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
}

func TestSpanConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := r.StartSpan("w")
				sp.Label("i", "x")
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	if n := r.SpanCount(); n != workers*per {
		t.Fatalf("span total = %d, want %d", n, workers*per)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("bus.publish.messages").Add(7)
	r.Gauge("campaign.nmse.global").Set(0.0125)
	r.Histogram("netsim.link.latency_ms", LatencyBuckets).Observe(3)
	r.StartSpan("assemble").Finish()
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if snap.Counters["bus.publish.messages"] != 7 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Gauges["campaign.nmse.global"] != 0.0125 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
	if snap.Histograms["netsim.link.latency_ms"].Count != 1 {
		t.Fatalf("histograms = %v", snap.Histograms)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "assemble" {
		t.Fatalf("spans = %v", snap.Spans)
	}
}

func TestMetricNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c", nil)
	names := r.MetricNames()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestDebugHandler(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("broker.gather.rounds").Add(3)
	r.StartSpan("broker.gather").Finish()
	srv := httptest.NewServer(DebugHandler(r))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Counters["broker.gather.rounds"] != 3 {
		t.Fatalf("/metrics.json counters = %v", snap.Counters)
	}
	var spans []SpanRecord
	if err := json.Unmarshal([]byte(get("/spans")), &spans); err != nil {
		t.Fatalf("/spans: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "broker.gather" {
		t.Fatalf("/spans = %v", spans)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestStartDebugServer(t *testing.T) {
	r := NewRegistry()
	srv, addr, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !r.Enabled() {
		t.Fatal("StartDebugServer did not enable the registry")
	}
	if addr == "" || !strings.Contains(addr, ":") {
		t.Fatalf("addr = %q", addr)
	}
}
