package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// WriteJSON writes an indented JSON snapshot of the registry (the
// /metrics.json payload and the experiments -obs-out file format).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// DebugHandler serves the registry's live introspection surface:
//
//	/metrics.json  expvar-style snapshot (counters, gauges, histograms)
//	/spans         recent spans, oldest first
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Mount it on the -debug-addr listener of the cmd/ binaries.
func DebugHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r.Spans()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		//lint:ignore errcheck a failed write to the debug client is the client's problem; http handlers have nowhere to report it
		_, _ = fmt.Fprintln(w, "sensedroid debug endpoints: /metrics.json /spans /debug/pprof/")
	})
	return mux
}

// StartDebugServer enables the registry, binds addr, and serves
// DebugHandler on it in a background goroutine. It returns the server
// (Close it to stop) and the bound address (useful with ":0").
func StartDebugServer(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: debug listen: %w", err)
	}
	r.SetEnabled(true)
	srv := &http.Server{Handler: DebugHandler(r)}
	go func() {
		//lint:ignore errcheck Serve always returns a non-nil error after Close; the shutdown path is the caller's Close
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr().String(), nil
}
