package basis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func opMaxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// operatorKinds are the families with an OperatorFor implementation.
var operatorKinds = []Kind{KindIdentity, KindDCT, KindDFT, KindHaar}

// TestOperatorMatchesDense is the core equivalence property from the issue:
// for each kind and a spread of sizes (including non-dyadic fallback sizes
// for DCT/DFT), Apply/ApplyTranspose agree with the dense matrix multiply
// to ≤1e-9 max-abs-diff.
func TestOperatorMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := map[Kind][]int{
		KindIdentity: {1, 4, 6, 20, 64, 100, 256, 1024},
		KindDCT:      {1, 4, 6, 8, 16, 20, 64, 100, 256, 1024},
		KindDFT:      {1, 2, 4, 6, 8, 16, 20, 64, 100, 256, 1024},
		KindHaar:     {1, 4, 8, 16, 64, 256, 1024},
	}
	for _, kind := range operatorKinds {
		for _, n := range sizes[kind] {
			op, err := OperatorFor(kind, n)
			if err != nil {
				t.Fatalf("OperatorFor(%s, %d): %v", kind, n, err)
			}
			if op.Dim() != n {
				t.Fatalf("%s/%d: Dim() = %d", kind, n, op.Dim())
			}
			phi, err := New(kind, n)
			if err != nil {
				t.Fatalf("New(%s, %d): %v", kind, n, err)
			}
			x := randVec(rng, n)
			got := make([]float64, n)

			op.Apply(got, x)
			want, err := Synthesize(phi, x)
			if err != nil {
				t.Fatal(err)
			}
			if d := opMaxAbsDiff(got, want); d > 1e-9 {
				t.Errorf("%s/%d: Apply deviates from dense by %.3g", kind, n, d)
			}

			op.ApplyTranspose(got, x)
			want, err = Analyze(phi, x)
			if err != nil {
				t.Fatal(err)
			}
			if d := opMaxAbsDiff(got, want); d > 1e-9 {
				t.Errorf("%s/%d: ApplyTranspose deviates from dense by %.3g", kind, n, d)
			}
		}
	}
}

// TestRowIntoMatchesTranspose pins the closed-form row access against the
// transform path: for every operator implementing RowAccessor, RowInto(i)
// must agree with Φᵀe_i to ≤1e-9 (the trig recurrences drift only a few
// ulps even at n = 1024). Separable2D is covered separately below because
// it is not built by OperatorFor.
func TestRowIntoMatchesTranspose(t *testing.T) {
	check := func(t *testing.T, label string, op Operator) {
		t.Helper()
		ra, ok := op.(RowAccessor)
		if !ok {
			t.Fatalf("%s: operator does not implement RowAccessor", label)
		}
		ea, hasEntry := op.(EntryAccessor)
		n := op.Dim()
		e := make([]float64, n)
		want := make([]float64, n)
		got := make([]float64, n)
		for i := 0; i < n; i++ {
			e[i] = 1
			op.ApplyTranspose(want, e)
			e[i] = 0
			ra.RowInto(got, i)
			if d := opMaxAbsDiff(got, want); d > 1e-9 {
				t.Fatalf("%s: row %d deviates from ApplyTranspose by %.3g", label, i, d)
			}
			if !hasEntry {
				continue
			}
			for j := 0; j < n; j++ {
				if d := math.Abs(ea.Entry(i, j) - want[j]); d > 1e-9 {
					t.Fatalf("%s: Entry(%d,%d) deviates from transform by %.3g", label, i, j, d)
				}
			}
		}
	}
	for _, kind := range operatorKinds {
		for _, n := range []int{1, 4, 16, 64, 256} {
			if kind == KindDFT && n == 1 {
				n = 2
			}
			op, err := OperatorFor(kind, n)
			if err != nil {
				t.Fatalf("OperatorFor(%s, %d): %v", kind, n, err)
			}
			check(t, string(kind)+"/fast", op)
		}
	}
	// Dense fallback (MatrixOp) and the 2-D Kronecker composition.
	m, err := Cached(KindDCT, 20)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := FromMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	check(t, "dct/dense-20", dense)
	for _, dims := range [][2]int{{8, 8}, {4, 16}, {16, 4}} {
		row, err := OperatorFor(KindDCT, dims[0])
		if err != nil {
			t.Fatal(err)
		}
		col, err := OperatorFor(KindDCT, dims[1])
		if err != nil {
			t.Fatal(err)
		}
		check(t, "separable-dct", NewSeparable2D(row, col))
	}
}

// TestOperatorRoundTrip pins orthonormality in operator form:
// ApplyTranspose(Apply(x)) ≈ x and Apply(ApplyTranspose(x)) ≈ x.
func TestOperatorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, kind := range operatorKinds {
		for _, n := range []int{1, 4, 16, 100, 256, 1024} {
			if kind == KindHaar && n == 100 {
				continue
			}
			op, err := OperatorFor(kind, n)
			if err != nil {
				t.Fatalf("OperatorFor(%s, %d): %v", kind, n, err)
			}
			x := randVec(rng, n)
			mid := make([]float64, n)
			back := make([]float64, n)
			op.Apply(mid, x)
			op.ApplyTranspose(back, mid)
			if d := opMaxAbsDiff(back, x); d > 1e-9 {
				t.Errorf("%s/%d: analyze∘synthesize deviates by %.3g", kind, n, d)
			}
			op.ApplyTranspose(mid, x)
			op.Apply(back, mid)
			if d := opMaxAbsDiff(back, x); d > 1e-9 {
				t.Errorf("%s/%d: synthesize∘analyze deviates by %.3g", kind, n, d)
			}
		}
	}
}

// TestSeparable2DMatchesKron checks the 2-D operator against the
// materialized Kronecker product it replaces, in both directions.
func TestSeparable2DMatchesKron(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := []struct {
		kind Kind
		h, w int
	}{
		{KindDCT, 4, 4}, {KindDCT, 8, 16}, {KindDCT, 16, 8},
		{KindDFT, 8, 8}, {KindHaar, 16, 16}, {KindDCT, 6, 10},
	}
	for _, c := range cases {
		rowOp, err := OperatorFor(c.kind, c.h)
		if err != nil {
			t.Fatalf("row OperatorFor(%s, %d): %v", c.kind, c.h, err)
		}
		colOp, err := OperatorFor(c.kind, c.w)
		if err != nil {
			t.Fatalf("col OperatorFor(%s, %d): %v", c.kind, c.w, err)
		}
		sep := NewSeparable2D(rowOp, colOp)
		if sep.Dim() != c.h*c.w {
			t.Fatalf("%s %dx%d: Dim() = %d", c.kind, c.h, c.w, sep.Dim())
		}
		phiR, err := New(c.kind, c.h)
		if err != nil {
			t.Fatal(err)
		}
		phiC, err := New(c.kind, c.w)
		if err != nil {
			t.Fatal(err)
		}
		kron, err := Kron2D(phiR, phiC)
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(rng, c.h*c.w)
		got := make([]float64, c.h*c.w)

		sep.Apply(got, x)
		want, err := Synthesize(kron, x)
		if err != nil {
			t.Fatal(err)
		}
		if d := opMaxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("%s %dx%d: Apply deviates from Kron2D by %.3g", c.kind, c.h, c.w, d)
		}

		sep.ApplyTranspose(got, x)
		want, err = Analyze(kron, x)
		if err != nil {
			t.Fatal(err)
		}
		if d := opMaxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("%s %dx%d: ApplyTranspose deviates from Kron2D by %.3g", c.kind, c.h, c.w, d)
		}
	}
}

// TestOperatorApplyAll checks the batched multi-RHS form against row-by-row
// single applies.
func TestOperatorApplyAll(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	op, err := OperatorFor(KindDCT, 32)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 5
	src := mat.New(rows, 32)
	for i := range src.Data {
		src.Data[i] = rng.NormFloat64()
	}
	dst := mat.New(rows, 32)
	if err := op.ApplyAll(dst, src); err != nil {
		t.Fatal(err)
	}
	row := make([]float64, 32)
	for r := 0; r < rows; r++ {
		op.Apply(row, src.Data[r*32:(r+1)*32])
		if d := opMaxAbsDiff(row, dst.Data[r*32:(r+1)*32]); d != 0 {
			t.Errorf("ApplyAll row %d differs from Apply by %.3g", r, d)
		}
	}
	if err := op.ApplyTransposeAll(dst, src); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		op.ApplyTranspose(row, src.Data[r*32:(r+1)*32])
		if d := opMaxAbsDiff(row, dst.Data[r*32:(r+1)*32]); d != 0 {
			t.Errorf("ApplyTransposeAll row %d differs from ApplyTranspose by %.3g", r, d)
		}
	}
	bad := mat.New(rows, 16)
	if err := op.ApplyAll(bad, src); err == nil {
		t.Error("ApplyAll accepted mismatched batch shape")
	}
}

// TestOperatorDeterministic pins the determinism contract: repeated applies
// of the same input are bit-identical, including across operator instances.
func TestOperatorDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, kind := range operatorKinds {
		op1, err := OperatorFor(kind, 256)
		if err != nil {
			t.Fatal(err)
		}
		op2, err := OperatorFor(kind, 256)
		if err != nil {
			t.Fatal(err)
		}
		x := randVec(rng, 256)
		a := make([]float64, 256)
		b := make([]float64, 256)
		op1.Apply(a, x)
		op2.Apply(b, x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: Apply not bit-identical across instances at %d: %v vs %v", kind, i, a[i], b[i])
			}
		}
		op1.Apply(b, x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: Apply not bit-identical across calls at %d", kind, i)
			}
		}
	}
}

// TestOperatorForErrors walks the factory's rejection paths.
func TestOperatorForErrors(t *testing.T) {
	if _, err := OperatorFor(KindHaar, 12); err == nil {
		t.Error("OperatorFor(haar, 12) accepted a non-power-of-two size")
	}
	if _, err := OperatorFor(KindLearned, 16); err == nil {
		t.Error("OperatorFor(learned, 16) succeeded without traces")
	}
	if _, err := OperatorFor(Kind("bogus"), 16); err == nil {
		t.Error("OperatorFor accepted an unknown kind")
	}
	if _, err := OperatorFor(KindDCT, -3); err == nil {
		t.Error("OperatorFor accepted a negative size")
	}
	if _, err := FromMatrix(mat.New(3, 4)); err == nil {
		t.Error("FromMatrix accepted a non-square matrix")
	}
}

// TestFromMatrixLearned covers the documented route for learned bases: wrap
// the learned matrix and get dense-equivalent behavior.
func TestFromMatrixLearned(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	traces := mat.New(40, 12)
	for i := range traces.Data {
		traces.Data[i] = rng.NormFloat64()
	}
	phi, _, err := Learn(traces)
	if err != nil {
		t.Fatal(err)
	}
	op, err := FromMatrix(phi)
	if err != nil {
		t.Fatal(err)
	}
	if op.Matrix() != phi {
		t.Fatal("Matrix() does not return the wrapped basis")
	}
	x := randVec(rng, 12)
	got := make([]float64, 12)
	op.Apply(got, x)
	want, err := Synthesize(phi, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := opMaxAbsDiff(got, want); d != 0 {
		t.Errorf("FromMatrix Apply deviates from dense by %.3g (want bit-identical)", d)
	}
}

// TestOperatorAllocs pins the hot-path contract from the issue: steady-state
// applies through the pooled scratch must allocate no more than the dense
// path (which allocates nothing into prepared buffers) — i.e. zero.
func TestOperatorAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool retention; alloc counts are meaningless")
	}
	for _, kind := range []Kind{KindDCT, KindDFT, KindHaar} {
		op, err := OperatorFor(kind, 512)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 512)
		y := make([]float64, 512)
		x[7] = 1
		allocs := testing.AllocsPerRun(200, func() {
			op.Apply(y, x)
			op.ApplyTranspose(x, y)
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per apply pair, want 0 (dense path bound)", kind, allocs)
		}
	}
}

func benchOperatorDCT(b *testing.B, n int) {
	op, err := OperatorFor(KindDCT, n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	x := randVec(rng, n)
	y := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.ApplyTranspose(y, x)
	}
}

func benchDenseDCT(b *testing.B, n int) {
	phi := CachedDCT(n)
	rng := rand.New(rand.NewSource(18))
	x := randVec(rng, n)
	y := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mat.MulTVecInto(y, phi, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOperatorDCT64(b *testing.B)   { benchOperatorDCT(b, 64) }
func BenchmarkOperatorDCT1024(b *testing.B) { benchOperatorDCT(b, 1024) }
func BenchmarkDenseDCT64(b *testing.B)      { benchDenseDCT(b, 64) }
func BenchmarkDenseDCT1024(b *testing.B)    { benchDenseDCT(b, 1024) }
