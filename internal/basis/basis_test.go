package basis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestDCTOrthonormal(t *testing.T) {
	for _, n := range []int{1, 2, 8, 17, 64} {
		phi := DCT(n)
		if dev, ok := CheckOrthonormal(phi, 1e-9); !ok {
			t.Fatalf("DCT(%d) not orthonormal, dev=%v", n, dev)
		}
	}
}

func TestDFTOrthonormal(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 15, 16, 64} {
		phi := DFT(n)
		if dev, ok := CheckOrthonormal(phi, 1e-9); !ok {
			t.Fatalf("DFT(%d) not orthonormal, dev=%v", n, dev)
		}
	}
}

func TestHaarOrthonormal(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		phi, err := Haar(n)
		if err != nil {
			t.Fatal(err)
		}
		if dev, ok := CheckOrthonormal(phi, 1e-9); !ok {
			t.Fatalf("Haar(%d) not orthonormal, dev=%v", n, dev)
		}
	}
}

func TestHaarRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 12} {
		if _, err := Haar(n); err == nil {
			t.Fatalf("Haar(%d) should fail", n)
		}
	}
}

func TestNewDispatch(t *testing.T) {
	for _, k := range []Kind{KindIdentity, KindDCT, KindDFT, KindHaar} {
		phi, err := New(k, 8)
		if err != nil {
			t.Fatalf("New(%s): %v", k, err)
		}
		if phi.Rows != 8 || phi.Cols != 8 {
			t.Fatalf("New(%s) wrong shape", k)
		}
	}
	if _, err := New(KindLearned, 8); err == nil {
		t.Fatal("New(learned) should fail without traces")
	}
	if _, err := New(Kind("bogus"), 8); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func TestAnalyzeSynthesizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []Kind{KindDCT, KindDFT, KindHaar} {
		phi, err := New(kind, 32)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 32)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		alpha, err := Analyze(phi, x)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Synthesize(phi, alpha)
		if err != nil {
			t.Fatal(err)
		}
		if d := mat.Norm2(mat.SubVec(back, x)); d > 1e-9 {
			t.Fatalf("%s round trip error %v", kind, d)
		}
	}
}

func TestDCTCompressesSmoothSignal(t *testing.T) {
	// A smooth Gaussian bump should concentrate energy in few DCT modes.
	n := 64
	phi := DCT(n)
	x := make([]float64, n)
	for i := range x {
		d := (float64(i) - 32) / 10
		x[i] = math.Exp(-d * d)
	}
	alpha, _ := Analyze(phi, x)
	sparse, _ := SparsifyTopK(alpha, 12)
	approx, _ := Synthesize(phi, sparse)
	rel := mat.Norm2(mat.SubVec(approx, x)) / mat.Norm2(x)
	if rel > 0.01 {
		t.Fatalf("12-term DCT approximation error %v, want < 1%%", rel)
	}
}

func TestDFTCompressesSinusoid(t *testing.T) {
	// A pure sinusoid at an integer frequency is exactly one DFT mode.
	n := 64
	phi := DFT(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 2 * float64(i) / float64(n))
	}
	alpha, _ := Analyze(phi, x)
	sparse, _ := SparsifyTopK(alpha, 2)
	approx, _ := Synthesize(phi, sparse)
	rel := mat.Norm2(mat.SubVec(approx, x)) / mat.Norm2(x)
	if rel > 1e-9 {
		t.Fatalf("2-term DFT approximation error %v, want ~0", rel)
	}
}

func TestHaarCompressesPiecewiseConstant(t *testing.T) {
	n := 64
	phi, _ := Haar(n)
	x := make([]float64, n)
	for i := range x {
		if i < 16 {
			x[i] = 1
		} else if i < 48 {
			x[i] = -2
		} else {
			x[i] = 0.5
		}
	}
	alpha, _ := Analyze(phi, x)
	if nz := mat.Norm0(alpha, 1e-9); nz > 12 {
		t.Fatalf("piecewise-constant signal uses %d Haar coefficients, want few", nz)
	}
}

func TestKron2DOrthonormal(t *testing.T) {
	phi2, err := Kron2D(DCT(4), DCT(6))
	if err != nil {
		t.Fatal(err)
	}
	if phi2.Rows != 24 || phi2.Cols != 24 {
		t.Fatalf("Kron2D shape %dx%d", phi2.Rows, phi2.Cols)
	}
	if dev, ok := CheckOrthonormal(phi2, 1e-9); !ok {
		t.Fatalf("Kron2D not orthonormal, dev=%v", dev)
	}
}

func TestKron2DMatchesSeparableTransform(t *testing.T) {
	// Synthesizing a single (kr,kc) coefficient must equal the outer
	// product of the two 1-D modes, column-stacked.
	h, w := 4, 3
	pr, pc := DCT(h), DCT(w)
	phi2, err := Kron2D(pr, pc)
	if err != nil {
		t.Fatal(err)
	}
	kr, kc := 2, 1
	alpha := make([]float64, h*w)
	alpha[kc*h+kr] = 1
	x, _ := Synthesize(phi2, alpha)
	for ic := 0; ic < w; ic++ {
		for ir := 0; ir < h; ir++ {
			want := pr.At(ir, kr) * pc.At(ic, kc)
			if math.Abs(x[ic*h+ir]-want) > 1e-12 {
				t.Fatalf("mode mismatch at (%d,%d): got %v want %v", ir, ic, x[ic*h+ir], want)
			}
		}
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	a, _ := mat.NewFromRows([][]float64{{2, 1}, {1, 2}})
	vecs, vals, err := JacobiEigen(a, 50, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-9 || math.Abs(vals[1]-1) > 1e-9 {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
	// Check A v = λ v for each column.
	for k := 0; k < 2; k++ {
		v := vecs.Col(k)
		av, _ := mat.MulVec(a, v)
		for i := range v {
			if math.Abs(av[i]-vals[k]*v[i]) > 1e-9 {
				t.Fatalf("eigenpair %d violated", k)
			}
		}
	}
}

func TestLearnRecoversSubspace(t *testing.T) {
	// Traces lie (noisily) in a 2-D subspace; the top-2 learned basis
	// vectors must capture almost all the energy.
	rng := rand.New(rand.NewSource(7))
	n, tr := 16, 200
	u1 := make([]float64, n)
	u2 := make([]float64, n)
	for i := 0; i < n; i++ {
		u1[i] = math.Sin(2 * math.Pi * float64(i) / float64(n))
		u2[i] = math.Cos(2 * math.Pi * 3 * float64(i) / float64(n))
	}
	traces := mat.New(tr, n)
	for t2 := 0; t2 < tr; t2++ {
		a, b := rng.NormFloat64()*5, rng.NormFloat64()*3
		for i := 0; i < n; i++ {
			traces.Set(t2, i, a*u1[i]+b*u2[i]+0.01*rng.NormFloat64())
		}
	}
	vecs, vals, err := Learn(traces)
	if err != nil {
		t.Fatal(err)
	}
	if dev, ok := CheckOrthonormal(vecs, 1e-8); !ok {
		t.Fatalf("learned basis not orthonormal, dev=%v", dev)
	}
	total, top2 := 0.0, vals[0]+vals[1]
	for _, v := range vals {
		total += v
	}
	if top2/total < 0.99 {
		t.Fatalf("top-2 eigenvalues capture %.3f of energy, want > 0.99", top2/total)
	}
}

func TestLearnEmpty(t *testing.T) {
	if _, _, err := Learn(mat.New(0, 0)); err == nil {
		t.Fatal("want error for empty traces")
	}
}

func TestSparsifyTopK(t *testing.T) {
	alpha := []float64{0.1, -5, 0.2, 3, 0}
	sparse, idx := SparsifyTopK(alpha, 2)
	if len(idx) != 2 {
		t.Fatalf("idx=%v", idx)
	}
	if sparse[1] != -5 || sparse[3] != 3 {
		t.Fatalf("sparse=%v", sparse)
	}
	if sparse[0] != 0 || sparse[2] != 0 || sparse[4] != 0 {
		t.Fatalf("sparse=%v keeps extra entries", sparse)
	}
	// Degenerate K values.
	s0, i0 := SparsifyTopK(alpha, 0)
	if mat.Norm0(s0, 0) != 0 || len(i0) != 0 {
		t.Fatal("K=0 should zero everything")
	}
	sAll, _ := SparsifyTopK(alpha, 99)
	for i := range alpha {
		if sAll[i] != alpha[i] {
			t.Fatal("K>len should keep everything")
		}
	}
	sNeg, _ := SparsifyTopK(alpha, -3)
	if mat.Norm0(sNeg, 0) != 0 {
		t.Fatal("negative K should zero everything")
	}
}

// Property: Parseval — for every orthonormal basis and random signal,
// ||x||₂ == ||Φᵀx||₂.
func TestPropParseval(t *testing.T) {
	phis := []*mat.Matrix{DCT(16), DFT(16)}
	h, _ := Haar(16)
	phis = append(phis, h)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 16)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for _, phi := range phis {
			alpha, err := Analyze(phi, x)
			if err != nil {
				return false
			}
			if math.Abs(mat.Norm2(alpha)-mat.Norm2(x)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SparsifyTopK(α, k) has at most k nonzeros and never increases
// the distance to α when k grows.
func TestPropSparsifyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		alpha := make([]float64, n)
		for i := range alpha {
			alpha[i] = rng.NormFloat64()
		}
		prev := math.Inf(1)
		for k := 0; k <= n; k++ {
			s, idx := SparsifyTopK(alpha, k)
			if len(idx) != k || mat.Norm0(s, 0) > k {
				return false
			}
			d := mat.Norm2(mat.SubVec(alpha, s))
			if d > prev+1e-12 {
				return false
			}
			prev = d
		}
		return prev < 1e-12 // k=n must be exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDCT256(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DCT(256)
	}
}

func BenchmarkLearn64x32(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	traces := mat.New(64, 32)
	for i := range traces.Data {
		traces.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Learn(traces); err != nil {
			b.Fatal(err)
		}
	}
}
