package basis

// Matrix-free basis operators. The dense constructors in basis.go
// materialize Φ as an explicit n×n matrix, so every decoder iteration pays
// O(n²) (and the 2-D Kronecker bases square that). An Operator exposes the
// same linear map through Apply/ApplyTranspose at O(n log n) — DCT-II/III
// and the real-embedded DFT ride a shared radix-2 FFT core (internal/fft),
// Haar runs the O(n) lifting cascade, and Separable2D applies a 2-D basis
// through its row/column factors without ever forming the Kronecker
// product. The dense matrices remain the reference implementation: the
// OperatorFor factory falls back to a matrix-backed operator for sizes or
// kinds the fast paths cannot serve (non-power-of-two DCT/DFT, learned
// bases), and the property tests pin every fast path to its dense
// counterpart within 1e-9.
//
// Determinism: operators never spawn goroutines, the FFT butterfly order is
// a fixed function of n, and scratch buffers are fully overwritten before
// use — a given input produces bit-identical output on every call at every
// GOMAXPROCS. Operators are immutable after construction and safe for
// concurrent use; per-call scratch comes from an internal sync.Pool.

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/fft"
	"repro/internal/mat"
)

// Operator is a matrix-free orthonormal basis Φ of dimension n×n. Apply is
// synthesis (x = Φα, paper Eq. 2), ApplyTranspose is analysis (α = Φᵀx; the
// transpose is the inverse for orthonormal Φ). dst and src must both have
// length Dim() and must not alias. ApplyAll/ApplyTransposeAll are the
// batched multi-RHS forms: each ROW of src is one vector, transformed into
// the corresponding row of dst.
type Operator interface {
	Dim() int
	Apply(dst, src []float64)
	ApplyTranspose(dst, src []float64)
	ApplyAll(dst, src *mat.Matrix) error
	ApplyTransposeAll(dst, src *mat.Matrix) error
}

// ErrNoOperator reports a (kind, n) pair with no operator implementation.
var ErrNoOperator = errors.New("basis: no operator for kind")

// RowAccessor is an optional Operator refinement for producing a single
// row Φ[i,·] directly, in O(n), instead of the O(n log n) analysis Φᵀe_i.
// dst must have length Dim(). The decoders use it for their column-norm
// scans, which would otherwise cost one full transform per measurement.
// Closed-form rows (trig recurrences) may differ from the FFT transform
// path by a few ulps — well inside the documented 1e-9 dense-equivalence
// bound, and pinned to it by the operator property tests.
type RowAccessor interface {
	RowInto(dst []float64, i int)
}

// EntryAccessor is an optional Operator refinement for reading one matrix
// entry Φ[i,j] in O(1). The decoders use it to gather a dictionary column
// restricted to the m sampled rows in O(m) — against O(n log n) for the
// synthesize-and-gather fallback — when admitting atoms to the support.
// Same precision contract as RowAccessor.
type EntryAccessor interface {
	Entry(i, j int) float64
}

// OperatorFor returns the matrix-free operator for the given basis family
// and size. DCT/DFT get the FFT fast path when n is a power of two and fall
// back to the memoized dense matrix otherwise; Haar (power-of-two only, as
// with New) always uses the O(n) lifting cascade; Identity is free. Learned
// bases have no (kind, n) identity — wrap the learned matrix with
// FromMatrix instead.
func OperatorFor(kind Kind, n int) (Operator, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative size %d", ErrBadSize, n)
	}
	switch kind {
	case KindIdentity:
		return &identityOp{n: n}, nil
	case KindDCT:
		if fft.IsPow2(n) {
			return newDCTOp(n)
		}
		return denseFallback(kind, n)
	case KindDFT:
		if fft.IsPow2(n) {
			return newDFTOp(n)
		}
		return denseFallback(kind, n)
	case KindHaar:
		if !fft.IsPow2(n) {
			return nil, fmt.Errorf("%w: Haar needs power-of-two size, got %d", ErrBadSize, n)
		}
		return newHaarOp(n), nil
	case KindLearned:
		return nil, fmt.Errorf("%w %q: learned bases need traces, wrap with FromMatrix", ErrNoOperator, kind)
	default:
		return nil, fmt.Errorf("%w %q", ErrNoOperator, kind)
	}
}

func denseFallback(kind Kind, n int) (Operator, error) {
	m, err := Cached(kind, n)
	if err != nil {
		return nil, err
	}
	return FromMatrix(m)
}

func checkLens(n int, dst, src []float64) {
	if len(dst) != n || len(src) != n {
		panic(fmt.Sprintf("basis: operator buffers %d/%d, want %d", len(dst), len(src), n))
	}
}

// applyRows runs op row by row over the rows of src/dst — the shared
// implementation behind the batched ApplyAll/ApplyTransposeAll forms.
func applyRows(op Operator, dst, src *mat.Matrix, transpose bool) error {
	n := op.Dim()
	if src.Cols != n || dst.Cols != n || src.Rows != dst.Rows {
		return fmt.Errorf("%w: batch (%dx%d)->(%dx%d) for operator dim %d",
			mat.ErrShape, src.Rows, src.Cols, dst.Rows, dst.Cols, n)
	}
	for r := 0; r < src.Rows; r++ {
		d := dst.Data[r*n : (r+1)*n]
		s := src.Data[r*n : (r+1)*n]
		if transpose {
			op.ApplyTranspose(d, s)
		} else {
			op.Apply(d, s)
		}
	}
	return nil
}

// --- identity -----------------------------------------------------------------

type identityOp struct{ n int }

func (o *identityOp) Dim() int { return o.n }
func (o *identityOp) Apply(dst, src []float64) {
	checkLens(o.n, dst, src)
	copy(dst, src)
}
func (o *identityOp) ApplyTranspose(dst, src []float64) { o.Apply(dst, src) }
func (o *identityOp) RowInto(dst []float64, i int) {
	for j := range dst {
		dst[j] = 0
	}
	dst[i] = 1
}

func (o *identityOp) Entry(i, j int) float64 {
	if i == j {
		return 1
	}
	return 0
}
func (o *identityOp) ApplyAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, false)
}
func (o *identityOp) ApplyTransposeAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, true)
}

// --- dense reference wrapper ---------------------------------------------------

// MatrixOp adapts an explicit (square) basis matrix to the Operator
// interface — the reference path for learned bases and non-power-of-two
// sizes. The decoders recognize it and run their dense kernels directly.
type MatrixOp struct {
	m *mat.Matrix
}

// FromMatrix wraps a square basis matrix as an Operator. The matrix is
// shared, not copied: callers must treat it as read-only.
func FromMatrix(m *mat.Matrix) (*MatrixOp, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: operator needs square basis, got %dx%d", mat.ErrShape, m.Rows, m.Cols)
	}
	return &MatrixOp{m: m}, nil
}

// Matrix returns the wrapped dense basis.
func (o *MatrixOp) Matrix() *mat.Matrix { return o.m }

// RowInto copies row i of the wrapped matrix.
func (o *MatrixOp) RowInto(dst []float64, i int) {
	copy(dst, o.m.Data[i*o.m.Cols:(i+1)*o.m.Cols])
}

// Entry reads Φ[i,j] from the wrapped matrix.
func (o *MatrixOp) Entry(i, j int) float64 {
	return o.m.Data[i*o.m.Cols+j]
}

func (o *MatrixOp) Dim() int { return o.m.Cols }
func (o *MatrixOp) Apply(dst, src []float64) {
	if err := mat.MulVecInto(dst, o.m, src); err != nil {
		panic(err)
	}
}
func (o *MatrixOp) ApplyTranspose(dst, src []float64) {
	if err := mat.MulTVecInto(dst, o.m, src); err != nil {
		panic(err)
	}
}
func (o *MatrixOp) ApplyAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, false)
}
func (o *MatrixOp) ApplyTransposeAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, true)
}

// --- DCT (FFT fast path) -------------------------------------------------------

// dctOp computes the orthonormal DCT-II basis of basis.DCT matrix-free via
// Makhoul's n-point FFT method: ApplyTranspose is the DCT-II analysis
// (even/odd permutation, FFT, half-sample twiddle), Apply inverts the same
// pipeline (DCT-III synthesis).
type dctOp struct {
	n     int
	plan  *fft.Plan
	cosT  []float64 // cos(πk/2n)
	sinT  []float64 // sin(πk/2n)
	scale []float64 // s(0)=√(1/n), s(k>0)=√(2/n)
	tab   []float64 // full twiddle period: tab[t] = cos(πt/2n), t < 4n
	pool  sync.Pool
}

// rowTableLimit bounds the closed-form row/entry twiddle tables. The DCT
// table carries one full period (4n values), so n ≤ 8192 keeps it at
// 256 KB; beyond that RowInto falls back to recurrence chains and Entry
// to direct trig.
const rowTableLimit = 8192

type complexScratch struct{ re, im []float64 }

func newComplexPool(n int) sync.Pool {
	return sync.Pool{New: func() any {
		return &complexScratch{re: make([]float64, n), im: make([]float64, n)}
	}}
}

func newDCTOp(n int) (*dctOp, error) {
	plan, err := fft.PlanFor(n)
	if err != nil {
		return nil, err
	}
	o := &dctOp{
		n: n, plan: plan,
		cosT:  make([]float64, n),
		sinT:  make([]float64, n),
		scale: make([]float64, n),
		pool:  newComplexPool(n),
	}
	for k := 0; k < n; k++ {
		s, c := math.Sincos(math.Pi * float64(k) / (2 * float64(n)))
		o.cosT[k] = c
		o.sinT[k] = s
		o.scale[k] = math.Sqrt(2 / float64(n))
	}
	if n > 0 {
		o.scale[0] = math.Sqrt(1 / float64(n))
	}
	if n <= rowTableLimit {
		o.tab = make([]float64, 4*n)
		for t := range o.tab {
			o.tab[t] = math.Cos(math.Pi * float64(t) / (2 * float64(n)))
		}
	}
	return o, nil
}

func (o *dctOp) Dim() int { return o.n }

// ApplyTranspose computes α = Φᵀx, the orthonormal DCT-II of x.
func (o *dctOp) ApplyTranspose(dst, src []float64) {
	n := o.n
	checkLens(n, dst, src)
	if n == 1 {
		dst[0] = src[0]
		return
	}
	sc := o.pool.Get().(*complexScratch)
	re, im := sc.re, sc.im
	// Makhoul permutation: evens ascending, odds descending.
	for i := 0; i < n/2; i++ {
		re[i] = src[2*i]
		re[n-1-i] = src[2*i+1]
	}
	for i := range im {
		im[i] = 0
	}
	o.plan.Forward(re, im)
	// X2[k] = Re(e^{-jπk/2n}·V[k]); α[k] = s(k)·X2[k].
	for k := 0; k < n; k++ {
		dst[k] = o.scale[k] * (o.cosT[k]*re[k] + o.sinT[k]*im[k])
	}
	o.pool.Put(sc)
}

// Apply computes x = Φα, the orthonormal DCT-III inverse of ApplyTranspose.
func (o *dctOp) Apply(dst, src []float64) {
	n := o.n
	checkLens(n, dst, src)
	if n == 1 {
		dst[0] = src[0]
		return
	}
	sc := o.pool.Get().(*complexScratch)
	re, im := sc.re, sc.im
	// Rebuild V[k] = e^{jπk/2n}·(X2[k] − j·X2[n−k]) from the unscaled
	// coefficients, exploiting the conjugate symmetry of the real signal.
	re[0] = src[0] / o.scale[0]
	im[0] = 0
	for k := 1; k < n; k++ {
		zre := src[k] / o.scale[k]
		zim := -src[n-k] / o.scale[n-k]
		re[k] = o.cosT[k]*zre - o.sinT[k]*zim
		im[k] = o.cosT[k]*zim + o.sinT[k]*zre
	}
	o.plan.Inverse(re, im)
	// Undo the even/odd permutation.
	for i := 0; i < n/2; i++ {
		dst[2*i] = re[i]
		dst[2*i+1] = re[n-1-i]
	}
	o.pool.Put(sc)
}

func (o *dctOp) ApplyAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, false)
}
func (o *dctOp) ApplyTransposeAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, true)
}

// RowInto fills dst with row i of Φ in closed form: Φ[i,k] =
// s(k)·cos((2i+1)πk/2n). The cosine argument advances by a fixed step of
// the table period — k(2i+1) mod 4n — so with the precomputed twiddle
// table each entry is one lookup and one multiply, exact to the table's
// own cos calls. Above rowTableLimit, entries are generated by the
// stride-4 Chebyshev recurrence cos((k+4)θ) = 2cos(4θ)·cos(kθ) −
// cos((k−4)θ): a stride-1 chain is latency-bound on its multiply-add
// dependency, while four interleaved chains keep the FPU pipeline full —
// this is the inner loop of the decoders' column-norm scan, one row per
// measurement.
func (o *dctOp) RowInto(dst []float64, i int) {
	n := o.n
	dst[0] = o.scale[0]
	if n == 1 {
		return
	}
	if o.tab != nil {
		period := 4 * n
		step := (2*i + 1) % period
		t := step
		for k := 1; k < n; k++ {
			dst[k] = o.scale[k] * o.tab[t]
			t += step
			if t >= period {
				t -= period
			}
		}
		return
	}
	x := (2*float64(i) + 1) * math.Pi / (2 * float64(n))
	// One trig call per row: cos(kx) for k < 8 follows from cos(x) by the
	// stride-1 recurrence, and those eight values seed the chains.
	c1 := math.Cos(x)
	var w [8]float64
	w[0], w[1] = 1, c1
	t := 2 * c1
	for k := 2; k < 8; k++ {
		w[k] = t*w[k-1] - w[k-2]
	}
	lim := n
	if lim > 8 {
		lim = 8
	}
	for k := 1; k < lim; k++ {
		dst[k] = o.scale[k] * w[k]
	}
	if n <= 8 {
		return
	}
	c4 := 2 * w[4]
	e0, e1, e2, e3 := w[0], w[1], w[2], w[3]
	f0, f1, f2, f3 := w[4], w[5], w[6], w[7]
	for k := 8; k+3 < n; k += 4 {
		g0 := c4*f0 - e0
		g1 := c4*f1 - e1
		g2 := c4*f2 - e2
		g3 := c4*f3 - e3
		dst[k] = o.scale[k] * g0
		dst[k+1] = o.scale[k+1] * g1
		dst[k+2] = o.scale[k+2] * g2
		dst[k+3] = o.scale[k+3] * g3
		e0, e1, e2, e3 = f0, f1, f2, f3
		f0, f1, f2, f3 = g0, g1, g2, g3
	}
}

// Entry evaluates Φ[i,j] = s(j)·cos((2i+1)πj/2n) — a table lookup when
// the twiddle table exists, direct trig otherwise.
func (o *dctOp) Entry(i, j int) float64 {
	if o.tab != nil {
		return o.scale[j] * o.tab[j*(2*i+1)%(4*o.n)]
	}
	return o.scale[j] * math.Cos(float64(j)*(2*float64(i)+1)*math.Pi/(2*float64(o.n)))
}

// --- DFT (FFT fast path) -------------------------------------------------------

// dftOp computes the real-embedded Fourier basis of basis.DFT matrix-free:
// the real coefficient layout [const, cos f, sin f, …, Nyquist] is packed
// from (un-packed into) the conjugate-symmetric complex spectrum of one
// n-point FFT.
type dftOp struct {
	n      int
	plan   *fft.Plan
	c0     float64   // √(1/n)
	amp    float64   // √(2/n)
	cosTab []float64 // cos(2πt/n), t < n — row/entry twiddles
	sinTab []float64 // sin(2πt/n), t < n
	pool   sync.Pool
}

func newDFTOp(n int) (*dftOp, error) {
	plan, err := fft.PlanFor(n)
	if err != nil {
		return nil, err
	}
	o := &dftOp{
		n: n, plan: plan,
		c0:   math.Sqrt(1 / float64(n)),
		amp:  math.Sqrt(2 / float64(n)),
		pool: newComplexPool(n),
	}
	if n <= rowTableLimit {
		o.cosTab = make([]float64, n)
		o.sinTab = make([]float64, n)
		for t := 0; t < n; t++ {
			o.sinTab[t], o.cosTab[t] = math.Sincos(2 * math.Pi * float64(t) / float64(n))
		}
	}
	return o, nil
}

func (o *dftOp) Dim() int { return o.n }

// ApplyTranspose computes α = Φᵀx: one forward FFT, then the paired
// cosine/sine columns read off the real and imaginary spectrum parts.
func (o *dftOp) ApplyTranspose(dst, src []float64) {
	n := o.n
	checkLens(n, dst, src)
	if n == 1 {
		dst[0] = src[0]
		return
	}
	sc := o.pool.Get().(*complexScratch)
	re, im := sc.re, sc.im
	copy(re, src)
	for i := range im {
		im[i] = 0
	}
	o.plan.Forward(re, im)
	dst[0] = o.c0 * re[0]
	for f := 1; f < n/2; f++ {
		dst[2*f-1] = o.amp * re[f]
		dst[2*f] = -o.amp * im[f]
	}
	dst[n-1] = o.c0 * re[n/2] // Nyquist alternating mode
	o.pool.Put(sc)
}

// Apply computes x = Φα: the coefficients are packed into a
// conjugate-symmetric spectrum and inverted with one inverse FFT.
func (o *dftOp) Apply(dst, src []float64) {
	n := o.n
	checkLens(n, dst, src)
	if n == 1 {
		dst[0] = src[0]
		return
	}
	sc := o.pool.Get().(*complexScratch)
	re, im := sc.re, sc.im
	re[0] = float64(n) * o.c0 * src[0]
	im[0] = 0
	half := float64(n) / 2
	for f := 1; f < n/2; f++ {
		re[f] = half * o.amp * src[2*f-1]
		im[f] = -half * o.amp * src[2*f]
		re[n-f] = re[f]
		im[n-f] = -im[f]
	}
	re[n/2] = float64(n) * o.c0 * src[n-1]
	im[n/2] = 0
	o.plan.Inverse(re, im)
	copy(dst, re)
	o.pool.Put(sc)
}

func (o *dftOp) ApplyAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, false)
}
func (o *dftOp) ApplyTransposeAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, true)
}

// RowInto fills dst with row i of Φ in closed form — Φ[i,0] = √(1/n),
// Φ[i,2f−1] = √(2/n)·cos(2πfi/n), Φ[i,2f] = √(2/n)·sin(2πfi/n),
// Φ[i,n−1] = √(1/n)·(−1)^i. Four interleaved rotation chains advance by
// 4φ per step (φ = 2πi/n) so the loop is throughput- rather than
// latency-bound; see the matching note on (*dctOp).RowInto.
func (o *dftOp) RowInto(dst []float64, i int) {
	n := o.n
	dst[0] = o.c0
	if n == 1 {
		return
	}
	half := n / 2
	if o.cosTab != nil {
		// Table path: frequency f at row i reads twiddle f·i mod n, so
		// the index advances by a fixed step per frequency.
		step := i % n
		t := step
		for f := 1; f < half; f++ {
			dst[2*f-1] = o.amp * o.cosTab[t]
			dst[2*f] = o.amp * o.sinTab[t]
			t += step
			if t >= n {
				t -= n
			}
		}
		if i%2 == 0 {
			dst[n-1] = o.c0
		} else {
			dst[n-1] = -o.c0
		}
		return
	}
	phi := 2 * math.Pi * float64(i) / float64(n)
	// One trig call per row: higher harmonics follow from (cos φ, sin φ)
	// by angle addition, seeding four chains that each advance by 4φ.
	s1, c1 := math.Sincos(phi)
	cA, sA := c1, s1
	cB, sB := c1*c1-s1*s1, s1*c1+c1*s1
	cC, sC := cB*c1-sB*s1, sB*c1+cB*s1
	cD, sD := cC*c1-sC*s1, sC*c1+cC*s1
	c4, s4 := cD, sD
	f := 1
	for ; f+3 < half; f += 4 {
		dst[2*f-1] = o.amp * cA
		dst[2*f] = o.amp * sA
		dst[2*f+1] = o.amp * cB
		dst[2*f+2] = o.amp * sB
		dst[2*f+3] = o.amp * cC
		dst[2*f+4] = o.amp * sC
		dst[2*f+5] = o.amp * cD
		dst[2*f+6] = o.amp * sD
		cA, sA = cA*c4-sA*s4, sA*c4+cA*s4
		cB, sB = cB*c4-sB*s4, sB*c4+cB*s4
		cC, sC = cC*c4-sC*s4, sC*c4+cC*s4
		cD, sD = cD*c4-sD*s4, sD*c4+cD*s4
	}
	// Frequencies 1..half−1 are an odd count, so up to three remain; the
	// chains already hold them (A = f, B = f+1, C = f+2 after each step).
	for j := 0; f < half; f, j = f+1, j+1 {
		switch j {
		case 0:
			dst[2*f-1], dst[2*f] = o.amp*cA, o.amp*sA
		case 1:
			dst[2*f-1], dst[2*f] = o.amp*cB, o.amp*sB
		default:
			dst[2*f-1], dst[2*f] = o.amp*cC, o.amp*sC
		}
	}
	if i%2 == 0 {
		dst[n-1] = o.c0
	} else {
		dst[n-1] = -o.c0
	}
}

// Entry evaluates Φ[i,j] from the packed real-DFT layout: column 0 is the
// DC atom, column n−1 the Nyquist atom, and columns (2f−1, 2f) the cos/sin
// pair at frequency f.
func (o *dftOp) Entry(i, j int) float64 {
	n := o.n
	switch {
	case j == 0:
		return o.c0
	case j == n-1:
		if i%2 == 0 {
			return o.c0
		}
		return -o.c0
	case j%2 == 1:
		f := (j + 1) / 2
		if o.cosTab != nil {
			return o.amp * o.cosTab[f*i%n]
		}
		return o.amp * math.Cos(2*math.Pi*float64(f)*float64(i)/float64(n))
	default:
		f := j / 2
		if o.sinTab != nil {
			return o.amp * o.sinTab[f*i%n]
		}
		return o.amp * math.Sin(2*math.Pi*float64(f)*float64(i)/float64(n))
	}
}

// --- Haar (lifting cascade) ----------------------------------------------------

// haarOp computes the orthonormal Haar basis of basis.Haar matrix-free via
// the O(n) averaging/differencing cascade: each pass halves the working
// length, emitting detail coefficients for the current level directly into
// the output.
type haarOp struct {
	n    int
	pool sync.Pool
}

func newHaarOp(n int) *haarOp {
	return &haarOp{n: n, pool: sync.Pool{New: func() any {
		s := make([]float64, 2*n)
		return &s
	}}}
}

func (o *haarOp) Dim() int { return o.n }

const invSqrt2 = 1 / math.Sqrt2

// ApplyTranspose computes α = Φᵀx, the forward Haar transform.
func (o *haarOp) ApplyTranspose(dst, src []float64) {
	n := o.n
	checkLens(n, dst, src)
	if n == 1 {
		dst[0] = src[0]
		return
	}
	sp := o.pool.Get().(*[]float64)
	buf := (*sp)[:n]
	avg := (*sp)[n : 2*n]
	copy(buf, src)
	for length := n; length >= 2; length >>= 1 {
		half := length >> 1
		for i := 0; i < half; i++ {
			avg[i] = (buf[2*i] + buf[2*i+1]) * invSqrt2
			dst[half+i] = (buf[2*i] - buf[2*i+1]) * invSqrt2
		}
		copy(buf[:half], avg[:half])
	}
	dst[0] = buf[0]
	o.pool.Put(sp)
}

// Apply computes x = Φα, the inverse cascade.
func (o *haarOp) Apply(dst, src []float64) {
	n := o.n
	checkLens(n, dst, src)
	if n == 1 {
		dst[0] = src[0]
		return
	}
	sp := o.pool.Get().(*[]float64)
	buf := (*sp)[:n]
	buf[0] = src[0]
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		for i := half - 1; i >= 0; i-- {
			a := buf[i]
			d := src[half+i]
			buf[2*i] = (a + d) * invSqrt2
			buf[2*i+1] = (a - d) * invSqrt2
		}
	}
	copy(dst, buf)
	o.pool.Put(sp)
}

func (o *haarOp) ApplyAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, false)
}
func (o *haarOp) ApplyTransposeAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, true)
}

// RowInto fills dst with row i of Φ = Φᵀe_i; the lifting cascade is
// already O(n), so one analysis of a standard basis vector is row cost.
func (o *haarOp) RowInto(dst []float64, i int) {
	sp := o.pool.Get().(*[]float64)
	e := (*sp)[:o.n]
	for j := range e {
		e[j] = 0
	}
	e[i] = 1
	o.ApplyTranspose(dst, e)
	o.pool.Put(sp)
}

// --- separable 2-D -------------------------------------------------------------

// Separable2D applies the 2-D basis Φ₂ = Φc ⊗ Φr (the operator form of
// Kron2D, same column-stacking convention) through its factors: the row
// factor transforms every field column, the column factor every field row.
// Cost is O(h·w·(Cr+Cc)) where Cr/Cc are the factor costs — for FFT factors
// that is O(n log n) against the O(n²) Kronecker matrix, and the (h·w)²
// product matrix is never materialized. Factors may be any Operator,
// including another Separable2D (the spatio-temporal decoder stacks a
// temporal factor on a spatial one).
type Separable2D struct {
	row, col Operator
	h, w, n  int
	pool     sync.Pool
}

// NewSeparable2D builds the separable operator for an h-row × w-col field
// from its row factor (size h) and column factor (size w).
func NewSeparable2D(rowOp, colOp Operator) *Separable2D {
	h, w := rowOp.Dim(), colOp.Dim()
	n := h * w
	return &Separable2D{
		row: rowOp, col: colOp, h: h, w: w, n: n,
		pool: sync.Pool{New: func() any {
			s := make([]float64, 2*n)
			return &s
		}},
	}
}

// Factors returns the row and column factor operators.
func (o *Separable2D) Factors() (rowOp, colOp Operator) { return o.row, o.col }

func (o *Separable2D) Dim() int { return o.n }

func (o *Separable2D) apply(dst, src []float64, transpose bool) {
	h, w, n := o.h, o.w, o.n
	checkLens(n, dst, src)
	if n == 0 {
		return
	}
	sp := o.pool.Get().(*[]float64)
	t1 := (*sp)[:n]
	t2 := (*sp)[n : 2*n]
	// Stage 1: row factor over every (contiguous) field column.
	for c := 0; c < w; c++ {
		if transpose {
			o.row.ApplyTranspose(t1[c*h:(c+1)*h], src[c*h:(c+1)*h])
		} else {
			o.row.Apply(t1[c*h:(c+1)*h], src[c*h:(c+1)*h])
		}
	}
	// Transpose so field rows become contiguous.
	for c := 0; c < w; c++ {
		for r := 0; r < h; r++ {
			t2[r*w+c] = t1[c*h+r]
		}
	}
	// Stage 2: column factor over every field row.
	for r := 0; r < h; r++ {
		if transpose {
			o.col.ApplyTranspose(t1[r*w:(r+1)*w], t2[r*w:(r+1)*w])
		} else {
			o.col.Apply(t1[r*w:(r+1)*w], t2[r*w:(r+1)*w])
		}
	}
	// Transpose back into column-stacked layout.
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			dst[c*h+r] = t1[r*w+c]
		}
	}
	o.pool.Put(sp)
}

func (o *Separable2D) Apply(dst, src []float64)          { o.apply(dst, src, false) }
func (o *Separable2D) ApplyTranspose(dst, src []float64) { o.apply(dst, src, true) }

// RowInto fills dst with row i of the 2-D operator: the Kronecker row is
// the outer product of the factor rows, Φ₂[i, jc·h+jr] = Φr[ir,jr]·Φc[ic,jc]
// with ir = i mod h, ic = i div h — O(n) plus two factor rows.
func (o *Separable2D) RowInto(dst []float64, i int) {
	h, w := o.h, o.w
	sp := o.pool.Get().(*[]float64)
	u := (*sp)[:h]
	v := (*sp)[h : h+w]
	factorRow(o.row, u, i%h)
	factorRow(o.col, v, i/h)
	for c := 0; c < w; c++ {
		vc := v[c]
		row := dst[c*h : (c+1)*h]
		for r, ur := range u {
			row[r] = ur * vc
		}
	}
	o.pool.Put(sp)
}

// factorRow extracts one factor row through RowAccessor when available,
// falling back to an analysis of the matching standard basis vector.
func factorRow(op Operator, dst []float64, i int) {
	if ra, ok := op.(RowAccessor); ok {
		ra.RowInto(dst, i)
		return
	}
	e := make([]float64, op.Dim())
	e[i] = 1
	op.ApplyTranspose(dst, e)
}
func (o *Separable2D) ApplyAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, false)
}
func (o *Separable2D) ApplyTransposeAll(dst, src *mat.Matrix) error {
	return applyRows(o, dst, src, true)
}

// --- convenience ---------------------------------------------------------------

// OpSynthesize returns x = Φα through an operator (allocating form of
// Apply, mirroring Synthesize).
func OpSynthesize(op Operator, alpha []float64) ([]float64, error) {
	if len(alpha) != op.Dim() {
		return nil, fmt.Errorf("%w: coefficients %d for operator dim %d", mat.ErrShape, len(alpha), op.Dim())
	}
	out := make([]float64, op.Dim())
	op.Apply(out, alpha)
	return out, nil
}

// OpAnalyze returns α = Φᵀx through an operator (allocating form of
// ApplyTranspose, mirroring Analyze).
func OpAnalyze(op Operator, x []float64) ([]float64, error) {
	if len(x) != op.Dim() {
		return nil, fmt.Errorf("%w: signal %d for operator dim %d", mat.ErrShape, len(x), op.Dim())
	}
	out := make([]float64, op.Dim())
	op.ApplyTranspose(out, x)
	return out, nil
}
