//go:build race

package basis

// raceEnabled reports whether the race detector is active. The allocation
// test is skipped under race: the detector randomizes sync.Pool retention,
// so pooled scratch buffers count as fresh allocations there.
const raceEnabled = true
