package basis

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzOperatorRoundTrip feeds the matrix-free operators adversarial sizes
// and values. The contract under test: OperatorFor either errors or returns
// an operator whose analyze/synthesize pair round-trips finite input (the
// orthonormality property the decoders rely on), with no panics for any
// byte pattern.
func FuzzOperatorRoundTrip(f *testing.F) {
	f.Add([]byte("\x01\x03abcdefgh12345678"))
	f.Add([]byte("\x02\x08" +
		"\x00\x00\x00\x00\x00\x00\xf0\x7f" + // +Inf
		"\xff\xff\xff\xff\xff\xff\xff\xff" + // NaN
		"\x01\x00\x00\x00\x00\x00\x00\x00")) // denormal
	f.Add([]byte("\x03\x00"))             // Haar at n=1
	f.Add([]byte("\x00\x0dZZZZZZZZZZZZ")) // identity, non-dyadic size
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		kinds := []Kind{KindIdentity, KindDCT, KindDFT, KindHaar, KindLearned, Kind("bogus")}
		kind := kinds[int(data[0])%len(kinds)]
		// Sizes 1..64: powers of two exercise the fast paths, the rest the
		// dense fallback and the Haar/learned rejection paths.
		n := 1 + int(data[1])%64
		data = data[2:]
		op, err := OperatorFor(kind, n)
		if err != nil {
			return
		}
		if op.Dim() != n {
			t.Fatalf("%s/%d: Dim() = %d", kind, n, op.Dim())
		}
		x := make([]float64, n)
		finite := true
		for i := range x {
			if len(data) >= 8 {
				x[i] = math.Float64frombits(binary.LittleEndian.Uint64(data))
				data = data[8:]
			} else if len(data) > 0 {
				x[i] = float64(int8(data[0]))
				data = data[1:]
			}
			// Huge magnitudes legitimately overflow to Inf inside the
			// transform; bound the round-trip check to tame inputs.
			if math.IsNaN(x[i]) || math.Abs(x[i]) > 1e12 {
				finite = false
			}
		}
		mid := make([]float64, n)
		back := make([]float64, n)
		op.Apply(mid, x)
		op.ApplyTranspose(back, mid)
		if !finite {
			return
		}
		scale := 1.0
		for i := range x {
			if v := math.Abs(x[i]); v > scale {
				scale = v
			}
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-6*scale {
				t.Fatalf("%s/%d: round-trip [%d] %v -> %v (scale %v)", kind, n, i, x[i], back[i], scale)
			}
		}
	})
}
