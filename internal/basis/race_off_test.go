//go:build !race

package basis

const raceEnabled = false
