// Package basis builds the orthonormal transform bases Φ used by the
// compressive-sensing core (paper Eq. 2: x = Φα). The paper calls for
// FFT/DCT bases by default, plus the ability to "use different basis and
// sensing matrix by exploiting prior available data of different regions" —
// covered here by Haar wavelets and a PCA basis learned from prior traces.
//
// Each constructor returns an explicit N×N matrix whose COLUMNS are the
// basis vectors, so a coefficient vector α maps to a signal via x = Φ·α and
// back via α = Φᵀ·x (orthonormality makes the transpose the inverse).
package basis

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// Kind names a supported basis family.
type Kind string

// Supported basis families.
const (
	KindIdentity Kind = "identity"
	KindDCT      Kind = "dct"
	KindDFT      Kind = "dft"
	KindHaar     Kind = "haar"
	KindLearned  Kind = "learned"
)

// ErrBadSize reports an unsupported basis dimension.
var ErrBadSize = errors.New("basis: unsupported size")

// New returns the N×N basis of the given kind. Haar requires N to be a
// power of two; Learned cannot be built without traces (use Learn).
func New(kind Kind, n int) (*mat.Matrix, error) {
	switch kind {
	case KindIdentity:
		return mat.Identity(n), nil
	case KindDCT:
		return DCT(n), nil
	case KindDFT:
		return DFT(n), nil
	case KindHaar:
		return Haar(n)
	case KindLearned:
		return nil, errors.New("basis: learned basis needs prior traces, use Learn")
	default:
		return nil, fmt.Errorf("basis: unknown kind %q", kind)
	}
}

// DCT returns the orthonormal DCT-II basis: column k holds the k-th cosine
// mode, Φ[i,k] = s(k)·cos(π(2i+1)k / 2N) with s(0)=√(1/N), s(k>0)=√(2/N).
func DCT(n int) *mat.Matrix {
	m := mat.New(n, n)
	if n == 0 {
		return m
	}
	s0 := math.Sqrt(1 / float64(n))
	sk := math.Sqrt(2 / float64(n))
	for k := 0; k < n; k++ {
		scale := sk
		if k == 0 {
			scale = s0
		}
		for i := 0; i < n; i++ {
			m.Set(i, k, scale*math.Cos(math.Pi*float64(2*i+1)*float64(k)/(2*float64(n))))
		}
	}
	return m
}

// DFT returns a real orthonormal Fourier basis: the constant mode, paired
// cosine/sine modes for each positive frequency, and (for even N) the
// Nyquist alternating mode. This is the real embedding of the complex DFT
// that the paper's "FFT basis" refers to.
func DFT(n int) *mat.Matrix {
	m := mat.New(n, n)
	if n == 0 {
		return m
	}
	col := 0
	c0 := math.Sqrt(1 / float64(n))
	for i := 0; i < n; i++ {
		m.Set(i, col, c0)
	}
	col++
	amp := math.Sqrt(2 / float64(n))
	for f := 1; col < n && f <= n/2; f++ {
		if 2*f == n {
			// Nyquist mode: alternating ±1, norm 1/√n scaling.
			for i := 0; i < n; i++ {
				v := c0
				if i%2 == 1 {
					v = -c0
				}
				m.Set(i, col, v)
			}
			col++
			continue
		}
		for i := 0; i < n; i++ {
			m.Set(i, col, amp*math.Cos(2*math.Pi*float64(f*i)/float64(n)))
		}
		col++
		if col < n {
			for i := 0; i < n; i++ {
				m.Set(i, col, amp*math.Sin(2*math.Pi*float64(f*i)/float64(n)))
			}
			col++
		}
	}
	return m
}

// Haar returns the orthonormal Haar wavelet basis for n a power of two.
func Haar(n int) (*mat.Matrix, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: Haar needs power-of-two size, got %d", ErrBadSize, n)
	}
	m := mat.New(n, n)
	// Column 0: scaling function.
	c := 1 / math.Sqrt(float64(n))
	for i := 0; i < n; i++ {
		m.Set(i, 0, c)
	}
	col := 1
	// Levels: wavelets with support n/2^level ... 1 pairs.
	for level := 1; 1<<level <= n; level++ {
		count := 1 << (level - 1) // wavelets at this level
		support := n / count      // samples covered by each wavelet
		amp := math.Sqrt(float64(count) / float64(n))
		for w := 0; w < count; w++ {
			start := w * support
			half := support / 2
			for i := 0; i < half; i++ {
				m.Set(start+i, col, amp)
			}
			for i := half; i < support; i++ {
				m.Set(start+i, col, -amp)
			}
			col++
		}
	}
	return m, nil
}

// Kron2D returns the separable 2-D basis Φ₂ = Φr ⊗ Φc for a field of
// h rows × w cols that has been column-stacked into a vector of length h·w
// (paper Eq. 1). Φr is the h×h row basis, Φc the w×w column basis. The
// resulting matrix is (h·w)×(h·w): coefficient (kc·h + kr) maps to the 2-D
// mode that is Φr's kr-th mode along rows and Φc's kc-th mode along columns.
func Kron2D(phiR, phiC *mat.Matrix) (*mat.Matrix, error) {
	if phiR.Rows != phiR.Cols || phiC.Rows != phiC.Cols {
		return nil, errors.New("basis: Kron2D needs square factor bases")
	}
	h, w := phiR.Rows, phiC.Rows
	n := h * w
	out := mat.New(n, n)
	for jc := 0; jc < w; jc++ { // column-basis mode
		for jr := 0; jr < h; jr++ { // row-basis mode
			colIdx := jc*h + jr
			for ic := 0; ic < w; ic++ {
				cv := phiC.At(ic, jc)
				if cv == 0 {
					continue
				}
				for ir := 0; ir < h; ir++ {
					out.Set(ic*h+ir, colIdx, cv*phiR.At(ir, jr))
				}
			}
		}
	}
	return out, nil
}

// Learn builds an orthonormal basis from T prior traces (the rows of the
// T×N matrix X): the eigenvectors of the sample covariance, sorted by
// decreasing eigenvalue (a PCA basis). This implements the paper's "exploit
// prior available data of different regions" benefit: fields drawn from the
// same process are maximally compressible in this basis.
//
// The eigendecomposition uses the cyclic Jacobi method, which is simple,
// stdlib-only, and robust for the symmetric covariance matrices that arise
// here.
func Learn(traces *mat.Matrix) (*mat.Matrix, []float64, error) {
	t, n := traces.Rows, traces.Cols
	if t == 0 || n == 0 {
		return nil, nil, errors.New("basis: no traces to learn from")
	}
	// Covariance C = (1/T) Σ (x_t - μ)(x_t - μ)ᵀ.
	mu := make([]float64, n)
	for i := 0; i < t; i++ {
		for j := 0; j < n; j++ {
			mu[j] += traces.At(i, j)
		}
	}
	for j := range mu {
		mu[j] /= float64(t)
	}
	cov := mat.New(n, n)
	for i := 0; i < t; i++ {
		for a := 0; a < n; a++ {
			da := traces.At(i, a) - mu[a]
			if da == 0 {
				continue
			}
			for b := 0; b < n; b++ {
				cov.Data[a*n+b] += da * (traces.At(i, b) - mu[b])
			}
		}
	}
	for i := range cov.Data {
		cov.Data[i] /= float64(t)
	}
	vecs, vals, err := JacobiEigen(cov, 100, 1e-11)
	if err != nil {
		return nil, nil, err
	}
	return vecs, vals, nil
}

// JacobiEigen computes the eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns the eigenvector matrix
// (columns are eigenvectors) and eigenvalues, both sorted by decreasing
// eigenvalue. maxSweeps bounds the work; tol is the off-diagonal Frobenius
// threshold for convergence.
func JacobiEigen(a *mat.Matrix, maxSweeps int, tol float64) (*mat.Matrix, []float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, errors.New("basis: JacobiEigen needs a square matrix")
	}
	w := a.Clone()
	v := mat.Identity(n)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.Data[i*n+j] * w.Data[i*n+j]
			}
		}
		if math.Sqrt(2*off) < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.Data[p*n+q]
				if math.Abs(apq) < tol/float64(n*n) {
					continue
				}
				app := w.Data[p*n+p]
				aqq := w.Data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation to w = Jᵀ w J.
				for k := 0; k < n; k++ {
					wkp := w.Data[k*n+p]
					wkq := w.Data[k*n+q]
					w.Data[k*n+p] = c*wkp - s*wkq
					w.Data[k*n+q] = s*wkp + c*wkq
				}
				for k := 0; k < n; k++ {
					wpk := w.Data[p*n+k]
					wqk := w.Data[q*n+k]
					w.Data[p*n+k] = c*wpk - s*wqk
					w.Data[q*n+k] = s*wpk + c*wqk
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.Data[k*n+p]
					vkq := v.Data[k*n+q]
					v.Data[k*n+p] = c*vkp - s*vkq
					v.Data[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.Data[i*n+i]
	}
	// Sort columns by decreasing eigenvalue (insertion sort; n is small).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && vals[order[j]] > vals[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := mat.New(n, n)
	for k, idx := range order {
		sortedVals[k] = vals[idx]
		for i := 0; i < n; i++ {
			sortedVecs.Data[i*n+k] = v.Data[i*n+idx]
		}
	}
	return sortedVecs, sortedVals, nil
}

// Analyze returns the coefficient vector α = Φᵀx for an orthonormal basis.
func Analyze(phi *mat.Matrix, x []float64) ([]float64, error) {
	return mat.MulTVec(phi, x)
}

// Synthesize returns the signal x = Φα.
func Synthesize(phi *mat.Matrix, alpha []float64) ([]float64, error) {
	return mat.MulVec(phi, alpha)
}

// CheckOrthonormal verifies ΦᵀΦ ≈ I within tol, returning the maximum
// deviation found. Useful in tests and when loading learned bases.
func CheckOrthonormal(phi *mat.Matrix, tol float64) (float64, bool) {
	p, err := mat.Mul(phi.T(), phi)
	if err != nil {
		return math.Inf(1), false
	}
	dev := 0.0
	n := phi.Cols
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d := math.Abs(p.At(i, j) - want); d > dev {
				dev = d
			}
		}
	}
	return dev, dev <= tol
}

// SparsifyTopK returns a copy of alpha with all but the K
// largest-magnitude coefficients zeroed, plus the retained indices. This is
// the K-term approximation that defines the paper's approximation error ε_a.
func SparsifyTopK(alpha []float64, k int) ([]float64, []int) {
	if k < 0 {
		k = 0
	}
	if k > len(alpha) {
		k = len(alpha)
	}
	type pair struct {
		idx int
		mag float64
	}
	pairs := make([]pair, len(alpha))
	for i, v := range alpha {
		pairs[i] = pair{i, math.Abs(v)}
	}
	// Partial selection sort for the top K (K is small in practice).
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(pairs); j++ {
			if pairs[j].mag > pairs[best].mag {
				best = j
			}
		}
		pairs[i], pairs[best] = pairs[best], pairs[i]
	}
	out := make([]float64, len(alpha))
	idx := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out[pairs[i].idx] = alpha[pairs[i].idx]
		idx = append(idx, pairs[i].idx)
	}
	return out, idx
}
